#include <gtest/gtest.h>

#include "crypto/base58.hpp"
#include "crypto/ecdsa.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

TEST(Base58, KnownVectors) {
    // Vectors from the Bitcoin Core test set.
    EXPECT_EQ(base58_encode(util::Bytes{}), "");
    EXPECT_EQ(base58_encode(*util::hex_decode("61")), "2g");
    EXPECT_EQ(base58_encode(*util::hex_decode("626262")), "a3gV");
    EXPECT_EQ(base58_encode(*util::hex_decode("636363")), "aPEr");
    EXPECT_EQ(base58_encode(*util::hex_decode("73696d706c792061206c6f6e6720737472696e67")),
              "2cFupjhnEsSn59qHXstmK2ffpLv2");
    EXPECT_EQ(base58_encode(*util::hex_decode("00eb15231dfceb60925886b67d065299925915aeb172c06647")),
              "1NS17iag9jJgTHD1VXjvLCEnZuQ3rJDE9L");
    EXPECT_EQ(base58_encode(*util::hex_decode("516b6fcd0f")), "ABnLTmg");
    EXPECT_EQ(base58_encode(*util::hex_decode("572e4794")), "3EFU7m");
    EXPECT_EQ(base58_encode(*util::hex_decode("10c8511e")), "Rt5zm");
    EXPECT_EQ(base58_encode(util::Bytes(10, 0)), "1111111111");
}

TEST(Base58, DecodeInvertsEncode) {
    util::Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        util::Bytes data(rng.between(0, 60));
        rng.fill(data);
        if (rng.chance(0.3) && !data.empty()) data[0] = 0;  // leading zeros
        const auto decoded = base58_decode(base58_encode(data));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, data);
    }
}

TEST(Base58, DecodeRejectsBadCharacters) {
    EXPECT_FALSE(base58_decode("0OIl").has_value());  // excluded alphabet
    EXPECT_FALSE(base58_decode("abc!").has_value());
    EXPECT_TRUE(base58_decode("").has_value());
}

TEST(Base58Check, RoundTrip) {
    util::Rng rng(2);
    const auto key = PrivateKey::generate(rng);
    const Hash160 id = key.public_key().id();

    const std::string address = base58check_encode(kP2pkhVersion, id.span());
    EXPECT_EQ(address[0], '1');  // mainnet P2PKH addresses start with 1

    const auto decoded = base58check_decode(address);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->first, kP2pkhVersion);
    EXPECT_EQ(Hash160::from_span(decoded->second), id);
}

TEST(Base58Check, P2shVersionPrefix) {
    const std::string address = base58check_encode(kP2shVersion, util::Bytes(20, 0xab));
    EXPECT_EQ(address[0], '3');  // mainnet P2SH addresses start with 3
    EXPECT_TRUE(base58check_decode(address).has_value());
}

TEST(Base58Check, ChecksumCatchesTypos) {
    const std::string address = base58check_encode(kP2pkhVersion, util::Bytes(20, 0x11));
    for (std::size_t i = 0; i < address.size(); ++i) {
        std::string corrupted = address;
        corrupted[i] = corrupted[i] == '2' ? '3' : '2';
        if (corrupted == address) continue;
        EXPECT_FALSE(base58check_decode(corrupted).has_value()) << "position " << i;
    }
}

TEST(Base58Check, KnownSatoshiAddress) {
    // hash160 behind the genesis-coinbase address.
    const auto payload = util::hex_decode("62e907b15cbf27d5425399ebf6f0fb50ebb88f18");
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(base58check_encode(0x00, *payload), "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa");
}

}  // namespace
}  // namespace ebv::crypto
