// The Result/Status vocabulary types and the timing primitives.
#include <gtest/gtest.h>

#include <string>

#include "util/result.hpp"
#include "util/stopwatch.hpp"

namespace ebv::util {
namespace {

enum class TestError { kBad, kWorse };

Result<int, TestError> half(int x) {
    if (x % 2 != 0) return Unexpected{TestError::kBad};
    return x / 2;
}

TEST(Result, ValueAndErrorPaths) {
    auto ok = half(10);
    ASSERT_TRUE(ok.has_value());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(*ok, 5);
    EXPECT_EQ(ok.value(), 5);

    auto bad = half(7);
    ASSERT_FALSE(bad.has_value());
    EXPECT_EQ(bad.error(), TestError::kBad);
}

TEST(Result, WorksWhenValueAndErrorTypesMatch) {
    // The Unexpected wrapper disambiguates Result<int, int>.
    Result<int, int> value = 3;
    Result<int, int> error = Unexpected{4};
    EXPECT_TRUE(value.has_value());
    EXPECT_FALSE(error.has_value());
    EXPECT_EQ(error.error(), 4);
}

TEST(Result, MoveOnlyValues) {
    Result<std::unique_ptr<int>, TestError> r = std::make_unique<int>(42);
    ASSERT_TRUE(r.has_value());
    std::unique_ptr<int> taken = std::move(r).value();
    EXPECT_EQ(*taken, 42);
}

TEST(Result, ArrowOperator) {
    Result<std::string, TestError> r = std::string("hello");
    EXPECT_EQ(r->size(), 5u);
}

TEST(Status, OkAndErrorStates) {
    Status<TestError> ok = Ok{};
    EXPECT_TRUE(ok.has_value());
    Status<TestError> err = Unexpected{TestError::kWorse};
    EXPECT_FALSE(err.has_value());
    EXPECT_EQ(err.error(), TestError::kWorse);
}

TEST(Stopwatch, MeasuresMonotonically) {
    Stopwatch watch;
    const auto first = watch.elapsed_ns();
    // Burn a little CPU deterministically.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    const auto second = watch.elapsed_ns();
    EXPECT_GE(first, 0);
    EXPECT_GE(second, first);

    watch.restart();
    EXPECT_LT(watch.elapsed_ns(), second + 1'000'000'000);
}

TEST(SimTimeLedger, AccumulatesCharges) {
    SimTimeLedger ledger;
    EXPECT_EQ(ledger.total_ns(), 0);
    ledger.charge(100);
    ledger.charge(250);
    EXPECT_EQ(ledger.total_ns(), 350);
    ledger.reset();
    EXPECT_EQ(ledger.total_ns(), 0);
}

TEST(TimeCost, ArithmeticAndConversions) {
    TimeCost a{1'000'000, 2'000'000};
    TimeCost b{500'000, 250'000};
    const TimeCost sum = a + b;
    EXPECT_EQ(sum.wall_ns, 1'500'000);
    EXPECT_EQ(sum.simulated_ns, 2'250'000);
    EXPECT_EQ(sum.total_ns(), 3'750'000);
    EXPECT_DOUBLE_EQ(to_ms(sum.total_ns()), 3.75);
    EXPECT_DOUBLE_EQ(to_sec(2'000'000'000), 2.0);

    TimeCost acc;
    acc += a;
    acc += b;
    EXPECT_EQ(acc.total_ns(), sum.total_ns());
}

}  // namespace
}  // namespace ebv::util
