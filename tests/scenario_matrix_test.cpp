// Adversarial & reorg scenario matrix (docs/SCENARIOS.md): every hostile
// mutation the workload::Adversary can produce runs through all four
// validator configurations — serial, parallel, batched-SV, pipelined-IBD —
// and must be rejected with bit-identical EbvValidationFailure tuples and
// bit-identical post-run state (bit-vector shards, tip, height). Reorgs,
// including deep ones crossing pipeline window boundaries and hostile
// branches that must roll back, get the same cross-config treatment, and a
// seed-logged randomized soak (EBV_SOAK_SEED / EBV_SOAK_BLOCKS) interleaves
// all of it for hundreds of blocks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <unistd.h>
#include <vector>

#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/reorg.hpp"
#include "chain/sighash.hpp"
#include "core/node.hpp"
#include "core/reorg.hpp"
#include "core/sig_cache.hpp"
#include "intermediary/converter.hpp"
#include "script/standard.hpp"
#include "util/thread_pool.hpp"
#include "workload/adversary.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

namespace fs = std::filesystem;

class TempDir {
public:
    TempDir() {
        path_ = fs::temp_directory_path() /
                ("ebv_matrix_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    [[nodiscard]] std::string str() const { return path_.string(); }

private:
    fs::path path_;
    static inline int counter_ = 0;
};

/// The environment can flip which validation path runs; every test here
/// pins the configuration explicitly instead.
void scrub_env() {
    ::unsetenv("EBV_PIPELINE");
    ::unsetenv("EBV_PIPELINE_WINDOW");
    ::unsetenv("EBV_BATCH_VERIFY");
    ::unsetenv("EBV_SIGHASH_TEMPLATE");
}

workload::GeneratorOptions matrix_gen_options(std::uint64_t seed) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.key_pool_size = 8;
    return options;
}

/// The four validator configurations of the failure-parity contract.
struct Config {
    const char* name;
    bool use_pool;
    bool batch_verify;
    bool pipelined;
    std::size_t window;
};

constexpr Config kConfigs[] = {
    {"serial", false, false, false, 1},
    {"parallel", true, false, false, 1},
    {"batched-sv", true, true, false, 1},
    {"pipelined", true, false, true, 4},
};
constexpr std::size_t kConfigCount = sizeof(kConfigs) / sizeof(kConfigs[0]);

std::unique_ptr<core::EbvNode> make_node(const Config& cfg, util::ThreadPool* pool,
                                         const chain::ChainParams& params,
                                         const std::string& data_dir = {},
                                         core::SigCache* sigcache = nullptr) {
    core::EbvNodeOptions options;
    options.params = params;
    options.data_dir = data_dir;
    options.validator.script_pool = cfg.use_pool ? pool : nullptr;
    options.validator.batch_verify = cfg.batch_verify;
    options.validator.sighash_template = true;
    options.validator.sigcache = sigcache;
    options.pipeline.enabled = cfg.pipelined;
    options.pipeline.window = cfg.window;
    return std::make_unique<core::EbvNode>(options);
}

/// The serial-validator error each mutation is designed to trip.
core::EbvError expected_error(workload::Mutation m) {
    using workload::Mutation;
    switch (m) {
        case Mutation::kMbrSibling:
        case Mutation::kMbrIndex:
        case Mutation::kElsValue:
        case Mutation::kElsLockScript:
        case Mutation::kElsLocktime:
        case Mutation::kElsVersion:
        case Mutation::kElsStakePosition:
            return core::EbvError::kExistenceFailed;
        case Mutation::kInputHeight: return core::EbvError::kUnknownHeight;
        case Mutation::kInputOutIndex: return core::EbvError::kBadOutIndex;
        case Mutation::kUnlockScript: return core::EbvError::kScriptFailure;
        case Mutation::kShiftedStakePosition: return core::EbvError::kBadStakePosition;
        case Mutation::kStaleMerkleRoot: return core::EbvError::kMerkleRootMismatch;
        case Mutation::kDropCoinbase: return core::EbvError::kFirstTxNotCoinbase;
        case Mutation::kInjectCoinbase: return core::EbvError::kUnexpectedCoinbase;
        case Mutation::kEmptyTxList: return core::EbvError::kEmptyBlock;
        case Mutation::kDoubleSpendInBlock: return core::EbvError::kDoubleSpendInBlock;
        case Mutation::kCrossBlockDoubleSpendNear:
        case Mutation::kCrossBlockDoubleSpendFar:
            return core::EbvError::kUnspentFailed;
        case Mutation::kImmatureCoinbaseSpend:
            return core::EbvError::kImmatureCoinbaseSpend;
        case Mutation::kNegativeFee: return core::EbvError::kNegativeFee;
        case Mutation::kCoinbaseOverpay: return core::EbvError::kCoinbaseValueTooHigh;
    }
    return core::EbvError::kEmptyBlock;
}

/// An empty competing Bitcoin-format block on the given parent.
chain::Block empty_block(const crypto::Hash256& parent, std::uint32_t height,
                         const chain::ChainParams& params, std::uint32_t salt) {
    return chain::assemble_block(
        parent, chain::make_coinbase(height, params.subsidy_at(height),
                                     script::Script{0x51}, salt),
        {}, /*time=*/1000 + height);
}

/// An empty competing EBV block on the given parent.
core::EbvBlock empty_ebv_block(const crypto::Hash256& parent, std::uint32_t height,
                               const chain::ChainParams& params, std::uint64_t salt) {
    core::EbvBlock block;
    core::EbvTransaction coinbase;
    coinbase.coinbase_data = {static_cast<std::uint8_t>(height),
                              static_cast<std::uint8_t>(height >> 8),
                              static_cast<std::uint8_t>(salt),
                              static_cast<std::uint8_t>(salt >> 8),
                              static_cast<std::uint8_t>(salt >> 16)};
    coinbase.outputs.push_back(
        chain::TxOut{params.subsidy_at(height), script::Script{0x51}});
    block.txs.push_back(std::move(coinbase));
    block.header.prev_hash = parent;
    block.assign_stake_positions();
    return block;
}

/// Bit-identical node state: height, tip, and the full bit-vector set.
void expect_same_state(const core::EbvNode& expected, const core::EbvNode& actual,
                       const std::string& label) {
    EXPECT_EQ(expected.next_height(), actual.next_height()) << label;
    EXPECT_EQ(expected.headers().tip_hash(), actual.headers().tip_hash()) << label;
    EXPECT_EQ(expected.status_memory_bytes(), actual.status_memory_bytes()) << label;
    EXPECT_TRUE(expected.status() == actual.status()) << label;
}

void expect_same_batch(const ibd::BatchResult& expected, const ibd::BatchResult& actual,
                       const std::string& label) {
    EXPECT_EQ(expected.connected, actual.connected) << label;
    ASSERT_EQ(expected.failure.has_value(), actual.failure.has_value()) << label;
    if (expected.failure.has_value()) {
        EXPECT_EQ(expected.failure->block_index, actual.failure->block_index) << label;
        EXPECT_EQ(expected.failure->height, actual.failure->height) << label;
        EXPECT_TRUE(expected.failure->failure == actual.failure->failure)
            << label << " expected=" << expected.failure->failure.describe()
            << " actual=" << actual.failure->failure.describe();
    }
}

class ScenarioMatrix : public ::testing::Test {
protected:
    static constexpr std::size_t kChainLen = 30;

    void SetUp() override {
        scrub_env();
        gen_options_ = matrix_gen_options(7);
        workload::ChainGenerator gen(gen_options_);
        for (std::size_t i = 0; i < kChainLen; ++i) {
            auto converted = converter_.convert_block(gen.next_block());
            ASSERT_TRUE(converted.has_value());
            chain_.push_back(*converted);
        }
    }

    workload::GeneratorOptions gen_options_;
    intermediary::Converter converter_;
    std::vector<core::EbvBlock> chain_;
};

// Every mutation, through every configuration: the serial validator
// reports the designed error at the mutated block, and the other three
// configurations reproduce its tuple and end state bit for bit.
TEST_F(ScenarioMatrix, EveryMutationRejectsIdenticallyAcrossConfigs) {
    util::ThreadPool pool(4);
    workload::Adversary adversary(1);

    for (const workload::Mutation m : workload::kAllMutations) {
        SCOPED_TRACE(workload::to_string(m));

        // Find a block (past the midpoint, so there is committed history
        // to double-spend against) where the mutation applies.
        std::vector<core::EbvBlock> blocks;
        std::optional<workload::AppliedMutation> applied;
        for (std::size_t target = kChainLen / 2; target < kChainLen && !applied;
             ++target) {
            blocks = chain_;
            applied = adversary.apply(m, blocks, target, &converter_.archive());
        }
        ASSERT_TRUE(applied.has_value()) << "mutation never applied";

        std::vector<std::unique_ptr<core::EbvNode>> nodes;
        std::optional<ibd::BatchResult> serial;
        for (const Config& cfg : kConfigs) {
            nodes.push_back(make_node(cfg, &pool, gen_options_.params));
            const ibd::BatchResult result = nodes.back()->submit_blocks(blocks);
            ASSERT_TRUE(result.failure.has_value()) << cfg.name;
            if (!serial) {
                serial = result;
                EXPECT_EQ(result.failure->block_index, applied->block);
                EXPECT_EQ(result.failure->failure.error, expected_error(m))
                    << result.failure->failure.describe();
            } else {
                expect_same_batch(*serial, result, cfg.name);
                expect_same_state(*nodes.front(), *nodes.back(), cfg.name);
            }
        }
    }
}

// The sigcache must never change a verdict: a warm cache holds only
// signatures that verified TRUE, every mutation's failure is something the
// cache cannot vouch for, and failed checks always re-verify. Re-run the
// whole mutation catalogue with a cache warmed on the clean chain and
// compare against a cold serial baseline — tuples and state bit-identical
// across all four configurations (the "cache on" half of the on/off/evicted
// guarantee; targeted poisoning/eviction lives in core_sigcache_test).
TEST_F(ScenarioMatrix, EveryMutationRejectsIdenticallyWithWarmSigCache) {
    util::ThreadPool pool(4);
    workload::Adversary adversary(1);

    // Warm one shared cache by fully validating the clean chain once; every
    // honest signature in `chain_` is now admission-equivalent cached.
    core::SigCache cache;
    {
        auto warm = make_node(kConfigs[1], &pool, gen_options_.params, {}, &cache);
        ASSERT_TRUE(warm->submit_blocks(chain_).ok());
    }
    ASSERT_GT(cache.size(), 0u);

    for (const workload::Mutation m : workload::kAllMutations) {
        SCOPED_TRACE(workload::to_string(m));

        std::vector<core::EbvBlock> blocks;
        std::optional<workload::AppliedMutation> applied;
        for (std::size_t target = kChainLen / 2; target < kChainLen && !applied;
             ++target) {
            blocks = chain_;
            applied = adversary.apply(m, blocks, target, &converter_.archive());
        }
        ASSERT_TRUE(applied.has_value()) << "mutation never applied";

        // Cold serial baseline (no cache) is the contract's ground truth.
        auto baseline = make_node(kConfigs[0], &pool, gen_options_.params);
        const ibd::BatchResult cold = baseline->submit_blocks(blocks);
        ASSERT_TRUE(cold.failure.has_value());
        EXPECT_EQ(cold.failure->failure.error, expected_error(m))
            << cold.failure->failure.describe();

        for (const Config& cfg : kConfigs) {
            auto node = make_node(cfg, &pool, gen_options_.params, {}, &cache);
            const ibd::BatchResult result = node->submit_blocks(blocks);
            ASSERT_TRUE(result.failure.has_value()) << cfg.name;
            expect_same_batch(cold, result, std::string(cfg.name) + "+sigcache");
            expect_same_state(*baseline, *node, std::string(cfg.name) + "+sigcache");
        }
    }
}

// A deep reorg — 20 blocks disconnected, far past the pipelined window of
// 4 — must land every configuration on the same branch state, identical to
// validating the winning chain directly.
TEST(ScenarioReorg, DeepReorgCrossesWindowBoundariesIdentically) {
    scrub_env();
    const auto gen_options = matrix_gen_options(11);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    constexpr std::uint32_t kForkAt = 10;
    std::vector<core::EbvBlock> main_chain;
    for (std::uint32_t i = 0; i < kForkAt; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        main_chain.push_back(*converted);
    }

    // Snapshot the fork point, then let main and branch diverge.
    workload::ChainGenerator branch_gen = gen.fork(0xf00d);
    intermediary::Converter branch_converter = converter;

    for (std::uint32_t i = 0; i < 20; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        main_chain.push_back(*converted);
    }
    std::vector<core::EbvBlock> branch;
    for (std::uint32_t i = 0; i < 25; ++i) {
        auto converted = branch_converter.convert_block(branch_gen.next_block());
        ASSERT_TRUE(converted.has_value());
        branch.push_back(*converted);
    }

    // Control: the winning chain validated directly, serially.
    util::ThreadPool pool(4);
    auto control = make_node(kConfigs[0], &pool, gen_options.params);
    ASSERT_TRUE(control
                    ->submit_blocks(std::span<const core::EbvBlock>(main_chain.data(),
                                                                    kForkAt))
                    .ok());
    ASSERT_TRUE(control->submit_blocks(branch).ok());

    for (const Config& cfg : kConfigs) {
        TempDir dir;
        auto node = make_node(cfg, &pool, gen_options.params, dir.str());
        ASSERT_TRUE(node->submit_blocks(main_chain).ok()) << cfg.name;

        auto outcome = core::reorg_to(*node, branch);
        ASSERT_TRUE(outcome.has_value()) << cfg.name << ": "
                                         << to_string(outcome.error());
        EXPECT_TRUE(outcome->switched) << cfg.name;
        EXPECT_EQ(outcome->fork_height, kForkAt - 1) << cfg.name;
        EXPECT_EQ(outcome->blocks_disconnected, 20u) << cfg.name;
        EXPECT_EQ(outcome->blocks_connected, 25u) << cfg.name;
        expect_same_state(*control, *node, cfg.name);
    }
}

// A hostile branch (tampered unlocking script mid-branch) must fail with
// the same tuple under every configuration and roll back to exactly the
// pre-reorg state.
TEST(ScenarioReorg, HostileBranchRollsBackIdenticallyAcrossConfigs) {
    scrub_env();
    const auto gen_options = matrix_gen_options(13);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    constexpr std::uint32_t kForkAt = 12;
    std::vector<core::EbvBlock> main_chain;
    for (std::uint32_t i = 0; i < kForkAt; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        main_chain.push_back(*converted);
    }
    workload::ChainGenerator branch_gen = gen.fork(0xbeef);
    intermediary::Converter branch_converter = converter;
    for (std::uint32_t i = 0; i < 8; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        main_chain.push_back(*converted);
    }
    std::vector<core::EbvBlock> branch;
    for (std::uint32_t i = 0; i < 12; ++i) {
        auto converted = branch_converter.convert_block(branch_gen.next_block());
        ASSERT_TRUE(converted.has_value());
        branch.push_back(*converted);
    }

    // Tamper a signature somewhere past the first half of the branch.
    workload::Adversary adversary(2);
    std::optional<workload::AppliedMutation> applied;
    for (std::size_t target = branch.size() / 2; target < branch.size() && !applied;
         ++target) {
        applied = adversary.apply(workload::Mutation::kUnlockScript, branch, target);
    }
    ASSERT_TRUE(applied.has_value());

    // Control: the main chain validated directly (what rollback restores).
    util::ThreadPool pool(4);
    auto control = make_node(kConfigs[0], &pool, gen_options.params);
    ASSERT_TRUE(control->submit_blocks(main_chain).ok());

    std::optional<core::EbvValidationFailure> serial_failure;
    for (const Config& cfg : kConfigs) {
        TempDir dir;
        auto node = make_node(cfg, &pool, gen_options.params, dir.str());
        ASSERT_TRUE(node->submit_blocks(main_chain).ok()) << cfg.name;

        auto outcome = core::reorg_to(*node, branch);
        ASSERT_TRUE(outcome.has_value()) << cfg.name << ": "
                                         << to_string(outcome.error());
        EXPECT_FALSE(outcome->switched) << cfg.name;
        EXPECT_EQ(outcome->branch_failure.error, core::EbvError::kScriptFailure)
            << cfg.name;
        if (!serial_failure) {
            serial_failure = outcome->branch_failure;
        } else {
            EXPECT_TRUE(*serial_failure == outcome->branch_failure)
                << cfg.name << " serial=" << serial_failure->describe()
                << " actual=" << outcome->branch_failure.describe();
        }
        expect_same_state(*control, *node, cfg.name);
    }
}

// kRollbackFailed is reachable: if the block store cannot reproduce the
// suffix being replaced (external truncation/tampering), reorg_to refuses
// up front and the node state is untouched.
TEST(ScenarioReorg, EbvTamperedStoreRefusesReorg) {
    scrub_env();
    const auto gen_options = matrix_gen_options(17);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    TempDir dir;
    core::EbvNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    core::EbvNode node(options);

    std::vector<core::EbvBlock> blocks;
    for (int i = 0; i < 12; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        blocks.push_back(*converted);
        ASSERT_TRUE(node.submit_block(blocks.back()).has_value());
    }
    const auto tip_before = node.headers().tip_hash();
    const auto memory_before = node.status_memory_bytes();

    // Corrupt the store: replace the stored tip block with a different one.
    ASSERT_NE(node.block_store(), nullptr);
    node.block_store()->truncate(11);
    node.block_store()->append(blocks[0]);

    // A perfectly valid longer branch...
    std::vector<core::EbvBlock> branch;
    crypto::Hash256 parent = blocks[9].header.hash();
    for (std::uint32_t i = 0; i < 4; ++i) {
        branch.push_back(empty_ebv_block(parent, 10 + i, options.params, 900 + i));
        parent = branch.back().header.hash();
    }

    // ...is refused, because a failed connect could never be rolled back.
    auto outcome = core::reorg_to(node, branch);
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error(), core::EbvReorgError::kRollbackFailed);
    EXPECT_EQ(node.next_height(), 12u);
    EXPECT_EQ(node.headers().tip_hash(), tip_before);
    EXPECT_EQ(node.status_memory_bytes(), memory_before);
}

TEST(ScenarioReorg, BaselineTamperedStoreRefusesReorg) {
    scrub_env();
    const auto gen_options = matrix_gen_options(19);
    workload::ChainGenerator gen(gen_options);

    TempDir dir;
    chain::BitcoinNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    options.device = storage::DeviceProfile::none();
    options.keep_blocks = true;
    chain::BitcoinNode node(options);

    std::vector<chain::Block> blocks;
    for (int i = 0; i < 12; ++i) {
        blocks.push_back(gen.next_block());
        ASSERT_TRUE(node.submit_block(blocks.back()).has_value());
    }
    const auto tip_before = node.headers().tip_hash();
    const auto utxos_before = node.utxo().size();

    ASSERT_NE(node.block_store(), nullptr);
    node.block_store()->truncate(11);
    node.block_store()->append(blocks[0]);

    std::vector<chain::Block> branch;
    crypto::Hash256 parent = blocks[9].header.hash();
    for (std::uint32_t i = 0; i < 4; ++i) {
        branch.push_back(empty_block(parent, 10 + i, options.params, 700 + i));
        parent = branch.back().header.hash();
    }

    auto outcome = chain::reorg_to(node, branch);
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error(), chain::ReorgError::kRollbackFailed);
    EXPECT_EQ(node.next_height(), 12u);
    EXPECT_EQ(node.headers().tip_hash(), tip_before);
    EXPECT_EQ(node.utxo().size(), utxos_before);
}

// BIP30-style cross-block duplicate txid: the baseline validator must
// reject a block that re-creates a still-unspent txid (the coins would
// otherwise be silently overwritten).
TEST(ScenarioDuplicateTxid, BaselineRejectsRecreatedTxid) {
    scrub_env();
    chain::BitcoinNodeOptions options;  // simnet, in-memory
    chain::BitcoinNode node(options);

    std::vector<chain::Block> blocks;
    crypto::Hash256 parent{};
    for (std::uint32_t h = 0; h < 3; ++h) {
        blocks.push_back(empty_block(parent, h, options.params, 100 + h));
        parent = blocks.back().header.hash();
        ASSERT_TRUE(node.submit_block(blocks.back()).has_value());
    }

    // Same subsidy schedule at height 3, so the only objection is the txid.
    const chain::Block dup =
        workload::duplicate_txid_block(blocks[1], node.headers().tip_hash(),
                                       /*time=*/4000);
    ASSERT_EQ(dup.txs[0].txid(), blocks[1].txs[0].txid());
    auto result = node.submit_block(dup);
    ASSERT_FALSE(result.has_value());
    EXPECT_EQ(result.error().error, chain::BlockError::kDuplicateTxid);
    EXPECT_EQ(result.error().tx_index, 0u);
    EXPECT_EQ(node.next_height(), 3u);  // untouched
}

// The EBV counterpart pin: state is keyed by (height, stake position), not
// txid, so the same duplicate is *accepted* — identically by every
// configuration — and clobbers nothing.
TEST(ScenarioDuplicateTxid, EbvAcceptsRecreatedTxidIdentically) {
    scrub_env();
    const chain::ChainParams params = chain::ChainParams::simnet();
    intermediary::Converter converter;

    std::vector<core::EbvBlock> blocks;
    crypto::Hash256 btc_parent{};
    for (std::uint32_t h = 0; h < 3; ++h) {
        const chain::Block b = empty_block(btc_parent, h, params, 100 + h);
        btc_parent = b.header.hash();
        auto converted = converter.convert_block(b);
        ASSERT_TRUE(converted.has_value());
        blocks.push_back(*converted);
    }
    blocks.push_back(
        workload::duplicate_txid_ebv_block(blocks[1], blocks[2].header.hash()));
    ASSERT_EQ(blocks[3].txs[0].coinbase_data, blocks[1].txs[0].coinbase_data);

    util::ThreadPool pool(4);
    std::vector<std::unique_ptr<core::EbvNode>> nodes;
    for (const Config& cfg : kConfigs) {
        nodes.push_back(make_node(cfg, &pool, params));
        const ibd::BatchResult result = nodes.back()->submit_blocks(blocks);
        EXPECT_TRUE(result.ok()) << cfg.name
                                 << (result.failure
                                         ? result.failure->failure.describe()
                                         : std::string());
        EXPECT_EQ(nodes.back()->next_height(), 4u) << cfg.name;
        if (nodes.size() > 1) {
            expect_same_state(*nodes.front(), *nodes.back(), cfg.name);
        }
    }
}

// Maximal-inflation scenarios: individually in-range values whose *sums*
// leave [0, kMaxMoney]. Both the per-tx output sum (structural) and the
// per-tx input sum (connect-time) must be caught, with identical tuples
// across every configuration and in the baseline validator.
class ScenarioInflation : public ::testing::Test {
protected:
    void SetUp() override {
        scrub_env();
        params_ = chain::ChainParams::simnet();
        params_.coinbase_maturity = 2;
        params_.initial_subsidy = chain::kMaxMoney - 5;

        key_ = crypto::PrivateKey::generate(rng_);
        lock_ = script::make_p2pk(key_.public_key());

        // Four near-max coinbases, all to the same spendable key.
        crypto::Hash256 parent{};
        for (std::uint32_t h = 0; h < 4; ++h) {
            blocks_.push_back(chain::assemble_block(
                parent,
                chain::make_coinbase(h, params_.subsidy_at(h), lock_, h),
                {}, /*time=*/1000 + h));
            parent = blocks_.back().header.hash();
        }
    }

    /// A block at height 4 whose first tx spends the coinbases of blocks 0
    /// and 1: each input is in range, the sum is ~2x the supply cap.
    chain::Block inflation_block() {
        chain::Transaction tx;
        tx.vin.push_back(
            chain::TxIn{chain::OutPoint{blocks_[0].txs[0].txid(), 0}, {}, 0xffffffff});
        tx.vin.push_back(
            chain::TxIn{chain::OutPoint{blocks_[1].txs[0].txid(), 0}, {}, 0xffffffff});
        tx.vout.push_back(chain::TxOut{1000, lock_});
        for (std::size_t i = 0; i < tx.vin.size(); ++i) {
            tx.vin[i].unlock_script =
                script::make_p2pk_unlock(chain::sign_input(tx, i, lock_, key_));
        }
        tx.invalidate_cache();
        return chain::assemble_block(
            blocks_[3].header.hash(),
            chain::make_coinbase(4, params_.subsidy_at(4), lock_, 99), {tx},
            /*time=*/1004);
    }

    chain::ChainParams params_;
    util::Rng rng_{99};
    crypto::PrivateKey key_ = crypto::PrivateKey::generate(rng_);
    script::Script lock_;
    std::vector<chain::Block> blocks_;
};

TEST_F(ScenarioInflation, BaselineRejectsInputSumOverflow) {
    chain::BitcoinNodeOptions options;
    options.params = params_;
    chain::BitcoinNode node(options);
    for (const chain::Block& b : blocks_) ASSERT_TRUE(node.submit_block(b).has_value());

    auto result = node.submit_block(inflation_block());
    ASSERT_FALSE(result.has_value());
    EXPECT_EQ(result.error().error, chain::BlockError::kValueOutOfRange);
    EXPECT_EQ(result.error().tx_index, 1u);
    EXPECT_EQ(result.error().input_index, 1u);
}

TEST_F(ScenarioInflation, EbvRejectsInputSumOverflowIdentically) {
    intermediary::Converter converter;
    std::vector<core::EbvBlock> ebv;
    for (const chain::Block& b : blocks_) {
        auto converted = converter.convert_block(b);
        ASSERT_TRUE(converted.has_value());
        ebv.push_back(*converted);
    }
    auto hostile = converter.convert_block(inflation_block());
    ASSERT_TRUE(hostile.has_value());
    ebv.push_back(*hostile);

    util::ThreadPool pool(4);
    std::vector<std::unique_ptr<core::EbvNode>> nodes;
    std::optional<ibd::BatchResult> serial;
    for (const Config& cfg : kConfigs) {
        nodes.push_back(make_node(cfg, &pool, params_));
        const ibd::BatchResult result = nodes.back()->submit_blocks(ebv);
        ASSERT_TRUE(result.failure.has_value()) << cfg.name;
        if (!serial) {
            serial = result;
            EXPECT_EQ(result.failure->block_index, 4u);
            EXPECT_EQ(result.failure->failure.error, core::EbvError::kValueOutOfRange);
            EXPECT_EQ(result.failure->failure.tx_index, 1u);
            EXPECT_EQ(result.failure->failure.input_index, 1u);
        } else {
            expect_same_batch(*serial, result, cfg.name);
            expect_same_state(*nodes.front(), *nodes.back(), cfg.name);
        }
    }
}

TEST_F(ScenarioInflation, OutputSumOverflowRejectedEverywhere) {
    // A genesis coinbase with two outputs of kMaxMoney - 5 each: every
    // output is in range, the transaction total is not.
    chain::Transaction coinbase =
        chain::make_coinbase(0, params_.subsidy_at(0), lock_, 1);
    coinbase.vout.push_back(chain::TxOut{params_.subsidy_at(0), lock_});
    coinbase.invalidate_cache();
    const chain::Block block =
        chain::assemble_block(crypto::Hash256{}, std::move(coinbase), {}, 1000);

    chain::BitcoinNodeOptions options;
    options.params = params_;
    chain::BitcoinNode baseline(options);
    auto baseline_result = baseline.submit_block(block);
    ASSERT_FALSE(baseline_result.has_value());
    EXPECT_EQ(baseline_result.error().error, chain::BlockError::kValueOutOfRange);
    EXPECT_EQ(baseline_result.error().tx_index, 0u);

    intermediary::Converter converter;
    auto ebv = converter.convert_block(block);
    ASSERT_TRUE(ebv.has_value());

    util::ThreadPool pool(4);
    for (const Config& cfg : kConfigs) {
        auto node = make_node(cfg, &pool, params_);
        const std::vector<core::EbvBlock> one{*ebv};
        const ibd::BatchResult result = node->submit_blocks(one);
        ASSERT_TRUE(result.failure.has_value()) << cfg.name;
        EXPECT_EQ(result.failure->block_index, 0u) << cfg.name;
        EXPECT_EQ(result.failure->failure.error, core::EbvError::kValueOutOfRange)
            << cfg.name;
        EXPECT_EQ(result.failure->failure.tx_index, 0u) << cfg.name;
    }
}

// Seed-logged randomized soak: hundreds of blocks of valid traffic
// interleaved with random mutations, deep reorgs (sometimes past the
// pipeline window), reorg-backs, and hostile branches — all four
// configurations must agree on every accept, every reject tuple, and every
// intermediate state. Override EBV_SOAK_SEED / EBV_SOAK_BLOCKS to replay a
// failure or to scale up (the nightly CI job runs a fresh seed each time).
TEST(ScenarioSoak, RandomizedSoak) {
    scrub_env();
    std::uint64_t seed = 0x5eed2026ULL;
    if (const char* env = std::getenv("EBV_SOAK_SEED")) {
        seed = std::strtoull(env, nullptr, 0);
    }
    std::size_t total_blocks = 500;
    if (const char* env = std::getenv("EBV_SOAK_BLOCKS")) {
        total_blocks = std::strtoull(env, nullptr, 0);
    }
    std::cerr << "[soak] seed=" << seed << " blocks=" << total_blocks
              << " (replay: EBV_SOAK_SEED=" << seed << ")\n";
    RecordProperty("soak_seed", std::to_string(seed));
    RecordProperty("soak_blocks", std::to_string(total_blocks));

    const auto gen_options = matrix_gen_options(seed);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;
    workload::Adversary adversary(seed ^ 0xa5a5a5a5ULL);
    util::Rng dice(seed ^ 0x5c5c5c5cULL);

    util::ThreadPool pool(4);
    TempDir dirs[kConfigCount];
    std::vector<std::unique_ptr<core::EbvNode>> nodes;
    for (std::size_t i = 0; i < kConfigCount; ++i) {
        nodes.push_back(make_node(kConfigs[i], &pool, gen_options.params,
                                  dirs[i].str()));
    }

    std::vector<core::EbvBlock> all;  // the committed main chain, index == height

    const auto parity = [&](const char* when) {
        for (std::size_t i = 1; i < nodes.size(); ++i) {
            const std::string label = std::string(when) + " height=" +
                                      std::to_string(nodes[0]->next_height()) +
                                      " config=" + kConfigs[i].name;
            expect_same_state(*nodes[0], *nodes[i], label);
        }
    };
    const auto submit_all = [&](std::span<const core::EbvBlock> segment,
                                const char* when) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const ibd::BatchResult r = nodes[i]->submit_blocks(segment);
            ASSERT_TRUE(r.ok()) << when << " config=" << kConfigs[i].name
                                << (r.failure ? r.failure->failure.describe()
                                              : std::string());
        }
    };

    while (all.size() < total_blocks && !::testing::Test::HasFailure()) {
        // Extend the main chain by a random segment.
        const std::size_t n = 1 + dice.below(24);
        const std::size_t seg_start = all.size();
        for (std::size_t i = 0; i < n; ++i) {
            auto converted = converter.convert_block(gen.next_block());
            ASSERT_TRUE(converted.has_value());
            all.push_back(*converted);
        }

        // Sometimes a hostile copy of the segment arrives first: all four
        // nodes must reject it at the same block with the same tuple, then
        // accept the clean remainder.
        if (dice.chance(0.35)) {
            std::vector<core::EbvBlock> hostile = all;
            const auto applied =
                adversary.apply_random(hostile, seg_start, &converter.archive());
            if (applied) {
                const std::span<const core::EbvBlock> bad(
                    hostile.data() + seg_start, hostile.size() - seg_start);
                std::optional<ibd::BatchResult> first;
                for (std::size_t i = 0; i < nodes.size(); ++i) {
                    const ibd::BatchResult r = nodes[i]->submit_blocks(bad);
                    const std::string label =
                        std::string("mutation=") + to_string(applied->mutation) +
                        " block=" + std::to_string(applied->block) +
                        " config=" + kConfigs[i].name;
                    ASSERT_TRUE(r.failure.has_value()) << label;
                    if (!first) {
                        first = r;
                        EXPECT_EQ(r.failure->block_index + seg_start, applied->block)
                            << label;
                    } else {
                        expect_same_batch(*first, r, label);
                    }
                }
                parity("after hostile segment");
            }
        }

        // Everyone catches up to the clean main chain.
        const std::uint32_t from = nodes[0]->next_height();
        submit_all(std::span<const core::EbvBlock>(all.data() + from,
                                                   all.size() - from),
                   "clean segment");
        parity("after clean segment");

        // Occasionally reorg: switch to a competing branch of empty blocks
        // (sometimes deeper than the pipeline window), then either the
        // branch was hostile (state must roll back) or reorg back to main.
        if (all.size() >= 6 && dice.chance(0.30)) {
            const auto tip = static_cast<std::uint32_t>(all.size());
            const std::uint32_t max_depth = std::min<std::uint32_t>(20, tip - 2);
            const std::uint32_t depth =
                1 + static_cast<std::uint32_t>(dice.below(max_depth));
            const std::uint32_t fork = tip - depth;  // first replaced height
            const bool hostile_branch = dice.chance(0.3);
            const std::size_t hostile_index = depth / 2;

            std::vector<core::EbvBlock> branch;
            crypto::Hash256 parent = all[fork - 1].header.hash();
            for (std::uint32_t j = 0; j <= depth; ++j) {
                core::EbvBlock block = empty_ebv_block(
                    parent, fork + j, gen_options.params, dice.next());
                if (hostile_branch && j == hostile_index) {
                    block.txs[0].outputs[0].value += 1;  // coinbase overpays
                    block.assign_stake_positions();
                }
                parent = block.header.hash();
                branch.push_back(std::move(block));
            }

            std::optional<core::EbvValidationFailure> first_failure;
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                auto outcome = core::reorg_to(*nodes[i], branch);
                const std::string label = std::string("reorg depth=") +
                                          std::to_string(depth) +
                                          " config=" + kConfigs[i].name;
                ASSERT_TRUE(outcome.has_value())
                    << label << ": " << to_string(outcome.error());
                if (hostile_branch) {
                    EXPECT_FALSE(outcome->switched) << label;
                    EXPECT_EQ(outcome->branch_failure.error,
                              core::EbvError::kCoinbaseValueTooHigh)
                        << label;
                    if (!first_failure) {
                        first_failure = outcome->branch_failure;
                    } else {
                        EXPECT_TRUE(*first_failure == outcome->branch_failure) << label;
                    }
                } else {
                    EXPECT_TRUE(outcome->switched) << label;
                }
            }
            parity(hostile_branch ? "after hostile branch" : "after reorg");

            if (!hostile_branch) {
                // Reorg back: the saved main suffix plus two fresh blocks.
                std::vector<core::EbvBlock> back(all.begin() + fork, all.end());
                for (int j = 0; j < 2; ++j) {
                    auto converted = converter.convert_block(gen.next_block());
                    ASSERT_TRUE(converted.has_value());
                    back.push_back(*converted);
                    all.push_back(*converted);
                }
                for (std::size_t i = 0; i < nodes.size(); ++i) {
                    auto outcome = core::reorg_to(*nodes[i], back);
                    ASSERT_TRUE(outcome.has_value())
                        << "reorg-back config=" << kConfigs[i].name << ": "
                        << to_string(outcome.error());
                    EXPECT_TRUE(outcome->switched)
                        << "reorg-back config=" << kConfigs[i].name;
                }
                parity("after reorg-back");
            }
        }
    }

    ASSERT_FALSE(::testing::Test::HasFailure())
        << "divergence found; replay with EBV_SOAK_SEED=" << seed
        << " EBV_SOAK_BLOCKS=" << total_blocks;
    EXPECT_GE(nodes[0]->next_height(), total_blocks);
}

}  // namespace
}  // namespace ebv
