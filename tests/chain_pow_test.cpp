#include <gtest/gtest.h>

#include "chain/pow.hpp"

namespace ebv::chain {
namespace {

TEST(Pow, ExpandKnownCompactValues) {
    // Bitcoin genesis difficulty: 0x1d00ffff.
    const auto genesis = expand_compact_target(0x1d00ffff);
    ASSERT_TRUE(genesis.has_value());
    EXPECT_EQ(crypto::U256::from_hex(
                  "00000000ffff0000000000000000000000000000000000000000000000000000"),
              *genesis);

    // Small exponents shift the mantissa down.
    const auto tiny = expand_compact_target(0x01003456);
    ASSERT_TRUE(tiny.has_value());
    EXPECT_EQ(tiny->limbs[0], 0x00u);

    const auto three = expand_compact_target(0x03123456);
    ASSERT_TRUE(three.has_value());
    EXPECT_EQ(three->limbs[0], 0x123456u);
}

TEST(Pow, RejectsNegativeAndOverflow) {
    EXPECT_FALSE(expand_compact_target(0x01803456).has_value());  // sign bit
    EXPECT_FALSE(expand_compact_target(0xff123456).has_value());  // overflow
}

TEST(Pow, CompactRoundTripsCanonicalTargets) {
    for (const std::uint32_t bits : {0x1d00ffffu, 0x207fffffu, 0x1b0404cbu, 0x03123456u}) {
        const auto target = expand_compact_target(bits);
        ASSERT_TRUE(target.has_value()) << std::hex << bits;
        EXPECT_EQ(compact_from_target(*target), bits) << std::hex << bits;
    }
    EXPECT_EQ(compact_from_target(crypto::U256::zero()), 0u);
}

TEST(Pow, CheckProofOfWorkAgainstEasyTarget) {
    BlockHeader header;
    header.bits = 0x207fffff;  // maximal regtest-style target
    // Nearly any hash passes this target.
    EXPECT_TRUE(check_proof_of_work(header));

    header.bits = 0x03000001;  // absurdly hard target
    EXPECT_FALSE(check_proof_of_work(header));
}

TEST(Pow, GrindToRealTarget) {
    BlockHeader header;
    header.bits = 0x1f00ffff;  // requires ~1 byte of leading zeros
    int attempts = 0;
    while (!check_proof_of_work(header) && attempts < 200'000) {
        ++header.nonce;
        ++attempts;
    }
    EXPECT_TRUE(check_proof_of_work(header)) << "no solution in " << attempts;
    EXPECT_GT(attempts, 0);
}

TEST(Pow, RetargetScalesAndClamps) {
    const auto base = *expand_compact_target(0x1d00ffff);

    // Blocks came in twice as fast: difficulty doubles (target halves).
    const auto harder = retarget(base, 600, 1200);
    EXPECT_TRUE(crypto::u256_less(harder, base));

    // Blocks came in twice as slow: target doubles.
    const auto easier = retarget(base, 2400, 1200);
    EXPECT_TRUE(crypto::u256_less(base, easier));

    // Clamped at 4x in both directions.
    const auto clamped_fast = retarget(base, 1, 1200);
    const auto quarter = retarget(base, 300, 1200);
    EXPECT_EQ(clamped_fast, quarter);

    const auto clamped_slow = retarget(base, 1'000'000, 1200);
    const auto quadruple = retarget(base, 4800, 1200);
    EXPECT_EQ(clamped_slow, quadruple);
}

}  // namespace
}  // namespace ebv::chain
