#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <unistd.h>

#include "core/bitvector.hpp"
#include "core/bitvector_set.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ebv::core {
namespace {

TEST(BitVector, AllOnesInitialState) {
    const BitVector v = BitVector::all_ones(13);
    EXPECT_EQ(v.size(), 13u);
    EXPECT_EQ(v.ones(), 13u);
    EXPECT_FALSE(v.none());
    EXPECT_FALSE(v.is_sparse());
    for (std::uint32_t i = 0; i < 13; ++i) EXPECT_TRUE(v.test(i));
    EXPECT_FALSE(v.test(13));
    EXPECT_FALSE(v.test(1000));
}

TEST(BitVector, ResetClearsExactlyOneBit) {
    BitVector v = BitVector::all_ones(10);
    EXPECT_TRUE(v.reset(4));
    EXPECT_FALSE(v.test(4));
    EXPECT_EQ(v.ones(), 9u);
    EXPECT_FALSE(v.reset(4));  // double spend detected
    EXPECT_EQ(v.ones(), 9u);
    EXPECT_FALSE(v.reset(10));  // out of range
}

TEST(BitVector, ZeroSizeVector) {
    const BitVector v = BitVector::all_ones(0);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.memory_bytes(), v.dense_memory_bytes());
}

TEST(BitVector, BecomesSparseAsOnesDecline) {
    // 1024 bits dense = 128 bytes; sparse pays 2 bytes per surviving one.
    BitVector v = BitVector::all_ones(1024);
    EXPECT_FALSE(v.is_sparse());
    util::Rng rng(1);
    std::set<std::uint32_t> cleared;
    while (v.ones() > 40) {
        const auto i = static_cast<std::uint32_t>(rng.below(1024));
        if (cleared.insert(i).second) EXPECT_TRUE(v.reset(i));
    }
    EXPECT_TRUE(v.is_sparse());
    // Semantics preserved across the conversion.
    for (std::uint32_t i = 0; i < 1024; ++i) {
        EXPECT_EQ(v.test(i), cleared.count(i) == 0) << i;
    }
    EXPECT_LT(v.memory_bytes(), v.dense_memory_bytes());
}

TEST(BitVector, SparseResetStillDetectsDoubleSpend) {
    BitVector v = BitVector::all_ones(512);
    for (std::uint32_t i = 0; i < 500; ++i) EXPECT_TRUE(v.reset(i));
    EXPECT_TRUE(v.is_sparse());
    EXPECT_FALSE(v.reset(100));  // already cleared
    EXPECT_TRUE(v.reset(505));
    EXPECT_FALSE(v.reset(505));
}

class BitVectorSerialization : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitVectorSerialization, RoundTripsAtAnySparsity) {
    const std::uint32_t size = 300;
    BitVector v = BitVector::all_ones(size);
    util::Rng rng(GetParam());
    // Clear a parameterized number of bits to hit dense and sparse forms.
    for (std::uint32_t cleared = 0; cleared < GetParam();) {
        if (v.reset(static_cast<std::uint32_t>(rng.below(size)))) ++cleared;
    }

    util::Writer w;
    v.serialize(w);
    util::Reader r(w.data());
    auto decoded = BitVector::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(decoded->ones(), v.ones());
    EXPECT_EQ(decoded->is_sparse(), v.is_sparse());
    EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(Sparsities, BitVectorSerialization,
                         ::testing::Values(0, 1, 10, 100, 250, 290, 299));

TEST(BitVector, DeserializeRejectsBadPadding) {
    // size=9 bits in dense form = 2 bytes; the top 7 bits of byte 1 must be 0.
    util::Writer w;
    w.u8(0);      // dense flag
    w.u16(9);     // size
    w.u8(0xff);
    w.u8(0xff);   // illegal padding bits
    util::Reader r(w.data());
    EXPECT_FALSE(BitVector::deserialize(r).has_value());
}

TEST(BitVector, DeserializeRejectsUnsortedSparse) {
    util::Writer w;
    w.u8(1);    // sparse flag
    w.u16(50);  // size
    w.u16(2);   // two indexes
    w.u16(9);
    w.u16(4);   // descending: malformed
    util::Reader r(w.data());
    EXPECT_FALSE(BitVector::deserialize(r).has_value());
}

TEST(BitVectorSet, InsertSpendDeleteLifecycle) {
    BitVectorSet set;
    set.insert_block(0, 3);
    EXPECT_TRUE(set.has_vector(0));
    EXPECT_TRUE(set.check_unspent(0, 2).has_value());

    EXPECT_TRUE(set.spend(0, 0).has_value());
    EXPECT_TRUE(set.spend(0, 1).has_value());
    EXPECT_TRUE(set.has_vector(0));
    EXPECT_TRUE(set.spend(0, 2).has_value());
    // Fully spent: vector deleted (§IV-E1).
    EXPECT_FALSE(set.has_vector(0));
    EXPECT_EQ(set.memory_bytes(), 0u);

    auto r = set.spend(0, 0);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error(), UvError::kUnknownHeight);
}

TEST(BitVectorSet, UvErrorTaxonomy) {
    BitVectorSet set;
    set.insert_block(5, 4);

    auto unknown = set.check_unspent(6, 0);
    ASSERT_FALSE(unknown.has_value());
    EXPECT_EQ(unknown.error(), UvError::kUnknownHeight);

    auto range = set.check_unspent(5, 4);
    ASSERT_FALSE(range.has_value());
    EXPECT_EQ(range.error(), UvError::kIndexOutOfRange);

    ASSERT_TRUE(set.spend(5, 1).has_value());
    auto spent = set.check_unspent(5, 1);
    ASSERT_FALSE(spent.has_value());
    EXPECT_EQ(spent.error(), UvError::kAlreadySpent);
}

TEST(BitVectorSet, MemoryAccountingTracksOptimization) {
    BitVectorSet set;
    set.insert_block(0, 4096);
    const auto dense_before = set.memory_bytes();
    EXPECT_EQ(set.memory_bytes(), set.dense_memory_bytes());

    // Spend most outputs: the optimized total must drop below dense.
    for (std::uint32_t i = 0; i < 4000; ++i) ASSERT_TRUE(set.spend(0, i).has_value());
    EXPECT_LT(set.memory_bytes(), dense_before);
    EXPECT_LT(set.memory_bytes(), set.dense_memory_bytes());
}

TEST(BitVectorSet, SaveLoadRoundTrip) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("ebv_bvs_" + std::to_string(::getpid()) + ".bin"))
            .string();

    BitVectorSet set;
    util::Rng rng(3);
    for (std::uint32_t h = 0; h < 20; ++h) {
        set.insert_block(h, static_cast<std::uint32_t>(rng.between(1, 600)));
    }
    for (int i = 0; i < 2000; ++i) {
        const auto h = static_cast<std::uint32_t>(rng.below(20));
        if (!set.has_vector(h)) continue;
        (void)set.spend(h, static_cast<std::uint32_t>(rng.below(600)));
    }

    set.save(path);
    auto loaded = BitVectorSet::load(path);
    std::filesystem::remove(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, set);
    EXPECT_EQ(loaded->memory_bytes(), set.memory_bytes());
    EXPECT_EQ(loaded->dense_memory_bytes(), set.dense_memory_bytes());
}

// ---- Sharded spent-bit application (the IBD pipeline's stage 3) ------------

/// Random fixture shared by the batch tests: 32 blocks, ~2000 distinct
/// spends, including one block spent down to deletion.
struct BatchFixture {
    std::vector<std::uint32_t> sizes;
    std::vector<BitVectorSet::SpentRecord> spends;

    BatchFixture() {
        util::Rng rng(11);
        std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
        for (std::uint32_t h = 0; h < 32; ++h)
            sizes.push_back(static_cast<std::uint32_t>(rng.between(1, 300)));
        for (int i = 0; i < 4000; ++i) {
            const auto h = static_cast<std::uint32_t>(rng.below(32));
            const auto p = static_cast<std::uint32_t>(rng.below(sizes[h]));
            if (seen.emplace(h, p).second) spends.push_back({h, p});
        }
        // Fully spend block 7 so the batch path exercises vector deletion.
        for (std::uint32_t p = 0; p < sizes[7]; ++p) {
            if (seen.emplace(7u, p).second) spends.push_back({7u, p});
        }
    }

    [[nodiscard]] BitVectorSet fresh_set() const {
        BitVectorSet set;
        for (std::uint32_t h = 0; h < sizes.size(); ++h) set.insert_block(h, sizes[h]);
        return set;
    }
};

TEST(BitVectorSet, SpendBatchMatchesIndividualSpends) {
    const BatchFixture fx;
    BitVectorSet one_by_one = fx.fresh_set();
    for (const auto& s : fx.spends)
        ASSERT_TRUE(one_by_one.spend(s.height, s.position).has_value());

    BitVectorSet batched = fx.fresh_set();
    batched.spend_batch(fx.spends);  // serial path (no pool)

    EXPECT_TRUE(batched == one_by_one);
    EXPECT_EQ(batched.memory_bytes(), one_by_one.memory_bytes());
    EXPECT_EQ(batched.dense_memory_bytes(), one_by_one.dense_memory_bytes());
    EXPECT_FALSE(batched.has_vector(7));  // fully spent -> deleted
}

TEST(BitVectorSet, SpendBatchParallelMatchesSerial) {
    const BatchFixture fx;
    BitVectorSet serial = fx.fresh_set();
    serial.spend_batch(fx.spends);

    for (const std::size_t threads : {2u, 4u, 8u}) {
        util::ThreadPool pool(threads);
        BitVectorSet parallel = fx.fresh_set();
        parallel.spend_batch(fx.spends, &pool);
        EXPECT_TRUE(parallel == serial) << "threads=" << threads;
        EXPECT_EQ(parallel.memory_bytes(), serial.memory_bytes()) << "threads=" << threads;
        EXPECT_EQ(parallel.vector_count(), serial.vector_count()) << "threads=" << threads;
    }
}

TEST(BitVectorSet, SpendShardAppliesOneShard) {
    BitVectorSet set;
    // Heights 3 and 3+16 share shard 3; height 4 does not.
    set.insert_block(3, 4);
    set.insert_block(19, 4);
    set.insert_block(4, 4);
    ASSERT_EQ(BitVectorSet::shard_of(3), BitVectorSet::shard_of(19));
    ASSERT_NE(BitVectorSet::shard_of(3), BitVectorSet::shard_of(4));

    const std::vector<BitVectorSet::SpentRecord> records{{3, 1}, {19, 2}, {19, 3}};
    set.spend_shard(BitVectorSet::shard_of(3), records.data(), records.size());

    EXPECT_FALSE(set.check_unspent(3, 1).has_value());
    EXPECT_FALSE(set.check_unspent(19, 2).has_value());
    EXPECT_TRUE(set.check_unspent(3, 0).has_value());
    EXPECT_TRUE(set.check_unspent(4, 1).has_value());
}

}  // namespace
}  // namespace ebv::core
