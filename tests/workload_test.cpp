#include <gtest/gtest.h>

#include "chain/node.hpp"
#include "workload/era.hpp"
#include "workload/generator.hpp"
#include "workload/stats.hpp"

namespace ebv::workload {
namespace {

GeneratorOptions small_options(bool signed_mode) {
    GeneratorOptions options;
    options.seed = 1234;
    options.params.coinbase_maturity = 5;
    options.schedule = EraSchedule::flat(4.0, 1.5, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.signed_mode = signed_mode;
    options.key_pool_size = 8;
    return options;
}

TEST(EraSchedule, InterpolatesBetweenAnchors) {
    const EraSchedule schedule = EraSchedule::bitcoin_mainnet();
    const EraPoint early = schedule.at(0);
    const EraPoint mid = schedule.at(50'000);
    const EraPoint late = schedule.at(650'000);

    EXPECT_LT(early.tx_per_block, late.tx_per_block);
    EXPECT_GT(mid.tx_per_block, early.tx_per_block);
    EXPECT_LT(mid.tx_per_block, schedule.at(100'000).tx_per_block);
    // Beyond the last anchor the curve is flat.
    EXPECT_EQ(schedule.at(900'000).tx_per_block, late.tx_per_block);
}

TEST(EraSchedule, ConsolidationEraShrinksOutputs) {
    const EraSchedule schedule = EraSchedule::bitcoin_mainnet();
    const EraPoint normal = schedule.at(400'000);
    const EraPoint consolidation = schedule.at(540'000);
    EXPECT_GT(normal.outputs_per_tx, normal.inputs_per_tx);
    EXPECT_LT(consolidation.outputs_per_tx, consolidation.inputs_per_tx);
}

TEST(ChainGenerator, DeterministicForSameSeed) {
    ChainGenerator a(small_options(false));
    ChainGenerator b(small_options(false));
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(a.next_block().header.hash(), b.next_block().header.hash()) << i;
    }
}

TEST(ChainGenerator, DifferentSeedsDiffer) {
    auto options = small_options(false);
    ChainGenerator a(options);
    options.seed = 999;
    ChainGenerator c(options);
    for (int i = 0; i < 5; ++i) a.next_block();
    ChainGenerator a2(small_options(false));
    bool any_diff = false;
    for (int i = 0; i < 5; ++i) {
        if (a2.next_block().header.hash() != c.next_block().header.hash()) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(ChainGenerator, BlocksChainTogether) {
    ChainGenerator gen(small_options(false));
    crypto::Hash256 prev;
    for (int i = 0; i < 10; ++i) {
        const chain::Block block = gen.next_block();
        EXPECT_EQ(block.header.prev_hash, prev);
        EXPECT_EQ(block.header.merkle_root, block.compute_merkle_root());
        EXPECT_TRUE(block.txs[0].is_coinbase());
        prev = block.header.hash();
    }
}

TEST(ChainGenerator, UtxoPoolGrowsWhenOutputsExceedInputs) {
    ChainGenerator gen(small_options(false));
    for (int i = 0; i < 30; ++i) gen.next_block();
    const auto mid = gen.utxo_pool_size();
    for (int i = 0; i < 30; ++i) gen.next_block();
    EXPECT_GT(gen.utxo_pool_size(), mid);
}

TEST(ChainGenerator, SignedChainPassesFullValidation) {
    // The crucial property: generated blocks are *valid*, signatures and
    // all, under the baseline validator.
    ChainGenerator gen(small_options(true));
    chain::BitcoinNodeOptions node_options;
    node_options.params = gen.options().params;
    chain::BitcoinNode node(node_options);

    for (int i = 0; i < 25; ++i) {
        const chain::Block block = gen.next_block();
        auto r = node.submit_block(block);
        ASSERT_TRUE(r.has_value()) << "height " << i << ": " << r.error().describe();
    }
    EXPECT_EQ(node.next_height(), 25u);
}

TEST(ChainGenerator, UnsignedChainPassesWithSvDisabled) {
    ChainGenerator gen(small_options(false));
    chain::BitcoinNodeOptions node_options;
    node_options.params = gen.options().params;
    node_options.validator.verify_scripts = false;
    chain::BitcoinNode node(node_options);

    for (int i = 0; i < 40; ++i) {
        const chain::Block block = gen.next_block();
        auto r = node.submit_block(block);
        ASSERT_TRUE(r.has_value()) << "height " << i << ": " << r.error().describe();
    }
}

TEST(ChainGenerator, EraScheduleDrivesBlockFill) {
    GeneratorOptions options = small_options(false);
    options.schedule = EraSchedule::bitcoin_mainnet();
    options.height_scale = 10'000.0;  // 65 blocks ≈ the whole history
    options.intensity = 0.1;
    ChainGenerator gen(options);

    std::size_t early_txs = 0;
    std::size_t late_txs = 0;
    for (int i = 0; i < 30; ++i) early_txs += gen.next_block().txs.size();
    for (int i = 30; i < 60; ++i) late_txs += gen.next_block().txs.size();
    EXPECT_GT(late_txs, early_txs);
}

TEST(Stats, QuarterMapping) {
    EXPECT_EQ(real_height_for_quarter(2009, 1), 0u);
    const auto h2015 = real_height_for_quarter(2015, 1);
    const auto h2021 = real_height_for_quarter(2021, 2);
    EXPECT_GT(h2021, h2015);
    EXPECT_EQ(quarter_label_for_height(h2015 + 100), "15-Q1");
    EXPECT_EQ(quarter_label_for_height(real_height_for_quarter(2017, 3) + 100), "17-Q3");
}

}  // namespace
}  // namespace ebv::workload
