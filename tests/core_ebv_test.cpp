// End-to-end tests of the EBV mechanism on a hand-built chain: transaction
// structures, proof construction, the EV/UV/SV pipeline, the fake-position
// defence, and the transaction-inflation bound.
#include <gtest/gtest.h>

#include "chain/miner.hpp"
#include "chain/sighash.hpp"
#include "core/chain_archive.hpp"
#include "core/ebv_transaction.hpp"
#include "core/ebv_validator.hpp"
#include "core/node.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"

namespace ebv::core {
namespace {

using chain::Amount;
using chain::kCoin;

/// Harness that grows a small EBV chain: every block has a coinbase paying
/// the shared key; helpers build spends with real proofs and signatures.
class EbvChainHarness {
public:
    EbvChainHarness() : key_(crypto::PrivateKey::generate(rng_)) {
        options_.params.coinbase_maturity = 2;
        node_ = std::make_unique<EbvNode>(options_);
    }

    script::Script lock() const { return script::make_p2pkh(key_.public_key().id()); }

    EbvTransaction make_coinbase(std::uint32_t height) {
        EbvTransaction tx;
        tx.coinbase_data = util::Bytes{static_cast<std::uint8_t>(height),
                                       static_cast<std::uint8_t>(height >> 8), 0x01};
        tx.outputs.push_back(
            chain::TxOut{options_.params.subsidy_at(height) + fees_, lock()});
        fees_ = 0;
        return tx;
    }

    /// Spend output `out_index` of tx `tx_index` in block `height`.
    EbvTransaction make_spend(std::uint32_t height, std::uint32_t tx_index,
                              std::uint16_t out_index, Amount out_value,
                              std::size_t out_count = 1) {
        EbvTransaction tx;
        EbvInput in = archive_.make_input(height, tx_index, out_index);
        in.prevout.txid.bytes()[0] = 0x77;  // synthetic legacy outpoint
        in.prevout.index = out_index;
        tx.inputs.push_back(std::move(in));
        for (std::size_t o = 0; o < out_count; ++o) {
            tx.outputs.push_back(chain::TxOut{out_value / static_cast<Amount>(out_count),
                                              lock()});
        }

        const Amount in_value = archive_.tidy(height, tx_index).outputs[out_index].value;
        fees_ += in_value - tx.total_output_value();
        sign(tx, 0);
        return tx;
    }

    void sign(EbvTransaction& tx, std::size_t input_index) {
        const script::Script code = lock();
        const crypto::Hash256 digest = ebv_signature_hash(tx, input_index, code, 0x01);
        util::Bytes sig = key_.sign(digest).to_der();
        sig.push_back(0x01);
        tx.inputs[input_index].unlock_script =
            script::make_p2pkh_unlock(sig, key_.public_key());
    }

    EbvBlock package(std::vector<EbvTransaction> txs) {
        EbvBlock block;
        block.txs.push_back(make_coinbase(node_->next_height()));
        for (auto& tx : txs) block.txs.push_back(std::move(tx));
        block.header.prev_hash = node_->headers().empty()
                                     ? crypto::Hash256{}
                                     : node_->headers().tip_hash();
        block.header.time = node_->next_height() * 600;
        block.assign_stake_positions();
        return block;
    }

    util::Result<EbvTimings, EbvValidationFailure> submit(const EbvBlock& block) {
        auto result = node_->submit_block(block);
        if (result) archive_.add_block(block);
        return result;
    }

    void mine_empty(int count) {
        for (int i = 0; i < count; ++i) {
            auto r = submit(package({}));
            ASSERT_TRUE(r.has_value()) << r.error().describe();
        }
    }

    util::Rng rng_{11};
    crypto::PrivateKey key_;
    EbvNodeOptions options_;
    std::unique_ptr<EbvNode> node_;
    ChainArchive archive_;
    Amount fees_ = 0;
};

class EbvValidatorTest : public ::testing::Test {
protected:
    EbvChainHarness h_;
};

TEST(TidyTransaction, SerializationRoundTrip) {
    TidyTransaction tx;
    tx.version = 2;
    tx.input_hashes.resize(3);
    tx.input_hashes[1].bytes()[5] = 9;
    tx.outputs.push_back(chain::TxOut{100, script::Script{0x51}});
    tx.locktime = 7;
    tx.stake_position = 42;

    util::Writer w;
    tx.serialize(w);
    util::Reader r(w.data());
    auto decoded = TidyTransaction::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, tx);
    EXPECT_EQ(decoded->leaf_hash(), tx.leaf_hash());
}

TEST(TidyTransaction, LeafHashCoversStakePosition) {
    TidyTransaction tx;
    tx.outputs.push_back(chain::TxOut{1, script::Script{0x51}});
    const auto h1 = tx.leaf_hash();
    tx.stake_position = 5;
    EXPECT_NE(tx.leaf_hash(), h1);  // MBr therefore authenticates it
}

TEST(EbvTransaction, TidyProjectionHashesInputs) {
    EbvTransaction tx;
    EbvInput in;
    in.height = 3;
    in.out_index = 1;
    in.els.outputs.push_back(chain::TxOut{5, script::Script{0x51}});
    tx.inputs.push_back(in);
    tx.outputs.push_back(chain::TxOut{4, script::Script{0x52}});

    const TidyTransaction tidy = tx.tidy();
    ASSERT_EQ(tidy.input_hashes.size(), 1u);
    EXPECT_EQ(tidy.input_hashes[0], tx.inputs[0].input_hash());
    EXPECT_EQ(tidy.outputs, tx.outputs);
}

TEST(EbvTransaction, SerializationRoundTrip) {
    EbvChainHarness h;
    h.mine_empty(3);
    EbvTransaction tx = h.make_spend(0, 0, 0, 10 * kCoin, 2);

    util::Writer w;
    tx.serialize(w);
    util::Reader r(w.data());
    auto decoded = EbvTransaction::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, tx);
    EXPECT_EQ(decoded->leaf_hash(), tx.leaf_hash());
}

TEST(EbvBlock, StakePositionsAreRunningOutputCounts) {
    EbvChainHarness h;
    h.mine_empty(4);
    std::vector<EbvTransaction> spends;
    spends.push_back(h.make_spend(0, 0, 0, 10 * kCoin, 3));
    spends.push_back(h.make_spend(1, 0, 0, 10 * kCoin, 2));
    const EbvBlock block = h.package(std::move(spends));

    EXPECT_EQ(block.txs[0].stake_position, 0u);
    EXPECT_EQ(block.txs[1].stake_position, block.txs[0].outputs.size());
    EXPECT_EQ(block.txs[2].stake_position,
              block.txs[0].outputs.size() + block.txs[1].outputs.size());
    EXPECT_EQ(block.compute_merkle_root(), block.header.merkle_root);
}

TEST_F(EbvValidatorTest, AcceptsValidChainWithSpends) {
    h_.mine_empty(3);
    auto r = h_.submit(h_.package({h_.make_spend(0, 0, 0, 25 * kCoin, 2)}));
    ASSERT_TRUE(r.has_value()) << r.error().describe();
    EXPECT_EQ(r->inputs, 1u);
    // Block 0's only output is spent, so its vector is gone.
    EXPECT_FALSE(h_.node_->status().has_vector(0));
    EXPECT_TRUE(h_.node_->status().has_vector(3));
}

TEST_F(EbvValidatorTest, SpendingSpentOutputFailsUv) {
    h_.mine_empty(3);
    ASSERT_TRUE(h_.submit(h_.package({h_.make_spend(0, 0, 0, 25 * kCoin)})));
    auto r = h_.submit(h_.package({h_.make_spend(0, 0, 0, 25 * kCoin)}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kUnspentFailed);
}

TEST_F(EbvValidatorTest, DoubleSpendWithinBlockRejected) {
    h_.mine_empty(3);
    auto tx1 = h_.make_spend(0, 0, 0, 20 * kCoin);
    auto tx2 = h_.make_spend(0, 0, 0, 20 * kCoin);
    auto r = h_.submit(h_.package({tx1, tx2}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kDoubleSpendInBlock);
}

TEST_F(EbvValidatorTest, FakeStakePositionRejectedByMerkleCheck) {
    h_.mine_empty(3);
    EbvTransaction spend = h_.make_spend(0, 0, 0, 25 * kCoin);
    // The proposer lies about the stake position inside ELs, trying to
    // shift the absolute position UV tests (the fake-position attack).
    spend.inputs[0].els.stake_position += 1;
    auto r = h_.submit(h_.package({spend}));
    ASSERT_FALSE(r.has_value());
    // The tampered ELs no longer matches the Merkle root: EV catches it.
    EXPECT_EQ(r.error().error, EbvError::kExistenceFailed);
}

TEST_F(EbvValidatorTest, MinerAssignedStakePositionsAreVerified) {
    h_.mine_empty(3);
    EbvBlock block = h_.package({h_.make_spend(0, 0, 0, 25 * kCoin)});
    // A malicious miner packaging wrong stake positions must be rejected
    // even though its own Merkle root covers them.
    block.txs[1].stake_position += 1;
    block.header.merkle_root = block.compute_merkle_root();
    auto r = h_.submit(block);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kBadStakePosition);
}

TEST_F(EbvValidatorTest, ForgedElsFailsEv) {
    h_.mine_empty(3);
    EbvTransaction spend = h_.make_spend(0, 0, 0, 25 * kCoin);
    spend.inputs[0].els.outputs[0].value += 1;  // claim a richer output
    h_.sign(spend, 0);                          // even with a fresh signature
    auto r = h_.submit(h_.package({spend}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kExistenceFailed);
}

TEST_F(EbvValidatorTest, WrongBranchFailsEv) {
    h_.mine_empty(3);
    // Block 3 has two leaves (coinbase + spend) so the branch is non-empty.
    ASSERT_TRUE(h_.submit(h_.package({h_.make_spend(0, 0, 0, 25 * kCoin)})));

    EbvTransaction spend = h_.make_spend(3, 1, 0, 20 * kCoin);
    ASSERT_FALSE(spend.inputs[0].mbr.siblings.empty());
    spend.inputs[0].mbr.index ^= 1;  // claim a different leaf slot
    auto r = h_.submit(h_.package({spend}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kExistenceFailed);
}

TEST_F(EbvValidatorTest, FutureHeightFailsEv) {
    h_.mine_empty(3);
    EbvTransaction spend = h_.make_spend(0, 0, 0, 25 * kCoin);
    spend.inputs[0].height = 99;
    auto r = h_.submit(h_.package({spend}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kUnknownHeight);
}

TEST_F(EbvValidatorTest, BadOutIndexRejected) {
    h_.mine_empty(3);
    EbvTransaction spend = h_.make_spend(0, 0, 0, 25 * kCoin);
    spend.inputs[0].out_index = 7;  // coinbase has 1 output
    auto r = h_.submit(h_.package({spend}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kBadOutIndex);
}

TEST_F(EbvValidatorTest, ImmatureCoinbaseSpendRejected) {
    h_.mine_empty(2);
    // Height 2 spending block 1's coinbase (maturity 2 ⇒ needs height 3).
    auto r = h_.submit(h_.package({h_.make_spend(1, 0, 0, 25 * kCoin)}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kImmatureCoinbaseSpend);
}

TEST_F(EbvValidatorTest, BadSignatureFailsSv) {
    h_.mine_empty(3);
    EbvTransaction spend = h_.make_spend(0, 0, 0, 25 * kCoin);
    spend.inputs[0].unlock_script[4] ^= 0x20;
    auto r = h_.submit(h_.package({spend}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kScriptFailure);
}

TEST_F(EbvValidatorTest, SignatureCoversOutputs) {
    h_.mine_empty(3);
    EbvTransaction spend = h_.make_spend(0, 0, 0, 25 * kCoin);
    spend.outputs[0].value -= 1;  // mutate after signing
    auto r = h_.submit(h_.package({spend}));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, EbvError::kScriptFailure);
}

TEST_F(EbvValidatorTest, FailureLeavesStatusUntouched) {
    h_.mine_empty(3);
    const auto mem_before = h_.node_->status_memory_bytes();
    const auto fees_backup = h_.fees_;
    EbvTransaction bad = h_.make_spend(0, 0, 0, 25 * kCoin);
    bad.inputs[0].unlock_script[4] ^= 0x20;
    ASSERT_FALSE(h_.submit(h_.package({bad})));
    h_.fees_ = fees_backup;  // the rejected block's fee never materialized
    EXPECT_EQ(h_.node_->status_memory_bytes(), mem_before);
    // The output is still spendable afterwards.
    auto r = h_.submit(h_.package({h_.make_spend(0, 0, 0, 25 * kCoin)}));
    EXPECT_TRUE(r.has_value()) << r.error().describe();
}

TEST_F(EbvValidatorTest, TimingsCoverAllPhases) {
    h_.mine_empty(3);
    auto r = h_.submit(h_.package({h_.make_spend(0, 0, 0, 25 * kCoin)}));
    ASSERT_TRUE(r.has_value());
    EXPECT_GT(r->ev.wall_ns, 0);
    EXPECT_GT(r->uv.wall_ns, 0);
    EXPECT_GT(r->sv.wall_ns, 0);
    EXPECT_GT(r->total().wall_ns, 0);
}

// The transaction-inflation defence (§IV-C2): proof size must NOT grow with
// the ancestry depth of the spent output. We build a chain of single-input
// single-output spends 12 generations deep and check the input body size
// stays flat (it varies only with log(block size) via the Merkle branch).
TEST_F(EbvValidatorTest, NoTransactionInflationAcrossGenerations) {
    h_.mine_empty(3);

    std::vector<std::size_t> input_sizes;
    std::uint32_t spend_height = 0;
    std::uint32_t spend_tx_index = 0;
    for (int generation = 0; generation < 12; ++generation) {
        EbvTransaction spend =
            h_.make_spend(spend_height, spend_tx_index, 0, 20 * kCoin);
        input_sizes.push_back(spend.inputs[0].serialized_size());

        auto r = h_.submit(h_.package({spend}));
        ASSERT_TRUE(r.has_value()) << r.error().describe();
        spend_height = h_.node_->next_height() - 1;
        spend_tx_index = 1;  // the spend tx sits after the coinbase
    }

    // Proof size flat: every generation within a small constant of the
    // first (leaf payload + 1-2 branch levels), never cumulative.
    const std::size_t base = input_sizes.front();
    for (std::size_t s : input_sizes) {
        EXPECT_LE(s, base + 96) << "inflating proofs detected";
        EXPECT_GE(s + 96, base);
    }
}

TEST(EbvSighash, MatchesLegacySighashByteForByte) {
    // The EBV digest must equal chain::signature_hash over the equivalent
    // Bitcoin transaction, so converted signatures verify.
    util::Rng rng(5);
    EbvTransaction etx;
    etx.version = 1;
    EbvInput in;
    rng.fill({in.prevout.txid.bytes().data(), 32});
    in.prevout.index = 3;
    in.sequence = 0xfffffffe;
    etx.inputs.push_back(in);
    etx.outputs.push_back(chain::TxOut{77, script::Script{0x51, 0x52}});
    etx.locktime = 9;

    chain::Transaction btx;
    btx.version = 1;
    btx.vin.push_back(chain::TxIn{etx.inputs[0].prevout, {}, 0xfffffffe});
    btx.vout.push_back(etx.outputs[0]);
    btx.locktime = 9;

    const script::Script code{0xaa, 0xbb};
    EXPECT_EQ(ebv_signature_hash(etx, 0, code, 0x01),
              chain::signature_hash(btx, 0, code, chain::kSigHashAll));
}

}  // namespace
}  // namespace ebv::core
