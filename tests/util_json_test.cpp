#include "util/json.hpp"

#include <gtest/gtest.h>

namespace ebv::util::json {
namespace {

TEST(UtilJson, ParsesScalars) {
    EXPECT_TRUE(parse("null")->is_null());
    EXPECT_TRUE(parse("true")->as_bool());
    EXPECT_FALSE(parse("false")->as_bool());
    EXPECT_DOUBLE_EQ(parse("42")->as_number(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-3.5e2")->as_number(), -350.0);
    EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(UtilJson, ParsesEscapes) {
    const auto v = parse(R"("a\"b\\c\nd\teA")");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->as_string(), "a\"b\\c\nd\teA");
}

TEST(UtilJson, ParsesNestedStructures) {
    const auto v = parse(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->is_object());
    const Value* a = v->get("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->as_array().size(), 3u);
    EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
    EXPECT_TRUE(a->as_array()[2].get("b")->as_bool());
    EXPECT_TRUE(v->get("c")->get("d")->is_null());
    EXPECT_EQ(v->get("e")->as_string(), "x");
    EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(UtilJson, PreservesMemberOrderAndFirstDuplicateWins) {
    const auto v = parse(R"({"z":1,"a":2,"z":3})");
    ASSERT_TRUE(v.has_value());
    const auto& members = v->as_object();
    ASSERT_EQ(members.size(), 2u);
    EXPECT_EQ(members[0].first, "z");
    EXPECT_DOUBLE_EQ(members[0].second.as_number(), 1.0);  // first wins
    EXPECT_EQ(members[1].first, "a");
}

TEST(UtilJson, WhitespaceTolerant) {
    const auto v = parse(" {\n\t\"a\" :\r [ 1 , 2 ] }  ");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->get("a")->as_array().size(), 2u);
}

TEST(UtilJson, RejectsMalformedInput) {
    EXPECT_FALSE(parse("").has_value());
    EXPECT_FALSE(parse("{").has_value());
    EXPECT_FALSE(parse("[1,]").has_value());
    EXPECT_FALSE(parse("{\"a\":}").has_value());
    EXPECT_FALSE(parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(parse("\"unterminated").has_value());
    EXPECT_FALSE(parse("tru").has_value());
    EXPECT_FALSE(parse("1 2").has_value());  // trailing garbage
    EXPECT_FALSE(parse("nan").has_value());
}

TEST(UtilJson, RejectsRunawayNesting) {
    std::string deep;
    for (int i = 0; i < 500; ++i) deep += '[';
    for (int i = 0; i < 500; ++i) deep += ']';
    EXPECT_FALSE(parse(deep).has_value());
}

TEST(UtilJson, ParsesRealBenchDocument) {
    const auto v = parse(
        R"({"bench":"fig16","provenance":{"git_sha":"abc","hw_threads":8},)"
        R"("rows":[{"height":110,"ebv_ms":19.2}],"aborted":false,)"
        R"("metrics":{"counters":{"ebv.block.connects":120}}})");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->get("bench")->as_string(), "fig16");
    EXPECT_FALSE(v->get("aborted")->as_bool());
    EXPECT_DOUBLE_EQ(v->get("rows")->as_array()[0].get("ebv_ms")->as_number(), 19.2);
    EXPECT_DOUBLE_EQ(
        v->get("metrics")->get("counters")->get("ebv.block.connects")->as_number(),
        120.0);
}

}  // namespace
}  // namespace ebv::util::json
