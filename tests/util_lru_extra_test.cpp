// LruMap corners not covered by the storage-layer tests: budget changes,
// take(), peek() recency semantics, and overwrite cost accounting.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/lru.hpp"

namespace ebv::util {
namespace {

TEST(LruExtra, ShrinkingBudgetEvictsImmediately) {
    LruMap<int, int> lru(100);
    for (int i = 0; i < 10; ++i) lru.put(i, i, 10);
    EXPECT_EQ(lru.size(), 10u);

    std::vector<int> evicted;
    lru.set_eviction_handler([&](const int& k, int&) { evicted.push_back(k); });
    lru.set_budget(30);
    EXPECT_EQ(lru.size(), 3u);
    EXPECT_EQ(lru.total_cost(), 30u);
    EXPECT_EQ(evicted.size(), 7u);
    // Oldest went first.
    EXPECT_EQ(evicted.front(), 0);

    // Growing the budget evicts nothing.
    lru.set_budget(1000);
    EXPECT_EQ(lru.size(), 3u);
}

TEST(LruExtra, TakeBypassesEvictionHandler) {
    int handler_calls = 0;
    LruMap<int, std::string> lru(10);
    lru.set_eviction_handler([&](const int&, std::string&) { ++handler_calls; });
    lru.put(1, "one", 1);

    const auto taken = lru.take(1);
    ASSERT_TRUE(taken.has_value());
    EXPECT_EQ(*taken, "one");
    EXPECT_EQ(handler_calls, 0);
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_EQ(lru.total_cost(), 0u);
    EXPECT_FALSE(lru.take(1).has_value());
}

TEST(LruExtra, PeekDoesNotRefreshRecency) {
    LruMap<int, int> lru(3);
    lru.put(1, 10, 1);
    lru.put(2, 20, 1);
    lru.put(3, 30, 1);

    ASSERT_NE(lru.peek(1), nullptr);  // peek must NOT protect 1
    lru.put(4, 40, 1);                // evicts 1 (still least recent)
    EXPECT_EQ(lru.peek(1), nullptr);
    EXPECT_NE(lru.peek(2), nullptr);
}

TEST(LruExtra, OverwriteReplacesCost) {
    LruMap<int, int> lru(100);
    lru.put(1, 10, 60);
    lru.put(1, 11, 20);  // overwrite with smaller cost
    EXPECT_EQ(lru.total_cost(), 20u);
    EXPECT_EQ(*lru.get(1), 11);
    lru.put(1, 12, 90);  // overwrite with bigger cost
    EXPECT_EQ(lru.total_cost(), 90u);
}

TEST(LruExtra, OverwriteInvokesEvictionHandlerForOldValue) {
    // Regression: put() over an existing key silently dropped the old value
    // without running the handler, so a dirty page overwritten in place was
    // never written back. Overwrite must count as eviction of the old value.
    std::vector<std::pair<int, std::string>> evicted;
    LruMap<int, std::string> lru(100);
    lru.set_eviction_handler(
        [&](const int& k, std::string& v) { evicted.emplace_back(k, v); });

    lru.put(1, "dirty-old", 10);
    lru.put(1, "fresh-new", 10);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first, 1);
    EXPECT_EQ(evicted[0].second, "dirty-old");  // old value, before replacement
    EXPECT_EQ(*lru.get(1), "fresh-new");
    EXPECT_EQ(lru.size(), 1u);

    // A plain insert of a distinct key still runs the handler only on
    // budget-driven eviction, not on the insert itself.
    lru.put(2, "two", 10);
    EXPECT_EQ(evicted.size(), 1u);
}

TEST(LruExtra, ClearInvokesHandlerForEverything) {
    std::vector<int> evicted;
    LruMap<int, int> lru(100);
    lru.set_eviction_handler([&](const int& k, int&) { evicted.push_back(k); });
    for (int i = 0; i < 5; ++i) lru.put(i, i, 1);
    lru.clear();
    EXPECT_EQ(evicted.size(), 5u);
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_EQ(lru.total_cost(), 0u);
}

}  // namespace
}  // namespace ebv::util
