// Wire-codec tests: framing, checksums, and payload round-trips for every
// message type, plus hostile-input behaviour.
#include <gtest/gtest.h>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace ebv::net {
namespace {

Message round_trip(const Message& m) {
    const util::Bytes wire = encode_message(m);
    auto decoded = decode_message(wire);
    EXPECT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->second, wire.size());
    return decoded->first;
}

TEST(NetMessage, VersionRoundTrip) {
    const auto decoded = round_trip(VersionMsg{7, ChainFormat::kEbv, 1234, 0xabcdef});
    const auto& m = std::get<VersionMsg>(decoded);
    EXPECT_EQ(m.protocol, 7u);
    EXPECT_EQ(m.format, ChainFormat::kEbv);
    EXPECT_EQ(m.best_height, 1234u);
    EXPECT_EQ(m.nonce, 0xabcdefULL);
}

TEST(NetMessage, VerAckRoundTrip) {
    EXPECT_TRUE(std::holds_alternative<VerAckMsg>(round_trip(VerAckMsg{})));
}

TEST(NetMessage, GetHeadersRoundTrip) {
    const auto decoded = round_trip(GetHeadersMsg{42, 500});
    const auto& m = std::get<GetHeadersMsg>(decoded);
    EXPECT_EQ(m.from_height, 42u);
    EXPECT_EQ(m.max_count, 500u);
}

TEST(NetMessage, HeadersRoundTrip) {
    HeadersMsg headers;
    headers.start_height = 10;
    headers.headers.push_back(util::Bytes(80, 0xaa));
    headers.headers.push_back(util::Bytes(80, 0xbb));
    const auto decoded = round_trip(headers);
    const auto& m = std::get<HeadersMsg>(decoded);
    EXPECT_EQ(m.start_height, 10u);
    ASSERT_EQ(m.headers.size(), 2u);
    EXPECT_EQ(m.headers[1][0], 0xbb);
}

TEST(NetMessage, InvAndGetDataRoundTrip) {
    InvItem item{InvType::kBlock, {}};
    item.hash.bytes()[0] = 0x55;
    const auto inv = round_trip(InvMsg{{item}});
    EXPECT_EQ(std::get<InvMsg>(inv).items[0], item);

    const auto getdata = round_trip(GetDataMsg{{item}});
    EXPECT_EQ(std::get<GetDataMsg>(getdata).items[0], item);
}

TEST(NetMessage, BlockAndTxRoundTrip) {
    util::Rng rng(1);
    util::Bytes payload(500);
    rng.fill(payload);

    const auto block = round_trip(BlockMsg{ChainFormat::kEbv, 9, payload});
    EXPECT_EQ(std::get<BlockMsg>(block).payload, payload);
    EXPECT_EQ(std::get<BlockMsg>(block).format, ChainFormat::kEbv);

    const auto tx = round_trip(TxMsg{ChainFormat::kBitcoin, payload});
    EXPECT_EQ(std::get<TxMsg>(tx).payload, payload);
}

TEST(NetMessage, PingPongRoundTrip) {
    EXPECT_EQ(std::get<PongMsg>(round_trip(PongMsg{77})).nonce, 77u);
    EXPECT_EQ(std::get<PingMsg>(round_trip(PingMsg{78})).nonce, 78u);
}

TEST(NetMessage, GetProofRoundTrip) {
    util::Rng rng(3);
    GetProofMsg get;
    rng.fill(get.block_hash.bytes());
    for (int i = 0; i < 5; ++i) {
        ProofRequest req;
        req.kind = (i & 1) != 0 ? ProofKind::kInput : ProofKind::kTx;
        rng.fill(req.txid.bytes());
        req.out_index = static_cast<std::uint16_t>(i * 7);
        get.requests.push_back(req);
    }
    const auto decoded = round_trip(Message{get});
    const auto& m = std::get<GetProofMsg>(decoded);
    EXPECT_EQ(m.block_hash, get.block_hash);
    ASSERT_EQ(m.requests.size(), get.requests.size());
    for (std::size_t i = 0; i < m.requests.size(); ++i)
        EXPECT_EQ(m.requests[i], get.requests[i]) << "request " << i;
}

TEST(NetMessage, ProofRoundTrip) {
    util::Rng rng(4);
    ProofMsg proof;
    rng.fill(proof.block_hash.bytes());

    ProofItem ok;
    ok.status = ProofStatus::kOk;
    ok.kind = ProofKind::kInput;
    rng.fill(ok.txid.bytes());
    ok.out_index = 2;
    ok.height = 120'000;
    ok.position = 987;
    ok.els = util::Bytes(90, 0x5a);
    ok.mbr.siblings.resize(11);
    for (auto& sibling : ok.mbr.siblings) rng.fill(sibling.bytes());
    ok.mbr.index = 33;
    proof.items.push_back(ok);

    ProofItem err;
    err.status = ProofStatus::kUnknownTx;
    rng.fill(err.txid.bytes());
    proof.items.push_back(err);

    const auto decoded = round_trip(Message{proof});
    const auto& m = std::get<ProofMsg>(decoded);
    EXPECT_EQ(m.block_hash, proof.block_hash);
    ASSERT_EQ(m.items.size(), 2u);
    EXPECT_EQ(m.items[0], ok);
    EXPECT_EQ(m.items[1], err);
}

TEST(NetMessage, RejectsOversizedProofBatch) {
    GetProofMsg get;
    get.requests.resize(1025);  // kMaxProofBatch is 1024
    auto decoded = decode_message(encode_message(Message{get}));
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), WireError::kMalformedPayload);
}

TEST(NetMessage, ProofStatusNames) {
    EXPECT_STREQ(to_string(ProofStatus::kOk), "ok");
    EXPECT_STREQ(to_string(ProofStatus::kUnknownBlock), "unknown block");
    EXPECT_STREQ(to_string(ProofStatus::kUnknownTx), "unknown tx");
    EXPECT_STREQ(to_string(ProofStatus::kBadIndex), "bad output index");
    EXPECT_STREQ(to_string(Command::kGetProof), "getproof");
    EXPECT_STREQ(to_string(Command::kProof), "proof");
}

TEST(NetMessage, StreamedFramesDecodeSequentially) {
    util::Bytes stream = encode_message(PingMsg{1});
    const util::Bytes second = encode_message(PingMsg{2});
    stream.insert(stream.end(), second.begin(), second.end());

    auto first = decode_message(stream);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(std::get<PingMsg>(first->first).nonce, 1u);

    auto rest = decode_message(util::ByteSpan(stream).subspan(first->second));
    ASSERT_TRUE(rest.has_value());
    EXPECT_EQ(std::get<PingMsg>(rest->first).nonce, 2u);
}

TEST(NetMessage, RejectsBadMagic) {
    util::Bytes wire = encode_message(PingMsg{1});
    wire[0] ^= 0xff;
    auto decoded = decode_message(wire);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), WireError::kBadMagic);
}

TEST(NetMessage, RejectsCorruptedPayload) {
    util::Bytes wire = encode_message(PingMsg{1});
    wire.back() ^= 0x01;  // flip a payload bit: checksum must catch it
    auto decoded = decode_message(wire);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), WireError::kBadChecksum);
}

TEST(NetMessage, RejectsTruncation) {
    const util::Bytes wire = encode_message(VersionMsg{});
    for (std::size_t cut = 1; cut < wire.size(); ++cut) {
        auto decoded = decode_message(util::ByteSpan(wire).first(cut));
        EXPECT_FALSE(decoded.has_value()) << "cut " << cut;
    }
}

TEST(NetMessage, RejectsUnknownCommand) {
    util::Bytes wire = encode_message(PingMsg{1});
    wire[4] = 0x7f;  // command byte
    auto decoded = decode_message(wire);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), WireError::kUnknownCommand);
}

TEST(NetMessage, RandomBytesNeverCrash) {
    util::Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        util::Bytes junk(rng.between(0, 200));
        rng.fill(junk);
        (void)decode_message(junk);  // must not crash or throw
    }
}

}  // namespace
}  // namespace ebv::net
