// Wire-codec tests: framing, checksums, and payload round-trips for every
// message type, plus hostile-input behaviour.
#include <gtest/gtest.h>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace ebv::net {
namespace {

Message round_trip(const Message& m) {
    const util::Bytes wire = encode_message(m);
    auto decoded = decode_message(wire);
    EXPECT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->second, wire.size());
    return decoded->first;
}

TEST(NetMessage, VersionRoundTrip) {
    const auto decoded = round_trip(VersionMsg{7, ChainFormat::kEbv, 1234, 0xabcdef});
    const auto& m = std::get<VersionMsg>(decoded);
    EXPECT_EQ(m.protocol, 7u);
    EXPECT_EQ(m.format, ChainFormat::kEbv);
    EXPECT_EQ(m.best_height, 1234u);
    EXPECT_EQ(m.nonce, 0xabcdefULL);
}

TEST(NetMessage, VerAckRoundTrip) {
    EXPECT_TRUE(std::holds_alternative<VerAckMsg>(round_trip(VerAckMsg{})));
}

TEST(NetMessage, GetHeadersRoundTrip) {
    const auto decoded = round_trip(GetHeadersMsg{42, 500});
    const auto& m = std::get<GetHeadersMsg>(decoded);
    EXPECT_EQ(m.from_height, 42u);
    EXPECT_EQ(m.max_count, 500u);
}

TEST(NetMessage, HeadersRoundTrip) {
    HeadersMsg headers;
    headers.start_height = 10;
    headers.headers.push_back(util::Bytes(80, 0xaa));
    headers.headers.push_back(util::Bytes(80, 0xbb));
    const auto decoded = round_trip(headers);
    const auto& m = std::get<HeadersMsg>(decoded);
    EXPECT_EQ(m.start_height, 10u);
    ASSERT_EQ(m.headers.size(), 2u);
    EXPECT_EQ(m.headers[1][0], 0xbb);
}

TEST(NetMessage, InvAndGetDataRoundTrip) {
    InvItem item{InvType::kBlock, {}};
    item.hash.bytes()[0] = 0x55;
    const auto inv = round_trip(InvMsg{{item}});
    EXPECT_EQ(std::get<InvMsg>(inv).items[0], item);

    const auto getdata = round_trip(GetDataMsg{{item}});
    EXPECT_EQ(std::get<GetDataMsg>(getdata).items[0], item);
}

TEST(NetMessage, BlockAndTxRoundTrip) {
    util::Rng rng(1);
    util::Bytes payload(500);
    rng.fill(payload);

    const auto block = round_trip(BlockMsg{ChainFormat::kEbv, 9, payload});
    EXPECT_EQ(std::get<BlockMsg>(block).payload, payload);
    EXPECT_EQ(std::get<BlockMsg>(block).format, ChainFormat::kEbv);

    const auto tx = round_trip(TxMsg{ChainFormat::kBitcoin, payload});
    EXPECT_EQ(std::get<TxMsg>(tx).payload, payload);
}

TEST(NetMessage, PingPongRoundTrip) {
    EXPECT_EQ(std::get<PongMsg>(round_trip(PongMsg{77})).nonce, 77u);
    EXPECT_EQ(std::get<PingMsg>(round_trip(PingMsg{78})).nonce, 78u);
}

TEST(NetMessage, StreamedFramesDecodeSequentially) {
    util::Bytes stream = encode_message(PingMsg{1});
    const util::Bytes second = encode_message(PingMsg{2});
    stream.insert(stream.end(), second.begin(), second.end());

    auto first = decode_message(stream);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(std::get<PingMsg>(first->first).nonce, 1u);

    auto rest = decode_message(util::ByteSpan(stream).subspan(first->second));
    ASSERT_TRUE(rest.has_value());
    EXPECT_EQ(std::get<PingMsg>(rest->first).nonce, 2u);
}

TEST(NetMessage, RejectsBadMagic) {
    util::Bytes wire = encode_message(PingMsg{1});
    wire[0] ^= 0xff;
    auto decoded = decode_message(wire);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), WireError::kBadMagic);
}

TEST(NetMessage, RejectsCorruptedPayload) {
    util::Bytes wire = encode_message(PingMsg{1});
    wire.back() ^= 0x01;  // flip a payload bit: checksum must catch it
    auto decoded = decode_message(wire);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), WireError::kBadChecksum);
}

TEST(NetMessage, RejectsTruncation) {
    const util::Bytes wire = encode_message(VersionMsg{});
    for (std::size_t cut = 1; cut < wire.size(); ++cut) {
        auto decoded = decode_message(util::ByteSpan(wire).first(cut));
        EXPECT_FALSE(decoded.has_value()) << "cut " << cut;
    }
}

TEST(NetMessage, RejectsUnknownCommand) {
    util::Bytes wire = encode_message(PingMsg{1});
    wire[4] = 0x7f;  // command byte
    auto decoded = decode_message(wire);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), WireError::kUnknownCommand);
}

TEST(NetMessage, RandomBytesNeverCrash) {
    util::Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        util::Bytes junk(rng.between(0, 200));
        rng.fill(junk);
        (void)decode_message(junk);  // must not crash or throw
    }
}

}  // namespace
}  // namespace ebv::net
