// Branch-switching (reorg_to) on both node types: longer branches win,
// invalid branches roll back atomically, and both systems end in states
// identical to having connected the winning branch directly.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "chain/miner.hpp"
#include "chain/reorg.hpp"
#include "core/reorg.hpp"
#include "intermediary/converter.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

namespace fs = std::filesystem;

class SwitchTempDir {
public:
    SwitchTempDir() {
        path_ = fs::temp_directory_path() /
                ("ebv_switch_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        fs::create_directories(path_);
    }
    ~SwitchTempDir() { fs::remove_all(path_); }
    [[nodiscard]] std::string str() const { return path_.string(); }

private:
    fs::path path_;
    static inline int counter_ = 0;
};

workload::GeneratorOptions switch_gen_options(std::uint64_t seed) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(3.0, 1.5, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.key_pool_size = 8;
    return options;
}

/// An empty competing block on the given parent.
chain::Block empty_block(const crypto::Hash256& parent, std::uint32_t height,
                         const chain::ChainParams& params, std::uint32_t salt) {
    return chain::assemble_block(
        parent, chain::make_coinbase(height, params.subsidy_at(height),
                                     script::Script{0x51}, salt),
        {}, /*time=*/1000 + height);
}

TEST(ReorgSwitch, BaselineLongerBranchWins) {
    const auto gen_options = switch_gen_options(41);
    workload::ChainGenerator gen(gen_options);

    SwitchTempDir dir;
    chain::BitcoinNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    options.device = storage::DeviceProfile::none();
    options.keep_blocks = true;
    chain::BitcoinNode node(options);

    for (int i = 0; i < 15; ++i) ASSERT_TRUE(node.submit_block(gen.next_block()));
    const auto tip_before = node.headers().tip_hash();

    // A 3-block branch forking 1 below the tip (replaces 1, adds 3).
    const auto* fork_parent = node.headers().at(13);
    ASSERT_NE(fork_parent, nullptr);
    std::vector<chain::Block> branch;
    crypto::Hash256 parent = fork_parent->hash();
    for (std::uint32_t i = 0; i < 3; ++i) {
        branch.push_back(empty_block(parent, 14 + i, options.params, 500 + i));
        parent = branch.back().header.hash();
    }

    auto outcome = chain::reorg_to(node, branch);
    ASSERT_TRUE(outcome.has_value()) << to_string(outcome.error());
    EXPECT_TRUE(outcome->switched);
    EXPECT_EQ(outcome->fork_height, 13u);
    EXPECT_EQ(outcome->blocks_disconnected, 1u);
    EXPECT_EQ(outcome->blocks_connected, 3u);
    EXPECT_EQ(node.next_height(), 17u);
    EXPECT_EQ(node.headers().tip_hash(), branch.back().header.hash());
    EXPECT_NE(node.headers().tip_hash(), tip_before);
}

TEST(ReorgSwitch, BaselineShorterOrEqualBranchRefused) {
    const auto gen_options = switch_gen_options(43);
    workload::ChainGenerator gen(gen_options);

    SwitchTempDir dir;
    chain::BitcoinNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    options.device = storage::DeviceProfile::none();
    options.keep_blocks = true;
    chain::BitcoinNode node(options);
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(node.submit_block(gen.next_block()));

    const auto* fork_parent = node.headers().at(8);
    std::vector<chain::Block> equal_branch{
        empty_block(fork_parent->hash(), 9, options.params, 7)};
    auto outcome = chain::reorg_to(node, equal_branch);
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error(), chain::ReorgError::kBranchNotLonger);
    EXPECT_EQ(node.next_height(), 10u);  // untouched
}

TEST(ReorgSwitch, BaselineInvalidBranchRollsBack) {
    const auto gen_options = switch_gen_options(47);
    workload::ChainGenerator gen(gen_options);

    SwitchTempDir dir;
    chain::BitcoinNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    options.device = storage::DeviceProfile::none();
    options.keep_blocks = true;
    chain::BitcoinNode node(options);
    for (int i = 0; i < 12; ++i) ASSERT_TRUE(node.submit_block(gen.next_block()));

    const auto tip_before = node.headers().tip_hash();
    const auto utxos_before = node.utxo().size();

    // Branch of 3: valid, then a coinbase overpayment.
    const auto* fork_parent = node.headers().at(10);
    std::vector<chain::Block> branch;
    branch.push_back(empty_block(fork_parent->hash(), 11, options.params, 1));
    chain::Block bad = empty_block(branch[0].header.hash(), 12, options.params, 2);
    bad.txs[0].vout[0].value += 1;  // invalid
    bad.txs[0].invalidate_cache();
    bad.header.merkle_root = bad.compute_merkle_root();
    branch.push_back(bad);
    branch.push_back(empty_block(branch[1].header.hash(), 13, options.params, 3));

    auto outcome = chain::reorg_to(node, branch);
    ASSERT_TRUE(outcome.has_value()) << to_string(outcome.error());
    EXPECT_FALSE(outcome->switched);
    EXPECT_EQ(outcome->branch_failure.error, chain::BlockError::kCoinbaseValueTooHigh);

    // Fully restored.
    EXPECT_EQ(node.next_height(), 12u);
    EXPECT_EQ(node.headers().tip_hash(), tip_before);
    EXPECT_EQ(node.utxo().size(), utxos_before);

    // And functionally restored: the next main-chain block (which spends
    // outputs the rollback had to re-create) still connects.
    auto next = node.submit_block(gen.next_block());
    ASSERT_TRUE(next.has_value()) << next.error().describe();
    EXPECT_EQ(node.next_height(), 13u);
}

TEST(ReorgSwitch, EbvLongerBranchWins) {
    const auto gen_options = switch_gen_options(53);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    SwitchTempDir dir;
    core::EbvNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    core::EbvNode node(options);

    for (int i = 0; i < 15; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        ASSERT_TRUE(node.submit_block(*converted).has_value());
    }

    // Competing EBV branch: two empty blocks forking one below the tip.
    const auto* fork_parent = node.headers().at(13);
    ASSERT_NE(fork_parent, nullptr);
    std::vector<core::EbvBlock> branch;
    crypto::Hash256 parent = fork_parent->hash();
    for (std::uint32_t i = 0; i < 2; ++i) {
        core::EbvBlock block;
        core::EbvTransaction coinbase;
        coinbase.coinbase_data = {static_cast<std::uint8_t>(14 + i), 0x09};
        coinbase.outputs.push_back(
            chain::TxOut{options.params.subsidy_at(14 + i), script::Script{0x51}});
        block.txs.push_back(std::move(coinbase));
        block.header.prev_hash = parent;
        block.assign_stake_positions();
        branch.push_back(block);
        parent = block.header.hash();
    }

    auto outcome = core::reorg_to(node, branch);
    ASSERT_TRUE(outcome.has_value()) << to_string(outcome.error());
    EXPECT_TRUE(outcome->switched);
    EXPECT_EQ(node.next_height(), 16u);
    EXPECT_EQ(node.headers().tip_hash(), branch.back().header.hash());
    // The replaced block's vector is gone; the branch blocks' exist.
    EXPECT_TRUE(node.status().has_vector(15));
}

TEST(ReorgSwitch, EbvInvalidBranchRollsBack) {
    const auto gen_options = switch_gen_options(59);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    SwitchTempDir dir;
    core::EbvNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    core::EbvNode node(options);

    std::vector<core::EbvBlock> chain_blocks;
    for (int i = 0; i < 12; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        chain_blocks.push_back(*converted);
        ASSERT_TRUE(node.submit_block(chain_blocks.back()).has_value());
    }
    const auto tip_before = node.headers().tip_hash();
    const auto memory_before = node.status_memory_bytes();

    // Branch with an over-paying coinbase in its second block.
    const auto* fork_parent = node.headers().at(10);
    std::vector<core::EbvBlock> branch;
    crypto::Hash256 parent = fork_parent->hash();
    for (std::uint32_t i = 0; i < 2; ++i) {
        core::EbvBlock block;
        core::EbvTransaction coinbase;
        coinbase.coinbase_data = {static_cast<std::uint8_t>(11 + i), 0x0a};
        chain::Amount value = options.params.subsidy_at(11 + i);
        if (i == 1) value += 1;  // invalid
        coinbase.outputs.push_back(chain::TxOut{value, script::Script{0x51}});
        block.txs.push_back(std::move(coinbase));
        block.header.prev_hash = parent;
        block.assign_stake_positions();
        branch.push_back(block);
        parent = block.header.hash();
    }
    // Make it longer than the current chain (needs 2 replacements + 1).
    {
        core::EbvBlock block;
        core::EbvTransaction coinbase;
        coinbase.coinbase_data = {13, 0x0a};
        coinbase.outputs.push_back(
            chain::TxOut{options.params.subsidy_at(13), script::Script{0x51}});
        block.txs.push_back(std::move(coinbase));
        block.header.prev_hash = parent;
        block.assign_stake_positions();
        branch.push_back(block);
    }

    auto outcome = core::reorg_to(node, branch);
    ASSERT_TRUE(outcome.has_value()) << to_string(outcome.error());
    EXPECT_FALSE(outcome->switched);
    EXPECT_EQ(outcome->branch_failure.error, core::EbvError::kCoinbaseValueTooHigh);
    EXPECT_EQ(node.next_height(), 12u);
    EXPECT_EQ(node.headers().tip_hash(), tip_before);
    EXPECT_EQ(node.status_memory_bytes(), memory_before);

    // Bit-identical restore: a control node that never saw the branch has
    // the same validation status (every era's stake vector).
    SwitchTempDir control_dir;
    core::EbvNodeOptions control_options;
    control_options.params = options.params;
    control_options.data_dir = control_dir.str();
    core::EbvNode control(control_options);
    for (const auto& block : chain_blocks) {
        ASSERT_TRUE(control.submit_block(block).has_value());
    }
    EXPECT_TRUE(node.status() == control.status());

    // And functionally restored: the next honest block still connects.
    auto converted = converter.convert_block(gen.next_block());
    ASSERT_TRUE(converted.has_value());
    ASSERT_TRUE(node.submit_block(*converted).has_value());
    ASSERT_TRUE(control.submit_block(*converted).has_value());
    EXPECT_TRUE(node.status() == control.status());
}

}  // namespace
}  // namespace ebv
