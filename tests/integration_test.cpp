// Whole-pipeline integration: synthetic chain → baseline validation,
// intermediary conversion → EBV validation, and the equivalence property
// between the two systems.
#include <gtest/gtest.h>

#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

workload::GeneratorOptions pipeline_options(bool signed_mode, std::uint64_t seed = 77) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(3.0, 1.6, 2.1);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.signed_mode = signed_mode;
    options.key_pool_size = 8;
    return options;
}

TEST(Integration, ConvertedChainValidatesUnderEbv) {
    const int kBlocks = 20;
    auto gen_options = pipeline_options(/*signed_mode=*/true);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    core::EbvNode ebv_node(ebv_options);

    for (int i = 0; i < kBlocks; ++i) {
        const chain::Block block = gen.next_block();
        auto converted = converter.convert_block(block);
        ASSERT_TRUE(converted.has_value())
            << "height " << i << ": " << to_string(converted.error());
        auto r = ebv_node.submit_block(*converted);
        ASSERT_TRUE(r.has_value()) << "height " << i << ": " << r.error().describe();
    }
    EXPECT_EQ(ebv_node.next_height(), static_cast<std::uint32_t>(kBlocks));
    EXPECT_EQ(converter.stats().blocks, static_cast<std::uint64_t>(kBlocks));
    EXPECT_GT(converter.stats().ebv_bytes, converter.stats().bitcoin_bytes);
}

TEST(Integration, BothValidatorsAcceptTheSameChain) {
    const int kBlocks = 15;
    auto gen_options = pipeline_options(true, 91);
    workload::ChainGenerator gen(gen_options);

    chain::BitcoinNodeOptions btc_options;
    btc_options.params = gen_options.params;
    chain::BitcoinNode btc_node(btc_options);

    intermediary::Converter converter;
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    core::EbvNode ebv_node(ebv_options);

    for (int i = 0; i < kBlocks; ++i) {
        const chain::Block block = gen.next_block();
        const auto btc_result = btc_node.submit_block(block);
        ASSERT_TRUE(btc_result.has_value()) << btc_result.error().describe();

        auto converted = converter.convert_block(block);
        ASSERT_TRUE(converted.has_value());
        const auto ebv_result = ebv_node.submit_block(*converted);
        ASSERT_TRUE(ebv_result.has_value()) << ebv_result.error().describe();

        // Inputs/outputs seen by both systems agree.
        EXPECT_EQ(btc_result->inputs, ebv_result->inputs);
        EXPECT_EQ(btc_result->outputs, ebv_result->outputs);
    }

    // The status representations agree about what is spendable: the UTXO
    // count equals the number of set bits across the bit-vector set — both
    // count every unspent output in the chain.
    std::uint64_t ebv_unspent = 0;
    for (std::uint32_t h = 0; h < ebv_node.next_height(); ++h) {
        if (!ebv_node.status().has_vector(h)) continue;
        // Count via check_unspent over all positions of that block.
        const auto* header = ebv_node.headers().at(h);
        ASSERT_NE(header, nullptr);
        for (std::uint32_t p = 0; p < 65'535; ++p) {
            const auto status = ebv_node.status().check_unspent(h, p);
            if (status.has_value()) {
                ++ebv_unspent;
            } else if (status.error() == core::UvError::kIndexOutOfRange) {
                break;
            }
        }
    }
    EXPECT_EQ(btc_node.utxo().size(), ebv_unspent);
}

TEST(Integration, TamperedBlockRejectedByBothSystems) {
    auto gen_options = pipeline_options(true, 55);
    workload::ChainGenerator gen(gen_options);

    chain::BitcoinNodeOptions btc_options;
    btc_options.params = gen_options.params;
    chain::BitcoinNode btc_node(btc_options);
    intermediary::Converter converter;
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    core::EbvNode ebv_node(ebv_options);

    chain::Block victim;
    bool have_victim = false;
    for (int i = 0; i < 25; ++i) {
        chain::Block block = gen.next_block();
        if (!have_victim && block.input_count() > 0) {
            victim = block;
            have_victim = true;
            // Tamper: steal an output by raising its value.
            for (auto& tx : block.txs) {
                if (tx.is_coinbase()) continue;
                tx.vout[0].value += 1;
                tx.invalidate_cache();
                break;
            }
            block.header.merkle_root = block.compute_merkle_root();

            EXPECT_FALSE(btc_node.submit_block(block).has_value());
            // Convert on a fork of the intermediary state: the converter
            // does not judge validity, and committing the tampered block
            // would poison its outpoint index.
            intermediary::Converter forked = converter;
            auto converted = forked.convert_block(block);
            if (converted.has_value()) {
                EXPECT_FALSE(ebv_node.submit_block(*converted).has_value());
            }
            // Resume with the untampered block so the chain continues.
            block = victim;
        }
        ASSERT_TRUE(btc_node.submit_block(block).has_value());
        auto converted = converter.convert_block(block);
        ASSERT_TRUE(converted.has_value());
        ASSERT_TRUE(ebv_node.submit_block(*converted).has_value());
    }
    EXPECT_TRUE(have_victim);
}

TEST(Integration, EbvStatusMemoryFarBelowUtxoPayload) {
    auto gen_options = pipeline_options(/*signed_mode=*/false, 33);
    gen_options.schedule = workload::EraSchedule::flat(8.0, 1.5, 2.4);
    workload::ChainGenerator gen(gen_options);

    chain::BitcoinNodeOptions btc_options;
    btc_options.params = gen_options.params;
    btc_options.validator.verify_scripts = false;
    chain::BitcoinNode btc_node(btc_options);

    intermediary::Converter converter;
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    ebv_options.validator.verify_scripts = false;
    core::EbvNode ebv_node(ebv_options);

    for (int i = 0; i < 120; ++i) {
        const chain::Block block = gen.next_block();
        ASSERT_TRUE(btc_node.submit_block(block).has_value());
        auto converted = converter.convert_block(block);
        ASSERT_TRUE(converted.has_value());
        ASSERT_TRUE(ebv_node.submit_block(*converted).has_value());
    }

    // The paper's Fig 14: the bit-vector set is orders of magnitude smaller
    // than the UTXO set payload.
    EXPECT_LT(ebv_node.status_memory_bytes() * 10, btc_node.status_payload_bytes());
    // And the sparse optimization never exceeds the dense form.
    EXPECT_LE(ebv_node.status_memory_bytes(), ebv_node.status_dense_memory_bytes());
}

TEST(Integration, ConverterRejectsUnknownPrevout) {
    intermediary::Converter converter;
    chain::Block block;
    block.txs.push_back(chain::make_coinbase(0, 50 * chain::kCoin, script::Script{0x51}));
    chain::Transaction bogus;
    chain::OutPoint ghost;
    ghost.txid.bytes()[0] = 0xee;
    bogus.vin.push_back(chain::TxIn{ghost, {}, 0});
    bogus.vout.push_back(chain::TxOut{1, script::Script{0x51}});
    block.txs.push_back(bogus);
    block.header.merkle_root = block.compute_merkle_root();

    auto converted = converter.convert_block(block);
    ASSERT_FALSE(converted.has_value());
    EXPECT_EQ(converted.error(), intermediary::ConvertError::kUnknownPrevout);
}

}  // namespace
}  // namespace ebv
