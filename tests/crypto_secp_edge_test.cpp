// Edge cases of the curve and signature layers beyond the happy path.
#include <gtest/gtest.h>

#include "crypto/ecdsa.hpp"
#include "crypto/secp256k1.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

namespace k1 = secp256k1;

TEST(SecpEdge, InfinityIsAdditiveIdentity) {
    const k1::Point inf = k1::Point::at_infinity();
    EXPECT_EQ(k1::add(inf, inf), inf);
    EXPECT_EQ(k1::add(k1::generator(), inf), k1::generator());
    EXPECT_EQ(k1::add(inf, k1::generator()), k1::generator());
    EXPECT_FALSE(inf.on_curve());
}

TEST(SecpEdge, DoublingMatchesAdditionChains) {
    // 8G via three doublings == 8G via repeated addition.
    k1::Point doubled = k1::generator();
    for (int i = 0; i < 3; ++i) doubled = k1::add(doubled, doubled);
    EXPECT_EQ(doubled, k1::multiply(k1::generator(), U256::from_u64(8)));
}

TEST(SecpEdge, ScalarMultipleWrapsModOrder) {
    // (n + 5)·G == 5·G.
    const auto& n = k1::order().modulus();
    U256 n_plus_5 = n;
    U256 five = U256::from_u64(5);
    u256_add(n_plus_5, five, n_plus_5);
    EXPECT_EQ(k1::multiply(k1::generator(), n_plus_5),
              k1::multiply(k1::generator(), five));
    EXPECT_EQ(k1::multiply_generator(n_plus_5), k1::multiply_generator(five));
}

TEST(SecpEdge, NegatePointProperties) {
    util::Rng rng(1);
    const auto key = PrivateKey::generate(rng);
    const k1::Point p = key.public_key().point();
    const k1::Point neg = k1::negate(p);
    EXPECT_TRUE(neg.on_curve());
    EXPECT_EQ(neg.x, p.x);
    EXPECT_NE(neg.y, p.y);
    EXPECT_TRUE(k1::add(p, neg).infinity);
    EXPECT_EQ(k1::negate(k1::Point::at_infinity()), k1::Point::at_infinity());
}

TEST(SecpEdge, ParityPrefixSelectsCorrectY) {
    util::Rng rng(2);
    for (int i = 0; i < 8; ++i) {
        const auto p = PrivateKey::generate(rng).public_key().point();
        std::uint8_t buf[33];
        k1::serialize_compressed(p, buf);
        // Flipping the parity prefix must decode to the negated point.
        buf[0] ^= 0x01;
        const auto flipped = k1::parse_compressed({buf, 33});
        ASSERT_TRUE(flipped.has_value());
        EXPECT_EQ(*flipped, k1::negate(p));
    }
}

TEST(SecpEdge, XBeyondFieldRejected) {
    std::uint8_t buf[33];
    buf[0] = 0x02;
    k1::field().modulus().to_be_bytes({buf + 1, 32});  // x == p
    EXPECT_FALSE(k1::parse_compressed({buf, 33}).has_value());
}

TEST(EcdsaEdge, SignaturesAreLowSNormalized) {
    util::Rng rng(3);
    const auto key = PrivateKey::generate(rng);
    for (int i = 0; i < 20; ++i) {
        Hash256 digest;
        rng.fill({digest.bytes().data(), 32});
        const Signature sig = key.sign(digest);
        EXPECT_TRUE(sig.is_low_s());
        // The high-s counterpart also verifies mathematically (malleability)
        // but is non-canonical; we only guarantee we never *emit* it.
        Signature high = sig;
        high.s = k1::order().neg(high.s);
        EXPECT_FALSE(high.is_low_s());
        EXPECT_TRUE(key.public_key().verify(digest, high));
    }
}

TEST(EcdsaEdge, DifferentMessagesNeverShareNonce) {
    // RFC 6979 nonces are message-dependent: identical r across two
    // different digests would leak the key.
    util::Rng rng(4);
    const auto key = PrivateKey::generate(rng);
    Hash256 d1, d2;
    rng.fill({d1.bytes().data(), 32});
    rng.fill({d2.bytes().data(), 32});
    EXPECT_NE(key.sign(d1).r, key.sign(d2).r);
}

TEST(EcdsaEdge, VerifyRejectsROrSEqualToOrder) {
    util::Rng rng(5);
    const auto key = PrivateKey::generate(rng);
    Hash256 digest;
    rng.fill({digest.bytes().data(), 32});
    Signature sig = key.sign(digest);

    Signature r_n = sig;
    r_n.r = k1::order().modulus();
    EXPECT_FALSE(key.public_key().verify(digest, r_n));

    Signature s_n = sig;
    s_n.s = k1::order().modulus();
    EXPECT_FALSE(key.public_key().verify(digest, s_n));
}

TEST(EcdsaEdge, DerMinimalIntegerEncodings) {
    // r = s = 1 encodes to the shortest legal DER and round-trips.
    Signature tiny{U256::one(), U256::one()};
    const auto der = tiny.to_der();
    EXPECT_EQ(der.size(), 8u);  // 30 06 02 01 01 02 01 01
    const auto parsed = Signature::from_der(der);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->r, U256::one());
    EXPECT_EQ(parsed->s, U256::one());
}

TEST(EcdsaEdge, DerRejectsNonMinimalPadding) {
    // 0x00 prefix on a value whose top bit is clear is non-minimal.
    const util::Bytes bad = {0x30, 0x08, 0x02, 0x02, 0x00, 0x01, 0x02, 0x02, 0x00, 0x01};
    EXPECT_FALSE(Signature::from_der(bad).has_value());
}

class ScalarMulSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarMulSweep, TableMatchesGenericForStructuredScalars) {
    // Scalars with pathological nibble patterns (all zeros except one
    // nibble, repeating patterns, etc).
    U256 k = U256::from_u64(GetParam());
    EXPECT_EQ(k1::multiply_generator(k), k1::multiply(k1::generator(), k));

    // Also smear the value across high limbs.
    U256 high;
    high.limbs[3] = GetParam();
    EXPECT_EQ(k1::multiply_generator(high), k1::multiply(k1::generator(), high));
}

INSTANTIATE_TEST_SUITE_P(Patterns, ScalarMulSweep,
                         ::testing::Values(1ULL, 2ULL, 15ULL, 16ULL, 0xffULL,
                                           0x8000000000000000ULL, 0xf0f0f0f0f0f0f0f0ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace ebv::crypto
