#include <gtest/gtest.h>

#include <string>

#include "crypto/hash_types.hpp"
#include "crypto/hmac.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"
#include "util/hex.hpp"

namespace ebv::crypto {
namespace {

using util::as_bytes;
using util::Bytes;
using util::hex_encode;

std::string digest_hex(util::ByteSpan d) { return hex_encode(d); }

// FIPS 180-4 test vectors.
TEST(Sha256, KnownVectors) {
    EXPECT_EQ(digest_hex(Sha256::hash(as_bytes(""))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(digest_hex(Sha256::hash(as_bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(digest_hex(Sha256::hash(
                  as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
    EXPECT_EQ(digest_hex(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Streaming in arbitrary chunkings must equal one-shot hashing.
class Sha256Chunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Chunking, MatchesOneShot) {
    std::string msg;
    for (int i = 0; i < 300; ++i) msg.push_back(static_cast<char>('A' + i % 23));
    const auto expected = Sha256::hash(as_bytes(msg));

    Sha256 h;
    const std::size_t chunk = GetParam();
    for (std::size_t pos = 0; pos < msg.size(); pos += chunk) {
        h.update(as_bytes(std::string_view(msg).substr(pos, chunk)));
    }
    EXPECT_EQ(h.finalize(), expected);
}

INSTANTIATE_TEST_SUITE_P(Chunks, Sha256Chunking,
                         ::testing::Values(1, 3, 7, 31, 63, 64, 65, 128, 299));

TEST(Sha256, BoundaryLengthsAroundBlockSize) {
    // Exercise the padding logic at every interesting length.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
        const std::string msg(len, 'x');
        Sha256 a;
        a.update(as_bytes(msg));
        Sha256 b;
        for (char c : msg) b.update(as_bytes(std::string_view(&c, 1)));
        EXPECT_EQ(a.finalize(), b.finalize()) << "length " << len;
    }
}

TEST(DoubleSha256, MatchesComposition) {
    const auto once = Sha256::hash(as_bytes("hello"));
    const auto twice = Sha256::hash({once.data(), once.size()});
    EXPECT_EQ(double_sha256(as_bytes("hello")), twice);
}

// Bosselaers' RIPEMD-160 test vectors.
TEST(Ripemd160, KnownVectors) {
    EXPECT_EQ(digest_hex(Ripemd160::hash(as_bytes(""))),
              "9c1185a5c5e9fc54612808977ee8f548b2258d31");
    EXPECT_EQ(digest_hex(Ripemd160::hash(as_bytes("abc"))),
              "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
    EXPECT_EQ(digest_hex(Ripemd160::hash(as_bytes("message digest"))),
              "5d0689ef49d2fae572b881b123a85ffa21595f36");
    EXPECT_EQ(digest_hex(Ripemd160::hash(as_bytes("abcdefghijklmnopqrstuvwxyz"))),
              "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
}

// RFC 4231 test case 1 and 2.
TEST(HmacSha256, Rfc4231Vectors) {
    const Bytes key1(20, 0x0b);
    EXPECT_EQ(digest_hex(HmacSha256::mac(key1, as_bytes("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");

    EXPECT_EQ(digest_hex(HmacSha256::mac(as_bytes("Jefe"),
                                         as_bytes("what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
    // RFC 4231 test case 6 (131-byte key).
    const Bytes key(131, 0xaa);
    EXPECT_EQ(digest_hex(HmacSha256::mac(
                  key, as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HashTypes, Hash256HexUsesReversedByteOrder) {
    // Txid convention: display is byte-reversed.
    Hash256 h;
    h.bytes()[0] = 0x01;
    h.bytes()[31] = 0xff;
    const std::string hex = h.to_hex();
    EXPECT_EQ(hex.substr(0, 2), "ff");
    EXPECT_EQ(hex.substr(62, 2), "01");

    const auto parsed = Hash256::from_hex(hex);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, h);
}

TEST(HashTypes, FromHexRejectsWrongLength) {
    EXPECT_FALSE(Hash256::from_hex("abcd").has_value());
    EXPECT_FALSE(Hash256::from_hex(std::string(63, 'a')).has_value());
}

TEST(HashTypes, Hash160Composition) {
    const auto data = util::as_bytes("public key bytes");
    const auto sha = Sha256::hash(data);
    const auto expected = Ripemd160::hash({sha.data(), sha.size()});
    EXPECT_EQ(hash160(data).span().size(), 20u);
    EXPECT_EQ(util::hex_encode(hash160(data).span()), digest_hex(expected));
}

TEST(HashTypes, IsZeroAndComparison) {
    Hash256 a, b;
    EXPECT_TRUE(a.is_zero());
    EXPECT_EQ(a, b);
    b.bytes()[5] = 1;
    EXPECT_FALSE(b.is_zero());
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);
}

}  // namespace
}  // namespace ebv::crypto
