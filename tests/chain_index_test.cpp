// Tests for the header index and the chain-archive proof source.
#include <gtest/gtest.h>

#include "chain/header_index.hpp"
#include "core/chain_archive.hpp"
#include "util/rng.hpp"

namespace ebv {
namespace {

chain::BlockHeader make_header(const crypto::Hash256& prev, std::uint32_t time) {
    chain::BlockHeader h;
    h.prev_hash = prev;
    h.time = time;
    return h;
}

TEST(HeaderIndex, AppendsLinkedHeaders) {
    chain::HeaderIndex index;
    EXPECT_TRUE(index.empty());

    const auto genesis = make_header(crypto::Hash256{}, 0);
    ASSERT_TRUE(index.append(genesis));
    EXPECT_EQ(index.height(), 0u);
    EXPECT_EQ(index.tip_hash(), genesis.hash());

    const auto second = make_header(genesis.hash(), 1);
    ASSERT_TRUE(index.append(second));
    EXPECT_EQ(index.height(), 1u);
    ASSERT_NE(index.at(0), nullptr);
    EXPECT_EQ(*index.at(0), genesis);
    ASSERT_NE(index.at(1), nullptr);
    EXPECT_EQ(*index.at(1), second);
    EXPECT_EQ(index.at(2), nullptr);
}

TEST(HeaderIndex, RejectsBrokenLinks) {
    chain::HeaderIndex index;
    const auto genesis = make_header(crypto::Hash256{}, 0);
    ASSERT_TRUE(index.append(genesis));

    auto orphan = make_header(crypto::Hash256{}, 2);
    orphan.prev_hash.bytes()[0] = 0xde;
    EXPECT_FALSE(index.append(orphan));
    EXPECT_EQ(index.height(), 0u);  // unchanged

    // A non-zero prev on the very first header is also rejected.
    chain::HeaderIndex fresh;
    auto bad_genesis = make_header(crypto::Hash256{}, 0);
    bad_genesis.prev_hash.bytes()[5] = 1;
    EXPECT_FALSE(fresh.append(bad_genesis));
}

TEST(HeaderIndex, FindByHash) {
    chain::HeaderIndex index;
    const auto genesis = make_header(crypto::Hash256{}, 0);
    ASSERT_TRUE(index.append(genesis));
    const auto second = make_header(genesis.hash(), 1);
    ASSERT_TRUE(index.append(second));

    EXPECT_EQ(index.find(genesis.hash()).value_or(99), 0u);
    EXPECT_EQ(index.find(second.hash()).value_or(99), 1u);
    EXPECT_FALSE(index.find(crypto::Hash256{}).has_value());
    EXPECT_GT(index.memory_bytes(), 0u);
}

core::EbvBlock tiny_block(std::uint32_t height, const crypto::Hash256& prev,
                          std::size_t tx_count) {
    core::EbvBlock block;
    for (std::size_t t = 0; t < tx_count; ++t) {
        core::EbvTransaction tx;
        if (t == 0) {
            tx.coinbase_data = util::Bytes{static_cast<std::uint8_t>(height), 1};
        } else {
            core::EbvInput in;
            in.height = 0;
            in.els.coinbase_data = util::Bytes{9};
            in.els.outputs.push_back(chain::TxOut{1, script::Script{0x51}});
            tx.inputs.push_back(in);
        }
        tx.outputs.push_back(
            chain::TxOut{static_cast<chain::Amount>(10 + t), script::Script{0x51}});
        block.txs.push_back(std::move(tx));
    }
    block.header.prev_hash = prev;
    block.assign_stake_positions();
    return block;
}

TEST(ChainArchive, BranchesProveRecordedLeaves) {
    core::ChainArchive archive;
    crypto::Hash256 prev;
    std::vector<core::EbvBlock> blocks;
    for (std::uint32_t h = 0; h < 5; ++h) {
        blocks.push_back(tiny_block(h, prev, 1 + h));
        archive.add_block(blocks.back());
        prev = blocks.back().header.hash();
    }
    EXPECT_EQ(archive.height_count(), 5u);

    for (std::uint32_t h = 0; h < 5; ++h) {
        EXPECT_EQ(archive.tx_count(h), 1 + h);
        for (std::uint32_t t = 0; t < archive.tx_count(h); ++t) {
            const auto branch = archive.branch(h, t);
            const auto folded =
                crypto::fold_branch(archive.tidy(h, t).leaf_hash(), branch);
            EXPECT_EQ(folded, blocks[h].header.merkle_root)
                << "height " << h << " tx " << t;
        }
    }
}

TEST(ChainArchive, MakeInputCarriesConsistentProof) {
    core::ChainArchive archive;
    const auto block = tiny_block(0, crypto::Hash256{}, 3);
    archive.add_block(block);

    const core::EbvInput input = archive.make_input(0, 2, 0);
    EXPECT_EQ(input.height, 0u);
    EXPECT_EQ(input.out_index, 0u);
    EXPECT_EQ(input.els, block.txs[2].tidy());
    EXPECT_EQ(crypto::fold_branch(input.els.leaf_hash(), input.mbr),
              block.header.merkle_root);
    EXPECT_EQ(input.absolute_position(), block.txs[2].stake_position);
    EXPECT_GT(archive.memory_bytes(), 0u);
}

TEST(EbvBlock, SerializationRoundTrip) {
    const auto block = tiny_block(3, crypto::Hash256{}, 4);
    util::Writer w;
    block.serialize(w);
    util::Reader r(w.data());
    auto decoded = core::EbvBlock::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(decoded->header, block.header);
    ASSERT_EQ(decoded->txs.size(), block.txs.size());
    for (std::size_t i = 0; i < block.txs.size(); ++i) {
        EXPECT_EQ(decoded->txs[i], block.txs[i]) << i;
    }
    EXPECT_EQ(decoded->compute_merkle_root(), block.header.merkle_root);
}

}  // namespace
}  // namespace ebv
