// Tests specific to the storage layer's growth machinery: linear-hashing
// splits, directory persistence, and the two-level (application + modelled
// OS) page cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <unistd.h>

#include "storage/disk_hash_table.hpp"
#include "util/rng.hpp"

namespace ebv::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
public:
    TempDir() {
        path_ = fs::temp_directory_path() /
                ("ebv_lh_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    [[nodiscard]] std::string file(const std::string& name) const {
        return (path_ / name).string();
    }

private:
    fs::path path_;
    static inline int counter_ = 0;
};

util::Bytes key_of(std::uint64_t i) {
    util::Bytes k(36);
    for (int b = 0; b < 8; ++b) k[b] = static_cast<std::uint8_t>(i >> (8 * b));
    return k;
}

TEST(LinearHashing, TableGrowsWithLoad) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 2;
    options.target_entries_per_bucket = 8;
    DiskHashTable table(dir.file("db"), options);

    EXPECT_EQ(table.bucket_count(), 2u);
    for (std::uint64_t i = 0; i < 1000; ++i) table.put(key_of(i), util::Bytes(40, 1));
    // Load factor maintained: buckets ≈ entries / target.
    EXPECT_GE(table.bucket_count(), 1000u / 8);
    EXPECT_LE(table.bucket_count(), 2 * (1000u / 8) + 4);
}

TEST(LinearHashing, AllKeysSurviveManySplits) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 1;
    options.target_entries_per_bucket = 4;  // split constantly
    DiskHashTable table(dir.file("db"), options);

    util::Rng rng(5);
    const std::uint64_t n = 2000;
    std::vector<std::uint8_t> tag(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        tag[i] = static_cast<std::uint8_t>(rng.next());
        table.put(key_of(i), util::Bytes(30, tag[i]));
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto v = table.get(key_of(i));
        ASSERT_TRUE(v.has_value()) << i;
        EXPECT_EQ((*v)[0], tag[i]) << i;
    }
    EXPECT_EQ(table.size(), n);
}

TEST(LinearHashing, SplitsInterleaveWithErases) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 2;
    options.target_entries_per_bucket = 4;
    DiskHashTable table(dir.file("db"), options);

    util::Rng rng(6);
    std::set<std::uint64_t> live;
    for (int step = 0; step < 5000; ++step) {
        const std::uint64_t k = rng.below(600);
        if (rng.chance(0.6)) {
            table.put(key_of(k), util::Bytes(25, static_cast<std::uint8_t>(k)));
            live.insert(k);
        } else {
            EXPECT_EQ(table.erase(key_of(k)), live.erase(k) > 0) << "step " << step;
        }
    }
    EXPECT_EQ(table.size(), live.size());
    for (std::uint64_t k : live) {
        ASSERT_TRUE(table.get(key_of(k)).has_value()) << k;
    }
}

TEST(LinearHashing, StatePersistsAcrossReopenAfterSplits) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 2;
    options.target_entries_per_bucket = 4;

    std::uint64_t buckets_before = 0;
    {
        DiskHashTable table(dir.file("db"), options);
        for (std::uint64_t i = 0; i < 500; ++i)
            table.put(key_of(i), util::Bytes(20, static_cast<std::uint8_t>(i)));
        buckets_before = table.bucket_count();
        EXPECT_GT(buckets_before, 2u);
    }
    {
        // The reopened table must see the grown directory, not the options.
        DiskHashTable table(dir.file("db"), options);
        EXPECT_EQ(table.bucket_count(), buckets_before);
        EXPECT_EQ(table.size(), 500u);
        for (std::uint64_t i = 0; i < 500; ++i) {
            const auto v = table.get(key_of(i));
            ASSERT_TRUE(v.has_value()) << i;
            EXPECT_EQ((*v)[0], static_cast<std::uint8_t>(i));
        }
        // And continue to grow correctly.
        for (std::uint64_t i = 500; i < 800; ++i)
            table.put(key_of(i), util::Bytes(20, 7));
        EXPECT_EQ(table.size(), 800u);
    }
}

TEST(TwoLevelCache, OsCacheAbsorbsReuseMisses) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 4;
    // Tiny app cache, large OS cache: app misses should mostly be OS hits.
    options.cache_budget_bytes = 4 * PagedFile::kPageSize;
    options.os_cache_multiplier = 64;
    options.device = DeviceProfile::hdd();
    DiskHashTable table(dir.file("db"), options);

    for (std::uint64_t i = 0; i < 2000; ++i) table.put(key_of(i), util::Bytes(40, 1));
    const auto sim_after_fill = table.simulated_ns();

    util::Rng rng(7);
    for (int i = 0; i < 2000; ++i) table.get(key_of(rng.below(2000)));

    const auto& stats = table.cache_stats();
    EXPECT_GT(stats.os_hits, stats.device_reads)
        << "most app-cache misses should be absorbed by the OS level";
    // OS hits cost µs, device reads cost ms: simulated time growth must be
    // far below misses * device latency.
    const auto get_time = table.simulated_ns() - sim_after_fill;
    EXPECT_LT(get_time, static_cast<util::Nanoseconds>(stats.misses) * 4'000'000);
}

TEST(TwoLevelCache, ColdPagesStillPayDeviceReads) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 4;
    options.cache_budget_bytes = 4 * PagedFile::kPageSize;
    options.os_cache_multiplier = 1;  // OS cache as tiny as the app cache
    options.device = DeviceProfile::hdd();
    DiskHashTable table(dir.file("db"), options);

    for (std::uint64_t i = 0; i < 4000; ++i) table.put(key_of(i), util::Bytes(40, 1));

    const auto reads_before = table.cache_stats().device_reads;
    util::Rng rng(8);
    for (int i = 0; i < 1000; ++i) table.get(key_of(rng.below(4000)));
    EXPECT_GT(table.cache_stats().device_reads, reads_before)
        << "a working set far beyond both cache levels must hit the device";
}

TEST(TwoLevelCache, DisabledOsCacheChargesFullWrites) {
    TempDir dir;
    util::SimTimeLedger ledger;
    PagedFile file(dir.file("pages.bin"));
    PageCache cache(file, 2 * (PagedFile::kPageSize + 96),
                    LatencyModel(DeviceProfile::hdd(), 1), ledger, /*os_budget=*/0);

    // Dirty a page, then force it out: with no OS level the write-back must
    // charge a full device write (>= 2 ms base).
    auto& p0 = cache.page(0);
    p0.dirty = true;
    cache.mark_dirty(0);
    const auto before = ledger.total_ns();
    cache.page(1);
    cache.page(2);
    cache.page(3);  // page 0 evicted along the way
    EXPECT_GE(ledger.total_ns() - before, 2'000'000);
}

}  // namespace
}  // namespace ebv::storage
