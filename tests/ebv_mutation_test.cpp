// Adversarial mutation sweep: every single-field mutation of a valid EBV
// block must be rejected by the validator (the security-analysis claims of
// paper §V, exercised mechanically).
#include <gtest/gtest.h>

#include <functional>

#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "workload/adversary.hpp"
#include "workload/generator.hpp"

namespace ebv::core {
namespace {

struct Fixture {
    Fixture() {
        workload::GeneratorOptions gen_options;
        gen_options.seed = 31;
        gen_options.params.coinbase_maturity = 5;
        gen_options.schedule = workload::EraSchedule::flat(4.0, 1.7, 2.0);
        gen_options.height_scale = 1.0;
        gen_options.intensity = 1.0;
        gen_options.key_pool_size = 8;

        workload::ChainGenerator gen(gen_options);
        intermediary::Converter converter;
        options.params = gen_options.params;
        node = std::make_unique<EbvNode>(options);

        // Grow until the next block has at least two spends, then keep it.
        for (int i = 0; i < 60; ++i) {
            auto converted = converter.convert_block(gen.next_block());
            EXPECT_TRUE(converted.has_value());
            if (converted->input_count() >= 2) {
                victim = *converted;
                return;
            }
            EXPECT_TRUE(node->submit_block(*converted).has_value());
        }
        ADD_FAILURE() << "no block with >= 2 inputs generated";
    }

    EbvNodeOptions options;
    std::unique_ptr<EbvNode> node;
    EbvBlock victim;
};

using Mutation = std::function<void(EbvBlock&)>;

/// Apply the mutation, repackage honestly (so the Merkle root matches the
/// mutated content — the *miner* is the adversary), and expect rejection.
void expect_rejected_with_honest_root(Fixture& f, const Mutation& mutate,
                                      const char* what) {
    EbvBlock block = f.victim;
    mutate(block);
    block.header.merkle_root = block.compute_merkle_root();
    auto result = f.node->submit_block(block);
    EXPECT_FALSE(result.has_value()) << what << " was accepted";
}

/// Apply the mutation without touching the root (the *relay* is the
/// adversary, tampering after packaging).
void expect_rejected_with_stale_root(Fixture& f, const Mutation& mutate,
                                     const char* what) {
    EbvBlock block = f.victim;
    mutate(block);
    auto result = f.node->submit_block(block);
    EXPECT_FALSE(result.has_value()) << what << " was accepted";
}

std::size_t first_spender(const EbvBlock& block) {
    for (std::size_t t = 1; t < block.txs.size(); ++t) {
        if (!block.txs[t].inputs.empty()) return t;
    }
    return 1;
}

TEST(EbvMutation, ValidBlockIsAcceptedUnchanged) {
    Fixture f;
    EXPECT_TRUE(f.node->submit_block(f.victim).has_value());
}

TEST(EbvMutation, MinerSideMutationsRejected) {
    struct Case {
        const char* name;
        Mutation mutate;
    };
    const Case cases[] = {
        {"input height shifted",
         [](EbvBlock& b) { b.txs[first_spender(b)].inputs[0].height += 1; }},
        {"out_index beyond ELs outputs",
         [](EbvBlock& b) {
             auto& in = b.txs[first_spender(b)].inputs[0];
             in.out_index = static_cast<std::uint16_t>(in.els.outputs.size());
         }},
        {"ELs stake position shifted (fake position)",
         [](EbvBlock& b) { b.txs[first_spender(b)].inputs[0].els.stake_position += 1; }},
        {"ELs output value inflated",
         [](EbvBlock& b) {
             auto& in = b.txs[first_spender(b)].inputs[0];
             in.els.outputs[in.out_index].value += 1;
         }},
        {"MBr index shifted",
         [](EbvBlock& b) {
             auto& mbr = b.txs[first_spender(b)].inputs[0].mbr;
             // A single-leaf tree ignores the index; force a sibling level
             // so the claimed position actually participates in the fold.
             if (mbr.siblings.empty()) mbr.siblings.emplace_back();
             mbr.index ^= 1;
         }},
        {"MBr sibling corrupted",
         [](EbvBlock& b) {
             auto& mbr = b.txs[first_spender(b)].inputs[0].mbr;
             if (mbr.siblings.empty()) mbr.siblings.emplace_back();
             mbr.siblings[0].bytes()[0] ^= 1;
         }},
        {"unlocking script corrupted",
         [](EbvBlock& b) {
             auto& us = b.txs[first_spender(b)].inputs[0].unlock_script;
             us[us.size() / 2] ^= 0x10;
         }},
        {"output value inflated (fee theft)",
         [](EbvBlock& b) { b.txs[first_spender(b)].outputs[0].value += 1; }},
        {"coinbase value inflated",
         [](EbvBlock& b) { b.txs[0].outputs[0].value += 1; }},
        {"duplicated spend input (double spend)",
         [](EbvBlock& b) {
             auto& tx = b.txs[first_spender(b)];
             tx.inputs.push_back(tx.inputs[0]);
         }},
        {"stake positions self-servingly reassigned",
         [](EbvBlock& b) {
             for (auto& tx : b.txs) tx.stake_position += 1;
         }},
    };

    for (const Case& c : cases) {
        Fixture f;  // fresh state per case: rejection must not be order-dependent
        expect_rejected_with_honest_root(f, c.mutate, c.name);
        // The untampered block still connects afterwards (state untouched).
        EXPECT_TRUE(f.node->submit_block(f.victim).has_value())
            << "state damaged by rejected block: " << c.name;
    }
}

TEST(EbvMutation, RelaySideMutationsRejected) {
    struct Case {
        const char* name;
        Mutation mutate;
    };
    const Case cases[] = {
        {"transaction dropped",
         [](EbvBlock& b) { b.txs.pop_back(); }},
        {"transactions reordered",
         [](EbvBlock& b) {
             if (b.txs.size() >= 3) std::swap(b.txs[1], b.txs[2]);
             else b.txs[0].outputs[0].value ^= 1;
         }},
        {"output script swapped (payment redirected)",
         [](EbvBlock& b) {
             auto& out = b.txs[first_spender(b)].outputs[0];
             out.lock_script.back() ^= 0x01;
         }},
        {"header time changed only",
         [](EbvBlock& b) { b.header.time += 1; }},  // changes hash, not root:
        // accepted content-wise would break prev-linkage for the *next*
        // block, but here it must simply connect or fail consistently —
        // time is not covered by the Merkle root, so this one is actually
        // valid; assert acceptance below instead.
    };

    for (std::size_t i = 0; i + 1 < std::size(cases); ++i) {
        Fixture f;
        expect_rejected_with_stale_root(f, cases[i].mutate, cases[i].name);
        EXPECT_TRUE(f.node->submit_block(f.victim).has_value())
            << "state damaged by rejected block: " << cases[i].name;
    }

    // The header-time case: not Merkle-committed, so it connects (and forms
    // a different block hash — fork-choice territory, out of scope).
    Fixture f;
    EbvBlock block = f.victim;
    block.header.time += 1;
    EXPECT_TRUE(f.node->submit_block(block).has_value());
}

// Seeded randomized sweep over the full workload::Adversary mutation
// catalogue (the scenario-matrix mutations of docs/SCENARIOS.md): every
// random draw applied to the next block must be rejected without touching
// node state, and the clean block must still connect afterwards.
TEST(EbvMutation, SeededRandomAdversarySweepRejected) {
    workload::GeneratorOptions gen_options;
    gen_options.seed = 31;
    gen_options.params.coinbase_maturity = 5;
    gen_options.schedule = workload::EraSchedule::flat(4.0, 1.7, 2.0);
    gen_options.height_scale = 1.0;
    gen_options.intensity = 1.0;
    gen_options.key_pool_size = 8;

    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;
    std::vector<EbvBlock> chain;
    for (int i = 0; i < 60; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        chain.push_back(*converted);
        if (chain.size() >= 16 && chain.back().input_count() >= 2) break;
    }
    ASSERT_GE(chain.back().input_count(), 2u);

    EbvNodeOptions options;
    options.params = gen_options.params;
    EbvNode node(options);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        ASSERT_TRUE(node.submit_block(chain[i]).has_value());
    }
    const auto memory_before = node.status_memory_bytes();
    const auto height_before = node.next_height();

    workload::Adversary adversary(0x5eed31);
    for (int i = 0; i < 48; ++i) {
        std::vector<EbvBlock> copy = chain;
        const auto applied =
            adversary.apply_random(copy, chain.size() - 1, &converter.archive());
        ASSERT_TRUE(applied.has_value()) << "draw " << i;
        const auto result = node.submit_block(copy.back());
        EXPECT_FALSE(result.has_value())
            << "draw " << i << ": " << to_string(applied->mutation) << " accepted";
        EXPECT_EQ(node.status_memory_bytes(), memory_before);
        EXPECT_EQ(node.next_height(), height_before);
    }

    EXPECT_TRUE(node.submit_block(chain.back()).has_value());
}

}  // namespace
}  // namespace ebv::core
