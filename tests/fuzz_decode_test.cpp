// Hostile-input robustness for every wire/storage decoder: pure random
// bytes, truncations of valid encodings, and single-byte mutations must
// never crash, hang, or over-allocate — they either decode to a value or
// return a DecodeError.
#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "chain/coin.hpp"
#include "chain/transaction.hpp"
#include "chain/undo.hpp"
#include "core/bitvector.hpp"
#include "core/ebv_transaction.hpp"
#include "crypto/ecdsa.hpp"
#include "core/ebv_validator.hpp"
#include "crypto/merkle.hpp"
#include "intermediary/converter.hpp"
#include "net/message.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

template <typename T>
void decode_random_bytes(std::uint64_t seed, int iterations, std::size_t max_len) {
    util::Rng rng(seed);
    for (int i = 0; i < iterations; ++i) {
        util::Bytes junk(rng.between(0, max_len));
        rng.fill(junk);
        util::Reader r(junk);
        (void)T::deserialize(r);  // must not crash
    }
}

TEST(FuzzDecode, RandomBytesAllDecoders) {
    decode_random_bytes<chain::Transaction>(1, 500, 400);
    decode_random_bytes<chain::Block>(2, 500, 600);
    decode_random_bytes<chain::BlockHeader>(3, 500, 120);
    decode_random_bytes<chain::Coin>(4, 500, 100);
    decode_random_bytes<chain::BlockUndo>(5, 500, 300);
    decode_random_bytes<core::TidyTransaction>(6, 500, 400);
    decode_random_bytes<core::EbvTransaction>(7, 500, 800);
    decode_random_bytes<core::EbvBlock>(8, 500, 1000);
    decode_random_bytes<core::BitVector>(9, 500, 200);
    decode_random_bytes<crypto::MerkleBranch>(10, 500, 400);
}

/// Serialize a valid value, then check every truncation fails cleanly and
/// every single-byte mutation either fails or decodes to *something*
/// (never crashes).
template <typename T>
void truncate_and_mutate(const T& value, std::uint64_t seed) {
    util::Writer w;
    value.serialize(w);
    const util::Bytes wire = w.data();

    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        util::Reader r(util::ByteSpan(wire).first(cut));
        (void)T::deserialize(r);
    }

    util::Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
        util::Bytes mutated = wire;
        mutated[rng.below(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        util::Reader r(mutated);
        (void)T::deserialize(r);
    }
}

TEST(FuzzDecode, MutatedValidEncodings) {
    util::Rng rng(42);

    chain::Transaction tx;
    tx.vin.push_back(chain::TxIn{{}, util::Bytes(30, 0xab), 5});
    tx.vout.push_back(chain::TxOut{123, util::Bytes(25, 0xcd)});
    truncate_and_mutate(tx, 1);

    core::EbvTransaction etx;
    core::EbvInput in;
    in.height = 9;
    in.els.outputs.push_back(chain::TxOut{5, util::Bytes{0x51}});
    in.mbr.siblings.resize(3);
    etx.inputs.push_back(in);
    etx.outputs.push_back(chain::TxOut{4, util::Bytes{0x52}});
    truncate_and_mutate(etx, 2);

    core::BitVector v = core::BitVector::all_ones(200);
    for (int i = 0; i < 180; ++i) v.reset(static_cast<std::uint32_t>(rng.below(200)));
    truncate_and_mutate(v, 3);

    chain::Coin coin{999, 13, true, util::Bytes(40, 0x11)};
    truncate_and_mutate(coin, 4);
}

TEST(FuzzDecode, HostileLengthPrefixesDontAllocate) {
    // A CompactSize claiming 2^32 entries must be rejected by the sanity
    // caps, not attempted.
    util::Writer w;
    w.u32(1);                      // version
    w.compact_size(0xffffffffUL);  // vin count
    util::Reader r(w.data());
    auto tx = chain::Transaction::deserialize(r);
    EXPECT_FALSE(tx.has_value());
}

TEST(FuzzDecode, NetMessagesSurviveMutation) {
    util::Rng rng(77);
    const util::Bytes wire = net::encode_message(net::BlockMsg{
        net::ChainFormat::kEbv, 5, util::Bytes(200, 0x33)});
    for (int i = 0; i < 500; ++i) {
        util::Bytes mutated = wire;
        mutated[rng.below(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        (void)net::decode_message(mutated);
    }
}

TEST(FuzzDecode, ProofMessagesSurviveMutation) {
    util::Rng rng(79);

    net::GetProofMsg get;
    rng.fill(get.block_hash.bytes());
    for (int i = 0; i < 3; ++i) {
        net::ProofRequest req;
        req.kind = i % 2 ? net::ProofKind::kInput : net::ProofKind::kTx;
        rng.fill(req.txid.bytes());
        req.out_index = static_cast<std::uint16_t>(i);
        get.requests.push_back(req);
    }

    net::ProofMsg proof;
    proof.block_hash = get.block_hash;
    net::ProofItem item;
    item.txid = get.requests[0].txid;
    item.height = 12;
    item.position = 34;
    item.els = util::Bytes(60, 0x44);
    item.mbr.siblings.resize(4);
    item.mbr.index = 2;
    proof.items.push_back(item);
    item.status = net::ProofStatus::kUnknownTx;
    item.els.clear();
    item.mbr = {};
    proof.items.push_back(item);

    for (const util::Bytes& wire :
         {net::encode_message(net::Message{get}), net::encode_message(net::Message{proof})}) {
        // Truncations of the frame must fail cleanly.
        for (std::size_t cut = 0; cut < wire.size(); ++cut)
            (void)net::decode_message(util::ByteSpan(wire).first(cut));
        // Payload mutations (checksum usually rejects; when it does not,
        // the payload decoder must still never crash or over-allocate).
        for (int i = 0; i < 500; ++i) {
            util::Bytes mutated = wire;
            mutated[rng.below(mutated.size())] ^=
                static_cast<std::uint8_t>(1u << rng.below(8));
            (void)net::decode_message(mutated);
        }
    }
}

TEST(FuzzDecode, SignatureParserSurvivesGarbage) {
    util::Rng rng(78);
    for (int i = 0; i < 2000; ++i) {
        util::Bytes junk(rng.between(0, 80));
        rng.fill(junk);
        (void)crypto::Signature::from_der(junk);
        if (junk.size() == 33) (void)crypto::PublicKey::parse(junk);
    }
}

// Tampered-proof seeds: a real workload block carries genuine MBr/ELs
// encodings; every truncation and bit flip of its wire form — most of
// which land inside the proof fields — must decode cleanly or fail
// cleanly, and whatever decodes must survive the structural validation
// path (stake positions, Merkle root) without crashing.
TEST(FuzzDecode, RealProofEncodingsSurviveMutation) {
    workload::GeneratorOptions gen_options;
    gen_options.seed = 11;
    gen_options.params.coinbase_maturity = 5;
    gen_options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    gen_options.height_scale = 1.0;
    gen_options.intensity = 1.0;
    gen_options.key_pool_size = 8;
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    std::optional<core::EbvBlock> victim;
    for (int i = 0; i < 40 && !victim; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        if (converted->input_count() >= 2) victim = *converted;
    }
    ASSERT_TRUE(victim.has_value());
    truncate_and_mutate(*victim, 77);

    util::Writer w;
    victim->serialize(w);
    const util::Bytes wire = w.data();
    util::Rng rng(79);
    for (int i = 0; i < 300; ++i) {
        util::Bytes mutated = wire;
        mutated[rng.below(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        util::Reader r(mutated);
        auto block = core::EbvBlock::deserialize(r);
        if (!block.has_value()) continue;
        (void)block->compute_merkle_root();
        (void)core::check_block_structure(*block, gen_options.params);
    }
}

}  // namespace
}  // namespace ebv
