// Unit tests for the bench_compare decision logic (src/bench/compare.hpp):
// improvements pass, regressions beyond tolerance fail, missing metrics
// warn, aborted runs refuse to gate, and provenance drift warns (or fails
// under --strict-provenance).
#include "bench/compare.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ebv::bench {
namespace {

util::json::Value doc(const std::string& text) {
    auto parsed = util::json::parse(text);
    EXPECT_TRUE(parsed.has_value()) << text;
    return parsed.value_or(util::json::Value{});
}

const char* kBaseline =
    R"({"bench":"fig17_ibd_compare",)"
    R"("provenance":{"git_sha":"aaa111","build_type":"Release","hw_threads":8,)"
    R"("sha256_impl":"sha-ni"},)"
    R"("rows":[{"mode":"pipelined","threads":4,"window":8,"ibd_ms":1000.0,)"
    R"("speedup":2.0,"inputs":500}],"aborted":false,"metrics":{}})";

std::string current_with(const std::string& rows, const char* aborted = "false") {
    return std::string(R"({"bench":"fig17_ibd_compare",)") +
           R"("provenance":{"git_sha":"bbb222","build_type":"Release",)" +
           R"("hw_threads":8,"sha256_impl":"sha-ni"},"rows":[)" + rows +
           R"(],"aborted":)" + aborted + R"(,"metrics":{}})";
}

TEST(BenchCompare, ImprovementPasses) {
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":800.0,"speedup":2.5,"inputs":500})")));
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_TRUE(result.errors.empty());
    // ibd_ms, speedup, and the informational `inputs` all compared.
    EXPECT_EQ(result.deltas.size(), 3u);
}

TEST(BenchCompare, RegressionBeyondToleranceFails) {
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":1200.0,"speedup":2.0,"inputs":500})")));
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.regressions, 1u);
    bool found = false;
    for (const MetricDelta& d : result.deltas) {
        if (d.metric == "ibd_ms") {
            found = true;
            EXPECT_TRUE(d.regression);
            EXPECT_EQ(d.direction, Direction::kLowerBetter);
        }
    }
    EXPECT_TRUE(found);
}

TEST(BenchCompare, RegressionWithinToleranceIsOk) {
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":1090.0,"speedup":1.95,"inputs":500})")));
    EXPECT_TRUE(result.ok) << format_report(result);
}

TEST(BenchCompare, SpeedupDropGatesHigherIsBetter) {
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":1000.0,"speedup":1.0,"inputs":500})")));
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.regressions, 1u);
}

TEST(BenchCompare, InfoMetricsNeverGate) {
    // `inputs` doubling is workload drift, not a perf regression.
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":1000.0,"speedup":2.0,"inputs":1000})")));
    EXPECT_TRUE(result.ok);
}

TEST(BenchCompare, MissingMetricWarnsWithoutFailing) {
    const auto result = compare_reports(
        doc(kBaseline), doc(current_with(R"({"mode":"pipelined","threads":4,)"
                                         R"("window":8,"ibd_ms":1000.0,"inputs":500})")));
    EXPECT_TRUE(result.ok);
    ASSERT_FALSE(result.warnings.empty());
    EXPECT_NE(result.warnings[0].find("speedup"), std::string::npos);
}

TEST(BenchCompare, MissingRowWarnsWithoutFailing) {
    const auto result = compare_reports(
        doc(kBaseline), doc(current_with(R"({"mode":"serial","threads":4,"window":8,)"
                                         R"("ibd_ms":900.0,"speedup":2.0,"inputs":500})")));
    EXPECT_TRUE(result.ok);
    ASSERT_FALSE(result.warnings.empty());
    EXPECT_NE(result.warnings[0].find("missing"), std::string::npos);
}

TEST(BenchCompare, AbortedCurrentRunIsFatal) {
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":10.0,"speedup":9.0,"inputs":5})",
                         "true")));
    EXPECT_FALSE(result.ok);
    ASSERT_FALSE(result.errors.empty());
    EXPECT_NE(result.errors[0].find("aborted"), std::string::npos);
    // A partial run's suspiciously good numbers must not be compared.
    EXPECT_TRUE(result.deltas.empty());
}

TEST(BenchCompare, AbortedBaselineIsFatal) {
    std::string aborted_baseline = kBaseline;
    const auto pos = aborted_baseline.find("\"aborted\":false");
    ASSERT_NE(pos, std::string::npos);
    aborted_baseline.replace(pos, 15, "\"aborted\":true");
    const auto result = compare_reports(
        doc(aborted_baseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":1000.0,"speedup":2.0,"inputs":500})")));
    EXPECT_FALSE(result.ok);
}

TEST(BenchCompare, BenchNameMismatchIsFatal) {
    const auto result = compare_reports(
        doc(kBaseline),
        doc(R"({"bench":"fig16_validation_compare","rows":[],"aborted":false})"));
    EXPECT_FALSE(result.ok);
    ASSERT_FALSE(result.errors.empty());
    EXPECT_NE(result.errors[0].find("mismatch"), std::string::npos);
}

TEST(BenchCompare, ProvenanceDriftWarnsByDefaultFailsStrict) {
    const std::string current =
        std::string(R"({"bench":"fig17_ibd_compare",)") +
        R"("provenance":{"git_sha":"bbb","build_type":"Debug","hw_threads":8,)" +
        R"("sha256_impl":"sha-ni"},)" +
        R"("rows":[{"mode":"pipelined","threads":4,"window":8,"ibd_ms":1000.0,)" +
        R"("speedup":2.0,"inputs":500}],"aborted":false,"metrics":{}})";

    const auto lax = compare_reports(doc(kBaseline), doc(current));
    EXPECT_TRUE(lax.ok);
    ASSERT_FALSE(lax.warnings.empty());
    EXPECT_NE(lax.warnings[0].find("build_type"), std::string::npos);

    CompareOptions strict;
    strict.strict_provenance = true;
    const auto refused = compare_reports(doc(kBaseline), doc(current), strict);
    EXPECT_FALSE(refused.ok);
    EXPECT_TRUE(refused.deltas.empty());
}

TEST(BenchCompare, GateOnlyFilterLimitsGatingNotReporting) {
    CompareOptions options;
    options.gate_only = "speedup";
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":5000.0,"speedup":2.0,"inputs":500})")),
        options);
    // ibd_ms quintupled but only speedup metrics gate.
    EXPECT_TRUE(result.ok) << format_report(result);
    EXPECT_EQ(result.deltas.size(), 3u);  // still all reported
}

TEST(BenchCompare, ToleranceIsConfigurable) {
    CompareOptions tight;
    tight.tolerance = 0.01;
    const auto result = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":1050.0,"speedup":2.0,"inputs":500})")),
        tight);
    EXPECT_FALSE(result.ok);  // +5 % fails a 1 % gate
}

TEST(BenchCompare, SkewIsIdentityNotMetric) {
    // The fig16 scheduler sweep keys rows by {scheduler, skew, threads};
    // `skew` must parameterize row identity, never be gated as a metric.
    const char* base =
        R"({"bench":"fig16_validation_compare","provenance":{},)"
        R"("rows":[{"scheduler":"steal","skew":1.0,"threads":4,)"
        R"("ev_sv_ms":100.0,"speedup":3.0}],"aborted":false})";

    // Same scheduler/threads at a different skew level: no matching row,
    // warn instead of comparing apples to oranges.
    const auto mismatched = compare_reports(
        doc(base),
        doc(R"({"bench":"fig16_validation_compare","provenance":{},)"
            R"("rows":[{"scheduler":"steal","skew":0.0,"threads":4,)"
            R"("ev_sv_ms":50.0,"speedup":9.0}],"aborted":false})"));
    EXPECT_TRUE(mismatched.ok);
    ASSERT_FALSE(mismatched.warnings.empty());
    EXPECT_NE(mismatched.warnings.back().find("skew=1"), std::string::npos);
    EXPECT_TRUE(mismatched.deltas.empty());

    // Matching skew compares ev_sv_ms and speedup, but never "skew" itself.
    const auto matched = compare_reports(
        doc(base),
        doc(R"({"bench":"fig16_validation_compare","provenance":{},)"
            R"("rows":[{"scheduler":"steal","skew":1.0,"threads":4,)"
            R"("ev_sv_ms":90.0,"speedup":3.3}],"aborted":false})"));
    EXPECT_TRUE(matched.ok) << format_report(matched);
    EXPECT_EQ(matched.deltas.size(), 2u);
    for (const MetricDelta& d : matched.deltas) EXPECT_NE(d.metric, "skew");
}

TEST(BenchCompare, ArrivalIsIdentityNotMetric) {
    // The fig20 mempool sweep keys rows by {threads, arrival}; `arrival`
    // (admission burst size) parameterizes identity, it is never gated.
    const char* base =
        R"({"bench":"fig20_mempool","provenance":{},)"
        R"("rows":[{"threads":4,"arrival":32,)"
        R"("warm_connect_ms":1.0,"cache_hit_speedup":60.0}],"aborted":false})";

    // Same threads at a different burst size: no matching row, warn.
    const auto mismatched = compare_reports(
        doc(base),
        doc(R"({"bench":"fig20_mempool","provenance":{},)"
            R"("rows":[{"threads":4,"arrival":256,)"
            R"("warm_connect_ms":0.5,"cache_hit_speedup":90.0}],"aborted":false})"));
    EXPECT_TRUE(mismatched.ok);
    ASSERT_FALSE(mismatched.warnings.empty());
    EXPECT_NE(mismatched.warnings.back().find("arrival=32"), std::string::npos);
    EXPECT_TRUE(mismatched.deltas.empty());

    // Matching burst size compares the metrics, never "arrival" itself.
    const auto matched = compare_reports(
        doc(base),
        doc(R"({"bench":"fig20_mempool","provenance":{},)"
            R"("rows":[{"threads":4,"arrival":32,)"
            R"("warm_connect_ms":1.1,"cache_hit_speedup":55.0}],"aborted":false})"));
    EXPECT_TRUE(matched.ok) << format_report(matched);
    EXPECT_EQ(matched.deltas.size(), 2u);
    for (const MetricDelta& d : matched.deltas) EXPECT_NE(d.metric, "arrival");
}

TEST(BenchCompare, MetricDirectionTable) {
    EXPECT_EQ(metric_direction("ibd_ms"), Direction::kLowerBetter);
    EXPECT_EQ(metric_direction("ev_ns"), Direction::kLowerBetter);
    EXPECT_EQ(metric_direction("wakeup_us"), Direction::kLowerBetter);
    EXPECT_EQ(metric_direction("proof_bytes"), Direction::kLowerBetter);
    EXPECT_EQ(metric_direction("speedup"), Direction::kHigherBetter);
    EXPECT_EQ(metric_direction("proof_reduction_pct"), Direction::kHigherBetter);
    EXPECT_EQ(metric_direction("sighash_bytes_saved"), Direction::kHigherBetter);
    EXPECT_EQ(metric_direction("hit_rate_pct"), Direction::kHigherBetter);
    EXPECT_EQ(metric_direction("serving_speedup"), Direction::kHigherBetter);
    EXPECT_EQ(metric_direction("inputs"), Direction::kInfo);
    EXPECT_EQ(metric_direction("height"), Direction::kInfo);
}

TEST(BenchCompare, FormatReportMentionsVerdict) {
    const auto pass = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":900.0,"speedup":2.2,"inputs":500})")));
    EXPECT_NE(format_report(pass).find("PASS"), std::string::npos);

    const auto fail = compare_reports(
        doc(kBaseline),
        doc(current_with(R"({"mode":"pipelined","threads":4,"window":8,)"
                         R"("ibd_ms":2000.0,"speedup":2.0,"inputs":500})")));
    const std::string report = format_report(fail);
    EXPECT_NE(report.find("FAIL"), std::string::npos);
    EXPECT_NE(report.find("REGRESSION"), std::string::npos);
}

}  // namespace
}  // namespace ebv::bench
