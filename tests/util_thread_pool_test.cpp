#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/affinity.hpp"
#include "util/steal_deque.hpp"
#include "util/thread_pool.hpp"

namespace ebv::util {
namespace {

TEST(ThreadPool, ZeroItemsIsNoop) {
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);

    CancelToken cancel;
    cancel.cancel();
    pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); }, &cancel);
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        for (std::size_t n : {1u, 2u, 7u, 64u, 1000u}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n << " i=" << i;
        }
    }
}

TEST(ThreadPool, BodyExceptionRethrownExactlyOnce) {
    ThreadPool pool(4);
    for (int repeat = 0; repeat < 20; ++repeat) {
        std::atomic<int> ran{0};
        int caught = 0;
        try {
            pool.parallel_for(256, [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 17) throw std::runtime_error("boom");
            });
        } catch (const std::runtime_error& e) {
            ++caught;
            EXPECT_STREQ(e.what(), "boom");
        }
        EXPECT_EQ(caught, 1);
        // The pool must stay usable after an exception.
        std::atomic<int> after{0};
        pool.parallel_for(64, [&](std::size_t) { after.fetch_add(1); });
        EXPECT_EQ(after.load(), 64);
    }
}

TEST(ThreadPool, PreCancelledTokenSkipsAllBodies) {
    ThreadPool pool(4);
    CancelToken cancel;
    cancel.cancel();
    std::atomic<int> ran{0};
    pool.parallel_for(1000, [&](std::size_t) { ran.fetch_add(1); }, &cancel);
    EXPECT_EQ(ran.load(), 0);

    cancel.reset();
    pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); }, &cancel);
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, MidRunCancellationStopsRemainingChunks) {
    for (std::size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        CancelToken cancel;
        std::atomic<int> ran{0};
        const std::size_t n = 100000;
        pool.parallel_for(n, [&](std::size_t) {
            if (ran.fetch_add(1) == 10) cancel.cancel();
        }, &cancel);
        // Everything after the in-flight chunks must be skipped. The exact
        // count depends on chunking; it just must be far below n.
        EXPECT_GE(ran.load(), 11);
        EXPECT_LT(static_cast<std::size_t>(ran.load()), n / 2) << "threads=" << threads;
    }
}

TEST(ThreadPool, SlotsAreWithinRangeAndStable) {
    ThreadPool pool(4);
    const std::size_t n = 4096;
    std::vector<std::size_t> slot_of(n, SIZE_MAX);
    pool.parallel_for_slots(n, [&](std::size_t slot, std::size_t i) {
        ASSERT_LT(slot, pool.thread_count());
        slot_of[i] = slot;  // each index visited once; no race
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_NE(slot_of[i], SIZE_MAX);
    // No promise that any *particular* slot participates (under either
    // scheduler the other threads can race to claim everything); a pool of
    // one is the degenerate case where slot 0 must do all the work.
    ThreadPool solo(1);
    std::vector<std::size_t> solo_slot(64, SIZE_MAX);
    solo.parallel_for_slots(64, [&](std::size_t slot, std::size_t i) {
        solo_slot[i] = slot;
    });
    EXPECT_EQ(std::count(solo_slot.begin(), solo_slot.end(), 0u), 64);
}

TEST(ThreadPool, PerSlotPartialsNeedNoSynchronization) {
    ThreadPool pool(4);
    const std::size_t n = 100000;
    std::vector<std::uint64_t> partial(pool.thread_count(), 0);
    pool.parallel_for_slots(n, [&](std::size_t slot, std::size_t i) { partial[slot] += i; });
    const std::uint64_t sum = std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ReentrantParallelForRunsSerially) {
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallel_for(8, [&](std::size_t) {
        pool.parallel_for(16, [&](std::size_t) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, StressTinyAndHugeChunkCounts) {
    ThreadPool pool(8);
    // Many tiny jobs: exercises submit/broadcast churn.
    for (int round = 0; round < 500; ++round) {
        std::atomic<int> ran{0};
        pool.parallel_for(3, [&](std::size_t) { ran.fetch_add(1); });
        ASSERT_EQ(ran.load(), 3);
    }
    // One huge job: exercises counter claiming under contention.
    const std::size_t n = 1 << 20;
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(n, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, StatsAccumulate) {
    ThreadPool pool(2);
    const PoolStats before = pool.stats();
    pool.parallel_for(1000, [](std::size_t) {});
    pool.parallel_for(1000, [](std::size_t) {});
    const PoolStats after = pool.stats();
    EXPECT_EQ(after.parallel_fors, before.parallel_fors + 2);
    EXPECT_GT(after.tasks, before.tasks);
}

// ---------------------------------------------------------------------------
// StealDeque unit tests
// ---------------------------------------------------------------------------

TEST(StealDeque, OwnerPopIsLifoStealIsFifo) {
    StealDeque dq;
    for (std::uint32_t v = 0; v < 8; ++v) ASSERT_TRUE(dq.push({v, v + 1}));
    EXPECT_EQ(dq.size(), 8u);

    IndexRange r;
    ASSERT_TRUE(dq.pop(r));
    EXPECT_EQ(r.begin, 7u);  // owner takes the newest
    ASSERT_TRUE(dq.steal(r));
    EXPECT_EQ(r.begin, 0u);  // thief takes the oldest
    ASSERT_TRUE(dq.steal(r));
    EXPECT_EQ(r.begin, 1u);
    ASSERT_TRUE(dq.pop(r));
    EXPECT_EQ(r.begin, 6u);

    for (std::uint32_t expect = 5; dq.pop(r); --expect) EXPECT_EQ(r.begin, expect);
    EXPECT_EQ(dq.size(), 0u);
    EXPECT_FALSE(dq.pop(r));
    EXPECT_FALSE(dq.steal(r));
}

TEST(StealDeque, RangeFieldsSurviveRoundTrip) {
    StealDeque dq;
    const IndexRange in{0xDEADBEEFu, 0xFEEDFACEu};
    ASSERT_TRUE(dq.push(in));
    IndexRange out;
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out.begin, in.begin);
    EXPECT_EQ(out.end, in.end);
}

TEST(StealDeque, PushFailsWhenFullAndRecoversAfterConsumption) {
    StealDeque dq;
    for (std::uint32_t i = 0; i < StealDeque::kCapacity; ++i)
        ASSERT_TRUE(dq.push({i, i + 1}));
    EXPECT_FALSE(dq.push({0, 1}));  // bounded: overflow refused, not dropped
    EXPECT_EQ(dq.size(), StealDeque::kCapacity);

    IndexRange r;
    ASSERT_TRUE(dq.steal(r));
    EXPECT_EQ(r.begin, 0u);
    EXPECT_TRUE(dq.push({999, 1000}));  // one slot freed -> push succeeds again
    EXPECT_EQ(dq.size(), StealDeque::kCapacity);
}

// The hardest interleaving in Chase–Lev: one element left, the owner pops
// while a thief steals. Exactly one side may win; the element must never be
// duplicated or lost.
TEST(StealDeque, SizeOneTakeStealRaceHandsOutExactlyOnce) {
    constexpr int kRounds = 1000;
    for (int round = 0; round < kRounds; ++round) {
        StealDeque dq;
        ASSERT_TRUE(dq.push({7, 8}));
        std::atomic<bool> go{false};
        std::atomic<int> claims{0};
        std::thread thief([&] {
            while (!go.load(std::memory_order_acquire)) {}
            IndexRange r;
            if (dq.steal(r)) {
                EXPECT_EQ(r.begin, 7u);
                claims.fetch_add(1);
            }
        });
        go.store(true, std::memory_order_release);
        IndexRange r;
        if (dq.pop(r)) {
            EXPECT_EQ(r.begin, 7u);
            claims.fetch_add(1);
        }
        thief.join();
        ASSERT_EQ(claims.load(), 1) << "round " << round;
        EXPECT_FALSE(dq.pop(r));
        EXPECT_FALSE(dq.steal(r));
    }
}

// Randomized owner-vs-thieves stress: every pushed range must be consumed
// exactly once, by someone. Each range is {v, v+1}, so summing the begins of
// everything handed out checks conservation.
TEST(StealDeque, RandomizedStressConservesRanges) {
    StealDeque dq;
    constexpr int kThieves = 3;
    constexpr std::uint32_t kItems = 20000;

    std::atomic<std::uint64_t> stolen_sum{0};
    std::atomic<std::uint64_t> stolen_count{0};
    std::atomic<bool> done{false};
    std::vector<std::thread> thieves;
    thieves.reserve(kThieves);
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&] {
            std::uint64_t sum = 0, count = 0;
            IndexRange r;
            while (!done.load(std::memory_order_acquire)) {
                if (dq.steal(r)) {
                    sum += r.begin;
                    ++count;
                }
            }
            stolen_sum.fetch_add(sum);
            stolen_count.fetch_add(count);
        });
    }

    std::mt19937 rng(20260809);
    std::uint64_t owner_sum = 0, owner_count = 0;
    std::uint32_t next = 0;
    IndexRange r;
    while (next < kItems) {
        if (rng() % 4 != 0) {
            if (dq.push({next, next + 1})) ++next;  // full -> retry after pops
        } else if (dq.pop(r)) {
            owner_sum += r.begin;
            ++owner_count;
        }
    }
    while (dq.pop(r)) {
        owner_sum += r.begin;
        ++owner_count;
    }
    // pop() only reports empty when top has caught up, so any element the
    // owner missed is already owned by a thief; after the flag the thieves
    // observe an empty deque and exit.
    done.store(true, std::memory_order_release);
    for (auto& th : thieves) th.join();

    EXPECT_EQ(owner_count + stolen_count.load(), kItems);
    EXPECT_EQ(owner_sum + stolen_sum.load(),
              static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
    EXPECT_EQ(dq.size(), 0u);
}

// ---------------------------------------------------------------------------
// Scheduler-parameterized pool tests: the public contracts must hold
// identically under the shared-counter and the work-stealing scheduler,
// regardless of what EBV_SCHEDULER says.
// ---------------------------------------------------------------------------

class SchedulerContract : public ::testing::TestWithParam<SchedulerMode> {
protected:
    static std::unique_ptr<ThreadPool> make_pool(std::size_t threads) {
        return std::make_unique<ThreadPool>(
            ThreadPool::Options{threads, GetParam(), {}});
    }
};

TEST_P(SchedulerContract, ModeIsHonored) {
    auto pool = make_pool(2);
    EXPECT_EQ(pool->scheduler(), GetParam());
}

TEST_P(SchedulerContract, CoversEveryIndexExactlyOnce) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        auto pool = make_pool(threads);
        for (std::size_t n : {1u, 2u, 7u, 64u, 1000u, 4097u}) {
            std::vector<std::atomic<int>> hits(n);
            pool->parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << to_string(GetParam()) << " threads=" << threads << " n=" << n
                    << " i=" << i;
        }
    }
}

TEST_P(SchedulerContract, ExceptionRethrownExactlyOnceAndPoolSurvives) {
    auto pool = make_pool(4);
    for (int repeat = 0; repeat < 10; ++repeat) {
        int caught = 0;
        try {
            pool->parallel_for(512, [&](std::size_t i) {
                if (i == 301) throw std::runtime_error("steal-boom");
            });
        } catch (const std::runtime_error& e) {
            ++caught;
            EXPECT_STREQ(e.what(), "steal-boom");
        }
        EXPECT_EQ(caught, 1);
        std::atomic<int> after{0};
        pool->parallel_for(64, [&](std::size_t) { after.fetch_add(1); });
        EXPECT_EQ(after.load(), 64);
    }
}

TEST_P(SchedulerContract, MidRunCancellationStopsRemainingWork) {
    auto pool = make_pool(4);
    CancelToken cancel;
    std::atomic<int> ran{0};
    const std::size_t n = 100000;
    pool->parallel_for(n, [&](std::size_t) {
        if (ran.fetch_add(1) == 10) cancel.cancel();
    }, &cancel);
    EXPECT_GE(ran.load(), 11);
    EXPECT_LT(static_cast<std::size_t>(ran.load()), n / 2);
}

TEST_P(SchedulerContract, SlotsAreExclusivePerThread) {
    auto pool = make_pool(4);
    const std::size_t n = 100000;
    std::vector<std::uint64_t> partial(pool->thread_count(), 0);
    pool->parallel_for_slots(n, [&](std::size_t slot, std::size_t i) {
        ASSERT_LT(slot, pool->thread_count());
        partial[slot] += i;  // exclusive slot -> no synchronization needed
    });
    const std::uint64_t sum = std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST_P(SchedulerContract, ReentrantParallelForRunsSerially) {
    auto pool = make_pool(4);
    std::atomic<int> inner_total{0};
    pool->parallel_for(8, [&](std::size_t) {
        pool->parallel_for(1000, [&](std::size_t) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 8 * 1000);
}

INSTANTIATE_TEST_SUITE_P(BothSchedulers, SchedulerContract,
                         ::testing::Values(SchedulerMode::kCounter,
                                           SchedulerMode::kSteal),
                         [](const ::testing::TestParamInfo<SchedulerMode>& info) {
                             return to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Stealing-specific behaviour
// ---------------------------------------------------------------------------

// Deterministic imbalance: slot 0's seeded span [0, 32) is slow, slot 1's
// span [32, 64) is fast. The worker drains its own span, then must steal the
// halves slot 0 split off — on any machine, including a single-CPU one,
// because slot 0 *sleeps* inside its bodies.
TEST(ThreadPoolSteal, StealsOccurUnderSkewedCost) {
    ThreadPool pool(ThreadPool::Options{2, SchedulerMode::kSteal, {}});
    const PoolStats before = pool.stats();
    const std::size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i < n / 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
    // The thief here is the *worker*, and workers flush their counters as
    // they detach — which may be just after the submitter's barrier
    // releases. Poll briefly instead of snapshotting once.
    PoolStats after = pool.stats();
    for (int i = 0; i < 2000 && after.steals == before.steals; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        after = pool.stats();
    }
    EXPECT_GT(after.local_pops, before.local_pops);
    EXPECT_GT(after.steals, before.steals);
    EXPECT_GE(after.steal_attempts, after.steals);
}

TEST(ThreadPoolSteal, QueueDepthPeakTracksSplits) {
    ThreadPool pool(ThreadPool::Options{2, SchedulerMode::kSteal, {}});
    pool.parallel_for(1 << 14, [](std::size_t) {});
    const std::vector<std::uint64_t> peaks = pool.slot_queue_depth_peak();
    ASSERT_EQ(peaks.size(), pool.thread_count());
    // Every seeded slot held at least its initial span; splitting pushes more.
    EXPECT_GE(peaks[0], 1u);
    EXPECT_GE(peaks[1], 1u);
    EXPECT_LE(*std::max_element(peaks.begin(), peaks.end()), StealDeque::kCapacity);
}

TEST(ThreadPoolSteal, HugeNFallsBackToCounterCorrectly) {
    // n > 2^32 cannot be routed through 32-bit deque ranges; the pool must
    // still cover the space via the counter path. Full 2^32 iterations are
    // too slow for a unit test, so just check the guard boundary logic by
    // running the largest practical size through the steal-configured pool.
    ThreadPool pool(ThreadPool::Options{4, SchedulerMode::kSteal, {}});
    const std::size_t n = (1u << 22);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(n, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPoolSteal, StatsSnapshotIncludesNewCounters) {
    ThreadPool pool(ThreadPool::Options{4, SchedulerMode::kSteal, {}});
    const PoolStats before = pool.stats();
    for (int i = 0; i < 16; ++i)
        pool.parallel_for(10000, [](std::size_t) {});
    const PoolStats after = pool.stats();
    EXPECT_EQ(after.parallel_fors, before.parallel_fors + 16);
    EXPECT_GT(after.tasks, before.tasks);
    EXPECT_GT(after.local_pops, before.local_pops);
}

// ---------------------------------------------------------------------------
// Affinity
// ---------------------------------------------------------------------------

TEST(Affinity, PinCurrentThreadWorksWhereSupported) {
    if (!affinity_supported()) {
        GTEST_SKIP() << "affinity not supported on this platform";
    }
    EXPECT_GE(affinity_cpu_count(), 1u);
    EXPECT_TRUE(pin_current_thread(0));
    // Out-of-range CPU indices wrap onto the usable set rather than failing.
    EXPECT_TRUE(pin_current_thread(affinity_cpu_count() + 3));
}

TEST(Affinity, PinnedPoolStillSatisfiesContracts) {
    ThreadPool pool(ThreadPool::Options{4, SchedulerMode::kSteal, true});
    if (affinity_supported()) {
        EXPECT_TRUE(pool.affinity_applied());
    } else {
        EXPECT_FALSE(pool.affinity_applied());
    }
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Affinity, DisabledByDefault) {
    ThreadPool pool(ThreadPool::Options{2, SchedulerMode::kSteal, false});
    EXPECT_FALSE(pool.affinity_applied());
}

}  // namespace
}  // namespace ebv::util
