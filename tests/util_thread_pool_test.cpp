#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace ebv::util {
namespace {

TEST(ThreadPool, ZeroItemsIsNoop) {
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);

    CancelToken cancel;
    cancel.cancel();
    pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); }, &cancel);
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        for (std::size_t n : {1u, 2u, 7u, 64u, 1000u}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n << " i=" << i;
        }
    }
}

TEST(ThreadPool, BodyExceptionRethrownExactlyOnce) {
    ThreadPool pool(4);
    for (int repeat = 0; repeat < 20; ++repeat) {
        std::atomic<int> ran{0};
        int caught = 0;
        try {
            pool.parallel_for(256, [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 17) throw std::runtime_error("boom");
            });
        } catch (const std::runtime_error& e) {
            ++caught;
            EXPECT_STREQ(e.what(), "boom");
        }
        EXPECT_EQ(caught, 1);
        // The pool must stay usable after an exception.
        std::atomic<int> after{0};
        pool.parallel_for(64, [&](std::size_t) { after.fetch_add(1); });
        EXPECT_EQ(after.load(), 64);
    }
}

TEST(ThreadPool, PreCancelledTokenSkipsAllBodies) {
    ThreadPool pool(4);
    CancelToken cancel;
    cancel.cancel();
    std::atomic<int> ran{0};
    pool.parallel_for(1000, [&](std::size_t) { ran.fetch_add(1); }, &cancel);
    EXPECT_EQ(ran.load(), 0);

    cancel.reset();
    pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); }, &cancel);
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, MidRunCancellationStopsRemainingChunks) {
    for (std::size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        CancelToken cancel;
        std::atomic<int> ran{0};
        const std::size_t n = 100000;
        pool.parallel_for(n, [&](std::size_t) {
            if (ran.fetch_add(1) == 10) cancel.cancel();
        }, &cancel);
        // Everything after the in-flight chunks must be skipped. The exact
        // count depends on chunking; it just must be far below n.
        EXPECT_GE(ran.load(), 11);
        EXPECT_LT(static_cast<std::size_t>(ran.load()), n / 2) << "threads=" << threads;
    }
}

TEST(ThreadPool, SlotsAreWithinRangeAndStable) {
    ThreadPool pool(4);
    const std::size_t n = 4096;
    std::vector<std::size_t> slot_of(n, SIZE_MAX);
    pool.parallel_for_slots(n, [&](std::size_t slot, std::size_t i) {
        ASSERT_LT(slot, pool.thread_count());
        slot_of[i] = slot;  // each index visited once; no race
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_NE(slot_of[i], SIZE_MAX);
    // Slot 0 is the calling thread and always participates.
    EXPECT_NE(std::count(slot_of.begin(), slot_of.end(), 0u), 0);
}

TEST(ThreadPool, PerSlotPartialsNeedNoSynchronization) {
    ThreadPool pool(4);
    const std::size_t n = 100000;
    std::vector<std::uint64_t> partial(pool.thread_count(), 0);
    pool.parallel_for_slots(n, [&](std::size_t slot, std::size_t i) { partial[slot] += i; });
    const std::uint64_t sum = std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ReentrantParallelForRunsSerially) {
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallel_for(8, [&](std::size_t) {
        pool.parallel_for(16, [&](std::size_t) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, StressTinyAndHugeChunkCounts) {
    ThreadPool pool(8);
    // Many tiny jobs: exercises submit/broadcast churn.
    for (int round = 0; round < 500; ++round) {
        std::atomic<int> ran{0};
        pool.parallel_for(3, [&](std::size_t) { ran.fetch_add(1); });
        ASSERT_EQ(ran.load(), 3);
    }
    // One huge job: exercises counter claiming under contention.
    const std::size_t n = 1 << 20;
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(n, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, StatsAccumulate) {
    ThreadPool pool(2);
    const PoolStats before = pool.stats();
    pool.parallel_for(1000, [](std::size_t) {});
    pool.parallel_for(1000, [](std::size_t) {});
    const PoolStats after = pool.stats();
    EXPECT_EQ(after.parallel_fors, before.parallel_fors + 2);
    EXPECT_GT(after.tasks, before.tasks);
}

}  // namespace
}  // namespace ebv::util
