// Utreexo-style forest accumulator: structure invariants, proof soundness,
// and the proof-churn behaviour the paper criticizes.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "accumulator/forest.hpp"
#include "util/rng.hpp"

namespace ebv::accumulator {
namespace {

crypto::Hash256 leaf_hash(std::uint64_t i) {
    crypto::Hash256 h;
    h.bytes()[0] = static_cast<std::uint8_t>(i);
    h.bytes()[1] = static_cast<std::uint8_t>(i >> 8);
    h.bytes()[2] = static_cast<std::uint8_t>(i >> 16);
    h.bytes()[31] = 0x77;
    return h;
}

TEST(Forest, RootCountFollowsPopcount) {
    MerkleForest forest;
    for (std::uint64_t i = 1; i <= 64; ++i) {
        forest.add(leaf_hash(i));
        EXPECT_EQ(forest.root_count(),
                  static_cast<std::size_t>(__builtin_popcountll(i)))
            << "after " << i << " adds";
    }
    EXPECT_EQ(forest.leaf_count(), 64u);
    EXPECT_EQ(forest.state_bytes(), 32u);  // one root for a perfect 64-tree
}

TEST(Forest, ProveAndVerifyAllLeaves) {
    MerkleForest forest;
    std::vector<MerkleForest::LeafId> ids;
    for (std::uint64_t i = 0; i < 37; ++i) ids.push_back(forest.add(leaf_hash(i)));

    for (const auto id : ids) {
        const auto proof = forest.prove(id);
        ASSERT_TRUE(proof.has_value()) << id;
        EXPECT_TRUE(forest.verify(*proof)) << id;
    }
}

TEST(Forest, TamperedProofRejected) {
    MerkleForest forest;
    std::vector<MerkleForest::LeafId> ids;
    for (std::uint64_t i = 0; i < 16; ++i) ids.push_back(forest.add(leaf_hash(i)));

    auto proof = *forest.prove(ids[5]);
    proof.leaf.bytes()[3] ^= 1;
    EXPECT_FALSE(forest.verify(proof));

    auto proof2 = *forest.prove(ids[5]);
    ASSERT_FALSE(proof2.siblings.empty());
    proof2.siblings[0].first.bytes()[0] ^= 1;
    EXPECT_FALSE(forest.verify(proof2));
}

TEST(Forest, RemoveMakesLeafUnprovable) {
    MerkleForest forest;
    std::vector<MerkleForest::LeafId> ids;
    for (std::uint64_t i = 0; i < 20; ++i) ids.push_back(forest.add(leaf_hash(i)));

    const auto stale = *forest.prove(ids[7]);
    ASSERT_TRUE(forest.remove(ids[7]));
    EXPECT_FALSE(forest.prove(ids[7]).has_value());
    EXPECT_FALSE(forest.remove(ids[7]));  // double remove
    EXPECT_EQ(forest.leaf_count(), 19u);
    // The old proof no longer folds onto any root.
    EXPECT_FALSE(forest.verify(stale));

    // Every surviving leaf remains provable with a *fresh* proof.
    for (const auto id : ids) {
        if (id == ids[7]) continue;
        const auto proof = forest.prove(id);
        ASSERT_TRUE(proof.has_value()) << id;
        EXPECT_TRUE(forest.verify(*proof)) << id;
    }
}

TEST(Forest, RemoveRightmostLeafDirectly) {
    MerkleForest forest;
    std::vector<MerkleForest::LeafId> ids;
    for (std::uint64_t i = 0; i < 9; ++i) ids.push_back(forest.add(leaf_hash(i)));
    // Leaf 8 is alone in the height-0 tree: the rightmost leaf.
    ASSERT_TRUE(forest.remove(ids[8]));
    EXPECT_EQ(forest.leaf_count(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(forest.verify(*forest.prove(ids[i]))) << i;
    }
}

TEST(Forest, RandomizedAgainstModel) {
    MerkleForest forest;
    std::unordered_map<std::uint64_t, MerkleForest::LeafId> live;  // value -> id
    util::Rng rng(77);
    std::uint64_t next_value = 0;

    for (int step = 0; step < 3000; ++step) {
        if (live.empty() || rng.chance(0.6)) {
            const std::uint64_t v = next_value++;
            live[v] = forest.add(leaf_hash(v));
        } else {
            // Remove a pseudo-random live element.
            auto it = live.begin();
            std::advance(it, static_cast<long>(rng.below(live.size())));
            ASSERT_TRUE(forest.remove(it->second));
            live.erase(it);
        }
        ASSERT_EQ(forest.leaf_count(), live.size());
    }

    // Full audit: every live leaf provable, forest shape canonical.
    EXPECT_EQ(forest.root_count(),
              static_cast<std::size_t>(__builtin_popcountll(live.size())));
    for (const auto& [value, id] : live) {
        const auto proof = forest.prove(id);
        ASSERT_TRUE(proof.has_value()) << value;
        EXPECT_TRUE(forest.verify(*proof)) << value;
        EXPECT_EQ(proof->leaf, leaf_hash(value)) << value;
    }
}

TEST(Forest, ProofSizeGrowsLogarithmically) {
    MerkleForest forest;
    MerkleForest::LeafId first = 0;
    for (std::uint64_t i = 0; i < 1024; ++i) {
        const auto id = forest.add(leaf_hash(i));
        if (i == 0) first = id;
    }
    const auto proof = forest.prove(first);
    ASSERT_TRUE(proof.has_value());
    EXPECT_EQ(proof->siblings.size(), 10u);  // log2(1024)
    // Paper §VII-B: "the size of proof in Utreexo has a positive
    // relationship with the count of UTXOs" — vs EBV's O(log block-size).
    EXPECT_GT(proof->byte_size(), 300u);
}

TEST(Forest, GenerationTracksStructuralChanges) {
    MerkleForest forest;
    const auto g0 = forest.generation();
    const auto id = forest.add(leaf_hash(1));
    EXPECT_GT(forest.generation(), g0);
    const auto g1 = forest.generation();
    forest.add(leaf_hash(2));
    EXPECT_GT(forest.generation(), g1);
    const auto g2 = forest.generation();
    forest.remove(id);
    EXPECT_GT(forest.generation(), g2);
}

}  // namespace
}  // namespace ebv::accumulator
