// EBV node snapshot persistence: a restarted node resumes from the saved
// headers + bit-vector set and behaves identically to the original.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "workload/generator.hpp"

namespace ebv::core {
namespace {

std::string snapshot_path() {
    return (std::filesystem::temp_directory_path() /
            ("ebv_snapshot_" + std::to_string(::getpid()) + ".bin"))
        .string();
}

TEST(Snapshot, SaveLoadResumesChain) {
    workload::GeneratorOptions gen_options;
    gen_options.seed = 23;
    gen_options.params.coinbase_maturity = 5;
    gen_options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    gen_options.height_scale = 1.0;
    gen_options.intensity = 1.0;
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    EbvNodeOptions options;
    options.params = gen_options.params;
    EbvNode node(options);

    std::vector<EbvBlock> blocks;
    for (int i = 0; i < 30; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        blocks.push_back(*converted);
    }
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(node.submit_block(blocks[i]).has_value());

    const std::string path = snapshot_path();
    node.save_snapshot(path);

    auto restored = EbvNode::load_snapshot(path, options);
    std::filesystem::remove(path);
    ASSERT_TRUE(restored.has_value());

    EXPECT_EQ((*restored)->next_height(), 20u);
    EXPECT_EQ((*restored)->headers().tip_hash(), node.headers().tip_hash());
    EXPECT_EQ((*restored)->status(), node.status());
    EXPECT_EQ((*restored)->status_memory_bytes(), node.status_memory_bytes());

    // Both continue accepting the remaining chain identically.
    for (int i = 20; i < 30; ++i) {
        ASSERT_TRUE(node.submit_block(blocks[i]).has_value()) << i;
        ASSERT_TRUE((*restored)->submit_block(blocks[i]).has_value()) << i;
    }
    EXPECT_EQ((*restored)->status(), node.status());

    // And the restored node can disconnect (output counts were restored).
    EXPECT_TRUE((*restored)->disconnect_tip(blocks[29]));
}

TEST(Snapshot, CorruptSnapshotRejected) {
    workload::GeneratorOptions gen_options;
    gen_options.seed = 29;
    gen_options.params.coinbase_maturity = 5;
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    EbvNodeOptions options;
    options.params = gen_options.params;
    EbvNode node(options);
    for (int i = 0; i < 5; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        ASSERT_TRUE(node.submit_block(*converted).has_value());
    }

    const std::string path = snapshot_path();
    node.save_snapshot(path);

    // Truncate the file: load must fail cleanly.
    std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
    EXPECT_FALSE(EbvNode::load_snapshot(path, options).has_value());
    std::filesystem::remove(path);

    EXPECT_FALSE(EbvNode::load_snapshot("/nonexistent/snapshot", options).has_value());
}

}  // namespace
}  // namespace ebv::core
