#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <unistd.h>

#include "storage/disk_hash_table.hpp"
#include "storage/flat_store.hpp"
#include "storage/mem_kvstore.hpp"
#include "storage/status_db.hpp"
#include "util/rng.hpp"

namespace ebv::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
public:
    TempDir() {
        path_ = fs::temp_directory_path() /
                ("ebv_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    [[nodiscard]] std::string file(const std::string& name) const {
        return (path_ / name).string();
    }

private:
    fs::path path_;
    static inline int counter_ = 0;
};

util::Bytes key_of(int i) {
    util::Bytes k(8);
    for (int b = 0; b < 8; ++b) k[b] = static_cast<std::uint8_t>(i >> (8 * b));
    return k;
}

TEST(MemKvStore, BasicOperations) {
    MemKvStore store;
    EXPECT_FALSE(store.get(key_of(1)).has_value());
    store.put(key_of(1), util::Bytes{10});
    const auto v = store.get(key_of(1));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, util::Bytes{10});
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.erase(key_of(1)));
    EXPECT_FALSE(store.erase(key_of(1)));
    EXPECT_EQ(store.size(), 0u);
}

TEST(MemKvStore, PayloadAccounting) {
    MemKvStore store;
    store.put(key_of(1), util::Bytes(100, 0));
    EXPECT_EQ(store.payload_bytes(), 108u);
    store.put(key_of(1), util::Bytes(50, 0));  // overwrite shrinks
    EXPECT_EQ(store.payload_bytes(), 58u);
    store.erase(key_of(1));
    EXPECT_EQ(store.payload_bytes(), 0u);
}

TEST(MemKvStore, StatsCounting) {
    MemKvStore store;
    store.put(key_of(1), util::Bytes{1});
    store.get(key_of(1));
    store.get(key_of(2));
    store.erase(key_of(1));
    EXPECT_EQ(store.stats().inserts, 1u);
    EXPECT_EQ(store.stats().fetches, 2u);
    EXPECT_EQ(store.stats().fetch_misses, 1u);
    EXPECT_EQ(store.stats().deletes, 1u);
}

TEST(PagedFile, ReadBeyondEofIsZeros) {
    TempDir dir;
    PagedFile file(dir.file("pages.bin"));
    std::array<std::uint8_t, PagedFile::kPageSize> buf{};
    buf.fill(0xaa);
    file.read_page(7, buf);
    for (auto b : buf) EXPECT_EQ(b, 0);
}

TEST(PagedFile, WriteReadRoundTrip) {
    TempDir dir;
    PagedFile file(dir.file("pages.bin"));
    std::array<std::uint8_t, PagedFile::kPageSize> out{};
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<std::uint8_t>(i);
    file.write_page(3, out);
    EXPECT_EQ(file.page_count(), 4u);

    std::array<std::uint8_t, PagedFile::kPageSize> in{};
    file.read_page(3, in);
    EXPECT_EQ(in, out);
}

TEST(PageCache, HitsAndMissesCounted) {
    TempDir dir;
    PagedFile file(dir.file("pages.bin"));
    util::SimTimeLedger ledger;
    PageCache cache(file, 1 << 20, LatencyModel(DeviceProfile::none(), 1), ledger);

    cache.page(0);
    cache.page(0);
    cache.page(1);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PageCache, EvictionWritesBackDirtyPages) {
    TempDir dir;
    util::SimTimeLedger ledger;
    {
        PagedFile file(dir.file("pages.bin"));
        // Budget for ~2 pages.
        PageCache cache(file, 2 * (PagedFile::kPageSize + 96), LatencyModel({}, 1), ledger);
        auto& p0 = cache.page(0);
        p0.data[0] = 0x42;
        p0.dirty = true;
        cache.mark_dirty(0);
        cache.page(1);
        cache.page(2);  // evicts page 0, which must be written back
        EXPECT_GE(cache.stats().write_backs, 0u);  // may already have happened
        auto& p0_again = cache.page(0);
        EXPECT_EQ(p0_again.data[0], 0x42);
    }
}

TEST(PageCache, LatencyChargedOnMiss) {
    TempDir dir;
    PagedFile file(dir.file("pages.bin"));
    util::SimTimeLedger ledger;
    PageCache cache(file, 1 << 20, LatencyModel(DeviceProfile::hdd(), 1), ledger);

    cache.page(0);  // miss: charges an HDD read
    const auto after_miss = ledger.total_ns();
    EXPECT_GE(after_miss, 4'000'000);  // at least the base seek
    cache.page(0);  // hit: free
    EXPECT_EQ(ledger.total_ns(), after_miss);
}

TEST(DiskHashTable, PutGetEraseBasic) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 4;
    DiskHashTable table(dir.file("db"), options);

    table.put(key_of(1), util::Bytes{1, 2, 3});
    const auto v = table.get(key_of(1));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, (util::Bytes{1, 2, 3}));
    EXPECT_EQ(table.size(), 1u);

    table.put(key_of(1), util::Bytes{9});  // overwrite
    EXPECT_EQ(*table.get(key_of(1)), util::Bytes{9});
    EXPECT_EQ(table.size(), 1u);

    EXPECT_TRUE(table.erase(key_of(1)));
    EXPECT_FALSE(table.get(key_of(1)).has_value());
    EXPECT_EQ(table.size(), 0u);
}

TEST(DiskHashTable, OverflowChainsWork) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 1;
    options.target_entries_per_bucket = 1000000;  // never split: forces overflow chains
    DiskHashTable table(dir.file("db"), options);

    const int n = 500;  // needs multiple overflow pages
    for (int i = 0; i < n; ++i) table.put(key_of(i), util::Bytes(20, static_cast<std::uint8_t>(i)));
    EXPECT_EQ(table.size(), static_cast<std::uint64_t>(n));
    for (int i = 0; i < n; ++i) {
        const auto v = table.get(key_of(i));
        ASSERT_TRUE(v.has_value()) << i;
        EXPECT_EQ((*v)[0], static_cast<std::uint8_t>(i));
    }
    // Delete all; empty overflow pages are recycled via the free list.
    for (int i = 0; i < n; ++i) EXPECT_TRUE(table.erase(key_of(i)));
    EXPECT_EQ(table.size(), 0u);
    // Re-insert reuses freed pages rather than growing the file.
    const auto pages_before = table.file_pages();
    for (int i = 0; i < n; ++i) table.put(key_of(i), util::Bytes(20, 1));
    EXPECT_LE(table.file_pages(), pages_before + 1);
}

TEST(DiskHashTable, PersistsAcrossReopen) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 4;
    {
        DiskHashTable table(dir.file("db"), options);
        for (int i = 0; i < 100; ++i) table.put(key_of(i), util::Bytes{static_cast<std::uint8_t>(i)});
        table.flush();
    }
    {
        DiskHashTable table(dir.file("db"), options);
        EXPECT_EQ(table.size(), 100u);
        EXPECT_EQ(table.payload_bytes(), 100u * 9);
        for (int i = 0; i < 100; ++i) {
            const auto v = table.get(key_of(i));
            ASSERT_TRUE(v.has_value()) << i;
            EXPECT_EQ((*v)[0], static_cast<std::uint8_t>(i));
        }
    }
}

TEST(DiskHashTable, RandomizedAgainstModel) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 4;
    options.target_entries_per_bucket = 8;  // force frequent splits
    options.cache_budget_bytes = 8 * PagedFile::kPageSize;  // force eviction traffic
    DiskHashTable table(dir.file("db"), options);

    std::map<util::Bytes, util::Bytes> model;
    util::Rng rng(99);
    for (int step = 0; step < 3000; ++step) {
        const int key_id = static_cast<int>(rng.below(200));
        const auto key = key_of(key_id);
        switch (rng.below(3)) {
            case 0: {  // put
                util::Bytes value(rng.between(1, 60));
                rng.fill(value);
                table.put(key, value);
                model[key] = value;
                break;
            }
            case 1: {  // erase
                EXPECT_EQ(table.erase(key), model.erase(key) > 0);
                break;
            }
            default: {  // get
                const auto got = table.get(key);
                const auto it = model.find(key);
                if (it == model.end()) {
                    EXPECT_FALSE(got.has_value());
                } else {
                    ASSERT_TRUE(got.has_value());
                    EXPECT_EQ(*got, it->second);
                }
            }
        }
    }
    EXPECT_EQ(table.size(), model.size());
}

TEST(DiskHashTable, SimulatedLatencyGrowsWithMisses) {
    TempDir dir;
    DiskHashTable::Options options;
    options.initial_buckets = 8;
    options.cache_budget_bytes = 4 * PagedFile::kPageSize;  // tiny cache
    options.device = DeviceProfile::hdd();
    DiskHashTable table(dir.file("db"), options);

    for (int i = 0; i < 500; ++i) table.put(key_of(i), util::Bytes(40, 1));
    const auto after_fill = table.simulated_ns();
    EXPECT_GT(after_fill, 0);

    for (int i = 0; i < 500; ++i) table.get(key_of(i));
    EXPECT_GT(table.simulated_ns(), after_fill);
}

TEST(StatusDb, TimesAndCountsOperations) {
    MemKvStore store;
    StatusDb db(store);

    db.insert(key_of(1), util::Bytes{1});
    db.fetch(key_of(1));
    db.fetch(key_of(2));
    db.erase(key_of(1));

    EXPECT_EQ(db.dbo().insert_count, 1u);
    EXPECT_EQ(db.dbo().fetch_count, 2u);
    EXPECT_EQ(db.dbo().delete_count, 1u);
    EXPECT_GT(db.dbo().total_time().wall_ns, 0);
    db.reset_dbo();
    EXPECT_EQ(db.dbo().fetch_count, 0u);
}

struct TestRecord {
    std::uint32_t value = 0;

    void serialize(util::Writer& w) const { w.u32(value); }
    static util::Result<TestRecord, util::DecodeError> deserialize(util::Reader& r) {
        auto v = r.u32();
        if (!v) return util::Unexpected{v.error()};
        return TestRecord{*v};
    }
};

TEST(FlatStore, AppendLoadRoundTrip) {
    TempDir dir;
    {
        FlatStore<TestRecord> store(dir.file("records.dat"));
        for (std::uint32_t i = 0; i < 50; ++i) {
            EXPECT_EQ(store.append(TestRecord{i * 3}), i);
        }
        EXPECT_EQ(store.count(), 50u);
    }
    {
        FlatStore<TestRecord> store(dir.file("records.dat"));
        EXPECT_EQ(store.count(), 50u);  // index replayed
        for (std::uint32_t i = 0; i < 50; ++i) {
            const auto rec = store.load(i);
            ASSERT_TRUE(rec.has_value());
            EXPECT_EQ(rec->value, i * 3);
        }
        EXPECT_FALSE(store.load(50).has_value());
    }
}

}  // namespace
}  // namespace ebv::storage
