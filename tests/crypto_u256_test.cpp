#include <gtest/gtest.h>

#include "crypto/secp256k1.hpp"
#include "crypto/u256.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

U256 random_u256(util::Rng& rng) {
    U256 v;
    for (auto& limb : v.limbs) limb = rng.next();
    return v;
}

/// Reference modular multiplication: shift-and-add with a reduction step
/// after every shift. O(256) but obviously correct.
U256 reference_modmul(const U256& a, const U256& b, const U256& m) {
    auto mod_reduce = [&](U256& x) {
        while (!u256_less(x, m)) u256_sub(x, m, x);
    };

    // x + 2^256 ≡ x + (2^256 - m) (mod m): fold a carry-out back in.
    U256 complement;
    {
        U256 not_m;
        for (int i = 0; i < 4; ++i) not_m.limbs[i] = ~m.limbs[i];
        u256_add(not_m, U256::one(), complement);
    }
    auto mod_add = [&](const U256& x, const U256& y) {
        U256 sum;
        if (u256_add(x, y, sum)) u256_add(sum, complement, sum);
        mod_reduce(sum);
        return sum;
    };

    U256 acc = U256::zero();
    U256 addend = a;
    mod_reduce(addend);

    for (int bit = 0; bit < 256; ++bit) {
        if (b.bit(static_cast<unsigned>(bit))) acc = mod_add(acc, addend);
        addend = mod_add(addend, addend);
    }
    return acc;
}

TEST(U256, BytesRoundTrip) {
    util::Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const U256 v = random_u256(rng);
        std::uint8_t buf[32];
        v.to_be_bytes(buf);
        EXPECT_EQ(U256::from_be_bytes({buf, 32}), v);
    }
}

TEST(U256, FromHexMatchesBytes) {
    const U256 v = U256::from_hex(
        "00000000000000000000000000000000000000000000000000000000000000ff");
    EXPECT_EQ(v, U256::from_u64(0xff));

    const U256 top = U256::from_hex(
        "8000000000000000000000000000000000000000000000000000000000000000");
    EXPECT_EQ(top.limbs[3], 0x8000000000000000ULL);
    EXPECT_EQ(top.limbs[0], 0u);
}

TEST(U256, AddSubInverse) {
    util::Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        const U256 a = random_u256(rng);
        const U256 b = random_u256(rng);
        U256 sum, back;
        const std::uint64_t carry = u256_add(a, b, sum);
        const std::uint64_t borrow = u256_sub(sum, b, back);
        EXPECT_EQ(back, a);
        EXPECT_EQ(carry, borrow);  // overflow in add shows up as borrow coming back
    }
}

TEST(U256, ComparisonIsTotalOrder) {
    const U256 small = U256::from_u64(5);
    const U256 large = U256::from_hex(
        "0000000000000001000000000000000000000000000000000000000000000000");
    EXPECT_TRUE(u256_less(small, large));
    EXPECT_FALSE(u256_less(large, small));
    EXPECT_FALSE(u256_less(small, small));
    EXPECT_TRUE(u256_less_equal(small, small));
}

TEST(U256, MulWideLowLimbsMatchNativeMul) {
    util::Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        std::uint64_t wide[8];
        u256_mul_wide(U256::from_u64(a), U256::from_u64(b), wide);
        const unsigned __int128 expected = static_cast<unsigned __int128>(a) * b;
        EXPECT_EQ(wide[0], static_cast<std::uint64_t>(expected));
        EXPECT_EQ(wide[1], static_cast<std::uint64_t>(expected >> 64));
        for (int j = 2; j < 8; ++j) EXPECT_EQ(wide[j], 0u);
    }
}

class ModArithAgainstReference : public ::testing::TestWithParam<const char*> {
protected:
    ModArith arith() const { return ModArith(U256::from_hex(GetParam())); }
};

TEST_P(ModArithAgainstReference, MulMatchesShiftAddReference) {
    const ModArith m = arith();
    util::Rng rng(4);
    for (int i = 0; i < 60; ++i) {
        const U256 a = m.reduce(random_u256(rng));
        const U256 b = m.reduce(random_u256(rng));
        EXPECT_EQ(m.mul(a, b), reference_modmul(a, b, m.modulus()));
    }
}

TEST_P(ModArithAgainstReference, AddSubNegConsistent) {
    const ModArith m = arith();
    util::Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const U256 a = m.reduce(random_u256(rng));
        const U256 b = m.reduce(random_u256(rng));
        // (a + b) - b == a
        EXPECT_EQ(m.sub(m.add(a, b), b), a);
        // a + (-a) == 0
        EXPECT_TRUE(m.add(a, m.neg(a)).is_zero());
    }
}

TEST_P(ModArithAgainstReference, InverseIsMultiplicativeInverse) {
    const ModArith m = arith();
    util::Rng rng(6);
    for (int i = 0; i < 20; ++i) {
        U256 a = m.reduce(random_u256(rng));
        if (a.is_zero()) a = U256::one();
        EXPECT_EQ(m.mul(a, m.inverse(a)), U256::one());
    }
}

TEST_P(ModArithAgainstReference, PowMatchesRepeatedMul) {
    const ModArith m = arith();
    util::Rng rng(7);
    const U256 base = m.reduce(random_u256(rng));
    U256 acc = U256::one();
    for (std::uint64_t e = 0; e <= 20; ++e) {
        EXPECT_EQ(m.pow(base, U256::from_u64(e)), acc) << "exponent " << e;
        acc = m.mul(acc, base);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Secp256k1Moduli, ModArithAgainstReference,
    ::testing::Values(
        // field prime p
        "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f",
        // group order n
        "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"));

TEST(ModArith, ReduceWideHandlesMaxValue) {
    const ModArith f = secp256k1::field();
    std::uint64_t wide[8];
    for (auto& limb : wide) limb = ~0ULL;  // 2^512 - 1
    const U256 reduced = f.reduce_wide(wide);
    EXPECT_TRUE(u256_less(reduced, f.modulus()));
    // Cross-check: (2^256-1)*(2^256-1) + 2*(2^256-1) = 2^512-1, so
    // reduce(2^512-1) == mul(m-1+..) — verify via reference on the identity
    // (x*y) where x=y=2^256-1 reduced first.
    U256 max256;
    for (auto& l : max256.limbs) l = ~0ULL;
    const U256 x = f.reduce(max256);
    const U256 expect_prod = reference_modmul(x, x, f.modulus());
    const U256 two_x = f.add(x, x);
    // 2^512 - 1 = (2^256-1)^2 + 2*(2^256-1)
    EXPECT_EQ(reduced, f.add(expect_prod, two_x));
}

}  // namespace
}  // namespace ebv::crypto
