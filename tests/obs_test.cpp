// The ebv::obs subsystem: counters/gauges/histograms (including concurrent
// recording from the thread pool), percentile extraction, span tracing, the
// exporters, and the CacheStats invariant enforced through registry
// counters.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/disk_hash_table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ebv;

TEST(ObsCounterTest, IncrementAndReset) {
    obs::Counter counter("test.counter");
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsCounterTest, ConcurrentIncrementsFromThreadPool) {
    obs::Counter counter("test.concurrent");
    util::ThreadPool pool(4);
    constexpr std::size_t kTasks = 64;
    constexpr std::uint64_t kPerTask = 10'000;
    pool.parallel_for(kTasks, [&](std::size_t) {
        for (std::uint64_t i = 0; i < kPerTask; ++i) counter.inc();
    });
    EXPECT_EQ(counter.value(), kTasks * kPerTask);
}

TEST(ObsGaugeTest, SetAddReset) {
    obs::Gauge gauge("test.gauge");
    gauge.set(10);
    gauge.add(-3);
    EXPECT_EQ(gauge.value(), 7);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsHistogramTest, PercentilesOfKnownDistribution) {
    // Linear 10-wide buckets over [0, 1000]; observe 1..1000 uniformly, so
    // every percentile is known to within one bucket width.
    std::vector<std::uint64_t> bounds;
    for (std::uint64_t b = 10; b <= 1000; b += 10) bounds.push_back(b);
    obs::Histogram h("test.uniform", bounds);
    for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);

    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), 500'500u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_NEAR(h.percentile(50), 500.0, 10.0);
    EXPECT_NEAR(h.percentile(95), 950.0, 10.0);
    EXPECT_NEAR(h.percentile(99), 990.0, 10.0);
    EXPECT_NEAR(h.percentile(100), 1000.0, 10.0);
    EXPECT_LE(h.percentile(0), 10.0);
}

TEST(ObsHistogramTest, OverflowBucketUsesObservedMax) {
    obs::Histogram h("test.overflow", {10, 100});
    h.observe(5);
    h.observe(5000);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), 5000u);
    EXPECT_EQ(h.bucket_count(2), 1u);  // the overflow bucket
    EXPECT_LE(h.percentile(99), 5000.0);
}

TEST(ObsHistogramTest, EmptyHistogramIsZero) {
    obs::Histogram h("test.empty", {10});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(ObsHistogramTest, ConcurrentObserve) {
    obs::Histogram h("test.parallel", obs::Histogram::default_time_bounds());
    util::ThreadPool pool(4);
    constexpr std::size_t kTasks = 32;
    constexpr std::uint64_t kPerTask = 5'000;
    pool.parallel_for(kTasks, [&](std::size_t t) {
        for (std::uint64_t i = 0; i < kPerTask; ++i) h.observe(t * 1000 + i);
    });
    EXPECT_EQ(h.count(), kTasks * kPerTask);
}

TEST(ObsHistogramTest, ExponentialBoundsAreStrictlyIncreasing) {
    const auto bounds = obs::Histogram::exponential_bounds(1, 1.3, 40);
    ASSERT_EQ(bounds.size(), 40u);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_GT(bounds[i], bounds[i - 1]);
    }
}

TEST(ObsRegistryTest, SameNameReturnsSameInstrument) {
    obs::Registry& r = obs::Registry::global();
    obs::Counter& a = r.counter("test.registry.same");
    obs::Counter& b = r.counter("test.registry.same");
    EXPECT_EQ(&a, &b);
    obs::Histogram& h1 = r.histogram("test.registry.hist");
    obs::Histogram& h2 = r.histogram("test.registry.hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistryTest, ResetZeroesButKeepsReferences) {
    obs::Registry& r = obs::Registry::global();
    obs::Counter& c = r.counter("test.registry.reset");
    c.inc(5);
    r.reset();
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    EXPECT_EQ(r.counter("test.registry.reset").value(), 1u);
}

TEST(ObsRegistryTest, PrometheusExport) {
    obs::Registry& r = obs::Registry::global();
    r.counter("test.export.counter").inc(7);
    r.gauge("test.export.gauge").set(-3);
    r.histogram("test.export.hist", {100, 200}).observe(150);

    const std::string text = r.to_prometheus();
    EXPECT_NE(text.find("# TYPE test_export_counter counter"), std::string::npos);
    EXPECT_NE(text.find("test_export_counter 7"), std::string::npos);
    EXPECT_NE(text.find("test_export_gauge -3"), std::string::npos);
    EXPECT_NE(text.find("test_export_hist_bucket{le=\"+Inf\"} 1"), std::string::npos);
    EXPECT_NE(text.find("test_export_hist_count 1"), std::string::npos);
}

TEST(ObsRegistryTest, PrometheusEscapesProofServerNames) {
    // The ebv.<subsystem>.* convention uses dots (and occasionally dashes);
    // the exporter must fold every non-[a-zA-Z0-9_] character to '_' so the
    // proofsrv metric family scrapes cleanly.
    obs::Registry& r = obs::Registry::global();
    r.counter("ebv.proofsrv.cache_hits").inc(2);
    r.counter("ebv.proof-srv/test.weird-name").inc(1);

    const std::string text = r.to_prometheus();
    EXPECT_NE(text.find("ebv_proofsrv_cache_hits 2"), std::string::npos);
    EXPECT_NE(text.find("ebv_proof_srv_test_weird_name 1"), std::string::npos);
    EXPECT_EQ(text.find("ebv.proofsrv"), std::string::npos);
    EXPECT_EQ(text.find("proof-srv"), std::string::npos);
}

TEST(ObsRegistryTest, JsonExportIsBalancedAndContainsMetrics) {
    obs::Registry& r = obs::Registry::global();
    r.counter("test.json.counter").inc(3);
    r.histogram("test.json.hist", {100}).observe(50);

    const std::string json = r.to_json();
    EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos);
    EXPECT_NE(json.find("\"test.json.hist\":{\"count\":1"), std::string::npos);

    int depth = 0;
    bool in_string = false;
    for (char ch : json) {
        if (ch == '"') in_string = !in_string;
        if (in_string) continue;
        if (ch == '{' || ch == '[') ++depth;
        if (ch == '}' || ch == ']') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(ObsRegistryTest, JsonlExportOneObjectPerLine) {
    obs::Registry& r = obs::Registry::global();
    r.counter("test.jsonl.counter").inc();
    const std::string jsonl = r.to_jsonl();
    ASSERT_FALSE(jsonl.empty());
    std::size_t lines = 0;
    std::size_t start = 0;
    while (start < jsonl.size()) {
        const std::size_t end = jsonl.find('\n', start);
        ASSERT_NE(end, std::string::npos);
        EXPECT_EQ(jsonl[start], '{');
        EXPECT_EQ(jsonl[end - 1], '}');
        ++lines;
        start = end + 1;
    }
    EXPECT_GT(lines, 0u);
}

TEST(ObsTracerTest, ScopedSpanRecordsWallTime) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    { obs::ScopedSpan span("test.span"); }
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "test.span");
    EXPECT_GE(spans[0].wall_ns, 0);
    EXPECT_EQ(spans[0].sim_ns, 0);
    EXPECT_NE(spans[0].thread_id, 0u);
}

TEST(ObsTracerTest, ScopedSpanCapturesLedgerDelta) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    util::SimTimeLedger ledger;
    {
        obs::ScopedSpan span("test.sim", &ledger);
        ledger.charge(12'345);
    }
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].sim_ns, 12'345);
}

TEST(ObsTracerTest, TimeCostSpansAndJsonl) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.record("test.cost", util::TimeCost{1000, 500});
    const std::string jsonl = tracer.to_jsonl();
    EXPECT_NE(jsonl.find("\"name\":\"test.cost\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"wall_ns\":1000"), std::string::npos);
    EXPECT_NE(jsonl.find("\"sim_ns\":500"), std::string::npos);
}

TEST(ObsTracerTest, MultiThreadedRecordingAndRingBound) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.set_capacity(64);
    util::ThreadPool pool(4);
    constexpr std::size_t kSpans = 500;
    pool.parallel_for(kSpans, [&](std::size_t i) {
        obs::ScopedSpan span(i % 2 ? "test.mt.odd" : "test.mt.even");
    });
    EXPECT_EQ(tracer.recorded(), kSpans);
    EXPECT_EQ(tracer.snapshot().size(), 64u);
    EXPECT_EQ(tracer.dropped(), kSpans - 64);
    tracer.set_capacity(8192);
    tracer.clear();
}

TEST(ObsTracerTest, DisabledTracerRecordsNothing) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.set_enabled(false);
    { obs::ScopedSpan span("test.disabled"); }
    tracer.set_enabled(true);
    EXPECT_EQ(tracer.snapshot().size(), 0u);
}

class ObsCacheStatsTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("ebv_obs_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::filesystem::path dir_;
};

/// The CacheStats invariant — every application-cache miss is served either
/// by the modelled OS cache or by a device read — checked through the
/// global registry counters the page cache now publishes.
TEST_F(ObsCacheStatsTest, RegistryCountersSatisfyMissInvariant) {
    obs::Registry& r = obs::Registry::global();
    obs::Counter& hits = r.counter("storage.page_cache.hits");
    obs::Counter& misses = r.counter("storage.page_cache.misses");
    obs::Counter& os_hits = r.counter("storage.page_cache.os_hits");
    obs::Counter& device_reads = r.counter("storage.page_cache.device_reads");

    const std::uint64_t hits0 = hits.value();
    const std::uint64_t misses0 = misses.value();
    const std::uint64_t os0 = os_hits.value();
    const std::uint64_t dev0 = device_reads.value();

    storage::DiskHashTable::Options options;
    options.cache_budget_bytes = 16 * storage::PagedFile::kPageSize;
    options.os_cache_multiplier = 2;
    options.device = storage::DeviceProfile::hdd();
    storage::DiskHashTable table((dir_ / "table.db").string(), options);

    auto key_of = [](std::uint64_t i) {
        util::Bytes k(36);
        for (int b = 0; b < 8; ++b) k[b] = static_cast<std::uint8_t>(i >> (8 * b));
        return k;
    };
    for (std::uint64_t i = 0; i < 4000; ++i) {
        table.put(key_of(i), util::Bytes(40, 1));
    }
    for (std::uint64_t i = 0; i < 4000; i += 7) {
        (void)table.get(key_of(i));
    }

    const std::uint64_t d_hits = hits.value() - hits0;
    const std::uint64_t d_misses = misses.value() - misses0;
    const std::uint64_t d_os = os_hits.value() - os0;
    const std::uint64_t d_dev = device_reads.value() - dev0;

    EXPECT_GT(d_hits + d_misses, 0u);
    EXPECT_GT(d_misses, 0u) << "cache budget too large for the working set";
    EXPECT_EQ(d_os + d_dev, d_misses);

    // The registry mirrors the per-instance CacheStats exactly (one table
    // instance was live during the interval).
    const storage::CacheStats& stats = table.cache_stats();
    EXPECT_EQ(stats.misses, d_misses);
    EXPECT_EQ(stats.os_hits + stats.device_reads, stats.misses);
}

}  // namespace
