// Causal-trace tests: parent/child nesting must survive ThreadPool
// fan-out at every thread count, the Chrome trace exporter must emit
// valid JSON with the window → block → per-worker span tree intact on
// per-thread tracks (the PR's acceptance criterion), and the disabled
// span path must stay cheap enough for always-on instrumentation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

class TraceTree : public ::testing::Test {
protected:
    void SetUp() override {
        obs::Tracer& tracer = obs::Tracer::global();
        tracer.set_enabled(true);
        tracer.set_detail(false);
        tracer.set_capacity(1 << 16);
        tracer.clear();
    }
    void TearDown() override {
        obs::Tracer& tracer = obs::Tracer::global();
        tracer.set_detail(false);
        tracer.set_capacity(8192);
        tracer.clear();
        tracer.set_enabled(true);
    }

    static std::vector<obs::Span> spans_named(std::string_view name) {
        std::vector<obs::Span> out;
        for (obs::Span& span : obs::Tracer::global().snapshot()) {
            if (span.name == name) out.push_back(std::move(span));
        }
        return out;
    }
};

TEST_F(TraceTree, NestedScopedSpansFormOneTree) {
    std::uint64_t outer_id = 0;
    {
        obs::ScopedSpan outer("outer", "test");
        outer_id = outer.span_id();
        ASSERT_NE(outer_id, 0u);
        obs::ScopedSpan inner("inner", "test");
        EXPECT_NE(inner.span_id(), outer_id);
    }
    const auto outer_spans = spans_named("outer");
    const auto inner_spans = spans_named("inner");
    ASSERT_EQ(outer_spans.size(), 1u);
    ASSERT_EQ(inner_spans.size(), 1u);
    EXPECT_EQ(outer_spans[0].parent_id, 0u);  // root
    EXPECT_EQ(inner_spans[0].parent_id, outer_id);
    EXPECT_EQ(inner_spans[0].trace_id, outer_spans[0].trace_id);
    EXPECT_NE(outer_spans[0].trace_id, 0u);
    // The context is popped on destruction: a fresh span is a new root.
    EXPECT_EQ(obs::current_context().span_id, 0u);
}

TEST_F(TraceTree, NestingSurvivesParallelForFanOut) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
        obs::Tracer::global().clear();
        util::ThreadPool pool(threads);
        std::uint64_t root_id = 0;
        std::uint64_t root_trace = 0;
        {
            obs::ScopedSpan root("fanout.root", "test");
            root_id = root.span_id();
            root_trace = obs::current_context().trace_id;
            pool.parallel_for(64, [&](std::size_t) {
                obs::ScopedSpan child("fanout.child", "test");
                (void)child;
            });
        }
        const auto children = spans_named("fanout.child");
        ASSERT_EQ(children.size(), 64u) << "threads=" << threads;
        std::set<std::uint64_t> ids;
        for (const obs::Span& child : children) {
            EXPECT_EQ(child.parent_id, root_id) << "threads=" << threads;
            EXPECT_EQ(child.trace_id, root_trace) << "threads=" << threads;
            ids.insert(child.span_id);
        }
        EXPECT_EQ(ids.size(), 64u) << "span ids must be unique";
        // Worker threads must restore their previous (empty) context.
        EXPECT_EQ(obs::current_context().span_id, 0u);
    }
}

TEST_F(TraceTree, PostHocRecordParentsUnderCurrentSpan) {
    std::uint64_t parent_id = 0;
    {
        obs::ScopedSpan parent("posthoc.parent", "test");
        parent_id = parent.span_id();
        util::TimeCost cost;
        cost.wall_ns = 1234;
        obs::Tracer::global().record("posthoc.child", cost);
    }
    const auto children = spans_named("posthoc.child");
    ASSERT_EQ(children.size(), 1u);
    EXPECT_EQ(children[0].parent_id, parent_id);
    EXPECT_EQ(children[0].wall_ns, 1234);
}

TEST_F(TraceTree, ChromeExportIsValidJson) {
    {
        obs::ScopedSpan root("export.root", "test");
        obs::ScopedSpan child("export\"needs escaping\\", "test");
        (void)child;
    }
    obs::Tracer::global().record_counter("export.counter", 42);

    const std::string json = obs::to_chrome_trace(obs::Tracer::global().snapshot());
    const auto doc = util::json::parse(json);
    ASSERT_TRUE(doc.has_value()) << json;

    const util::json::Value* events = doc->get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());

    std::size_t slices = 0;
    std::size_t counters = 0;
    std::size_t metadata = 0;
    std::set<double> tids;
    for (const auto& event : events->as_array()) {
        const std::string& ph = event.get("ph")->as_string();
        ASSERT_NE(event.get("tid"), nullptr);
        const double tid = event.get("tid")->as_number();
        EXPECT_GE(tid, 0.0);
        EXPECT_LT(tid, 1000.0) << "tids must be compressed, not hashes";
        if (ph == "X") {
            ++slices;
            tids.insert(tid);
            EXPECT_NE(event.get("ts"), nullptr);
            EXPECT_NE(event.get("dur"), nullptr);
            EXPECT_NE(event.get("args")->get("span"), nullptr);
            EXPECT_NE(event.get("args")->get("parent"), nullptr);
        } else if (ph == "C") {
            ++counters;
            EXPECT_DOUBLE_EQ(event.get("args")->get("value")->as_number(), 42.0);
        } else if (ph == "M") {
            ++metadata;
            EXPECT_EQ(event.get("name")->as_string(), "thread_name");
        }
    }
    EXPECT_EQ(slices, 2u);
    EXPECT_EQ(counters, 1u);
    EXPECT_EQ(metadata, tids.size());  // every used track is named
}

TEST_F(TraceTree, FoldedStacksComputeSelfTime) {
    obs::Tracer& tracer = obs::Tracer::global();
    const std::uint64_t trace = obs::next_span_id();
    const std::uint64_t root = obs::next_span_id();
    const std::uint64_t child = obs::next_span_id();

    obs::Span root_span;
    root_span.name = "stack.root";
    root_span.trace_id = trace;
    root_span.span_id = root;
    root_span.wall_ns = 100;
    tracer.record(root_span);

    obs::Span child_span;
    child_span.name = "stack.child";
    child_span.trace_id = trace;
    child_span.span_id = child;
    child_span.parent_id = root;
    child_span.wall_ns = 60;
    tracer.record(child_span);

    const std::string folded = obs::to_folded_stacks(tracer.snapshot());
    EXPECT_NE(folded.find("stack.root 40\n"), std::string::npos) << folded;
    EXPECT_NE(folded.find("stack.root;stack.child 60\n"), std::string::npos) << folded;
}

TEST_F(TraceTree, RingStateIsExportedAsMetrics) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.set_capacity(4);
    const std::uint64_t dropped_before =
        obs::Registry::global().counter("ebv.obs.spans_dropped").value();
    for (int i = 0; i < 10; ++i) {
        obs::ScopedSpan span("ring.span", "test");
        (void)span;
    }
    EXPECT_EQ(tracer.snapshot().size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    EXPECT_EQ(obs::Registry::global().counter("ebv.obs.spans_dropped").value(),
              dropped_before + 6);
    EXPECT_EQ(obs::Registry::global().gauge("ebv.obs.trace_capacity").value(), 4);
    EXPECT_EQ(obs::Registry::global().gauge("ebv.obs.trace_enabled").value(), 1);

    tracer.set_enabled(false);
    EXPECT_EQ(obs::Registry::global().gauge("ebv.obs.trace_enabled").value(), 0);
    tracer.set_enabled(true);
}

TEST_F(TraceTree, DisabledSpanStaysCheap) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.set_enabled(false);

    constexpr int kIters = 200000;
    // Warm up, then time: the disabled path is one relaxed atomic load.
    for (int i = 0; i < 1000; ++i) obs::ScopedSpan span("cheap", "test");
    util::Stopwatch watch;
    for (int i = 0; i < kIters; ++i) obs::ScopedSpan span("cheap", "test");
    const double per_span =
        static_cast<double>(watch.elapsed_ns()) / static_cast<double>(kIters);

    tracer.set_enabled(true);
    EXPECT_EQ(tracer.recorded(), 0u) << "disabled spans must not record";
    EXPECT_EQ(obs::current_context().span_id, 0u)
        << "disabled spans must not touch the context";
    // "A few ns" on a quiet machine; 100 ns keeps sanitizer/CI runs from
    // flaking while still catching an accidental mutex or clock read
    // (either costs well over 100 ns under contention-free conditions the
    // loop above creates... a recorded span costs ~µs).
    EXPECT_LT(per_span, 100.0) << "disabled ScopedSpan cost " << per_span << " ns";
}

// The acceptance-criterion test: a pipelined IBD run with detail tracing
// produces a Chrome trace whose span tree is window → block →
// per-worker EV/SV/shard-apply, with events on compressed per-thread
// tracks, parsed back from the exporter's actual JSON output.
TEST_F(TraceTree, PipelineChromeTraceNestsWindowBlockWorker) {
    workload::GeneratorOptions gen_options;
    gen_options.seed = 7;
    gen_options.params.coinbase_maturity = 5;
    gen_options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    gen_options.height_scale = 1.0;
    gen_options.intensity = 1.0;
    gen_options.key_pool_size = 8;

    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;
    std::vector<core::EbvBlock> chain;
    for (std::size_t i = 0; i < 30; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        chain.push_back(*converted);
    }

    obs::Tracer::global().set_detail(true);
    util::ThreadPool pool(8);
    core::EbvNodeOptions options;
    options.params = gen_options.params;
    options.validator.script_pool = &pool;
    options.pipeline.enabled = true;
    options.pipeline.window = 8;
    core::EbvNode node(options);
    const ibd::BatchResult result = node.submit_blocks(chain);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.connected, chain.size());
    obs::Tracer::global().set_detail(false);

    // Round-trip through the file writer, as the bench harness does.
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("ebv_trace_test_" + std::to_string(::getpid()) + ".json");
    ASSERT_TRUE(obs::write_chrome_trace(path.string()));
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::filesystem::remove(path);

    const auto doc = util::json::parse(buffer.str());
    ASSERT_TRUE(doc.has_value());
    const util::json::Value* events = doc->get("traceEvents");
    ASSERT_NE(events, nullptr);

    struct Event {
        std::uint64_t span = 0;
        std::uint64_t parent = 0;
        double tid = 0;
    };
    std::map<std::string, std::vector<Event>> by_name;
    std::set<double> tids;
    std::set<double> named_tids;
    for (const auto& event : events->as_array()) {
        const std::string& ph = event.get("ph")->as_string();
        if (ph == "M") {
            named_tids.insert(event.get("tid")->as_number());
            continue;
        }
        if (ph != "X") continue;
        Event e;
        e.span = static_cast<std::uint64_t>(event.get("args")->get("span")->as_number());
        e.parent =
            static_cast<std::uint64_t>(event.get("args")->get("parent")->as_number());
        e.tid = event.get("tid")->as_number();
        tids.insert(e.tid);
        by_name[event.get("name")->as_string()].push_back(e);
    }

    // One run span, rooted; 30 blocks over window 8 → 4 windows under it.
    ASSERT_EQ(by_name["ebv.ibd.run"].size(), 1u);
    const Event run = by_name["ebv.ibd.run"][0];
    EXPECT_EQ(run.parent, 0u);
    ASSERT_EQ(by_name["ebv.ibd.window"].size(), 4u);
    std::set<std::uint64_t> window_ids;
    for (const Event& window : by_name["ebv.ibd.window"]) {
        EXPECT_EQ(window.parent, run.span);
        window_ids.insert(window.span);
    }

    ASSERT_EQ(by_name["ebv.ibd.block"].size(), chain.size());
    std::set<std::uint64_t> block_ids;
    for (const Event& block : by_name["ebv.ibd.block"]) {
        EXPECT_EQ(window_ids.count(block.parent), 1u)
            << "block span must nest under a window span";
        block_ids.insert(block.span);
    }

    const auto& ev_spans = by_name["ebv.ev.input"];
    ASSERT_FALSE(ev_spans.empty()) << "detail tracing must emit per-input EV spans";
    for (const Event& ev : ev_spans) {
        EXPECT_EQ(block_ids.count(ev.parent), 1u)
            << "EV span must nest under a block span";
    }
    ASSERT_FALSE(by_name["ebv.sv.input"].empty());
    for (const Event& sv : by_name["ebv.sv.input"]) {
        EXPECT_EQ(block_ids.count(sv.parent), 1u);
    }
    // Shard applies only exist when a previous window committed spends.
    for (const Event& shard : by_name["ebv.ibd.shard_apply"]) {
        EXPECT_EQ(window_ids.count(shard.parent), 1u);
    }
    ASSERT_FALSE(by_name["ebv.ibd.shard_apply"].empty())
        << "expected at least one sharded spent-bit application span";

    // Per-thread tracks: events landed on more than one compressed tid and
    // every tid used has thread_name metadata.
    EXPECT_GE(tids.size(), 2u) << "worker spans should land on worker tracks";
    for (const double tid : tids) EXPECT_EQ(named_tids.count(tid), 1u);
}

}  // namespace
}  // namespace ebv
