#include <gtest/gtest.h>

#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "script/interpreter.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"

namespace ebv::script {
namespace {

const NullSignatureChecker kNullChecker;

ScriptError run(const Script& s, Stack& stack) {
    return eval_script(s, stack, kNullChecker);
}

util::Bytes num(std::int64_t v) {
    Stack stack;
    const Script s = ScriptBuilder().push_int(v).take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    return stack.back();
}

TEST(ScriptBuilder, MinimalPushEncodings) {
    EXPECT_EQ(ScriptBuilder().push(util::Bytes(5, 1)).script().size(), 6u);     // direct
    EXPECT_EQ(ScriptBuilder().push(util::Bytes(80, 1)).script().size(), 82u);   // PUSHDATA1
    EXPECT_EQ(ScriptBuilder().push(util::Bytes(300, 1)).script().size(), 303u); // PUSHDATA2
    EXPECT_EQ(ScriptBuilder().push_int(0).script(), Script{OP_0});
    EXPECT_EQ(ScriptBuilder().push_int(5).script(), Script{OP_5});
    EXPECT_EQ(ScriptBuilder().push_int(16).script(), Script{OP_16});
    EXPECT_EQ(ScriptBuilder().push_int(-1).script(), Script{OP_1NEGATE});
    // 17 needs a real push: <1 byte len> <0x11>
    EXPECT_EQ(ScriptBuilder().push_int(17).script(), (Script{0x01, 0x11}));
}

TEST(ScriptParser, RoundTripsOps) {
    const Script s = ScriptBuilder()
                         .op(OP_DUP)
                         .push(util::Bytes{0xaa, 0xbb})
                         .op(OP_EQUALVERIFY)
                         .take();
    ScriptParser parser(s);
    auto op1 = parser.next();
    ASSERT_TRUE(op1.has_value());
    EXPECT_EQ(op1->opcode, OP_DUP);
    auto op2 = parser.next();
    ASSERT_TRUE(op2.has_value());
    EXPECT_TRUE(op2->is_push());
    EXPECT_EQ(op2->push_data, (util::Bytes{0xaa, 0xbb}));
    auto op3 = parser.next();
    ASSERT_TRUE(op3.has_value());
    EXPECT_EQ(op3->opcode, OP_EQUALVERIFY);
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_FALSE(parser.malformed());
}

TEST(ScriptParser, DetectsTruncatedPush) {
    Script s{0x05, 0x01, 0x02};  // claims 5 bytes, has 2
    ScriptParser parser(s);
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_TRUE(parser.malformed());
}

TEST(Interpreter, ArithmeticBasics) {
    Stack stack;
    const Script s = ScriptBuilder().push_int(2).push_int(3).op(OP_ADD).take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    EXPECT_EQ(stack.back(), num(5));
}

TEST(Interpreter, ComparisonAndBoolOps) {
    struct Case {
        std::int64_t a, b;
        Opcode op;
        std::int64_t expected;
    };
    const Case cases[] = {
        {2, 3, OP_LESSTHAN, 1},     {3, 2, OP_LESSTHAN, 0},
        {3, 3, OP_LESSTHANOREQUAL, 1}, {2, 3, OP_GREATERTHAN, 0},
        {5, 5, OP_NUMEQUAL, 1},     {5, 6, OP_NUMNOTEQUAL, 1},
        {4, 7, OP_MIN, 4},          {4, 7, OP_MAX, 7},
        {1, 1, OP_BOOLAND, 1},      {0, 1, OP_BOOLAND, 0},
        {0, 0, OP_BOOLOR, 0},       {0, 2, OP_BOOLOR, 1},
        {-5, 3, OP_ADD, -2},        {3, 5, OP_SUB, -2},
    };
    for (const Case& c : cases) {
        Stack stack;
        const Script s = ScriptBuilder().push_int(c.a).push_int(c.b).op(c.op).take();
        EXPECT_EQ(run(s, stack), ScriptError::kOk);
        EXPECT_EQ(stack.back(), num(c.expected))
            << c.a << " " << opcode_name(c.op) << " " << c.b;
    }
}

TEST(Interpreter, UnaryOps) {
    struct Case {
        std::int64_t a;
        Opcode op;
        std::int64_t expected;
    };
    const Case cases[] = {
        {5, OP_1ADD, 6},   {5, OP_1SUB, 4},  {5, OP_NEGATE, -5}, {-5, OP_ABS, 5},
        {0, OP_NOT, 1},    {7, OP_NOT, 0},   {0, OP_0NOTEQUAL, 0}, {9, OP_0NOTEQUAL, 1},
    };
    for (const Case& c : cases) {
        Stack stack;
        const Script s = ScriptBuilder().push_int(c.a).op(c.op).take();
        EXPECT_EQ(run(s, stack), ScriptError::kOk);
        EXPECT_EQ(stack.back(), num(c.expected));
    }
}

TEST(Interpreter, WithinChecksHalfOpenRange) {
    for (const auto& [x, lo, hi, expect] :
         std::vector<std::tuple<int, int, int, bool>>{
             {5, 1, 10, true}, {1, 1, 10, true}, {10, 1, 10, false}, {0, 1, 10, false}}) {
        Stack stack;
        const Script s =
            ScriptBuilder().push_int(x).push_int(lo).push_int(hi).op(OP_WITHIN).take();
        EXPECT_EQ(run(s, stack), ScriptError::kOk);
        EXPECT_EQ(cast_to_bool(stack.back()), expect);
    }
}

TEST(Interpreter, StackManipulation) {
    Stack stack;
    // 1 2 3 ROT -> 2 3 1
    Script s = ScriptBuilder().push_int(1).push_int(2).push_int(3).op(OP_ROT).take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    ASSERT_EQ(stack.size(), 3u);
    EXPECT_EQ(stack[0], num(2));
    EXPECT_EQ(stack[2], num(1));

    stack.clear();
    // 7 8 SWAP OVER -> 8 7 8
    s = ScriptBuilder().push_int(7).push_int(8).op(OP_SWAP).op(OP_OVER).take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    ASSERT_EQ(stack.size(), 3u);
    EXPECT_EQ(stack[0], num(8));
    EXPECT_EQ(stack[1], num(7));
    EXPECT_EQ(stack[2], num(8));

    stack.clear();
    // 1 2 3 2 PICK -> 1 2 3 1
    s = ScriptBuilder().push_int(1).push_int(2).push_int(3).push_int(2).op(OP_PICK).take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    ASSERT_EQ(stack.size(), 4u);
    EXPECT_EQ(stack.back(), num(1));

    stack.clear();
    // 1 2 3 2 ROLL -> 2 3 1
    s = ScriptBuilder().push_int(1).push_int(2).push_int(3).push_int(2).op(OP_ROLL).take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    ASSERT_EQ(stack.size(), 3u);
    EXPECT_EQ(stack.back(), num(1));
    EXPECT_EQ(stack[0], num(2));
}

TEST(Interpreter, AltStack) {
    Stack stack;
    const Script s = ScriptBuilder()
                         .push_int(42)
                         .op(OP_TOALTSTACK)
                         .push_int(1)
                         .op(OP_FROMALTSTACK)
                         .take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    ASSERT_EQ(stack.size(), 2u);
    EXPECT_EQ(stack.back(), num(42));
}

TEST(Interpreter, ConditionalBranches) {
    for (const auto& [cond, expected] : std::vector<std::pair<int, int>>{{1, 10}, {0, 20}}) {
        Stack stack;
        const Script s = ScriptBuilder()
                             .push_int(cond)
                             .op(OP_IF)
                             .push_int(10)
                             .op(OP_ELSE)
                             .push_int(20)
                             .op(OP_ENDIF)
                             .take();
        EXPECT_EQ(run(s, stack), ScriptError::kOk);
        EXPECT_EQ(stack.back(), num(expected));
    }
}

TEST(Interpreter, NestedConditionals) {
    Stack stack;
    const Script s = ScriptBuilder()
                         .push_int(1)
                         .op(OP_IF)
                         .push_int(0)
                         .op(OP_IF)
                         .push_int(1)
                         .op(OP_ELSE)
                         .push_int(2)
                         .op(OP_ENDIF)
                         .op(OP_ENDIF)
                         .take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    EXPECT_EQ(stack.back(), num(2));
}

TEST(Interpreter, UnbalancedConditionalFails) {
    Stack stack;
    EXPECT_EQ(run(ScriptBuilder().push_int(1).op(OP_IF).take(), stack),
              ScriptError::kUnbalancedConditional);
    stack.clear();
    EXPECT_EQ(run(ScriptBuilder().op(OP_ENDIF).take(), stack),
              ScriptError::kUnbalancedConditional);
}

TEST(Interpreter, VerifySemantics) {
    Stack stack;
    EXPECT_EQ(run(ScriptBuilder().push_int(1).op(OP_VERIFY).take(), stack),
              ScriptError::kOk);
    stack.clear();
    EXPECT_EQ(run(ScriptBuilder().push_int(0).op(OP_VERIFY).take(), stack),
              ScriptError::kVerifyFailed);
}

TEST(Interpreter, OpReturnAborts) {
    Stack stack;
    EXPECT_EQ(run(ScriptBuilder().op(OP_RETURN).take(), stack), ScriptError::kOpReturn);
}

TEST(Interpreter, HashOpcodes) {
    Stack stack;
    const util::Bytes data{1, 2, 3};
    const Script s = ScriptBuilder().push(data).op(OP_SHA256).take();
    EXPECT_EQ(run(s, stack), ScriptError::kOk);
    const auto expected = crypto::Sha256::hash(data);
    EXPECT_EQ(stack.back(), util::Bytes(expected.begin(), expected.end()));

    stack.clear();
    const Script s160 = ScriptBuilder().push(data).op(OP_HASH160).take();
    EXPECT_EQ(run(s160, stack), ScriptError::kOk);
    EXPECT_EQ(stack.back().size(), 20u);
}

TEST(Interpreter, StackUnderflowDetected) {
    Stack stack;
    EXPECT_EQ(run(ScriptBuilder().op(OP_ADD).take(), stack), ScriptError::kStackUnderflow);
    stack.clear();
    EXPECT_EQ(run(ScriptBuilder().op(OP_DUP).take(), stack), ScriptError::kStackUnderflow);
}

TEST(Interpreter, NumericOperandLimit) {
    Stack stack;
    // A 5-byte operand must be rejected by arithmetic ops.
    const Script s =
        ScriptBuilder().push(util::Bytes(5, 0x01)).push_int(1).op(OP_ADD).take();
    EXPECT_EQ(run(s, stack), ScriptError::kBadNumericOperand);
}

TEST(Interpreter, CastToBoolNegativeZeroIsFalse) {
    EXPECT_FALSE(cast_to_bool(util::Bytes{}));
    EXPECT_FALSE(cast_to_bool(util::Bytes{0x00}));
    EXPECT_FALSE(cast_to_bool(util::Bytes{0x00, 0x80}));  // negative zero
    EXPECT_TRUE(cast_to_bool(util::Bytes{0x01}));
    EXPECT_TRUE(cast_to_bool(util::Bytes{0x80, 0x00}));
}

TEST(VerifyScript, RequiresPushOnlyUnlockScript) {
    const Script unlock = ScriptBuilder().push_int(1).op(OP_DUP).take();
    const Script lock = ScriptBuilder().op(OP_DROP).take();
    EXPECT_EQ(verify_script(unlock, lock, kNullChecker), ScriptError::kBadOpcode);
}

TEST(VerifyScript, CleanStackEnforced) {
    const Script unlock = ScriptBuilder().push_int(1).push_int(1).take();
    const Script lock;  // leaves two items
    EXPECT_EQ(verify_script(unlock, lock, kNullChecker, true),
              ScriptError::kCleanStackViolation);
    EXPECT_EQ(verify_script(unlock, lock, kNullChecker, false), ScriptError::kOk);
}

TEST(VerifyScript, HashLockEndToEnd) {
    // Lock: SHA256 <digest> EQUAL; unlock: <preimage>.
    const util::Bytes preimage = util::to_bytes(std::string_view("open sesame"));
    const auto digest = crypto::Sha256::hash(preimage);
    const Script lock = ScriptBuilder()
                            .op(OP_SHA256)
                            .push(util::ByteSpan{digest.data(), digest.size()})
                            .op(OP_EQUAL)
                            .take();
    EXPECT_EQ(verify_script(ScriptBuilder().push(preimage).take(), lock, kNullChecker),
              ScriptError::kOk);
    EXPECT_EQ(verify_script(ScriptBuilder().push(util::Bytes{1}).take(), lock,
                            kNullChecker),
              ScriptError::kEvalFalse);
}

/// A checker that accepts one specific (signature, pubkey) pair.
class FixedChecker final : public SignatureChecker {
public:
    FixedChecker(util::Bytes sig, util::Bytes pubkey)
        : sig_(std::move(sig)), pubkey_(std::move(pubkey)) {}

    bool check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                         util::ByteSpan) const override {
        return util::Bytes(signature.begin(), signature.end()) == sig_ &&
               util::Bytes(pubkey.begin(), pubkey.end()) == pubkey_;
    }

private:
    util::Bytes sig_;
    util::Bytes pubkey_;
};

TEST(Standard, P2PkhRoundTrip) {
    util::Rng rng(1);
    const auto key = crypto::PrivateKey::generate(rng);
    const auto pub = key.public_key();
    const util::Bytes fake_sig{0xde, 0xad, 0x01};

    const Script lock = make_p2pkh(pub.id());
    const Script unlock = make_p2pkh_unlock(fake_sig, pub);
    FixedChecker checker(fake_sig, pub.serialize());
    EXPECT_EQ(verify_script(unlock, lock, checker), ScriptError::kOk);

    // Wrong pubkey fails at EQUALVERIFY.
    const auto other = crypto::PrivateKey::generate(rng).public_key();
    const Script bad_unlock = make_p2pkh_unlock(fake_sig, other);
    EXPECT_EQ(verify_script(bad_unlock, lock, checker),
              ScriptError::kEqualVerifyFailed);
}

TEST(Standard, MultisigOneOfTwo) {
    util::Rng rng(2);
    const auto k1 = crypto::PrivateKey::generate(rng);
    const auto k2 = crypto::PrivateKey::generate(rng);
    const util::Bytes sig{0x01, 0x02, 0x01};

    const Script lock = make_multisig(1, {k1.public_key(), k2.public_key()});
    const Script unlock = make_multisig_unlock({sig});

    FixedChecker match_k2(sig, k2.public_key().serialize());
    EXPECT_EQ(verify_script(unlock, lock, match_k2), ScriptError::kOk);

    FixedChecker match_neither(sig, util::Bytes{0x99});
    EXPECT_EQ(verify_script(unlock, lock, match_neither), ScriptError::kEvalFalse);
}

TEST(Standard, Classification) {
    util::Rng rng(3);
    const auto key = crypto::PrivateKey::generate(rng);
    EXPECT_EQ(classify(make_p2pkh(key.public_key().id())), ScriptType::kP2Pkh);
    EXPECT_EQ(classify(make_p2pk(key.public_key())), ScriptType::kP2Pk);
    EXPECT_EQ(classify(make_multisig(
                  1, {key.public_key(), crypto::PrivateKey::generate(rng).public_key()})),
              ScriptType::kMultisig);
    EXPECT_EQ(classify(make_null_data(util::Bytes{1, 2})), ScriptType::kNullData);
    EXPECT_EQ(classify(ScriptBuilder().op(OP_DUP).take()), ScriptType::kNonStandard);
    EXPECT_EQ(classify({}), ScriptType::kNonStandard);
}

TEST(Standard, ExtractP2PkhDestination) {
    util::Rng rng(4);
    const auto key = crypto::PrivateKey::generate(rng);
    const auto dest = extract_p2pkh_destination(make_p2pkh(key.public_key().id()));
    ASSERT_TRUE(dest.has_value());
    EXPECT_EQ(*dest, key.public_key().id());
    EXPECT_FALSE(extract_p2pkh_destination(make_p2pk(key.public_key())).has_value());
}

TEST(Disassemble, ReadableOutput) {
    const Script s = ScriptBuilder().op(OP_DUP).push(util::Bytes{0xab}).take();
    EXPECT_EQ(disassemble(s), "OP_DUP <1:ab>");
}

}  // namespace
}  // namespace ebv::script
