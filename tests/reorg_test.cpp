// Reorg support: disconnecting blocks restores both status representations
// exactly, and an alternative branch connects cleanly afterwards.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

namespace fs = std::filesystem;

class ReorgTempDir {
public:
    ReorgTempDir() {
        path_ = fs::temp_directory_path() /
                ("ebv_reorg_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        fs::create_directories(path_);
    }
    ~ReorgTempDir() { fs::remove_all(path_); }
    [[nodiscard]] std::string str() const { return path_.string(); }

private:
    fs::path path_;
    static inline int counter_ = 0;
};

workload::GeneratorOptions reorg_gen_options(std::uint64_t seed) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.key_pool_size = 8;
    return options;
}

TEST(Reorg, UndoDataRoundTrips) {
    chain::BlockUndo undo;
    undo.txs.resize(2);
    undo.txs[0].spent_coins.push_back(chain::Coin{100, 5, false, script::Script{0x51}});
    undo.txs[1].spent_coins.push_back(chain::Coin{7, 2, true, script::Script{0x52, 0x53}});
    undo.txs[1].spent_coins.push_back(chain::Coin{9, 3, false, {}});

    util::Writer w;
    undo.serialize(w);
    util::Reader r(w.data());
    auto decoded = chain::BlockUndo::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, undo);
}

TEST(Reorg, BaselineDisconnectRestoresUtxoSet) {
    const auto gen_options = reorg_gen_options(11);
    workload::ChainGenerator gen(gen_options);

    ReorgTempDir dir;
    chain::BitcoinNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    options.device = storage::DeviceProfile::none();
    options.keep_blocks = true;
    chain::BitcoinNode node(options);

    std::vector<chain::Block> blocks;
    for (int i = 0; i < 25; ++i) {
        blocks.push_back(gen.next_block());
        ASSERT_TRUE(node.submit_block(blocks.back()).has_value()) << i;
    }

    const auto size_at_23 = [&] {
        // Snapshot the set size after 23 blocks by replaying on a fresh
        // node (cheap at this scale, exact by construction).
        chain::BitcoinNodeOptions fresh_options;
        fresh_options.params = gen_options.params;
        chain::BitcoinNode fresh(fresh_options);
        for (int i = 0; i < 23; ++i) EXPECT_TRUE(fresh.submit_block(blocks[i]).has_value());
        return std::pair{fresh.utxo().size(), fresh.status_payload_bytes()};
    }();

    ASSERT_TRUE(node.disconnect_tip());
    ASSERT_TRUE(node.disconnect_tip());
    EXPECT_EQ(node.next_height(), 23u);
    EXPECT_EQ(node.utxo().size(), size_at_23.first);
    EXPECT_EQ(node.status_payload_bytes(), size_at_23.second);

    // The disconnected blocks reconnect cleanly (same branch re-applied).
    ASSERT_TRUE(node.submit_block(blocks[23]).has_value());
    ASSERT_TRUE(node.submit_block(blocks[24]).has_value());
    EXPECT_EQ(node.next_height(), 25u);
}

TEST(Reorg, BaselineAlternativeBranchConnects) {
    // Two generators diverge after a common prefix (same seed, different
    // continuation seeds are emulated by differing blocks after the fork).
    const auto gen_options = reorg_gen_options(13);
    workload::ChainGenerator gen(gen_options);

    ReorgTempDir dir;
    chain::BitcoinNodeOptions options;
    options.params = gen_options.params;
    options.data_dir = dir.str();
    options.device = storage::DeviceProfile::none();
    options.keep_blocks = true;
    chain::BitcoinNode node(options);

    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(node.submit_block(gen.next_block()).has_value());
    }
    const chain::Block original_tip = gen.next_block();
    ASSERT_TRUE(node.submit_block(original_tip).has_value());

    // Competing tip: empty block on the same parent.
    ASSERT_TRUE(node.disconnect_tip());
    chain::Block alternative = chain::assemble_block(
        node.headers().tip_hash(),
        chain::make_coinbase(node.next_height(),
                             options.params.subsidy_at(node.next_height()),
                             script::Script{0x51}, /*extra_nonce=*/999),
        {}, /*time=*/123456);
    auto result = node.submit_block(alternative);
    ASSERT_TRUE(result.has_value()) << result.error().describe();
    EXPECT_EQ(node.headers().tip_hash(), alternative.header.hash());
}

TEST(Reorg, EbvDisconnectRestoresBitVectors) {
    const auto gen_options = reorg_gen_options(17);
    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    core::EbvNodeOptions options;
    options.params = gen_options.params;
    core::EbvNode node(options);

    std::vector<core::EbvBlock> blocks;
    for (int i = 0; i < 25; ++i) {
        auto converted = converter.convert_block(gen.next_block());
        ASSERT_TRUE(converted.has_value());
        blocks.push_back(*converted);
        ASSERT_TRUE(node.submit_block(blocks.back()).has_value()) << i;
    }

    // Reference state after 23 blocks.
    core::EbvNode reference(options);
    for (int i = 0; i < 23; ++i) ASSERT_TRUE(reference.submit_block(blocks[i]).has_value());

    ASSERT_TRUE(node.disconnect_tip(blocks[24]));
    ASSERT_TRUE(node.disconnect_tip(blocks[23]));
    EXPECT_EQ(node.next_height(), 23u);
    EXPECT_EQ(node.status(), reference.status());
    EXPECT_EQ(node.status_memory_bytes(), reference.status_memory_bytes());
    EXPECT_EQ(node.headers().tip_hash(), reference.headers().tip_hash());

    // Wrong block for the tip is refused.
    EXPECT_FALSE(node.disconnect_tip(blocks[24]));

    // Reconnect the same branch.
    ASSERT_TRUE(node.submit_block(blocks[23]).has_value());
    ASSERT_TRUE(node.submit_block(blocks[24]).has_value());
    EXPECT_EQ(node.next_height(), 25u);
}

TEST(Reorg, EbvUnspendRecreatesDeletedVector) {
    core::BitVectorSet set;
    set.insert_block(0, 3);
    ASSERT_TRUE(set.spend(0, 0).has_value());
    ASSERT_TRUE(set.spend(0, 1).has_value());
    ASSERT_TRUE(set.spend(0, 2).has_value());
    ASSERT_FALSE(set.has_vector(0));  // deleted as fully spent

    // Reorg un-spends position 1: the vector reappears with only that bit.
    EXPECT_TRUE(set.unspend(0, 1, 3));
    ASSERT_TRUE(set.has_vector(0));
    EXPECT_TRUE(set.check_unspent(0, 1).has_value());
    EXPECT_FALSE(set.check_unspent(0, 0).has_value());
    EXPECT_FALSE(set.check_unspent(0, 2).has_value());

    // Un-spending an already-unspent bit reports false.
    EXPECT_FALSE(set.unspend(0, 1, 3));
}

TEST(Reorg, BitVectorSetRoundTripsThroughSparseForms) {
    core::BitVectorSet set;
    set.insert_block(7, 2000);
    // Spend most of it (goes sparse), then un-spend everything back.
    for (std::uint32_t i = 0; i < 1990; ++i) ASSERT_TRUE(set.spend(7, i).has_value());
    const auto sparse_bytes = set.memory_bytes();
    EXPECT_LT(sparse_bytes, set.dense_memory_bytes());

    for (std::uint32_t i = 0; i < 1990; ++i) EXPECT_TRUE(set.unspend(7, i, 2000));
    for (std::uint32_t i = 0; i < 2000; ++i) {
        EXPECT_TRUE(set.check_unspent(7, i).has_value()) << i;
    }
    // Fully restored: dense again and the same footprint as a fresh vector.
    core::BitVectorSet fresh;
    fresh.insert_block(7, 2000);
    EXPECT_EQ(set.memory_bytes(), fresh.memory_bytes());
}

}  // namespace
}  // namespace ebv
