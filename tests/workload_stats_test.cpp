// Statistical validation of the workload generator: the emitted chain's
// aggregate statistics must actually track the era schedule, since every
// figure's shape rests on them.
#include <gtest/gtest.h>

#include <cmath>

#include "script/standard.hpp"
#include "workload/generator.hpp"

namespace ebv::workload {
namespace {

struct ChainStats {
    double txs_per_block = 0;
    double inputs_per_tx = 0;
    double outputs_per_tx = 0;
    double p2pk_fraction = 0;
    double multisig_fraction = 0;
    std::uint64_t young_spends = 0;   ///< spent output younger than W blocks
    std::uint64_t total_spends = 0;
};

ChainStats measure(GeneratorOptions options, int blocks, std::uint32_t young_window) {
    ChainGenerator gen(options);
    ChainStats stats;
    std::uint64_t txs = 0, inputs = 0, outputs = 0, p2pk = 0, ms = 0;

    // Track creation height of every outpoint for spend-age measurement.
    std::unordered_map<chain::OutPoint, std::uint32_t, chain::OutPointHasher> born;

    for (int h = 0; h < blocks; ++h) {
        const chain::Block block = gen.next_block();
        for (const auto& tx : block.txs) {
            if (!tx.is_coinbase()) {
                ++txs;
                inputs += tx.vin.size();
                for (const auto& in : tx.vin) {
                    ++stats.total_spends;
                    const auto it = born.find(in.prevout);
                    if (it != born.end() &&
                        static_cast<std::uint32_t>(h) - it->second <= young_window) {
                        ++stats.young_spends;
                    }
                }
                outputs += tx.vout.size();
                for (const auto& out : tx.vout) {
                    const auto type = script::classify(out.lock_script);
                    if (type == script::ScriptType::kP2Pk) ++p2pk;
                    if (type == script::ScriptType::kMultisig) ++ms;
                }
            }
            for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
                born.emplace(chain::OutPoint{tx.txid(), o},
                             static_cast<std::uint32_t>(h));
            }
        }
    }

    stats.txs_per_block = static_cast<double>(txs) / blocks;
    stats.inputs_per_tx = txs ? static_cast<double>(inputs) / static_cast<double>(txs) : 0;
    stats.outputs_per_tx =
        txs ? static_cast<double>(outputs) / static_cast<double>(txs) : 0;
    stats.p2pk_fraction = outputs ? static_cast<double>(p2pk) / static_cast<double>(outputs) : 0;
    stats.multisig_fraction =
        outputs ? static_cast<double>(ms) / static_cast<double>(outputs) : 0;
    return stats;
}

TEST(WorkloadStats, FlatScheduleMeansMatch) {
    GeneratorOptions options;
    options.seed = 5;
    options.signed_mode = false;
    options.params.coinbase_maturity = 5;
    options.schedule = EraSchedule::flat(/*tx=*/6.0, /*in=*/1.8, /*out=*/2.2);
    options.height_scale = 1.0;
    options.intensity = 1.0;

    const ChainStats stats = measure(options, 600, /*young_window=*/640);

    EXPECT_NEAR(stats.txs_per_block, 6.0, 0.5);
    // Input counts are demand-limited early (small UTXO pool), so the
    // realized mean sits slightly under the schedule's.
    EXPECT_NEAR(stats.inputs_per_tx, 1.8, 0.35);
    EXPECT_NEAR(stats.outputs_per_tx, 2.2, 0.35);
}

TEST(WorkloadStats, IntensityScalesBlockFill) {
    GeneratorOptions options;
    options.seed = 6;
    options.signed_mode = false;
    options.schedule = EraSchedule::flat(8.0, 1.5, 2.0);
    options.height_scale = 1.0;

    options.intensity = 1.0;
    const auto full = measure(options, 300, 10);
    options.intensity = 0.25;
    const auto quarter = measure(options, 300, 10);

    EXPECT_NEAR(quarter.txs_per_block / full.txs_per_block, 0.25, 0.08);
}

TEST(WorkloadStats, SpendAgeIsYoungBiased) {
    GeneratorOptions options;
    options.seed = 7;
    options.signed_mode = false;
    options.params.coinbase_maturity = 5;
    options.schedule = EraSchedule::flat(8.0, 1.7, 2.1);  // young prob 0.8, window 20
    options.height_scale = 1.0;
    options.intensity = 1.0;

    const ChainStats stats = measure(options, 500, /*young_window=*/40);
    ASSERT_GT(stats.total_spends, 500u);
    const double young_fraction = static_cast<double>(stats.young_spends) /
                                  static_cast<double>(stats.total_spends);
    // The schedule asks for ~80% young spends; sampling is approximate.
    EXPECT_GT(young_fraction, 0.6);
}

TEST(WorkloadStats, ScriptMixFollowsEra) {
    GeneratorOptions options;
    options.seed = 8;
    options.signed_mode = false;
    options.params.coinbase_maturity = 5;
    // Early mainnet era: p2pk-heavy.
    options.schedule = EraSchedule::bitcoin_mainnet();
    options.height_scale = 1.0;  // stay at real height ~0-500
    options.intensity = 3.0;

    const ChainStats early = measure(options, 400, 10);
    EXPECT_GT(early.p2pk_fraction, 0.4);  // era table says 0.7 at height 0

    // Late era: p2pkh + a little multisig.
    options.height_scale = 1500.0;  // blocks 0..400 span to 600k real
    const ChainStats late = measure(options, 400, 10);
    EXPECT_LT(late.p2pk_fraction, 0.2);
    EXPECT_GT(late.multisig_fraction, 0.005);
}

TEST(WorkloadStats, UtxoGrowthRespondsToConsolidationEra) {
    GeneratorOptions options;
    options.seed = 9;
    options.signed_mode = false;
    options.params.coinbase_maturity = 5;
    options.schedule = EraSchedule::bitcoin_mainnet();
    options.height_scale = 650'000.0 / 650;  // 650 blocks over the full history
    options.intensity = 1.0;

    ChainGenerator gen(options);
    std::size_t pool_at_500k = 0;
    std::size_t pool_at_550k = 0;
    for (int i = 0; i < 650; ++i) {
        gen.next_block();
        if (i == 500) pool_at_500k = gen.utxo_pool_size();
        if (i == 550) pool_at_550k = gen.utxo_pool_size();
    }
    // Consolidation era: the pool stops growing (and typically shrinks).
    EXPECT_LT(static_cast<double>(pool_at_550k),
              static_cast<double>(pool_at_500k) * 1.05);
}

}  // namespace
}  // namespace ebv::workload
