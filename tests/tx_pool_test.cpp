// Transaction-level validation and mempool behaviour (paper §IV-D).
#include <gtest/gtest.h>

#include "core/chain_archive.hpp"
#include "core/node.hpp"
#include "core/tx_pool.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"

namespace ebv::core {
namespace {

using chain::Amount;
using chain::kCoin;

/// Shared fixture: a small EBV chain whose coinbases pay one key, plus a
/// pool attached to the node's state.
class TxPoolTest : public ::testing::Test {
protected:
    TxPoolTest() : key_(crypto::PrivateKey::generate(rng_)) {
        options_.params.coinbase_maturity = 2;
        node_ = std::make_unique<EbvNode>(options_);
        pool_ = std::make_unique<TxPool>(options_.params, node_->headers(),
                                         node_->status());
        mine_blocks(4);
    }

    script::Script lock() const { return script::make_p2pkh(key_.public_key().id()); }

    void mine_blocks(int count, std::vector<EbvTransaction> txs = {}) {
        for (int i = 0; i < count; ++i) {
            EbvBlock block;
            EbvTransaction coinbase;
            const std::uint32_t height = node_->next_height();
            coinbase.coinbase_data = {static_cast<std::uint8_t>(height), 1};
            Amount fees = 0;
            for (const auto& tx : txs) {
                Amount in = 0;
                for (const auto& input : tx.inputs)
                    in += input.els.outputs[input.out_index].value;
                fees += in - tx.total_output_value();
            }
            coinbase.outputs.push_back(
                chain::TxOut{options_.params.subsidy_at(height) + fees, lock()});
            block.txs.push_back(std::move(coinbase));
            for (auto& tx : txs) block.txs.push_back(std::move(tx));
            txs.clear();
            block.header.prev_hash = node_->headers().empty()
                                         ? crypto::Hash256{}
                                         : node_->headers().tip_hash();
            block.assign_stake_positions();
            auto result = node_->submit_block(block);
            ASSERT_TRUE(result.has_value()) << result.error().describe();
            archive_.add_block(block);
        }
    }

    EbvTransaction make_spend(std::uint32_t height, std::uint32_t tx_index,
                              Amount out_value) {
        EbvTransaction tx;
        tx.inputs.push_back(archive_.make_input(height, tx_index, 0));
        tx.outputs.push_back(chain::TxOut{out_value, lock()});
        const crypto::Hash256 digest = ebv_signature_hash(tx, 0, lock(), 0x01);
        util::Bytes sig = key_.sign(digest).to_der();
        sig.push_back(0x01);
        tx.inputs[0].unlock_script = script::make_p2pkh_unlock(sig, key_.public_key());
        return tx;
    }

    util::Rng rng_{21};
    crypto::PrivateKey key_;
    EbvNodeOptions options_;
    std::unique_ptr<EbvNode> node_;
    std::unique_ptr<TxPool> pool_;
    ChainArchive archive_;
};

TEST_F(TxPoolTest, AcceptsValidTransaction) {
    const auto tx = make_spend(0, 0, 40 * kCoin);
    EXPECT_EQ(pool_->submit(tx), TxAdmission::kAccepted);
    EXPECT_EQ(pool_->size(), 1u);
    EXPECT_TRUE(pool_->contains(tx.leaf_hash()));
}

TEST_F(TxPoolTest, RejectsDuplicate) {
    const auto tx = make_spend(0, 0, 40 * kCoin);
    ASSERT_EQ(pool_->submit(tx), TxAdmission::kAccepted);
    EXPECT_EQ(pool_->submit(tx), TxAdmission::kDuplicate);
}

TEST_F(TxPoolTest, RejectsConflictingSpend) {
    ASSERT_EQ(pool_->submit(make_spend(0, 0, 40 * kCoin)), TxAdmission::kAccepted);
    // A different tx spending the same output at a LOWER feerate (higher
    // output value = smaller fee) cannot displace the pooled spender.
    EXPECT_EQ(pool_->submit(make_spend(0, 0, 41 * kCoin)), TxAdmission::kConflict);
}

TEST_F(TxPoolTest, ReplacesConflictAtStrictlyHigherFeerate) {
    const auto original = make_spend(0, 0, 40 * kCoin);     // fee 10
    const auto replacement = make_spend(0, 0, 39 * kCoin);  // fee 11
    ASSERT_EQ(pool_->submit(original), TxAdmission::kAccepted);
    EXPECT_EQ(pool_->submit(replacement), TxAdmission::kAccepted);
    EXPECT_EQ(pool_->size(), 1u);
    EXPECT_FALSE(pool_->contains(original.leaf_hash()));
    EXPECT_TRUE(pool_->contains(replacement.leaf_hash()));

    // The replacement owns the spend slot: draining it frees the output.
    const auto drained = pool_->take_for_block(1);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].leaf_hash(), replacement.leaf_hash());
    EXPECT_EQ(pool_->submit(original), TxAdmission::kAccepted);
}

TEST_F(TxPoolTest, ReplacementCanBeDisabled) {
    TxPoolOptions options;
    options.replace_by_feerate = false;
    TxPool pool(options_.params, node_->headers(), node_->status(), options);
    ASSERT_EQ(pool.submit(make_spend(0, 0, 40 * kCoin)), TxAdmission::kAccepted);
    EXPECT_EQ(pool.submit(make_spend(0, 0, 39 * kCoin)), TxAdmission::kConflict);
}

TEST_F(TxPoolTest, InvalidConflictNeverReplaces) {
    const auto original = make_spend(0, 0, 40 * kCoin);
    ASSERT_EQ(pool_->submit(original), TxAdmission::kAccepted);
    // Higher feerate but an unsignable script: the conflict verdict comes
    // first, exactly as a serial one-at-a-time pipeline reports it.
    auto bad = make_spend(0, 0, 39 * kCoin);
    bad.inputs[0].unlock_script[4] ^= 0x01;
    EXPECT_EQ(pool_->submit(bad), TxAdmission::kConflict);
    EXPECT_TRUE(pool_->contains(original.leaf_hash()));
}

TEST_F(TxPoolTest, RejectsCoinbase) {
    EbvTransaction coinbase;
    coinbase.coinbase_data = {1};
    coinbase.outputs.push_back(chain::TxOut{1, lock()});
    EXPECT_EQ(pool_->submit(coinbase), TxAdmission::kNotStandalone);
}

TEST_F(TxPoolTest, RejectsImmatureCoinbaseSpend) {
    // Block 3's coinbase needs height >= 5; next height is 4.
    EXPECT_EQ(pool_->submit(make_spend(3, 0, 40 * kCoin)),
              TxAdmission::kImmatureCoinbase);
}

TEST_F(TxPoolTest, RejectsBadProofAndBadScript) {
    auto bad_proof = make_spend(0, 0, 40 * kCoin);
    bad_proof.inputs[0].els.stake_position += 1;
    EXPECT_EQ(pool_->submit(bad_proof), TxAdmission::kExistenceFailed);

    auto bad_sig = make_spend(0, 0, 40 * kCoin);
    bad_sig.inputs[0].unlock_script[4] ^= 0x01;
    EXPECT_EQ(pool_->submit(bad_sig), TxAdmission::kScriptFailed);

    auto inflated = make_spend(0, 0, 60 * kCoin);  // outputs > inputs
    EXPECT_EQ(pool_->submit(inflated), TxAdmission::kBadValue);
}

TEST_F(TxPoolTest, TakeForBlockPrefersHigherFeeRate) {
    const auto cheap = make_spend(0, 0, 50 * kCoin - 1'000);   // fee 1000
    const auto rich = make_spend(1, 0, 40 * kCoin);            // fee 10 coin
    ASSERT_EQ(pool_->submit(cheap), TxAdmission::kAccepted);
    ASSERT_EQ(pool_->submit(rich), TxAdmission::kAccepted);

    const auto drained = pool_->take_for_block(1);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].leaf_hash(), rich.leaf_hash());
    EXPECT_EQ(pool_->size(), 1u);

    // The drained spend is released: a conflicting tx may now enter.
    EXPECT_EQ(pool_->submit(make_spend(1, 0, 39 * kCoin)), TxAdmission::kAccepted);
}

TEST_F(TxPoolTest, EvictsLowestFeerateUnderByteBudget) {
    // Measure one entry's accounted cost, then budget for two entries.
    std::size_t entry_bytes = 0;
    {
        TxPool probe(options_.params, node_->headers(), node_->status());
        ASSERT_EQ(probe.submit(make_spend(0, 0, 40 * kCoin)), TxAdmission::kAccepted);
        entry_bytes = probe.bytes();
        ASSERT_GT(entry_bytes, 0u);
    }

    TxPoolOptions options;
    options.max_bytes = 2 * entry_bytes + entry_bytes / 2;
    TxPool pool(options_.params, node_->headers(), node_->status(), options);

    const auto cheap = make_spend(0, 0, 50 * kCoin - 1'000);  // fee 1000
    const auto mid = make_spend(1, 0, 45 * kCoin);            // fee 5 coin
    const auto rich = make_spend(2, 0, 40 * kCoin);           // fee 10 coin
    ASSERT_EQ(pool.submit(cheap), TxAdmission::kAccepted);
    ASSERT_EQ(pool.submit(mid), TxAdmission::kAccepted);
    // The third entry busts the budget; the cheapest pooled tx is evicted.
    ASSERT_EQ(pool.submit(rich), TxAdmission::kAccepted);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_LE(pool.bytes(), options.max_bytes);
    EXPECT_FALSE(pool.contains(cheap.leaf_hash()));
    EXPECT_TRUE(pool.contains(mid.leaf_hash()));
    EXPECT_TRUE(pool.contains(rich.leaf_hash()));

    // The evicted output is free again, but a below-floor newcomer is
    // admitted and immediately budget-evicted itself: kPoolFull.
    EXPECT_EQ(pool.submit(make_spend(0, 0, 50 * kCoin - 500)),  // fee 500
              TxAdmission::kPoolFull);
    EXPECT_EQ(pool.size(), 2u);
}

TEST_F(TxPoolTest, BatchVerdictsMatchSerialSubmission) {
    mine_blocks(4);  // more mature coinbases to spend (heights 0..7 exist)

    std::vector<EbvTransaction> batch;
    batch.push_back(make_spend(0, 0, 40 * kCoin));        // accepted
    batch.push_back(batch[0]);                            // duplicate (in batch)
    batch.push_back(make_spend(0, 0, 41 * kCoin));        // conflict, lower feerate
    batch.push_back(make_spend(1, 0, 45 * kCoin));        // accepted
    auto bad_sig = make_spend(2, 0, 40 * kCoin);
    bad_sig.inputs[0].unlock_script[4] ^= 0x01;
    batch.push_back(bad_sig);                             // script failure
    batch.push_back(make_spend(1, 0, 44 * kCoin));        // replaces #3 (higher fee)
    batch.push_back(make_spend(3, 0, 60 * kCoin));        // bad value

    // Ground truth: one-at-a-time serial submission.
    std::vector<TxAdmission> serial;
    for (const auto& tx : batch) serial.push_back(pool_->submit(tx));

    // Batch admission without a thread pool...
    TxPool batch_pool(options_.params, node_->headers(), node_->status());
    EXPECT_EQ(batch_pool.submit_batch(batch), serial);

    // ...and fanned over a thread pool, with a sigcache in the loop.
    util::ThreadPool workers(4);
    SigCache cache;
    TxPoolOptions options;
    options.pool = &workers;
    options.sigcache = &cache;
    TxPool parallel_pool(options_.params, node_->headers(), node_->status(), options);
    EXPECT_EQ(parallel_pool.submit_batch(batch), serial);
    EXPECT_EQ(parallel_pool.size(), pool_->size());

    // A warm sigcache changes nothing about verdicts on a re-run either.
    TxPool rerun_pool(options_.params, node_->headers(), node_->status(), options);
    EXPECT_EQ(rerun_pool.submit_batch(batch), serial);
}

TEST_F(TxPoolTest, BuildTemplateMinesCleanlyAndEvictsIncrementally) {
    const auto a = make_spend(0, 0, 40 * kCoin);  // fee 10
    const auto b = make_spend(1, 0, 45 * kCoin);  // fee 5
    ASSERT_EQ(pool_->submit(a), TxAdmission::kAccepted);
    ASSERT_EQ(pool_->submit(b), TxAdmission::kAccepted);

    // A pooled tx NOT included in the template (worst feerate of the
    // three) survives eviction.
    const auto survivor = make_spend(2, 0, 48 * kCoin);  // fee 2
    ASSERT_EQ(pool_->submit(survivor), TxAdmission::kAccepted);

    const EbvBlock block = pool_->build_template(lock(), 2);
    ASSERT_EQ(block.txs.size(), 3u);
    EXPECT_TRUE(block.txs[0].is_coinbase());
    // Best feerate first: a (fee 10) before b (fee 5). Stake positions
    // were assigned, so compare spend identity rather than leaf hashes.
    EXPECT_EQ(block.txs[1].inputs[0].height, a.inputs[0].height);
    EXPECT_EQ(block.txs[2].inputs[0].height, b.inputs[0].height);
    // Coinbase claims subsidy + the included fees.
    EXPECT_EQ(block.txs[0].total_output_value(),
              options_.params.subsidy_at(node_->next_height()) + 15 * kCoin);

    // The template connects as-is; building it did not drain the pool.
    EXPECT_EQ(pool_->size(), 3u);
    auto result = node_->submit_block(block);
    ASSERT_TRUE(result.has_value()) << result.error().describe();

    // Incremental eviction drops exactly the confirmed spenders.
    EXPECT_EQ(pool_->evict_confirmed_spends(block), 2u);
    EXPECT_EQ(pool_->size(), 1u);
    EXPECT_TRUE(pool_->contains(survivor.leaf_hash()));
}

TEST_F(TxPoolTest, IncrementalEvictionMatchesFullRescan) {
    const auto victim = make_spend(0, 0, 40 * kCoin);
    ASSERT_EQ(pool_->submit(victim), TxAdmission::kAccepted);
    ASSERT_EQ(pool_->submit(make_spend(1, 0, 40 * kCoin)), TxAdmission::kAccepted);

    // A block confirms a *different* transaction spending victim's output,
    // assembled through a second pool's template path.
    TxPool other(options_.params, node_->headers(), node_->status());
    ASSERT_EQ(other.submit(make_spend(0, 0, 39 * kCoin)), TxAdmission::kAccepted);
    const EbvBlock block = other.build_template(lock(), 1);
    ASSERT_TRUE(node_->submit_block(block).has_value());

    EXPECT_EQ(pool_->evict_confirmed_spends(block), 1u);
    EXPECT_EQ(pool_->size(), 1u);
    EXPECT_FALSE(pool_->contains(victim.leaf_hash()));
    // Nothing left for the full rescan to find: the incremental pass
    // matched it exactly.
    EXPECT_EQ(pool_->evict_confirmed_spends(), 0u);
}

TEST_F(TxPoolTest, EvictsTransactionsSpentByConfirmedBlocks) {
    const auto pooled = make_spend(0, 0, 40 * kCoin);
    ASSERT_EQ(pool_->submit(pooled), TxAdmission::kAccepted);

    // A block confirms a *different* transaction spending the same output.
    auto confirmed = make_spend(0, 0, 41 * kCoin);
    mine_blocks(1, {confirmed});

    EXPECT_EQ(pool_->evict_confirmed_spends(), 1u);
    EXPECT_EQ(pool_->size(), 0u);
}

TEST_F(TxPoolTest, PooledTransactionMinesCleanly) {
    ASSERT_EQ(pool_->submit(make_spend(0, 0, 40 * kCoin)), TxAdmission::kAccepted);
    auto txs = pool_->take_for_block(10);
    ASSERT_EQ(txs.size(), 1u);
    mine_blocks(1, std::move(txs));
    EXPECT_EQ(pool_->evict_confirmed_spends(), 0u);
    // The spent output's bit is cleared.
    EXPECT_FALSE(node_->status().check_unspent(0, 0).has_value());
}

TEST(ValidateTransaction, StandaloneMatchesPoolVerdicts) {
    // validate_transaction is the stateless core; a transaction with no
    // chain behind it must fail EV.
    chain::ChainParams params;
    chain::HeaderIndex headers;
    BitVectorSet status;
    EbvTransaction tx;
    EbvInput in;
    in.els.outputs.push_back(chain::TxOut{1, script::Script{0x51}});
    tx.inputs.push_back(in);
    tx.outputs.push_back(chain::TxOut{1, script::Script{0x51}});
    EXPECT_EQ(validate_transaction(tx, params, headers, status, 0),
              TxAdmission::kExistenceFailed);
}

}  // namespace
}  // namespace ebv::core
