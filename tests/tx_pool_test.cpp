// Transaction-level validation and mempool behaviour (paper §IV-D).
#include <gtest/gtest.h>

#include "core/chain_archive.hpp"
#include "core/node.hpp"
#include "core/tx_pool.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"

namespace ebv::core {
namespace {

using chain::Amount;
using chain::kCoin;

/// Shared fixture: a small EBV chain whose coinbases pay one key, plus a
/// pool attached to the node's state.
class TxPoolTest : public ::testing::Test {
protected:
    TxPoolTest() : key_(crypto::PrivateKey::generate(rng_)) {
        options_.params.coinbase_maturity = 2;
        node_ = std::make_unique<EbvNode>(options_);
        pool_ = std::make_unique<TxPool>(options_.params, node_->headers(),
                                         node_->status());
        mine_blocks(4);
    }

    script::Script lock() const { return script::make_p2pkh(key_.public_key().id()); }

    void mine_blocks(int count, std::vector<EbvTransaction> txs = {}) {
        for (int i = 0; i < count; ++i) {
            EbvBlock block;
            EbvTransaction coinbase;
            const std::uint32_t height = node_->next_height();
            coinbase.coinbase_data = {static_cast<std::uint8_t>(height), 1};
            Amount fees = 0;
            for (const auto& tx : txs) {
                Amount in = 0;
                for (const auto& input : tx.inputs)
                    in += input.els.outputs[input.out_index].value;
                fees += in - tx.total_output_value();
            }
            coinbase.outputs.push_back(
                chain::TxOut{options_.params.subsidy_at(height) + fees, lock()});
            block.txs.push_back(std::move(coinbase));
            for (auto& tx : txs) block.txs.push_back(std::move(tx));
            txs.clear();
            block.header.prev_hash = node_->headers().empty()
                                         ? crypto::Hash256{}
                                         : node_->headers().tip_hash();
            block.assign_stake_positions();
            auto result = node_->submit_block(block);
            ASSERT_TRUE(result.has_value()) << result.error().describe();
            archive_.add_block(block);
        }
    }

    EbvTransaction make_spend(std::uint32_t height, std::uint32_t tx_index,
                              Amount out_value) {
        EbvTransaction tx;
        tx.inputs.push_back(archive_.make_input(height, tx_index, 0));
        tx.outputs.push_back(chain::TxOut{out_value, lock()});
        const crypto::Hash256 digest = ebv_signature_hash(tx, 0, lock(), 0x01);
        util::Bytes sig = key_.sign(digest).to_der();
        sig.push_back(0x01);
        tx.inputs[0].unlock_script = script::make_p2pkh_unlock(sig, key_.public_key());
        return tx;
    }

    util::Rng rng_{21};
    crypto::PrivateKey key_;
    EbvNodeOptions options_;
    std::unique_ptr<EbvNode> node_;
    std::unique_ptr<TxPool> pool_;
    ChainArchive archive_;
};

TEST_F(TxPoolTest, AcceptsValidTransaction) {
    const auto tx = make_spend(0, 0, 40 * kCoin);
    EXPECT_EQ(pool_->submit(tx), TxAdmission::kAccepted);
    EXPECT_EQ(pool_->size(), 1u);
    EXPECT_TRUE(pool_->contains(tx.leaf_hash()));
}

TEST_F(TxPoolTest, RejectsDuplicate) {
    const auto tx = make_spend(0, 0, 40 * kCoin);
    ASSERT_EQ(pool_->submit(tx), TxAdmission::kAccepted);
    EXPECT_EQ(pool_->submit(tx), TxAdmission::kDuplicate);
}

TEST_F(TxPoolTest, RejectsConflictingSpend) {
    ASSERT_EQ(pool_->submit(make_spend(0, 0, 40 * kCoin)), TxAdmission::kAccepted);
    // A different tx (different value) spending the same output.
    EXPECT_EQ(pool_->submit(make_spend(0, 0, 39 * kCoin)), TxAdmission::kConflict);
}

TEST_F(TxPoolTest, RejectsCoinbase) {
    EbvTransaction coinbase;
    coinbase.coinbase_data = {1};
    coinbase.outputs.push_back(chain::TxOut{1, lock()});
    EXPECT_EQ(pool_->submit(coinbase), TxAdmission::kNotStandalone);
}

TEST_F(TxPoolTest, RejectsImmatureCoinbaseSpend) {
    // Block 3's coinbase needs height >= 5; next height is 4.
    EXPECT_EQ(pool_->submit(make_spend(3, 0, 40 * kCoin)),
              TxAdmission::kImmatureCoinbase);
}

TEST_F(TxPoolTest, RejectsBadProofAndBadScript) {
    auto bad_proof = make_spend(0, 0, 40 * kCoin);
    bad_proof.inputs[0].els.stake_position += 1;
    EXPECT_EQ(pool_->submit(bad_proof), TxAdmission::kExistenceFailed);

    auto bad_sig = make_spend(0, 0, 40 * kCoin);
    bad_sig.inputs[0].unlock_script[4] ^= 0x01;
    EXPECT_EQ(pool_->submit(bad_sig), TxAdmission::kScriptFailed);

    auto inflated = make_spend(0, 0, 60 * kCoin);  // outputs > inputs
    EXPECT_EQ(pool_->submit(inflated), TxAdmission::kBadValue);
}

TEST_F(TxPoolTest, TakeForBlockPrefersHigherFeeRate) {
    const auto cheap = make_spend(0, 0, 50 * kCoin - 1'000);   // fee 1000
    const auto rich = make_spend(1, 0, 40 * kCoin);            // fee 10 coin
    ASSERT_EQ(pool_->submit(cheap), TxAdmission::kAccepted);
    ASSERT_EQ(pool_->submit(rich), TxAdmission::kAccepted);

    const auto drained = pool_->take_for_block(1);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].leaf_hash(), rich.leaf_hash());
    EXPECT_EQ(pool_->size(), 1u);

    // The drained spend is released: a conflicting tx may now enter.
    EXPECT_EQ(pool_->submit(make_spend(1, 0, 39 * kCoin)), TxAdmission::kAccepted);
}

TEST_F(TxPoolTest, EvictsTransactionsSpentByConfirmedBlocks) {
    const auto pooled = make_spend(0, 0, 40 * kCoin);
    ASSERT_EQ(pool_->submit(pooled), TxAdmission::kAccepted);

    // A block confirms a *different* transaction spending the same output.
    auto confirmed = make_spend(0, 0, 41 * kCoin);
    mine_blocks(1, {confirmed});

    EXPECT_EQ(pool_->evict_confirmed_spends(), 1u);
    EXPECT_EQ(pool_->size(), 0u);
}

TEST_F(TxPoolTest, PooledTransactionMinesCleanly) {
    ASSERT_EQ(pool_->submit(make_spend(0, 0, 40 * kCoin)), TxAdmission::kAccepted);
    auto txs = pool_->take_for_block(10);
    ASSERT_EQ(txs.size(), 1u);
    mine_blocks(1, std::move(txs));
    EXPECT_EQ(pool_->evict_confirmed_spends(), 0u);
    // The spent output's bit is cleared.
    EXPECT_FALSE(node_->status().check_unspent(0, 0).has_value());
}

TEST(ValidateTransaction, StandaloneMatchesPoolVerdicts) {
    // validate_transaction is the stateless core; a transaction with no
    // chain behind it must fail EV.
    chain::ChainParams params;
    chain::HeaderIndex headers;
    BitVectorSet status;
    EbvTransaction tx;
    EbvInput in;
    in.els.outputs.push_back(chain::TxOut{1, script::Script{0x51}});
    tx.inputs.push_back(in);
    tx.outputs.push_back(chain::TxOut{1, script::Script{0x51}});
    EXPECT_EQ(validate_transaction(tx, params, headers, status, 0),
              TxAdmission::kExistenceFailed);
}

}  // namespace
}  // namespace ebv::core
