// Pay-to-script-hash semantics: the extra redeem-script evaluation, its
// interaction with real signatures, and classification.
#include <gtest/gtest.h>

#include "chain/sighash.hpp"
#include "chain/transaction.hpp"
#include "crypto/sha256.hpp"
#include "script/interpreter.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"

namespace ebv::script {
namespace {

const NullSignatureChecker kNullChecker;

TEST(P2sh, PatternDetection) {
    util::Rng rng(1);
    const auto key = crypto::PrivateKey::generate(rng);
    const Script redeem = make_p2pkh(key.public_key().id());
    const Script lock = make_p2sh(redeem);
    EXPECT_TRUE(is_pay_to_script_hash(lock));
    EXPECT_EQ(classify(lock), ScriptType::kP2Sh);
    EXPECT_FALSE(is_pay_to_script_hash(redeem));
}

TEST(P2sh, HashLockRedeemScriptEndToEnd) {
    // Redeem script: SHA256 <digest> EQUAL — spendable by whoever knows the
    // preimage, wrapped in P2SH.
    const util::Bytes preimage = util::to_bytes(std::string_view("p2sh secret"));
    const auto digest = crypto::Sha256::hash(preimage);
    const Script redeem = ScriptBuilder()
                              .op(OP_SHA256)
                              .push(util::ByteSpan{digest.data(), digest.size()})
                              .op(OP_EQUAL)
                              .take();
    const Script lock = make_p2sh(redeem);

    const Script unlock =
        make_p2sh_unlock(ScriptBuilder().push(preimage).take(), redeem);
    EXPECT_EQ(verify_script(unlock, lock, kNullChecker), ScriptError::kOk);

    // Wrong preimage: redeem script evaluates false.
    const Script bad_unlock =
        make_p2sh_unlock(ScriptBuilder().push(util::Bytes{1, 2}).take(), redeem);
    EXPECT_EQ(verify_script(bad_unlock, lock, kNullChecker), ScriptError::kEvalFalse);

    // Wrong redeem script: hash mismatch fails the outer script.
    const Script other_redeem = ScriptBuilder().op(OP_1).take();
    const Script wrong_unlock =
        make_p2sh_unlock(ScriptBuilder().push(preimage).take(), other_redeem);
    EXPECT_EQ(verify_script(wrong_unlock, lock, kNullChecker), ScriptError::kEvalFalse);
}

TEST(P2sh, WrappedMultisigWithRealSignatures) {
    util::Rng rng(2);
    const auto k1 = crypto::PrivateKey::generate(rng);
    const auto k2 = crypto::PrivateKey::generate(rng);
    const Script redeem = make_multisig(2, {k1.public_key(), k2.public_key()});
    const Script lock = make_p2sh(redeem);

    chain::Transaction tx;
    chain::OutPoint prevout;
    prevout.txid.bytes()[0] = 7;
    tx.vin.push_back(chain::TxIn{prevout, {}, 0xffffffff});
    tx.vout.push_back(chain::TxOut{90, Script{0x51}});

    // Signatures commit to the *redeem script* as script code (standard).
    const util::Bytes sig1 = chain::sign_input(tx, 0, redeem, k1);
    const util::Bytes sig2 = chain::sign_input(tx, 0, redeem, k2);
    tx.vin[0].unlock_script = make_p2sh_unlock(make_multisig_unlock({sig1, sig2}), redeem);
    tx.invalidate_cache();

    chain::TransactionSignatureChecker checker(tx, 0);
    EXPECT_EQ(verify_script(tx.vin[0].unlock_script, lock, checker), ScriptError::kOk);

    // One signature short fails the inner CHECKMULTISIG.
    tx.vin[0].unlock_script = make_p2sh_unlock(make_multisig_unlock({sig1}), redeem);
    tx.invalidate_cache();
    chain::TransactionSignatureChecker checker2(tx, 0);
    EXPECT_NE(verify_script(tx.vin[0].unlock_script, lock, checker2), ScriptError::kOk);
}

TEST(P2sh, EmptyUnlockRejected) {
    const Script lock = make_p2sh(Script{OP_1});
    EXPECT_EQ(verify_script({}, lock, kNullChecker), ScriptError::kStackUnderflow);
}

}  // namespace
}  // namespace ebv::script
