// ebv::ibd determinism fixtures: the pipelined IBD path must accept and
// reject exactly the blocks the serial submit_block loop does — same
// connected count, same failing block, bit-for-bit the same
// EbvValidationFailure tuple — for every window size and thread count,
// including chains where a block spends an output created (or spent) by an
// earlier block inside the same lookahead window.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <span>
#include <vector>

#include "core/node.hpp"
#include "ibd/pipeline.hpp"
#include "intermediary/converter.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "workload/adversary.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

constexpr std::size_t kChainLen = 30;

workload::GeneratorOptions options_for(std::uint64_t seed) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.key_pool_size = 8;
    return options;
}

struct FinalState {
    std::size_t memory_bytes = 0;
    std::size_t vector_count = 0;
    std::uint32_t next_height = 0;
    crypto::Hash256 tip;
};

class IbdPipeline : public ::testing::Test {
protected:
    void SetUp() override {
        // The node-level entry point consults EBV_PIPELINE / _WINDOW; make
        // sure the ambient environment can't flip which path runs.
        ::unsetenv("EBV_PIPELINE");
        ::unsetenv("EBV_PIPELINE_WINDOW");

        gen_options_ = options_for(7);
        workload::ChainGenerator gen(gen_options_);
        intermediary::Converter converter;
        for (std::size_t i = 0; i < kChainLen; ++i) {
            auto converted = converter.convert_block(gen.next_block());
            ASSERT_TRUE(converted.has_value());
            chain_.push_back(*converted);
        }
    }

    ibd::BatchResult run_batch(const std::vector<core::EbvBlock>& blocks,
                               util::ThreadPool* pool, bool pipelined,
                               std::size_t window, FinalState* out = nullptr) {
        core::EbvNodeOptions options;
        options.params = gen_options_.params;
        options.validator.script_pool = pool;
        options.pipeline.enabled = pipelined;
        options.pipeline.window = window;
        core::EbvNode node(options);
        ibd::BatchResult result = node.submit_blocks(blocks);
        EXPECT_EQ(result.pipelined, pipelined);
        if (out != nullptr) {
            out->memory_bytes = node.status().memory_bytes();
            out->vector_count = node.status().vector_count();
            out->next_height = node.next_height();
            out->tip = node.headers().tip_hash();
        }
        return result;
    }

    /// Serial vs pipelined over the W × threads grid, expecting identical
    /// accept/reject behaviour and failure tuples.
    void expect_parity(const std::vector<core::EbvBlock>& blocks) {
        FinalState serial_state;
        const ibd::BatchResult serial = run_batch(blocks, nullptr, false, 1, &serial_state);

        for (const std::size_t window : {1u, 4u, 16u}) {
            for (const std::size_t threads : {1u, 2u, 8u}) {
                util::ThreadPool pool(threads);
                FinalState state;
                const ibd::BatchResult piped =
                    run_batch(blocks, &pool, true, window, &state);

                const auto label = ::testing::Message()
                                   << "window=" << window << " threads=" << threads;
                EXPECT_EQ(serial.connected, piped.connected) << label;
                ASSERT_EQ(serial.failure.has_value(), piped.failure.has_value()) << label;
                if (serial.failure.has_value()) {
                    EXPECT_EQ(serial.failure->block_index, piped.failure->block_index)
                        << label;
                    EXPECT_EQ(serial.failure->height, piped.failure->height) << label;
                    EXPECT_TRUE(serial.failure->failure == piped.failure->failure)
                        << label << " serial=" << serial.failure->failure.describe()
                        << " piped=" << piped.failure->failure.describe();
                }
                EXPECT_EQ(serial_state.memory_bytes, state.memory_bytes) << label;
                EXPECT_EQ(serial_state.vector_count, state.vector_count) << label;
                EXPECT_EQ(serial_state.next_height, state.next_height) << label;
                EXPECT_EQ(serial_state.tip, state.tip) << label;
            }
        }
    }

    /// Index of a block at or after `from` with at least one real input.
    std::size_t block_with_inputs(std::size_t from) {
        for (std::size_t i = from; i < chain_.size(); ++i)
            if (chain_[i].input_count() > 0) return i;
        ADD_FAILURE() << "no block with inputs at or after " << from;
        return from;
    }

    workload::GeneratorOptions gen_options_;
    std::vector<core::EbvBlock> chain_;
};

TEST_F(IbdPipeline, EmptyBatchIsOk) {
    util::ThreadPool pool(2);
    const ibd::BatchResult result = run_batch({}, &pool, true, 4);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.connected, 0u);
}

TEST_F(IbdPipeline, ValidChainMatchesSerialAcrossWindowsAndThreads) {
    // The whole point of the dependency tracker: the workload must actually
    // contain spends that land inside a 16-block lookahead window.
    std::uint32_t min_spend_distance = UINT32_MAX;
    for (std::size_t b = 0; b < chain_.size(); ++b) {
        for (const core::EbvTransaction& tx : chain_[b].txs) {
            for (const core::EbvInput& in : tx.inputs) {
                min_spend_distance =
                    std::min(min_spend_distance, static_cast<std::uint32_t>(b) - in.height);
            }
        }
    }
    ASSERT_LT(min_spend_distance, 16u)
        << "workload has no intra-window spend chain; pick another seed";

    const std::uint64_t windows_before =
        obs::Registry::global().counter("ebv.ibd.windows").value();
    expect_parity(chain_);
    EXPECT_GT(obs::Registry::global().counter("ebv.ibd.windows").value(), windows_before);
}

TEST_F(IbdPipeline, BadSignatureRejectsIdentically) {
    std::vector<core::EbvBlock> blocks = chain_;
    const std::size_t k = block_with_inputs(kChainLen / 2);
    for (auto& tx : blocks[k].txs) {
        if (tx.inputs.empty()) continue;
        ASSERT_GT(tx.inputs.back().unlock_script.size(), 6u);
        tx.inputs.back().unlock_script[5] ^= 0x11;
        break;
    }
    blocks[k].assign_stake_positions();

    const ibd::BatchResult serial = run_batch(blocks, nullptr, false, 1);
    ASSERT_TRUE(serial.failure.has_value());
    EXPECT_EQ(serial.failure->block_index, k);
    EXPECT_EQ(serial.failure->failure.error, core::EbvError::kScriptFailure);
    expect_parity(blocks);
}

TEST_F(IbdPipeline, ProofTamperOutranksLaterStructuralBreak) {
    // Block k carries a broken Merkle branch (EV failure); block k+1 in the
    // same window is structurally corrupt. The serial loop never reaches
    // k+1, so the pipeline must report k's existence failure even though
    // its structural pass saw k+1 first.
    std::vector<core::EbvBlock> blocks = chain_;
    const std::size_t k = block_with_inputs(kChainLen / 2);
    ASSERT_LT(k + 1, blocks.size());
    for (auto& tx : blocks[k].txs) {
        if (tx.inputs.empty()) continue;
        core::EbvInput& in = tx.inputs.front();
        if (!in.mbr.siblings.empty()) {
            in.mbr.siblings[0].bytes()[0] ^= 0x01;
        } else {
            in.els.locktime ^= 1;
        }
        break;
    }
    blocks[k].assign_stake_positions();
    blocks[k + 1].txs[0].stake_position += 7;
    blocks[k + 1].header.merkle_root = blocks[k + 1].compute_merkle_root();

    const ibd::BatchResult serial = run_batch(blocks, nullptr, false, 1);
    ASSERT_TRUE(serial.failure.has_value());
    EXPECT_EQ(serial.failure->block_index, k);
    EXPECT_EQ(serial.failure->failure.error, core::EbvError::kExistenceFailed);
    expect_parity(blocks);
}

TEST_F(IbdPipeline, CrossBlockDoubleSpendCaughtInsideWindow) {
    // Replay an input block k already spent into block k+1: with W >= 2
    // both blocks are in flight at once and only the pending-spend overlay
    // can catch it — the committed bit-vector set still shows the bit set
    // while the window validates.
    std::vector<core::EbvBlock> blocks = chain_;
    const std::size_t k = block_with_inputs(kChainLen / 2);
    const std::size_t v = block_with_inputs(k + 1);
    ASSERT_LT(v, blocks.size());

    const core::EbvInput* spent = nullptr;
    for (const auto& tx : blocks[k].txs)
        if (!tx.inputs.empty()) spent = &tx.inputs.front();
    ASSERT_NE(spent, nullptr);

    std::size_t victim_tx = 0;
    for (std::size_t t = 1; t < blocks[v].txs.size(); ++t)
        if (!blocks[v].txs[t].inputs.empty()) victim_tx = t;
    ASSERT_GT(victim_tx, 0u);
    const std::size_t victim_input = blocks[v].txs[victim_tx].inputs.size();
    blocks[v].txs[victim_tx].inputs.push_back(*spent);
    blocks[v].assign_stake_positions();

    const ibd::BatchResult serial = run_batch(blocks, nullptr, false, 1);
    ASSERT_TRUE(serial.failure.has_value());
    EXPECT_EQ(serial.failure->block_index, v);
    EXPECT_EQ(serial.failure->failure.error, core::EbvError::kUnspentFailed);
    EXPECT_EQ(serial.failure->failure.tx_index, victim_tx);
    EXPECT_EQ(serial.failure->failure.input_index, victim_input);
    expect_parity(blocks);
}

TEST_F(IbdPipeline, CrossWindowDoubleSpendRejectsIdentically) {
    // The far variant: re-spend an input the *first* spender block consumed,
    // many windows upstream of the victim. The spent bit was applied by a
    // long-committed window, so the committed bit-vector set (not the
    // pending overlay) must catch it — at every window size and thread
    // count, with the serial tuple.
    std::vector<core::EbvBlock> blocks = chain_;
    workload::Adversary adversary(3);
    std::optional<workload::AppliedMutation> applied;
    for (std::size_t target = kChainLen - 4; target < kChainLen && !applied; ++target) {
        blocks = chain_;
        applied = adversary.apply(workload::Mutation::kCrossBlockDoubleSpendFar,
                                  blocks, target);
    }
    ASSERT_TRUE(applied.has_value());
    // The mutation steals from the earliest spender; with window 16 and a
    // target in the last few blocks that distance spans window boundaries.
    ASSERT_GE(applied->block, 16u);

    const ibd::BatchResult serial = run_batch(blocks, nullptr, false, 1);
    ASSERT_TRUE(serial.failure.has_value());
    EXPECT_EQ(serial.failure->block_index, applied->block);
    EXPECT_EQ(serial.failure->failure.error, core::EbvError::kUnspentFailed);
    expect_parity(blocks);
}

TEST_F(IbdPipeline, ValueRuleFailuresRejectIdentically) {
    // Stage-3 value rules (input-sum accumulation, fee bounds, coinbase
    // payout) must report the serial tuple across the whole grid.
    for (const workload::Mutation m :
         {workload::Mutation::kNegativeFee, workload::Mutation::kCoinbaseOverpay}) {
        SCOPED_TRACE(workload::to_string(m));
        std::vector<core::EbvBlock> blocks = chain_;
        workload::Adversary adversary(4);
        std::optional<workload::AppliedMutation> applied;
        for (std::size_t target = kChainLen / 2; target < kChainLen && !applied;
             ++target) {
            blocks = chain_;
            applied = adversary.apply(m, blocks, target);
        }
        ASSERT_TRUE(applied.has_value());

        const ibd::BatchResult serial = run_batch(blocks, nullptr, false, 1);
        ASSERT_TRUE(serial.failure.has_value());
        EXPECT_EQ(serial.failure->block_index, applied->block);
        expect_parity(blocks);
    }
}

TEST_F(IbdPipeline, StructuralFailureTupleMatches) {
    std::vector<core::EbvBlock> blocks = chain_;
    const std::size_t k = kChainLen / 2;
    blocks[k].txs[0].stake_position += 7;
    blocks[k].header.merkle_root = blocks[k].compute_merkle_root();

    const ibd::BatchResult serial = run_batch(blocks, nullptr, false, 1);
    ASSERT_TRUE(serial.failure.has_value());
    EXPECT_EQ(serial.failure->block_index, k);
    EXPECT_EQ(serial.failure->failure.error, core::EbvError::kBadStakePosition);
    expect_parity(blocks);
}

TEST_F(IbdPipeline, CancelUnwindsWindowAndResumesCleanly) {
    util::ThreadPool pool(4);
    ibd::PipelineOptions options;
    options.enabled = true;
    options.window = 8;

    chain::HeaderIndex headers;
    core::BitVectorSet status;
    ibd::Pipeline pipeline(gen_options_.params, headers, status, options, &pool);

    std::size_t commits = 0;
    const ibd::BatchResult first =
        pipeline.run(std::span<const core::EbvBlock>(chain_).first(12),
                     [&](const core::EbvBlock&, std::uint32_t) {
                         if (++commits == 3) pipeline.cancel();
                     });
    EXPECT_TRUE(first.aborted);
    EXPECT_FALSE(first.failure.has_value());
    EXPECT_EQ(first.connected, 3u);
    EXPECT_EQ(headers.size(), 3u);

    // Committed blocks must be fully applied (spent bits included), so a
    // fresh run on the same state can pick up exactly where cancel() hit.
    pipeline.reset_cancel();
    const ibd::BatchResult rest =
        pipeline.run(std::span<const core::EbvBlock>(chain_).subspan(first.connected));
    EXPECT_TRUE(rest.ok());
    EXPECT_EQ(first.connected + rest.connected, chain_.size());

    FinalState serial_state;
    const ibd::BatchResult serial = run_batch(chain_, nullptr, false, 1, &serial_state);
    EXPECT_TRUE(serial.ok());
    EXPECT_EQ(status.memory_bytes(), serial_state.memory_bytes);
    EXPECT_EQ(status.vector_count(), serial_state.vector_count);
    EXPECT_EQ(headers.tip_hash(), serial_state.tip);
}

}  // namespace
}  // namespace ebv
