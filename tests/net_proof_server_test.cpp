// net::ProofServer behavior: documented error replies for unknown blocks /
// transactions / out-of-range output indices, per-peer coalescing into a
// single proof frame, correct serving under a starved cache budget (slow
// path rebuilds), and the ProofClient's end-to-end EV verification over the
// simulated transport.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "crypto/sha256.hpp"
#include "net/proof_server.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ebv::net {
namespace {

core::EbvBlock make_block(std::uint32_t height, std::size_t tx_count,
                          std::size_t outputs_per_tx) {
    core::EbvBlock block;
    core::EbvTransaction coinbase;
    coinbase.coinbase_data = {0x03, static_cast<std::uint8_t>(height), 0x00, 0x00};
    coinbase.outputs.push_back(chain::TxOut{50, util::Bytes{0x51}});
    block.txs.push_back(std::move(coinbase));
    for (std::size_t t = 1; t < tx_count; ++t) {
        core::EbvTransaction tx;
        for (std::size_t o = 0; o < outputs_per_tx; ++o) {
            tx.outputs.push_back(chain::TxOut{
                static_cast<chain::Amount>(height * 1000 + t * 10 + o),
                util::Bytes{0x76, static_cast<std::uint8_t>(t),
                            static_cast<std::uint8_t>(o)}});
        }
        block.txs.push_back(std::move(tx));
    }
    block.assign_stake_positions();
    block.header.merkle_root = block.compute_merkle_root();
    block.header.time = height;  // distinct header hash per height
    return block;
}

class VectorProofSource final : public ProofSource {
public:
    explicit VectorProofSource(std::vector<core::EbvBlock> blocks)
        : blocks_(std::move(blocks)) {
        for (std::uint32_t h = 0; h < blocks_.size(); ++h)
            height_by_hash_.emplace(blocks_[h].header.hash(), h);
    }

    [[nodiscard]] std::optional<std::uint32_t> height_of(
        const crypto::Hash256& block_hash) const override {
        const auto it = height_by_hash_.find(block_hash);
        if (it == height_by_hash_.end()) return std::nullopt;
        return it->second;
    }

    [[nodiscard]] const core::EbvBlock* block_at(std::uint32_t height) const override {
        return height < blocks_.size() ? &blocks_[height] : nullptr;
    }

    [[nodiscard]] const std::vector<core::EbvBlock>& blocks() const { return blocks_; }

private:
    std::vector<core::EbvBlock> blocks_;
    std::unordered_map<crypto::Hash256, std::uint32_t, crypto::Hash256Hasher>
        height_by_hash_;
};

/// Raw peer endpoint that records every proof frame it receives.
class TestPeer {
public:
    explicit TestPeer(SimNetwork& network) : network_(network) {
        id_ = network.add_endpoint(
            netsim::Region::kUsEast,
            [this](EndpointId, const util::Bytes& wire) { on_wire(wire); });
    }

    void query(EndpointId server, const crypto::Hash256& block_hash,
               std::vector<ProofRequest> requests) {
        GetProofMsg m;
        m.block_hash = block_hash;
        m.requests = std::move(requests);
        network_.send(id_, server, encode_message(Message{std::move(m)}));
    }

    [[nodiscard]] EndpointId id() const { return id_; }
    [[nodiscard]] const std::vector<ProofMsg>& frames() const { return frames_; }

    /// All items across all frames, in arrival order.
    [[nodiscard]] std::vector<ProofItem> items() const {
        std::vector<ProofItem> all;
        for (const ProofMsg& frame : frames_)
            all.insert(all.end(), frame.items.begin(), frame.items.end());
        return all;
    }

private:
    void on_wire(const util::Bytes& wire) {
        std::size_t offset = 0;
        while (offset < wire.size()) {
            auto decoded = decode_message(util::ByteSpan(wire).subspan(offset));
            ASSERT_TRUE(decoded.has_value());
            if (const auto* proof = std::get_if<ProofMsg>(&decoded->first))
                frames_.push_back(*proof);
            offset += decoded->second;
        }
    }

    SimNetwork& network_;
    EndpointId id_ = 0;
    std::vector<ProofMsg> frames_;
};

ProofRequest tx_request(const core::EbvTransaction& tx) {
    ProofRequest req;
    req.kind = ProofKind::kTx;
    req.txid = tx.leaf_hash();
    return req;
}

ProofRequest input_request(const core::EbvTransaction& tx, std::uint16_t out_index) {
    ProofRequest req;
    req.kind = ProofKind::kInput;
    req.txid = tx.leaf_hash();
    req.out_index = out_index;
    return req;
}

/// Full client-side check of a kOk item against the block header's root.
void expect_verifies(const ProofItem& item, const core::EbvBlock& block) {
    ASSERT_EQ(item.status, ProofStatus::kOk);
    const crypto::Hash256 leaf = crypto::Hash256::from_span(crypto::double_sha256(item.els));
    EXPECT_EQ(leaf, item.txid);
    EXPECT_EQ(crypto::fold_branch(leaf, item.mbr), block.header.merkle_root);
    util::Reader r(item.els);
    const auto tidy = core::TidyTransaction::deserialize(r);
    ASSERT_TRUE(tidy.has_value());
    EXPECT_EQ(tidy->leaf_hash(), item.txid);
}

class ProofServerTest : public ::testing::Test {
protected:
    std::vector<core::EbvBlock> make_chain(std::size_t n) {
        std::vector<core::EbvBlock> blocks;
        for (std::uint32_t h = 0; h < n; ++h)
            blocks.push_back(make_block(h, /*tx_count=*/5 + h, /*outputs_per_tx=*/3));
        return blocks;
    }
};

TEST_F(ProofServerTest, ErrorStatusesAreDocumentedReplies) {
    VectorProofSource source(make_chain(2));
    const core::EbvBlock& block = source.blocks()[1];
    const crypto::Hash256 block_hash = block.header.hash();

    SimNetwork network(7);
    ProofCache cache(64u << 20);
    ProofServer server(network, netsim::Region::kUsEast, source, cache);
    TestPeer peer(network);

    crypto::Hash256 bogus_hash;
    bogus_hash.bytes()[0] = 0xee;
    crypto::Hash256 bogus_txid;
    bogus_txid.bytes()[0] = 0xdd;
    ProofRequest unknown_tx;
    unknown_tx.txid = bogus_txid;

    // One batch mixing every failure mode with two valid requests.
    const core::EbvTransaction& tx = block.txs[2];
    peer.query(server.id(), bogus_hash, {tx_request(tx)});
    peer.query(server.id(), block_hash,
               {unknown_tx,
                input_request(tx, static_cast<std::uint16_t>(tx.outputs.size())),
                tx_request(tx), input_request(tx, 1)});
    network.run();

    const auto items = peer.items();
    ASSERT_EQ(items.size(), 5u);
    // Unknown block hash: every request in that frame answered kUnknownBlock.
    EXPECT_EQ(items[0].status, ProofStatus::kUnknownBlock);
    EXPECT_EQ(items[0].txid, tx.leaf_hash());
    // Known block, foreign txid.
    EXPECT_EQ(items[1].status, ProofStatus::kUnknownTx);
    // Known tx, out_index one past the end.
    EXPECT_EQ(items[2].status, ProofStatus::kBadIndex);
    // The valid requests in the same batch still succeed.
    expect_verifies(items[3], block);
    EXPECT_EQ(items[3].position, tx.stake_position);
    expect_verifies(items[4], block);
    EXPECT_EQ(items[4].position, tx.stake_position + 1);
    EXPECT_EQ(items[4].height, 1u);

    // Errors are counted, not dropped: the error counter moved by exactly 3.
    EXPECT_EQ(server.stats().queries, 5u);
}

TEST_F(ProofServerTest, CoalescesBurstIntoSingleFrame) {
    VectorProofSource source(make_chain(1));
    const core::EbvBlock& block = source.blocks()[0];
    const crypto::Hash256 block_hash = block.header.hash();

    SimNetwork network(11);
    ProofCache cache(64u << 20);
    ProofServerConfig config;
    // Wide window: the burst's frames arrive over real (simulated) link
    // latency and must all land inside it.
    config.coalesce_window_ns = 500'000'000;
    ProofServer server(network, netsim::Region::kUsEast, source, cache, config);
    TestPeer peer(network);

    for (std::size_t i = 0; i < block.txs.size(); ++i)
        peer.query(server.id(), block_hash, {tx_request(block.txs[i])});
    network.run();

    // One reply frame for the whole burst, with every request answered.
    ASSERT_EQ(peer.frames().size(), 1u);
    EXPECT_EQ(peer.frames()[0].items.size(), block.txs.size());
    EXPECT_EQ(peer.frames()[0].block_hash, block_hash);
    EXPECT_EQ(server.stats().batches, 1u);
    EXPECT_EQ(server.stats().queries, block.txs.size());
    for (const ProofItem& item : peer.items()) expect_verifies(item, block);
    // The whole batch cost one tree build.
    EXPECT_EQ(server.stats().rebuilds, 1u);
}

TEST_F(ProofServerTest, DistinctBlocksFlushAsDistinctFrames) {
    VectorProofSource source(make_chain(2));
    SimNetwork network(13);
    ProofCache cache(64u << 20);
    ProofServerConfig config;
    config.coalesce_window_ns = 500'000'000;
    ProofServer server(network, netsim::Region::kUsEast, source, cache, config);
    TestPeer peer(network);

    for (const core::EbvBlock& block : source.blocks())
        peer.query(server.id(), block.header.hash(), {tx_request(block.txs[0])});
    network.run();

    // Coalescing is per (peer, block): two blocks, two frames.
    ASSERT_EQ(peer.frames().size(), 2u);
    for (const ProofMsg& frame : peer.frames()) EXPECT_EQ(frame.items.size(), 1u);
}

TEST_F(ProofServerTest, TinyCacheBudgetStillServesCorrectProofs) {
    VectorProofSource source(make_chain(4));
    SimNetwork network(17);
    // A budget far below one prepared block: every entry is evicted on the
    // next insert, so all but the first query per block take the slow
    // rebuild path — and must still produce branch-perfect proofs.
    ProofCache cache(/*budget_bytes=*/256);
    ProofServer server(network, netsim::Region::kUsEast, source, cache);
    TestPeer peer(network);

    util::Rng rng(5);
    std::size_t expected_items = 0;
    // Rounds are spaced a simulated second apart so each lands in its own
    // coalescing window — otherwise one flush per block would answer all
    // three rounds with a single build.
    netsim::SimTime at = 0;
    for (int round = 0; round < 3; ++round) {
        for (const core::EbvBlock& block : source.blocks()) {
            const auto& tx = block.txs[rng.below(block.txs.size())];
            const auto out =
                static_cast<std::uint16_t>(rng.below(tx.outputs.size()));
            const crypto::Hash256 block_hash = block.header.hash();
            std::vector<ProofRequest> requests{tx_request(tx), input_request(tx, out)};
            network.defer(at, [&peer, &server, block_hash,
                               requests = std::move(requests)]() mutable {
                peer.query(server.id(), block_hash, std::move(requests));
            });
            expected_items += 2;
            at += 1'000'000'000;
        }
    }
    network.run();

    const auto items = peer.items();
    ASSERT_EQ(items.size(), expected_items);
    for (const ProofItem& item : items) {
        ASSERT_EQ(item.status, ProofStatus::kOk) << to_string(item.status);
        expect_verifies(item, source.blocks()[item.height]);
    }
    // The LRU keeps at most the most recent block under this budget, so
    // cross-block rotation forces rebuilds well past the cold-start four.
    EXPECT_LE(cache.size(), 1u);
    EXPECT_GT(server.stats().rebuilds, source.blocks().size());
}

TEST_F(ProofServerTest, WarmCacheServesWithoutRebuilding) {
    VectorProofSource source(make_chain(1));
    const core::EbvBlock& block = source.blocks()[0];
    SimNetwork network(19);
    ProofCache cache(64u << 20);
    ProofServer server(network, netsim::Region::kUsEast, source, cache);
    TestPeer peer(network);

    // Short coalescing window (default) + sequential sim-time queries:
    // every query after the first hits the prepared entry.
    for (int i = 0; i < 8; ++i)
        peer.query(server.id(), block.header.hash(), {tx_request(block.txs[1])});
    network.run();

    EXPECT_EQ(server.stats().rebuilds, 1u);
    for (const ProofItem& item : peer.items()) expect_verifies(item, block);
}

TEST_F(ProofServerTest, ClientVerifiesEndToEnd) {
    VectorProofSource source(make_chain(3));
    SimNetwork network(23);
    ProofCache cache(64u << 20);
    ProofServer server(network, netsim::Region::kUsEast, source, cache);

    std::unordered_map<crypto::Hash256, crypto::Hash256, crypto::Hash256Hasher> roots;
    for (const auto& block : source.blocks())
        roots.emplace(block.header.hash(), block.header.merkle_root);
    ProofClient client(network, netsim::Region::kUsWest, server.id(),
                       [&roots](const crypto::Hash256& h)
                           -> std::optional<crypto::Hash256> {
                           const auto it = roots.find(h);
                           if (it == roots.end()) return std::nullopt;
                           return it->second;
                       });

    std::size_t sent = 0;
    for (const core::EbvBlock& block : source.blocks()) {
        for (std::size_t t = 0; t < block.txs.size(); t += 2) {
            client.query(block.header.hash(), {tx_request(block.txs[t])});
            ++sent;
        }
    }
    network.run();

    const ProofClientStats& stats = client.stats();
    EXPECT_EQ(stats.requests_sent, sent);
    EXPECT_EQ(stats.items_ok, sent);
    EXPECT_EQ(stats.items_error, 0u);
    EXPECT_EQ(stats.verify_failures, 0u);
    ASSERT_EQ(stats.latencies_ns.size(), sent);
    // Transport latency is simulated, so every RTT is strictly positive.
    for (const netsim::SimTime l : stats.latencies_ns) EXPECT_GT(l, 0);
}

TEST_F(ProofServerTest, CacheBudgetComesFromEnvironment) {
    ::setenv("EBV_PROOF_CACHE_BYTES", "123456", 1);
    EXPECT_EQ(ProofCache::budget_from_env(), 123456u);
    ::unsetenv("EBV_PROOF_CACHE_BYTES");
    EXPECT_EQ(ProofCache::budget_from_env(), 64u << 20);
}

}  // namespace
}  // namespace ebv::net
