// Batched ECDSA verification: Montgomery batch inversion, the
// Strauss/Shamir double-scalar multiply, and crypto::verify_batch must all
// be bit-identical to their one-at-a-time counterparts — the acceptance
// criterion is a randomized 10k-signature corpus (valid and corrupted)
// whose batch verdicts match PublicKey::verify exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "crypto/batch_verify.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/hash_types.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "script/interpreter.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

namespace k1 = secp256k1;

Hash256 msg_hash(std::string_view msg) { return hash256(util::as_bytes(msg)); }

U256 random_u256(util::Rng& rng) {
    U256 v;
    for (auto& limb : v.limbs) limb = rng.next();
    return v;
}

U256 random_nonzero(util::Rng& rng, const ModArith& m) {
    for (;;) {
        const U256 v = m.reduce(random_u256(rng));
        if (!v.is_zero()) return v;
    }
}

// ---------------------------------------------------------------------------
// Montgomery batch inversion

void check_inverse_batch(const ModArith& m, std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<U256> values(n);
    for (auto& v : values) v = random_nonzero(rng, m);
    std::vector<U256> expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = m.inverse(values[i]);
    m.inverse_batch(values.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(values[i], expected[i]) << "modulus mismatch at index " << i;
    }
}

TEST(InverseBatch, MatchesScalarInverseOverField) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                std::size_t{64}}) {
        check_inverse_batch(k1::field(), n, 100 + n);
    }
}

TEST(InverseBatch, MatchesScalarInverseOverOrder) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                std::size_t{64}}) {
        check_inverse_batch(k1::order(), n, 200 + n);
    }
}

TEST(InverseBatch, EmptyIsNoop) {
    k1::field().inverse_batch(nullptr, 0);  // must not crash
}

TEST(InverseBatch, UnreducedInputsAreReducedFirst) {
    // inverse() accepts unreduced inputs (it reduces internally); the batch
    // form must agree even when a value exceeds the modulus.
    const ModArith& m = k1::order();
    U256 big = m.modulus();
    big.limbs[0] += 5;  // modulus + 5, no carry (order is far below 2^256-5)
    U256 values[2] = {big, U256::from_u64(7)};
    const U256 expected0 = m.inverse(big);
    const U256 expected1 = m.inverse(U256::from_u64(7));
    m.inverse_batch(values, 2);
    EXPECT_EQ(values[0], expected0);
    EXPECT_EQ(values[1], expected1);
}

// ---------------------------------------------------------------------------
// Strauss/Shamir double-scalar multiplication

k1::Point reference_double_mul(const k1::Point& p, const U256& u1, const U256& u2) {
    return k1::add(k1::multiply_generator(u1), k1::multiply(p, u2));
}

TEST(StraussShamir, MatchesIndependentMultiplies) {
    util::Rng rng(7);
    for (int i = 0; i < 16; ++i) {
        const PrivateKey key = PrivateKey::generate(rng);
        const k1::Point p = key.public_key().point();
        const U256 u1 = random_u256(rng);
        const U256 u2 = random_u256(rng);
        EXPECT_EQ(k1::multiply_double_generator(p, u1, u2),
                  reference_double_mul(p, u1, u2));
    }
}

TEST(StraussShamir, EdgeScalars) {
    util::Rng rng(8);
    const k1::Point p = PrivateKey::generate(rng).public_key().point();
    const U256 n = k1::order().modulus();
    U256 n_minus_1;
    u256_sub(n, U256::one(), n_minus_1);
    const U256 edges[] = {U256::zero(), U256::one(), U256::from_u64(2),
                          n_minus_1, n};
    for (const U256& u1 : edges) {
        for (const U256& u2 : edges) {
            EXPECT_EQ(k1::multiply_double_generator(p, u1, u2),
                      reference_double_mul(p, u1, u2));
        }
    }
}

TEST(StraussShamir, InfinityPointUsesOnlyGeneratorTerm) {
    util::Rng rng(9);
    const U256 u1 = random_u256(rng);
    const U256 u2 = random_u256(rng);
    EXPECT_EQ(k1::multiply_double_generator(k1::Point::at_infinity(), u1, u2),
              k1::multiply_generator(u1));
}

TEST(StraussShamir, BatchMatchesSingleCalls) {
    util::Rng rng(10);
    std::vector<k1::DoubleScalar> jobs;
    for (int i = 0; i < 9; ++i) {
        jobs.push_back({PrivateKey::generate(rng).public_key().point(),
                        random_u256(rng), random_u256(rng)});
    }
    // Mix in results that land at infinity (u1 = u2 = 0) between finite ones.
    jobs.insert(jobs.begin() + 3,
                {k1::Point::at_infinity(), U256::zero(), U256::zero()});
    std::vector<k1::Point> out(jobs.size());
    const std::size_t saved =
        k1::multiply_double_generator_batch(jobs, out.data());
    EXPECT_EQ(saved, jobs.size() - 2);  // 10 jobs, 9 finite ⇒ 8 saved
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(out[i],
                  k1::multiply_double_generator(jobs[i].p, jobs[i].u1, jobs[i].u2))
            << "batch job " << i;
    }
}

TEST(StraussShamir, BatchOfOneSavesNothing) {
    util::Rng rng(11);
    const k1::DoubleScalar job{PrivateKey::generate(rng).public_key().point(),
                               random_u256(rng), random_u256(rng)};
    k1::Point out;
    EXPECT_EQ(k1::multiply_double_generator_batch({&job, 1}, &out), 0u);
    EXPECT_EQ(out, k1::multiply_double_generator(job.p, job.u1, job.u2));
}

// ---------------------------------------------------------------------------
// verify_batch parity corpus — the PR's acceptance criterion

/// Build one corpus job, corrupting roughly a third of them across every
/// reject class verify() distinguishes.
VerifyJob make_job(util::Rng& rng, const std::vector<PrivateKey>& keys,
                   std::size_t i) {
    const PrivateKey& signer = keys[i % keys.size()];
    char tag[32];
    std::snprintf(tag, sizeof tag, "corpus message %zu", i);
    VerifyJob job;
    job.key = signer.public_key();
    job.digest = msg_hash(tag);
    job.sig = signer.sign(job.digest);

    // Rolls 0-8 pick one corruption class each; the rest (~2/3 of jobs)
    // stay valid, so both verdicts are well represented.
    switch (rng.next() % 27) {
        case 0:  // flip a bit of r
            job.sig.r.limbs[rng.next() % 4] ^= std::uint64_t{1} << (rng.next() % 64);
            break;
        case 1:  // flip a bit of s
            job.sig.s.limbs[rng.next() % 4] ^= std::uint64_t{1} << (rng.next() % 64);
            break;
        case 2:  // signature over a different digest
            job.digest = msg_hash("a different message entirely");
            break;
        case 3:  // verified against the wrong key
            job.key = keys[(i + 1) % keys.size()].public_key();
            break;
        case 4:  // early reject: s == 0
            job.sig.s = U256::zero();
            break;
        case 5:  // early reject: r == 0
            job.sig.r = U256::zero();
            break;
        case 6:  // early reject: r >= n
            job.sig.r = k1::order().modulus();
            break;
        case 7:  // early reject: invalid (default-constructed) public key
            job.key = PublicKey();
            break;
        case 8: {  // high-s variant of a valid signature: n - s
            U256 high_s;
            u256_sub(k1::order().modulus(), job.sig.s, high_s);
            job.sig.s = high_s;  // verify() accepts both s and n - s
            break;
        }
        default:
            break;  // leave valid (~2/3 of the corpus)
    }
    return job;
}

TEST(VerifyBatch, TenThousandSignatureCorpusMatchesSerialVerify) {
    util::Rng rng(4242);
    std::vector<PrivateKey> keys;
    for (int i = 0; i < 32; ++i) keys.push_back(PrivateKey::generate(rng));

    constexpr std::size_t kCorpus = 10'000;
    constexpr std::size_t kChunk = 64;  // drained in worker-sized chunks
    std::vector<VerifyJob> jobs;
    jobs.reserve(kCorpus);
    for (std::size_t i = 0; i < kCorpus; ++i) jobs.push_back(make_job(rng, keys, i));

    std::vector<bool> expected(kCorpus);
    std::size_t expected_accepts = 0;
    for (std::size_t i = 0; i < kCorpus; ++i) {
        expected[i] = jobs[i].key.verify(jobs[i].digest, jobs[i].sig);
        expected_accepts += expected[i] ? 1 : 0;
    }
    // The corruption mix must actually exercise both verdicts.
    ASSERT_GT(expected_accepts, kCorpus / 2);
    ASSERT_LT(expected_accepts, kCorpus);

    BatchVerifyStats total;
    std::vector<bool> got(kCorpus);
    bool verdicts[kChunk];
    for (std::size_t begin = 0; begin < kCorpus; begin += kChunk) {
        const std::size_t size = std::min(kChunk, kCorpus - begin);
        const BatchVerifyStats stats =
            verify_batch({jobs.data() + begin, size}, verdicts);
        EXPECT_EQ(stats.checked, size);
        total.checked += stats.checked;
        total.accepted += stats.accepted;
        total.inversions_saved += stats.inversions_saved;
        for (std::size_t k = 0; k < size; ++k) got[begin + k] = verdicts[k];
    }

    for (std::size_t i = 0; i < kCorpus; ++i) {
        EXPECT_EQ(got[i], expected[i]) << "verdict mismatch at corpus index " << i;
    }
    EXPECT_EQ(total.checked, kCorpus);
    EXPECT_EQ(total.accepted, expected_accepts);
    EXPECT_GT(total.inversions_saved, 0u);
}

TEST(VerifyBatch, AllValidBatchSavesTwoInversionsPerExtraSignature) {
    util::Rng rng(31);
    const PrivateKey key = PrivateKey::generate(rng);
    constexpr std::size_t kJobs = 8;
    std::vector<VerifyJob> jobs;
    for (std::size_t i = 0; i < kJobs; ++i) {
        const Hash256 digest = msg_hash(std::string("valid ") + std::to_string(i));
        jobs.push_back({key.public_key(), key.sign(digest), digest});
    }
    bool verdicts[kJobs];
    const BatchVerifyStats stats = verify_batch(jobs, verdicts);
    EXPECT_EQ(stats.checked, kJobs);
    EXPECT_EQ(stats.accepted, kJobs);
    // One s⁻¹ batch and one z⁻¹ batch, each saving kJobs - 1 inversions.
    EXPECT_EQ(stats.inversions_saved, 2 * (kJobs - 1));
    for (const bool v : verdicts) EXPECT_TRUE(v);
}

TEST(VerifyBatch, EmptyAndSingleBatches) {
    util::Rng rng(32);
    const PrivateKey key = PrivateKey::generate(rng);
    const Hash256 digest = msg_hash("only one");

    const BatchVerifyStats empty = verify_batch({}, nullptr);
    EXPECT_EQ(empty.checked, 0u);
    EXPECT_EQ(empty.inversions_saved, 0u);

    const VerifyJob job{key.public_key(), key.sign(digest), digest};
    bool verdict = false;
    const BatchVerifyStats one = verify_batch({&job, 1}, &verdict);
    EXPECT_TRUE(verdict);
    EXPECT_EQ(one.checked, 1u);
    EXPECT_EQ(one.accepted, 1u);
    EXPECT_EQ(one.inversions_saved, 0u);  // nothing to amortize
}

TEST(VerifyBatch, AllEarlyRejectBatch) {
    // Every job dies before the curve stage; no inversion runs at all.
    std::vector<VerifyJob> jobs(5);
    for (auto& job : jobs) job.digest = msg_hash("early");
    bool verdicts[5] = {true, true, true, true, true};
    const BatchVerifyStats stats = verify_batch(jobs, verdicts);
    EXPECT_EQ(stats.checked, 5u);
    EXPECT_EQ(stats.accepted, 0u);
    EXPECT_EQ(stats.inversions_saved, 0u);
    for (const bool v : verdicts) EXPECT_FALSE(v);
}

// ---------------------------------------------------------------------------
// DeferringSignatureChecker

/// Checker whose prepare_signature is driven by the test: pubkey bytes of
/// length 33 form a real triple, anything else refuses (forcing fallback).
class StubChecker final : public script::SignatureChecker {
public:
    StubChecker(PublicKey key, Signature sig, Hash256 digest)
        : key_(key), sig_(sig), digest_(digest) {}

    [[nodiscard]] bool check_signature(util::ByteSpan, util::ByteSpan,
                                       util::ByteSpan) const override {
        ++inline_checks_;
        return inline_verdict_;
    }

    [[nodiscard]] std::optional<VerifyJob> prepare_signature(
        util::ByteSpan, util::ByteSpan pubkey, util::ByteSpan) const override {
        if (pubkey.size() != 33) return std::nullopt;
        return VerifyJob{key_, sig_, digest_};
    }

    mutable int inline_checks_ = 0;
    bool inline_verdict_ = false;

private:
    PublicKey key_;
    Signature sig_;
    Hash256 digest_;
};

TEST(DeferringChecker, CollectsTripleAndReportsOptimisticSuccess) {
    util::Rng rng(33);
    const PrivateKey key = PrivateKey::generate(rng);
    const Hash256 digest = msg_hash("deferred");
    StubChecker inner(key.public_key(), key.sign(digest), digest);
    script::DeferringSignatureChecker deferring(inner);

    const std::uint8_t pubkey33[33] = {};
    EXPECT_TRUE(deferring.check_signature({}, {pubkey33, 33}, {}));
    EXPECT_EQ(deferring.collected().size(), 1u);
    EXPECT_EQ(inner.inline_checks_, 0);

    const VerifyJob& job = deferring.collected().front();
    EXPECT_TRUE(job.key.verify(job.digest, job.sig));
}

TEST(DeferringChecker, FallsBackToInlineWhenPrepareRefuses) {
    util::Rng rng(34);
    const PrivateKey key = PrivateKey::generate(rng);
    const Hash256 digest = msg_hash("inline");
    StubChecker inner(key.public_key(), key.sign(digest), digest);
    inner.inline_verdict_ = true;
    script::DeferringSignatureChecker deferring(inner);

    const std::uint8_t pubkey32[32] = {};  // wrong length ⇒ prepare refuses
    EXPECT_TRUE(deferring.check_signature({}, {pubkey32, 32}, {}));
    EXPECT_EQ(inner.inline_checks_, 1);
    EXPECT_TRUE(deferring.collected().empty());

    inner.inline_verdict_ = false;
    EXPECT_FALSE(deferring.check_signature({}, {pubkey32, 32}, {}));
    EXPECT_EQ(inner.inline_checks_, 2);
    EXPECT_TRUE(deferring.collected().empty());
}

}  // namespace
}  // namespace ebv::crypto
