#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/ecdsa.hpp"
#include "crypto/hash_types.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

namespace k1 = secp256k1;

Hash256 msg_hash(std::string_view msg) { return hash256(util::as_bytes(msg)); }

TEST(Secp256k1, GeneratorIsOnCurve) {
    EXPECT_TRUE(k1::generator().on_curve());
}

TEST(Secp256k1, GroupLawBasics) {
    const k1::Point g = k1::generator();
    const k1::Point g2_add = k1::add(g, g);
    const k1::Point g2_mul = k1::multiply(g, U256::from_u64(2));
    EXPECT_EQ(g2_add, g2_mul);
    EXPECT_TRUE(g2_add.on_curve());

    // Commutativity: G + 2G == 2G + G == 3G.
    const k1::Point g3a = k1::add(g, g2_add);
    const k1::Point g3b = k1::add(g2_add, g);
    EXPECT_EQ(g3a, g3b);
    EXPECT_EQ(g3a, k1::multiply(g, U256::from_u64(3)));
}

TEST(Secp256k1, AddingInverseYieldsInfinity) {
    const k1::Point g = k1::generator();
    const k1::Point sum = k1::add(g, k1::negate(g));
    EXPECT_TRUE(sum.infinity);
    // P + infinity == P.
    EXPECT_EQ(k1::add(g, k1::Point::at_infinity()), g);
}

TEST(Secp256k1, OrderTimesGeneratorIsInfinity) {
    const U256 n = k1::order().modulus();
    // n ≡ 0 (mod n) so multiply() reduces it to zero ⇒ infinity.
    EXPECT_TRUE(k1::multiply(k1::generator(), n).infinity);
    // (n-1)·G == -G.
    U256 n_minus_1;
    u256_sub(n, U256::one(), n_minus_1);
    EXPECT_EQ(k1::multiply(k1::generator(), n_minus_1), k1::negate(k1::generator()));
}

TEST(Secp256k1, GeneratorTableMatchesGenericMultiply) {
    util::Rng rng(42);
    for (int i = 0; i < 10; ++i) {
        U256 k;
        for (auto& limb : k.limbs) limb = rng.next();
        EXPECT_EQ(k1::multiply_generator(k), k1::multiply(k1::generator(), k));
    }
}

TEST(Secp256k1, MultiplyDistributesOverScalarAddition) {
    util::Rng rng(43);
    const auto& n = k1::order();
    for (int i = 0; i < 5; ++i) {
        U256 a, b;
        for (auto& limb : a.limbs) limb = rng.next();
        for (auto& limb : b.limbs) limb = rng.next();
        const U256 sum = n.add(n.reduce(a), n.reduce(b));
        const k1::Point lhs = k1::multiply_generator(sum);
        const k1::Point rhs = k1::add(k1::multiply_generator(a), k1::multiply_generator(b));
        EXPECT_EQ(lhs, rhs);
    }
}

TEST(Secp256k1, CompressedSerializationRoundTrip) {
    util::Rng rng(44);
    for (int i = 0; i < 10; ++i) {
        const PrivateKey key = PrivateKey::generate(rng);
        const k1::Point p = key.public_key().point();
        std::uint8_t buf[33];
        k1::serialize_compressed(p, buf);
        const auto parsed = k1::parse_compressed({buf, 33});
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
}

TEST(Secp256k1, ParseRejectsBadEncodings) {
    std::uint8_t buf[33] = {};
    EXPECT_FALSE(k1::parse_compressed({buf, 32}).has_value());  // short
    buf[0] = 0x04;  // uncompressed prefix unsupported in this codec
    EXPECT_FALSE(k1::parse_compressed({buf, 33}).has_value());
    buf[0] = 0x02;  // x = 0: 0³+7 = 7 is a QR? parse must verify on-curve
    const auto p = k1::parse_compressed({buf, 33});
    if (p) EXPECT_TRUE(p->on_curve());
}

TEST(Ecdsa, SignVerifyRoundTrip) {
    util::Rng rng(45);
    const PrivateKey key = PrivateKey::generate(rng);
    const PublicKey pub = key.public_key();
    const Hash256 digest = msg_hash("EBV block validation");

    const Signature sig = key.sign(digest);
    EXPECT_TRUE(sig.is_low_s());
    EXPECT_TRUE(pub.verify(digest, sig));
}

TEST(Ecdsa, VerifyRejectsTamperedMessage) {
    util::Rng rng(46);
    const PrivateKey key = PrivateKey::generate(rng);
    const Signature sig = key.sign(msg_hash("original"));
    EXPECT_FALSE(key.public_key().verify(msg_hash("tampered"), sig));
}

TEST(Ecdsa, VerifyRejectsWrongKey) {
    util::Rng rng(47);
    const PrivateKey key1 = PrivateKey::generate(rng);
    const PrivateKey key2 = PrivateKey::generate(rng);
    const Hash256 digest = msg_hash("message");
    const Signature sig = key1.sign(digest);
    EXPECT_FALSE(key2.public_key().verify(digest, sig));
}

TEST(Ecdsa, VerifyRejectsMangledSignature) {
    util::Rng rng(48);
    const PrivateKey key = PrivateKey::generate(rng);
    const Hash256 digest = msg_hash("message");
    Signature sig = key.sign(digest);

    Signature bad_r = sig;
    bad_r.r = k1::order().add(bad_r.r, U256::one());
    EXPECT_FALSE(key.public_key().verify(digest, bad_r));

    Signature zero_s = sig;
    zero_s.s = U256::zero();
    EXPECT_FALSE(key.public_key().verify(digest, zero_s));
}

TEST(Ecdsa, DeterministicSignaturesAreStable) {
    util::Rng rng(49);
    const PrivateKey key = PrivateKey::generate(rng);
    const Hash256 digest = msg_hash("same message");
    const Signature a = key.sign(digest);
    const Signature b = key.sign(digest);
    EXPECT_EQ(a.r, b.r);
    EXPECT_EQ(a.s, b.s);
}

// The widely-cited RFC 6979 secp256k1 vector: d = 1, H = SHA256("Satoshi
// Nakamoto"). Expected r/s are the low-s-normalized values.
TEST(Ecdsa, Rfc6979KnownVector) {
    std::uint8_t one[32] = {};
    one[31] = 1;
    const auto key = PrivateKey::from_bytes({one, 32});
    ASSERT_TRUE(key.has_value());

    const auto digest_arr = Sha256::hash(util::as_bytes("Satoshi Nakamoto"));
    const Hash256 digest = Hash256::from_span({digest_arr.data(), digest_arr.size()});

    const Signature sig = key->sign(digest);
    std::uint8_t r_bytes[32], s_bytes[32];
    sig.r.to_be_bytes(r_bytes);
    sig.s.to_be_bytes(s_bytes);
    EXPECT_EQ(util::hex_encode({r_bytes, 32}),
              "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8");
    EXPECT_EQ(util::hex_encode({s_bytes, 32}),
              "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5");
    EXPECT_TRUE(key->public_key().verify(digest, sig));
}

TEST(Ecdsa, DerRoundTrip) {
    util::Rng rng(50);
    for (int i = 0; i < 20; ++i) {
        const PrivateKey key = PrivateKey::generate(rng);
        const Signature sig = key.sign(msg_hash("der test"));
        const auto der = sig.to_der();
        EXPECT_GE(der.size(), 8u);
        EXPECT_LE(der.size(), 72u);
        const auto parsed = Signature::from_der(der);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->r, sig.r);
        EXPECT_EQ(parsed->s, sig.s);
    }
}

TEST(Ecdsa, DerRejectsMalformed) {
    EXPECT_FALSE(Signature::from_der({}).has_value());
    util::Rng rng(51);
    const Signature sig = PrivateKey::generate(rng).sign(msg_hash("x"));
    auto der = sig.to_der();
    der[0] = 0x31;  // wrong tag
    EXPECT_FALSE(Signature::from_der(der).has_value());
    der[0] = 0x30;
    der[1] += 1;  // wrong length
    EXPECT_FALSE(Signature::from_der(der).has_value());
}

TEST(Ecdsa, LowSBoundaryIsExactlyHalfTheOrder) {
    // n is odd, so the canonical threshold is floor(n/2) = (n-1)/2:
    // s == n/2 is the largest accepted value, n/2 + 1 the smallest rejected.
    U256 half = k1::order().modulus();
    for (int i = 0; i < 4; ++i) {
        half.limbs[i] >>= 1;
        if (i + 1 < 4) half.limbs[i] |= half.limbs[i + 1] << 63;
    }
    Signature sig{U256::one(), half};
    EXPECT_TRUE(sig.is_low_s());
    sig.s = k1::order().add(half, U256::one());
    EXPECT_FALSE(sig.is_low_s());
    // And a signature plus its negation straddle the boundary.
    util::Rng rng(53);
    const Signature low = PrivateKey::generate(rng).sign(msg_hash("low-s"));
    EXPECT_TRUE(low.is_low_s());
    const Signature high{low.r, k1::order().neg(low.s)};
    EXPECT_FALSE(high.is_low_s());
}

TEST(Ecdsa, DerRejectsEdgeCases) {
    // Baseline: minimal r = s = 1 parses.
    const std::uint8_t ok[] = {0x30, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x01};
    ASSERT_TRUE(Signature::from_der(ok).has_value());

    // Negative INTEGER (top bit set, no 0x00 pad).
    const std::uint8_t negative[] = {0x30, 0x06, 0x02, 0x01, 0x81, 0x02, 0x01, 0x01};
    EXPECT_FALSE(Signature::from_der(negative).has_value());

    // Non-minimal padding: 0x00 prefix on a byte without its top bit set.
    const std::uint8_t padded[] = {0x30, 0x07, 0x02, 0x02, 0x00,
                                   0x01, 0x02, 0x01, 0x01};
    EXPECT_FALSE(Signature::from_der(padded).has_value());

    // Trailing garbage past the two INTEGERs (outer length includes it).
    const std::uint8_t trailing[] = {0x30, 0x07, 0x02, 0x01, 0x01,
                                     0x02, 0x01, 0x01, 0x00};
    EXPECT_FALSE(Signature::from_der(trailing).has_value());

    // Zero INTEGERs: r = 0 and s = 0 are outside [1, n-1].
    const std::uint8_t zero_r[] = {0x30, 0x06, 0x02, 0x01, 0x00, 0x02, 0x01, 0x01};
    EXPECT_FALSE(Signature::from_der(zero_r).has_value());
    const std::uint8_t zero_s[] = {0x30, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x00};
    EXPECT_FALSE(Signature::from_der(zero_s).has_value());

    // 73 bytes: one past the longest legal encoding.
    std::uint8_t oversize[73] = {};
    oversize[0] = 0x30;
    oversize[1] = 71;
    EXPECT_FALSE(Signature::from_der({oversize, 73}).has_value());
}

TEST(Ecdsa, DerRejectsOutOfRangeScalars) {
    // A 33-byte padded INTEGER (0x00 + 32 value bytes, top bit set) is
    // minimally encoded, so it can carry any 256-bit value — including the
    // group order itself, which from_der must now reject at parse time.
    util::Bytes der{0x30, 0x26, 0x02, 0x21, 0x00};
    std::uint8_t n_bytes[32];
    k1::order().modulus().to_be_bytes(n_bytes);
    der.insert(der.end(), n_bytes, n_bytes + 32);  // r = n
    der.insert(der.end(), {0x02, 0x01, 0x01});     // s = 1
    ASSERT_EQ(der.size(), der[1] + 2u);
    EXPECT_FALSE(Signature::from_der(der).has_value());

    // Same shape with r = n - 1 (in range) must parse.
    U256 n_minus_1;
    u256_sub(k1::order().modulus(), U256::one(), n_minus_1);
    n_minus_1.to_be_bytes(n_bytes);
    std::copy(n_bytes, n_bytes + 32, der.begin() + 5);
    const auto parsed = Signature::from_der(der);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->r, n_minus_1);
    EXPECT_EQ(parsed->s, U256::one());
}

TEST(Ecdsa, VerifyReducesRxModOrderAndRejectsUnreducedR) {
    // verify() accepts iff reduce(R.x) == r. R.x lives in the field
    // [0, p) where p > n, so values in [n, p) must fold down by exactly n —
    // pin that reduction contract on the order arithmetic directly.
    const ModArith& n = k1::order();
    U256 x = n.modulus();
    x.limbs[0] += 5;  // n + 5 < p, representative of an unreduced R.x
    EXPECT_EQ(n.reduce(x), U256::from_u64(5));
    EXPECT_EQ(n.reduce(n.modulus()), U256::zero());

    // The flip side: a signature presenting the *unreduced* value as r is
    // outside [1, n-1] and dies in the range check, never at the curve.
    util::Rng rng(54);
    const PrivateKey key = PrivateKey::generate(rng);
    const Hash256 digest = msg_hash("reduced r");
    const Signature sig = key.sign(digest);
    ASSERT_TRUE(key.public_key().verify(digest, sig));

    Signature unreduced = sig;
    unreduced.r = n.modulus();  // smallest value reduce() would fold
    EXPECT_FALSE(key.public_key().verify(digest, unreduced));

    // High-s acceptance: verify is policy-free, so n - s also verifies.
    const Signature high{sig.r, n.neg(sig.s)};
    EXPECT_TRUE(key.public_key().verify(digest, high));
}

TEST(Ecdsa, PrivateKeyFromBytesRejectsOutOfRange) {
    std::uint8_t zero[32] = {};
    EXPECT_FALSE(PrivateKey::from_bytes({zero, 32}).has_value());

    std::uint8_t big[32];
    k1::order().modulus().to_be_bytes(big);
    EXPECT_FALSE(PrivateKey::from_bytes({big, 32}).has_value());  // == n

    EXPECT_FALSE(PrivateKey::from_bytes({zero, 31}).has_value());  // short
}

TEST(Ecdsa, PublicKeySerializeParseRoundTrip) {
    util::Rng rng(52);
    const PrivateKey key = PrivateKey::generate(rng);
    const auto bytes = key.public_key().serialize();
    EXPECT_EQ(bytes.size(), 33u);
    const auto parsed = PublicKey::parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->point(), key.public_key().point());
    EXPECT_EQ(parsed->id(), key.public_key().id());
}

}  // namespace
}  // namespace ebv::crypto
