#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

/// Every selection the current CPU supports, scalar first. Composite rows
/// (batch + SHA-NI stream) are exercised alongside the pure ones.
std::vector<std::string> available_impls() {
    std::vector<std::string> impls{"scalar"};
    if (detail::have_sse2()) impls.emplace_back("sse2");
    if (detail::have_avx2()) impls.emplace_back("avx2");
    if (detail::have_avx512()) impls.emplace_back("avx512");
    if (detail::have_shani()) {
        impls.emplace_back("sha-ni");
        if (detail::have_sse2()) impls.emplace_back("sse2+sha-ni");
        if (detail::have_avx2()) impls.emplace_back("avx2+sha-ni");
        if (detail::have_avx512()) impls.emplace_back("avx512+sha-ni");
    }
    return impls;
}

/// Restores the auto-detected implementation when a test ends.
struct ImplGuard {
    ~ImplGuard() { sha256_force_batch_impl("auto"); }
};

TEST(Sha256Batch, ForceImplRejectsUnknownNames) {
    ImplGuard guard;
    const std::string before = sha256_impl();
    EXPECT_FALSE(sha256_force_batch_impl("sha512"));
    EXPECT_FALSE(sha256_force_batch_impl("bogus"));
    EXPECT_FALSE(sha256_force_batch_impl(""));
    EXPECT_EQ(before, sha256_impl());
    EXPECT_TRUE(sha256_force_batch_impl("scalar"));
    EXPECT_STREQ(sha256_batch_impl(), "scalar");
    EXPECT_STREQ(sha256_impl(), "scalar");
    EXPECT_EQ(sha256_impl_index(), 0);
    EXPECT_TRUE(sha256_force_batch_impl("auto"));
}

TEST(Sha256Batch, ForceImplRejectsUnsupportedRows) {
    ImplGuard guard;
    // Forcing is strict: a row the CPU (or build) lacks returns false and
    // leaves the selection untouched. Supported rows always force.
    const std::string before = sha256_impl();
    if (!detail::have_shani()) {
        EXPECT_FALSE(sha256_force_batch_impl("sha-ni"));
        EXPECT_FALSE(sha256_force_batch_impl("avx2+sha-ni"));
        EXPECT_EQ(before, sha256_impl());
    }
    if (!detail::have_avx512()) {
        EXPECT_FALSE(sha256_force_batch_impl("avx512"));
        EXPECT_EQ(before, sha256_impl());
    }
    for (const auto& impl : available_impls()) {
        EXPECT_TRUE(sha256_force_batch_impl(impl)) << impl;
        EXPECT_EQ(impl, sha256_impl());
    }
}

TEST(Sha256Batch, RequestImplFallsBackGracefully) {
    ImplGuard guard;
    // Request semantics (== the EBV_SHA256_IMPL env knob): honor when
    // supported, otherwise re-detect the best available — never an error,
    // never a stale forced row.
    const std::string detected = sha256_request_impl("auto");
    EXPECT_EQ(detected, sha256_impl());

    EXPECT_EQ(detected, sha256_request_impl("definitely-not-an-isa"));

    if (!detail::have_shani()) {
        EXPECT_EQ(detected, sha256_request_impl("sha-ni"));
        EXPECT_NE("sha-ni", std::string(sha256_impl()));
    }
    if (!detail::have_avx512()) {
        EXPECT_EQ(detected, sha256_request_impl("avx512"));
    }

    for (const auto& impl : available_impls()) {
        EXPECT_EQ(impl, sha256_request_impl(impl)) << impl;
        EXPECT_EQ(impl, sha256_impl());
    }

    // Requesting scalar is always honored, and the index ids are stable.
    EXPECT_STREQ(sha256_request_impl("scalar"), "scalar");
    EXPECT_EQ(sha256_impl_index(), 0);
    EXPECT_GE(sha256_impl_index(), 0);
    EXPECT_LE(sha256_impl_index(), 7);
}

TEST(Sha256Batch, StreamingMatchesFipsVectorsOnEveryImpl) {
    ImplGuard guard;
    // Fixed vectors, independent of any code in this repo — this is what
    // catches a transform bug that self-consistency checks would miss.
    const std::string abc = "abc";
    const std::string two_block = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    const std::string million(1000000, 'a');
    struct Vector {
        const std::string* msg;
        const char* digest_hex;
    } vectors[] = {
        {&abc, "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        {&two_block, "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        {&million, "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"},
    };
    for (const auto& impl : available_impls()) {
        ASSERT_TRUE(sha256_force_batch_impl(impl)) << impl;
        for (const auto& v : vectors) {
            const auto got = Sha256::hash(
                {reinterpret_cast<const std::uint8_t*>(v.msg->data()), v.msg->size()});
            EXPECT_EQ(util::hex_encode({got.data(), got.size()}), v.digest_hex)
                << impl << " len=" << v.msg->size();
        }
        // Empty message too (padding-only block).
        const auto empty = Sha256::hash({});
        EXPECT_EQ(util::hex_encode({empty.data(), empty.size()}),
                  "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
            << impl;
    }
}

TEST(Sha256Batch, MidstateResumeMatchesDirect) {
    util::Rng rng(47);
    // Resume from a captured midstate at every block boundary of a 5-block
    // message and hash the remaining suffix; must equal the one-shot digest.
    std::vector<std::uint8_t> msg(5 * 64 + 37);
    rng.fill(msg);
    const auto want = Sha256::hash({msg.data(), msg.size()});
    for (std::size_t cut = 0; cut <= 5 * 64; cut += 64) {
        Sha256 prefix;
        prefix.update({msg.data(), cut});
        const Sha256::Midstate m = prefix.midstate();
        EXPECT_EQ(m.bytes, cut);
        Sha256 rest = Sha256::resume(m);
        rest.update({msg.data() + cut, msg.size() - cut});
        EXPECT_EQ(rest.finalize(), want) << "cut=" << cut;
    }
}

TEST(Sha256Batch, Sha256d64MatchesSingleShotOnEveryImpl) {
    ImplGuard guard;
    util::Rng rng(7);
    // Cover lane remainders around every dispatch width: 0..33 messages
    // (past 2*16 so the AVX-512 row gets full batches plus stragglers).
    // Expected digests are pinned under forced scalar so a SIMD/SHA-NI bug
    // cannot agree with itself through double_sha256.
    for (std::size_t n = 0; n <= 33; ++n) {
        std::vector<std::uint8_t> in(n * 64);
        rng.fill(in);
        std::vector<std::uint8_t> want(n * 32);
        ASSERT_TRUE(sha256_force_batch_impl("scalar"));
        for (std::size_t i = 0; i < n; ++i) {
            const auto d = double_sha256({in.data() + 64 * i, 64});
            std::memcpy(want.data() + 32 * i, d.data(), 32);
        }
        for (const auto& impl : available_impls()) {
            ASSERT_TRUE(sha256_force_batch_impl(impl)) << impl;
            std::vector<std::uint8_t> out(n * 32);
            sha256d64_many(out.data(), in.data(), n);
            EXPECT_EQ(0, std::memcmp(out.data(), want.data(), n * 32)) << impl << " n=" << n;
        }
    }
}

TEST(Sha256Batch, Sha256d64InPlace) {
    ImplGuard guard;
    util::Rng rng(11);
    for (const auto& impl : available_impls()) {
        ASSERT_TRUE(sha256_force_batch_impl(impl)) << impl;
        const std::size_t n = 29;
        std::vector<std::uint8_t> buf(n * 64);
        rng.fill(buf);
        std::vector<std::uint8_t> expected(n * 32);
        sha256d64_many(expected.data(), buf.data(), n);
        sha256d64_many(buf.data(), buf.data(), n);  // in place
        EXPECT_EQ(0, std::memcmp(buf.data(), expected.data(), n * 32)) << impl;
    }
}

TEST(Sha256Batch, VariableLengthMatchesDoubleSha256OnEveryImpl) {
    ImplGuard guard;
    util::Rng rng(23);
    // Mixed lengths spanning 1..6 padded blocks, plus empty messages, in a
    // shuffled order so the equal-block-count grouping has real work to do.
    // Enough copies that the 16-lane row forms full batches.
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t len : {0u, 1u, 31u, 55u, 56u, 64u, 100u, 119u, 120u, 128u, 200u, 300u}) {
        for (int copies = 0; copies < 6; ++copies) {
            msgs.emplace_back(len + copies);
            rng.fill(msgs.back());
        }
    }
    std::vector<util::ByteSpan> spans;
    spans.reserve(msgs.size());
    for (const auto& m : msgs) spans.emplace_back(m.data(), m.size());

    ASSERT_TRUE(sha256_force_batch_impl("scalar"));
    std::vector<Sha256::Digest> expected(msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) expected[i] = double_sha256(spans[i]);

    for (const auto& impl : available_impls()) {
        ASSERT_TRUE(sha256_force_batch_impl(impl)) << impl;
        std::vector<Sha256::Digest> got(msgs.size());
        sha256d_many(spans.data(), got.data(), msgs.size());
        for (std::size_t i = 0; i < msgs.size(); ++i)
            EXPECT_EQ(expected[i], got[i]) << impl << " i=" << i;
    }
}

TEST(Sha256Batch, ScalarBatchCoreMatchesStreaming) {
    ImplGuard guard;
    ASSERT_TRUE(sha256_force_batch_impl("scalar"));
    // Drive detail::sha256d_batch_scalar directly with hand-padded blocks.
    util::Rng rng(31);
    std::uint8_t msg[64];
    rng.fill(msg);
    std::uint8_t pad[64] = {0x80};
    pad[62] = 0x02;  // 512-bit length, big-endian
    const std::uint8_t* blocks[2] = {msg, pad};
    std::uint8_t out[32];
    detail::sha256d_batch_scalar(out, blocks, 2, 1);
    const auto want = double_sha256({msg, 64});
    EXPECT_EQ(0, std::memcmp(out, want.data(), 32));
}

}  // namespace
}  // namespace ebv::crypto
