#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

std::vector<std::string> available_impls() {
    std::vector<std::string> impls{"scalar"};
    if (detail::have_sse2()) impls.emplace_back("sse2");
    if (detail::have_avx2()) impls.emplace_back("avx2");
    return impls;
}

/// Restores the auto-detected implementation when a test ends.
struct ImplGuard {
    ~ImplGuard() { sha256_force_batch_impl("auto"); }
};

TEST(Sha256Batch, ForceImplRejectsUnknownNames) {
    ImplGuard guard;
    const std::string before = sha256_batch_impl();
    EXPECT_FALSE(sha256_force_batch_impl("sha-ni"));
    EXPECT_FALSE(sha256_force_batch_impl(""));
    EXPECT_EQ(before, sha256_batch_impl());
    EXPECT_TRUE(sha256_force_batch_impl("scalar"));
    EXPECT_STREQ(sha256_batch_impl(), "scalar");
    EXPECT_TRUE(sha256_force_batch_impl("auto"));
}

TEST(Sha256Batch, Sha256d64MatchesSingleShotOnEveryImpl) {
    ImplGuard guard;
    util::Rng rng(7);
    // Cover lane remainders around every dispatch width: 0..17 messages.
    for (const auto& impl : available_impls()) {
        ASSERT_TRUE(sha256_force_batch_impl(impl)) << impl;
        for (std::size_t n = 0; n <= 17; ++n) {
            std::vector<std::uint8_t> in(n * 64);
            rng.fill(in);
            std::vector<std::uint8_t> out(n * 32);
            sha256d64_many(out.data(), in.data(), n);
            for (std::size_t i = 0; i < n; ++i) {
                const auto want = double_sha256({in.data() + 64 * i, 64});
                EXPECT_EQ(0, std::memcmp(out.data() + 32 * i, want.data(), 32))
                    << impl << " n=" << n << " i=" << i;
            }
        }
    }
}

TEST(Sha256Batch, Sha256d64InPlace) {
    ImplGuard guard;
    util::Rng rng(11);
    for (const auto& impl : available_impls()) {
        ASSERT_TRUE(sha256_force_batch_impl(impl)) << impl;
        const std::size_t n = 13;
        std::vector<std::uint8_t> buf(n * 64);
        rng.fill(buf);
        std::vector<std::uint8_t> expected(n * 32);
        sha256d64_many(expected.data(), buf.data(), n);
        sha256d64_many(buf.data(), buf.data(), n);  // in place
        EXPECT_EQ(0, std::memcmp(buf.data(), expected.data(), n * 32)) << impl;
    }
}

TEST(Sha256Batch, VariableLengthMatchesDoubleSha256OnEveryImpl) {
    ImplGuard guard;
    util::Rng rng(23);
    // Mixed lengths spanning 1..6 padded blocks, plus empty messages, in a
    // shuffled order so the equal-block-count grouping has real work to do.
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t len : {0u, 1u, 31u, 55u, 56u, 64u, 100u, 119u, 120u, 128u, 200u, 300u}) {
        for (int copies = 0; copies < 3; ++copies) {
            msgs.emplace_back(len + copies);
            rng.fill(msgs.back());
        }
    }
    std::vector<util::ByteSpan> spans;
    spans.reserve(msgs.size());
    for (const auto& m : msgs) spans.emplace_back(m.data(), m.size());

    std::vector<Sha256::Digest> expected(msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) expected[i] = double_sha256(spans[i]);

    for (const auto& impl : available_impls()) {
        ASSERT_TRUE(sha256_force_batch_impl(impl)) << impl;
        std::vector<Sha256::Digest> got(msgs.size());
        sha256d_many(spans.data(), got.data(), msgs.size());
        for (std::size_t i = 0; i < msgs.size(); ++i)
            EXPECT_EQ(expected[i], got[i]) << impl << " i=" << i;
    }
}

TEST(Sha256Batch, ScalarBatchCoreMatchesStreaming) {
    // Drive detail::sha256d_batch_scalar directly with hand-padded blocks.
    util::Rng rng(31);
    std::uint8_t msg[64];
    rng.fill(msg);
    std::uint8_t pad[64] = {0x80};
    pad[62] = 0x02;  // 512-bit length, big-endian
    const std::uint8_t* blocks[2] = {msg, pad};
    std::uint8_t out[32];
    detail::sha256d_batch_scalar(out, blocks, 2, 1);
    const auto want = double_sha256({msg, 64});
    EXPECT_EQ(0, std::memcmp(out, want.data(), 32));
}

}  // namespace
}  // namespace ebv::crypto
