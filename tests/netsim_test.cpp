#include <gtest/gtest.h>

#include "netsim/event_queue.hpp"
#include "netsim/gossip.hpp"

namespace ebv::netsim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(5, [&] { order.push_back(1); });
    queue.schedule(5, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbacksCanScheduleMore) {
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&] {
        ++fired;
        queue.schedule(queue.now() + 1, [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 2);
}

TEST(GossipNetwork, TopologyMeetsDegreeRequirement) {
    GossipOptions options;
    options.node_count = 20;
    options.neighbors_per_node = 2;
    GossipNetwork network(options);
    for (std::size_t i = 0; i < options.node_count; ++i) {
        EXPECT_GE(network.neighbors_of(i).size(), 2u) << i;
    }
}

TEST(GossipNetwork, BlockReachesAllNodes) {
    GossipOptions options;
    options.node_count = 20;
    GossipNetwork network(options);

    const auto result = network.propagate(0, [](std::size_t) { return SimTime{1'000'000}; });
    for (std::size_t i = 0; i < options.node_count; ++i) {
        EXPECT_NE(result.receive_time[i], PropagationResult::kUnreached) << i;
    }
    EXPECT_EQ(result.receive_time[0], 0);
    EXPECT_GT(result.time_to_all(), 0);
}

TEST(GossipNetwork, FasterValidationPropagatesFaster) {
    GossipOptions options;
    options.node_count = 20;
    GossipNetwork network(options);

    // Slow nodes: 5 s per hop (Bitcoin-like); fast nodes: 0.3 s (EBV-like).
    const auto slow =
        network.propagate(0, [](std::size_t) { return SimTime{5'000'000'000}; });
    const auto fast =
        network.propagate(0, [](std::size_t) { return SimTime{300'000'000}; });
    EXPECT_LT(fast.time_to_all(), slow.time_to_all());
    EXPECT_LT(fast.time_to_fraction(0.5), slow.time_to_fraction(0.5));
}

TEST(GossipNetwork, ValidationDelayDominatesWhenLarge) {
    GossipOptions options;
    options.node_count = 10;
    GossipNetwork network(options);
    // With zero validation delay, total time is bounded by network hops
    // (~hundreds of ms); with 10 s validation it must exceed 10 s.
    const auto zero = network.propagate(0, [](std::size_t) { return SimTime{0}; });
    const auto heavy =
        network.propagate(0, [](std::size_t) { return SimTime{10'000'000'000}; });
    EXPECT_LT(zero.time_to_all(), SimTime{5'000'000'000});
    EXPECT_GT(heavy.time_to_all(), SimTime{10'000'000'000});
}

TEST(PropagationResult, FractionQueries) {
    PropagationResult result;
    result.receive_time = {0, 100, 200, 300};
    EXPECT_EQ(result.time_to_fraction(0.5), 100);
    EXPECT_EQ(result.time_to_all(), 300);
}

}  // namespace
}  // namespace ebv::netsim
