// Parity pinning for the O(n) sighash-template path (docs/CRYPTO.md):
// every digest the template produces must be bit-identical to the naive
// re-serializing signature_hash, across a randomized corpus that covers
// input counts, script sizes, and hash-type edge bytes — including the
// types the consensus path never requests (0x00, 0x80, 0xff), since the
// template widens the type byte exactly like the naive path does.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chain/sighash.hpp"
#include "chain/sighash_template.hpp"
#include "core/ebv_transaction.hpp"
#include "core/sighash_cache.hpp"
#include "crypto/parse_memo.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace ebv {
namespace {

constexpr std::uint8_t kHashTypes[] = {0x00, 0x01, 0x02, 0x03, 0x80, 0x81, 0xff};

util::Bytes random_script(util::Rng& rng, std::size_t max_len) {
    util::Bytes script(rng.below(max_len + 1));
    rng.fill({script.data(), script.size()});
    return script;
}

chain::Transaction random_transaction(util::Rng& rng, std::size_t input_count) {
    chain::Transaction tx;
    tx.version = static_cast<std::uint32_t>(rng.next());
    tx.locktime = static_cast<std::uint32_t>(rng.next());
    tx.vin.resize(input_count);
    for (auto& in : tx.vin) {
        rng.fill({in.prevout.txid.bytes().data(), 32});
        in.prevout.index = static_cast<std::uint32_t>(rng.next());
        in.sequence = static_cast<std::uint32_t>(rng.next());
        in.unlock_script = random_script(rng, 64);  // ignored by the sighash
    }
    tx.vout.resize(rng.below(9));
    for (auto& out : tx.vout) {
        out.value = static_cast<chain::Amount>(rng.below(21'000'000ull * 100'000'000ull));
        out.lock_script = random_script(rng, 120);
    }
    return tx;
}

// ≥10k digests pinning the template to the naive path bit for bit. Input
// counts sweep 1..24 so both the empty-midstate case (slot inside the
// first block) and deep multi-block prefixes are exercised.
TEST(SighashTemplate, RandomizedParityCorpus) {
    util::Rng rng(20260807);
    std::size_t digests = 0;
    for (int round = 0; digests < 10'000; ++round) {
        const std::size_t inputs = 1 + static_cast<std::size_t>(rng.below(24));
        const chain::Transaction tx = random_transaction(rng, inputs);
        const chain::SighashTemplate tpl = chain::SighashTemplate::build(tx);
        ASSERT_EQ(tpl.input_count(), inputs);

        for (std::size_t i = 0; i < inputs; ++i) {
            // A couple of script sizes per input, including empty and one
            // spanning several 64-byte blocks.
            for (const std::size_t max_len : {std::size_t{0}, std::size_t{40}, std::size_t{300}}) {
                const util::Bytes script = random_script(rng, max_len);
                const std::uint8_t ht = kHashTypes[rng.below(std::size(kHashTypes))];
                const crypto::Hash256 naive = chain::signature_hash(
                    tx, i, script, static_cast<chain::SigHashType>(ht));
                ASSERT_EQ(tpl.digest(i, script, ht), naive)
                    << "round " << round << " input " << i << " type " << int{ht};
                ++digests;
            }
        }
    }
    EXPECT_GE(digests, 10'000u);
}

// Every hash-type edge byte, on a fixed transaction, for every input.
TEST(SighashTemplate, HashTypeEdgeBytes) {
    util::Rng rng(7);
    const chain::Transaction tx = random_transaction(rng, 4);
    const chain::SighashTemplate tpl = chain::SighashTemplate::build(tx);
    const util::Bytes script = random_script(rng, 80);
    for (std::size_t i = 0; i < tx.vin.size(); ++i) {
        for (const std::uint8_t ht : kHashTypes) {
            EXPECT_EQ(tpl.digest(i, script, ht),
                      chain::signature_hash(tx, i, script, static_cast<chain::SigHashType>(ht)));
        }
    }
}

// preimage() must materialize exactly the bytes digest() hashes:
// double-SHA256 of the materialized preimage equals the midstate path.
TEST(SighashTemplate, PreimageMatchesDigest) {
    util::Rng rng(11);
    for (int round = 0; round < 50; ++round) {
        const std::size_t inputs = 1 + static_cast<std::size_t>(rng.below(12));
        const chain::Transaction tx = random_transaction(rng, inputs);
        const chain::SighashTemplate tpl = chain::SighashTemplate::build(tx);
        util::Bytes preimage;
        for (std::size_t i = 0; i < inputs; ++i) {
            const util::Bytes script = random_script(rng, 150);
            const std::uint8_t ht = kHashTypes[rng.below(std::size(kHashTypes))];
            tpl.preimage(i, script, ht, preimage);
            ASSERT_EQ(preimage.size(), tpl.preimage_size(i, script));
            const auto d = crypto::double_sha256(preimage);
            EXPECT_EQ(crypto::Hash256::from_span({d.data(), d.size()}),
                      tpl.digest(i, script, ht));
        }
    }
}

// prefix_skipped() grows with the input position and never exceeds the
// base size — the single-input case must skip (at most) nothing, which is
// what keeps 1-input transactions regression-free.
TEST(SighashTemplate, PrefixSkippedMonotone) {
    util::Rng rng(13);
    const chain::Transaction tx = random_transaction(rng, 16);
    const chain::SighashTemplate tpl = chain::SighashTemplate::build(tx);
    std::size_t prev = 0;
    for (std::size_t i = 0; i < 16; ++i) {
        const std::size_t skipped = tpl.prefix_skipped(i);
        EXPECT_GE(skipped, prev);
        EXPECT_LT(skipped, tpl.base_size());
        prev = skipped;
    }
    EXPECT_LT(tpl.prefix_skipped(0), 64u);  // first slot is inside block 0
}

core::EbvTransaction random_ebv_transaction(util::Rng& rng, std::size_t input_count) {
    core::EbvTransaction tx;
    tx.version = static_cast<std::uint32_t>(rng.next());
    tx.locktime = static_cast<std::uint32_t>(rng.next());
    tx.inputs.resize(input_count);
    for (auto& in : tx.inputs) {
        rng.fill({in.prevout.txid.bytes().data(), 32});
        in.prevout.index = static_cast<std::uint32_t>(rng.next());
        in.sequence = static_cast<std::uint32_t>(rng.next());
        in.els.outputs.resize(1 + rng.below(3));
        for (auto& out : in.els.outputs) {
            out.value = static_cast<chain::Amount>(rng.below(1'000'000));
            out.lock_script = random_script(rng, 40);
        }
        in.out_index = static_cast<std::uint16_t>(rng.below(in.els.outputs.size()));
    }
    tx.outputs.resize(rng.below(6));
    for (auto& out : tx.outputs) {
        out.value = static_cast<chain::Amount>(rng.below(1'000'000));
        out.lock_script = random_script(rng, 120);
    }
    return tx;
}

// The EBV-side cache (template + eagerly batched SIGHASH_ALL digests over
// the ELs lock scripts) must agree with ebv_signature_hash on both its
// fast paths and its fallbacks.
TEST(TxSighashCache, MatchesNaiveEbvSignatureHash) {
    util::Rng rng(17);
    for (int round = 0; round < 40; ++round) {
        const std::size_t inputs = 1 + static_cast<std::size_t>(rng.below(20));
        const core::EbvTransaction tx = random_ebv_transaction(rng, inputs);
        const core::TxSighashCache cache(tx);

        for (std::size_t i = 0; i < inputs; ++i) {
            const auto& lock = tx.inputs[i].els.outputs[tx.inputs[i].out_index].lock_script;
            // Standard request: the precomputed batch path.
            EXPECT_EQ(cache.digest(i, lock, 0x01),
                      core::ebv_signature_hash(tx, i, lock, 0x01));
            // Same script, non-standard type: template fallback.
            EXPECT_EQ(cache.digest(i, lock, 0x81),
                      core::ebv_signature_hash(tx, i, lock, 0x81));
            // Different script (a P2SH redeem script, say): template path.
            const util::Bytes redeem = random_script(rng, 90);
            EXPECT_EQ(cache.digest(i, redeem, 0x01),
                      core::ebv_signature_hash(tx, i, redeem, 0x01));
        }
        EXPECT_GT(cache.bytes_saved(), 0u);
    }
}

// Forcing every available SHA-256 row must not change template digests —
// the template sits on top of whatever transform dispatch selected.
TEST(TxSighashCache, ParityHoldsUnderEveryShaImpl) {
    util::Rng rng(19);
    const core::EbvTransaction tx = random_ebv_transaction(rng, 8);
    const util::Bytes script = random_script(rng, 60);
    const crypto::Hash256 expected = core::ebv_signature_hash(tx, 3, script, 0x01);

    const char* impls[] = {"scalar", "sse2",          "avx2",          "avx512",
                           "sha-ni", "sse2+sha-ni",   "avx2+sha-ni",   "avx512+sha-ni"};
    const char* original = crypto::sha256_batch_impl();
    for (const char* impl : impls) {
        if (!crypto::sha256_force_batch_impl(impl)) continue;  // unsupported row
        const core::TxSighashCache cache(tx);
        EXPECT_EQ(cache.digest(3, script, 0x01), expected) << impl;
    }
    ASSERT_TRUE(crypto::sha256_force_batch_impl(original));
}

// --- crypto::parse_memo -----------------------------------------------------

TEST(ParseMemo, MatchesDirectParsingAndCaches) {
    crypto::parse_memo_reset();
    util::Rng rng(23);
    const crypto::PrivateKey key = crypto::PrivateKey::generate(rng);
    const util::Bytes pub = key.public_key().serialize();

    const auto direct = crypto::PublicKey::parse(pub);
    ASSERT_TRUE(direct.has_value());

    const auto first = crypto::parse_public_key_memo(pub);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->serialize(), direct->serialize());
    const auto second = crypto::parse_public_key_memo(pub);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->serialize(), direct->serialize());

    const auto stats = crypto::parse_memo_stats();
    EXPECT_EQ(stats.pubkey_misses, 1u);
    EXPECT_EQ(stats.pubkey_hits, 1u);
}

TEST(ParseMemo, CachesNegativeResults) {
    crypto::parse_memo_reset();
    const util::Bytes junk(33, 0x5a);  // not a valid compressed point
    EXPECT_FALSE(crypto::parse_public_key_memo(junk).has_value());
    EXPECT_FALSE(crypto::parse_public_key_memo(junk).has_value());
    const auto stats = crypto::parse_memo_stats();
    EXPECT_EQ(stats.pubkey_misses, 1u);
    EXPECT_EQ(stats.pubkey_hits, 1u);
}

TEST(ParseMemo, SignatureRoundTrip) {
    crypto::parse_memo_reset();
    util::Rng rng(29);
    const crypto::PrivateKey key = crypto::PrivateKey::generate(rng);
    crypto::Hash256 digest;
    rng.fill({digest.bytes().data(), 32});
    const util::Bytes der = key.sign(digest).to_der();

    const auto direct = crypto::Signature::from_der(der);
    ASSERT_TRUE(direct.has_value());
    const auto memoized = crypto::parse_signature_der_memo(der);
    ASSERT_TRUE(memoized.has_value());
    EXPECT_TRUE(key.public_key().verify(digest, *memoized));

    (void)crypto::parse_signature_der_memo(der);
    const auto stats = crypto::parse_memo_stats();
    EXPECT_EQ(stats.sig_misses, 1u);
    EXPECT_EQ(stats.sig_hits, 1u);
}

}  // namespace
}  // namespace ebv
