// Protocol-level integration: IBD over the simulated wire, gossip relay,
// and the full three-node testbed of paper §VI-A (source → intermediary →
// EBV node) running on real messages.
#include <gtest/gtest.h>

#include "net/backends.hpp"
#include "workload/generator.hpp"

namespace ebv::net {
namespace {

workload::GeneratorOptions small_chain_options() {
    workload::GeneratorOptions options;
    options.seed = 17;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(3.0, 1.5, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.key_pool_size = 8;
    return options;
}

/// A source node pre-loaded with `count` generated blocks.
struct SeededSource {
    explicit SeededSource(SimNetwork& network, int count)
        : gen_options(small_chain_options()),
          node_options{},
          node{(node_options.params = gen_options.params, node_options)},
          backend(node),
          protocol(network, netsim::Region::kUsEast, backend, "source") {
        workload::ChainGenerator generator(gen_options);
        for (int i = 0; i < count; ++i) backend.seed_block(generator.next_block());
    }

    workload::GeneratorOptions gen_options;
    chain::BitcoinNodeOptions node_options;
    chain::BitcoinNode node;
    BitcoinChainBackend backend;
    ProtocolNode protocol;
};

TEST(NetProtocol, IbdSyncsFullChainOverWire) {
    SimNetwork network(3);
    SeededSource source(network, 30);

    chain::BitcoinNodeOptions sink_options;
    sink_options.params = source.gen_options.params;
    chain::BitcoinNode sink_node(sink_options);
    BitcoinChainBackend sink_backend(sink_node);
    ProtocolNode sink(network, netsim::Region::kEuCentral, sink_backend, "sink");

    sink.connect_to(source.protocol.id());
    network.run();

    EXPECT_EQ(sink_node.next_height(), 30u);
    EXPECT_EQ(sink.stats().blocks_connected, 30u);
    EXPECT_EQ(sink.stats().blocks_rejected, 0u);
    EXPECT_GT(sink.stats().bytes_in, 0u);
    // Connect times are monotone simulated timestamps.
    const auto& times = sink.stats().connect_times;
    ASSERT_EQ(times.size(), 30u);
    for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GE(times[i], times[i - 1]);
}

TEST(NetProtocol, GossipRelayReachesAllNodes) {
    SimNetwork network(5);
    SeededSource source(network, 12);

    // Four downstream baseline nodes in a line + one extra edge: blocks
    // must reach the far end via relay, not direct connection.
    std::vector<std::unique_ptr<chain::BitcoinNode>> nodes;
    std::vector<std::unique_ptr<BitcoinChainBackend>> backends;
    std::vector<std::unique_ptr<ProtocolNode>> protocols;
    for (int i = 0; i < 4; ++i) {
        chain::BitcoinNodeOptions options;
        options.params = source.gen_options.params;
        nodes.push_back(std::make_unique<chain::BitcoinNode>(options));
        backends.push_back(std::make_unique<BitcoinChainBackend>(*nodes.back()));
        protocols.push_back(std::make_unique<ProtocolNode>(
            network, static_cast<netsim::Region>(i % netsim::kRegionCount),
            *backends.back(), "relay-" + std::to_string(i)));
    }
    protocols[0]->connect_to(source.protocol.id());
    protocols[1]->connect_to(protocols[0]->id());
    protocols[2]->connect_to(protocols[1]->id());
    protocols[3]->connect_to(protocols[2]->id());
    network.run();

    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(nodes[i]->next_height(), 12u) << "node " << i;
    }
    // The far node received everything strictly later than the near node.
    EXPECT_GT(protocols[3]->stats().connect_times.back(),
              protocols[0]->stats().connect_times.back());
}

TEST(NetProtocol, ThreeNodeTestbedBitcoinToEbv) {
    // The paper's evaluation setup (§VI-A): a Bitcoin source node, the
    // intermediary that reconstructs inputs, and an EBV destination node —
    // all talking the wire protocol.
    SimNetwork network(7);
    SeededSource source(network, 25);

    IntermediaryBridge bridge(network, netsim::Region::kUsWest,
                              source.gen_options.params);

    core::EbvNodeOptions ebv_options;
    ebv_options.params = source.gen_options.params;
    core::EbvNode ebv_node(ebv_options);
    EbvChainBackend ebv_backend(ebv_node);
    ProtocolNode ebv_protocol(network, netsim::Region::kApTokyo, ebv_backend, "ebv");

    bridge.upstream().connect_to(source.protocol.id());
    ebv_protocol.connect_to(bridge.downstream().id());
    network.run();

    EXPECT_EQ(bridge.converted_blocks(), 25u);
    EXPECT_EQ(ebv_node.next_height(), 25u);
    EXPECT_EQ(ebv_protocol.stats().blocks_rejected, 0u);
    EXPECT_GT(ebv_node.status_memory_bytes(), 0u);
}

TEST(NetProtocol, LateJoinerCatchesUpFromEbvPeer) {
    // EBV-to-EBV sync: once a node has the converted chain it can serve
    // other EBV nodes directly (no intermediary needed downstream).
    SimNetwork network(9);
    SeededSource source(network, 15);
    IntermediaryBridge bridge(network, netsim::Region::kUsWest,
                              source.gen_options.params);

    core::EbvNodeOptions options;
    options.params = source.gen_options.params;
    core::EbvNode first_node(options);
    EbvChainBackend first_backend(first_node);
    ProtocolNode first(network, netsim::Region::kEuCentral, first_backend, "ebv-1");

    bridge.upstream().connect_to(source.protocol.id());
    first.connect_to(bridge.downstream().id());
    network.run();
    ASSERT_EQ(first_node.next_height(), 15u);

    core::EbvNode second_node(options);
    EbvChainBackend second_backend(second_node);
    ProtocolNode second(network, netsim::Region::kApSydney, second_backend, "ebv-2");
    second.connect_to(first.id());
    network.run();

    EXPECT_EQ(second_node.next_height(), 15u);
    EXPECT_EQ(second.stats().blocks_rejected, 0u);
}

TEST(NetProtocol, MismatchedFormatsDoNotHandshake) {
    SimNetwork network(1);
    SeededSource source(network, 5);

    core::EbvNodeOptions options;
    options.params = source.gen_options.params;
    core::EbvNode ebv_node(options);
    EbvChainBackend backend(ebv_node);
    ProtocolNode ebv(network, netsim::Region::kUsEast, backend, "ebv");

    ebv.connect_to(source.protocol.id());  // EBV client, Bitcoin server
    network.run();

    EXPECT_EQ(ebv_node.next_height(), 0u);
    EXPECT_EQ(ebv.stats().blocks_connected, 0u);
}

}  // namespace
}  // namespace ebv::net
