#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "util/env.hpp"
#include "util/hex.hpp"
#include "util/lru.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/thread_pool.hpp"

namespace ebv::util {
namespace {

TEST(Hex, EncodeDecodeRoundTrip) {
    const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
    const std::string hex = hex_encode(data);
    EXPECT_EQ(hex, "0001abff7f");
    const auto decoded = hex_decode(hex);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(Hex, DecodeAcceptsUppercase) {
    const auto decoded = hex_decode("ABCDEF");
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Hex, DecodeRejectsMalformed) {
    EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
    EXPECT_FALSE(hex_decode("zz").has_value());    // non-hex
    EXPECT_TRUE(hex_decode("").has_value());       // empty is valid
}

TEST(Serialize, FixedWidthRoundTrip) {
    Writer w;
    w.u8(0x12);
    w.u16(0x3456);
    w.u32(0x789abcde);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);

    Reader r(w.data());
    EXPECT_EQ(r.u8().value(), 0x12);
    EXPECT_EQ(r.u16().value(), 0x3456);
    EXPECT_EQ(r.u32().value(), 0x789abcdeu);
    EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64().value(), -42);
    EXPECT_TRUE(r.empty());
}

TEST(Serialize, ReadPastEndIsTruncated) {
    Writer w;
    w.u16(7);
    Reader r(w.data());
    EXPECT_TRUE(r.u8().has_value());
    auto v = r.u32();
    ASSERT_FALSE(v.has_value());
    EXPECT_EQ(v.error(), DecodeError::kTruncated);
}

class CompactSizeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactSizeRoundTrip, RoundTrips) {
    Writer w;
    w.compact_size(GetParam());
    Reader r(w.data());
    auto v = r.compact_size();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, GetParam());
    EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, CompactSizeRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 0xfcULL, 0xfdULL, 0xffffULL,
                                           0x10000ULL, 0xffffffffULL, 0x100000000ULL,
                                           0xffffffffffffffffULL));

TEST(Serialize, NonCanonicalCompactSizeRejected) {
    // 0xfd prefix encoding a value that fits in one byte.
    const Bytes evil = {0xfd, 0x10, 0x00};
    Reader r(evil);
    auto v = r.compact_size();
    ASSERT_FALSE(v.has_value());
    EXPECT_EQ(v.error(), DecodeError::kNonCanonical);
}

TEST(Serialize, VarBytesHonorsLimit) {
    Writer w;
    w.var_bytes(Bytes(100, 0xaa));
    Reader r(w.data());
    auto v = r.var_bytes(/*limit=*/10);
    ASSERT_FALSE(v.has_value());
    EXPECT_EQ(v.error(), DecodeError::kOversizedField);
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        const auto v = rng.between(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, Uniform01InUnitInterval) {
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyRight) {
    Rng rng(11);
    double sum = 0;
    const int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(rng.geometric_at_least_one(3.0));
    EXPECT_NEAR(sum / kSamples, 3.0, 0.15);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
    LruMap<int, std::string> lru(3);
    lru.put(1, "a", 1);
    lru.put(2, "b", 1);
    lru.put(3, "c", 1);
    ASSERT_NE(lru.get(1), nullptr);  // refresh 1
    lru.put(4, "d", 1);              // evicts 2
    EXPECT_EQ(lru.get(2), nullptr);
    EXPECT_NE(lru.get(1), nullptr);
    EXPECT_NE(lru.get(3), nullptr);
    EXPECT_NE(lru.get(4), nullptr);
}

TEST(Lru, CostAccountingDrivesEviction) {
    LruMap<int, int> lru(100);
    lru.put(1, 10, 60);
    lru.put(2, 20, 60);  // total 120 > 100, evicts 1
    EXPECT_EQ(lru.get(1), nullptr);
    EXPECT_NE(lru.get(2), nullptr);
    EXPECT_EQ(lru.total_cost(), 60u);
}

TEST(Lru, EvictionHandlerObservesWriteBack) {
    std::vector<int> evicted;
    LruMap<int, int> lru(2);
    lru.set_eviction_handler([&](const int& k, int&) { evicted.push_back(k); });
    lru.put(1, 1, 1);
    lru.put(2, 2, 1);
    lru.put(3, 3, 1);
    EXPECT_EQ(evicted, (std::vector<int>{1}));
    lru.clear();
    EXPECT_EQ(evicted.size(), 3u);
}

TEST(Lru, OversizedSingleEntryStaysResident) {
    LruMap<int, int> lru(10);
    lru.put(1, 1, 100);  // over budget but must stay usable
    EXPECT_NE(lru.get(1), nullptr);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(100,
                                   [](std::size_t i) {
                                       if (i == 57) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
    ThreadPool pool(2);
    pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(Env, ThreadSweepCountsAreSortedAndDeduplicated) {
    using Counts = std::vector<std::size_t>;
    // Bench sweeps must never emit two rows for one thread count, even when
    // hardware_concurrency or EBV_THREADS collides with the {1,2,4} base.
    EXPECT_EQ(thread_sweep_counts(0, 0), (Counts{1, 2, 4}));
    EXPECT_EQ(thread_sweep_counts(4, 0), (Counts{1, 2, 4}));
    EXPECT_EQ(thread_sweep_counts(1, 2), (Counts{1, 2, 4}));
    EXPECT_EQ(thread_sweep_counts(8, 0), (Counts{1, 2, 4, 8}));
    EXPECT_EQ(thread_sweep_counts(8, 8), (Counts{1, 2, 4, 8}));
    EXPECT_EQ(thread_sweep_counts(8, 16), (Counts{1, 2, 4, 8, 16}));
    EXPECT_EQ(thread_sweep_counts(16, 8), (Counts{1, 2, 4, 8, 16}));
    EXPECT_EQ(thread_sweep_counts(3, 6), (Counts{1, 2, 3, 4, 6}));
}

}  // namespace
}  // namespace ebv::util
