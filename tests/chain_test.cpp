#include <gtest/gtest.h>

#include <map>

#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/sighash.hpp"
#include "chain/transaction.hpp"
#include "chain/utxo_set.hpp"
#include "chain/validation.hpp"
#include "script/standard.hpp"
#include "storage/mem_kvstore.hpp"
#include "util/rng.hpp"

namespace ebv::chain {
namespace {

Transaction random_tx(util::Rng& rng, std::size_t inputs, std::size_t outputs) {
    Transaction tx;
    for (std::size_t i = 0; i < inputs; ++i) {
        OutPoint prevout;
        rng.fill({prevout.txid.bytes().data(), 32});
        prevout.index = static_cast<std::uint32_t>(rng.below(10));
        util::Bytes script(rng.between(1, 100));
        rng.fill(script);
        tx.vin.push_back(TxIn{prevout, std::move(script),
                              static_cast<std::uint32_t>(rng.next())});
    }
    for (std::size_t o = 0; o < outputs; ++o) {
        util::Bytes script(rng.between(1, 60));
        rng.fill(script);
        tx.vout.push_back(
            TxOut{static_cast<Amount>(rng.below(kMaxMoney / 4)), std::move(script)});
    }
    return tx;
}

class TxSerializationRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TxSerializationRoundTrip, RoundTrips) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam().first * 31 + GetParam().second));
    const Transaction tx = random_tx(rng, static_cast<std::size_t>(GetParam().first),
                                     static_cast<std::size_t>(GetParam().second));
    util::Writer w;
    tx.serialize(w);
    util::Reader r(w.data());
    auto decoded = Transaction::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, tx);
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(decoded->txid(), tx.txid());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TxSerializationRoundTrip,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 3},
                                           std::pair{5, 2}, std::pair{20, 20},
                                           std::pair{1, 50}));

TEST(Transaction, TxidChangesWithContent) {
    util::Rng rng(7);
    Transaction tx = random_tx(rng, 2, 2);
    const auto id1 = tx.txid();
    tx.vout[0].value ^= 1;
    tx.invalidate_cache();
    EXPECT_NE(tx.txid(), id1);
}

TEST(Transaction, CoinbaseDetection) {
    Transaction cb = make_coinbase(5, 50 * kCoin, script::Script{0x51});
    EXPECT_TRUE(cb.is_coinbase());
    util::Rng rng(8);
    EXPECT_FALSE(random_tx(rng, 1, 1).is_coinbase());
}

TEST(Transaction, DeserializeRejectsTruncation) {
    util::Rng rng(9);
    const Transaction tx = random_tx(rng, 2, 2);
    util::Writer w;
    tx.serialize(w);
    for (std::size_t cut : {1ul, 10ul, w.size() - 1}) {
        util::Reader r(util::ByteSpan(w.data()).first(cut));
        EXPECT_FALSE(Transaction::deserialize(r).has_value()) << "cut " << cut;
    }
}

TEST(Block, SerializationRoundTrip) {
    util::Rng rng(10);
    Block block;
    block.header.prev_hash = crypto::Hash256{};
    block.txs.push_back(make_coinbase(0, 50 * kCoin, script::Script{0x51}));
    block.txs.push_back(random_tx(rng, 2, 3));
    block.header.merkle_root = block.compute_merkle_root();

    util::Writer w;
    block.serialize(w);
    util::Reader r(w.data());
    auto decoded = Block::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->header, block.header);
    EXPECT_EQ(decoded->txs.size(), 2u);
    EXPECT_EQ(decoded->compute_merkle_root(), block.compute_merkle_root());
}

TEST(Block, CountsInputsAndOutputs) {
    util::Rng rng(11);
    Block block;
    block.txs.push_back(make_coinbase(0, 50 * kCoin, script::Script{0x51}));
    block.txs.push_back(random_tx(rng, 3, 2));
    block.txs.push_back(random_tx(rng, 1, 4));
    EXPECT_EQ(block.input_count(), 4u);   // coinbase input not counted
    EXPECT_EQ(block.output_count(), 7u);  // coinbase output counted
}

TEST(Params, SubsidyHalves) {
    ChainParams params;
    params.initial_subsidy = 50 * kCoin;
    params.halving_interval = 10;
    EXPECT_EQ(params.subsidy_at(0), 50 * kCoin);
    EXPECT_EQ(params.subsidy_at(9), 50 * kCoin);
    EXPECT_EQ(params.subsidy_at(10), 25 * kCoin);
    EXPECT_EQ(params.subsidy_at(20), 25 * kCoin / 2);
    EXPECT_EQ(params.subsidy_at(10 * 64), 0);
}

TEST(Miner, PowGrindsWhenRequested) {
    MinerOptions options;
    options.pow_leading_zero_bits = 8;
    const Block block = assemble_block(crypto::Hash256{},
                                       make_coinbase(0, 50 * kCoin, script::Script{0x51}),
                                       {}, 0, options);
    EXPECT_TRUE(check_pow(block.header, 8));
    EXPECT_EQ(block.header.hash().bytes()[31], 0);  // top display byte zero
}

TEST(Coin, SerializationRoundTrip) {
    Coin coin{12345, 77, true, script::Script{1, 2, 3}};
    const util::Bytes encoded = coin.encode();
    util::Reader r(encoded);
    auto decoded = Coin::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, coin);
}

TEST(UtxoSet, FetchSpendAdd) {
    storage::MemKvStore store;
    storage::StatusDb db(store);
    UtxoSet utxo(db);

    OutPoint op;
    op.txid.bytes()[0] = 1;
    op.index = 2;

    EXPECT_FALSE(utxo.fetch(op).has_value());
    utxo.add(op, Coin{100, 5, false, script::Script{0x51}});
    const auto coin = utxo.fetch(op);
    ASSERT_TRUE(coin.has_value());
    EXPECT_EQ(coin->value, 100);
    EXPECT_TRUE(utxo.spend(op));
    EXPECT_FALSE(utxo.fetch(op).has_value());
    EXPECT_FALSE(utxo.spend(op));
}

TEST(Sighash, SignatureVerifiesThroughScriptVm) {
    util::Rng rng(12);
    const auto key = crypto::PrivateKey::generate(rng);
    const script::Script lock = script::make_p2pkh(key.public_key().id());

    Transaction tx;
    OutPoint prevout;
    prevout.txid.bytes()[3] = 9;
    tx.vin.push_back(TxIn{prevout, {}, 0xffffffff});
    tx.vout.push_back(TxOut{50, script::Script{0x51}});

    const util::Bytes sig = sign_input(tx, 0, lock, key);
    tx.vin[0].unlock_script = script::make_p2pkh_unlock(sig, key.public_key());

    TransactionSignatureChecker checker(tx, 0);
    EXPECT_EQ(script::verify_script(tx.vin[0].unlock_script, lock, checker),
              script::ScriptError::kOk);

    // Changing an output invalidates the signature.
    tx.vout[0].value = 51;
    EXPECT_EQ(script::verify_script(tx.vin[0].unlock_script, lock, checker),
              script::ScriptError::kEvalFalse);
}

// ---------------------------------------------------------------------------
// Validator tests on a hand-built mini chain.
// ---------------------------------------------------------------------------

class ValidatorTest : public ::testing::Test {
protected:
    ValidatorTest()
        : db_(store_), utxo_(db_), key_(crypto::PrivateKey::generate(rng_)) {
        params_.coinbase_maturity = 2;
        params_.initial_subsidy = 50 * kCoin;
    }

    script::Script lock() const { return script::make_p2pkh(key_.public_key().id()); }

    Block make_block(std::vector<Transaction> txs, Amount coinbase_value) {
        Block block = assemble_block(
            tip_, make_coinbase(height_, coinbase_value, lock()), std::move(txs),
            height_ * 600);
        return block;
    }

    util::Result<BlockTimings, ValidationFailure> connect(const Block& block) {
        BitcoinValidator validator(params_, utxo_);
        auto result = validator.connect_block(block, height_);
        if (result) {
            tip_ = block.header.hash();
            ++height_;
        }
        return result;
    }

    /// Build and connect `count` empty blocks (coinbase only).
    void mine_empty(int count) {
        for (int i = 0; i < count; ++i) {
            auto result = connect(make_block({}, params_.subsidy_at(height_)));
            ASSERT_TRUE(result.has_value()) << result.error().describe();
        }
    }

    /// A transaction spending the coinbase of block `h`.
    Transaction spend_coinbase_of(std::uint32_t h, Amount out_value) {
        Transaction tx;
        tx.vin.push_back(TxIn{OutPoint{coinbase_txids_.at(h), 0}, {}, 0xffffffff});
        tx.vout.push_back(TxOut{out_value, lock()});
        const util::Bytes sig = sign_input(tx, 0, lock(), key_);
        tx.vin[0].unlock_script = script::make_p2pkh_unlock(sig, key_.public_key());
        tx.invalidate_cache();
        return tx;
    }

    util::Rng rng_{42};
    ChainParams params_;
    storage::MemKvStore store_;
    storage::StatusDb db_;
    UtxoSet utxo_;
    crypto::PrivateKey key_;
    crypto::Hash256 tip_;
    std::uint32_t height_ = 0;
    std::map<std::uint32_t, crypto::Hash256> coinbase_txids_;

    util::Result<BlockTimings, ValidationFailure> connect_tracking(Block block) {
        coinbase_txids_[height_] = block.txs[0].txid();
        return connect(block);
    }
};

TEST_F(ValidatorTest, AcceptsValidChainWithSpends) {
    for (int i = 0; i < 3; ++i) {
        auto r = connect_tracking(make_block({}, params_.subsidy_at(height_)));
        ASSERT_TRUE(r.has_value()) << r.error().describe();
    }
    // Height 3: spend block 0's coinbase (mature: 0 + 2 <= 3).
    auto r = connect_tracking(
        make_block({spend_coinbase_of(0, 50 * kCoin)}, params_.subsidy_at(height_)));
    ASSERT_TRUE(r.has_value()) << r.error().describe();
    EXPECT_EQ(r->inputs, 1u);
    EXPECT_EQ(utxo_.size(), 4u);  // 4 coinbases + 1 spend output - 1 spent
}

TEST_F(ValidatorTest, RejectsDoubleSpendAcrossBlocks) {
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(connect_tracking(make_block({}, params_.subsidy_at(height_))));
    }
    ASSERT_TRUE(connect_tracking(
        make_block({spend_coinbase_of(0, 50 * kCoin)}, params_.subsidy_at(height_))));

    // A byte-identical replay of the first spend is caught earlier, by the
    // BIP30-style duplicate-txid rule: its outputs still sit in the UTXO
    // set, so connecting it would silently overwrite them.
    auto replay = connect(make_block({spend_coinbase_of(0, 50 * kCoin)},
                                     params_.subsidy_at(height_)));
    ASSERT_FALSE(replay.has_value());
    EXPECT_EQ(replay.error().error, BlockError::kDuplicateTxid);

    // A distinct transaction (different txid) re-spending the same outpoint
    // is the actual double spend.
    auto r = connect(make_block({spend_coinbase_of(0, 49 * kCoin)},
                                params_.subsidy_at(height_)));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kMissingOrSpentOutput);
}

TEST_F(ValidatorTest, RejectsDoubleSpendWithinBlock) {
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(connect_tracking(make_block({}, params_.subsidy_at(height_))));
    }
    // Distinct transactions (different outputs) spending the same outpoint.
    auto r = connect(make_block(
        {spend_coinbase_of(0, 25 * kCoin), spend_coinbase_of(0, 20 * kCoin)},
        params_.subsidy_at(height_)));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kMissingOrSpentOutput);

    // Byte-identical duplicates are caught even earlier.
    auto dup = connect(make_block(
        {spend_coinbase_of(0, 25 * kCoin), spend_coinbase_of(0, 25 * kCoin)},
        params_.subsidy_at(height_)));
    ASSERT_FALSE(dup.has_value());
    EXPECT_EQ(dup.error().error, BlockError::kDuplicateTxid);
}

TEST_F(ValidatorTest, RejectsImmatureCoinbaseSpend) {
    ASSERT_TRUE(connect_tracking(make_block({}, 50 * kCoin)));
    ASSERT_TRUE(connect_tracking(make_block({}, 50 * kCoin)));
    // Height 2 tries to spend block 1's coinbase (needs height >= 3).
    auto r = connect(make_block({spend_coinbase_of(1, 50 * kCoin)}, 50 * kCoin));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kImmatureCoinbaseSpend);
}

TEST_F(ValidatorTest, RejectsBadSignature) {
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(connect_tracking(make_block({}, params_.subsidy_at(height_))));
    }
    Transaction tx = spend_coinbase_of(0, 50 * kCoin);
    // Corrupt the signature.
    tx.vin[0].unlock_script[3] ^= 0x40;
    tx.invalidate_cache();
    auto r = connect(make_block({tx}, params_.subsidy_at(height_)));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kScriptFailure);
}

TEST_F(ValidatorTest, RejectsMerkleMismatch) {
    Block block = make_block({}, 50 * kCoin);
    block.header.merkle_root.bytes()[0] ^= 1;
    auto r = connect(block);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kMerkleRootMismatch);
}

TEST_F(ValidatorTest, RejectsExcessCoinbaseValue) {
    auto r = connect(make_block({}, 51 * kCoin));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kCoinbaseValueTooHigh);
}

TEST_F(ValidatorTest, RejectsNegativeFee) {
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(connect_tracking(make_block({}, params_.subsidy_at(height_))));
    }
    auto r = connect(make_block({spend_coinbase_of(0, 60 * kCoin)},  // > input value
                                params_.subsidy_at(height_)));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kNegativeFee);
}

TEST_F(ValidatorTest, RejectsNonCoinbaseFirst) {
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(connect_tracking(make_block({}, params_.subsidy_at(height_))));
    }
    Block block;
    block.header.prev_hash = tip_;
    block.txs.push_back(spend_coinbase_of(0, kCoin));
    block.header.merkle_root = block.compute_merkle_root();
    auto r = connect(block);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().error, BlockError::kFirstTxNotCoinbase);
}

TEST_F(ValidatorTest, FailureLeavesUtxoSetUntouched) {
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(connect_tracking(make_block({}, params_.subsidy_at(height_))));
    }
    const auto size_before = utxo_.size();
    Transaction tx = spend_coinbase_of(0, 50 * kCoin);
    tx.vin[0].unlock_script[3] ^= 0x40;  // bad signature
    tx.invalidate_cache();
    ASSERT_FALSE(connect(make_block({tx}, params_.subsidy_at(height_))));
    EXPECT_EQ(utxo_.size(), size_before);
    // The coinbase of block 0 must still be spendable.
    auto r = connect_tracking(
        make_block({spend_coinbase_of(0, 50 * kCoin)}, params_.subsidy_at(height_)));
    EXPECT_TRUE(r.has_value()) << r.error().describe();
}

TEST(BitcoinNode, EndToEndInMemory) {
    BitcoinNodeOptions options;
    options.params.coinbase_maturity = 1;
    BitcoinNode node(options);

    util::Rng rng(5);
    const auto key = crypto::PrivateKey::generate(rng);
    const auto lock = script::make_p2pkh(key.public_key().id());

    Block b0 = assemble_block(crypto::Hash256{}, make_coinbase(0, 50 * kCoin, lock), {}, 0);
    auto r0 = node.submit_block(b0);
    ASSERT_TRUE(r0.has_value()) << r0.error().describe();
    EXPECT_EQ(node.next_height(), 1u);
    EXPECT_EQ(node.utxo().size(), 1u);
    EXPECT_GT(node.status_payload_bytes(), 0u);
}

}  // namespace
}  // namespace ebv::chain
