#include <gtest/gtest.h>

#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace ebv::crypto {
namespace {

std::vector<Hash256> random_leaves(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<Hash256> leaves(n);
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), leaf.bytes().size()});
    return leaves;
}

TEST(Merkle, SingleLeafRootIsLeaf) {
    const auto leaves = random_leaves(1, 1);
    EXPECT_EQ(merkle_root(leaves), leaves[0]);
}

TEST(Merkle, EmptyRootIsZero) {
    EXPECT_TRUE(merkle_root({}).is_zero());
}

TEST(Merkle, TwoLeavesMatchManualPairHash) {
    const auto leaves = random_leaves(2, 2);
    util::Bytes concat;
    concat.insert(concat.end(), leaves[0].span().begin(), leaves[0].span().end());
    concat.insert(concat.end(), leaves[1].span().begin(), leaves[1].span().end());
    const auto expected = hash256(concat);
    EXPECT_EQ(merkle_root(leaves), expected);
}

TEST(Merkle, OddLevelDuplicatesLastNode) {
    // With 3 leaves, the last leaf pairs with itself: root over {a,b,c}
    // equals root over {a,b,c,c}.
    const auto leaves3 = random_leaves(3, 3);
    auto leaves4 = leaves3;
    leaves4.push_back(leaves3[2]);
    EXPECT_EQ(merkle_root(leaves3), merkle_root(leaves4));
}

TEST(Merkle, RootChangesWhenAnyLeafChanges) {
    auto leaves = random_leaves(8, 4);
    const auto root = merkle_root(leaves);
    leaves[5].bytes()[0] ^= 1;
    EXPECT_NE(merkle_root(leaves), root);
}

// Property: for every tree size and every leaf position, the branch folds
// back to the root — and fails for a tampered leaf.
class MerkleBranchProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleBranchProperty, EveryPositionProvesMembership) {
    const std::size_t n = GetParam();
    const auto leaves = random_leaves(n, 100 + n);
    const auto root = merkle_root(leaves);

    for (std::uint32_t i = 0; i < n; ++i) {
        const auto branch = merkle_branch(leaves, i);
        EXPECT_EQ(fold_branch(leaves[i], branch), root) << "position " << i;

        Hash256 tampered = leaves[i];
        tampered.bytes()[7] ^= 0x80;
        EXPECT_NE(fold_branch(tampered, branch), root) << "position " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleBranchProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100, 255));

TEST(MerkleBranch, WrongIndexFailsToProve) {
    const auto leaves = random_leaves(16, 5);
    const auto root = merkle_root(leaves);
    auto branch = merkle_branch(leaves, 3);
    branch.index = 4;  // claim a different position
    EXPECT_NE(fold_branch(leaves[3], branch), root);
}

TEST(MerkleBranch, DepthIsLogarithmic) {
    const auto leaves = random_leaves(1000, 6);
    const auto branch = merkle_branch(leaves, 999);
    EXPECT_EQ(branch.siblings.size(), 10u);  // ceil(log2(1000))
}

TEST(MerkleBranch, SerializationRoundTrip) {
    const auto leaves = random_leaves(20, 7);
    const auto branch = merkle_branch(leaves, 13);

    util::Writer w;
    branch.serialize(w);
    util::Reader r(w.data());
    auto decoded = MerkleBranch::deserialize(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, branch);
    EXPECT_TRUE(r.empty());
}

TEST(MerkleBranch, DeserializeRejectsAbsurdDepth) {
    util::Writer w;
    w.compact_size(1000);  // deeper than any valid tree
    util::Reader r(w.data());
    auto decoded = MerkleBranch::deserialize(r);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), util::DecodeError::kOversizedField);
}

}  // namespace
}  // namespace ebv::crypto
