// MerkleTreeCache: parity with the direct hashing algorithm (bit-identical
// roots and branches, including duplicated-odd-tail levels), and the
// tentpole property the proof server relies on — extracting a branch from
// a built cache performs ZERO SHA-256 work, asserted through the
// ebv.crypto.* hash counters.
#include <gtest/gtest.h>

#include <cstring>

#include "crypto/merkle.hpp"
#include "crypto/merkle_cache.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ebv::crypto {
namespace {

Hash256 pair_hash(const Hash256& left, const Hash256& right) {
    std::uint8_t pair[64];
    std::memcpy(pair, left.bytes().data(), 32);
    std::memcpy(pair + 32, right.bytes().data(), 32);
    return Hash256::from_span(double_sha256(pair));
}

/// The pre-cache algorithm: hash the tree level by level, collecting the
/// proven leaf's sibling at each step. The cache must reproduce its output
/// bit for bit.
MerkleBranch reference_branch(std::vector<Hash256> level, std::uint32_t index) {
    MerkleBranch branch;
    branch.index = index;
    std::uint32_t pos = index;
    while (level.size() > 1) {
        if (level.size() & 1) level.push_back(level.back());
        branch.siblings.push_back(level[pos ^ 1]);
        std::vector<Hash256> next;
        next.reserve(level.size() / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(pair_hash(level[i], level[i + 1]));
        level = std::move(next);
        pos >>= 1;
    }
    return branch;
}

std::vector<Hash256> random_leaves(util::Rng& rng, std::size_t n) {
    std::vector<Hash256> leaves(n);
    for (auto& leaf : leaves) rng.fill(leaf.bytes());
    return leaves;
}

std::uint64_t total_hash_activity() {
    auto& reg = obs::Registry::global();
    return reg.counter("ebv.crypto.sha256_finalizes").value() +
           reg.counter("ebv.crypto.sha256d64_msgs").value() +
           reg.counter("ebv.crypto.sha256d_msgs").value();
}

TEST(MerkleTreeCache, EmptyAndSingleLeaf) {
    const MerkleTreeCache empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.leaf_count(), 0u);
    EXPECT_EQ(empty.depth(), 0u);
    EXPECT_EQ(empty.root(), Hash256{});

    util::Rng rng(1);
    const auto leaves = random_leaves(rng, 1);
    const MerkleTreeCache one(leaves);
    EXPECT_EQ(one.leaf_count(), 1u);
    EXPECT_EQ(one.depth(), 0u);
    EXPECT_EQ(one.root(), leaves[0]);
    EXPECT_EQ(one.root(), merkle_root(leaves));
    const MerkleBranch branch = one.branch(0);
    EXPECT_TRUE(branch.siblings.empty());
    EXPECT_EQ(fold_branch(leaves[0], branch), one.root());
}

TEST(MerkleTreeCache, ParityWithReferenceOnRandomWidths) {
    util::Rng rng(42);
    // Every width 2..40 (odd widths exercise the duplicated-tail rule at
    // multiple levels) plus a few larger ones.
    for (std::size_t n = 2; n <= 40; ++n) {
        const auto leaves = random_leaves(rng, n);
        const MerkleTreeCache cache(leaves);
        EXPECT_EQ(cache.root(), merkle_root(leaves)) << "width " << n;
        for (std::uint32_t index = 0; index < n; ++index) {
            const MerkleBranch expected = reference_branch(leaves, index);
            EXPECT_EQ(cache.branch(index), expected) << "width " << n << " leaf " << index;
            EXPECT_EQ(merkle_branch(leaves, index), expected)
                << "width " << n << " leaf " << index;
        }
    }
    for (const std::size_t n : {63u, 64u, 65u, 257u}) {
        const auto leaves = random_leaves(rng, n);
        const MerkleTreeCache cache(leaves);
        EXPECT_EQ(cache.root(), merkle_root(leaves)) << "width " << n;
        for (int i = 0; i < 16; ++i) {
            const auto index = static_cast<std::uint32_t>(rng.below(n));
            EXPECT_EQ(cache.branch(index), reference_branch(leaves, index))
                << "width " << n << " leaf " << index;
        }
    }
}

TEST(MerkleTreeCache, BranchesFoldToRoot) {
    util::Rng rng(7);
    const auto leaves = random_leaves(rng, 21);
    const MerkleTreeCache cache(leaves);
    for (std::uint32_t index = 0; index < leaves.size(); ++index)
        EXPECT_EQ(fold_branch(leaves[index], cache.branch(index)), cache.root());
}

TEST(MerkleTreeCache, BranchExtractionPerformsZeroHashing) {
    util::Rng rng(9);
    const auto leaves = random_leaves(rng, 100);
    const MerkleTreeCache cache(leaves);

    obs::Registry::global().reset();
    ASSERT_EQ(total_hash_activity(), 0u);
    for (std::uint32_t index = 0; index < leaves.size(); ++index)
        (void)cache.branch(index);
    (void)cache.root();
    EXPECT_EQ(total_hash_activity(), 0u)
        << "branch extraction from a built cache must not touch SHA-256";

    // Counter sanity: the instrumented paths do count when hashing happens.
    (void)fold_branch(leaves[0], cache.branch(0));
    EXPECT_GT(total_hash_activity(), 0u);
}

TEST(MerkleTreeCache, MemoryBytesGrowsWithLeaves) {
    util::Rng rng(11);
    const MerkleTreeCache small(random_leaves(rng, 8));
    const MerkleTreeCache large(random_leaves(rng, 512));
    // Interior levels roughly double the leaf payload.
    EXPECT_GT(small.memory_bytes(), 8u * 32u);
    EXPECT_GT(large.memory_bytes(), 512u * 32u);
    EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

TEST(MerkleBranchHardening, DeserializeRejectsAbsurdDepthBeforeAllocating) {
    util::Writer w;
    w.compact_size(kMaxMerkleBranchDepth + 1);
    // No sibling bytes follow: if the cap were applied after allocation the
    // reader would still have tried to reserve the claimed count.
    util::Reader r(w.data());
    const auto decoded = MerkleBranch::deserialize(r);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), util::DecodeError::kOversizedField);

    // Exactly at the cap (with real siblings) still round-trips.
    MerkleBranch deep;
    deep.siblings.resize(kMaxMerkleBranchDepth);
    deep.index = 77;
    util::Writer w2;
    deep.serialize(w2);
    util::Reader r2(w2.data());
    const auto ok = MerkleBranch::deserialize(r2);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, deep);
}

TEST(MerkleBranchHardening, FoldRefusesAbsurdDepth) {
    util::Rng rng(13);
    const auto leaves = random_leaves(rng, 4);
    MerkleBranch branch = merkle_branch(leaves, 0);
    branch.siblings.resize(kMaxMerkleBranchDepth + 1);

    obs::Registry::global().reset();
    EXPECT_EQ(fold_branch(leaves[0], branch), Hash256{});
    // Fails closed *without hashing* its way through the hostile depth.
    EXPECT_EQ(total_hash_activity(), 0u);
}

}  // namespace
}  // namespace ebv::crypto
