// core::SigCache: sharded admission-time signature-verification reuse
// (docs/MEMPOOL.md). Covers the cache contract (only-successes stored,
// FIFO byte budget, salted keying), the soundness demonstration the
// scenario matrix relies on — a deliberately poisoned entry CAN flip a
// block verdict, and evicting it restores bit-identical failure tuples —
// and concurrent access (TSAN scope).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/chain_archive.hpp"
#include "core/node.hpp"
#include "core/sig_cache.hpp"
#include "core/tx_pool.hpp"
#include "obs/metrics.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"

namespace ebv::core {
namespace {

using chain::Amount;
using chain::kCoin;

crypto::VerifyJob make_job(util::Rng& rng, std::uint8_t tag) {
    const crypto::PrivateKey key = crypto::PrivateKey::generate(rng);
    std::array<std::uint8_t, 32> raw{};
    raw[0] = tag;
    raw[1] = static_cast<std::uint8_t>(rng.next());
    const crypto::Hash256 digest = crypto::Hash256::from_span({raw.data(), raw.size()});
    return crypto::VerifyJob{key.public_key(), key.sign(digest), digest};
}

TEST(SigCache, InsertContainsEraseClear) {
    util::Rng rng(1);
    SigCache cache(/*max_bytes=*/0);
    const crypto::VerifyJob a = make_job(rng, 1);
    const crypto::VerifyJob b = make_job(rng, 2);

    EXPECT_FALSE(cache.contains(a));
    cache.insert(a);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_EQ(cache.size(), 1u);

    cache.insert(a);  // idempotent
    EXPECT_EQ(cache.size(), 1u);

    EXPECT_TRUE(cache.erase(a));
    EXPECT_FALSE(cache.erase(a));
    EXPECT_FALSE(cache.contains(a));

    cache.insert(a);
    cache.insert(b);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.contains(a));
}

TEST(SigCache, KeyDependsOnEveryTripleComponent) {
    util::Rng rng(2);
    SigCache cache(0);
    const crypto::VerifyJob job = make_job(rng, 3);
    cache.insert(job);

    crypto::VerifyJob other_digest = job;
    other_digest.digest = crypto::hash256(job.digest.span());
    EXPECT_FALSE(cache.contains(other_digest));

    crypto::VerifyJob other_sig = job;
    other_sig.sig.s.limbs[0] ^= 1;
    EXPECT_FALSE(cache.contains(other_sig));

    const crypto::VerifyJob other_key = make_job(rng, 4);
    crypto::VerifyJob swapped_key = job;
    swapped_key.key = other_key.key;
    EXPECT_FALSE(cache.contains(swapped_key));
}

TEST(SigCache, ByteBudgetEvictsFifoPerShard) {
    util::Rng rng(3);
    // Budget for exactly one entry per shard.
    SigCache cache(SigCache::kEntryCostBytes * SigCache::kShardCount);
    ASSERT_EQ(cache.max_bytes(), SigCache::kEntryCostBytes * SigCache::kShardCount);

    std::vector<crypto::VerifyJob> jobs;
    for (int i = 0; i < 200; ++i) jobs.push_back(make_job(rng, 5));
    for (const auto& job : jobs) cache.insert(job);

    EXPECT_LE(cache.size(), SigCache::kShardCount);
    EXPECT_LE(cache.bytes(), cache.max_bytes());
    // With ~12 keys landing in the first job's shard, FIFO evicted it.
    EXPECT_FALSE(cache.contains(jobs.front()));
    EXPECT_GT(cache.size(), 0u);
}

TEST(SigCache, EnvOverridesByteBudget) {
    ::setenv("EBV_SIGCACHE_BYTES", "4096", 1);
    SigCache cache(SigCache::kDefaultMaxBytes);
    EXPECT_EQ(cache.max_bytes(), 4096u);
    ::unsetenv("EBV_SIGCACHE_BYTES");
}

TEST(SigCache, ConcurrentInsertContainsEraseIsSafe) {
    util::Rng rng(4);
    SigCache cache(SigCache::kEntryCostBytes * 64);
    std::vector<crypto::VerifyJob> jobs;
    for (int i = 0; i < 128; ++i) jobs.push_back(make_job(rng, 6));

    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < 200; ++round) {
                const auto& job = jobs[(t * 31 + round) % jobs.size()];
                switch ((t + round) % 3) {
                    case 0: cache.insert(job); break;
                    case 1: (void)cache.contains(job); break;
                    case 2: (void)cache.erase(job); break;
                }
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_LE(cache.size(), jobs.size());
}

/// Chain-backed fixture (mirrors TxPoolTest): a small EBV chain whose
/// coinbases pay one key, with every mined block kept for replay so each
/// scenario can run on a fresh node with its own validator options.
class SigCacheChainTest : public ::testing::Test {
protected:
    SigCacheChainTest() : key_(crypto::PrivateKey::generate(rng_)) {
        options_.params.coinbase_maturity = 2;
        node_ = std::make_unique<EbvNode>(options_);
        mine_blocks(4);
    }

    script::Script lock() const { return script::make_p2pkh(key_.public_key().id()); }

    void mine_blocks(int count) {
        for (int i = 0; i < count; ++i) {
            EbvBlock block;
            EbvTransaction coinbase;
            const std::uint32_t height = node_->next_height();
            coinbase.coinbase_data = {static_cast<std::uint8_t>(height), 1};
            coinbase.outputs.push_back(
                chain::TxOut{options_.params.subsidy_at(height), lock()});
            block.txs.push_back(std::move(coinbase));
            block.header.prev_hash = node_->headers().empty()
                                         ? crypto::Hash256{}
                                         : node_->headers().tip_hash();
            block.assign_stake_positions();
            auto result = node_->submit_block(block);
            ASSERT_TRUE(result.has_value()) << result.error().describe();
            archive_.add_block(block);
            mined_.push_back(block);
        }
    }

    /// Fresh node replaying the mined chain, optionally with a sigcache.
    std::unique_ptr<EbvNode> replay_node(SigCache* sigcache) {
        EbvNodeOptions options = options_;
        options.validator.sigcache = sigcache;
        auto node = std::make_unique<EbvNode>(options);
        for (const EbvBlock& block : mined_) {
            auto result = node->submit_block(block);
            EXPECT_TRUE(result.has_value());
        }
        return node;
    }

    /// A block spending (0,0) whose signature is DER-valid but computed
    /// over the WRONG digest — invalid, unless a poisoned cache vouches.
    EbvBlock hostile_block(crypto::VerifyJob* job_out) {
        EbvTransaction tx;
        tx.inputs.push_back(archive_.make_input(0, 0, 0));
        tx.outputs.push_back(chain::TxOut{40 * kCoin, lock()});
        const crypto::Signature bogus = key_.sign(crypto::Hash256{});
        util::Bytes sig = bogus.to_der();
        sig.push_back(0x01);
        tx.inputs[0].unlock_script = script::make_p2pkh_unlock(sig, key_.public_key());

        // The exact triple EbvSignatureChecker forms for this input: the
        // REAL sighash, the real key, the bogus signature.
        *job_out = crypto::VerifyJob{key_.public_key(), bogus,
                                     ebv_signature_hash(tx, 0, lock(), 0x01)};

        EbvBlock block;
        EbvTransaction coinbase;
        const std::uint32_t height = node_->next_height();
        coinbase.coinbase_data = {static_cast<std::uint8_t>(height), 7};
        coinbase.outputs.push_back(
            chain::TxOut{options_.params.subsidy_at(height) + 10 * kCoin, lock()});
        block.txs.push_back(std::move(coinbase));
        block.txs.push_back(std::move(tx));
        block.header.prev_hash = node_->headers().tip_hash();
        block.assign_stake_positions();
        return block;
    }

    util::Rng rng_{21};
    crypto::PrivateKey key_;
    EbvNodeOptions options_;
    std::unique_ptr<EbvNode> node_;
    ChainArchive archive_;
    std::vector<EbvBlock> mined_;
};

// The poisoned-then-evicted leg of the scenario-matrix guarantee: a forged
// cache entry is demonstrably load-bearing (the invalid block connects),
// and evicting it restores the cold failure tuple bit for bit. This is
// exactly why insert() must only ever see verified-TRUE triples.
TEST_F(SigCacheChainTest, PoisonedEntryFlipsVerdictAndEvictionRestoresParity) {
    crypto::VerifyJob forged{};
    const EbvBlock hostile = hostile_block(&forged);

    // Cold: rejected with a script failure at (tx 1, input 0).
    auto cold_node = replay_node(nullptr);
    const auto cold = cold_node->submit_block(hostile);
    ASSERT_FALSE(cold.has_value());
    const EbvValidationFailure cold_failure = cold.error();
    EXPECT_EQ(cold_failure.error, EbvError::kScriptFailure);
    EXPECT_EQ(cold_failure.tx_index, 1u);
    EXPECT_EQ(cold_failure.input_index, 0u);

    // An honestly warmed cache (clean-chain replay) changes nothing.
    SigCache cache;
    {
        auto warm_node = replay_node(&cache);
        const auto warm = warm_node->submit_block(hostile);
        ASSERT_FALSE(warm.has_value());
        EXPECT_TRUE(warm.error() == cold_failure);
    }

    // Poison: force the forged triple in. The hit short-circuits SV and
    // the invalid block CONNECTS — the cache is load-bearing.
    cache.insert(forged);
    {
        auto poisoned_node = replay_node(&cache);
        EXPECT_TRUE(poisoned_node->submit_block(hostile).has_value());
    }

    // Evict the forged entry: parity with the cold tuple returns.
    ASSERT_TRUE(cache.erase(forged));
    {
        auto evicted_node = replay_node(&cache);
        const auto evicted = evicted_node->submit_block(hostile);
        ASSERT_FALSE(evicted.has_value());
        EXPECT_TRUE(evicted.error() == cold_failure);
    }
}

// The tentpole's payoff path: signatures verified at mempool admission are
// NOT re-verified when the assembled block connects — the block validator
// hits the cache once per admission-verified signature.
TEST_F(SigCacheChainTest, AdmissionWarmedCacheServesBlockValidation) {
    SigCache cache;
    TxPoolOptions pool_options;
    pool_options.sigcache = &cache;
    TxPool pool(options_.params, node_->headers(), node_->status(), pool_options);

    auto make_spend = [&](std::uint32_t height, Amount out_value) {
        EbvTransaction tx;
        tx.inputs.push_back(archive_.make_input(height, 0, 0));
        tx.outputs.push_back(chain::TxOut{out_value, lock()});
        const crypto::Hash256 digest = ebv_signature_hash(tx, 0, lock(), 0x01);
        util::Bytes sig = key_.sign(digest).to_der();
        sig.push_back(0x01);
        tx.inputs[0].unlock_script = script::make_p2pkh_unlock(sig, key_.public_key());
        return tx;
    };
    ASSERT_EQ(pool.submit(make_spend(0, 40 * kCoin)), TxAdmission::kAccepted);
    ASSERT_EQ(pool.submit(make_spend(1, 45 * kCoin)), TxAdmission::kAccepted);
    const std::size_t warmed = cache.size();
    ASSERT_GE(warmed, 2u);

    const EbvBlock block = pool.build_template(lock(), 10);
    ASSERT_EQ(block.txs.size(), 3u);

    // Connect on a node wired to the same cache: both pooled signatures hit.
    obs::Counter& hits = obs::Registry::global().counter("ebv.sigcache.hits");
    auto miner = replay_node(&cache);
    const std::uint64_t hits_before = hits.value();
    ASSERT_TRUE(miner->submit_block(block).has_value());
    EXPECT_GE(hits.value() - hits_before, 2u);
    // Nothing new was verified at connect time for the pooled txs.
    EXPECT_EQ(cache.size(), warmed);
}

}  // namespace
}  // namespace ebv::core
