// The parallel-SV extension (the paper lists SV optimization as future
// work): both validators accept a thread pool for script checks; results
// must be identical to serial validation, including failure reporting.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "chain/node.hpp"
#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

workload::GeneratorOptions options_for(std::uint64_t seed) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.key_pool_size = 8;
    return options;
}

TEST(ParallelSv, BaselineAcceptsSameChainAsSerial) {
    const auto gen_options = options_for(3);
    util::ThreadPool pool(4);

    workload::ChainGenerator gen_a(gen_options);
    chain::BitcoinNodeOptions serial_options;
    serial_options.params = gen_options.params;
    chain::BitcoinNode serial_node(serial_options);

    workload::ChainGenerator gen_b(gen_options);
    chain::BitcoinNodeOptions pooled_options;
    pooled_options.params = gen_options.params;
    pooled_options.validator.script_pool = &pool;
    chain::BitcoinNode pooled_node(pooled_options);

    for (int i = 0; i < 20; ++i) {
        const auto block_a = gen_a.next_block();
        const auto block_b = gen_b.next_block();
        ASSERT_EQ(block_a.header.hash(), block_b.header.hash());
        const auto ra = serial_node.submit_block(block_a);
        const auto rb = pooled_node.submit_block(block_b);
        ASSERT_TRUE(ra.has_value());
        ASSERT_TRUE(rb.has_value());
        EXPECT_EQ(ra->inputs, rb->inputs);
    }
    EXPECT_EQ(serial_node.utxo().size(), pooled_node.utxo().size());
}

TEST(ParallelSv, EbvPooledRejectsBadSignatureLikeSerial) {
    const auto gen_options = options_for(4);
    util::ThreadPool pool(4);

    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    core::EbvNodeOptions serial_options;
    serial_options.params = gen_options.params;
    core::EbvNode serial_node(serial_options);

    core::EbvNodeOptions pooled_options;
    pooled_options.params = gen_options.params;
    pooled_options.validator.script_pool = &pool;
    core::EbvNode pooled_node(pooled_options);

    core::EbvNodeOptions batched_options = pooled_options;
    batched_options.validator.batch_verify = true;
    core::EbvNode batched_node(batched_options);

    bool tampered_one = false;
    for (int i = 0; i < 25; ++i) {
        const auto block = gen.next_block();
        auto converted = converter.convert_block(block);
        ASSERT_TRUE(converted.has_value());

        if (!tampered_one && converted->input_count() >= 3) {
            tampered_one = true;
            core::EbvBlock bad = *converted;
            // Corrupt one signature buried in the middle of the block.
            for (auto& tx : bad.txs) {
                if (tx.inputs.empty()) continue;
                tx.inputs.back().unlock_script[5] ^= 0x11;
                break;
            }
            bad.assign_stake_positions();

            const auto serial_result = serial_node.submit_block(bad);
            const auto pooled_result = pooled_node.submit_block(bad);
            const auto batched_result = batched_node.submit_block(bad);
            ASSERT_FALSE(serial_result.has_value());
            ASSERT_FALSE(pooled_result.has_value());
            ASSERT_FALSE(batched_result.has_value());
            EXPECT_EQ(serial_result.error().error, core::EbvError::kScriptFailure);
            EXPECT_EQ(pooled_result.error().error, core::EbvError::kScriptFailure);
            EXPECT_EQ(batched_result.error(), serial_result.error());
        }

        ASSERT_TRUE(serial_node.submit_block(*converted).has_value());
        ASSERT_TRUE(pooled_node.submit_block(*converted).has_value());
        ASSERT_TRUE(batched_node.submit_block(*converted).has_value());
    }
    EXPECT_TRUE(tampered_one);
    EXPECT_EQ(serial_node.status().memory_bytes(), pooled_node.status().memory_bytes());
    EXPECT_EQ(serial_node.status().memory_bytes(), batched_node.status().memory_bytes());
}

// Regression for the parallel failure-reporting race: whatever mix of
// corrupted proofs and signatures a block carries, every thread count must
// report exactly the failure the serial pipeline reports — same error, same
// (tx_index, input_index), same script error.
class ParallelSvDeterminism : public ::testing::Test {
protected:
    /// Zipf skew for the generated chain; subclasses override before SetUp.
    double skew_ = 0.0;

    void SetUp() override {
        gen_options_ = options_for(5);
        gen_options_.skew = skew_;
        workload::ChainGenerator gen(gen_options_);
        intermediary::Converter converter;
        for (int i = 0; i < 40 && !victim_; ++i) {
            const auto block = gen.next_block();
            auto converted = converter.convert_block(block);
            ASSERT_TRUE(converted.has_value());
            if (converted->input_count() >= 4) {
                victim_ = *converted;
            } else {
                prefix_.push_back(*converted);
            }
        }
        ASSERT_TRUE(victim_.has_value()) << "workload never produced a 4-input block";
    }

    /// Replay the good prefix on a fresh node, then submit `bad` and return
    /// the reported failure.
    core::EbvValidationFailure failure_with(util::ThreadPool* pool,
                                            const core::EbvBlock& bad,
                                            bool batch_verify = false) {
        core::EbvNodeOptions options;
        options.params = gen_options_.params;
        options.validator.script_pool = pool;
        options.validator.batch_verify = batch_verify;
        core::EbvNode node(options);
        for (const auto& b : prefix_) EXPECT_TRUE(node.submit_block(b).has_value());
        auto result = node.submit_block(bad);
        if (result.has_value()) {
            ADD_FAILURE() << "tampered block was accepted";
            return core::EbvValidationFailure{};
        }
        return result.error();
    }

    /// The serial inline run is the reference; every thread count, with and
    /// without deferred batch verification, must report its exact tuple.
    void expect_identical_across_thread_counts(const core::EbvBlock& bad) {
        const core::EbvValidationFailure want = failure_with(nullptr, bad);
        for (const bool batch : {false, true}) {
            for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
                util::ThreadPool pool(threads);
                for (int rep = 0; rep < 3; ++rep) {
                    const core::EbvValidationFailure got = failure_with(&pool, bad, batch);
                    EXPECT_EQ(want.error, got.error)
                        << "threads=" << threads << " batch=" << batch;
                    EXPECT_EQ(want.tx_index, got.tx_index)
                        << "threads=" << threads << " batch=" << batch;
                    EXPECT_EQ(want.input_index, got.input_index)
                        << "threads=" << threads << " batch=" << batch;
                    EXPECT_EQ(want.script_error, got.script_error)
                        << "threads=" << threads << " batch=" << batch;
                }
            }
        }
    }

    /// The scheduler × threads matrix: the work-stealing scheduler executes
    /// ranges in a different (racy) order than the shared counter, and the
    /// reported failure tuple must not notice. Serial is the reference.
    void expect_identical_across_schedulers(const core::EbvBlock& bad) {
        const core::EbvValidationFailure want = failure_with(nullptr, bad);
        for (const util::SchedulerMode mode :
             {util::SchedulerMode::kCounter, util::SchedulerMode::kSteal}) {
            for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
                util::ThreadPool pool(util::ThreadPool::Options{threads, mode, {}});
                for (int rep = 0; rep < 2; ++rep) {
                    const core::EbvValidationFailure got = failure_with(&pool, bad);
                    EXPECT_EQ(want.error, got.error)
                        << util::to_string(mode) << " threads=" << threads;
                    EXPECT_EQ(want.tx_index, got.tx_index)
                        << util::to_string(mode) << " threads=" << threads;
                    EXPECT_EQ(want.input_index, got.input_index)
                        << util::to_string(mode) << " threads=" << threads;
                    EXPECT_EQ(want.script_error, got.script_error)
                        << util::to_string(mode) << " threads=" << threads;
                }
            }
        }
    }

    workload::GeneratorOptions gen_options_;
    std::vector<core::EbvBlock> prefix_;
    std::optional<core::EbvBlock> victim_;
};

/// Same fixture over a Zipf-skewed chain (EBV_SKEW mechanism): heavy 1-of-M
/// multisig spends make per-input SV cost wildly uneven, which is exactly
/// the load shape where range splitting and stealing reorder execution the
/// most aggressively.
class ParallelSvSkewDeterminism : public ParallelSvDeterminism {
protected:
    void SetUp() override {
        skew_ = 1.0;
        ParallelSvDeterminism::SetUp();
    }
};

TEST_F(ParallelSvDeterminism, MultipleBadSignatures) {
    core::EbvBlock bad = *victim_;
    // Corrupt every other input's signature: several inputs fail SV and the
    // lowest (tx, input) must win under every thread count.
    std::size_t global = 0;
    for (auto& tx : bad.txs) {
        for (auto& in : tx.inputs) {
            if (global++ % 2 == 1 && in.unlock_script.size() > 6)
                in.unlock_script[5] ^= 0x11;
        }
    }
    bad.assign_stake_positions();
    const auto failure = failure_with(nullptr, bad);
    ASSERT_EQ(failure.error, core::EbvError::kScriptFailure);
    expect_identical_across_thread_counts(bad);
}

TEST_F(ParallelSvDeterminism, ProofTamperOutranksEarlierBadSignature) {
    core::EbvBlock bad = *victim_;
    // Corrupt the first input's signature and the last input's Merkle
    // branch. EV verdicts resolve before SV verdicts, so every run must
    // report the existence failure at the *later* input.
    core::EbvInput* first = nullptr;
    core::EbvInput* last = nullptr;
    for (auto& tx : bad.txs) {
        for (auto& in : tx.inputs) {
            if (first == nullptr) first = &in;
            last = &in;
        }
    }
    ASSERT_NE(first, nullptr);
    ASSERT_NE(first, last);
    ASSERT_GT(first->unlock_script.size(), 6u);
    first->unlock_script[5] ^= 0x11;
    if (!last->mbr.siblings.empty()) {
        last->mbr.siblings[0].bytes()[0] ^= 0x01;
    } else {
        // Single-leaf source tree: no siblings to corrupt, so break the
        // leaf commitment itself.
        last->els.locktime ^= 1;
    }
    bad.assign_stake_positions();
    const auto failure = failure_with(nullptr, bad);
    ASSERT_EQ(failure.error, core::EbvError::kExistenceFailed);
    expect_identical_across_thread_counts(bad);
}

TEST_F(ParallelSvDeterminism, DoubleSpendOutranksBadSignature) {
    core::EbvBlock bad = *victim_;
    // One transaction carries both a corrupted signature (its first input)
    // and an in-block double spend (its first input duplicated at the end).
    // UV verdicts resolve before SV verdicts, so every thread count and
    // batch mode must report kDoubleSpendInBlock at the duplicate, never
    // the script failure.
    core::EbvTransaction* spender = nullptr;
    for (auto& tx : bad.txs) {
        if (!tx.inputs.empty()) {
            spender = &tx;
            break;
        }
    }
    ASSERT_NE(spender, nullptr);
    ASSERT_GT(spender->inputs[0].unlock_script.size(), 6u);
    spender->inputs[0].unlock_script[5] ^= 0x11;
    spender->inputs.push_back(spender->inputs[0]);
    bad.assign_stake_positions();

    const auto failure = failure_with(nullptr, bad);
    ASSERT_EQ(failure.error, core::EbvError::kDoubleSpendInBlock);
    EXPECT_EQ(failure.input_index, spender->inputs.size() - 1);
    expect_identical_across_thread_counts(bad);
}

TEST_F(ParallelSvDeterminism, SchedulerMatrixMultipleBadSignatures) {
    core::EbvBlock bad = *victim_;
    std::size_t global = 0;
    for (auto& tx : bad.txs) {
        for (auto& in : tx.inputs) {
            if (global++ % 2 == 1 && in.unlock_script.size() > 6)
                in.unlock_script[5] ^= 0x11;
        }
    }
    bad.assign_stake_positions();
    const auto failure = failure_with(nullptr, bad);
    ASSERT_EQ(failure.error, core::EbvError::kScriptFailure);
    expect_identical_across_schedulers(bad);
}

TEST_F(ParallelSvSkewDeterminism, SchedulerMatrixOnSkewedWorkload) {
    core::EbvBlock bad = *victim_;
    std::size_t global = 0;
    for (auto& tx : bad.txs) {
        for (auto& in : tx.inputs) {
            if (global++ % 2 == 1 && in.unlock_script.size() > 6)
                in.unlock_script[5] ^= 0x11;
        }
    }
    bad.assign_stake_positions();
    const auto failure = failure_with(nullptr, bad);
    ASSERT_EQ(failure.error, core::EbvError::kScriptFailure);
    expect_identical_across_schedulers(bad);
}

TEST_F(ParallelSvSkewDeterminism, ProofTamperOutranksEarlierBadSignature) {
    core::EbvBlock bad = *victim_;
    core::EbvInput* first = nullptr;
    core::EbvInput* last = nullptr;
    for (auto& tx : bad.txs) {
        for (auto& in : tx.inputs) {
            if (first == nullptr) first = &in;
            last = &in;
        }
    }
    ASSERT_NE(first, nullptr);
    ASSERT_NE(first, last);
    ASSERT_GT(first->unlock_script.size(), 6u);
    first->unlock_script[5] ^= 0x11;
    if (!last->mbr.siblings.empty()) {
        last->mbr.siblings[0].bytes()[0] ^= 0x01;
    } else {
        last->els.locktime ^= 1;
    }
    bad.assign_stake_positions();
    const auto failure = failure_with(nullptr, bad);
    ASSERT_EQ(failure.error, core::EbvError::kExistenceFailed);
    expect_identical_across_schedulers(bad);
}

}  // namespace
}  // namespace ebv
