// The parallel-SV extension (the paper lists SV optimization as future
// work): both validators accept a thread pool for script checks; results
// must be identical to serial validation, including failure reporting.
#include <gtest/gtest.h>

#include "chain/node.hpp"
#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace ebv {
namespace {

workload::GeneratorOptions options_for(std::uint64_t seed) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params.coinbase_maturity = 5;
    options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.0);
    options.height_scale = 1.0;
    options.intensity = 1.0;
    options.key_pool_size = 8;
    return options;
}

TEST(ParallelSv, BaselineAcceptsSameChainAsSerial) {
    const auto gen_options = options_for(3);
    util::ThreadPool pool(4);

    workload::ChainGenerator gen_a(gen_options);
    chain::BitcoinNodeOptions serial_options;
    serial_options.params = gen_options.params;
    chain::BitcoinNode serial_node(serial_options);

    workload::ChainGenerator gen_b(gen_options);
    chain::BitcoinNodeOptions pooled_options;
    pooled_options.params = gen_options.params;
    pooled_options.validator.script_pool = &pool;
    chain::BitcoinNode pooled_node(pooled_options);

    for (int i = 0; i < 20; ++i) {
        const auto block_a = gen_a.next_block();
        const auto block_b = gen_b.next_block();
        ASSERT_EQ(block_a.header.hash(), block_b.header.hash());
        const auto ra = serial_node.submit_block(block_a);
        const auto rb = pooled_node.submit_block(block_b);
        ASSERT_TRUE(ra.has_value());
        ASSERT_TRUE(rb.has_value());
        EXPECT_EQ(ra->inputs, rb->inputs);
    }
    EXPECT_EQ(serial_node.utxo().size(), pooled_node.utxo().size());
}

TEST(ParallelSv, EbvPooledRejectsBadSignatureLikeSerial) {
    const auto gen_options = options_for(4);
    util::ThreadPool pool(4);

    workload::ChainGenerator gen(gen_options);
    intermediary::Converter converter;

    core::EbvNodeOptions serial_options;
    serial_options.params = gen_options.params;
    core::EbvNode serial_node(serial_options);

    core::EbvNodeOptions pooled_options;
    pooled_options.params = gen_options.params;
    pooled_options.validator.script_pool = &pool;
    core::EbvNode pooled_node(pooled_options);

    bool tampered_one = false;
    for (int i = 0; i < 25; ++i) {
        const auto block = gen.next_block();
        auto converted = converter.convert_block(block);
        ASSERT_TRUE(converted.has_value());

        if (!tampered_one && converted->input_count() >= 3) {
            tampered_one = true;
            core::EbvBlock bad = *converted;
            // Corrupt one signature buried in the middle of the block.
            for (auto& tx : bad.txs) {
                if (tx.inputs.empty()) continue;
                tx.inputs.back().unlock_script[5] ^= 0x11;
                break;
            }
            bad.assign_stake_positions();

            const auto serial_result = serial_node.submit_block(bad);
            const auto pooled_result = pooled_node.submit_block(bad);
            ASSERT_FALSE(serial_result.has_value());
            ASSERT_FALSE(pooled_result.has_value());
            EXPECT_EQ(serial_result.error().error, core::EbvError::kScriptFailure);
            EXPECT_EQ(pooled_result.error().error, core::EbvError::kScriptFailure);
        }

        ASSERT_TRUE(serial_node.submit_block(*converted).has_value());
        ASSERT_TRUE(pooled_node.submit_block(*converted).has_value());
    }
    EXPECT_TRUE(tampered_one);
    EXPECT_EQ(serial_node.status().memory_bytes(), pooled_node.status().memory_bytes());
}

}  // namespace
}  // namespace ebv
