// bench_compare — perf-regression gate over EBV_BENCH_JSON artifacts.
//
//   bench_compare [options] <baseline.json> <current.json>
//
//   --tolerance=<frac>     allowed relative move in the bad direction
//                          before a gated metric fails (default 0.10)
//   --gate-only=<substr>   gate only metric names containing <substr>
//                          (everything is still reported); CI uses this to
//                          gate machine-stable ratio metrics like speedup
//   --strict-provenance    provenance mismatch is an error, not a warning
//
// Exit status: 0 = pass, 1 = regression or fatal mismatch (aborted run,
// different bench, strict-provenance failure), 2 = usage / unreadable input.
// All decision logic lives in bench::compare (src/bench/compare.hpp) so it
// is unit-tested; this file is argument parsing and exit codes only.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/compare.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--tolerance=<frac>] [--gate-only=<substr>] "
                 "[--strict-provenance] <baseline.json> <current.json>\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    ebv::bench::CompareOptions options;
    std::string baseline;
    std::string current;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--tolerance=", 12) == 0) {
            char* end = nullptr;
            options.tolerance = std::strtod(arg + 12, &end);
            if (end == nullptr || *end != '\0' || options.tolerance < 0)
                return usage(argv[0]);
        } else if (std::strncmp(arg, "--gate-only=", 12) == 0) {
            options.gate_only = arg + 12;
        } else if (std::strcmp(arg, "--strict-provenance") == 0) {
            options.strict_provenance = true;
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (baseline.empty()) {
            baseline = arg;
        } else if (current.empty()) {
            current = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (baseline.empty() || current.empty()) return usage(argv[0]);

    const ebv::bench::CompareResult result =
        ebv::bench::compare_files(baseline, current, options);
    std::fputs(ebv::bench::format_report(result).c_str(), stdout);

    // Unreadable input is a usage-class failure, distinct from a regression.
    for (const std::string& e : result.errors) {
        if (e.rfind("cannot read/parse", 0) == 0) return 2;
    }
    return result.ok ? 0 : 1;
}
