// Microbenchmarks for the crypto substrate: the primitives whose costs set
// the EV (Merkle) and SV (ECDSA) components of block validation.
#include <benchmark/benchmark.h>

#include <memory>

#include "chain/sighash.hpp"
#include "chain/sighash_template.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/merkle.hpp"
#include "crypto/parse_memo.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace ebv;

void BM_Sha256(benchmark::State& state) {
    util::Rng rng(1);
    util::Bytes data(static_cast<std::size_t>(state.range(0)));
    rng.fill(data);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

// The Merkle interior-node primitive, batched: n independent 64-byte
// messages double-hashed per call. Compare scalar vs sse2 vs avx2 with
// EBV_SHA256_IMPL, or watch the auto-dispatched throughput scale with n.
void BM_Sha256d64Many(benchmark::State& state) {
    util::Rng rng(8);
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Bytes in(n * 64);
    rng.fill(in);
    util::Bytes out(n * 32);
    for (auto _ : state) {
        crypto::sha256d64_many(out.data(), in.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n) * 64);
    state.SetLabel(crypto::sha256_batch_impl());
}
BENCHMARK(BM_Sha256d64Many)->Arg(1)->Arg(4)->Arg(8)->Arg(64)->Arg(1024);

// Variable-length batch (the EBV leaf / txid shape): n messages of mixed
// sizes double-hashed via the sort-by-block-count batcher.
void BM_Sha256dMany(benchmark::State& state) {
    util::Rng rng(9);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<util::Bytes> msgs(n);
    std::vector<util::ByteSpan> spans(n);
    for (std::size_t i = 0; i < n; ++i) {
        msgs[i].resize(100 + (i % 7) * 60);  // tx-sized, a few block counts
        rng.fill(msgs[i]);
        spans[i] = msgs[i];
    }
    std::vector<crypto::Sha256::Digest> out(n);
    for (auto _ : state) {
        crypto::sha256d_many(spans.data(), out.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.SetLabel(crypto::sha256_batch_impl());
}
BENCHMARK(BM_Sha256dMany)->Arg(8)->Arg(64)->Arg(1024);

void BM_MerkleRoot(benchmark::State& state) {
    util::Rng rng(2);
    std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), 32});
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::merkle_root(leaves));
    }
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(2048);

void BM_MerkleBranchBuild(benchmark::State& state) {
    util::Rng rng(3);
    std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), 32});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::merkle_branch(leaves, static_cast<std::uint32_t>(leaves.size() / 2)));
    }
}
BENCHMARK(BM_MerkleBranchBuild)->Arg(256)->Arg(2048);

// The EV primitive: fold a branch and compare with the root.
void BM_MerkleBranchVerify(benchmark::State& state) {
    util::Rng rng(4);
    std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), 32});
    const auto root = crypto::merkle_root(leaves);
    const auto branch =
        crypto::merkle_branch(leaves, static_cast<std::uint32_t>(leaves.size() / 2));
    const auto leaf = leaves[leaves.size() / 2];
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::fold_branch(leaf, branch) == root);
    }
}
BENCHMARK(BM_MerkleBranchVerify)->Arg(16)->Arg(256)->Arg(2048);

void BM_EcdsaSign(benchmark::State& state) {
    util::Rng rng(5);
    const auto key = crypto::PrivateKey::generate(rng);
    crypto::Hash256 digest;
    rng.fill({digest.bytes().data(), 32});
    std::uint8_t counter = 0;
    for (auto _ : state) {
        digest.bytes()[0] = counter++;
        benchmark::DoNotOptimize(key.sign(digest));
    }
}
BENCHMARK(BM_EcdsaSign);

// The SV primitive cost.
void BM_EcdsaVerify(benchmark::State& state) {
    util::Rng rng(6);
    const auto key = crypto::PrivateKey::generate(rng);
    const auto pub = key.public_key();
    crypto::Hash256 digest;
    rng.fill({digest.bytes().data(), 32});
    const auto sig = key.sign(digest);
    for (auto _ : state) {
        benchmark::DoNotOptimize(pub.verify(digest, sig));
    }
}
BENCHMARK(BM_EcdsaVerify);

// Batched verification: amortized s⁻¹/z⁻¹ inversions plus the Strauss
// double-scalar multiply. Arg is the batch size; items-per-second makes the
// per-signature cost comparable with BM_EcdsaVerify at Arg(1).
void BM_EcdsaVerifyBatch(benchmark::State& state) {
    util::Rng rng(8);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<crypto::VerifyJob> jobs;
    for (std::size_t i = 0; i < n; ++i) {
        const auto key = crypto::PrivateKey::generate(rng);
        crypto::Hash256 digest;
        rng.fill({digest.bytes().data(), 32});
        jobs.push_back({key.public_key(), key.sign(digest), digest});
    }
    const std::unique_ptr<bool[]> verdicts(new bool[n]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::verify_batch(jobs, verdicts.get()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EcdsaVerifyBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_PubkeyParse(benchmark::State& state) {
    util::Rng rng(7);
    const auto bytes = crypto::PrivateKey::generate(rng).public_key().serialize();
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::PublicKey::parse(bytes));
    }
}
BENCHMARK(BM_PubkeyParse);

void BM_PubkeyParseMemo(benchmark::State& state) {
    util::Rng rng(7);
    const auto bytes = crypto::PrivateKey::generate(rng).public_key().serialize();
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::parse_public_key_memo(bytes));
    }
}
BENCHMARK(BM_PubkeyParseMemo);

// ---- Sighash: naive re-serialization vs O(n) template ----------------------
// Arg is the input count n. The naive path re-serializes the whole
// transaction per input (O(n · tx_size) total); the template serializes once
// and patch-and-hashes per input. Both loops produce all n digests per
// iteration, so items/s are directly comparable at each n.

chain::Transaction sighash_bench_tx(std::size_t inputs) {
    util::Rng rng(10);
    chain::Transaction tx;
    tx.vin.resize(inputs);
    for (auto& in : tx.vin) {
        rng.fill({in.prevout.txid.bytes().data(), 32});
        in.prevout.index = static_cast<std::uint32_t>(rng.next());
    }
    tx.vout.resize(2);
    for (auto& out : tx.vout) {
        out.value = 50'000;
        out.lock_script.resize(25);  // P2PKH-sized
        rng.fill(out.lock_script);
    }
    return tx;
}

void BM_Sighash_Naive(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const chain::Transaction tx = sighash_bench_tx(n);
    util::Bytes script(25);
    util::Rng(11).fill(script);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i) {
            benchmark::DoNotOptimize(
                chain::signature_hash(tx, i, script, chain::kSigHashAll));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Sighash_Naive)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Streaming consumption: midstate resume + patch per digest (what an
// isolated checker does). Build cost is paid every iteration, like the
// validators pay it once per transaction.
void BM_Sighash_TemplateStream(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const chain::Transaction tx = sighash_bench_tx(n);
    util::Bytes script(25);
    util::Rng(11).fill(script);
    for (auto _ : state) {
        const chain::SighashTemplate tpl = chain::SighashTemplate::build(tx);
        for (std::size_t i = 0; i < n; ++i) {
            benchmark::DoNotOptimize(tpl.digest(i, script, chain::kSigHashAll));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.SetLabel(crypto::sha256_impl());
}
BENCHMARK(BM_Sighash_TemplateStream)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Batched consumption: materialize the n patched preimages from the base
// buffer and push them through one sha256d_many call — the SIMD-lane path
// core::TxSighashCache takes for a transaction's standard digests.
void BM_Sighash_Template(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const chain::Transaction tx = sighash_bench_tx(n);
    util::Bytes script(25);
    util::Rng(11).fill(script);
    std::vector<util::Bytes> preimages(n);
    std::vector<util::ByteSpan> spans(n);
    std::vector<crypto::Sha256::Digest> digests(n);
    for (auto _ : state) {
        const chain::SighashTemplate tpl = chain::SighashTemplate::build(tx);
        for (std::size_t i = 0; i < n; ++i) {
            tpl.preimage(i, script, chain::kSigHashAll, preimages[i]);
            spans[i] = {preimages[i].data(), preimages[i].size()};
        }
        crypto::sha256d_many(spans.data(), digests.data(), n);
        benchmark::DoNotOptimize(digests.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.SetLabel(crypto::sha256_batch_impl());
}
BENCHMARK(BM_Sighash_Template)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
