// Microbenchmarks for the crypto substrate: the primitives whose costs set
// the EV (Merkle) and SV (ECDSA) components of block validation.
#include <benchmark/benchmark.h>

#include "crypto/ecdsa.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace ebv;

void BM_Sha256(benchmark::State& state) {
    util::Rng rng(1);
    util::Bytes data(static_cast<std::size_t>(state.range(0)));
    rng.fill(data);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

void BM_MerkleRoot(benchmark::State& state) {
    util::Rng rng(2);
    std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), 32});
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::merkle_root(leaves));
    }
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(2048);

void BM_MerkleBranchBuild(benchmark::State& state) {
    util::Rng rng(3);
    std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), 32});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::merkle_branch(leaves, static_cast<std::uint32_t>(leaves.size() / 2)));
    }
}
BENCHMARK(BM_MerkleBranchBuild)->Arg(256)->Arg(2048);

// The EV primitive: fold a branch and compare with the root.
void BM_MerkleBranchVerify(benchmark::State& state) {
    util::Rng rng(4);
    std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), 32});
    const auto root = crypto::merkle_root(leaves);
    const auto branch =
        crypto::merkle_branch(leaves, static_cast<std::uint32_t>(leaves.size() / 2));
    const auto leaf = leaves[leaves.size() / 2];
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::fold_branch(leaf, branch) == root);
    }
}
BENCHMARK(BM_MerkleBranchVerify)->Arg(16)->Arg(256)->Arg(2048);

void BM_EcdsaSign(benchmark::State& state) {
    util::Rng rng(5);
    const auto key = crypto::PrivateKey::generate(rng);
    crypto::Hash256 digest;
    rng.fill({digest.bytes().data(), 32});
    std::uint8_t counter = 0;
    for (auto _ : state) {
        digest.bytes()[0] = counter++;
        benchmark::DoNotOptimize(key.sign(digest));
    }
}
BENCHMARK(BM_EcdsaSign);

// The SV primitive cost.
void BM_EcdsaVerify(benchmark::State& state) {
    util::Rng rng(6);
    const auto key = crypto::PrivateKey::generate(rng);
    const auto pub = key.public_key();
    crypto::Hash256 digest;
    rng.fill({digest.bytes().data(), 32});
    const auto sig = key.sign(digest);
    for (auto _ : state) {
        benchmark::DoNotOptimize(pub.verify(digest, sig));
    }
}
BENCHMARK(BM_EcdsaVerify);

void BM_PubkeyParse(benchmark::State& state) {
    util::Rng rng(7);
    const auto bytes = crypto::PrivateKey::generate(rng).public_key().serialize();
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::PublicKey::parse(bytes));
    }
}
BENCHMARK(BM_PubkeyParse);

}  // namespace

BENCHMARK_MAIN();
