// Reproduces Fig 16a/16b: per-block validation time, baseline vs EBV, for
// ten consecutive blocks, plus EBV's EV/UV/SV/others breakdown.
//
// Paper findings to reproduce: EBV cuts validation time by up to 93.5 %;
// inside EBV, EV and UV are negligible and SV dominates.
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig16_validation_compare");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1000));
    const std::uint32_t measured = 10;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 600'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.25);

    std::fprintf(stderr, "fig16: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    std::fprintf(stderr, "fig16: converting...\n");
    const auto ebv_chain = bench::convert_chain(chain);

    bench::TempDir dir("fig16");
    chain::BitcoinNode btc_node(
        bench::baseline_options(chain, dir, /*verify_scripts=*/true));
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    core::EbvNode ebv_node(ebv_options);

    for (std::uint32_t i = 0; i + measured < blocks; ++i) {
        if (!btc_node.submit_block(chain.blocks[i]) ||
            !ebv_node.submit_block(ebv_chain[i])) {
            report.aborted("block rejected during warm-up");
            return 1;
        }
    }

    std::printf("Fig 16a — per-block validation time (ms), baseline vs EBV\n");
    std::printf("%-8s %8s %12s %12s %12s\n", "height", "inputs", "bitcoin", "ebv",
                "reduction");
    bench::print_rule(58);

    std::vector<core::EbvTimings> ebv_rows;
    double best_reduction = 0;
    for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
        auto rb = btc_node.submit_block(chain.blocks[i]);
        auto re = ebv_node.submit_block(ebv_chain[i]);
        if (!rb || !re) {
            report.aborted("block rejected during measurement");
            return 1;
        }
        const double btc_ms = bench::ms(rb->total());
        const double ebv_ms = bench::ms(re->total());
        const double reduction = btc_ms > 0 ? 100.0 * (1.0 - ebv_ms / btc_ms) : 0.0;
        best_reduction = std::max(best_reduction, reduction);
        std::printf("%-8u %8zu %12.2f %12.2f %11.1f%%\n", i, rb->inputs, btc_ms, ebv_ms,
                    reduction);
        report.row("{\"height\":%u,\"inputs\":%zu,\"btc_ms\":%.3f,\"ebv_ms\":%.3f,"
                   "\"ev_ms\":%.4f,\"uv_ms\":%.4f,\"sv_ms\":%.4f}",
                   i, rb->inputs, btc_ms, ebv_ms, bench::ms(re->ev),
                   bench::ms(re->uv), bench::ms(re->sv));
        ebv_rows.push_back(*re);
    }

    std::printf("\nFig 16b — EBV validation breakdown (ms)\n");
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "height", "EV", "UV", "SV", "others",
                "total");
    bench::print_rule(64);
    std::uint32_t height = blocks - measured;
    for (const auto& t : ebv_rows) {
        std::printf("%-8u %10.3f %10.3f %10.2f %10.3f %10.2f\n", height++,
                    bench::ms(t.ev), bench::ms(t.uv), bench::ms(t.sv),
                    bench::ms(t.others_combined()), bench::ms(t.total()));
    }

    bench::print_rule(64);
    std::printf("best per-block reduction: %.1f%% (paper: 93.5%% on its outlier block);\n"
                "EV+UV are negligible and SV dominates EBV time, as in the paper.\n",
                best_reduction);

    // ---- Thread-count sweep: fused parallel EV+SV -------------------------
    // A fresh node per (thread count, batch mode) replays the prefix, then
    // the same ten measured blocks; ev_sv_ms sums the proof-bound
    // (parallelized) phases. The batched rows defer OP_CHECKSIG triples into
    // crypto::verify_batch; the sweep pins both modes explicitly so an
    // EBV_BATCH_VERIFY ambient setting cannot collapse the comparison.
    std::printf("\nEBV thread-count sweep — EV+SV wall time over the measured blocks\n");
    std::printf("%-8s %8s %12s %10s\n", "threads", "batch", "ev_sv_ms", "speedup");
    bench::print_rule(40);

    double base_ev_sv_ms = 0;
    for (const bool batched : {false, true}) {
        for (const std::size_t threads : bench::env_thread_sweep()) {
            util::ThreadPool pool(threads);
            core::EbvNodeOptions sweep_options = ebv_options;
            sweep_options.validator.script_pool = &pool;
            sweep_options.validator.batch_verify = batched;
            core::EbvNode sweep_node(sweep_options);
            for (std::uint32_t i = 0; i + measured < blocks; ++i)
                if (!sweep_node.submit_block(ebv_chain[i])) {
                    report.aborted("block rejected during thread sweep");
                    return 1;
                }

            double ev_sv_ms = 0;
            for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
                auto r = sweep_node.submit_block(ebv_chain[i]);
                if (!r) {
                    report.aborted("block rejected during thread sweep");
                    return 1;
                }
                ev_sv_ms += bench::ms(r->ev) + bench::ms(r->sv);
            }
            // Speedup is relative to the serial inline row in both modes.
            if (threads == 1 && !batched) base_ev_sv_ms = ev_sv_ms;
            const double speedup = ev_sv_ms > 0 ? base_ev_sv_ms / ev_sv_ms : 0.0;
            std::printf("%-8zu %8s %12.2f %9.2fx\n", threads,
                        batched ? "on" : "off", ev_sv_ms, speedup);
            report.row(
                "{\"threads\":%zu,\"batch\":%s,\"ev_sv_ms\":%.3f,\"speedup\":%.3f}",
                threads, batched ? "true" : "false", ev_sv_ms, speedup);
        }
    }
    return 0;
}
