// Reproduces Fig 16a/16b: per-block validation time, baseline vs EBV, for
// ten consecutive blocks, plus EBV's EV/UV/SV/others breakdown.
//
// Paper findings to reproduce: EBV cuts validation time by up to 93.5 %;
// inside EBV, EV and UV are negligible and SV dominates.
#include <chrono>
#include <cstdio>

#include "core/sighash_cache.hpp"
#include "crypto/sha256.hpp"
#include "harness.hpp"

using namespace ebv;

namespace {

// Transactions for the sighash-phase isolation rows: P2PKH-shaped 25-byte
// scripts, one ELs output per input, two outputs — the sizes set the
// serialization volume the template amortizes, nothing else matters here.
constexpr std::size_t kPhaseTxs = 64;

core::EbvTransaction sighash_phase_tx(util::Rng& rng, std::size_t inputs) {
    core::EbvTransaction tx;
    tx.version = 2;
    tx.locktime = 0;
    tx.inputs.resize(inputs);
    for (auto& in : tx.inputs) {
        rng.fill({in.prevout.txid.bytes().data(), 32});
        in.prevout.index = static_cast<std::uint32_t>(rng.next());
        in.sequence = 0xffffffff;
        in.els.outputs.resize(1);
        in.els.outputs[0].value = 50'000;
        in.els.outputs[0].lock_script.resize(25);
        rng.fill(in.els.outputs[0].lock_script);
        in.out_index = 0;
    }
    tx.outputs.resize(2);
    for (auto& out : tx.outputs) {
        out.value = 25'000;
        out.lock_script.resize(25);
        rng.fill(out.lock_script);
    }
    return tx;
}

}  // namespace

int main() {
    bench::JsonReport report("fig16_validation_compare");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1000));
    const std::uint32_t measured = 10;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 600'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.25);

    std::fprintf(stderr, "fig16: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    std::fprintf(stderr, "fig16: converting...\n");
    const auto ebv_chain = bench::convert_chain(chain);

    bench::TempDir dir("fig16");
    chain::BitcoinNode btc_node(
        bench::baseline_options(chain, dir, /*verify_scripts=*/true));
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    core::EbvNode ebv_node(ebv_options);

    for (std::uint32_t i = 0; i + measured < blocks; ++i) {
        if (!btc_node.submit_block(chain.blocks[i]) ||
            !ebv_node.submit_block(ebv_chain[i])) {
            report.aborted("block rejected during warm-up");
            return 1;
        }
    }

    std::printf("Fig 16a — per-block validation time (ms), baseline vs EBV\n");
    std::printf("%-8s %8s %12s %12s %12s\n", "height", "inputs", "bitcoin", "ebv",
                "reduction");
    bench::print_rule(58);

    std::vector<core::EbvTimings> ebv_rows;
    double best_reduction = 0;
    for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
        auto rb = btc_node.submit_block(chain.blocks[i]);
        auto re = ebv_node.submit_block(ebv_chain[i]);
        if (!rb || !re) {
            report.aborted("block rejected during measurement");
            return 1;
        }
        const double btc_ms = bench::ms(rb->total());
        const double ebv_ms = bench::ms(re->total());
        const double reduction = btc_ms > 0 ? 100.0 * (1.0 - ebv_ms / btc_ms) : 0.0;
        best_reduction = std::max(best_reduction, reduction);
        std::printf("%-8u %8zu %12.2f %12.2f %11.1f%%\n", i, rb->inputs, btc_ms, ebv_ms,
                    reduction);
        report.row("{\"height\":%u,\"inputs\":%zu,\"btc_ms\":%.3f,\"ebv_ms\":%.3f,"
                   "\"ev_ms\":%.4f,\"uv_ms\":%.4f,\"sv_ms\":%.4f}",
                   i, rb->inputs, btc_ms, ebv_ms, bench::ms(re->ev),
                   bench::ms(re->uv), bench::ms(re->sv));
        ebv_rows.push_back(*re);
    }

    std::printf("\nFig 16b — EBV validation breakdown (ms)\n");
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "height", "EV", "UV", "SV", "others",
                "total");
    bench::print_rule(64);
    std::uint32_t height = blocks - measured;
    for (const auto& t : ebv_rows) {
        std::printf("%-8u %10.3f %10.3f %10.2f %10.3f %10.2f\n", height++,
                    bench::ms(t.ev), bench::ms(t.uv), bench::ms(t.sv),
                    bench::ms(t.others_combined()), bench::ms(t.total()));
    }

    bench::print_rule(64);
    std::printf("best per-block reduction: %.1f%% (paper: 93.5%% on its outlier block);\n"
                "EV+UV are negligible and SV dominates EBV time, as in the paper.\n",
                best_reduction);

    // ---- Thread-count sweep: fused parallel EV+SV -------------------------
    // A fresh node per (thread count, batch mode) replays the prefix, then
    // the same ten measured blocks; ev_sv_ms sums the proof-bound
    // (parallelized) phases. The batched rows defer OP_CHECKSIG triples into
    // crypto::verify_batch; the sweep pins both modes explicitly so an
    // EBV_BATCH_VERIFY ambient setting cannot collapse the comparison.
    std::printf("\nEBV thread-count sweep — EV+SV wall time over the measured blocks\n");
    std::printf("%-8s %8s %12s %10s\n", "threads", "batch", "ev_sv_ms", "speedup");
    bench::print_rule(40);

    double base_ev_sv_ms = 0;
    for (const bool batched : {false, true}) {
        for (const std::size_t threads : bench::env_thread_sweep()) {
            util::ThreadPool pool(threads);
            core::EbvNodeOptions sweep_options = ebv_options;
            sweep_options.validator.script_pool = &pool;
            sweep_options.validator.batch_verify = batched;
            core::EbvNode sweep_node(sweep_options);
            for (std::uint32_t i = 0; i + measured < blocks; ++i)
                if (!sweep_node.submit_block(ebv_chain[i])) {
                    report.aborted("block rejected during thread sweep");
                    return 1;
                }

            double ev_sv_ms = 0;
            for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
                auto r = sweep_node.submit_block(ebv_chain[i]);
                if (!r) {
                    report.aborted("block rejected during thread sweep");
                    return 1;
                }
                ev_sv_ms += bench::ms(r->ev) + bench::ms(r->sv);
            }
            // Speedup is relative to the serial inline row in both modes.
            if (threads == 1 && !batched) base_ev_sv_ms = ev_sv_ms;
            const double speedup = ev_sv_ms > 0 ? base_ev_sv_ms / ev_sv_ms : 0.0;
            std::printf("%-8zu %8s %12.2f %9.2fx\n", threads,
                        batched ? "on" : "off", ev_sv_ms, speedup);
            report.row(
                "{\"threads\":%zu,\"batch\":%s,\"ev_sv_ms\":%.3f,\"speedup\":%.3f}",
                threads, batched ? "true" : "false", ev_sv_ms, speedup);
        }
    }

    // ---- Scheduler × skew sweep: work stealing vs shared counter ----------
    // Same replay protocol over two chains: the uniform one above (skew 0)
    // and a second chain whose per-input SV cost is Zipf-skewed (1-of-M
    // multisig, signer last — see workload::GeneratorOptions::skew). Under
    // uniform cost the schedulers should tie; under skew the stealing
    // scheduler's finer splits bound the straggler tail the shared counter
    // pays in barrier_wait. Inline verification on both sides (batch mode's
    // optimistic run re-verifies wrong-key multisig attempts inline anyway,
    // which would blur the comparison). Speedup is relative to the
    // counter/1-thread row of the same skew level, so steal-vs-counter is a
    // direct ratio within a level.
    const double skew = bench::env_double("EBV_SKEW", 1.0);
    std::printf("\nScheduler sweep — EV+SV wall time, uniform vs skewed cost "
                "(EBV_SKEW=%.2f)\n",
                skew);
    std::printf("%-10s %6s %8s %12s %10s\n", "scheduler", "skew", "threads",
                "ev_sv_ms", "speedup");
    bench::print_rule(50);

    std::vector<double> skew_levels{0.0};
    if (skew > 0.0) {
        skew_levels.push_back(skew);
        std::fprintf(stderr, "fig16: generating %u skewed blocks (skew=%.2f)...\n",
                     blocks, skew);
    }
    workload::GeneratorOptions skew_gen = gen_options;
    skew_gen.skew = skew;
    const std::vector<core::EbvBlock> skewed_chain =
        skew > 0.0 ? bench::convert_chain(bench::build_chain(skew_gen, blocks))
                   : std::vector<core::EbvBlock>{};

    for (const double level : skew_levels) {
        const auto& level_chain = level > 0.0 ? skewed_chain : ebv_chain;
        double counter_base_ms = 0;
        for (const util::SchedulerMode mode :
             {util::SchedulerMode::kCounter, util::SchedulerMode::kSteal}) {
            for (const std::size_t threads : bench::env_thread_sweep()) {
                util::ThreadPool pool(util::ThreadPool::Options{threads, mode, {}});
                core::EbvNodeOptions sched_options = ebv_options;
                sched_options.validator.script_pool = &pool;
                sched_options.validator.batch_verify = false;
                core::EbvNode sched_node(sched_options);
                for (std::uint32_t i = 0; i + measured < blocks; ++i)
                    if (!sched_node.submit_block(level_chain[i])) {
                        report.aborted("block rejected during scheduler sweep");
                        return 1;
                    }

                double ev_sv_ms = 0;
                for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
                    auto r = sched_node.submit_block(level_chain[i]);
                    if (!r) {
                        report.aborted("block rejected during scheduler sweep");
                        return 1;
                    }
                    ev_sv_ms += bench::ms(r->ev) + bench::ms(r->sv);
                }
                if (mode == util::SchedulerMode::kCounter && threads == 1)
                    counter_base_ms = ev_sv_ms;
                const double speedup =
                    ev_sv_ms > 0 ? counter_base_ms / ev_sv_ms : 0.0;
                std::printf("%-10s %6.2f %8zu %12.2f %9.2fx\n",
                            util::to_string(mode), level, threads, ev_sv_ms, speedup);
                report.row("{\"scheduler\":\"%s\",\"skew\":%.2f,\"threads\":%zu,"
                           "\"ev_sv_ms\":%.3f,\"speedup\":%.3f}",
                           util::to_string(mode), level, threads, ev_sv_ms, speedup);
            }
        }
    }

    // ---- Sighash-template sweep -------------------------------------------
    // Same replay, toggling the O(n) per-transaction sighash template
    // (core::TxSighashCache) that replaces the naive O(n · tx_size)
    // re-serializing path inside SV. Serial, inline signatures, so the
    // delta is the template's alone. ECDSA dominates SV (~0.4 ms/input vs
    // ~2 µs/input of sighash), so the honest end-to-end expectation is
    // parity — no regression — with the template's win isolated by the
    // sighash-phase rows below. Min-of-reps tames single-core timing noise.
    // The active SHA-256 row is reported too: EBV_SHA256_IMPL=sha-ni /
    // avx512 reruns land in the same JSON.
    const auto reps = static_cast<std::uint32_t>(bench::env_u64("EBV_REPS", 3));
    std::printf("\nEBV sighash-template sweep — EV+SV wall time, min of %u reps "
                "(sha256: %s / %s)\n",
                reps, crypto::sha256_impl(), crypto::sha256_batch_impl());
    std::printf("%-10s %12s %10s\n", "template", "ev_sv_ms", "speedup");
    bench::print_rule(36);

    double naive_ev_sv_ms = 0;
    for (const bool tpl : {false, true}) {
        double best_ms = 0;
        for (std::uint32_t rep = 0; rep < reps; ++rep) {
            core::EbvNodeOptions tpl_options = ebv_options;
            tpl_options.validator.batch_verify = false;
            tpl_options.validator.sighash_template = tpl;
            core::EbvNode tpl_node(tpl_options);
            for (std::uint32_t i = 0; i + measured < blocks; ++i)
                if (!tpl_node.submit_block(ebv_chain[i])) {
                    report.aborted("block rejected during sighash-template sweep");
                    return 1;
                }

            double ev_sv_ms = 0;
            for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
                auto r = tpl_node.submit_block(ebv_chain[i]);
                if (!r) {
                    report.aborted("block rejected during sighash-template sweep");
                    return 1;
                }
                ev_sv_ms += bench::ms(r->ev) + bench::ms(r->sv);
            }
            if (rep == 0 || ev_sv_ms < best_ms) best_ms = ev_sv_ms;
        }
        if (!tpl) naive_ev_sv_ms = best_ms;
        const double speedup = best_ms > 0 ? naive_ev_sv_ms / best_ms : 0.0;
        std::printf("%-10s %12.2f %9.2fx\n", tpl ? "on" : "off", best_ms, speedup);
        report.row("{\"sighash_template\":%s,\"ev_sv_ms\":%.3f,\"speedup\":%.3f,"
                   "\"sha256_impl\":\"%s\",\"sha256_batch_impl\":\"%s\"}",
                   tpl ? "true" : "false", best_ms, speedup, crypto::sha256_impl(),
                   crypto::sha256_batch_impl());
    }

    // ---- Sighash-phase isolation ------------------------------------------
    // The template's delta with the ECDSA floor stripped away: per input
    // count, time producing every input's standard digest via the naive
    // re-serializing ebv_signature_hash vs the exact gated path the
    // validators take (naive below core::kSighashCacheMinInputs, eager
    // TxSighashCache at or above it). The single-input row therefore runs
    // identical code on both sides — the "no regression" statement is
    // structural, not statistical.
    std::printf("\nSighash-phase isolation — %u-tx batches, min of 5 reps\n",
                kPhaseTxs);
    std::printf("%-8s %12s %12s %10s\n", "inputs", "naive_ms", "template_ms",
                "speedup");
    bench::print_rule(46);

    for (const std::size_t inputs : {std::size_t{1}, std::size_t{16}, std::size_t{64}}) {
        util::Rng rng(gen_options.seed + inputs);
        std::vector<core::EbvTransaction> txs;
        txs.reserve(kPhaseTxs);
        for (std::size_t t = 0; t < kPhaseTxs; ++t)
            txs.push_back(sighash_phase_tx(rng, inputs));

        std::uint8_t sink = 0;
        double naive_ms = 0, tpl_ms = 0;
        for (int rep = 0; rep < 5; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            for (const auto& tx : txs)
                for (std::size_t i = 0; i < tx.inputs.size(); ++i)
                    sink ^= core::ebv_signature_hash(
                                tx, i, tx.inputs[i].els.outputs[0].lock_script, 0x01)
                                .bytes()[0];
            const auto t1 = std::chrono::steady_clock::now();
            for (const auto& tx : txs) {
                if (tx.inputs.size() >= core::kSighashCacheMinInputs) {
                    const core::TxSighashCache cache(tx);
                    for (std::size_t i = 0; i < tx.inputs.size(); ++i)
                        sink ^= cache.digest(i, tx.inputs[i].els.outputs[0].lock_script,
                                             0x01)
                                    .bytes()[0];
                } else {
                    for (std::size_t i = 0; i < tx.inputs.size(); ++i)
                        sink ^= core::ebv_signature_hash(
                                    tx, i, tx.inputs[i].els.outputs[0].lock_script, 0x01)
                                    .bytes()[0];
                }
            }
            const auto t2 = std::chrono::steady_clock::now();
            const double n_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
            const double t_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
            if (rep == 0 || n_ms < naive_ms) naive_ms = n_ms;
            if (rep == 0 || t_ms < tpl_ms) tpl_ms = t_ms;
        }
        if (sink == 0x5c) std::fputc('\0', stderr);  // keep the digests live
        const double speedup = tpl_ms > 0 ? naive_ms / tpl_ms : 0.0;
        std::printf("%-8zu %12.3f %12.3f %9.2fx\n", inputs, naive_ms, tpl_ms, speedup);
        report.row("{\"sighash_phase_inputs\":%zu,\"txs\":%zu,\"naive_ms\":%.4f,"
                   "\"template_ms\":%.4f,\"speedup\":%.3f,\"sha256_impl\":\"%s\","
                   "\"sha256_batch_impl\":\"%s\"}",
                   inputs, kPhaseTxs, naive_ms, tpl_ms, speedup, crypto::sha256_impl(),
                   crypto::sha256_batch_impl());
    }
    return 0;
}
