// Fig 20 (extension): heavy-traffic mempool admission and signature-cache
// validation reuse (docs/MEMPOOL.md).
//
// A miner-side node ingests a burst workload of standalone transactions
// through TxPool::submit_batch — EV proof folds, sighash templates, and SV
// fanned over a util::ThreadPool — then packages the pool into a block
// template and validates it. With a shared core::SigCache, every signature
// verified at admission short-circuits SV when the template connects, so
// block validation approaches UV-only cost; without it the node pays the
// full curve work twice.
//
// The sweep crosses worker threads x admission burst size (arrival), each
// point run cold (no cache) and warm (pool and validator share one cache),
// reporting admission throughput, template-connect latency, and the
// connect-time speedup the cache buys. `cache_hit_speedup` is the CI-gated
// headline: warm-pool block validation must stay well ahead of cold.
//
// Knobs: EBV_BLOCKS (funding chain length; spendable outputs scale with
// it), EBV_SEED, EBV_SIGCACHE_BYTES / EBV_MEMPOOL_BYTES (budgets).
#include <algorithm>
#include <cstdio>
#include <optional>

#include "core/chain_archive.hpp"
#include "core/sig_cache.hpp"
#include "core/tx_pool.hpp"
#include "harness.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace ebv;

namespace {

constexpr std::size_t kOutputsPerCoinbase = 8;

struct Workload {
    chain::ChainParams params;
    crypto::PrivateKey key;
    std::vector<core::EbvBlock> chain;
    std::vector<core::EbvTransaction> txs;

    [[nodiscard]] script::Script lock() const {
        return script::make_p2pkh(key.public_key().id());
    }
};

/// Self-mined funding chain: every coinbase splits the subsidy across
/// kOutputsPerCoinbase outputs paying one key, so each mature block funds
/// that many independent single-input spends (shuffled, varied fees).
Workload build_workload(std::uint32_t blocks, std::uint64_t seed) {
    util::Rng rng(seed);
    Workload w{chain::ChainParams::simnet(), crypto::PrivateKey::generate(rng), {}, {}};
    w.params.coinbase_maturity = 1;

    core::EbvNodeOptions options;
    options.params = w.params;
    core::EbvNode scratch(options);
    core::ChainArchive archive;
    for (std::uint32_t h = 0; h < blocks; ++h) {
        core::EbvBlock block;
        core::EbvTransaction coinbase;
        coinbase.coinbase_data = {static_cast<std::uint8_t>(h),
                                  static_cast<std::uint8_t>(h >> 8), 0x20};
        const chain::Amount subsidy = w.params.subsidy_at(h);
        const chain::Amount per_out = subsidy / kOutputsPerCoinbase;
        for (std::size_t k = 0; k < kOutputsPerCoinbase; ++k) {
            const chain::Amount value =
                k == 0 ? per_out + subsidy % kOutputsPerCoinbase : per_out;
            coinbase.outputs.push_back(chain::TxOut{value, w.lock()});
        }
        block.txs.push_back(std::move(coinbase));
        block.header.prev_hash =
            scratch.headers().empty() ? crypto::Hash256{} : scratch.headers().tip_hash();
        block.assign_stake_positions();
        const auto result = scratch.submit_block(block);
        if (!result) {
            std::fprintf(stderr, "fig20: funding chain rejected: %s\n",
                         result.error().describe().c_str());
            std::abort();
        }
        archive.add_block(block);
        w.chain.push_back(std::move(block));
    }

    // Only heights <= tip - maturity are spendable when the template lands.
    for (std::uint32_t h = 0; h + w.params.coinbase_maturity < blocks; ++h) {
        const chain::Amount subsidy = w.params.subsidy_at(h);
        const chain::Amount per_out = subsidy / kOutputsPerCoinbase;
        for (std::size_t k = 0; k < kOutputsPerCoinbase; ++k) {
            core::EbvTransaction tx;
            tx.inputs.push_back(
                archive.make_input(h, 0, static_cast<std::uint16_t>(k)));
            // make_input leaves the legacy outpoint zeroed; give each spend
            // a distinct one so equal-fee spends don't share a sighash (and
            // thus a signature) — that would let admission hit its own
            // cache and flatter the warm numbers.
            tx.inputs[0].prevout.index =
                h * static_cast<std::uint32_t>(kOutputsPerCoinbase) +
                static_cast<std::uint32_t>(k);
            const chain::Amount in_value =
                k == 0 ? per_out + subsidy % kOutputsPerCoinbase : per_out;
            const chain::Amount fee =
                1'000'000 + static_cast<chain::Amount>(rng.below(64)) * 250'000;
            tx.outputs.push_back(chain::TxOut{in_value - fee, w.lock()});
            const crypto::Hash256 digest =
                core::ebv_signature_hash(tx, 0, w.lock(), 0x01);
            util::Bytes sig = w.key.sign(digest).to_der();
            sig.push_back(0x01);
            tx.inputs[0].unlock_script =
                script::make_p2pkh_unlock(sig, w.key.public_key());
            w.txs.push_back(std::move(tx));
        }
    }
    // Shuffle so bursts interleave feerates and funding heights.
    for (std::size_t i = w.txs.size(); i > 1; --i)
        std::swap(w.txs[i - 1], w.txs[rng.below(i)]);
    return w;
}

struct RunResult {
    double admit_ms = 0;    ///< total submit_batch wall time across bursts
    double admit_tx_us = 0; ///< admit_ms amortized per transaction
    double connect_ms = 0;  ///< template submit_block wall time
    double e2e_ms = 0;      ///< first submit -> template block validated
    double hit_rate_pct = 0;  ///< connect-time SV cache hit rate
    std::size_t accepted = 0;
};

/// One sweep point: admit every transaction in bursts of `arrival`, build
/// one template holding the whole pool, validate it on the same node.
std::optional<RunResult> run_point(const Workload& w, std::size_t threads,
                                   std::size_t arrival, bool use_cache) {
    const auto& hits = obs::Registry::global().counter("ebv.sigcache.hits");
    const auto& misses = obs::Registry::global().counter("ebv.sigcache.misses");

    core::SigCache cache;  // fresh per point so earlier runs can't pre-warm it
    std::optional<util::ThreadPool> workers;
    if (threads > 1) workers.emplace(threads);

    core::EbvNodeOptions options;
    options.params = w.params;
    options.validator.sigcache = use_cache ? &cache : nullptr;
    if (workers) options.validator.script_pool = &*workers;
    core::EbvNode node(options);
    for (const auto& block : w.chain) {
        if (!node.submit_block(block)) return std::nullopt;
    }

    core::TxPoolOptions pool_options = core::TxPoolOptions::from_env();
    pool_options.pool = workers ? &*workers : nullptr;
    pool_options.sigcache = use_cache ? &cache : nullptr;
    core::TxPool pool(w.params, node.headers(), node.status(), pool_options);

    RunResult out;
    util::Stopwatch watch;
    for (std::size_t i = 0; i < w.txs.size(); i += arrival) {
        const std::size_t n = std::min(arrival, w.txs.size() - i);
        const auto verdicts = pool.submit_batch({w.txs.data() + i, n});
        for (const core::TxAdmission v : verdicts)
            out.accepted += v == core::TxAdmission::kAccepted;
    }
    out.admit_ms = static_cast<double>(watch.elapsed_ns()) / 1e6;
    out.admit_tx_us = w.txs.empty()
                          ? 0
                          : out.admit_ms * 1e3 / static_cast<double>(w.txs.size());
    if (out.accepted != w.txs.size()) return std::nullopt;

    const core::EbvBlock block = pool.build_template(w.lock(), w.txs.size());
    const std::uint64_t hits0 = hits.value(), misses0 = misses.value();
    util::Stopwatch connect_watch;
    if (!node.submit_block(block)) return std::nullopt;
    out.connect_ms = static_cast<double>(connect_watch.elapsed_ns()) / 1e6;
    out.e2e_ms = static_cast<double>(watch.elapsed_ns()) / 1e6;
    const std::uint64_t h = hits.value() - hits0, m = misses.value() - misses0;
    out.hit_rate_pct =
        (h + m) == 0 ? 0 : 100.0 * static_cast<double>(h) / static_cast<double>(h + m);
    return out;
}

}  // namespace

int main() {
    bench::JsonReport report("fig20_mempool");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 24));
    const std::uint64_t seed = bench::env_u64("EBV_SEED", 42);

    std::fprintf(stderr, "fig20: building %u funding blocks...\n", blocks);
    const Workload w = build_workload(blocks, seed);

    const std::size_t thread_sweep[] = {1, 2, 4};
    const std::size_t arrival_sweep[] = {32, 256};

    std::printf("Fig 20 — mempool admission + sigcache reuse, %zu txs over %u "
                "blocks:\nsubmit->block-validated latency, cold (no cache) vs warm "
                "(admission-shared sigcache)\n", w.txs.size(), blocks);
    std::printf("%-8s %-8s %12s %12s %14s %14s %12s %10s %9s\n", "threads", "arrival",
                "cold-admit", "warm-admit", "cold-connect", "warm-connect", "warm-e2e",
                "hit-rate", "speedup");
    bench::print_rule(106);

    double speedup_at4 = 0;
    for (const std::size_t threads : thread_sweep) {
        for (const std::size_t arrival : arrival_sweep) {
            const auto cold = run_point(w, threads, arrival, /*use_cache=*/false);
            const auto warm = run_point(w, threads, arrival, /*use_cache=*/true);
            if (!cold || !warm) {
                report.aborted("admission or template validation failed");
                std::fprintf(stderr, "fig20: sweep point %zu/%zu failed\n", threads,
                             arrival);
                return 1;
            }
            const double speedup =
                warm->connect_ms > 0 ? cold->connect_ms / warm->connect_ms : 0;
            if (threads == 4) speedup_at4 = std::max(speedup_at4, speedup);
            std::printf("%-8zu %-8zu %10.1fms %10.1fms %12.2fms %12.2fms %10.1fms "
                        "%9.1f%% %8.2fx\n",
                        threads, arrival, cold->admit_ms, warm->admit_ms,
                        cold->connect_ms, warm->connect_ms, warm->e2e_ms,
                        warm->hit_rate_pct, speedup);
            report.row(
                "{\"threads\":%zu,\"arrival\":%zu,\"txs\":%zu,"
                "\"cold_admit_ms\":%.2f,\"warm_admit_ms\":%.2f,"
                "\"admit_tx_us\":%.2f,\"cold_connect_ms\":%.2f,"
                "\"warm_connect_ms\":%.2f,\"cold_e2e_ms\":%.2f,\"warm_e2e_ms\":%.2f,"
                "\"hit_rate_pct\":%.1f,\"cache_hit_speedup\":%.3f}",
                threads, arrival, w.txs.size(), cold->admit_ms, warm->admit_ms,
                warm->admit_tx_us, cold->connect_ms, warm->connect_ms, cold->e2e_ms,
                warm->e2e_ms, warm->hit_rate_pct, speedup);
        }
    }

    bench::print_rule(106);
    std::printf("connect-time speedup from admission-verified signatures at 4 "
                "threads: %.2fx\n(the warm pool's template validates without "
                "re-running ECDSA: every admission-verified\nsignature is a sigcache "
                "hit, so block validation approaches UV-only cost).\n",
                speedup_at4);
    return 0;
}
