// Reproduces Fig 17a/17b: cumulative IBD time per 50k-block period,
// baseline vs EBV, over several repetitions (the paper uses 5 and draws
// boxplots), plus EBV's EV/UV/SV/others breakdown.
//
// Paper findings to reproduce: EBV reduces IBD time (−38.5 % at 650k), the
// gap widens with chain length, repetition variance is small, and SV
// dominates EBV's IBD time.
#include <algorithm>
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig17_ibd_compare");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1300));
    const auto reps = static_cast<std::uint32_t>(bench::env_u64("EBV_REPS", 3));
    if (blocks == 0) {
        std::fprintf(stderr, "fig17: EBV_BLOCKS must be >= 1\n");
        report.aborted("EBV_BLOCKS=0");
        return 1;
    }
    // Fewer blocks than the paper's 13 periods would make period_len 0 and
    // skip every block; clamp so tiny smoke runs still measure something.
    std::uint32_t periods = 13;
    if (blocks < periods) {
        std::fprintf(stderr,
                     "fig17: EBV_BLOCKS=%u < 13; clamping periods to %u "
                     "(one block per period)\n",
                     blocks, blocks);
        periods = blocks;
    }
    const std::uint32_t period_len = blocks / periods;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 650'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.2);

    std::fprintf(stderr, "fig17: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    std::fprintf(stderr, "fig17: converting...\n");
    const auto ebv_chain = bench::convert_chain(chain);

    // Cumulative IBD time at each period boundary, per repetition.
    std::vector<std::vector<double>> btc_cumulative(reps), ebv_cumulative(reps);
    core::EbvTimings ebv_breakdown{};

    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        std::fprintf(stderr, "fig17: repetition %u/%u\n", rep + 1, reps);
        bench::TempDir dir("fig17_r" + std::to_string(rep));
        chain::BitcoinNode btc_node(
            bench::baseline_options(chain, dir, /*verify_scripts=*/true));
        core::EbvNodeOptions ebv_options;
        ebv_options.params = gen_options.params;
        core::EbvNode ebv_node(ebv_options);

        double btc_total = 0;
        double ebv_total = 0;
        for (std::uint32_t p = 0; p < periods; ++p) {
            for (std::uint32_t i = p * period_len;
                 i < std::min<std::uint32_t>((p + 1) * period_len, blocks); ++i) {
                auto rb = btc_node.submit_block(chain.blocks[i]);
                auto re = ebv_node.submit_block(ebv_chain[i]);
                if (!rb || !re) {
                    std::fprintf(stderr, "rejection at block %u\n", i);
                    report.aborted("block rejected during IBD replay");
                    return 1;
                }
                btc_total += bench::ms(rb->total());
                ebv_total += bench::ms(re->total());
                if (rep == 0) ebv_breakdown += *re;
            }
            btc_cumulative[rep].push_back(btc_total);
            ebv_cumulative[rep].push_back(ebv_total);
        }
    }

    auto stats = [](std::vector<std::vector<double>>& runs, std::uint32_t p) {
        std::vector<double> v;
        for (auto& run : runs) v.push_back(run[p]);
        std::sort(v.begin(), v.end());
        struct S {
            double min, median, max;
        };
        return S{v.front(), v[v.size() / 2], v.back()};
    };

    std::printf("Fig 17a — cumulative IBD time at each period boundary (ms, %u reps)\n",
                reps);
    std::printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n", "height", "btc-min",
                "btc-med", "btc-max", "ebv-min", "ebv-med", "ebv-max", "reduction");
    bench::print_rule(88);
    double final_reduction = 0;
    for (std::uint32_t p = 0; p < periods; ++p) {
        const auto b = stats(btc_cumulative, p);
        const auto e = stats(ebv_cumulative, p);
        const double reduction =
            b.median > 0 ? 100.0 * (1.0 - e.median / b.median) : 0.0;
        final_reduction = reduction;
        char label[16];
        std::snprintf(label, sizeof label, "%uk", (p + 1) * 50);
        std::printf("%-10s %10.0f %10.0f %10.0f %10.0f %10.0f %10.0f %9.1f%%\n", label,
                    b.min, b.median, b.max, e.min, e.median, e.max, reduction);
        report.row("{\"period\":\"%s\",\"btc_median_ms\":%.1f,\"ebv_median_ms\":%.1f,"
                   "\"reduction_pct\":%.1f}",
                   label, b.median, e.median, reduction);
    }

    std::printf("\nFig 17b — EBV IBD time breakdown (ms, repetition 1)\n");
    std::printf("%10s %10s %10s %10s %10s\n", "EV", "UV", "SV", "others", "total");
    bench::print_rule(56);
    std::printf("%10.1f %10.1f %10.1f %10.1f %10.1f\n", bench::ms(ebv_breakdown.ev),
                bench::ms(ebv_breakdown.uv), bench::ms(ebv_breakdown.sv),
                bench::ms(ebv_breakdown.others_combined()),
                bench::ms(ebv_breakdown.total()));

    bench::print_rule(56);
    std::printf("IBD reduction at the final height: %.1f%% (paper: 38.5%%); EV+UV are\n"
                "small fractions and SV dominates, as in the paper.\n",
                final_reduction);

    // ---- Fig 17c (extension) — inter-block pipelined IBD vs serial ---------
    // Wall-clock for the whole EBV chain: the reference submit_block loop
    // (deliberately not submit_blocks, so EBV_PIPELINE cannot flip it) vs
    // the ebv::ibd window pipeline across a thread sweep. Accept/reject
    // parity between the two paths is covered by ibd_pipeline_test; here we
    // double-check connected counts and report the measured speedup.
    const auto window =
        static_cast<std::size_t>(bench::env_u64("EBV_PIPELINE_WINDOW", 16));
    std::printf("\nFig 17c — pipelined IBD (ebv::ibd, window=%zu) vs serial loop\n",
                window);
    std::printf("%-12s %8s %8s %8s %12s %9s\n", "mode", "threads", "window",
                "batch", "ibd-ms", "speedup");
    bench::print_rule(63);

    double serial_ms = 0;
    {
        core::EbvNodeOptions options;
        options.params = gen_options.params;
        core::EbvNode node(options);
        util::Stopwatch watch;
        for (std::uint32_t i = 0; i < blocks; ++i) {
            if (!node.submit_block(ebv_chain[i])) {
                std::fprintf(stderr, "serial rejection at block %u\n", i);
                report.aborted("block rejected in serial IBD pass");
                return 1;
            }
        }
        serial_ms = util::to_ms(watch.elapsed_ns());
        std::printf("%-12s %8u %8u %8s %12.1f %8.2fx\n", "serial", 1, 1, "off",
                    serial_ms, 1.0);
        report.row("{\"mode\":\"serial\",\"threads\":1,\"window\":1,"
                   "\"ibd_ms\":%.1f,\"speedup\":1.00,\"pipelined\":false}",
                   serial_ms);
    }

    for (const bool batched : {false, true}) {
        for (const std::size_t threads : bench::env_thread_sweep()) {
            util::ThreadPool pool(threads);
            core::EbvNodeOptions options;
            options.params = gen_options.params;
            options.validator.script_pool = &pool;
            options.validator.batch_verify = batched;
            options.pipeline.enabled = true;
            options.pipeline.window = window;
            core::EbvNode node(options);

            const ibd::BatchResult result = node.submit_blocks(ebv_chain);
            if (!result.ok() || result.connected != blocks) {
                std::fprintf(stderr, "pipelined rejection (threads=%zu): %s\n",
                             threads,
                             result.failure
                                 ? result.failure->failure.describe().c_str()
                                 : "aborted");
                report.aborted("block rejected in pipelined IBD pass");
                return 1;
            }
            const double pipe_ms =
                util::to_ms(static_cast<util::Nanoseconds>(result.wall_ns));
            const double speedup = pipe_ms > 0 ? serial_ms / pipe_ms : 0.0;
            // result.pipelined is the truth: EBV_PIPELINE=0 in the environment
            // forces the serial fallback even here, and the report must say so.
            std::printf("%-12s %8zu %8zu %8s %12.1f %8.2fx\n",
                        result.pipelined ? "pipelined" : "fallback", threads,
                        window, batched ? "on" : "off", pipe_ms, speedup);
            report.row("{\"mode\":\"pipelined\",\"threads\":%zu,\"window\":%zu,"
                       "\"batch\":%s,\"ibd_ms\":%.1f,\"speedup\":%.2f,"
                       "\"pipelined\":%s}",
                       threads, window, batched ? "true" : "false", pipe_ms,
                       speedup, result.pipelined ? "true" : "false");
        }
    }
    return 0;
}
