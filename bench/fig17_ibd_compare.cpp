// Reproduces Fig 17a/17b: cumulative IBD time per 50k-block period,
// baseline vs EBV, over several repetitions (the paper uses 5 and draws
// boxplots), plus EBV's EV/UV/SV/others breakdown.
//
// Paper findings to reproduce: EBV reduces IBD time (−38.5 % at 650k), the
// gap widens with chain length, repetition variance is small, and SV
// dominates EBV's IBD time.
#include <algorithm>
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig17_ibd_compare");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1300));
    const auto reps = static_cast<std::uint32_t>(bench::env_u64("EBV_REPS", 3));
    const std::uint32_t periods = 13;
    const std::uint32_t period_len = blocks / periods;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 650'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.2);

    std::fprintf(stderr, "fig17: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    std::fprintf(stderr, "fig17: converting...\n");
    const auto ebv_chain = bench::convert_chain(chain);

    // Cumulative IBD time at each period boundary, per repetition.
    std::vector<std::vector<double>> btc_cumulative(reps), ebv_cumulative(reps);
    core::EbvTimings ebv_breakdown{};

    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        std::fprintf(stderr, "fig17: repetition %u/%u\n", rep + 1, reps);
        bench::TempDir dir("fig17_r" + std::to_string(rep));
        chain::BitcoinNode btc_node(
            bench::baseline_options(chain, dir, /*verify_scripts=*/true));
        core::EbvNodeOptions ebv_options;
        ebv_options.params = gen_options.params;
        core::EbvNode ebv_node(ebv_options);

        double btc_total = 0;
        double ebv_total = 0;
        for (std::uint32_t p = 0; p < periods; ++p) {
            for (std::uint32_t i = p * period_len;
                 i < std::min<std::uint32_t>((p + 1) * period_len, blocks); ++i) {
                auto rb = btc_node.submit_block(chain.blocks[i]);
                auto re = ebv_node.submit_block(ebv_chain[i]);
                if (!rb || !re) {
                    std::fprintf(stderr, "rejection at block %u\n", i);
                    return 1;
                }
                btc_total += bench::ms(rb->total());
                ebv_total += bench::ms(re->total());
                if (rep == 0) ebv_breakdown += *re;
            }
            btc_cumulative[rep].push_back(btc_total);
            ebv_cumulative[rep].push_back(ebv_total);
        }
    }

    auto stats = [](std::vector<std::vector<double>>& runs, std::uint32_t p) {
        std::vector<double> v;
        for (auto& run : runs) v.push_back(run[p]);
        std::sort(v.begin(), v.end());
        struct S {
            double min, median, max;
        };
        return S{v.front(), v[v.size() / 2], v.back()};
    };

    std::printf("Fig 17a — cumulative IBD time at each period boundary (ms, %u reps)\n",
                reps);
    std::printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n", "height", "btc-min",
                "btc-med", "btc-max", "ebv-min", "ebv-med", "ebv-max", "reduction");
    bench::print_rule(88);
    double final_reduction = 0;
    for (std::uint32_t p = 0; p < periods; ++p) {
        const auto b = stats(btc_cumulative, p);
        const auto e = stats(ebv_cumulative, p);
        const double reduction =
            b.median > 0 ? 100.0 * (1.0 - e.median / b.median) : 0.0;
        final_reduction = reduction;
        char label[16];
        std::snprintf(label, sizeof label, "%uk", (p + 1) * 50);
        std::printf("%-10s %10.0f %10.0f %10.0f %10.0f %10.0f %10.0f %9.1f%%\n", label,
                    b.min, b.median, b.max, e.min, e.median, e.max, reduction);
        report.row("{\"period\":\"%s\",\"btc_median_ms\":%.1f,\"ebv_median_ms\":%.1f,"
                   "\"reduction_pct\":%.1f}",
                   label, b.median, e.median, reduction);
    }

    std::printf("\nFig 17b — EBV IBD time breakdown (ms, repetition 1)\n");
    std::printf("%10s %10s %10s %10s %10s\n", "EV", "UV", "SV", "others", "total");
    bench::print_rule(56);
    std::printf("%10.1f %10.1f %10.1f %10.1f %10.1f\n", bench::ms(ebv_breakdown.ev),
                bench::ms(ebv_breakdown.uv), bench::ms(ebv_breakdown.sv),
                bench::ms(ebv_breakdown.others_combined()),
                bench::ms(ebv_breakdown.total()));

    bench::print_rule(56);
    std::printf("IBD reduction at the final height: %.1f%% (paper: 38.5%%); EV+UV are\n"
                "small fractions and SV dominates, as in the paper.\n",
                final_reduction);
    return 0;
}
