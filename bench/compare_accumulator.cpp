// Extension experiment: EBV vs a Utreexo-style accumulator (paper §VII-B)
// on the same synthetic chain. Quantifies the paper's two arguments against
// accumulator schemes:
//   1. proof size grows with the total UTXO count (vs EBV's O(log
//      block-size) Merkle branch over a single block), and
//   2. proofs go stale as the accumulator reshapes every block, so holders
//      must continuously refresh them (the proposer burden).
// Also compares the validator-side state (forest roots vs bit-vector set).
#include <cstdio>
#include <unordered_map>

#include "accumulator/forest.hpp"
#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("compare_accumulator");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1200));
    const std::uint32_t period = blocks / 12;

    workload::GeneratorOptions options;
    options.seed = bench::env_u64("EBV_SEED", 42);
    options.signed_mode = false;
    options.height_scale = 650'000.0 / blocks;
    options.intensity = bench::env_double("EBV_INTENSITY", 1.0);

    std::fprintf(stderr, "compare_accumulator: generating %u blocks...\n", blocks);
    workload::ChainGenerator generator(options);
    intermediary::Converter converter;

    core::EbvNodeOptions ebv_options;
    ebv_options.params = options.params;
    ebv_options.validator.verify_scripts = false;
    core::EbvNode ebv_node(ebv_options);

    accumulator::MerkleForest forest;
    std::unordered_map<chain::OutPoint, accumulator::MerkleForest::LeafId,
                       chain::OutPointHasher>
        leaf_of;

    // A proof holder refreshing lazily: remember one proof per period and
    // check whether it still verifies when the period ends.
    std::vector<std::pair<accumulator::MerkleForest::LeafId, accumulator::ForestProof>>
        held_proofs;

    std::printf("EBV vs Utreexo-style accumulator (same chain, per ~50k-block period)\n");
    std::printf("%-10s %10s %12s %12s %12s %12s %10s\n", "height", "utxos",
                "acc-state-B", "ebv-state-B", "acc-proof-B", "ebv-proof-B",
                "stale%");
    bench::print_rule(84);

    std::uint64_t acc_proof_bytes = 0;
    std::uint64_t acc_proof_count = 0;
    std::uint64_t ebv_proof_bytes = 0;
    std::uint64_t ebv_proof_count = 0;

    util::Rng sample_rng(7);

    for (std::uint32_t i = 0; i < blocks; ++i) {
        const chain::Block block = generator.next_block();
        auto converted = converter.convert_block(block);
        if (!converted) {
            report.aborted("conversion failed");
            return 1;
        }

        // --- accumulator side -------------------------------------------
        for (const auto& tx : block.txs) {
            if (!tx.is_coinbase()) {
                for (const auto& in : tx.vin) {
                    const auto it = leaf_of.find(in.prevout);
                    if (it == leaf_of.end()) {
                        report.aborted("accumulator lost a live leaf");
                        return 1;
                    }
                    // Proposer supplies a fresh proof; validator verifies.
                    const auto proof = forest.prove(it->second);
                    if (!proof || !forest.verify(*proof)) {
                        report.aborted("accumulator proof failed verification");
                        return 1;
                    }
                    acc_proof_bytes += proof->byte_size();
                    ++acc_proof_count;
                    forest.remove(it->second);
                    leaf_of.erase(it);
                }
            }
            for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
                const chain::OutPoint outpoint{tx.txid(), o};
                util::Writer w;
                outpoint.serialize(w);
                w.i64(tx.vout[o].value);
                leaf_of.emplace(outpoint, forest.add(crypto::hash256(w.data())));
            }
        }

        // --- EBV side -----------------------------------------------------
        for (const auto& tx : converted->txs) {
            for (const auto& in : tx.inputs) {
                ebv_proof_bytes += in.serialized_size() - in.unlock_script.size();
                ++ebv_proof_count;
            }
        }
        if (!ebv_node.submit_block(*converted)) {
            report.aborted("block rejected during replay");
            return 1;
        }

        // Hold a random live proof at the start of each period...
        if (i % period == 0 && !leaf_of.empty()) {
            auto it = leaf_of.begin();
            std::advance(it, static_cast<long>(sample_rng.below(
                                 std::min<std::size_t>(leaf_of.size(), 50))));
            if (auto proof = forest.prove(it->second)) {
                held_proofs.emplace_back(it->second, std::move(*proof));
            }
        }

        // ...and report at each period end.
        if ((i + 1) % period == 0 || i + 1 == blocks) {
            std::size_t stale = 0;
            for (const auto& [id, proof] : held_proofs) {
                if (!forest.verify(proof)) ++stale;
            }
            const double stale_pct =
                held_proofs.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(stale) /
                          static_cast<double>(held_proofs.size());

            char label[16];
            std::snprintf(label, sizeof label, "%uk",
                          static_cast<unsigned>((i + 1) * options.height_scale / 1000));
            std::printf("%-10s %10zu %12zu %12zu %12.0f %12.0f %9.0f%%\n", label,
                        leaf_of.size(), forest.state_bytes(),
                        ebv_node.status_memory_bytes(),
                        acc_proof_count
                            ? static_cast<double>(acc_proof_bytes) /
                                  static_cast<double>(acc_proof_count)
                            : 0.0,
                        ebv_proof_count
                            ? static_cast<double>(ebv_proof_bytes) /
                                  static_cast<double>(ebv_proof_count)
                            : 0.0,
                        stale_pct);
            acc_proof_bytes = acc_proof_count = 0;
            ebv_proof_bytes = ebv_proof_count = 0;
        }
    }

    bench::print_rule(84);
    std::printf(
        "reading: the accumulator's validator state is tiny (a few roots), but its\n"
        "proofs grow with total UTXO count and stale out almost immediately —\n"
        "holders must refresh every block (paper §VII-B's critique). EBV's proofs\n"
        "depend only on the source block and never expire; its validator state is\n"
        "the bit-vector set, still orders of magnitude below the UTXO set.\n");
    return 0;
}
