// Reproduces Fig 14: memory requirement of the status data over time —
// baseline UTXO set vs EBV bit-vector set vs EBV without the sparse-vector
// optimization.
//
// Paper findings to reproduce: EBV needs a small fraction of the baseline
// (−93.1 % at the end: 4.3 GB → 303.4 MB) and the optimization contributes
// a growing share, −42.6 % at the end.
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig14_memory");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 3250));

    workload::GeneratorOptions options;
    options.seed = bench::env_u64("EBV_SEED", 42);
    options.signed_mode = false;
    options.height_scale = 650'000.0 / blocks;
    options.intensity = bench::env_double("EBV_INTENSITY", 2.0);

    std::fprintf(stderr, "fig14: generating + converting %u blocks...\n", blocks);

    workload::ChainGenerator generator(options);
    intermediary::Converter converter;

    core::EbvNodeOptions ebv_options;
    ebv_options.params = options.params;
    ebv_options.validator.verify_scripts = false;
    core::EbvNode ebv_node(ebv_options);

    // Baseline payload accounting (what the UTXO set must hold).
    std::unordered_map<chain::OutPoint, std::uint64_t, chain::OutPointHasher> entries;
    std::uint64_t utxo_payload = 0;

    std::printf("Fig 14 — status-data memory requirement by quarter (KB)\n");
    std::printf("%-8s %12s %14s %12s %14s %10s\n", "quarter", "real-height",
                "bitcoin-utxo", "ebv", "ebv-no-opt", "savings");
    bench::print_rule(78);

    std::uint32_t next_sample_quarter = 0;
    double final_ratio = 0;
    double final_opt_gain = 0;

    for (std::uint32_t i = 0; i < blocks; ++i) {
        const chain::Block block = generator.next_block();
        for (const auto& tx : block.txs) {
            if (!tx.is_coinbase()) {
                for (const auto& in : tx.vin) {
                    const auto it = entries.find(in.prevout);
                    if (it != entries.end()) {
                        utxo_payload -= it->second;
                        entries.erase(it);
                    }
                }
            }
            for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
                const chain::Coin coin{tx.vout[o].value, i, tx.is_coinbase(),
                                       tx.vout[o].lock_script};
                entries.emplace(chain::OutPoint{tx.txid(), o},
                                36 + coin.encode().size());
                utxo_payload += entries[chain::OutPoint{tx.txid(), o}];
            }
        }

        auto converted = converter.convert_block(block);
        if (!converted) {
            std::fprintf(stderr, "conversion failed at %u\n", i);
            report.aborted("conversion failed");
            return 1;
        }
        auto r = ebv_node.submit_block(*converted);
        if (!r) {
            std::fprintf(stderr, "ebv rejected block %u: %s\n", i,
                         r.error().describe().c_str());
            report.aborted("block rejected during IBD");
            return 1;
        }

        const auto real_height =
            static_cast<std::uint32_t>((i + 1) * options.height_scale);
        const auto q15_1 = workload::real_height_for_quarter(2015, 1);
        if (real_height >= q15_1) {
            const auto quarter_index = (real_height - q15_1) / (52'560 / 4);
            if (quarter_index >= next_sample_quarter) {
                const double btc_kb = static_cast<double>(utxo_payload) / 1024.0;
                const double ebv_kb =
                    static_cast<double>(ebv_node.status_memory_bytes()) / 1024.0;
                const double noopt_kb =
                    static_cast<double>(ebv_node.status_dense_memory_bytes()) / 1024.0;
                final_ratio = 100.0 * (1.0 - ebv_kb / btc_kb);
                final_opt_gain = 100.0 * (1.0 - ebv_kb / noopt_kb);
                std::printf("%-8s %12u %14.1f %12.1f %14.1f %9.1f%%\n",
                            workload::quarter_label_for_height(real_height).c_str(),
                            real_height, btc_kb, ebv_kb, noopt_kb, final_ratio);
                next_sample_quarter = static_cast<std::uint32_t>(quarter_index) + 1;
            }
        }
        if ((i + 1) % 500 == 0)
            std::fprintf(stderr, "  %u/%u blocks\n", i + 1, blocks);
    }

    bench::print_rule(78);
    std::printf("final: EBV saves %.1f%% of baseline status memory (paper: 93.1%%);\n"
                "vector optimization saves %.1f%% vs unoptimized EBV (paper: 42.6%%).\n",
                final_ratio, final_opt_gain);
    return 0;
}
