// Microbenchmarks for the EBV core: the UV primitive (bit tests against
// dense and sparse vectors), the sparse-encoding ablation, proof
// verification, and serial-vs-pooled script validation (the paper's
// "optimize SV" future-work direction, implemented here as an extension).
#include <benchmark/benchmark.h>

#include "core/bitvector.hpp"
#include "core/bitvector_set.hpp"
#include "core/ebv_transaction.hpp"
#include "core/ebv_validator.hpp"
#include "crypto/ecdsa.hpp"
#include "obs/trace.hpp"
#include "script/interpreter.hpp"
#include "script/standard.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ebv;

core::BitVector vector_with_ones(std::uint32_t size, std::uint32_t ones,
                                 std::uint64_t seed) {
    core::BitVector v = core::BitVector::all_ones(size);
    util::Rng rng(seed);
    while (v.ones() > ones) {
        v.reset(static_cast<std::uint32_t>(rng.below(size)));
    }
    return v;
}

// UV on a dense vector (early-life block).
void BM_BitVectorTestDense(benchmark::State& state) {
    const core::BitVector v = vector_with_ones(4096, 3000, 1);
    util::Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(v.test(static_cast<std::uint32_t>(rng.below(4096))));
    }
}
BENCHMARK(BM_BitVectorTestDense);

// UV on a sparse vector (old, mostly-spent block) — binary search.
void BM_BitVectorTestSparse(benchmark::State& state) {
    const core::BitVector v = vector_with_ones(4096, 50, 3);
    util::Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(v.test(static_cast<std::uint32_t>(rng.below(4096))));
    }
}
BENCHMARK(BM_BitVectorTestSparse);

void BM_BitVectorSerialize(benchmark::State& state) {
    const core::BitVector v =
        vector_with_ones(4096, static_cast<std::uint32_t>(state.range(0)), 5);
    for (auto _ : state) {
        util::Writer w;
        v.serialize(w);
        benchmark::DoNotOptimize(w.data());
    }
    state.counters["bytes"] = static_cast<double>(v.memory_bytes());
}
BENCHMARK(BM_BitVectorSerialize)->Arg(4096)->Arg(500)->Arg(50);

void BM_BitVectorSetSpend(benchmark::State& state) {
    core::BitVectorSet set;
    const std::uint32_t heights = 1000;
    for (std::uint32_t h = 0; h < heights; ++h) set.insert_block(h, 512);
    util::Rng rng(6);
    for (auto _ : state) {
        const auto h = static_cast<std::uint32_t>(rng.below(heights));
        const auto p = static_cast<std::uint32_t>(rng.below(512));
        benchmark::DoNotOptimize(set.check_unspent(h, p));
    }
}
BENCHMARK(BM_BitVectorSetSpend);

// Full EV: leaf hash of a realistic tidy transaction + branch fold.
void BM_ExistenceValidation(benchmark::State& state) {
    util::Rng rng(7);
    core::TidyTransaction tidy;
    tidy.input_hashes.resize(2);
    rng.fill({tidy.input_hashes[0].bytes().data(), 32});
    rng.fill({tidy.input_hashes[1].bytes().data(), 32});
    const auto key = crypto::PrivateKey::generate(rng);
    tidy.outputs.push_back(chain::TxOut{100, script::make_p2pkh(key.public_key().id())});
    tidy.outputs.push_back(chain::TxOut{200, script::make_p2pkh(key.public_key().id())});
    tidy.stake_position = 77;

    std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
    for (auto& leaf : leaves) rng.fill({leaf.bytes().data(), 32});
    leaves[3] = tidy.leaf_hash();
    const auto root = crypto::merkle_root(leaves);
    const auto branch = crypto::merkle_branch(leaves, 3);

    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::fold_branch(tidy.leaf_hash(), branch) == root);
    }
}
BENCHMARK(BM_ExistenceValidation)->Arg(64)->Arg(1024);

// Serial vs pooled P2PKH script verification — the SV-optimization
// extension measured directly.
void BM_ScriptVerifyBatch(benchmark::State& state) {
    util::Rng rng(8);
    const auto key = crypto::PrivateKey::generate(rng);
    const auto lock = script::make_p2pkh(key.public_key().id());

    core::EbvTransaction tx;
    core::EbvInput in;
    rng.fill({in.prevout.txid.bytes().data(), 32});
    in.els.outputs.push_back(chain::TxOut{100, lock});
    tx.inputs.push_back(in);
    tx.outputs.push_back(chain::TxOut{90, lock});
    const auto digest = core::ebv_signature_hash(tx, 0, lock, 0x01);
    util::Bytes sig = key.sign(digest).to_der();
    sig.push_back(0x01);
    tx.inputs[0].unlock_script = script::make_p2pkh_unlock(sig, key.public_key());

    const std::size_t batch = 32;
    const bool pooled = state.range(0) != 0;
    util::ThreadPool pool(pooled ? 0 : 1);

    for (auto _ : state) {
        core::EbvSignatureChecker checker(tx, 0);
        if (pooled && pool.thread_count() > 0) {
            pool.parallel_for(batch, [&](std::size_t) {
                benchmark::DoNotOptimize(
                    script::verify_script(tx.inputs[0].unlock_script, lock, checker));
            });
        } else {
            for (std::size_t i = 0; i < batch; ++i) {
                benchmark::DoNotOptimize(
                    script::verify_script(tx.inputs[0].unlock_script, lock, checker));
            }
        }
    }
    state.counters["sigs_per_iter"] = batch;
}
BENCHMARK(BM_ScriptVerifyBatch)->Arg(0)->Arg(1);

// Proof size vs ancestry depth — constant by design (tidy transactions).
void BM_ProofSerializedSize(benchmark::State& state) {
    util::Rng rng(9);
    core::EbvInput in;
    in.els.input_hashes.resize(static_cast<std::size_t>(state.range(0)));
    for (auto& h : in.els.input_hashes) rng.fill({h.bytes().data(), 32});
    const auto key = crypto::PrivateKey::generate(rng);
    in.els.outputs.push_back(chain::TxOut{5, script::make_p2pkh(key.public_key().id())});
    in.mbr.siblings.resize(11);  // ~2048-leaf block
    for (auto _ : state) {
        benchmark::DoNotOptimize(in.serialized_size());
    }
    state.counters["proof_bytes"] = static_cast<double>(in.serialized_size());
}
BENCHMARK(BM_ProofSerializedSize)->Arg(1)->Arg(4)->Arg(16);

// Disabled-path span overhead: hot validation paths carry always-on
// ScopedSpan instrumentation, so the inert path (one relaxed atomic load,
// no id allocation, no clock reads) must stay within a few ns. The
// obs_trace_tree_test DisabledSpanStaysCheap test asserts the same bound.
void BM_TraceDisabled(benchmark::State& state) {
    obs::Tracer& tracer = obs::Tracer::global();
    const bool was_enabled = tracer.enabled();
    tracer.set_enabled(false);
    for (auto _ : state) {
        obs::ScopedSpan span("micro.trace.disabled", "bench");
        benchmark::DoNotOptimize(&span);
    }
    tracer.set_enabled(was_enabled);
}
BENCHMARK(BM_TraceDisabled);

// Enabled comparison point: id allocation, two clock reads, context push,
// and the ring's mutex. Keeps the cost of `detail` instrumentation honest.
void BM_TraceEnabled(benchmark::State& state) {
    obs::Tracer& tracer = obs::Tracer::global();
    const bool was_enabled = tracer.enabled();
    tracer.set_enabled(true);
    for (auto _ : state) {
        obs::ScopedSpan span("micro.trace.enabled", "bench");
        benchmark::DoNotOptimize(&span);
    }
    tracer.clear();
    tracer.set_enabled(was_enabled);
}
BENCHMARK(BM_TraceEnabled);

}  // namespace

BENCHMARK_MAIN();
