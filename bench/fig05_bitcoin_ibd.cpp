// Reproduces Fig 5: baseline IBD time split into DBO / SV / others per
// 50,000-block period (13 periods to height 650,000), plus the DBO:total
// ratio line.
//
// Paper findings to reproduce: DBO time rises across periods and exceeds
// 50 % of period time in the late chain; the 500k-550k period dips because
// consolidation shrinks the UTXO set.
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig05_bitcoin_ibd");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1300));
    const std::uint32_t periods = 13;
    const std::uint32_t period_len = blocks / periods;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 650'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.2);

    std::fprintf(stderr, "fig05: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);

    bench::TempDir dir("fig05");
    chain::BitcoinNode node(bench::baseline_options(chain, dir, /*verify_scripts=*/true));

    std::printf("Fig 5 — baseline IBD breakdown per period (ms; period = %u blocks ≈ 50k real)\n",
                period_len);
    std::printf("%-14s %8s %10s %10s %10s %10s %8s\n", "real-heights", "inputs", "DBO",
                "SV", "others", "total", "DBO%");
    bench::print_rule(76);

    for (std::uint32_t p = 0; p < periods; ++p) {
        chain::BlockTimings period{};
        for (std::uint32_t i = p * period_len;
             i < std::min<std::uint32_t>((p + 1) * period_len, blocks); ++i) {
            auto r = node.submit_block(chain.blocks[i]);
            if (!r) {
                std::fprintf(stderr, "block %u rejected: %s\n", i,
                             r.error().describe().c_str());
                report.aborted("block rejected during IBD");
                return 1;
            }
            period += *r;
        }
        const double total = bench::ms(period.total());
        char label[32];
        std::snprintf(label, sizeof label, "%uk-%uk", p * 50, (p + 1) * 50);
        std::printf("%-14s %8zu %10.1f %10.1f %10.1f %10.1f %7.1f%%\n", label,
                    period.inputs, bench::ms(period.dbo), bench::ms(period.sv),
                    bench::ms(period.other), total,
                    total > 0 ? 100.0 * bench::ms(period.dbo) / total : 0.0);
    }

    bench::print_rule(76);
    std::printf("expectation (paper): rising DBO share, > 50%% in late periods; a dip\n"
                "in the 500k-550k period (UTXO consolidation).\n");
    return 0;
}
