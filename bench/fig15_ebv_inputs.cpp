// Reproduces Fig 15: EBV per-block input count vs validation time for ten
// consecutive blocks.
//
// Paper finding to reproduce: with all status data memory-resident, EBV's
// block-validation time tracks the input count (no cache-miss outliers).
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig15_ebv_inputs");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1000));
    const std::uint32_t measured = 10;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 600'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.25);

    std::fprintf(stderr, "fig15: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    std::fprintf(stderr, "fig15: converting...\n");
    const auto ebv_chain = bench::convert_chain(chain);

    core::EbvNodeOptions options;
    options.params = gen_options.params;
    core::EbvNode node(options);

    for (std::uint32_t i = 0; i + measured < blocks; ++i) {
        auto r = node.submit_block(ebv_chain[i]);
        if (!r) {
            std::fprintf(stderr, "block %u rejected: %s\n", i, r.error().describe().c_str());
            report.aborted("block rejected during warm-up");
            return 1;
        }
    }

    std::printf("Fig 15 — EBV per-block input count vs validation time\n");
    std::printf("%-8s %8s %12s %14s\n", "height", "inputs", "time-ms", "ms-per-input");
    bench::print_rule(48);

    for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
        auto r = node.submit_block(ebv_chain[i]);
        if (!r) {
            std::fprintf(stderr, "block %u rejected: %s\n", i, r.error().describe().c_str());
            report.aborted("block rejected during measurement");
            return 1;
        }
        const double total = bench::ms(r->total());
        std::printf("%-8u %8zu %12.2f %14.3f\n", i, r->inputs, total,
                    r->inputs > 0 ? total / static_cast<double>(r->inputs) : 0.0);
    }

    bench::print_rule(48);
    std::printf("expectation (paper): validation time varies consistently with the\n"
                "input count — all status data is in memory, so no outliers.\n");
    return 0;
}
