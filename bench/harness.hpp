// Shared harness for the figure-reproduction benches: chain building,
// node construction, IBD driving, and table printing. Every bench accepts
// environment knobs so the laptop-sized defaults can be scaled up:
//   EBV_BLOCKS     total generated blocks
//   EBV_REPS       repetitions for boxplot-style figures
//   EBV_SEED       workload seed
//   EBV_MEM_FRACTION  status-DB cache budget as a fraction of the final
//                     UTXO payload (default mirrors the paper's
//                     500 MB : 4.3 GB ≈ 0.116)
//   EBV_DEVICE     hdd | ssd | none  (disk latency model for the baseline)
//   EBV_THREADS    extra thread count for parallel-validation sweeps
//   EBV_BENCH_JSON <path>  write machine-readable telemetry: per-period rows
//                  the bench reports plus a final obs-registry snapshot, as
//                  one JSON document (see docs/OBSERVABILITY.md)
//   EBV_TRACE_JSON <path>  write the causal span trace as Chrome
//                  trace-event JSON (Perfetto-loadable); also turns on
//                  detail spans and widens the ring
//   EBV_TRACE_FOLDED <path>  write the trace as folded flamegraph stacks
//   EBV_TRACE_CAPACITY <spans>  override the trace ring size (default
//                  262144 when an exporter is active, 8192 otherwise)
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "chain/coin.hpp"
#include "chain/node.hpp"
#include "core/node.hpp"
#include "crypto/sha256.hpp"
#include "intermediary/converter.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/affinity.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"
#include "util/log.hpp"
#include "workload/generator.hpp"
#include "workload/stats.hpp"

namespace ebv::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

inline double env_double(const char* name, double fallback) {
    const char* v = std::getenv(name);
    return v ? std::strtod(v, nullptr) : fallback;
}

/// Thread counts for a parallel-validation sweep: 1/2/4 plus the machine's
/// hardware concurrency, plus EBV_THREADS when set — deduplicated and
/// ascending (the pure logic lives in util::thread_sweep_counts so the
/// dedupe guarantee is unit-tested).
inline std::vector<std::size_t> env_thread_sweep() {
    return util::thread_sweep_counts(std::thread::hardware_concurrency(),
                                     env_u64("EBV_THREADS", 0));
}

inline storage::DeviceProfile env_device() {
    const char* v = std::getenv("EBV_DEVICE");
    const std::string device = v ? v : "hdd";
    if (device == "ssd") return storage::DeviceProfile::ssd();
    if (device == "none") return storage::DeviceProfile::none();
    return storage::DeviceProfile::hdd();
}

class TempDir {
public:
    explicit TempDir(const std::string& tag) {
        path_ = std::filesystem::temp_directory_path() /
                ("ebv_bench_" + tag + "_" + std::to_string(::getpid()));
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    [[nodiscard]] std::string str() const { return path_.string(); }

private:
    std::filesystem::path path_;
};

/// A fully generated chain plus the statistics needed to size node caches.
struct ChainData {
    std::vector<chain::Block> blocks;
    std::uint64_t final_utxo_count = 0;
    std::uint64_t final_utxo_payload = 0;  ///< bytes of the final UTXO set
    workload::GeneratorOptions options;
};

/// Generate `count` blocks and track the exact UTXO-set payload the
/// baseline node will hold at the end (so cache budgets can be expressed
/// as a fraction of it, mirroring the paper's 500 MB vs 4.3 GB setup).
inline ChainData build_chain(const workload::GeneratorOptions& options,
                             std::uint32_t count) {
    ChainData data;
    data.options = options;
    data.blocks.reserve(count);

    workload::ChainGenerator generator(options);
    std::unordered_map<chain::OutPoint, std::uint64_t, chain::OutPointHasher> entry_size;
    for (std::uint32_t i = 0; i < count; ++i) {
        data.blocks.push_back(generator.next_block());
        const chain::Block& block = data.blocks.back();
        for (const auto& tx : block.txs) {
            if (!tx.is_coinbase()) {
                for (const auto& in : tx.vin) {
                    const auto it = entry_size.find(in.prevout);
                    if (it != entry_size.end()) {
                        data.final_utxo_payload -= it->second;
                        entry_size.erase(it);
                    }
                }
            }
            for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
                const chain::Coin coin{tx.vout[o].value, i, tx.is_coinbase(),
                                       tx.vout[o].lock_script};
                const std::uint64_t size = 36 + coin.encode().size();
                entry_size.emplace(chain::OutPoint{tx.txid(), o}, size);
                data.final_utxo_payload += size;
            }
        }
        if ((i + 1) % 500 == 0) {
            std::fprintf(stderr, "  generated %u/%u blocks (pool %zu)\n", i + 1, count,
                         generator.utxo_pool_size());
        }
    }
    data.final_utxo_count = entry_size.size();
    return data;
}

/// Baseline node sized like the paper's memory-restricted validator.
inline chain::BitcoinNodeOptions baseline_options(const ChainData& chain,
                                                  const TempDir& dir,
                                                  bool verify_scripts) {
    chain::BitcoinNodeOptions options;
    options.params = chain.options.params;
    options.data_dir = dir.str();
    const double fraction = env_double("EBV_MEM_FRACTION", 500.0 / (4.3 * 1024));
    options.memory_limit_bytes = static_cast<std::size_t>(
        std::max<double>(static_cast<double>(chain.final_utxo_payload) * fraction,
                         32.0 * storage::PagedFile::kPageSize));
    options.device = env_device();
    options.validator.verify_scripts = verify_scripts;
    return options;
}

/// Convert an entire chain through the intermediary.
inline std::vector<core::EbvBlock> convert_chain(const ChainData& chain) {
    intermediary::Converter converter;
    std::vector<core::EbvBlock> out;
    out.reserve(chain.blocks.size());
    for (const auto& block : chain.blocks) {
        auto converted = converter.convert_block(block);
        if (!converted) {
            std::fprintf(stderr, "conversion failed: %s\n", to_string(converted.error()));
            std::abort();
        }
        out.push_back(std::move(*converted));
    }
    return out;
}

inline double ms(util::TimeCost cost) { return util::to_ms(cost.total_ns()); }

// Build-time provenance, overridable per-run via same-named env vars (CI
// sets EBV_GIT_SHA on shallow checkouts where the compile-time stamp may be
// "unknown"). The compile definitions come from bench/CMakeLists.txt.
#ifndef EBV_GIT_SHA
#define EBV_GIT_SHA "unknown"
#endif
#ifndef EBV_BUILD_TYPE
#define EBV_BUILD_TYPE "unknown"
#endif

inline std::string env_or(const char* name, const char* fallback) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' ? v : fallback;
}

/// Provenance header recorded in every EBV_BENCH_JSON document so
/// bench_compare can refuse apples-to-oranges diffs (different build type,
/// different SHA-256 backend, different machine width). Also records the
/// pool topology knobs (default scheduler, affinity request, CPUs visible
/// to the process) so scheduler A/B runs stay attributable.
inline std::string provenance_json() {
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"git_sha\":\"%s\",\"build_type\":\"%s\",\"hw_threads\":%u,"
                  "\"sha256_impl\":\"%s\",\"scheduler\":\"%s\",\"affinity\":%s,"
                  "\"cpus\":%u}",
                  env_or("EBV_GIT_SHA", EBV_GIT_SHA).c_str(),
                  env_or("EBV_BUILD_TYPE", EBV_BUILD_TYPE).c_str(),
                  std::thread::hardware_concurrency(), crypto::sha256_impl(),
                  util::to_string(util::default_scheduler_mode()),
                  util::default_affinity() ? "true" : "false",
                  util::affinity_cpu_count());
    return buf;
}

/// RAII wiring for the trace exporters: reading EBV_TRACE_JSON /
/// EBV_TRACE_FOLDED at construction turns on detail spans and widens the
/// ring (EBV_TRACE_CAPACITY overrides); destruction writes the files.
/// Embedded in JsonReport so every bench gets the knobs for free.
class TraceExport {
public:
    TraceExport() {
        if (const char* path = std::getenv("EBV_TRACE_JSON")) chrome_path_ = path;
        if (const char* path = std::getenv("EBV_TRACE_FOLDED")) folded_path_ = path;
        const bool active = !chrome_path_.empty() || !folded_path_.empty();
        const std::uint64_t capacity =
            env_u64("EBV_TRACE_CAPACITY", active ? 262144 : 0);
        obs::Tracer& tracer = obs::Tracer::global();
        if (capacity > 0) tracer.set_capacity(static_cast<std::size_t>(capacity));
        if (active) tracer.set_detail(true);
    }
    TraceExport(const TraceExport&) = delete;
    TraceExport& operator=(const TraceExport&) = delete;
    ~TraceExport() { write(); }

    void write() {
        if (written_) return;
        written_ = true;
        if (!chrome_path_.empty()) {
            if (obs::write_chrome_trace(chrome_path_)) {
                EBV_LOG_INFO("EBV_TRACE_JSON: wrote Chrome trace to %s",
                             chrome_path_.c_str());
            } else {
                EBV_LOG_ERROR("EBV_TRACE_JSON: cannot open %s", chrome_path_.c_str());
            }
        }
        if (!folded_path_.empty()) {
            if (obs::write_folded_stacks(folded_path_)) {
                EBV_LOG_INFO("EBV_TRACE_FOLDED: wrote folded stacks to %s",
                             folded_path_.c_str());
            } else {
                EBV_LOG_ERROR("EBV_TRACE_FOLDED: cannot open %s",
                              folded_path_.c_str());
            }
        }
    }

private:
    std::string chrome_path_;
    std::string folded_path_;
    bool written_ = false;
};

/// Machine-readable bench telemetry, activated by EBV_BENCH_JSON=<path>.
/// Benches append per-period rows (small JSON objects they format
/// themselves); on destruction (or an explicit write()) one JSON document
/// lands at the path:
///   {"bench":"<name>","provenance":{...},"rows":[...],
///    "aborted":false,"metrics":<registry snapshot>}
/// so CI can archive a perf trajectory across PRs (BENCH_<name>.json) and
/// tools/bench_compare can gate on it. Constructing a JsonReport also arms
/// the trace exporters (EBV_TRACE_JSON / EBV_TRACE_FOLDED), flushed
/// alongside the report.
class JsonReport {
public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {
        if (const char* path = std::getenv("EBV_BENCH_JSON")) path_ = path;
    }
    JsonReport(const JsonReport&) = delete;
    JsonReport& operator=(const JsonReport&) = delete;
    ~JsonReport() { write(); }

    [[nodiscard]] bool enabled() const { return !path_.empty(); }

    /// Append one row; `fmt` must produce a complete JSON object.
    void row(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
        if (!enabled()) return;
        char buffer[512];
        va_list args;
        va_start(args, fmt);
        const int n = std::vsnprintf(buffer, sizeof buffer, fmt, args);
        va_end(args);
        if (n > 0) rows_.emplace_back(buffer, std::min<std::size_t>(n, sizeof buffer - 1));
    }

    /// Mark the run as stopped early (block rejection, setup failure) and
    /// flush immediately: CI still gets the rows produced so far, flagged
    /// "aborted" so trend tooling won't mistake a partial run for a full one.
    /// `reason` must not contain characters needing JSON escaping.
    void aborted(std::string reason) {
        aborted_ = true;
        abort_reason_ = std::move(reason);
        write();
    }

    void write() {
        trace_export_.write();  // flush traces even without EBV_BENCH_JSON
        if (!enabled() || written_) return;
        written_ = true;
        std::FILE* f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            EBV_LOG_ERROR("EBV_BENCH_JSON: cannot open %s", path_.c_str());
            return;
        }
        std::fprintf(f, "{\"bench\":\"%s\",\"provenance\":%s,\"rows\":[",
                     bench_.c_str(), provenance_json().c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s%s", i ? "," : "", rows_[i].c_str());
        }
        std::fprintf(f, "],\"aborted\":%s", aborted_ ? "true" : "false");
        if (aborted_) std::fprintf(f, ",\"abort_reason\":\"%s\"", abort_reason_.c_str());
        std::fprintf(f, ",\"metrics\":%s}\n",
                     obs::Registry::global().to_json().c_str());
        std::fclose(f);
        EBV_LOG_INFO("EBV_BENCH_JSON: wrote %zu rows + registry snapshot to %s",
                     rows_.size(), path_.c_str());
    }

private:
    std::string bench_;
    std::string path_;
    std::vector<std::string> rows_;
    bool written_ = false;
    bool aborted_ = false;
    std::string abort_reason_;
    TraceExport trace_export_;
};

inline void print_rule(int width = 100) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

}  // namespace ebv::bench
