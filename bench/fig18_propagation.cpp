// Reproduces Fig 18: block propagation delay over a 20-node gossip network
// spread across five regions with two gossip neighbours per node, repeated
// five times, comparing baseline and EBV per-hop validation delays.
//
// Per-node validation delays are sampled from the measured validators: a
// short signed chain is validated by both systems and the per-block
// validation times (including modelled disk time for the baseline) form
// the delay distributions the simulator draws from.
//
// Paper findings to reproduce: EBV reaches full coverage much faster
// (−66.4 %) and with lower variance across repetitions.
#include <algorithm>
#include <cstdio>

#include "harness.hpp"
#include "netsim/gossip.hpp"

using namespace ebv;

namespace {

struct DelayDistribution {
    std::vector<netsim::SimTime> samples;

    netsim::SimTime sample(util::Rng& rng) const {
        return samples[rng.below(samples.size())];
    }
};

}  // namespace

int main() {
    bench::JsonReport report("fig18_propagation");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1000));
    const auto reps = static_cast<std::uint32_t>(bench::env_u64("EBV_REPS", 5));
    const std::uint32_t measured = 30;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 600'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.25);

    std::fprintf(stderr, "fig18: generating %u signed blocks for delay calibration...\n",
                 blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    const auto ebv_chain = bench::convert_chain(chain);

    // Measure per-block validation delays on both systems.
    DelayDistribution btc_delays, ebv_delays;
    std::size_t block_bytes = 0;
    {
        bench::TempDir dir("fig18");
        chain::BitcoinNode btc_node(
            bench::baseline_options(chain, dir, /*verify_scripts=*/true));
        core::EbvNodeOptions ebv_options;
        ebv_options.params = gen_options.params;
        core::EbvNode ebv_node(ebv_options);

        for (std::uint32_t i = 0; i < blocks; ++i) {
            auto rb = btc_node.submit_block(chain.blocks[i]);
            auto re = ebv_node.submit_block(ebv_chain[i]);
            if (!rb || !re) {
                report.aborted("block rejected during replay");
                return 1;
            }
            if (i + measured >= blocks) {
                btc_delays.samples.push_back(rb->total().total_ns());
                ebv_delays.samples.push_back(re->total().total_ns());
                block_bytes = std::max(block_bytes, ebv_chain[i].serialized_size());
            }
        }
    }

    // The measured chain is scaled down, so per-block validation delays are
    // scaled back up to full-mainnet-block equivalents: the baseline's mean
    // per-hop delay is normalized to EBV_BASELINE_HOP_MS (default 4 s, the
    // paper's typical Fig 4a block), and EBV's delays are scaled by the
    // *same* factor so the measured EBV:baseline ratio is preserved.
    {
        double btc_mean = 0;
        for (auto s : btc_delays.samples) btc_mean += static_cast<double>(s);
        btc_mean /= static_cast<double>(btc_delays.samples.size());
        const double target_ns = bench::env_double("EBV_BASELINE_HOP_MS", 4000.0) * 1e6;
        const double scale = target_ns / btc_mean;
        for (auto& s : btc_delays.samples)
            s = static_cast<netsim::SimTime>(static_cast<double>(s) * scale);
        for (auto& s : ebv_delays.samples)
            s = static_cast<netsim::SimTime>(static_cast<double>(s) * scale);
        std::fprintf(stderr, "fig18: delay scale factor %.1fx\n", scale);
    }

    netsim::GossipOptions net_options;
    net_options.node_count = bench::env_u64("EBV_NODES", 20);
    net_options.neighbors_per_node = 2;
    net_options.block_bytes = block_bytes;

    std::printf("Fig 18 — propagation delay, 20 nodes / 5 regions / 2 neighbours "
                "(ms, %u repetitions)\n", reps);
    std::printf("%-6s %12s %12s %12s %12s %12s %12s\n", "rep", "btc-50%", "btc-90%",
                "btc-100%", "ebv-50%", "ebv-90%", "ebv-100%");
    bench::print_rule(84);

    std::vector<double> btc_full, ebv_full;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        net_options.topology_seed = 7 + rep;
        net_options.latency_seed = 11 + rep;
        netsim::GossipNetwork network(net_options);
        util::Rng btc_rng(100 + rep), ebv_rng(200 + rep);
        const std::size_t origin = rep % net_options.node_count;

        const auto btc = network.propagate(
            origin, [&](std::size_t) { return btc_delays.sample(btc_rng); });
        const auto ebv_result = network.propagate(
            origin, [&](std::size_t) { return ebv_delays.sample(ebv_rng); });

        auto to_ms = [](netsim::SimTime t) { return static_cast<double>(t) / 1e6; };
        btc_full.push_back(to_ms(btc.time_to_all()));
        ebv_full.push_back(to_ms(ebv_result.time_to_all()));
        std::printf("%-6u %12.0f %12.0f %12.0f %12.0f %12.0f %12.0f\n", rep + 1,
                    to_ms(btc.time_to_fraction(0.5)), to_ms(btc.time_to_fraction(0.9)),
                    to_ms(btc.time_to_all()), to_ms(ebv_result.time_to_fraction(0.5)),
                    to_ms(ebv_result.time_to_fraction(0.9)),
                    to_ms(ebv_result.time_to_all()));
    }

    auto mean = [](const std::vector<double>& v) {
        double s = 0;
        for (double x : v) s += x;
        return s / static_cast<double>(v.size());
    };
    auto spread = [](const std::vector<double>& v) {
        const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
        return *hi - *lo;
    };

    bench::print_rule(84);
    const double reduction = 100.0 * (1.0 - mean(ebv_full) / mean(btc_full));
    std::printf("full-coverage mean: baseline %.0f ms vs EBV %.0f ms — reduction %.1f%%\n"
                "(paper: 66.4%%); spread across reps: baseline %.0f ms vs EBV %.0f ms\n"
                "(paper: EBV has lower variance).\n",
                mean(btc_full), mean(ebv_full), reduction, spread(btc_full),
                spread(ebv_full));
    return 0;
}
