// Fig 19 (extension): proof-serving latency for light clients.
//
// A ProofServer answers getproof batches from Dietcoin-style light clients
// over the discrete-event transport. Each generated block is gossiped to
// the clients (netsim::GossipNetwork supplies per-client delivery times);
// on delivery every client fires a burst of random per-tx / per-input proof
// queries at the server, which coalesces them per peer and serves branches
// out of the cached Merkle interior-node store (crypto::MerkleTreeCache).
//
// The sweep compares the cached tier against a rebuild-per-query baseline
// (cache disabled: every flush re-hashes the block's tree) across client
// counts and per-block query counts, reporting request → verified-reply
// latency p50/p99, the cache hit rate, and the speedup. The cached tier's
// latency should stay near-flat as query volume grows — the tree is hashed
// once per block, every later branch is O(log n) copies — while the
// baseline degrades with volume.
//
// Knobs: EBV_BLOCKS (chain length), EBV_SEED, EBV_INTENSITY,
// EBV_PROOF_CACHE_BYTES (cache budget; see net/proof_cache.hpp).
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "harness.hpp"
#include "net/proof_server.hpp"
#include "netsim/gossip.hpp"
#include "util/rng.hpp"

using namespace ebv;

namespace {

/// ProofSource over a fully converted in-memory chain.
class ChainProofSource final : public net::ProofSource {
public:
    explicit ChainProofSource(const std::vector<core::EbvBlock>& blocks)
        : blocks_(blocks) {
        for (std::uint32_t h = 0; h < blocks.size(); ++h)
            height_by_hash_.emplace(blocks[h].header.hash(), h);
    }

    [[nodiscard]] std::optional<std::uint32_t> height_of(
        const crypto::Hash256& block_hash) const override {
        const auto it = height_by_hash_.find(block_hash);
        if (it == height_by_hash_.end()) return std::nullopt;
        return it->second;
    }

    [[nodiscard]] const core::EbvBlock* block_at(std::uint32_t height) const override {
        return height < blocks_.size() ? &blocks_[height] : nullptr;
    }

private:
    const std::vector<core::EbvBlock>& blocks_;
    std::unordered_map<crypto::Hash256, std::uint32_t, crypto::Hash256Hasher>
        height_by_hash_;
};

struct SweepResult {
    double serve_p50_us = 0;  ///< server-side queue wait + assembly, per batch
    double serve_p99_us = 0;
    double serve_total_ms = 0;  ///< summed serving time across all batches
    double e2e_p50_ms = 0;  ///< client request -> verified reply (RTT included)
    double e2e_p99_ms = 0;
    double hit_rate_pct = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t verify_failures = 0;
    std::uint64_t answered = 0;
};

double percentile(std::vector<netsim::SimTime>& v, double p) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const auto rank = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
    return static_cast<double>(v[rank]) / 1e3;  // ns -> us
}

/// One sweep point: `clients` light clients each firing `queries` random
/// proof requests per gossiped block.
SweepResult run_sweep(const std::vector<core::EbvBlock>& blocks, std::size_t clients,
                      std::size_t queries, bool cache_enabled, std::uint64_t seed) {
    const auto& hits = obs::Registry::global().counter("ebv.proofsrv.cache_hits");
    const auto& misses = obs::Registry::global().counter("ebv.proofsrv.cache_misses");
    const std::uint64_t hits0 = hits.value(), misses0 = misses.value();

    ChainProofSource source(blocks);
    std::unordered_map<crypto::Hash256, crypto::Hash256, crypto::Hash256Hasher> roots;
    for (const auto& block : blocks)
        roots.emplace(block.header.hash(), block.header.merkle_root);

    net::SimNetwork network(/*latency_seed=*/seed);
    net::ProofCache cache;  // budget from EBV_PROOF_CACHE_BYTES
    net::ProofServerConfig config;
    config.cache_enabled = cache_enabled;
    // Deterministic serving costs: the sweep gates CI on the cached vs
    // rebuild ratio, which must not wobble with host timer noise.
    config.cost_model.enabled = true;
    net::ProofServer server(network, netsim::Region::kUsEast, source, cache, config);

    std::vector<std::unique_ptr<net::ProofClient>> fleet;
    fleet.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        const auto region = static_cast<netsim::Region>((c + 1) % netsim::kRegionCount);
        fleet.push_back(std::make_unique<net::ProofClient>(
            network, region, server.id(),
            [&roots](const crypto::Hash256& h) -> std::optional<crypto::Hash256> {
                const auto it = roots.find(h);
                if (it == roots.end()) return std::nullopt;
                return it->second;
            }));
    }

    // Gossip each block across a network of (server + clients); the
    // per-client receive times become the query-burst schedule. Header
    // verification is the only validation a light client performs per
    // delivery — a flat 1 ms models it.
    netsim::GossipOptions gossip_options;
    gossip_options.node_count = clients + 1;
    gossip_options.neighbors_per_node = std::min<std::size_t>(2, clients);
    gossip_options.topology_seed = seed;
    gossip_options.latency_seed = seed + 1;
    gossip_options.block_bytes = 100'000;
    netsim::GossipNetwork gossip(gossip_options);

    util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    // Blocks arrive one simulated second apart; each client's bursts ride
    // on its gossip delivery offset within that window.
    constexpr netsim::SimTime kBlockInterval = 1'000'000'000;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const core::EbvBlock& block = blocks[b];
        const crypto::Hash256 block_hash = block.header.hash();
        const auto delivery =
            gossip.propagate(/*origin=*/0, [](std::size_t) { return 1'000'000; });
        for (std::size_t c = 0; c < clients; ++c) {
            netsim::SimTime offset = delivery.receive_time[c + 1];
            if (offset == netsim::PropagationResult::kUnreached) offset = 0;
            const netsim::SimTime at =
                static_cast<netsim::SimTime>(b) * kBlockInterval + offset;
            // One getproof frame per request: the server's coalescing
            // window, not the client, is what batches them.
            for (std::size_t q = 0; q < queries; ++q) {
                const auto& tx = block.txs[rng.below(block.txs.size())];
                net::ProofRequest req;
                req.txid = tx.leaf_hash();
                if (!tx.outputs.empty() && (rng.next() & 1) != 0) {
                    req.kind = net::ProofKind::kInput;
                    req.out_index = static_cast<std::uint16_t>(
                        rng.below(tx.outputs.size()));
                }
                net::ProofClient& client = *fleet[c];
                network.defer(at - network.now(),
                              [&client, block_hash, req] { client.query(block_hash, {req}); });
            }
        }
    }
    network.run();

    SweepResult out;
    std::vector<netsim::SimTime> latencies;
    for (const auto& client : fleet) {
        const auto& stats = client->stats();
        latencies.insert(latencies.end(), stats.latencies_ns.begin(),
                         stats.latencies_ns.end());
        out.verify_failures += stats.verify_failures + stats.items_error;
        out.answered += stats.items_ok;
    }
    out.e2e_p50_ms = percentile(latencies, 0.50) / 1e3;
    out.e2e_p99_ms = percentile(latencies, 0.99) / 1e3;
    std::vector<netsim::SimTime> serve = server.stats().serve_ns;
    out.serve_p50_us = percentile(serve, 0.50);
    out.serve_p99_us = percentile(serve, 0.99);
    for (const netsim::SimTime s : serve) out.serve_total_ms += static_cast<double>(s) / 1e6;
    out.rebuilds = server.stats().rebuilds;
    const std::uint64_t h = hits.value() - hits0, m = misses.value() - misses0;
    out.hit_rate_pct = (h + m) == 0 ? 0 : 100.0 * static_cast<double>(h) /
                                              static_cast<double>(h + m);
    return out;
}

}  // namespace

int main() {
    bench::JsonReport report("fig19_proof_serving");
    const auto blocks_n = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 120));
    const std::uint64_t seed = bench::env_u64("EBV_SEED", 42);

    workload::GeneratorOptions gen_options;
    gen_options.seed = seed;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 1.0);
    gen_options.height_scale = 600'000.0 / blocks_n;

    std::fprintf(stderr, "fig19: generating %u blocks...\n", blocks_n);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks_n);
    const auto ebv_chain = bench::convert_chain(chain);

    const std::size_t client_sweep[] = {1, 4, 16};
    const std::size_t query_sweep[] = {4, 16};

    std::printf("Fig 19 — proof serving, %u blocks: server-side serving latency "
                "(queue + assembly, us)\nand end-to-end client latency (ms), cached "
                "tier vs rebuild-per-query baseline\n", blocks_n);
    std::printf("%-8s %-8s %12s %12s %12s %12s %10s %10s %10s\n", "clients", "q/block",
                "cached-p50", "cached-p99", "rebuild-p50", "rebuild-p99", "e2e-p99ms",
                "hit-rate", "speedup");
    bench::print_rule(102);

    double worst_speedup = 1e9, last_hit_rate = 0;
    for (const std::size_t clients : client_sweep) {
        for (const std::size_t queries : query_sweep) {
            const SweepResult cached =
                run_sweep(ebv_chain, clients, queries, /*cache_enabled=*/true, seed);
            const SweepResult rebuild =
                run_sweep(ebv_chain, clients, queries, /*cache_enabled=*/false, seed);
            if (cached.verify_failures > 0 || rebuild.verify_failures > 0 ||
                cached.answered == 0) {
                report.aborted("proof verification failed");
                std::fprintf(stderr, "fig19: verify failures (cached %llu, rebuild %llu)\n",
                             static_cast<unsigned long long>(cached.verify_failures),
                             static_cast<unsigned long long>(rebuild.verify_failures));
                return 1;
            }
            // Speedup is the ratio of *total* serving time. With the
            // deterministic cost model the whole sim is bit-reproducible,
            // so this ratio is an exact function of the workload and safe
            // to gate tightly in CI.
            const double speedup = cached.serve_total_ms > 0
                                       ? rebuild.serve_total_ms / cached.serve_total_ms
                                       : 0;
            worst_speedup = std::min(worst_speedup, speedup);
            last_hit_rate = cached.hit_rate_pct;
            std::printf("%-8zu %-8zu %12.1f %12.1f %12.1f %12.1f %10.1f %9.1f%% %9.2fx\n",
                        clients, queries, cached.serve_p50_us, cached.serve_p99_us,
                        rebuild.serve_p50_us, rebuild.serve_p99_us, cached.e2e_p99_ms,
                        cached.hit_rate_pct, speedup);
            report.row(
                "{\"clients\":%zu,\"queries_per_block\":%zu,\"cached_serve_p50_us\":%.1f,"
                "\"cached_serve_p99_us\":%.1f,\"rebuild_serve_p50_us\":%.1f,"
                "\"rebuild_serve_p99_us\":%.1f,\"cached_serve_total_ms\":%.2f,"
                "\"rebuild_serve_total_ms\":%.2f,\"e2e_p50_ms\":%.2f,\"e2e_p99_ms\":%.2f,"
                "\"hit_rate_pct\":%.2f,\"serving_speedup\":%.3f,\"rebuilds\":%llu}",
                clients, queries, cached.serve_p50_us, cached.serve_p99_us,
                rebuild.serve_p50_us, rebuild.serve_p99_us, cached.serve_total_ms,
                rebuild.serve_total_ms, cached.e2e_p50_ms,
                cached.e2e_p99_ms, cached.hit_rate_pct, speedup,
                static_cast<unsigned long long>(rebuild.rebuilds));
        }
    }

    bench::print_rule(102);
    std::printf("cached tier hit rate %.1f%%; worst-case total-serving-time speedup "
                "over rebuild-per-query: %.2fx\n(the cached tier hashes each block's "
                "tree once; every further branch is hash-free, so serving\nlatency "
                "stays near-flat as query volume grows while the rebuild baseline "
                "queues).\n",
                last_hit_rate, worst_speedup);
    return 0;
}
