// Reproduces Fig 4a/4b: per-block validation time of the baseline
// (Bitcoin-style) node, split into DBO / SV / others, for ten consecutive
// blocks near the chain tip, together with the per-block input count.
//
// Paper findings to reproduce: DBO dominates (≥ ~80 % on the worst block);
// SV time tracks the input count while DBO time does not (cache-miss
// dependent), producing outlier blocks.
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig04_bitcoin_validation");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 1000));
    const std::uint32_t measured = 10;

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 600'000.0 / blocks;  // tip sits in the modern era
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.25);

    std::fprintf(stderr, "fig04: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    std::fprintf(stderr, "fig04: final UTXO payload %.1f KB, count %llu\n",
                 chain.final_utxo_payload / 1024.0,
                 static_cast<unsigned long long>(chain.final_utxo_count));

    bench::TempDir dir("fig04");
    chain::BitcoinNode node(bench::baseline_options(chain, dir, /*verify_scripts=*/true));

    // Warm-up: everything but the last `measured` blocks.
    for (std::uint32_t i = 0; i + measured < blocks; ++i) {
        auto r = node.submit_block(chain.blocks[i]);
        if (!r) {
            std::fprintf(stderr, "block %u rejected: %s\n", i, r.error().describe().c_str());
            report.aborted("block rejected during warm-up");
            return 1;
        }
    }

    std::printf("Fig 4a/4b — baseline per-block validation breakdown (ms)\n");
    std::printf("%-8s %8s %10s %10s %10s %10s %8s\n", "height", "inputs", "DBO", "SV",
                "others", "total", "DBO%");
    bench::print_rule(70);

    for (std::uint32_t i = blocks - measured; i < blocks; ++i) {
        auto r = node.submit_block(chain.blocks[i]);
        if (!r) {
            std::fprintf(stderr, "block %u rejected: %s\n", i, r.error().describe().c_str());
            report.aborted("block rejected during measurement");
            return 1;
        }
        const chain::BlockTimings& t = *r;
        const double total = bench::ms(t.total());
        std::printf("%-8u %8zu %10.2f %10.2f %10.2f %10.2f %7.1f%%\n", i, t.inputs,
                    bench::ms(t.dbo), bench::ms(t.sv), bench::ms(t.other), total,
                    total > 0 ? 100.0 * bench::ms(t.dbo) / total : 0.0);
        report.row("{\"height\":%u,\"inputs\":%zu,\"dbo_ms\":%.3f,\"sv_ms\":%.3f,"
                   "\"total_ms\":%.3f}",
                   i, t.inputs, bench::ms(t.dbo), bench::ms(t.sv), total);
    }

    bench::print_rule(70);
    std::printf("expectation (paper): DBO is the dominant component; SV tracks the\n"
                "input count while DBO varies with database/cache behaviour.\n");
    return 0;
}
