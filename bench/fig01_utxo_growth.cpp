// Reproduces Fig 1: number of UTXOs and size of the UTXO set over time
// (paper: 15-Q1 → 21-Q2, 4.4× count growth, 7.6× size growth, > 4.3 GB).
//
// The synthetic chain traverses the same era sequence as mainnet; rows are
// sampled per real-chain quarter. Absolute bytes are scaled down with the
// chain; the growth *shape* (monotone rise, late-era steepening, the
// 500k-550k consolidation dip) is the reproduction target.
#include <cstdio>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("fig01_utxo_growth");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 3250));

    workload::GeneratorOptions options;
    options.seed = bench::env_u64("EBV_SEED", 42);
    options.signed_mode = false;  // memory experiment: scripts never run
    options.height_scale = 650'000.0 / blocks;
    options.intensity = bench::env_double("EBV_INTENSITY", 2.0);

    std::fprintf(stderr, "fig01: generating %u blocks (height scale %.0f)\n", blocks,
                 options.height_scale);

    workload::ChainGenerator generator(options);

    // Exact per-block UTXO-set payload accounting (outpoint key + coin).
    std::unordered_map<chain::OutPoint, std::uint64_t, chain::OutPointHasher> entries;
    std::uint64_t payload = 0;

    std::printf("Fig 1 — UTXO count and UTXO-set size by quarter\n");
    std::printf("%-8s %12s %14s %14s\n", "quarter", "real-height", "utxo-count",
                "size-KB");
    bench::print_rule(52);

    std::uint32_t next_sample_quarter = 0;
    std::uint64_t first_count = 0;
    std::uint64_t first_size = 0;
    std::uint64_t last_count = 0;
    std::uint64_t last_size = 0;

    for (std::uint32_t i = 0; i < blocks; ++i) {
        const chain::Block block = generator.next_block();
        for (const auto& tx : block.txs) {
            if (!tx.is_coinbase()) {
                for (const auto& in : tx.vin) {
                    const auto it = entries.find(in.prevout);
                    if (it != entries.end()) {
                        payload -= it->second;
                        entries.erase(it);
                    }
                }
            }
            for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
                const chain::Coin coin{tx.vout[o].value, i, tx.is_coinbase(),
                                       tx.vout[o].lock_script};
                const std::uint64_t size = 36 + coin.encode().size();
                entries.emplace(chain::OutPoint{tx.txid(), o}, size);
                payload += size;
            }
        }

        const auto real_height =
            static_cast<std::uint32_t>((i + 1) * options.height_scale);
        // Sample once per quarter starting at 2015-Q1, like the figure.
        const auto q15_1 = workload::real_height_for_quarter(2015, 1);
        if (real_height >= q15_1) {
            const auto quarter_index =
                (real_height - q15_1) / (52'560 / 4);
            if (quarter_index >= next_sample_quarter) {
                std::printf("%-8s %12u %14zu %14.1f\n",
                            workload::quarter_label_for_height(real_height).c_str(),
                            real_height, entries.size(),
                            static_cast<double>(payload) / 1024.0);
                if (first_count == 0) {
                    first_count = entries.size();
                    first_size = payload;
                }
                next_sample_quarter = static_cast<std::uint32_t>(quarter_index) + 1;
            }
        }
        last_count = entries.size();
        last_size = payload;
    }

    bench::print_rule(52);
    std::printf("growth since 15-Q1: count %.1fx (paper: 4.4x), size %.1fx (paper: 7.6x)\n",
                static_cast<double>(last_count) / static_cast<double>(first_count ? first_count : 1),
                static_cast<double>(last_size) / static_cast<double>(first_size ? first_size : 1));
    return 0;
}
