// Extension experiment: newcomer startup cost. The paper's intro argues
// slow IBD discourages running validators. EBV's whole validator state
// (headers + bit-vector set) is snapshot-sized, so a restarting or
// bootstrapped-from-snapshot node skips block re-validation entirely.
// Compares: full IBD (validate everything) vs snapshot load, and reports
// the snapshot's size — the trust-minimized "assumeutxo" style bootstrap
// EBV makes cheap.
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "harness.hpp"

using namespace ebv;

int main() {
    bench::JsonReport report("snapshot_restart");
    const auto blocks = static_cast<std::uint32_t>(bench::env_u64("EBV_BLOCKS", 800));

    workload::GeneratorOptions gen_options;
    gen_options.seed = bench::env_u64("EBV_SEED", 42);
    gen_options.signed_mode = true;
    gen_options.height_scale = 600'000.0 / blocks;
    gen_options.intensity = bench::env_double("EBV_INTENSITY", 0.2);

    std::fprintf(stderr, "snapshot_restart: generating %u signed blocks...\n", blocks);
    const bench::ChainData chain = bench::build_chain(gen_options, blocks);
    const auto ebv_chain = bench::convert_chain(chain);

    core::EbvNodeOptions options;
    options.params = gen_options.params;

    // Full IBD.
    util::Stopwatch ibd_watch;
    core::EbvNode node(options);
    core::EbvTimings total{};
    for (const auto& block : ebv_chain) {
        auto r = node.submit_block(block);
        if (!r) {
            report.aborted("block rejected during IBD");
            return 1;
        }
        total += *r;
    }
    const double ibd_ms = util::to_ms(ibd_watch.elapsed_ns());

    // Snapshot save + load.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("ebv_snapbench_" + std::to_string(::getpid()) + ".bin"))
            .string();
    util::Stopwatch save_watch;
    node.save_snapshot(path);
    const double save_ms = util::to_ms(save_watch.elapsed_ns());
    const auto snapshot_bytes = std::filesystem::file_size(path);

    util::Stopwatch load_watch;
    auto restored = core::EbvNode::load_snapshot(path, options);
    const double load_ms = util::to_ms(load_watch.elapsed_ns());
    std::filesystem::remove(path);
    if (!restored || (*restored)->next_height() != blocks) {
        report.aborted("snapshot reload failed");
        return 1;
    }

    std::printf("EBV newcomer startup: full IBD vs snapshot bootstrap (%u blocks)\n",
                blocks);
    bench::print_rule(64);
    std::printf("full IBD (validate everything):   %10.1f ms (%zu inputs)\n", ibd_ms,
                total.inputs);
    std::printf("snapshot save:                    %10.2f ms\n", save_ms);
    std::printf("snapshot load (restart path):     %10.2f ms\n", load_ms);
    std::printf("snapshot size:                    %10.1f KB (headers + bit-vectors)\n",
                static_cast<double>(snapshot_bytes) / 1024.0);
    bench::print_rule(64);
    std::printf("speedup: %.0fx — the validator state EBV needs is so small that a\n"
                "restart (or a snapshot-trusting bootstrap) is effectively free,\n"
                "addressing the paper's IBD-discourages-validators concern.\n",
                ibd_ms / std::max(load_ms, 0.01));
    return 0;
}
