// Microbenchmarks for the storage substrate — the ablation behind the
// paper's core claim: baseline DBO cost is a cache-miss phenomenon, driven
// by the ratio of the working set to the memory budget. Fetch cost is
// reported with the modelled HDD time included (CPU+device, like the
// paper's wall-clock DBO measurements on a real disk).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <unistd.h>

#include "storage/disk_hash_table.hpp"
#include "storage/mem_kvstore.hpp"
#include "util/rng.hpp"

namespace {

using namespace ebv;

std::string temp_db_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("ebv_micro_" + tag + "_" + std::to_string(::getpid())))
        .string();
}

util::Bytes key_of(std::uint64_t i) {
    util::Bytes k(36);  // outpoint-sized keys
    for (int b = 0; b < 8; ++b) k[b] = static_cast<std::uint8_t>(i >> (8 * b));
    return k;
}

void BM_MemStoreGet(benchmark::State& state) {
    storage::MemKvStore store;
    const std::uint64_t n = 100'000;
    util::Rng rng(1);
    util::Bytes value(60);
    for (std::uint64_t i = 0; i < n; ++i) store.put(key_of(i), value);
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.get(key_of(rng.below(n))));
    }
}
BENCHMARK(BM_MemStoreGet);

// Random fetches from a disk table whose page cache covers range(0)% of the
// dataset: the x-axis of the paper's memory-restriction story. The reported
// time adds the modelled HDD latency to the measured CPU time.
void BM_DiskTableGetByCachePercent(benchmark::State& state) {
    const std::uint64_t n = 50'000;
    const auto path = temp_db_path("get" + std::to_string(state.range(0)));
    std::filesystem::remove(path);

    storage::DiskHashTable::Options options;
    options.initial_buckets = 8;
    options.device = storage::DeviceProfile::hdd();
    // Dataset ≈ buckets + payload pages; approximate with final file size
    // after a fill pass, so run one fill first with a large cache.
    options.cache_budget_bytes = 1u << 30;
    auto table = std::make_unique<storage::DiskHashTable>(path, options);
    util::Bytes value(60);
    for (std::uint64_t i = 0; i < n; ++i) table->put(key_of(i), value);
    // Flush before measuring: with a large cache the file is mostly unwritten
    // until write-back, so the page count would undercount the dataset.
    table->flush();
    const std::uint64_t dataset_bytes =
        table->file_pages() * storage::PagedFile::kPageSize;
    table.reset();

    options.cache_budget_bytes = static_cast<std::size_t>(
        dataset_bytes * static_cast<std::uint64_t>(state.range(0)) / 100);
    storage::DiskHashTable reopened(path, options);

    util::Rng rng(2);
    util::Nanoseconds sim_before = reopened.simulated_ns();
    for (auto _ : state) {
        benchmark::DoNotOptimize(reopened.get(key_of(rng.below(n))));
    }
    // Report CPU + modelled-device time per op.
    const double sim_per_op =
        static_cast<double>(reopened.simulated_ns() - sim_before) /
        static_cast<double>(state.iterations());
    state.counters["device_ns_per_op"] = sim_per_op;
    state.counters["miss_rate"] =
        static_cast<double>(reopened.cache_stats().misses) /
        static_cast<double>(reopened.cache_stats().hits + reopened.cache_stats().misses);

    std::filesystem::remove(path);
}
BENCHMARK(BM_DiskTableGetByCachePercent)->Arg(5)->Arg(12)->Arg(25)->Arg(50)->Arg(100);

void BM_DiskTablePut(benchmark::State& state) {
    const auto path = temp_db_path("put");
    std::filesystem::remove(path);
    storage::DiskHashTable::Options options;
    options.initial_buckets = 8;
    options.cache_budget_bytes = 16u << 20;
    storage::DiskHashTable table(path, options);
    util::Bytes value(60);
    std::uint64_t i = 0;
    for (auto _ : state) {
        table.put(key_of(i++), value);
    }
    std::filesystem::remove(path);
}
BENCHMARK(BM_DiskTablePut);

}  // namespace

BENCHMARK_MAIN();
