file(REMOVE_RECURSE
  "CMakeFiles/wallet_tx_proposal.dir/wallet_tx_proposal.cpp.o"
  "CMakeFiles/wallet_tx_proposal.dir/wallet_tx_proposal.cpp.o.d"
  "wallet_tx_proposal"
  "wallet_tx_proposal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallet_tx_proposal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
