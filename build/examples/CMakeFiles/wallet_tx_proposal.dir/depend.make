# Empty dependencies file for wallet_tx_proposal.
# This may be replaced when dependencies are built.
