file(REMOVE_RECURSE
  "CMakeFiles/ebv_cli.dir/ebv_cli.cpp.o"
  "CMakeFiles/ebv_cli.dir/ebv_cli.cpp.o.d"
  "ebv_cli"
  "ebv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
