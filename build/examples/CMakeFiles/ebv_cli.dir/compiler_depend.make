# Empty compiler generated dependencies file for ebv_cli.
# This may be replaced when dependencies are built.
