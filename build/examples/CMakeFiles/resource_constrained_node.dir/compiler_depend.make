# Empty compiler generated dependencies file for resource_constrained_node.
# This may be replaced when dependencies are built.
