file(REMOVE_RECURSE
  "CMakeFiles/resource_constrained_node.dir/resource_constrained_node.cpp.o"
  "CMakeFiles/resource_constrained_node.dir/resource_constrained_node.cpp.o.d"
  "resource_constrained_node"
  "resource_constrained_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_constrained_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
