file(REMOVE_RECURSE
  "CMakeFiles/propagation_network.dir/propagation_network.cpp.o"
  "CMakeFiles/propagation_network.dir/propagation_network.cpp.o.d"
  "propagation_network"
  "propagation_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
