# Empty compiler generated dependencies file for propagation_network.
# This may be replaced when dependencies are built.
