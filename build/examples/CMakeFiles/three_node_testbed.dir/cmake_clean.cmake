file(REMOVE_RECURSE
  "CMakeFiles/three_node_testbed.dir/three_node_testbed.cpp.o"
  "CMakeFiles/three_node_testbed.dir/three_node_testbed.cpp.o.d"
  "three_node_testbed"
  "three_node_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_node_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
