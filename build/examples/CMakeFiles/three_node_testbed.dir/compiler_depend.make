# Empty compiler generated dependencies file for three_node_testbed.
# This may be replaced when dependencies are built.
