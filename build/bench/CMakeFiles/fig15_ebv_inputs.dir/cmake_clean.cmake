file(REMOVE_RECURSE
  "CMakeFiles/fig15_ebv_inputs.dir/fig15_ebv_inputs.cpp.o"
  "CMakeFiles/fig15_ebv_inputs.dir/fig15_ebv_inputs.cpp.o.d"
  "fig15_ebv_inputs"
  "fig15_ebv_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ebv_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
