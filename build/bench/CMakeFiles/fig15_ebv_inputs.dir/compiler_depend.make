# Empty compiler generated dependencies file for fig15_ebv_inputs.
# This may be replaced when dependencies are built.
