# Empty dependencies file for fig01_utxo_growth.
# This may be replaced when dependencies are built.
