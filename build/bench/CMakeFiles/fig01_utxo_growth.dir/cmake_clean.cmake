file(REMOVE_RECURSE
  "CMakeFiles/fig01_utxo_growth.dir/fig01_utxo_growth.cpp.o"
  "CMakeFiles/fig01_utxo_growth.dir/fig01_utxo_growth.cpp.o.d"
  "fig01_utxo_growth"
  "fig01_utxo_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_utxo_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
