file(REMOVE_RECURSE
  "CMakeFiles/fig18_propagation.dir/fig18_propagation.cpp.o"
  "CMakeFiles/fig18_propagation.dir/fig18_propagation.cpp.o.d"
  "fig18_propagation"
  "fig18_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
