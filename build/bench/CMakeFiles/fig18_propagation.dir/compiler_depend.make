# Empty compiler generated dependencies file for fig18_propagation.
# This may be replaced when dependencies are built.
