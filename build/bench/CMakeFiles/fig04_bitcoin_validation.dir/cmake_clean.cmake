file(REMOVE_RECURSE
  "CMakeFiles/fig04_bitcoin_validation.dir/fig04_bitcoin_validation.cpp.o"
  "CMakeFiles/fig04_bitcoin_validation.dir/fig04_bitcoin_validation.cpp.o.d"
  "fig04_bitcoin_validation"
  "fig04_bitcoin_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bitcoin_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
