# Empty compiler generated dependencies file for fig04_bitcoin_validation.
# This may be replaced when dependencies are built.
