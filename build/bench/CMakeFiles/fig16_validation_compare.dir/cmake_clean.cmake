file(REMOVE_RECURSE
  "CMakeFiles/fig16_validation_compare.dir/fig16_validation_compare.cpp.o"
  "CMakeFiles/fig16_validation_compare.dir/fig16_validation_compare.cpp.o.d"
  "fig16_validation_compare"
  "fig16_validation_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_validation_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
