# Empty compiler generated dependencies file for fig16_validation_compare.
# This may be replaced when dependencies are built.
