# Empty dependencies file for fig05_bitcoin_ibd.
# This may be replaced when dependencies are built.
