file(REMOVE_RECURSE
  "CMakeFiles/fig05_bitcoin_ibd.dir/fig05_bitcoin_ibd.cpp.o"
  "CMakeFiles/fig05_bitcoin_ibd.dir/fig05_bitcoin_ibd.cpp.o.d"
  "fig05_bitcoin_ibd"
  "fig05_bitcoin_ibd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bitcoin_ibd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
