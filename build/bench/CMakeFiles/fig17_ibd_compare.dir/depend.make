# Empty dependencies file for fig17_ibd_compare.
# This may be replaced when dependencies are built.
