file(REMOVE_RECURSE
  "CMakeFiles/fig17_ibd_compare.dir/fig17_ibd_compare.cpp.o"
  "CMakeFiles/fig17_ibd_compare.dir/fig17_ibd_compare.cpp.o.d"
  "fig17_ibd_compare"
  "fig17_ibd_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ibd_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
