# Empty compiler generated dependencies file for compare_accumulator.
# This may be replaced when dependencies are built.
