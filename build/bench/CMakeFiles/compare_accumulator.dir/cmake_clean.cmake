file(REMOVE_RECURSE
  "CMakeFiles/compare_accumulator.dir/compare_accumulator.cpp.o"
  "CMakeFiles/compare_accumulator.dir/compare_accumulator.cpp.o.d"
  "compare_accumulator"
  "compare_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
