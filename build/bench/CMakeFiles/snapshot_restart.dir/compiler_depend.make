# Empty compiler generated dependencies file for snapshot_restart.
# This may be replaced when dependencies are built.
