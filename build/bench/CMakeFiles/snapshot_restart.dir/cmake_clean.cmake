file(REMOVE_RECURSE
  "CMakeFiles/snapshot_restart.dir/snapshot_restart.cpp.o"
  "CMakeFiles/snapshot_restart.dir/snapshot_restart.cpp.o.d"
  "snapshot_restart"
  "snapshot_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
