# Empty compiler generated dependencies file for ebv_net.
# This may be replaced when dependencies are built.
