file(REMOVE_RECURSE
  "CMakeFiles/ebv_net.dir/backends.cpp.o"
  "CMakeFiles/ebv_net.dir/backends.cpp.o.d"
  "CMakeFiles/ebv_net.dir/message.cpp.o"
  "CMakeFiles/ebv_net.dir/message.cpp.o.d"
  "CMakeFiles/ebv_net.dir/protocol_node.cpp.o"
  "CMakeFiles/ebv_net.dir/protocol_node.cpp.o.d"
  "libebv_net.a"
  "libebv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
