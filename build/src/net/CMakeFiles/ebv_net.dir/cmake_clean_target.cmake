file(REMOVE_RECURSE
  "libebv_net.a"
)
