file(REMOVE_RECURSE
  "CMakeFiles/ebv_workload.dir/era.cpp.o"
  "CMakeFiles/ebv_workload.dir/era.cpp.o.d"
  "CMakeFiles/ebv_workload.dir/generator.cpp.o"
  "CMakeFiles/ebv_workload.dir/generator.cpp.o.d"
  "CMakeFiles/ebv_workload.dir/stats.cpp.o"
  "CMakeFiles/ebv_workload.dir/stats.cpp.o.d"
  "libebv_workload.a"
  "libebv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
