# Empty dependencies file for ebv_workload.
# This may be replaced when dependencies are built.
