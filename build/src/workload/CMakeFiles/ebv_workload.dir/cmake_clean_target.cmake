file(REMOVE_RECURSE
  "libebv_workload.a"
)
