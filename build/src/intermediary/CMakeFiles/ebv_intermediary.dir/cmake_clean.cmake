file(REMOVE_RECURSE
  "CMakeFiles/ebv_intermediary.dir/converter.cpp.o"
  "CMakeFiles/ebv_intermediary.dir/converter.cpp.o.d"
  "libebv_intermediary.a"
  "libebv_intermediary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_intermediary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
