file(REMOVE_RECURSE
  "libebv_intermediary.a"
)
