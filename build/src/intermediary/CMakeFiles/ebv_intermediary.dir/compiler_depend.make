# Empty compiler generated dependencies file for ebv_intermediary.
# This may be replaced when dependencies are built.
