file(REMOVE_RECURSE
  "CMakeFiles/ebv_core.dir/bitvector.cpp.o"
  "CMakeFiles/ebv_core.dir/bitvector.cpp.o.d"
  "CMakeFiles/ebv_core.dir/bitvector_set.cpp.o"
  "CMakeFiles/ebv_core.dir/bitvector_set.cpp.o.d"
  "CMakeFiles/ebv_core.dir/chain_archive.cpp.o"
  "CMakeFiles/ebv_core.dir/chain_archive.cpp.o.d"
  "CMakeFiles/ebv_core.dir/ebv_transaction.cpp.o"
  "CMakeFiles/ebv_core.dir/ebv_transaction.cpp.o.d"
  "CMakeFiles/ebv_core.dir/ebv_validator.cpp.o"
  "CMakeFiles/ebv_core.dir/ebv_validator.cpp.o.d"
  "CMakeFiles/ebv_core.dir/node.cpp.o"
  "CMakeFiles/ebv_core.dir/node.cpp.o.d"
  "CMakeFiles/ebv_core.dir/reorg.cpp.o"
  "CMakeFiles/ebv_core.dir/reorg.cpp.o.d"
  "CMakeFiles/ebv_core.dir/tx_pool.cpp.o"
  "CMakeFiles/ebv_core.dir/tx_pool.cpp.o.d"
  "libebv_core.a"
  "libebv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
