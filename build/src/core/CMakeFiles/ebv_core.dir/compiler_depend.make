# Empty compiler generated dependencies file for ebv_core.
# This may be replaced when dependencies are built.
