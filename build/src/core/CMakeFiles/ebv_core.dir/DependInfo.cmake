
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bitvector.cpp" "src/core/CMakeFiles/ebv_core.dir/bitvector.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/bitvector.cpp.o.d"
  "/root/repo/src/core/bitvector_set.cpp" "src/core/CMakeFiles/ebv_core.dir/bitvector_set.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/bitvector_set.cpp.o.d"
  "/root/repo/src/core/chain_archive.cpp" "src/core/CMakeFiles/ebv_core.dir/chain_archive.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/chain_archive.cpp.o.d"
  "/root/repo/src/core/ebv_transaction.cpp" "src/core/CMakeFiles/ebv_core.dir/ebv_transaction.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/ebv_transaction.cpp.o.d"
  "/root/repo/src/core/ebv_validator.cpp" "src/core/CMakeFiles/ebv_core.dir/ebv_validator.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/ebv_validator.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/ebv_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/node.cpp.o.d"
  "/root/repo/src/core/reorg.cpp" "src/core/CMakeFiles/ebv_core.dir/reorg.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/reorg.cpp.o.d"
  "/root/repo/src/core/tx_pool.cpp" "src/core/CMakeFiles/ebv_core.dir/tx_pool.cpp.o" "gcc" "src/core/CMakeFiles/ebv_core.dir/tx_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/ebv_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/ebv_script.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ebv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ebv_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ebv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
