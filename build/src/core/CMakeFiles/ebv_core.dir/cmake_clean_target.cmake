file(REMOVE_RECURSE
  "libebv_core.a"
)
