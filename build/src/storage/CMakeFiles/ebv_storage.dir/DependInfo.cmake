
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_hash_table.cpp" "src/storage/CMakeFiles/ebv_storage.dir/disk_hash_table.cpp.o" "gcc" "src/storage/CMakeFiles/ebv_storage.dir/disk_hash_table.cpp.o.d"
  "/root/repo/src/storage/mem_kvstore.cpp" "src/storage/CMakeFiles/ebv_storage.dir/mem_kvstore.cpp.o" "gcc" "src/storage/CMakeFiles/ebv_storage.dir/mem_kvstore.cpp.o.d"
  "/root/repo/src/storage/page_cache.cpp" "src/storage/CMakeFiles/ebv_storage.dir/page_cache.cpp.o" "gcc" "src/storage/CMakeFiles/ebv_storage.dir/page_cache.cpp.o.d"
  "/root/repo/src/storage/paged_file.cpp" "src/storage/CMakeFiles/ebv_storage.dir/paged_file.cpp.o" "gcc" "src/storage/CMakeFiles/ebv_storage.dir/paged_file.cpp.o.d"
  "/root/repo/src/storage/status_db.cpp" "src/storage/CMakeFiles/ebv_storage.dir/status_db.cpp.o" "gcc" "src/storage/CMakeFiles/ebv_storage.dir/status_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ebv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
