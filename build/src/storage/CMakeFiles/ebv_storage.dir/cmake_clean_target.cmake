file(REMOVE_RECURSE
  "libebv_storage.a"
)
