# Empty compiler generated dependencies file for ebv_storage.
# This may be replaced when dependencies are built.
