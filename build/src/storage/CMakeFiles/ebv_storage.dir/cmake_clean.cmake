file(REMOVE_RECURSE
  "CMakeFiles/ebv_storage.dir/disk_hash_table.cpp.o"
  "CMakeFiles/ebv_storage.dir/disk_hash_table.cpp.o.d"
  "CMakeFiles/ebv_storage.dir/mem_kvstore.cpp.o"
  "CMakeFiles/ebv_storage.dir/mem_kvstore.cpp.o.d"
  "CMakeFiles/ebv_storage.dir/page_cache.cpp.o"
  "CMakeFiles/ebv_storage.dir/page_cache.cpp.o.d"
  "CMakeFiles/ebv_storage.dir/paged_file.cpp.o"
  "CMakeFiles/ebv_storage.dir/paged_file.cpp.o.d"
  "CMakeFiles/ebv_storage.dir/status_db.cpp.o"
  "CMakeFiles/ebv_storage.dir/status_db.cpp.o.d"
  "libebv_storage.a"
  "libebv_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
