# Empty compiler generated dependencies file for ebv_netsim.
# This may be replaced when dependencies are built.
