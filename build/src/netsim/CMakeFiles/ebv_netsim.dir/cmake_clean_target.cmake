file(REMOVE_RECURSE
  "libebv_netsim.a"
)
