file(REMOVE_RECURSE
  "CMakeFiles/ebv_netsim.dir/gossip.cpp.o"
  "CMakeFiles/ebv_netsim.dir/gossip.cpp.o.d"
  "libebv_netsim.a"
  "libebv_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
