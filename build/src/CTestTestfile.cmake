# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("script")
subdirs("storage")
subdirs("chain")
subdirs("core")
subdirs("intermediary")
subdirs("workload")
subdirs("netsim")
subdirs("net")
subdirs("accumulator")
