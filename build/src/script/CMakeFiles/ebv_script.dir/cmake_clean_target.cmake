file(REMOVE_RECURSE
  "libebv_script.a"
)
