# Empty compiler generated dependencies file for ebv_script.
# This may be replaced when dependencies are built.
