file(REMOVE_RECURSE
  "CMakeFiles/ebv_script.dir/interpreter.cpp.o"
  "CMakeFiles/ebv_script.dir/interpreter.cpp.o.d"
  "CMakeFiles/ebv_script.dir/script.cpp.o"
  "CMakeFiles/ebv_script.dir/script.cpp.o.d"
  "CMakeFiles/ebv_script.dir/standard.cpp.o"
  "CMakeFiles/ebv_script.dir/standard.cpp.o.d"
  "libebv_script.a"
  "libebv_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
