# Empty dependencies file for ebv_util.
# This may be replaced when dependencies are built.
