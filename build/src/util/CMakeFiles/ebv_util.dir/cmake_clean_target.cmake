file(REMOVE_RECURSE
  "libebv_util.a"
)
