file(REMOVE_RECURSE
  "CMakeFiles/ebv_util.dir/hex.cpp.o"
  "CMakeFiles/ebv_util.dir/hex.cpp.o.d"
  "CMakeFiles/ebv_util.dir/log.cpp.o"
  "CMakeFiles/ebv_util.dir/log.cpp.o.d"
  "CMakeFiles/ebv_util.dir/rng.cpp.o"
  "CMakeFiles/ebv_util.dir/rng.cpp.o.d"
  "CMakeFiles/ebv_util.dir/serialize.cpp.o"
  "CMakeFiles/ebv_util.dir/serialize.cpp.o.d"
  "CMakeFiles/ebv_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ebv_util.dir/thread_pool.cpp.o.d"
  "libebv_util.a"
  "libebv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
