file(REMOVE_RECURSE
  "libebv_crypto.a"
)
