# Empty dependencies file for ebv_crypto.
# This may be replaced when dependencies are built.
