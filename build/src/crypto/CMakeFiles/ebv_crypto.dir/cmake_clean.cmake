file(REMOVE_RECURSE
  "CMakeFiles/ebv_crypto.dir/base58.cpp.o"
  "CMakeFiles/ebv_crypto.dir/base58.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/ebv_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/hash_types.cpp.o"
  "CMakeFiles/ebv_crypto.dir/hash_types.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/hmac.cpp.o"
  "CMakeFiles/ebv_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/merkle.cpp.o"
  "CMakeFiles/ebv_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/ripemd160.cpp.o"
  "CMakeFiles/ebv_crypto.dir/ripemd160.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/ebv_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/sha256.cpp.o"
  "CMakeFiles/ebv_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/ebv_crypto.dir/u256.cpp.o"
  "CMakeFiles/ebv_crypto.dir/u256.cpp.o.d"
  "libebv_crypto.a"
  "libebv_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
