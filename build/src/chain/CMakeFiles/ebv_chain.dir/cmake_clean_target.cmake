file(REMOVE_RECURSE
  "libebv_chain.a"
)
