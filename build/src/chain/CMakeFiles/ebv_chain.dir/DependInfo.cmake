
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/ebv_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/miner.cpp" "src/chain/CMakeFiles/ebv_chain.dir/miner.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/miner.cpp.o.d"
  "/root/repo/src/chain/node.cpp" "src/chain/CMakeFiles/ebv_chain.dir/node.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/node.cpp.o.d"
  "/root/repo/src/chain/pow.cpp" "src/chain/CMakeFiles/ebv_chain.dir/pow.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/pow.cpp.o.d"
  "/root/repo/src/chain/reorg.cpp" "src/chain/CMakeFiles/ebv_chain.dir/reorg.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/reorg.cpp.o.d"
  "/root/repo/src/chain/sighash.cpp" "src/chain/CMakeFiles/ebv_chain.dir/sighash.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/sighash.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/chain/CMakeFiles/ebv_chain.dir/transaction.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/transaction.cpp.o.d"
  "/root/repo/src/chain/utxo_set.cpp" "src/chain/CMakeFiles/ebv_chain.dir/utxo_set.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/utxo_set.cpp.o.d"
  "/root/repo/src/chain/validation.cpp" "src/chain/CMakeFiles/ebv_chain.dir/validation.cpp.o" "gcc" "src/chain/CMakeFiles/ebv_chain.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/script/CMakeFiles/ebv_script.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ebv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ebv_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ebv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
