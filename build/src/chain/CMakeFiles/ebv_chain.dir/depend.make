# Empty dependencies file for ebv_chain.
# This may be replaced when dependencies are built.
