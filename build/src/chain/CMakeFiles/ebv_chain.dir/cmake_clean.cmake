file(REMOVE_RECURSE
  "CMakeFiles/ebv_chain.dir/block.cpp.o"
  "CMakeFiles/ebv_chain.dir/block.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/miner.cpp.o"
  "CMakeFiles/ebv_chain.dir/miner.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/node.cpp.o"
  "CMakeFiles/ebv_chain.dir/node.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/pow.cpp.o"
  "CMakeFiles/ebv_chain.dir/pow.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/reorg.cpp.o"
  "CMakeFiles/ebv_chain.dir/reorg.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/sighash.cpp.o"
  "CMakeFiles/ebv_chain.dir/sighash.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/transaction.cpp.o"
  "CMakeFiles/ebv_chain.dir/transaction.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/utxo_set.cpp.o"
  "CMakeFiles/ebv_chain.dir/utxo_set.cpp.o.d"
  "CMakeFiles/ebv_chain.dir/validation.cpp.o"
  "CMakeFiles/ebv_chain.dir/validation.cpp.o.d"
  "libebv_chain.a"
  "libebv_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
