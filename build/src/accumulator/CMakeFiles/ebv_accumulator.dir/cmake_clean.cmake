file(REMOVE_RECURSE
  "CMakeFiles/ebv_accumulator.dir/forest.cpp.o"
  "CMakeFiles/ebv_accumulator.dir/forest.cpp.o.d"
  "libebv_accumulator.a"
  "libebv_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
