# Empty dependencies file for ebv_accumulator.
# This may be replaced when dependencies are built.
