file(REMOVE_RECURSE
  "libebv_accumulator.a"
)
