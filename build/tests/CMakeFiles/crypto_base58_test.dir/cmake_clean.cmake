file(REMOVE_RECURSE
  "CMakeFiles/crypto_base58_test.dir/crypto_base58_test.cpp.o"
  "CMakeFiles/crypto_base58_test.dir/crypto_base58_test.cpp.o.d"
  "crypto_base58_test"
  "crypto_base58_test.pdb"
  "crypto_base58_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_base58_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
