# Empty dependencies file for crypto_base58_test.
# This may be replaced when dependencies are built.
