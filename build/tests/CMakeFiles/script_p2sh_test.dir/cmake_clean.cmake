file(REMOVE_RECURSE
  "CMakeFiles/script_p2sh_test.dir/script_p2sh_test.cpp.o"
  "CMakeFiles/script_p2sh_test.dir/script_p2sh_test.cpp.o.d"
  "script_p2sh_test"
  "script_p2sh_test.pdb"
  "script_p2sh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_p2sh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
