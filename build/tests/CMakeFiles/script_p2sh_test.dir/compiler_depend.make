# Empty compiler generated dependencies file for script_p2sh_test.
# This may be replaced when dependencies are built.
