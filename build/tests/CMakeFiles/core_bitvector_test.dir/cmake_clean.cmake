file(REMOVE_RECURSE
  "CMakeFiles/core_bitvector_test.dir/core_bitvector_test.cpp.o"
  "CMakeFiles/core_bitvector_test.dir/core_bitvector_test.cpp.o.d"
  "core_bitvector_test"
  "core_bitvector_test.pdb"
  "core_bitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
