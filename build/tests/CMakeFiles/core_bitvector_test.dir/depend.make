# Empty dependencies file for core_bitvector_test.
# This may be replaced when dependencies are built.
