# Empty dependencies file for tx_pool_test.
# This may be replaced when dependencies are built.
