file(REMOVE_RECURSE
  "CMakeFiles/tx_pool_test.dir/tx_pool_test.cpp.o"
  "CMakeFiles/tx_pool_test.dir/tx_pool_test.cpp.o.d"
  "tx_pool_test"
  "tx_pool_test.pdb"
  "tx_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
