# Empty compiler generated dependencies file for core_ebv_test.
# This may be replaced when dependencies are built.
