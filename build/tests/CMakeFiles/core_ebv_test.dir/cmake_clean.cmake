file(REMOVE_RECURSE
  "CMakeFiles/core_ebv_test.dir/core_ebv_test.cpp.o"
  "CMakeFiles/core_ebv_test.dir/core_ebv_test.cpp.o.d"
  "core_ebv_test"
  "core_ebv_test.pdb"
  "core_ebv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ebv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
