file(REMOVE_RECURSE
  "CMakeFiles/storage_linear_hash_test.dir/storage_linear_hash_test.cpp.o"
  "CMakeFiles/storage_linear_hash_test.dir/storage_linear_hash_test.cpp.o.d"
  "storage_linear_hash_test"
  "storage_linear_hash_test.pdb"
  "storage_linear_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_linear_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
