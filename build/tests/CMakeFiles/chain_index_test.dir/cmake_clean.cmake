file(REMOVE_RECURSE
  "CMakeFiles/chain_index_test.dir/chain_index_test.cpp.o"
  "CMakeFiles/chain_index_test.dir/chain_index_test.cpp.o.d"
  "chain_index_test"
  "chain_index_test.pdb"
  "chain_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
