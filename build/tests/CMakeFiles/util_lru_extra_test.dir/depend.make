# Empty dependencies file for util_lru_extra_test.
# This may be replaced when dependencies are built.
