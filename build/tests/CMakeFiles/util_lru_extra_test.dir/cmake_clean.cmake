file(REMOVE_RECURSE
  "CMakeFiles/util_lru_extra_test.dir/util_lru_extra_test.cpp.o"
  "CMakeFiles/util_lru_extra_test.dir/util_lru_extra_test.cpp.o.d"
  "util_lru_extra_test"
  "util_lru_extra_test.pdb"
  "util_lru_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_lru_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
