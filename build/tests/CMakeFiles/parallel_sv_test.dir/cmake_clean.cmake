file(REMOVE_RECURSE
  "CMakeFiles/parallel_sv_test.dir/parallel_sv_test.cpp.o"
  "CMakeFiles/parallel_sv_test.dir/parallel_sv_test.cpp.o.d"
  "parallel_sv_test"
  "parallel_sv_test.pdb"
  "parallel_sv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
