# Empty compiler generated dependencies file for parallel_sv_test.
# This may be replaced when dependencies are built.
