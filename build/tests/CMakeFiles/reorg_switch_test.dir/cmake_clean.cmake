file(REMOVE_RECURSE
  "CMakeFiles/reorg_switch_test.dir/reorg_switch_test.cpp.o"
  "CMakeFiles/reorg_switch_test.dir/reorg_switch_test.cpp.o.d"
  "reorg_switch_test"
  "reorg_switch_test.pdb"
  "reorg_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorg_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
