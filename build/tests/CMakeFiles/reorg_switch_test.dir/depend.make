# Empty dependencies file for reorg_switch_test.
# This may be replaced when dependencies are built.
