file(REMOVE_RECURSE
  "CMakeFiles/ebv_mutation_test.dir/ebv_mutation_test.cpp.o"
  "CMakeFiles/ebv_mutation_test.dir/ebv_mutation_test.cpp.o.d"
  "ebv_mutation_test"
  "ebv_mutation_test.pdb"
  "ebv_mutation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebv_mutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
