# Empty compiler generated dependencies file for ebv_mutation_test.
# This may be replaced when dependencies are built.
