file(REMOVE_RECURSE
  "CMakeFiles/chain_pow_test.dir/chain_pow_test.cpp.o"
  "CMakeFiles/chain_pow_test.dir/chain_pow_test.cpp.o.d"
  "chain_pow_test"
  "chain_pow_test.pdb"
  "chain_pow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_pow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
