# Empty compiler generated dependencies file for chain_pow_test.
# This may be replaced when dependencies are built.
