
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto_secp_edge_test.cpp" "tests/CMakeFiles/crypto_secp_edge_test.dir/crypto_secp_edge_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_secp_edge_test.dir/crypto_secp_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ebv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/accumulator/CMakeFiles/ebv_accumulator.dir/DependInfo.cmake"
  "/root/repo/build/src/intermediary/CMakeFiles/ebv_intermediary.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ebv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ebv_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ebv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/ebv_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/ebv_script.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ebv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ebv_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ebv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
