# Empty compiler generated dependencies file for crypto_secp_edge_test.
# This may be replaced when dependencies are built.
