file(REMOVE_RECURSE
  "CMakeFiles/crypto_secp_edge_test.dir/crypto_secp_edge_test.cpp.o"
  "CMakeFiles/crypto_secp_edge_test.dir/crypto_secp_edge_test.cpp.o.d"
  "crypto_secp_edge_test"
  "crypto_secp_edge_test.pdb"
  "crypto_secp_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_secp_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
