// The paper's motivating scenario: a node whose status-database memory is
// restricted. Sweeps the memory limit for the baseline node over the same
// chain and shows DBO time exploding as the budget shrinks, while the EBV
// node's whole status state fits in less memory than the smallest budget.
//
//   $ ./examples/resource_constrained_node
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "chain/node.hpp"
#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "workload/generator.hpp"

using namespace ebv;

int main() {
    workload::GeneratorOptions gen_options;
    gen_options.seed = 99;
    gen_options.signed_mode = false;  // DBO study: scripts disabled
    gen_options.schedule = workload::EraSchedule::flat(12.0, 1.8, 2.2);
    gen_options.height_scale = 1.0;
    gen_options.intensity = 1.0;

    const std::uint32_t kBlocks = 600;
    std::printf("generating %u blocks...\n", kBlocks);
    workload::ChainGenerator generator(gen_options);
    std::vector<chain::Block> blocks;
    blocks.reserve(kBlocks);
    for (std::uint32_t i = 0; i < kBlocks; ++i) blocks.push_back(generator.next_block());

    // Convert once for the EBV side.
    intermediary::Converter converter;
    std::vector<core::EbvBlock> ebv_blocks;
    for (const auto& block : blocks) {
        auto converted = converter.convert_block(block);
        if (!converted) return 1;
        ebv_blocks.push_back(std::move(*converted));
    }

    std::printf("\nbaseline node, HDD-backed status DB, shrinking memory budget:\n");
    std::printf("%-12s %14s %14s %12s\n", "budget-KB", "dbo-ms", "cache-misses",
                "final-utxos");

    for (const std::size_t budget_kb : {4096, 1024, 512, 256, 128}) {
        const auto dir = std::filesystem::temp_directory_path() /
                         ("ebv_rc_" + std::to_string(::getpid()) + "_" +
                          std::to_string(budget_kb));
        std::filesystem::create_directories(dir);

        chain::BitcoinNodeOptions options;
        options.params = gen_options.params;
        options.data_dir = dir.string();
        options.memory_limit_bytes = budget_kb * 1024;
        options.device = storage::DeviceProfile::hdd();
        options.validator.verify_scripts = false;
        chain::BitcoinNode node(options);

        double dbo_ms = 0;
        for (const auto& block : blocks) {
            auto r = node.submit_block(block);
            if (!r) {
                std::fprintf(stderr, "rejected: %s\n", r.error().describe().c_str());
                return 1;
            }
            dbo_ms += util::to_ms(r->dbo.total_ns());
        }
        const auto* disk =
            dynamic_cast<storage::DiskHashTable*>(&node.status_db().store());
        std::printf("%-12zu %14.1f %14llu %12llu\n", budget_kb, dbo_ms,
                    static_cast<unsigned long long>(disk ? disk->cache_stats().misses : 0),
                    static_cast<unsigned long long>(node.utxo().size()));
        std::filesystem::remove_all(dir);
    }

    // EBV on the same chain: all status data in memory, no budget needed.
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    ebv_options.validator.verify_scripts = false;
    core::EbvNode ebv_node(ebv_options);
    double ev_uv_ms = 0;
    for (const auto& block : ebv_blocks) {
        auto r = ebv_node.submit_block(block);
        if (!r) return 1;
        ev_uv_ms += util::to_ms((r->ev + r->uv + r->update).total_ns());
    }

    std::printf("\nEBV node on the same chain:\n");
    std::printf("  status memory:     %.1f KB (fits any budget above)\n",
                ebv_node.status_memory_bytes() / 1024.0);
    std::printf("  EV+UV+update time: %.1f ms total (no disk in the loop)\n", ev_uv_ms);
    return 0;
}
