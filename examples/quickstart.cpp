// Quickstart: build a tiny signed chain, validate it with the baseline
// (Bitcoin-style) node, convert it through the intermediary, validate the
// converted chain with the EBV node, and print what each system needed.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "chain/node.hpp"
#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/generator.hpp"

using namespace ebv;

int main() {
    // 1. A deterministic synthetic chain: 60 blocks, a few signed
    //    transactions each.
    workload::GeneratorOptions gen_options;
    gen_options.seed = 7;
    gen_options.schedule = workload::EraSchedule::flat(/*tx_per_block=*/3.0,
                                                       /*inputs_per_tx=*/1.5,
                                                       /*outputs_per_tx=*/2.0);
    gen_options.height_scale = 1.0;
    gen_options.intensity = 1.0;
    workload::ChainGenerator generator(gen_options);

    // 2. A baseline node (UTXO set in a status database) and an EBV node
    //    (bit-vector set, proofs carried by transactions).
    chain::BitcoinNodeOptions btc_options;
    btc_options.params = gen_options.params;
    chain::BitcoinNode btc_node(btc_options);

    intermediary::Converter converter;
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    core::EbvNode ebv_node(ebv_options);

    chain::BlockTimings btc_total{};
    core::EbvTimings ebv_total{};

    const int kBlocks = 60;
    for (int i = 0; i < kBlocks; ++i) {
        const chain::Block block = generator.next_block();

        // Baseline validation: Fetch (EV+UV) against the UTXO set, SV,
        // then Delete/Insert.
        auto btc_result = btc_node.submit_block(block);
        if (!btc_result) {
            std::fprintf(stderr, "baseline rejected block %d: %s\n", i,
                         btc_result.error().describe().c_str());
            return 1;
        }
        btc_total += *btc_result;

        // The intermediary reconstructs each input with MBr/ELs/height/
        // position, as in the paper's evaluation setup.
        auto converted = converter.convert_block(block);
        if (!converted) {
            std::fprintf(stderr, "conversion failed at block %d\n", i);
            return 1;
        }

        // EBV validation: EV from the Merkle branch, UV from the
        // bit-vector set, SV from the carried locking script.
        auto ebv_result = ebv_node.submit_block(*converted);
        if (!ebv_result) {
            std::fprintf(stderr, "EBV rejected block %d: %s\n", i,
                         ebv_result.error().describe().c_str());
            return 1;
        }
        ebv_total += *ebv_result;
    }

    std::printf("validated %d blocks (%zu inputs) on both nodes\n\n", kBlocks,
                btc_total.inputs);
    std::printf("baseline:  DBO %.2f ms, SV %.2f ms, others %.2f ms\n",
                util::to_ms(btc_total.dbo.total_ns()),
                util::to_ms(btc_total.sv.total_ns()),
                util::to_ms(btc_total.other.total_ns()));
    std::printf("EBV:       EV %.2f ms, UV %.2f ms, SV %.2f ms, others %.2f ms\n\n",
                util::to_ms(ebv_total.ev.total_ns()),
                util::to_ms(ebv_total.uv.total_ns()),
                util::to_ms(ebv_total.sv.total_ns()),
                util::to_ms(ebv_total.others_combined().total_ns()));
    std::printf("status data held by the baseline (UTXO set): %llu bytes\n",
                static_cast<unsigned long long>(btc_node.status_payload_bytes()));
    std::printf("status data held by EBV (bit-vector set):    %zu bytes\n",
                ebv_node.status_memory_bytes());

    // Everything above was also published to the process-wide metrics
    // registry; any tool can scrape it (docs/OBSERVABILITY.md).
    obs::Registry& registry = obs::Registry::global();
    std::printf("\nobs registry: %llu EBV connects, p95 EBV block time %.0f us, "
                "%llu spans traced\n",
                static_cast<unsigned long long>(
                    registry.counter("ebv.block.connects").value()),
                registry.histogram("ebv.block.total_ns").percentile(95) / 1e3,
                static_cast<unsigned long long>(obs::Tracer::global().recorded()));
    return 0;
}
