// ebv_cli — command-line driver for the library: generate synthetic chains
// to disk, convert them to EBV format, run validation/IBD with timing
// reports, and inspect state. The workflows a downstream user scripts.
//
//   ebv_cli generate  <chain.dat> [blocks] [seed]     write a signed chain
//   ebv_cli convert   <chain.dat> <ebv.dat>           reconstruct as EBV
//   ebv_cli validate  <chain.dat>                     baseline IBD + report
//   ebv_cli validate-ebv <ebv.dat>                    EBV IBD + report
//   ebv_cli compare   <chain.dat> <ebv.dat>           both, side by side
//   ebv_cli info      <chain.dat|ebv.dat>             chain statistics
//   ebv_cli address   <hex-privkey|random>            derive a P2PKH address
#include <cstdio>
#include <cstring>
#include <unistd.h>
#include <string>

#include "chain/node.hpp"
#include "core/node.hpp"
#include "crypto/base58.hpp"
#include "intermediary/converter.hpp"
#include "storage/flat_store.hpp"
#include "util/hex.hpp"
#include "workload/generator.hpp"

using namespace ebv;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: ebv_cli <command> [args]\n"
                 "  generate <chain.dat> [blocks=200] [seed=1]\n"
                 "  convert <chain.dat> <ebv.dat>\n"
                 "  validate <chain.dat>\n"
                 "  validate-ebv <ebv.dat>\n"
                 "  compare <chain.dat> <ebv.dat>\n"
                 "  info <chain.dat|ebv.dat>\n"
                 "  address <hex-privkey|random>\n");
    return 2;
}

chain::ChainParams cli_params() {
    chain::ChainParams params = chain::ChainParams::simnet();
    params.coinbase_maturity = 5;
    return params;
}

workload::GeneratorOptions cli_gen_options(std::uint64_t seed) {
    workload::GeneratorOptions options;
    options.seed = seed;
    options.params = cli_params();
    options.schedule = workload::EraSchedule::bitcoin_mainnet();
    options.height_scale = 1000.0;
    options.intensity = 0.2;
    return options;
}

int cmd_generate(const std::string& path, std::uint32_t blocks, std::uint64_t seed) {
    workload::ChainGenerator generator(cli_gen_options(seed));
    storage::FlatStore<chain::Block> store(path);
    if (store.count() != 0) {
        std::fprintf(stderr, "refusing to append to non-empty %s\n", path.c_str());
        return 1;
    }
    for (std::uint32_t i = 0; i < blocks; ++i) {
        store.append(generator.next_block());
        if ((i + 1) % 100 == 0) std::fprintf(stderr, "  %u/%u blocks\n", i + 1, blocks);
    }
    store.sync();
    std::printf("wrote %u blocks to %s (utxo pool: %zu)\n", blocks, path.c_str(),
                generator.utxo_pool_size());
    return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
    storage::FlatStore<chain::Block> in(in_path);
    storage::FlatStore<core::EbvBlock> out(out_path);
    if (out.count() != 0) {
        std::fprintf(stderr, "refusing to append to non-empty %s\n", out_path.c_str());
        return 1;
    }
    intermediary::Converter converter;
    for (std::uint32_t h = 0; h < in.count(); ++h) {
        const auto block = in.load(h);
        if (!block) return 1;
        auto converted = converter.convert_block(*block);
        if (!converted) {
            std::fprintf(stderr, "conversion failed at %u: %s\n", h,
                         to_string(converted.error()));
            return 1;
        }
        out.append(*converted);
    }
    out.sync();
    std::printf("converted %u blocks: %.1f KB bitcoin -> %.1f KB ebv (+%.1f%% proof data)\n",
                in.count(), converter.stats().bitcoin_bytes / 1024.0,
                converter.stats().ebv_bytes / 1024.0,
                100.0 * (static_cast<double>(converter.stats().ebv_bytes) /
                             static_cast<double>(converter.stats().bitcoin_bytes) -
                         1.0));
    return 0;
}

int cmd_validate(const std::string& path) {
    storage::FlatStore<chain::Block> store(path);
    chain::BitcoinNodeOptions options;
    options.params = cli_params();
    chain::BitcoinNode node(options);

    chain::BlockTimings total{};
    for (std::uint32_t h = 0; h < store.count(); ++h) {
        const auto block = store.load(h);
        if (!block) return 1;
        auto r = node.submit_block(*block);
        if (!r) {
            std::fprintf(stderr, "block %u rejected: %s\n", h,
                         r.error().describe().c_str());
            return 1;
        }
        total += *r;
    }
    std::printf("baseline IBD of %u blocks OK: %zu inputs\n", store.count(),
                total.inputs);
    std::printf("  DBO %.1f ms, SV %.1f ms, others %.1f ms\n",
                util::to_ms(total.dbo.total_ns()), util::to_ms(total.sv.total_ns()),
                util::to_ms(total.other.total_ns()));
    std::printf("  final UTXO set: %llu entries, %llu bytes\n",
                static_cast<unsigned long long>(node.utxo().size()),
                static_cast<unsigned long long>(node.status_payload_bytes()));
    return 0;
}

int cmd_validate_ebv(const std::string& path) {
    storage::FlatStore<core::EbvBlock> store(path);
    core::EbvNodeOptions options;
    options.params = cli_params();
    core::EbvNode node(options);

    core::EbvTimings total{};
    for (std::uint32_t h = 0; h < store.count(); ++h) {
        const auto block = store.load(h);
        if (!block) return 1;
        auto r = node.submit_block(*block);
        if (!r) {
            std::fprintf(stderr, "block %u rejected: %s\n", h,
                         r.error().describe().c_str());
            return 1;
        }
        total += *r;
    }
    std::printf("EBV IBD of %u blocks OK: %zu inputs\n", store.count(), total.inputs);
    std::printf("  EV %.2f ms, UV %.2f ms, SV %.1f ms, others %.2f ms\n",
                util::to_ms(total.ev.total_ns()), util::to_ms(total.uv.total_ns()),
                util::to_ms(total.sv.total_ns()),
                util::to_ms(total.others_combined().total_ns()));
    std::printf("  status memory: %zu bytes of bit-vectors (%zu vectors)\n",
                node.status_memory_bytes(), node.status().vector_count());
    return 0;
}

int cmd_compare(const std::string& btc_path, const std::string& ebv_path) {
    std::printf("== baseline ==\n");
    if (const int rc = cmd_validate(btc_path); rc != 0) return rc;
    std::printf("\n== EBV ==\n");
    return cmd_validate_ebv(ebv_path);
}

int cmd_info(const std::string& path) {
    // Try Bitcoin format first, then EBV.
    {
        storage::FlatStore<chain::Block> store(path);
        if (store.count() > 0 && store.load(0).has_value()) {
            std::uint64_t txs = 0, inputs = 0, outputs = 0, bytes = 0;
            for (std::uint32_t h = 0; h < store.count(); ++h) {
                const auto block = *store.load(h);
                txs += block.txs.size();
                inputs += block.input_count();
                outputs += block.output_count();
                bytes += block.serialized_size();
            }
            std::printf("bitcoin-format chain: %u blocks, %llu txs, %llu inputs, "
                        "%llu outputs, %.1f KB\n",
                        store.count(), static_cast<unsigned long long>(txs),
                        static_cast<unsigned long long>(inputs),
                        static_cast<unsigned long long>(outputs), bytes / 1024.0);
            return 0;
        }
    }
    storage::FlatStore<core::EbvBlock> store(path);
    std::uint64_t txs = 0, inputs = 0, bytes = 0;
    for (std::uint32_t h = 0; h < store.count(); ++h) {
        const auto block = store.load(h);
        if (!block) break;
        txs += block->txs.size();
        inputs += block->input_count();
        bytes += block->serialized_size();
    }
    std::printf("ebv-format chain: %u blocks, %llu txs, %llu inputs, %.1f KB\n",
                store.count(), static_cast<unsigned long long>(txs),
                static_cast<unsigned long long>(inputs), bytes / 1024.0);
    return 0;
}

int cmd_address(const std::string& arg) {
    crypto::PrivateKey key;
    if (arg == "random") {
        util::Rng rng(static_cast<std::uint64_t>(::getpid()) * 2654435761u);
        key = crypto::PrivateKey::generate(rng);
        std::uint8_t secret[32];
        key.secret().to_be_bytes(secret);
        std::printf("privkey: %s\n", util::hex_encode({secret, 32}).c_str());
    } else {
        const auto bytes = util::hex_decode(arg);
        if (!bytes || bytes->size() != 32) {
            std::fprintf(stderr, "expected 64 hex chars or 'random'\n");
            return 1;
        }
        auto parsed = crypto::PrivateKey::from_bytes(*bytes);
        if (!parsed) {
            std::fprintf(stderr, "private key out of range\n");
            return 1;
        }
        key = *parsed;
    }
    const auto pub = key.public_key();
    std::printf("pubkey:  %s\n", util::hex_encode(pub.serialize()).c_str());
    std::printf("address: %s\n",
                crypto::base58check_encode(crypto::kP2pkhVersion, pub.id().span()).c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];

    if (command == "generate" && argc >= 3) {
        const auto blocks = argc >= 4 ? std::strtoul(argv[3], nullptr, 10) : 200;
        const auto seed = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 1;
        return cmd_generate(argv[2], static_cast<std::uint32_t>(blocks), seed);
    }
    if (command == "convert" && argc >= 4) return cmd_convert(argv[2], argv[3]);
    if (command == "validate" && argc >= 3) return cmd_validate(argv[2]);
    if (command == "validate-ebv" && argc >= 3) return cmd_validate_ebv(argv[2]);
    if (command == "compare" && argc >= 4) return cmd_compare(argv[2], argv[3]);
    if (command == "info" && argc >= 3) return cmd_info(argv[2]);
    if (command == "address" && argc >= 3) return cmd_address(argv[2]);
    return usage();
}
