// Wallet-side EBV: propose a transaction *with its proof data attached*.
// A wallet tracks where its own coins live (block height + transaction
// index), so it can build MBr/ELs itself — this is the transaction-proposal
// flow of paper §IV-C, including what happens when the proof is stale or
// the position is faked.
//
//   $ ./examples/wallet_tx_proposal
#include <cstdio>

#include "core/chain_archive.hpp"
#include "core/node.hpp"
#include "script/standard.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

using namespace ebv;

namespace {

/// A minimal wallet: one key, a list of (height, tx_index, out_index, value)
/// coins it owns, and a view of the chain archive to build proofs from.
class Wallet {
public:
    Wallet(util::Rng& rng, const core::ChainArchive& archive)
        : key_(crypto::PrivateKey::generate(rng)), archive_(archive) {}

    [[nodiscard]] script::Script lock_script() const {
        return script::make_p2pkh(key_.public_key().id());
    }

    struct OwnedCoin {
        std::uint32_t height;
        std::uint32_t tx_index;
        std::uint16_t out_index;
        chain::Amount value;
    };

    void note_coin(OwnedCoin coin) { coins_.push_back(coin); }

    /// Build a fully-proven EBV transaction spending the first owned coin.
    core::EbvTransaction propose_spend(chain::Amount amount,
                                       const script::Script& to) {
        const OwnedCoin coin = coins_.front();
        coins_.erase(coins_.begin());

        core::EbvTransaction tx;
        // The proof: ELs (previous tidy tx) + MBr straight from the archive.
        core::EbvInput input =
            archive_.make_input(coin.height, coin.tx_index, coin.out_index);
        input.prevout.index = coin.out_index;  // legacy outpoint for sighash
        tx.inputs.push_back(std::move(input));
        tx.outputs.push_back(chain::TxOut{amount, to});
        tx.outputs.push_back(
            chain::TxOut{coin.value - amount - 1'000 /*fee*/, lock_script()});

        // Sign over the EBV sighash (legacy-compatible).
        const crypto::Hash256 digest =
            core::ebv_signature_hash(tx, 0, lock_script(), 0x01);
        util::Bytes sig = key_.sign(digest).to_der();
        sig.push_back(0x01);
        tx.inputs[0].unlock_script =
            script::make_p2pkh_unlock(sig, key_.public_key());
        return tx;
    }

private:
    crypto::PrivateKey key_;
    const core::ChainArchive& archive_;
    std::vector<OwnedCoin> coins_;
};

}  // namespace

int main() {
    util::Rng rng(2024);

    core::EbvNodeOptions options;
    options.params.coinbase_maturity = 2;
    core::EbvNode node(options);
    core::ChainArchive archive;
    Wallet wallet(rng, archive);

    chain::Amount pending_fees = 0;

    // Mine 4 blocks whose coinbases pay the wallet.
    auto mine = [&](std::vector<core::EbvTransaction> txs) {
        core::EbvBlock block;
        core::EbvTransaction coinbase;
        const std::uint32_t height = node.next_height();
        coinbase.coinbase_data = {static_cast<std::uint8_t>(height), 0x01};
        coinbase.outputs.push_back(chain::TxOut{
            options.params.subsidy_at(height) + pending_fees, wallet.lock_script()});
        pending_fees = 0;
        block.txs.push_back(std::move(coinbase));
        for (auto& tx : txs) block.txs.push_back(std::move(tx));
        block.header.prev_hash =
            node.headers().empty() ? crypto::Hash256{} : node.headers().tip_hash();
        block.assign_stake_positions();

        auto result = node.submit_block(block);
        if (!result) {
            std::printf("  block %u REJECTED: %s\n", height,
                        result.error().describe().c_str());
            return false;
        }
        archive.add_block(block);
        wallet.note_coin({height, 0, 0, block.txs[0].outputs[0].value});
        std::printf("  block %u accepted: EV %.3f ms, UV %.3f ms, SV %.3f ms\n", height,
                    util::to_ms(result->ev.total_ns()), util::to_ms(result->uv.total_ns()),
                    util::to_ms(result->sv.total_ns()));
        return true;
    };

    std::printf("mining 4 coinbase blocks to the wallet...\n");
    for (int i = 0; i < 4; ++i) {
        if (!mine({})) return 1;
    }

    // Propose a payment with attached proof and get it mined.
    util::Rng payee_rng(7);
    const auto payee = crypto::PrivateKey::generate(payee_rng);
    std::printf("\nwallet proposes a payment (proof attached: ELs + MBr + height + position)\n");
    core::EbvTransaction payment =
        wallet.propose_spend(10 * chain::kCoin, script::make_p2pkh(payee.public_key().id()));
    pending_fees += 1'000;

    std::printf("  proof size: input body %zu bytes (ELs %zu bytes, MBr %zu hashes)\n",
                payment.inputs[0].serialized_size(),
                payment.inputs[0].els.serialized_size(),
                payment.inputs[0].mbr.siblings.size());
    if (!mine({payment})) return 1;

    // A replayed (double-spent) proposal must fail UV.
    std::printf("\nreplaying the same coin (double spend) — expecting UV rejection\n");
    core::EbvTransaction replay = payment;
    pending_fees = 0;
    if (mine({replay})) {
        std::printf("ERROR: double spend accepted!\n");
        return 1;
    }

    std::printf("\nstatus data after %u blocks: %zu bytes of bit-vectors\n",
                node.next_height(), node.status_memory_bytes());
    return 0;
}
