// Gossip-propagation demo: how per-hop validation latency shapes block
// propagation across a wide-area gossip network — the mechanism by which
// slow validation raises fork risk (paper §I and §VI-E).
//
//   $ ./examples/propagation_network
#include <cstdio>

#include "netsim/gossip.hpp"
#include "util/rng.hpp"

using namespace ebv;

int main() {
    netsim::GossipOptions options;
    options.node_count = 20;
    options.neighbors_per_node = 2;
    options.block_bytes = 1'200'000;  // ~1.2 MB block

    netsim::GossipNetwork network(options);

    std::printf("topology: %zu nodes across 5 regions, %zu gossip neighbours each\n\n",
                options.node_count, options.neighbors_per_node);
    for (std::size_t i = 0; i < options.node_count; ++i) {
        std::printf("  node %2zu (region %d): neighbours", i,
                    static_cast<int>(network.region_of(i)));
        for (std::size_t n : network.neighbors_of(i)) std::printf(" %zu", n);
        std::printf("\n");
    }

    std::printf("\npropagation of one block under different per-hop validation delays:\n");
    std::printf("%-22s %12s %12s %12s\n", "validation-per-hop", "50%-ms", "90%-ms",
                "100%-ms");

    for (const double validation_s : {0.0, 0.3, 1.0, 5.0, 14.0}) {
        const auto delay_ns = static_cast<netsim::SimTime>(validation_s * 1e9);
        const auto result =
            network.propagate(0, [&](std::size_t) { return delay_ns; });
        auto ms = [](netsim::SimTime t) { return static_cast<double>(t) / 1e6; };
        char label[32];
        std::snprintf(label, sizeof label, "%.1f s", validation_s);
        std::printf("%-22s %12.0f %12.0f %12.0f\n", label,
                    ms(result.time_to_fraction(0.5)), ms(result.time_to_fraction(0.9)),
                    ms(result.time_to_all()));
    }

    std::printf("\nreading: the paper's worst baseline block took ~14 s to validate;\n"
                "at that speed propagation is dominated by validation, which is what\n"
                "EBV removes (sub-second per hop).\n");
    return 0;
}
