// The paper's evaluation topology (§VI-A) over the wire protocol: a
// Bitcoin-format source node that already has the chain, the intermediary
// that validates it, reconstructs every input (MBr/ELs/height/position),
// and serves the EBV-format chain, and an EBV destination node performing
// IBD from the intermediary. Prints protocol traffic and per-system
// validation cost.
//
//   $ ./examples/three_node_testbed
#include <cstdio>

#include "net/backends.hpp"
#include "workload/generator.hpp"

using namespace ebv;
using namespace ebv::net;

int main() {
    const int kBlocks = 80;

    workload::GeneratorOptions gen_options;
    gen_options.seed = 5;
    gen_options.params.coinbase_maturity = 5;
    gen_options.schedule = workload::EraSchedule::flat(4.0, 1.6, 2.1);
    gen_options.height_scale = 1.0;
    gen_options.intensity = 1.0;

    SimNetwork network(2024);

    // Source: a Bitcoin node with the chain already on disk.
    chain::BitcoinNodeOptions source_options;
    source_options.params = gen_options.params;
    chain::BitcoinNode source_node(source_options);
    BitcoinChainBackend source_backend(source_node);
    ProtocolNode source(network, netsim::Region::kUsEast, source_backend, "source");

    std::printf("seeding the source with %d signed blocks...\n", kBlocks);
    workload::ChainGenerator generator(gen_options);
    for (int i = 0; i < kBlocks; ++i) source_backend.seed_block(generator.next_block());

    // Intermediary: Bitcoin-format upstream, EBV-format downstream.
    IntermediaryBridge bridge(network, netsim::Region::kUsWest, gen_options.params);

    // Destination: the EBV node the paper measures.
    core::EbvNodeOptions ebv_options;
    ebv_options.params = gen_options.params;
    core::EbvNode ebv_node(ebv_options);
    EbvChainBackend ebv_backend(ebv_node);
    ProtocolNode ebv(network, netsim::Region::kEuCentral, ebv_backend, "ebv");

    bridge.upstream().connect_to(source.id());
    ebv.connect_to(bridge.downstream().id());

    std::printf("running the simulated network...\n\n");
    network.run();

    auto print_stats = [](const char* name, const ProtocolStats& s) {
        std::printf("%-26s msgs in/out %llu/%llu, bytes in/out %llu/%llu, blocks %llu\n",
                    name, static_cast<unsigned long long>(s.messages_in),
                    static_cast<unsigned long long>(s.messages_out),
                    static_cast<unsigned long long>(s.bytes_in),
                    static_cast<unsigned long long>(s.bytes_out),
                    static_cast<unsigned long long>(s.blocks_connected));
    };
    print_stats("source:", source.stats());
    print_stats("intermediary (upstream):", bridge.upstream().stats());
    print_stats("intermediary (downstream):", bridge.downstream().stats());
    print_stats("ebv destination:", ebv.stats());

    std::printf("\nsource chain height:         %u\n", source_node.next_height());
    std::printf("intermediary converted:      %u blocks\n", bridge.converted_blocks());
    std::printf("ebv destination height:      %u\n", ebv_node.next_height());
    std::printf("ebv status memory:           %zu bytes of bit-vectors\n",
                ebv_node.status_memory_bytes());
    std::printf("ebv IBD finished at t = %.1f ms simulated\n",
                ebv.stats().connect_times.empty()
                    ? 0.0
                    : static_cast<double>(ebv.stats().connect_times.back()) / 1e6);

    const bool ok = source_node.next_height() == static_cast<std::uint32_t>(kBlocks) &&
                    bridge.converted_blocks() == static_cast<std::uint32_t>(kBlocks) &&
                    ebv_node.next_height() == static_cast<std::uint32_t>(kBlocks);
    std::printf("\n%s\n", ok ? "all three nodes agree on the chain — testbed OK"
                             : "MISMATCH between nodes!");
    return ok ? 0 : 1;
}
