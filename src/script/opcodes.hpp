// Opcode table for the stack-based script system (the subset of Bitcoin
// script exercised by standard transactions, plus enough general opcodes
// for realistic non-standard scripts in tests).
#pragma once

#include <cstdint>

namespace ebv::script {

enum Opcode : std::uint8_t {
    // Push value
    OP_0 = 0x00,
    // 0x01-0x4b: push that many following bytes
    OP_PUSHDATA1 = 0x4c,
    OP_PUSHDATA2 = 0x4d,
    OP_PUSHDATA4 = 0x4e,
    OP_1NEGATE = 0x4f,
    OP_1 = 0x51,
    OP_2 = 0x52,
    OP_3 = 0x53,
    OP_4 = 0x54,
    OP_5 = 0x55,
    OP_6 = 0x56,
    OP_7 = 0x57,
    OP_8 = 0x58,
    OP_9 = 0x59,
    OP_10 = 0x5a,
    OP_11 = 0x5b,
    OP_12 = 0x5c,
    OP_13 = 0x5d,
    OP_14 = 0x5e,
    OP_15 = 0x5f,
    OP_16 = 0x60,

    // Flow control
    OP_NOP = 0x61,
    OP_IF = 0x63,
    OP_NOTIF = 0x64,
    OP_ELSE = 0x67,
    OP_ENDIF = 0x68,
    OP_VERIFY = 0x69,
    OP_RETURN = 0x6a,

    // Stack
    OP_TOALTSTACK = 0x6b,
    OP_FROMALTSTACK = 0x6c,
    OP_2DROP = 0x6d,
    OP_2DUP = 0x6e,
    OP_3DUP = 0x6f,
    OP_IFDUP = 0x73,
    OP_DEPTH = 0x74,
    OP_DROP = 0x75,
    OP_DUP = 0x76,
    OP_NIP = 0x77,
    OP_OVER = 0x78,
    OP_PICK = 0x79,
    OP_ROLL = 0x7a,
    OP_ROT = 0x7b,
    OP_SWAP = 0x7c,
    OP_TUCK = 0x7d,
    OP_SIZE = 0x82,

    // Bitwise / comparison
    OP_EQUAL = 0x87,
    OP_EQUALVERIFY = 0x88,

    // Arithmetic
    OP_1ADD = 0x8b,
    OP_1SUB = 0x8c,
    OP_NEGATE = 0x8f,
    OP_ABS = 0x90,
    OP_NOT = 0x91,
    OP_0NOTEQUAL = 0x92,
    OP_ADD = 0x93,
    OP_SUB = 0x94,
    OP_BOOLAND = 0x9a,
    OP_BOOLOR = 0x9b,
    OP_NUMEQUAL = 0x9c,
    OP_NUMEQUALVERIFY = 0x9d,
    OP_NUMNOTEQUAL = 0x9e,
    OP_LESSTHAN = 0x9f,
    OP_GREATERTHAN = 0xa0,
    OP_LESSTHANOREQUAL = 0xa1,
    OP_GREATERTHANOREQUAL = 0xa2,
    OP_MIN = 0xa3,
    OP_MAX = 0xa4,
    OP_WITHIN = 0xa5,

    // Crypto
    OP_RIPEMD160 = 0xa6,
    OP_SHA256 = 0xa8,
    OP_HASH160 = 0xa9,
    OP_HASH256 = 0xaa,
    OP_CHECKSIG = 0xac,
    OP_CHECKSIGVERIFY = 0xad,
    OP_CHECKMULTISIG = 0xae,
    OP_CHECKMULTISIGVERIFY = 0xaf,

    OP_INVALIDOPCODE = 0xff,
};

/// Human-readable opcode name ("OP_DUP"); "OP_UNKNOWN" for gaps.
const char* opcode_name(Opcode op);

}  // namespace ebv::script
