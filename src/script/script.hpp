// Script container, builder, and parser. A Script is just bytes; the
// builder guarantees canonical push encodings and the iterator decodes one
// operation (opcode + optional push payload) at a time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "script/opcodes.hpp"
#include "util/span.hpp"

namespace ebv::script {

using Script = util::Bytes;

class ScriptBuilder {
public:
    /// Append a bare opcode.
    ScriptBuilder& op(Opcode opcode);

    /// Append data with the minimal push encoding (direct push, PUSHDATA1/2/4).
    ScriptBuilder& push(util::ByteSpan data);

    /// Append a small integer using OP_0/OP_1..OP_16/OP_1NEGATE when
    /// possible, otherwise a minimal ScriptNum push.
    ScriptBuilder& push_int(std::int64_t value);

    [[nodiscard]] const Script& script() const { return script_; }
    [[nodiscard]] Script take() { return std::move(script_); }

private:
    Script script_;
};

/// One decoded operation.
struct ScriptOp {
    Opcode opcode = OP_INVALIDOPCODE;
    util::Bytes push_data;  ///< payload when the opcode is a push

    [[nodiscard]] bool is_push() const { return opcode <= OP_PUSHDATA4; }
};

/// Sequential decoder. next() returns nullopt at end; malformed() is set if
/// decoding hit a truncated push.
class ScriptParser {
public:
    explicit ScriptParser(util::ByteSpan script) : script_(script) {}

    std::optional<ScriptOp> next();
    [[nodiscard]] bool malformed() const { return malformed_; }
    [[nodiscard]] std::size_t position() const { return pos_; }

private:
    util::ByteSpan script_;
    std::size_t pos_ = 0;
    bool malformed_ = false;
};

/// Disassemble into "OP_DUP OP_HASH160 <20:ab...> ..." for diagnostics.
std::string disassemble(util::ByteSpan script);

}  // namespace ebv::script
