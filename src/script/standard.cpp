#include "script/standard.hpp"

#include "util/assert.hpp"

namespace ebv::script {

Script make_p2pkh(const crypto::Hash160& pubkey_hash) {
    return ScriptBuilder()
        .op(OP_DUP)
        .op(OP_HASH160)
        .push(pubkey_hash.span())
        .op(OP_EQUALVERIFY)
        .op(OP_CHECKSIG)
        .take();
}

Script make_p2pk(const crypto::PublicKey& pubkey) {
    return ScriptBuilder().push(pubkey.serialize()).op(OP_CHECKSIG).take();
}

Script make_multisig(int required, const std::vector<crypto::PublicKey>& pubkeys) {
    EBV_EXPECTS(required >= 1 && static_cast<std::size_t>(required) <= pubkeys.size());
    EBV_EXPECTS(pubkeys.size() <= 16);
    ScriptBuilder builder;
    builder.push_int(required);
    for (const auto& pk : pubkeys) builder.push(pk.serialize());
    builder.push_int(static_cast<std::int64_t>(pubkeys.size()));
    builder.op(OP_CHECKMULTISIG);
    return builder.take();
}

Script make_null_data(util::ByteSpan data) {
    return ScriptBuilder().op(OP_RETURN).push(data).take();
}

Script make_p2sh(const Script& redeem_script) {
    return ScriptBuilder()
        .op(OP_HASH160)
        .push(crypto::hash160(redeem_script).span())
        .op(OP_EQUAL)
        .take();
}

Script make_p2sh_unlock(const Script& inner_unlock, const Script& redeem_script) {
    Script out = inner_unlock;
    const Script push = ScriptBuilder().push(redeem_script).take();
    out.insert(out.end(), push.begin(), push.end());
    return out;
}

Script make_p2pkh_unlock(util::ByteSpan sig_with_hashtype, const crypto::PublicKey& pubkey) {
    return ScriptBuilder().push(sig_with_hashtype).push(pubkey.serialize()).take();
}

Script make_p2pk_unlock(util::ByteSpan sig_with_hashtype) {
    return ScriptBuilder().push(sig_with_hashtype).take();
}

Script make_multisig_unlock(const std::vector<util::Bytes>& sigs_with_hashtype) {
    ScriptBuilder builder;
    builder.op(OP_0);  // CHECKMULTISIG's historical extra-pop dummy
    for (const auto& sig : sigs_with_hashtype) builder.push(sig);
    return builder.take();
}

namespace {

/// Decode the full op sequence, or empty on malformed script.
std::vector<ScriptOp> decode_ops(util::ByteSpan script) {
    std::vector<ScriptOp> ops;
    ScriptParser parser(script);
    while (auto op = parser.next()) ops.push_back(std::move(*op));
    if (parser.malformed()) ops.clear();
    return ops;
}

bool is_small_int(Opcode op) { return op >= OP_1 && op <= OP_16; }
int small_int_value(Opcode op) { return op - OP_1 + 1; }

}  // namespace

ScriptType classify(util::ByteSpan locking_script) {
    const auto ops = decode_ops(locking_script);
    if (ops.empty()) return ScriptType::kNonStandard;

    // OP_RETURN <data...>
    if (ops[0].opcode == OP_RETURN) return ScriptType::kNullData;

    // <33-byte pubkey> OP_CHECKSIG
    if (ops.size() == 2 && ops[0].is_push() && ops[0].push_data.size() == 33 &&
        ops[1].opcode == OP_CHECKSIG) {
        return ScriptType::kP2Pk;
    }

    // OP_DUP OP_HASH160 <20> OP_EQUALVERIFY OP_CHECKSIG
    if (ops.size() == 5 && ops[0].opcode == OP_DUP && ops[1].opcode == OP_HASH160 &&
        ops[2].is_push() && ops[2].push_data.size() == 20 &&
        ops[3].opcode == OP_EQUALVERIFY && ops[4].opcode == OP_CHECKSIG) {
        return ScriptType::kP2Pkh;
    }

    // OP_HASH160 <20> OP_EQUAL
    if (ops.size() == 3 && ops[0].opcode == OP_HASH160 && ops[1].is_push() &&
        ops[1].push_data.size() == 20 && ops[2].opcode == OP_EQUAL) {
        return ScriptType::kP2Sh;
    }

    // OP_m <pk...> OP_n OP_CHECKMULTISIG
    if (ops.size() >= 4 && is_small_int(ops[0].opcode) &&
        is_small_int(ops[ops.size() - 2].opcode) &&
        ops.back().opcode == OP_CHECKMULTISIG) {
        const int m = small_int_value(ops[0].opcode);
        const int n = small_int_value(ops[ops.size() - 2].opcode);
        if (m >= 1 && m <= n && static_cast<std::size_t>(n) == ops.size() - 3) {
            for (std::size_t i = 1; i + 2 < ops.size(); ++i) {
                if (!ops[i].is_push() || ops[i].push_data.size() != 33)
                    return ScriptType::kNonStandard;
            }
            return ScriptType::kMultisig;
        }
    }

    return ScriptType::kNonStandard;
}

std::optional<crypto::Hash160> extract_p2pkh_destination(util::ByteSpan locking_script) {
    if (classify(locking_script) != ScriptType::kP2Pkh) return std::nullopt;
    const auto ops = decode_ops(locking_script);
    return crypto::Hash160::from_span(ops[2].push_data);
}

}  // namespace ebv::script
