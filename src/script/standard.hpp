// Standard script templates: construction, classification, and unlocking-
// script assembly for the output types the workload generator emits
// (P2PKH dominates real chains; P2PK and bare multisig cover the rest).
#pragma once

#include <optional>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "crypto/hash_types.hpp"
#include "script/script.hpp"

namespace ebv::script {

enum class ScriptType {
    kNonStandard,
    kP2Pk,        ///< <pubkey> OP_CHECKSIG
    kP2Pkh,       ///< OP_DUP OP_HASH160 <20> OP_EQUALVERIFY OP_CHECKSIG
    kP2Sh,        ///< OP_HASH160 <20> OP_EQUAL
    kMultisig,    ///< OP_m <pubkeys...> OP_n OP_CHECKMULTISIG
    kNullData,    ///< OP_RETURN <data> (provably unspendable)
};

/// Locking-script constructors.
Script make_p2pkh(const crypto::Hash160& pubkey_hash);
Script make_p2pk(const crypto::PublicKey& pubkey);
Script make_multisig(int required, const std::vector<crypto::PublicKey>& pubkeys);
Script make_null_data(util::ByteSpan data);
/// P2SH wrapper locking funds to hash160(redeem_script).
Script make_p2sh(const Script& redeem_script);

/// Unlocking-script constructors. `sig_with_hashtype` is DER || sighash byte.
Script make_p2pkh_unlock(util::ByteSpan sig_with_hashtype, const crypto::PublicKey& pubkey);
Script make_p2pk_unlock(util::ByteSpan sig_with_hashtype);
Script make_multisig_unlock(const std::vector<util::Bytes>& sigs_with_hashtype);
/// P2SH unlock: the redeem script's own unlocking pushes + the redeem
/// script itself as the final push.
Script make_p2sh_unlock(const Script& inner_unlock, const Script& redeem_script);

/// Pattern-match a locking script.
ScriptType classify(util::ByteSpan locking_script);

/// For P2PKH scripts, the 20-byte destination; nullopt otherwise.
std::optional<crypto::Hash160> extract_p2pkh_destination(util::ByteSpan locking_script);

}  // namespace ebv::script
