// The script virtual machine. Runs the unlocking script (Us) then the
// locking script (Ls) on the same stack — Script Validation (SV) in the
// paper's terminology. Signature checking is delegated to a caller-supplied
// SignatureChecker because the signature hash depends on the enclosing
// transaction format (Bitcoin-style in chain/, tidy EBV style in core/).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/batch_verify.hpp"
#include "script/script.hpp"
#include "util/result.hpp"
#include "util/span.hpp"

namespace ebv::script {

enum class ScriptError {
    kOk,
    kEvalFalse,         ///< script ran but left false on top
    kMalformedScript,   ///< truncated push / undecodable byte stream
    kBadOpcode,         ///< disabled or unknown opcode
    kStackUnderflow,
    kUnbalancedConditional,
    kVerifyFailed,
    kEqualVerifyFailed,
    kNumEqualVerifyFailed,
    kCheckSigVerifyFailed,
    kCheckMultiSigVerifyFailed,
    kOpReturn,
    kPushSizeExceeded,
    kOpCountExceeded,
    kStackSizeExceeded,
    kScriptSizeExceeded,
    kBadNumericOperand,  ///< ScriptNum overflow / non-minimal where required
    kInvalidStackOperation,
    kSigCountInvalid,
    kPubkeyCountInvalid,
    kCleanStackViolation,
};

[[nodiscard]] const char* to_string(ScriptError e);

/// Resource limits matching Bitcoin's consensus constants.
struct ScriptLimits {
    static constexpr std::size_t kMaxScriptSize = 10'000;
    static constexpr std::size_t kMaxPushSize = 520;
    static constexpr std::size_t kMaxOpsPerScript = 201;
    static constexpr std::size_t kMaxStackSize = 1'000;
    static constexpr int kMaxPubkeysPerMultisig = 20;
};

/// Callback for OP_CHECKSIG-family opcodes. `signature` is the DER encoding
/// followed by a 1-byte sighash type; `pubkey` is a compressed public key;
/// `script_code` is the currently executing locking script.
class SignatureChecker {
public:
    virtual ~SignatureChecker() = default;
    [[nodiscard]] virtual bool check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                                               util::ByteSpan script_code) const = 0;

    /// Deferred-check support: parse signature/pubkey and compute the
    /// sighash WITHOUT paying for the curve operations, so the triple can
    /// be recorded for a later crypto::verify_batch. Contract: a non-null
    /// result must satisfy check_signature(...) ==
    /// job.key.verify(job.digest, job.sig); nullopt means the triple cannot
    /// be formed (parse failure, unsupported sighash type, or deferral not
    /// implemented) and the caller must fall back to check_signature.
    [[nodiscard]] virtual std::optional<crypto::VerifyJob> prepare_signature(
        util::ByteSpan signature, util::ByteSpan pubkey, util::ByteSpan script_code) const {
        (void)signature;
        (void)pubkey;
        (void)script_code;
        return std::nullopt;
    }
};

/// Collect-mode decorator: OP_CHECKSIG / OP_CHECKMULTISIG record (pubkey,
/// sig, sighash) triples through the wrapped checker's prepare_signature
/// and optimistically report success; signatures whose triple cannot be
/// formed are checked inline, exactly as the wrapped checker would. The
/// caller drains collected() through crypto::verify_batch afterwards and,
/// on any optimistic-run failure or batch miss, must re-run the script
/// with the wrapped checker — that fallback is what keeps failure verdicts
/// identical to a fully inline run (see docs/CRYPTO.md).
class DeferringSignatureChecker final : public SignatureChecker {
public:
    explicit DeferringSignatureChecker(const SignatureChecker& inner) : inner_(inner) {}

    [[nodiscard]] bool check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                                       util::ByteSpan script_code) const override {
        auto job = inner_.prepare_signature(signature, pubkey, script_code);
        if (!job) return inner_.check_signature(signature, pubkey, script_code);
        collected_.push_back(std::move(*job));
        return true;
    }

    /// Triples recorded so far, in execution order.
    [[nodiscard]] std::vector<crypto::VerifyJob>& collected() const { return collected_; }

private:
    const SignatureChecker& inner_;
    mutable std::vector<crypto::VerifyJob> collected_;
};

/// A checker that rejects everything — for contexts with no transaction.
class NullSignatureChecker final : public SignatureChecker {
public:
    [[nodiscard]] bool check_signature(util::ByteSpan, util::ByteSpan,
                                       util::ByteSpan) const override {
        return false;
    }
};

using Stack = std::vector<util::Bytes>;

/// Execute a single script on the given stack.
[[nodiscard]] ScriptError eval_script(util::ByteSpan script, Stack& stack,
                                      const SignatureChecker& checker);

/// Full SV: run Us, then Ls on the resulting stack; succeed iff the final
/// top-of-stack is truthy (and, with require_clean_stack, nothing is left
/// behind). Us must be push-only, as in Bitcoin policy. Pay-to-script-hash
/// locking scripts (HASH160 <20> EQUAL) get the standard extra evaluation:
/// the unlocking script's final push is deserialized as the redeem script
/// and executed against the remaining stack.
[[nodiscard]] ScriptError verify_script(util::ByteSpan unlocking, util::ByteSpan locking,
                                        const SignatureChecker& checker,
                                        bool require_clean_stack = true);

/// Is this locking script the P2SH pattern?
[[nodiscard]] bool is_pay_to_script_hash(util::ByteSpan locking);

/// Bitcoin's truthiness rule: nonempty and not negative zero.
[[nodiscard]] bool cast_to_bool(util::ByteSpan value);

}  // namespace ebv::script
