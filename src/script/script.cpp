#include "script/script.hpp"

#include "util/assert.hpp"
#include "util/endian.hpp"
#include "util/hex.hpp"

namespace ebv::script {

const char* opcode_name(Opcode op) {
    switch (op) {
        case OP_0: return "OP_0";
        case OP_PUSHDATA1: return "OP_PUSHDATA1";
        case OP_PUSHDATA2: return "OP_PUSHDATA2";
        case OP_PUSHDATA4: return "OP_PUSHDATA4";
        case OP_1NEGATE: return "OP_1NEGATE";
        case OP_1: return "OP_1";
        case OP_2: return "OP_2";
        case OP_3: return "OP_3";
        case OP_4: return "OP_4";
        case OP_5: return "OP_5";
        case OP_6: return "OP_6";
        case OP_7: return "OP_7";
        case OP_8: return "OP_8";
        case OP_9: return "OP_9";
        case OP_10: return "OP_10";
        case OP_11: return "OP_11";
        case OP_12: return "OP_12";
        case OP_13: return "OP_13";
        case OP_14: return "OP_14";
        case OP_15: return "OP_15";
        case OP_16: return "OP_16";
        case OP_NOP: return "OP_NOP";
        case OP_IF: return "OP_IF";
        case OP_NOTIF: return "OP_NOTIF";
        case OP_ELSE: return "OP_ELSE";
        case OP_ENDIF: return "OP_ENDIF";
        case OP_VERIFY: return "OP_VERIFY";
        case OP_RETURN: return "OP_RETURN";
        case OP_TOALTSTACK: return "OP_TOALTSTACK";
        case OP_FROMALTSTACK: return "OP_FROMALTSTACK";
        case OP_2DROP: return "OP_2DROP";
        case OP_2DUP: return "OP_2DUP";
        case OP_3DUP: return "OP_3DUP";
        case OP_IFDUP: return "OP_IFDUP";
        case OP_DEPTH: return "OP_DEPTH";
        case OP_DROP: return "OP_DROP";
        case OP_DUP: return "OP_DUP";
        case OP_NIP: return "OP_NIP";
        case OP_OVER: return "OP_OVER";
        case OP_PICK: return "OP_PICK";
        case OP_ROLL: return "OP_ROLL";
        case OP_ROT: return "OP_ROT";
        case OP_SWAP: return "OP_SWAP";
        case OP_TUCK: return "OP_TUCK";
        case OP_SIZE: return "OP_SIZE";
        case OP_EQUAL: return "OP_EQUAL";
        case OP_EQUALVERIFY: return "OP_EQUALVERIFY";
        case OP_1ADD: return "OP_1ADD";
        case OP_1SUB: return "OP_1SUB";
        case OP_NEGATE: return "OP_NEGATE";
        case OP_ABS: return "OP_ABS";
        case OP_NOT: return "OP_NOT";
        case OP_0NOTEQUAL: return "OP_0NOTEQUAL";
        case OP_ADD: return "OP_ADD";
        case OP_SUB: return "OP_SUB";
        case OP_BOOLAND: return "OP_BOOLAND";
        case OP_BOOLOR: return "OP_BOOLOR";
        case OP_NUMEQUAL: return "OP_NUMEQUAL";
        case OP_NUMEQUALVERIFY: return "OP_NUMEQUALVERIFY";
        case OP_NUMNOTEQUAL: return "OP_NUMNOTEQUAL";
        case OP_LESSTHAN: return "OP_LESSTHAN";
        case OP_GREATERTHAN: return "OP_GREATERTHAN";
        case OP_LESSTHANOREQUAL: return "OP_LESSTHANOREQUAL";
        case OP_GREATERTHANOREQUAL: return "OP_GREATERTHANOREQUAL";
        case OP_MIN: return "OP_MIN";
        case OP_MAX: return "OP_MAX";
        case OP_WITHIN: return "OP_WITHIN";
        case OP_RIPEMD160: return "OP_RIPEMD160";
        case OP_SHA256: return "OP_SHA256";
        case OP_HASH160: return "OP_HASH160";
        case OP_HASH256: return "OP_HASH256";
        case OP_CHECKSIG: return "OP_CHECKSIG";
        case OP_CHECKSIGVERIFY: return "OP_CHECKSIGVERIFY";
        case OP_CHECKMULTISIG: return "OP_CHECKMULTISIG";
        case OP_CHECKMULTISIGVERIFY: return "OP_CHECKMULTISIGVERIFY";
        default: return "OP_UNKNOWN";
    }
}

ScriptBuilder& ScriptBuilder::op(Opcode opcode) {
    script_.push_back(static_cast<std::uint8_t>(opcode));
    return *this;
}

ScriptBuilder& ScriptBuilder::push(util::ByteSpan data) {
    if (data.size() < OP_PUSHDATA1) {
        script_.push_back(static_cast<std::uint8_t>(data.size()));
    } else if (data.size() <= 0xff) {
        script_.push_back(OP_PUSHDATA1);
        script_.push_back(static_cast<std::uint8_t>(data.size()));
    } else if (data.size() <= 0xffff) {
        script_.push_back(OP_PUSHDATA2);
        std::uint8_t len[2];
        util::store_le16(len, static_cast<std::uint16_t>(data.size()));
        script_.insert(script_.end(), len, len + 2);
    } else {
        script_.push_back(OP_PUSHDATA4);
        std::uint8_t len[4];
        util::store_le32(len, static_cast<std::uint32_t>(data.size()));
        script_.insert(script_.end(), len, len + 4);
    }
    script_.insert(script_.end(), data.begin(), data.end());
    return *this;
}

ScriptBuilder& ScriptBuilder::push_int(std::int64_t value) {
    if (value == 0) return op(OP_0);
    if (value == -1) return op(OP_1NEGATE);
    if (value >= 1 && value <= 16)
        return op(static_cast<Opcode>(OP_1 + static_cast<int>(value) - 1));

    // Minimal ScriptNum encoding: little-endian magnitude, sign in the top
    // bit of the last byte.
    util::Bytes num;
    const bool negative = value < 0;
    std::uint64_t abs = negative ? static_cast<std::uint64_t>(-value)
                                 : static_cast<std::uint64_t>(value);
    while (abs != 0) {
        num.push_back(static_cast<std::uint8_t>(abs & 0xff));
        abs >>= 8;
    }
    if (num.back() & 0x80) {
        num.push_back(negative ? 0x80 : 0x00);
    } else if (negative) {
        num.back() |= 0x80;
    }
    return push(num);
}

std::optional<ScriptOp> ScriptParser::next() {
    if (malformed_ || pos_ >= script_.size()) return std::nullopt;

    ScriptOp op;
    const std::uint8_t byte = script_[pos_++];
    op.opcode = static_cast<Opcode>(byte);

    std::size_t push_len = 0;
    if (byte >= 1 && byte < OP_PUSHDATA1) {
        push_len = byte;
    } else if (byte == OP_PUSHDATA1) {
        if (pos_ + 1 > script_.size()) {
            malformed_ = true;
            return std::nullopt;
        }
        push_len = script_[pos_];
        pos_ += 1;
    } else if (byte == OP_PUSHDATA2) {
        if (pos_ + 2 > script_.size()) {
            malformed_ = true;
            return std::nullopt;
        }
        push_len = util::load_le16(script_.data() + pos_);
        pos_ += 2;
    } else if (byte == OP_PUSHDATA4) {
        if (pos_ + 4 > script_.size()) {
            malformed_ = true;
            return std::nullopt;
        }
        push_len = util::load_le32(script_.data() + pos_);
        pos_ += 4;
    }

    if (push_len > 0) {
        if (pos_ + push_len > script_.size()) {
            malformed_ = true;
            return std::nullopt;
        }
        op.push_data.assign(script_.begin() + static_cast<std::ptrdiff_t>(pos_),
                            script_.begin() + static_cast<std::ptrdiff_t>(pos_ + push_len));
        pos_ += push_len;
    }
    return op;
}

std::string disassemble(util::ByteSpan script) {
    std::string out;
    ScriptParser parser(script);
    while (auto op = parser.next()) {
        if (!out.empty()) out.push_back(' ');
        if (op->is_push() && op->opcode != OP_0) {
            out += "<" + std::to_string(op->push_data.size()) + ":" +
                   util::hex_encode(op->push_data) + ">";
        } else {
            out += opcode_name(op->opcode);
        }
    }
    if (parser.malformed()) out += " [malformed]";
    return out;
}

}  // namespace ebv::script
