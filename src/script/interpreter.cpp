#include "script/interpreter.hpp"

#include <algorithm>

#include "crypto/hash_types.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"

namespace ebv::script {

namespace {

/// ScriptNum: little-endian sign-magnitude integers capped at 4 bytes on
/// input (results may be 5 bytes), matching Bitcoin semantics.
class ScriptNum {
public:
    static util::Result<ScriptNum, ScriptError> decode(util::ByteSpan bytes) {
        if (bytes.size() > 4) return util::Unexpected{ScriptError::kBadNumericOperand};
        std::int64_t value = 0;
        for (std::size_t i = 0; i < bytes.size(); ++i) {
            value |= static_cast<std::int64_t>(bytes[i] & (i + 1 == bytes.size() ? 0x7f : 0xff))
                     << (8 * i);
        }
        if (!bytes.empty() && (bytes.back() & 0x80)) value = -value;
        return ScriptNum(value);
    }

    explicit ScriptNum(std::int64_t value) : value_(value) {}

    [[nodiscard]] std::int64_t value() const { return value_; }

    [[nodiscard]] util::Bytes encode() const {
        util::Bytes out;
        if (value_ == 0) return out;
        const bool negative = value_ < 0;
        std::uint64_t abs = negative ? static_cast<std::uint64_t>(-value_)
                                     : static_cast<std::uint64_t>(value_);
        while (abs != 0) {
            out.push_back(static_cast<std::uint8_t>(abs & 0xff));
            abs >>= 8;
        }
        if (out.back() & 0x80) {
            out.push_back(negative ? 0x80 : 0x00);
        } else if (negative) {
            out.back() |= 0x80;
        }
        return out;
    }

private:
    std::int64_t value_;
};

util::Bytes bool_bytes(bool b) { return b ? util::Bytes{1} : util::Bytes{}; }

struct Vm {
    Stack& stack;
    Stack altstack;
    const SignatureChecker& checker;
    util::ByteSpan script_code;
    std::vector<bool> exec_flags;  // OP_IF nesting: true = executing branch
    std::size_t op_count = 0;

    [[nodiscard]] bool executing() const {
        return std::all_of(exec_flags.begin(), exec_flags.end(), [](bool f) { return f; });
    }

    [[nodiscard]] bool need(std::size_t n) const { return stack.size() >= n; }

    util::Bytes pop() {
        util::Bytes v = std::move(stack.back());
        stack.pop_back();
        return v;
    }

    [[nodiscard]] ScriptError pop_num(std::int64_t& out) {
        if (!need(1)) return ScriptError::kStackUnderflow;
        auto num = ScriptNum::decode(pop());
        if (!num) return num.error();
        out = num->value();
        return ScriptError::kOk;
    }

    void push_num(std::int64_t v) { stack.push_back(ScriptNum(v).encode()); }
};

ScriptError execute_op(Vm& vm, const ScriptOp& op);

}  // namespace

bool cast_to_bool(util::ByteSpan value) {
    for (std::size_t i = 0; i < value.size(); ++i) {
        if (value[i] != 0) {
            // Negative zero (sign bit only in last byte) is false.
            return !(i == value.size() - 1 && value[i] == 0x80);
        }
    }
    return false;
}

namespace {

ScriptError execute_checkmultisig(Vm& vm) {
    // Stack: <dummy> <sig1..sigm> <m> <pk1..pkn> <n>
    std::int64_t key_count = 0;
    if (auto err = vm.pop_num(key_count); err != ScriptError::kOk) return err;
    if (key_count < 0 || key_count > ScriptLimits::kMaxPubkeysPerMultisig)
        return ScriptError::kPubkeyCountInvalid;
    vm.op_count += static_cast<std::size_t>(key_count);
    if (vm.op_count > ScriptLimits::kMaxOpsPerScript) return ScriptError::kOpCountExceeded;

    if (!vm.need(static_cast<std::size_t>(key_count))) return ScriptError::kStackUnderflow;
    std::vector<util::Bytes> pubkeys(static_cast<std::size_t>(key_count));
    for (auto it = pubkeys.rbegin(); it != pubkeys.rend(); ++it) *it = vm.pop();

    std::int64_t sig_count = 0;
    if (auto err = vm.pop_num(sig_count); err != ScriptError::kOk) return err;
    if (sig_count < 0 || sig_count > key_count) return ScriptError::kSigCountInvalid;

    if (!vm.need(static_cast<std::size_t>(sig_count))) return ScriptError::kStackUnderflow;
    std::vector<util::Bytes> sigs(static_cast<std::size_t>(sig_count));
    for (auto it = sigs.rbegin(); it != sigs.rend(); ++it) *it = vm.pop();

    // The off-by-one dummy element, preserved for compatibility.
    if (!vm.need(1)) return ScriptError::kStackUnderflow;
    vm.pop();

    // Signatures must match pubkeys in order.
    bool success = true;
    std::size_t sig_idx = 0;
    std::size_t key_idx = 0;
    while (sig_idx < sigs.size()) {
        if (key_idx >= pubkeys.size() || pubkeys.size() - key_idx < sigs.size() - sig_idx) {
            success = false;
            break;
        }
        if (vm.checker.check_signature(sigs[sig_idx], pubkeys[key_idx], vm.script_code)) {
            ++sig_idx;
        }
        ++key_idx;
    }

    vm.stack.push_back(bool_bytes(success));
    return ScriptError::kOk;
}

ScriptError execute_op(Vm& vm, const ScriptOp& op) {
    Stack& stack = vm.stack;

    switch (op.opcode) {
        case OP_NOP:
            return ScriptError::kOk;

        case OP_VERIFY: {
            if (!vm.need(1)) return ScriptError::kStackUnderflow;
            if (!cast_to_bool(vm.pop())) return ScriptError::kVerifyFailed;
            return ScriptError::kOk;
        }
        case OP_RETURN:
            return ScriptError::kOpReturn;

        case OP_TOALTSTACK: {
            if (!vm.need(1)) return ScriptError::kStackUnderflow;
            vm.altstack.push_back(vm.pop());
            return ScriptError::kOk;
        }
        case OP_FROMALTSTACK: {
            if (vm.altstack.empty()) return ScriptError::kInvalidStackOperation;
            stack.push_back(std::move(vm.altstack.back()));
            vm.altstack.pop_back();
            return ScriptError::kOk;
        }
        case OP_2DROP: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            stack.pop_back();
            stack.pop_back();
            return ScriptError::kOk;
        }
        case OP_2DUP: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            stack.push_back(stack[stack.size() - 2]);
            stack.push_back(stack[stack.size() - 2]);
            return ScriptError::kOk;
        }
        case OP_3DUP: {
            if (!vm.need(3)) return ScriptError::kStackUnderflow;
            for (int i = 0; i < 3; ++i) stack.push_back(stack[stack.size() - 3]);
            return ScriptError::kOk;
        }
        case OP_IFDUP: {
            if (!vm.need(1)) return ScriptError::kStackUnderflow;
            if (cast_to_bool(stack.back())) stack.push_back(stack.back());
            return ScriptError::kOk;
        }
        case OP_DEPTH:
            vm.push_num(static_cast<std::int64_t>(stack.size()));
            return ScriptError::kOk;
        case OP_DROP: {
            if (!vm.need(1)) return ScriptError::kStackUnderflow;
            stack.pop_back();
            return ScriptError::kOk;
        }
        case OP_DUP: {
            if (!vm.need(1)) return ScriptError::kStackUnderflow;
            stack.push_back(stack.back());
            return ScriptError::kOk;
        }
        case OP_NIP: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            stack.erase(stack.end() - 2);
            return ScriptError::kOk;
        }
        case OP_OVER: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            stack.push_back(stack[stack.size() - 2]);
            return ScriptError::kOk;
        }
        case OP_PICK:
        case OP_ROLL: {
            std::int64_t n = 0;
            if (auto err = vm.pop_num(n); err != ScriptError::kOk) return err;
            if (n < 0 || static_cast<std::size_t>(n) >= stack.size())
                return ScriptError::kInvalidStackOperation;
            const std::size_t idx = stack.size() - 1 - static_cast<std::size_t>(n);
            util::Bytes value = stack[idx];
            if (op.opcode == OP_ROLL)
                stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(idx));
            stack.push_back(std::move(value));
            return ScriptError::kOk;
        }
        case OP_ROT: {
            if (!vm.need(3)) return ScriptError::kStackUnderflow;
            std::rotate(stack.end() - 3, stack.end() - 2, stack.end());
            return ScriptError::kOk;
        }
        case OP_SWAP: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
            return ScriptError::kOk;
        }
        case OP_TUCK: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            stack.insert(stack.end() - 2, stack.back());
            return ScriptError::kOk;
        }
        case OP_SIZE: {
            if (!vm.need(1)) return ScriptError::kStackUnderflow;
            vm.push_num(static_cast<std::int64_t>(stack.back().size()));
            return ScriptError::kOk;
        }

        case OP_EQUAL:
        case OP_EQUALVERIFY: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            const util::Bytes b = vm.pop();
            const util::Bytes a = vm.pop();
            const bool equal = a == b;
            if (op.opcode == OP_EQUALVERIFY) {
                if (!equal) return ScriptError::kEqualVerifyFailed;
            } else {
                stack.push_back(bool_bytes(equal));
            }
            return ScriptError::kOk;
        }

        case OP_1ADD:
        case OP_1SUB:
        case OP_NEGATE:
        case OP_ABS:
        case OP_NOT:
        case OP_0NOTEQUAL: {
            std::int64_t a = 0;
            if (auto err = vm.pop_num(a); err != ScriptError::kOk) return err;
            switch (op.opcode) {
                case OP_1ADD: a += 1; break;
                case OP_1SUB: a -= 1; break;
                case OP_NEGATE: a = -a; break;
                case OP_ABS: a = a < 0 ? -a : a; break;
                case OP_NOT: a = (a == 0); break;
                default: a = (a != 0); break;  // OP_0NOTEQUAL
            }
            vm.push_num(a);
            return ScriptError::kOk;
        }

        case OP_ADD:
        case OP_SUB:
        case OP_BOOLAND:
        case OP_BOOLOR:
        case OP_NUMEQUAL:
        case OP_NUMEQUALVERIFY:
        case OP_NUMNOTEQUAL:
        case OP_LESSTHAN:
        case OP_GREATERTHAN:
        case OP_LESSTHANOREQUAL:
        case OP_GREATERTHANOREQUAL:
        case OP_MIN:
        case OP_MAX: {
            std::int64_t b = 0, a = 0;
            if (auto err = vm.pop_num(b); err != ScriptError::kOk) return err;
            if (auto err = vm.pop_num(a); err != ScriptError::kOk) return err;
            std::int64_t r = 0;
            switch (op.opcode) {
                case OP_ADD: r = a + b; break;
                case OP_SUB: r = a - b; break;
                case OP_BOOLAND: r = (a != 0 && b != 0); break;
                case OP_BOOLOR: r = (a != 0 || b != 0); break;
                case OP_NUMEQUAL:
                case OP_NUMEQUALVERIFY: r = (a == b); break;
                case OP_NUMNOTEQUAL: r = (a != b); break;
                case OP_LESSTHAN: r = (a < b); break;
                case OP_GREATERTHAN: r = (a > b); break;
                case OP_LESSTHANOREQUAL: r = (a <= b); break;
                case OP_GREATERTHANOREQUAL: r = (a >= b); break;
                case OP_MIN: r = std::min(a, b); break;
                default: r = std::max(a, b); break;  // OP_MAX
            }
            if (op.opcode == OP_NUMEQUALVERIFY) {
                if (r == 0) return ScriptError::kNumEqualVerifyFailed;
            } else {
                vm.push_num(r);
            }
            return ScriptError::kOk;
        }

        case OP_WITHIN: {
            std::int64_t max = 0, min = 0, x = 0;
            if (auto err = vm.pop_num(max); err != ScriptError::kOk) return err;
            if (auto err = vm.pop_num(min); err != ScriptError::kOk) return err;
            if (auto err = vm.pop_num(x); err != ScriptError::kOk) return err;
            stack.push_back(bool_bytes(min <= x && x < max));
            return ScriptError::kOk;
        }

        case OP_RIPEMD160:
        case OP_SHA256:
        case OP_HASH160:
        case OP_HASH256: {
            if (!vm.need(1)) return ScriptError::kStackUnderflow;
            const util::Bytes data = vm.pop();
            switch (op.opcode) {
                case OP_RIPEMD160: {
                    const auto d = crypto::Ripemd160::hash(data);
                    stack.emplace_back(d.begin(), d.end());
                    break;
                }
                case OP_SHA256: {
                    const auto d = crypto::Sha256::hash(data);
                    stack.emplace_back(d.begin(), d.end());
                    break;
                }
                case OP_HASH160: {
                    const auto d = crypto::hash160(data);
                    stack.emplace_back(d.span().begin(), d.span().end());
                    break;
                }
                default: {  // OP_HASH256
                    const auto d = crypto::hash256(data);
                    stack.emplace_back(d.span().begin(), d.span().end());
                    break;
                }
            }
            return ScriptError::kOk;
        }

        case OP_CHECKSIG:
        case OP_CHECKSIGVERIFY: {
            if (!vm.need(2)) return ScriptError::kStackUnderflow;
            const util::Bytes pubkey = vm.pop();
            const util::Bytes sig = vm.pop();
            const bool ok = vm.checker.check_signature(sig, pubkey, vm.script_code);
            if (op.opcode == OP_CHECKSIGVERIFY) {
                if (!ok) return ScriptError::kCheckSigVerifyFailed;
            } else {
                stack.push_back(bool_bytes(ok));
            }
            return ScriptError::kOk;
        }

        case OP_CHECKMULTISIG:
        case OP_CHECKMULTISIGVERIFY: {
            if (auto err = execute_checkmultisig(vm); err != ScriptError::kOk) return err;
            if (op.opcode == OP_CHECKMULTISIGVERIFY) {
                if (!cast_to_bool(vm.pop())) return ScriptError::kCheckMultiSigVerifyFailed;
            }
            return ScriptError::kOk;
        }

        default:
            return ScriptError::kBadOpcode;
    }
}

}  // namespace

ScriptError eval_script(util::ByteSpan script, Stack& stack, const SignatureChecker& checker) {
    if (script.size() > ScriptLimits::kMaxScriptSize) return ScriptError::kScriptSizeExceeded;

    Vm vm{stack, {}, checker, script, {}, 0};
    ScriptParser parser(script);

    while (auto op = parser.next()) {
        if (op->is_push()) {
            if (op->push_data.size() > ScriptLimits::kMaxPushSize)
                return ScriptError::kPushSizeExceeded;
            if (vm.executing()) stack.push_back(std::move(op->push_data));
        } else if (op->opcode == OP_1NEGATE || (op->opcode >= OP_1 && op->opcode <= OP_16)) {
            if (vm.executing()) {
                vm.push_num(op->opcode == OP_1NEGATE ? -1 : op->opcode - OP_1 + 1);
            }
        } else {
            if (++vm.op_count > ScriptLimits::kMaxOpsPerScript)
                return ScriptError::kOpCountExceeded;

            // Conditionals are tracked even in non-executing branches.
            switch (op->opcode) {
                case OP_IF:
                case OP_NOTIF: {
                    bool branch = false;
                    if (vm.executing()) {
                        if (!vm.need(1)) return ScriptError::kUnbalancedConditional;
                        branch = cast_to_bool(vm.pop());
                        if (op->opcode == OP_NOTIF) branch = !branch;
                    }
                    vm.exec_flags.push_back(branch);
                    continue;
                }
                case OP_ELSE: {
                    if (vm.exec_flags.empty()) return ScriptError::kUnbalancedConditional;
                    vm.exec_flags.back() = !vm.exec_flags.back();
                    continue;
                }
                case OP_ENDIF: {
                    if (vm.exec_flags.empty()) return ScriptError::kUnbalancedConditional;
                    vm.exec_flags.pop_back();
                    continue;
                }
                default:
                    break;
            }

            if (!vm.executing()) continue;
            if (auto err = execute_op(vm, *op); err != ScriptError::kOk) return err;
        }

        if (stack.size() + vm.altstack.size() > ScriptLimits::kMaxStackSize)
            return ScriptError::kStackSizeExceeded;
    }

    if (parser.malformed()) return ScriptError::kMalformedScript;
    if (!vm.exec_flags.empty()) return ScriptError::kUnbalancedConditional;
    return ScriptError::kOk;
}

bool is_pay_to_script_hash(util::ByteSpan locking) {
    return locking.size() == 23 && locking[0] == OP_HASH160 && locking[1] == 20 &&
           locking[22] == OP_EQUAL;
}

ScriptError verify_script(util::ByteSpan unlocking, util::ByteSpan locking,
                          const SignatureChecker& checker, bool require_clean_stack) {
    // The unlocking script must be push-only (Bitcoin policy; prevents
    // script-injection into the locking script's evaluation).
    {
        ScriptParser parser(unlocking);
        while (auto op = parser.next()) {
            const bool small_int = op->opcode == OP_1NEGATE ||
                                   (op->opcode >= OP_1 && op->opcode <= OP_16);
            if (!op->is_push() && !small_int) return ScriptError::kBadOpcode;
        }
        if (parser.malformed()) return ScriptError::kMalformedScript;
    }

    Stack stack;
    if (auto err = eval_script(unlocking, stack, checker); err != ScriptError::kOk) return err;
    const Stack stack_after_unlock = stack;  // preserved for the P2SH path
    if (auto err = eval_script(locking, stack, checker); err != ScriptError::kOk) return err;

    if (stack.empty() || !cast_to_bool(stack.back())) return ScriptError::kEvalFalse;

    if (is_pay_to_script_hash(locking)) {
        // Standard P2SH: the last datum the unlocking script pushed is the
        // redeem script; execute it against the rest of that stack.
        if (stack_after_unlock.empty()) return ScriptError::kInvalidStackOperation;
        Stack redeem_stack(stack_after_unlock.begin(), stack_after_unlock.end() - 1);
        const util::Bytes& redeem_script = stack_after_unlock.back();
        if (auto err = eval_script(redeem_script, redeem_stack, checker);
            err != ScriptError::kOk) {
            return err;
        }
        if (redeem_stack.empty() || !cast_to_bool(redeem_stack.back()))
            return ScriptError::kEvalFalse;
        if (require_clean_stack && redeem_stack.size() != 1)
            return ScriptError::kCleanStackViolation;
        return ScriptError::kOk;
    }

    if (require_clean_stack && stack.size() != 1) return ScriptError::kCleanStackViolation;
    return ScriptError::kOk;
}

const char* to_string(ScriptError e) {
    switch (e) {
        case ScriptError::kOk: return "ok";
        case ScriptError::kEvalFalse: return "script evaluated to false";
        case ScriptError::kMalformedScript: return "malformed script";
        case ScriptError::kBadOpcode: return "bad or disabled opcode";
        case ScriptError::kStackUnderflow: return "stack underflow";
        case ScriptError::kUnbalancedConditional: return "unbalanced conditional";
        case ScriptError::kVerifyFailed: return "OP_VERIFY failed";
        case ScriptError::kEqualVerifyFailed: return "OP_EQUALVERIFY failed";
        case ScriptError::kNumEqualVerifyFailed: return "OP_NUMEQUALVERIFY failed";
        case ScriptError::kCheckSigVerifyFailed: return "OP_CHECKSIGVERIFY failed";
        case ScriptError::kCheckMultiSigVerifyFailed: return "OP_CHECKMULTISIGVERIFY failed";
        case ScriptError::kOpReturn: return "OP_RETURN encountered";
        case ScriptError::kPushSizeExceeded: return "push size exceeded";
        case ScriptError::kOpCountExceeded: return "op count exceeded";
        case ScriptError::kStackSizeExceeded: return "stack size exceeded";
        case ScriptError::kScriptSizeExceeded: return "script size exceeded";
        case ScriptError::kBadNumericOperand: return "bad numeric operand";
        case ScriptError::kInvalidStackOperation: return "invalid stack operation";
        case ScriptError::kSigCountInvalid: return "invalid signature count";
        case ScriptError::kPubkeyCountInvalid: return "invalid pubkey count";
        case ScriptError::kCleanStackViolation: return "stack not clean";
    }
    return "unknown script error";
}

}  // namespace ebv::script
