// Append-only flat-file record store with an in-memory offset index — the
// blk*.dat equivalent, generic over the record type (Bitcoin blocks and EBV
// blocks use different serializations).
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/endian.hpp"
#include "util/serialize.hpp"

namespace ebv::storage {

template <typename Record>
class FlatStore {
public:
    /// Opens (creating if needed) the store file; replays the index.
    explicit FlatStore(const std::string& path) : path_(path) {
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
        EBV_ENSURES(fd_ >= 0);

        struct stat st{};
        EBV_ASSERT(::fstat(fd_, &st) == 0);
        const auto file_size = static_cast<std::uint64_t>(st.st_size);

        std::uint64_t offset = 0;
        std::uint8_t frame[8];
        while (offset + 8 <= file_size) {
            EBV_ASSERT(::pread(fd_, frame, 8, static_cast<off_t>(offset)) == 8);
            const std::uint32_t magic = util::load_le32(frame);
            const std::uint32_t length = util::load_le32(frame + 4);
            if (magic != kRecordMagic || offset + 8 + length > file_size) break;
            offsets_.push_back(offset);
            offset += 8 + length;
        }
        end_offset_ = offset;
    }

    ~FlatStore() {
        if (fd_ >= 0) ::close(fd_);
    }

    FlatStore(const FlatStore&) = delete;
    FlatStore& operator=(const FlatStore&) = delete;

    /// Append a record; returns its sequential index.
    std::uint32_t append(const Record& record) {
        util::Writer w;
        record.serialize(w);
        const util::Bytes& body = w.data();

        std::uint8_t frame[8];
        util::store_le32(frame, kRecordMagic);
        util::store_le32(frame + 4, static_cast<std::uint32_t>(body.size()));

        EBV_ASSERT(::pwrite(fd_, frame, 8, static_cast<off_t>(end_offset_)) == 8);
        EBV_ASSERT(::pwrite(fd_, body.data(), body.size(),
                            static_cast<off_t>(end_offset_ + 8)) ==
                   static_cast<ssize_t>(body.size()));

        offsets_.push_back(end_offset_);
        end_offset_ += 8 + body.size();
        return static_cast<std::uint32_t>(offsets_.size() - 1);
    }

    /// Load the record at `index`; nullopt past the end or on corruption.
    [[nodiscard]] std::optional<Record> load(std::uint32_t index) const {
        if (index >= offsets_.size()) return std::nullopt;
        const std::uint64_t offset = offsets_[index];

        std::uint8_t frame[8];
        EBV_ASSERT(::pread(fd_, frame, 8, static_cast<off_t>(offset)) == 8);
        EBV_ASSERT(util::load_le32(frame) == kRecordMagic);
        const std::uint32_t length = util::load_le32(frame + 4);

        util::Bytes body(length);
        EBV_ASSERT(::pread(fd_, body.data(), length, static_cast<off_t>(offset + 8)) ==
                   static_cast<ssize_t>(length));

        util::Reader r(body);
        auto record = Record::deserialize(r);
        if (!record) return std::nullopt;
        return std::move(*record);
    }

    [[nodiscard]] std::uint32_t count() const {
        return static_cast<std::uint32_t>(offsets_.size());
    }

    /// Drop every record at index >= new_count (reorg support); subsequent
    /// appends overwrite the truncated region.
    void truncate(std::uint32_t new_count) {
        if (new_count >= offsets_.size()) return;
        end_offset_ = offsets_[new_count];
        offsets_.resize(new_count);
        EBV_ASSERT(::ftruncate(fd_, static_cast<off_t>(end_offset_)) == 0);
    }

    void sync() { ::fsync(fd_); }

private:
    static constexpr std::uint32_t kRecordMagic = 0xEB5B10C4;

    std::string path_;
    int fd_ = -1;
    std::vector<std::uint64_t> offsets_;
    std::uint64_t end_offset_ = 0;
};

}  // namespace ebv::storage
