// Fixed-size-page file I/O (POSIX pread/pwrite). The unit of transfer — and
// therefore the unit the latency model charges — is one 4 KiB page, like a
// database block device.
#pragma once

#include <cstdint>
#include <string>

#include "util/span.hpp"

namespace ebv::storage {

class PagedFile {
public:
    static constexpr std::size_t kPageSize = 4096;

    /// Opens (creating if needed) the file at path.
    explicit PagedFile(const std::string& path);
    ~PagedFile();

    PagedFile(const PagedFile&) = delete;
    PagedFile& operator=(const PagedFile&) = delete;

    /// Read page `index` into out (exactly kPageSize bytes). Reading a page
    /// beyond EOF yields zeros (sparse semantics).
    void read_page(std::uint64_t index, util::MutableByteSpan out);
    /// Write page `index` from data (exactly kPageSize bytes), extending the
    /// file as needed.
    void write_page(std::uint64_t index, util::ByteSpan data);

    /// Pages currently backed by the file (ceil(file size / page size)).
    [[nodiscard]] std::uint64_t page_count() const;

    void sync();

    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
    int fd_ = -1;
};

}  // namespace ebv::storage
