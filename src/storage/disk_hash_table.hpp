// On-disk hash table with *linear hashing* (Litwin '80): buckets split one
// at a time as the table grows, so a young table occupies few pages (and
// fits any cache) while an old one sprawls — exactly the growth behaviour
// that turns the baseline's status database into the paper's DBO
// bottleneck. All page access goes through a budgeted PageCache; misses
// charge modelled device time.
//
// File layout (4 KiB pages):
//   page 0:      header (magic, linear-hash state, stats, free list,
//                directory location)
//   other pages: bucket pages, overflow pages, and directory snapshot
//                pages, allocated dynamically; an in-memory directory maps
//                bucket index → page and is persisted on flush.
//
// Page layout: [u64 next_page][u16 used][records...]; a record is
// [u16 klen][u16 vlen][key][value]. next_page == 0 ends a chain.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/kvstore.hpp"
#include "storage/page_cache.hpp"

namespace ebv::storage {

class DiskHashTable final : public KvStore {
public:
    struct Options {
        /// Buckets at creation; the table grows from here by splitting.
        std::uint64_t initial_buckets = 4;
        /// Average entries per bucket that triggers the next split.
        std::uint64_t target_entries_per_bucket = 16;
        std::size_t cache_budget_bytes = 16 << 20;
        /// Kernel page cache modelled behind the application cache, as a
        /// multiple of cache_budget_bytes (the paper's node has 8 GB RAM
        /// behind its ~500 MB application limit). 0 disables it.
        std::size_t os_cache_multiplier = 2;
        DeviceProfile device = DeviceProfile::none();
        std::uint64_t latency_seed = 0x5eed;
    };

    /// Opens (or creates) the table at path. An existing table's hash
    /// state overrides the initial_buckets option.
    DiskHashTable(const std::string& path, const Options& options);
    ~DiskHashTable() override;

    std::optional<util::Bytes> get(util::ByteSpan key) override;
    void put(util::ByteSpan key, util::ByteSpan value) override;
    bool erase(util::ByteSpan key) override;
    std::uint64_t size() const override { return entry_count_; }
    std::uint64_t payload_bytes() const override { return payload_bytes_; }
    void flush() override;

    [[nodiscard]] const CacheStats& cache_stats() const { return cache_->stats(); }
    /// Modelled device time accumulated so far.
    [[nodiscard]] util::Nanoseconds simulated_ns() const override {
        return ledger_.total_ns();
    }
    void reset_ledger() { ledger_.reset(); }
    void set_cache_budget(std::size_t bytes) { cache_->set_budget(bytes); }
    [[nodiscard]] std::uint64_t file_pages() const { return file_->page_count(); }
    [[nodiscard]] std::uint64_t bucket_count() const { return directory_.size(); }

    /// Largest key+value a record can hold in one page.
    static constexpr std::size_t kMaxRecordPayload =
        PagedFile::kPageSize - 10 /*page header*/ - 4 /*record header*/;

private:
    static constexpr std::uint64_t kMagic = 0x4542563144420002ULL;  // "EBV1DB" v2
    static constexpr std::size_t kPageHeaderSize = 10;

    void load_or_init(const Options& options);
    void persist_header();
    void persist_directory();
    void load_directory(std::uint64_t first_page, std::uint64_t bucket_count);

    /// Linear-hash bucket index for a key under the current state.
    [[nodiscard]] std::uint64_t bucket_of(util::ByteSpan key) const;
    /// Split the bucket at the split pointer (amortized growth step).
    void split_one_bucket();
    void maybe_grow();

    std::uint64_t allocate_page();
    void free_page(std::uint64_t index);

    bool erase_internal(util::ByteSpan key);
    /// Append a record into a chain starting at the directory slot.
    void append_record(std::uint64_t bucket, util::ByteSpan key, util::ByteSpan value);

    static std::size_t find_record(const PageCache::Page& page, util::ByteSpan key);
    static std::size_t page_used(const PageCache::Page& page);
    static std::uint64_t page_next(const PageCache::Page& page);

    std::unique_ptr<PagedFile> file_;
    util::SimTimeLedger ledger_;
    std::unique_ptr<PageCache> cache_;

    // Linear-hash state: bucket count is base_buckets_ * 2^level_ + split_.
    std::uint64_t base_buckets_ = 4;
    std::uint64_t level_ = 0;
    std::uint64_t split_ = 0;
    std::uint64_t target_per_bucket_ = 16;

    std::vector<std::uint64_t> directory_;  // bucket index -> head page
    std::uint64_t entry_count_ = 0;
    std::uint64_t payload_bytes_ = 0;
    std::uint64_t free_list_head_ = 0;
    std::uint64_t next_fresh_page_ = 1;
    // Directory snapshot pages currently on disk (freed on rewrite).
    std::vector<std::uint64_t> directory_pages_;
};

}  // namespace ebv::storage
