// Device latency model. The paper's node keeps most of the UTXO set on a
// 2 TB HDD; page-cache misses there cost a seek plus transfer. We run on
// fast storage, so the cost a real device would add is *charged to a
// simulated-time ledger* instead of slept — runs stay fast and
// deterministic while the reported times keep the device's shape.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace ebv::storage {

struct DeviceProfile {
    // Latency per random page read/write: base plus uniform jitter.
    util::Nanoseconds read_base_ns = 0;
    util::Nanoseconds read_jitter_ns = 0;
    util::Nanoseconds write_base_ns = 0;
    util::Nanoseconds write_jitter_ns = 0;
    // Cost of serving a page from the kernel page cache (syscall + copy).
    util::Nanoseconds os_hit_ns = 0;

    /// 7200rpm HDD: several ms of seek+rotation for a random 4K read;
    /// writes are cheaper on average (device write-back caching).
    static DeviceProfile hdd() {
        return {4'000'000, 4'000'000, 2'000'000, 2'000'000, 25'000};
    }

    /// SATA SSD: ~80µs random 4K read.
    static DeviceProfile ssd() { return {70'000, 20'000, 90'000, 30'000, 25'000}; }

    /// No modelled latency (page cache misses cost only real CPU/IO time).
    static DeviceProfile none() { return {}; }
};

class LatencyModel {
public:
    LatencyModel(DeviceProfile profile, std::uint64_t seed)
        : profile_(profile), rng_(seed) {}

    /// Charge one random page read / write to the ledger.
    void charge_read(util::SimTimeLedger& ledger) {
        ledger.charge(profile_.read_base_ns + jitter(profile_.read_jitter_ns));
    }
    void charge_write(util::SimTimeLedger& ledger) {
        ledger.charge(profile_.write_base_ns + jitter(profile_.write_jitter_ns));
    }
    /// Charge a kernel-page-cache hit (no device access).
    void charge_os_hit(util::SimTimeLedger& ledger) { ledger.charge(profile_.os_hit_ns); }

    [[nodiscard]] const DeviceProfile& profile() const { return profile_; }

private:
    util::Nanoseconds jitter(util::Nanoseconds range) {
        if (range <= 0) return 0;
        return static_cast<util::Nanoseconds>(
            rng_.below(static_cast<std::uint64_t>(range)));
    }

    DeviceProfile profile_;
    util::Rng rng_;
};

}  // namespace ebv::storage
