#include "storage/page_cache.hpp"

#include "obs/metrics.hpp"

namespace ebv::storage {

namespace {

/// Global registry mirrors of CacheStats, aggregated over all instances.
struct PageCacheMetrics {
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& os_hits;
    obs::Counter& device_reads;
    obs::Counter& write_backs;

    static PageCacheMetrics& get() {
        static PageCacheMetrics m{
            obs::Registry::global().counter("storage.page_cache.hits"),
            obs::Registry::global().counter("storage.page_cache.misses"),
            obs::Registry::global().counter("storage.page_cache.os_hits"),
            obs::Registry::global().counter("storage.page_cache.device_reads"),
            obs::Registry::global().counter("storage.page_cache.write_backs"),
        };
        return m;
    }
};

}  // namespace

PageCache::PageCache(PagedFile& file, std::size_t budget_bytes, LatencyModel latency,
                     util::SimTimeLedger& ledger, std::size_t os_budget_bytes)
    : file_(file),
      cache_(budget_bytes),
      os_cache_(os_budget_bytes),
      latency_(std::move(latency)),
      ledger_(ledger) {
    cache_.set_eviction_handler([this](const std::uint64_t& index,
                                       std::unique_ptr<Page>& page) {
        if (page->dirty) {
            file_.write_page(index, page->data);
            // The written page lands in the kernel page cache; the device
            // write happens asynchronously off the critical path.
            if (os_cache_.budget() > 0) {
                os_cache_.put(index, 0, PagedFile::kPageSize);
                latency_.charge_os_hit(ledger_);
            } else {
                latency_.charge_write(ledger_);
            }
            ++stats_.write_backs;
            PageCacheMetrics::get().write_backs.inc();
        }
    });
}

PageCache::~PageCache() { flush(); }

PageCache::Page& PageCache::page(std::uint64_t index) {
    PageCacheMetrics& metrics = PageCacheMetrics::get();
    if (auto* cached = cache_.get(index)) {
        ++stats_.hits;
        metrics.hits.inc();
        return **cached;
    }

    ++stats_.misses;
    metrics.misses.inc();
    auto loaded = std::make_unique<Page>();
    file_.read_page(index, loaded->data);

    if (os_cache_.budget() > 0 && os_cache_.get(index) != nullptr) {
        ++stats_.os_hits;
        metrics.os_hits.inc();
        latency_.charge_os_hit(ledger_);
    } else {
        ++stats_.device_reads;
        metrics.device_reads.inc();
        latency_.charge_read(ledger_);
        if (os_cache_.budget() > 0) os_cache_.put(index, 0, PagedFile::kPageSize);
    }

    Page& ref = *loaded;
    cache_.put(index, std::move(loaded), kPageCost);
    return ref;
}

void PageCache::mark_dirty(std::uint64_t index) {
    if (auto* cached = cache_.get(index)) (*cached)->dirty = true;
}

void PageCache::flush() {
    // clear() invokes the eviction handler (which writes dirty pages), but
    // we want pages to stay resident, so walk via take/put instead — or
    // simply write dirty pages in place. LruMap has no iteration, so evict
    // everything; subsequent accesses re-read. Correctness over elegance:
    // flush happens at shutdown and checkpoint boundaries only.
    cache_.clear();
    file_.sync();
}

}  // namespace ebv::storage
