#include "storage/status_db.hpp"

#include "obs/metrics.hpp"

namespace ebv::storage {

namespace {

/// Registry mirrors of DboStats: per-op counts plus per-op latency
/// histograms (wall + modelled device time), aggregated over instances.
struct StatusDbMetrics {
    obs::Counter& fetches;
    obs::Counter& inserts;
    obs::Counter& deletes;
    obs::Histogram& fetch_ns;
    obs::Histogram& insert_ns;
    obs::Histogram& delete_ns;

    static StatusDbMetrics& get() {
        static StatusDbMetrics m{
            obs::Registry::global().counter("storage.status_db.fetches"),
            obs::Registry::global().counter("storage.status_db.inserts"),
            obs::Registry::global().counter("storage.status_db.deletes"),
            obs::Registry::global().histogram("storage.status_db.fetch_ns"),
            obs::Registry::global().histogram("storage.status_db.insert_ns"),
            obs::Registry::global().histogram("storage.status_db.delete_ns"),
        };
        return m;
    }
};

}  // namespace

std::optional<util::Bytes> StatusDb::fetch(util::ByteSpan key) {
    ++dbo_.fetch_count;
    StatusDbMetrics::get().fetches.inc();
    const util::TimeCost before = dbo_.fetch_time;
    auto result = timed(dbo_.fetch_time, [&] { return store_.get(key); });
    StatusDbMetrics::get().fetch_ns.observe(
        (dbo_.fetch_time.total_ns() - before.total_ns()));
    return result;
}

void StatusDb::insert(util::ByteSpan key, util::ByteSpan value) {
    ++dbo_.insert_count;
    StatusDbMetrics::get().inserts.inc();
    const util::TimeCost before = dbo_.insert_time;
    timed(dbo_.insert_time, [&] {
        store_.put(key, value);
        return true;
    });
    StatusDbMetrics::get().insert_ns.observe(
        (dbo_.insert_time.total_ns() - before.total_ns()));
}

bool StatusDb::erase(util::ByteSpan key) {
    ++dbo_.delete_count;
    StatusDbMetrics::get().deletes.inc();
    const util::TimeCost before = dbo_.delete_time;
    const bool erased = timed(dbo_.delete_time, [&] { return store_.erase(key); });
    StatusDbMetrics::get().delete_ns.observe(
        (dbo_.delete_time.total_ns() - before.total_ns()));
    return erased;
}

}  // namespace ebv::storage
