#include "storage/status_db.hpp"

namespace ebv::storage {

std::optional<util::Bytes> StatusDb::fetch(util::ByteSpan key) {
    ++dbo_.fetch_count;
    return timed(dbo_.fetch_time, [&] { return store_.get(key); });
}

void StatusDb::insert(util::ByteSpan key, util::ByteSpan value) {
    ++dbo_.insert_count;
    timed(dbo_.insert_time, [&] {
        store_.put(key, value);
        return true;
    });
}

bool StatusDb::erase(util::ByteSpan key) {
    ++dbo_.delete_count;
    return timed(dbo_.delete_time, [&] { return store_.erase(key); });
}

}  // namespace ebv::storage
