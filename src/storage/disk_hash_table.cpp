#include "storage/disk_hash_table.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/endian.hpp"

namespace ebv::storage {

namespace {

/// Registry view of the table's growth state (aggregated over instances for
/// the counter; the gauges reflect the most recently updated instance).
struct DhtMetrics {
    obs::Counter& splits;
    obs::Gauge& entries;
    obs::Gauge& buckets;
    obs::Gauge& pages;

    static DhtMetrics& get() {
        static DhtMetrics m{
            obs::Registry::global().counter("storage.dht.splits"),
            obs::Registry::global().gauge("storage.dht.entries"),
            obs::Registry::global().gauge("storage.dht.buckets"),
            obs::Registry::global().gauge("storage.dht.pages"),
        };
        return m;
    }
};

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::uint64_t fnv1a(util::ByteSpan data) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : data) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace

DiskHashTable::DiskHashTable(const std::string& path, const Options& options) {
    file_ = std::make_unique<PagedFile>(path);
    cache_ = std::make_unique<PageCache>(
        *file_, options.cache_budget_bytes,
        LatencyModel(options.device, options.latency_seed), ledger_,
        options.cache_budget_bytes * options.os_cache_multiplier);
    load_or_init(options);
}

DiskHashTable::~DiskHashTable() { flush(); }

// ------------------------------------------------------------ metadata ----

void DiskHashTable::load_or_init(const Options& options) {
    auto& page = cache_->page(0);
    const std::uint64_t magic = util::load_le64(page.data.data());

    if (magic == kMagic) {
        const std::uint8_t* p = page.data.data();
        base_buckets_ = util::load_le64(p + 8);
        level_ = util::load_le64(p + 16);
        split_ = util::load_le64(p + 24);
        target_per_bucket_ = util::load_le64(p + 32);
        entry_count_ = util::load_le64(p + 40);
        payload_bytes_ = util::load_le64(p + 48);
        free_list_head_ = util::load_le64(p + 56);
        next_fresh_page_ = util::load_le64(p + 64);
        const std::uint64_t dir_first = util::load_le64(p + 72);
        const std::uint64_t bucket_count = util::load_le64(p + 80);
        load_directory(dir_first, bucket_count);
        return;
    }

    EBV_EXPECTS(options.initial_buckets > 0);
    EBV_EXPECTS(options.target_entries_per_bucket > 0);
    base_buckets_ = options.initial_buckets;
    level_ = 0;
    split_ = 0;
    target_per_bucket_ = options.target_entries_per_bucket;
    entry_count_ = 0;
    payload_bytes_ = 0;
    free_list_head_ = 0;
    next_fresh_page_ = 1;

    directory_.resize(base_buckets_);
    for (auto& head : directory_) head = allocate_page();
    persist_header();
}

void DiskHashTable::persist_header() {
    auto& page = cache_->page(0);
    std::uint8_t* p = page.data.data();
    std::memset(p, 0, PagedFile::kPageSize);
    util::store_le64(p, kMagic);
    util::store_le64(p + 8, base_buckets_);
    util::store_le64(p + 16, level_);
    util::store_le64(p + 24, split_);
    util::store_le64(p + 32, target_per_bucket_);
    util::store_le64(p + 40, entry_count_);
    util::store_le64(p + 48, payload_bytes_);
    util::store_le64(p + 56, free_list_head_);
    util::store_le64(p + 64, next_fresh_page_);
    util::store_le64(p + 72, directory_pages_.empty() ? 0 : directory_pages_.front());
    util::store_le64(p + 80, directory_.size());
    page.dirty = true;
    cache_->mark_dirty(0);
}

void DiskHashTable::persist_directory() {
    // Rewrite the snapshot from scratch: free the old pages, then write the
    // directory as a chain of pages of packed u64 entries.
    for (std::uint64_t index : directory_pages_) free_page(index);
    directory_pages_.clear();

    constexpr std::size_t kPerPage = (PagedFile::kPageSize - kPageHeaderSize) / 8;
    std::size_t written = 0;
    std::uint64_t prev = 0;
    while (written < directory_.size()) {
        const std::uint64_t index = allocate_page();
        if (prev != 0) {
            auto& prev_page = cache_->page(prev);
            util::store_le64(prev_page.data.data(), index);
            prev_page.dirty = true;
            cache_->mark_dirty(prev);
        }
        directory_pages_.push_back(index);

        auto& page = cache_->page(index);
        const std::size_t count = std::min(kPerPage, directory_.size() - written);
        util::store_le16(page.data.data() + 8, static_cast<std::uint16_t>(count * 8));
        for (std::size_t i = 0; i < count; ++i) {
            util::store_le64(page.data.data() + kPageHeaderSize + 8 * i,
                             directory_[written + i]);
        }
        page.dirty = true;
        cache_->mark_dirty(index);
        written += count;
        prev = index;
    }
}

void DiskHashTable::load_directory(std::uint64_t first_page, std::uint64_t bucket_count) {
    directory_.clear();
    directory_.reserve(bucket_count);
    directory_pages_.clear();

    std::uint64_t index = first_page;
    while (index != 0 && directory_.size() < bucket_count) {
        directory_pages_.push_back(index);
        auto& page = cache_->page(index);
        const std::size_t bytes = page_used(page);
        for (std::size_t off = 0; off + 8 <= bytes && directory_.size() < bucket_count;
             off += 8) {
            directory_.push_back(util::load_le64(page.data.data() + kPageHeaderSize + off));
        }
        index = page_next(page);
    }
    EBV_ENSURES(directory_.size() == bucket_count);
}

// ------------------------------------------------------------ hashing -----

std::uint64_t DiskHashTable::bucket_of(util::ByteSpan key) const {
    const std::uint64_t h = fnv1a(key);
    const std::uint64_t round = base_buckets_ << level_;
    std::uint64_t b = h % round;
    if (b < split_) b = h % (round << 1);
    return b;
}

void DiskHashTable::maybe_grow() {
    while (entry_count_ > directory_.size() * target_per_bucket_) {
        split_one_bucket();
        DhtMetrics::get().splits.inc();
    }
}

void DiskHashTable::split_one_bucket() {
    const std::uint64_t round = base_buckets_ << level_;
    const std::uint64_t source = split_;
    const std::uint64_t sibling = source + round;

    // Collect the source chain's records.
    std::vector<std::pair<util::Bytes, util::Bytes>> records;
    std::uint64_t index = directory_[source];
    while (index != 0) {
        auto& page = cache_->page(index);
        const std::size_t end = kPageHeaderSize + page_used(page);
        std::size_t pos = kPageHeaderSize;
        while (pos + 4 <= end) {
            const std::uint16_t klen = util::load_le16(page.data.data() + pos);
            const std::uint16_t vlen = util::load_le16(page.data.data() + pos + 2);
            const std::uint8_t* kv = page.data.data() + pos + 4;
            records.emplace_back(util::Bytes(kv, kv + klen),
                                 util::Bytes(kv + klen, kv + klen + vlen));
            pos += 4 + klen + vlen;
        }
        const std::uint64_t next = page_next(page);
        // Reset the page for reuse: the head stays the (emptied) bucket
        // page, overflow pages go to the free list.
        std::memset(page.data.data(), 0, PagedFile::kPageSize);
        page.dirty = true;
        cache_->mark_dirty(index);
        if (index != directory_[source]) free_page(index);
        index = next;
    }

    // Advance the linear-hash state before re-inserting so bucket_of()
    // routes between source and sibling.
    directory_.push_back(allocate_page());
    EBV_ASSERT(directory_.size() == sibling + 1);
    ++split_;
    if (split_ == round) {
        ++level_;
        split_ = 0;
    }

    for (auto& [key, value] : records) {
        const std::uint64_t target = bucket_of(key);
        EBV_ASSERT(target == source || target == sibling);
        append_record(target, key, value);
    }
}

// ------------------------------------------------------- page plumbing ----

std::uint64_t DiskHashTable::allocate_page() {
    if (free_list_head_ != 0) {
        const std::uint64_t index = free_list_head_;
        auto& page = cache_->page(index);
        free_list_head_ = page_next(page);
        std::memset(page.data.data(), 0, PagedFile::kPageSize);
        page.dirty = true;
        cache_->mark_dirty(index);
        return index;
    }
    const std::uint64_t index = next_fresh_page_++;
    auto& page = cache_->page(index);
    std::memset(page.data.data(), 0, PagedFile::kPageSize);
    page.dirty = true;
    cache_->mark_dirty(index);
    return index;
}

void DiskHashTable::free_page(std::uint64_t index) {
    auto& page = cache_->page(index);
    std::memset(page.data.data(), 0, PagedFile::kPageSize);
    util::store_le64(page.data.data(), free_list_head_);
    page.dirty = true;
    cache_->mark_dirty(index);
    free_list_head_ = index;
}

std::size_t DiskHashTable::page_used(const PageCache::Page& page) {
    return util::load_le16(page.data.data() + 8);
}

std::uint64_t DiskHashTable::page_next(const PageCache::Page& page) {
    return util::load_le64(page.data.data());
}

std::size_t DiskHashTable::find_record(const PageCache::Page& page, util::ByteSpan key) {
    const std::size_t end = kPageHeaderSize + page_used(page);
    std::size_t pos = kPageHeaderSize;
    while (pos + 4 <= end) {
        const std::uint16_t klen = util::load_le16(page.data.data() + pos);
        const std::uint16_t vlen = util::load_le16(page.data.data() + pos + 2);
        const std::size_t record_end = pos + 4 + klen + vlen;
        EBV_ASSERT(record_end <= end);
        if (klen == key.size() &&
            std::memcmp(page.data.data() + pos + 4, key.data(), klen) == 0) {
            return pos;
        }
        pos = record_end;
    }
    return kNpos;
}

// ----------------------------------------------------------- operations ---

std::optional<util::Bytes> DiskHashTable::get(util::ByteSpan key) {
    ++stats_.fetches;
    std::uint64_t index = directory_[bucket_of(key)];
    while (index != 0) {
        auto& page = cache_->page(index);
        const std::size_t pos = find_record(page, key);
        if (pos != kNpos) {
            const std::uint16_t klen = util::load_le16(page.data.data() + pos);
            const std::uint16_t vlen = util::load_le16(page.data.data() + pos + 2);
            const std::uint8_t* value = page.data.data() + pos + 4 + klen;
            return util::Bytes(value, value + vlen);
        }
        index = page_next(page);
    }
    ++stats_.fetch_misses;
    return std::nullopt;
}

void DiskHashTable::append_record(std::uint64_t bucket, util::ByteSpan key,
                                  util::ByteSpan value) {
    const std::size_t record_size = 4 + key.size() + value.size();

    std::uint64_t index = directory_[bucket];
    std::uint64_t last = index;
    while (index != 0) {
        auto& page = cache_->page(index);
        const std::size_t used = page_used(page);
        if (kPageHeaderSize + used + record_size <= PagedFile::kPageSize) {
            std::uint8_t* cursor = page.data.data() + kPageHeaderSize + used;
            util::store_le16(cursor, static_cast<std::uint16_t>(key.size()));
            util::store_le16(cursor + 2, static_cast<std::uint16_t>(value.size()));
            std::memcpy(cursor + 4, key.data(), key.size());
            std::memcpy(cursor + 4 + key.size(), value.data(), value.size());
            util::store_le16(page.data.data() + 8,
                             static_cast<std::uint16_t>(used + record_size));
            page.dirty = true;
            cache_->mark_dirty(index);
            return;
        }
        last = index;
        index = page_next(page);
    }

    // No room in the chain: append an overflow page.
    const std::uint64_t fresh = allocate_page();
    {
        auto& tail = cache_->page(last);
        util::store_le64(tail.data.data(), fresh);
        tail.dirty = true;
        cache_->mark_dirty(last);
    }
    auto& page = cache_->page(fresh);
    std::uint8_t* cursor = page.data.data() + kPageHeaderSize;
    util::store_le16(cursor, static_cast<std::uint16_t>(key.size()));
    util::store_le16(cursor + 2, static_cast<std::uint16_t>(value.size()));
    std::memcpy(cursor + 4, key.data(), key.size());
    std::memcpy(cursor + 4 + key.size(), value.data(), value.size());
    util::store_le16(page.data.data() + 8, static_cast<std::uint16_t>(record_size));
    page.dirty = true;
    cache_->mark_dirty(fresh);
}

void DiskHashTable::put(util::ByteSpan key, util::ByteSpan value) {
    EBV_EXPECTS(key.size() + value.size() <= kMaxRecordPayload);
    ++stats_.inserts;

    // Replace-by-delete: overwrites are rare (outpoints are unique).
    erase_internal(key);

    append_record(bucket_of(key), key, value);
    ++entry_count_;
    payload_bytes_ += key.size() + value.size();
    maybe_grow();

    DhtMetrics& m = DhtMetrics::get();
    m.entries.set(static_cast<std::int64_t>(entry_count_));
    m.buckets.set(static_cast<std::int64_t>(directory_.size()));
    m.pages.set(static_cast<std::int64_t>(file_->page_count()));
}

bool DiskHashTable::erase(util::ByteSpan key) {
    ++stats_.deletes;
    return erase_internal(key);
}

bool DiskHashTable::erase_internal(util::ByteSpan key) {
    const std::uint64_t head = directory_[bucket_of(key)];
    std::uint64_t prev = 0;
    std::uint64_t index = head;
    while (index != 0) {
        auto& page = cache_->page(index);
        const std::size_t pos = find_record(page, key);
        if (pos == kNpos) {
            prev = index;
            index = page_next(page);
            continue;
        }

        const std::uint16_t klen = util::load_le16(page.data.data() + pos);
        const std::uint16_t vlen = util::load_le16(page.data.data() + pos + 2);
        const std::size_t record_size = 4 + static_cast<std::size_t>(klen) + vlen;
        const std::size_t used = page_used(page);
        const std::size_t end = kPageHeaderSize + used;

        std::memmove(page.data.data() + pos, page.data.data() + pos + record_size,
                     end - pos - record_size);
        util::store_le16(page.data.data() + 8,
                         static_cast<std::uint16_t>(used - record_size));
        page.dirty = true;
        cache_->mark_dirty(index);
        --entry_count_;
        payload_bytes_ -= klen + vlen;

        // Unlink now-empty overflow pages (never the bucket head itself).
        if (used - record_size == 0 && index != head) {
            const std::uint64_t next = page_next(page);
            auto& prev_page = cache_->page(prev);
            util::store_le64(prev_page.data.data(), next);
            prev_page.dirty = true;
            cache_->mark_dirty(prev);
            free_page(index);
        }
        return true;
    }
    return false;
}

void DiskHashTable::flush() {
    persist_directory();
    persist_header();
    cache_->flush();
}

}  // namespace ebv::storage
