// Key-value store abstraction for the status database. Two implementations:
// an unbounded in-memory map (for tests and for "all in RAM" baselines) and
// a paged on-disk hash table with an LRU page cache under a byte budget —
// the stand-in for LevelDB on the paper's memory-restricted node.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/span.hpp"

namespace ebv::storage {

/// Operation counters every store maintains; the paper's DBO metric is the
/// time spent producing these.
struct KvStats {
    std::uint64_t fetches = 0;
    std::uint64_t fetch_misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;

    void reset() { *this = KvStats{}; }
};

class KvStore {
public:
    virtual ~KvStore() = default;

    /// Fetch the value for a key; nullopt if absent.
    virtual std::optional<util::Bytes> get(util::ByteSpan key) = 0;
    /// Insert or overwrite.
    virtual void put(util::ByteSpan key, util::ByteSpan value) = 0;
    /// Remove; returns whether the key existed.
    virtual bool erase(util::ByteSpan key) = 0;
    /// Number of live entries.
    virtual std::uint64_t size() const = 0;
    /// Bytes of live payload (keys + values), i.e. the dataset size a node
    /// would need to hold this store fully in memory.
    virtual std::uint64_t payload_bytes() const = 0;
    /// Persist any buffered state.
    virtual void flush() = 0;
    /// Modelled device time accumulated so far (0 for purely in-memory
    /// stores). See storage/latency_model.hpp.
    virtual std::int64_t simulated_ns() const { return 0; }

    [[nodiscard]] const KvStats& stats() const { return stats_; }
    void reset_stats() { stats_.reset(); }

protected:
    KvStats stats_;
};

}  // namespace ebv::storage
