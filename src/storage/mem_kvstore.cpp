#include "storage/mem_kvstore.hpp"

namespace ebv::storage {

std::optional<util::Bytes> MemKvStore::get(util::ByteSpan key) {
    ++stats_.fetches;
    const auto it = map_.find(util::to_bytes(key));
    if (it == map_.end()) {
        ++stats_.fetch_misses;
        return std::nullopt;
    }
    return it->second;
}

void MemKvStore::put(util::ByteSpan key, util::ByteSpan value) {
    ++stats_.inserts;
    auto k = util::to_bytes(key);
    const auto it = map_.find(k);
    if (it != map_.end()) {
        payload_bytes_ -= it->second.size();
        payload_bytes_ += value.size();
        it->second = util::to_bytes(value);
        return;
    }
    payload_bytes_ += k.size() + value.size();
    map_.emplace(std::move(k), util::to_bytes(value));
}

bool MemKvStore::erase(util::ByteSpan key) {
    ++stats_.deletes;
    const auto it = map_.find(util::to_bytes(key));
    if (it == map_.end()) return false;
    payload_bytes_ -= it->first.size() + it->second.size();
    map_.erase(it);
    return true;
}

}  // namespace ebv::storage
