// Unbounded in-memory store: the model implementation other stores are
// tested against, and the "everything fits in RAM" baseline configuration.
#pragma once

#include <map>

#include "storage/kvstore.hpp"

namespace ebv::storage {

class MemKvStore final : public KvStore {
public:
    std::optional<util::Bytes> get(util::ByteSpan key) override;
    void put(util::ByteSpan key, util::ByteSpan value) override;
    bool erase(util::ByteSpan key) override;
    std::uint64_t size() const override { return map_.size(); }
    std::uint64_t payload_bytes() const override { return payload_bytes_; }
    void flush() override {}

private:
    // std::map keeps keys ordered, which makes debugging dumps stable.
    std::map<util::Bytes, util::Bytes> map_;
    std::uint64_t payload_bytes_ = 0;
};

}  // namespace ebv::storage
