// Instrumented wrapper around a KvStore: times every Fetch/Insert/Delete
// (wall clock + modelled device time), producing the paper's DBO metric.
#pragma once

#include <cstdint>
#include <optional>

#include "storage/kvstore.hpp"
#include "util/stopwatch.hpp"

namespace ebv::storage {

struct DboStats {
    util::TimeCost fetch_time;
    util::TimeCost insert_time;
    util::TimeCost delete_time;
    std::uint64_t fetch_count = 0;
    std::uint64_t insert_count = 0;
    std::uint64_t delete_count = 0;

    [[nodiscard]] util::TimeCost total_time() const {
        return fetch_time + insert_time + delete_time;
    }

    void reset() { *this = DboStats{}; }
};

class StatusDb {
public:
    explicit StatusDb(KvStore& store) : store_(store) {}

    std::optional<util::Bytes> fetch(util::ByteSpan key);
    void insert(util::ByteSpan key, util::ByteSpan value);
    bool erase(util::ByteSpan key);

    [[nodiscard]] const DboStats& dbo() const { return dbo_; }
    void reset_dbo() { dbo_.reset(); }

    [[nodiscard]] KvStore& store() { return store_; }
    [[nodiscard]] const KvStore& store() const { return store_; }

private:
    template <typename Op>
    auto timed(util::TimeCost& cost, Op&& op) {
        const util::Nanoseconds sim_before = store_.simulated_ns();
        util::Stopwatch watch;
        auto result = op();
        cost.wall_ns += watch.elapsed_ns();
        cost.simulated_ns += store_.simulated_ns() - sim_before;
        return result;
    }

    KvStore& store_;
    DboStats dbo_;
};

}  // namespace ebv::storage
