// LRU page cache with a hard byte budget over a PagedFile. This is where
// the paper's memory restriction bites: when the working set outgrows the
// budget, every miss costs a modelled device access.
#pragma once

#include <array>
#include <memory>

#include "storage/latency_model.hpp"
#include "storage/paged_file.hpp"
#include "util/lru.hpp"
#include "util/stopwatch.hpp"

namespace ebv::storage {

/// Per-instance cache counters. Every increment is mirrored into the global
/// obs registry (`storage.page_cache.*`), which aggregates across instances;
/// invariant: os_hits + device_reads == misses.
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       ///< application-cache misses
    std::uint64_t os_hits = 0;      ///< of the misses, served by the OS cache
    std::uint64_t device_reads = 0; ///< of the misses, paid a device access
    std::uint64_t write_backs = 0;

    void reset() { *this = CacheStats{}; }
};

class PageCache {
public:
    struct Page {
        std::array<std::uint8_t, PagedFile::kPageSize> data;
        bool dirty = false;
    };

    /// budget_bytes: the application's cache capacity (the paper's memory
    /// limit). os_budget_bytes models the kernel page cache behind it: an
    /// application miss that the OS would still have resident costs only a
    /// copy, not a device access; write-backs land in the OS cache and are
    /// flushed asynchronously (no device charge on the critical path).
    /// os_budget_bytes == 0 disables the second level.
    PageCache(PagedFile& file, std::size_t budget_bytes, LatencyModel latency,
              util::SimTimeLedger& ledger, std::size_t os_budget_bytes = 0);
    ~PageCache();

    /// Pin-free access: the pointer is valid until the next cache call.
    Page& page(std::uint64_t index);
    void mark_dirty(std::uint64_t index);

    /// Write back every dirty page (without evicting).
    void flush();

    [[nodiscard]] const CacheStats& stats() const { return stats_; }
    void reset_stats() { stats_.reset(); }

    [[nodiscard]] std::size_t budget() const { return cache_.budget(); }
    void set_budget(std::size_t bytes) { cache_.set_budget(bytes); }
    [[nodiscard]] std::size_t resident_bytes() const { return cache_.total_cost(); }

private:
    /// Bookkeeping overhead per cached page (LRU node, map entry), counted
    /// against the budget so "500 MB" means what the paper's node means.
    static constexpr std::size_t kPageCost = PagedFile::kPageSize + 96;

    PagedFile& file_;
    util::LruMap<std::uint64_t, std::unique_ptr<Page>> cache_;
    /// Kernel-page-cache model: tracks which pages the OS would still hold.
    /// Values are unused; page indexes and LRU order are the state.
    util::LruMap<std::uint64_t, char> os_cache_;
    LatencyModel latency_;
    util::SimTimeLedger& ledger_;
    CacheStats stats_;
};

}  // namespace ebv::storage
