#include "storage/paged_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/assert.hpp"

namespace ebv::storage {

PagedFile::PagedFile(const std::string& path) : path_(path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    EBV_ENSURES(fd_ >= 0);
}

PagedFile::~PagedFile() {
    if (fd_ >= 0) ::close(fd_);
}

void PagedFile::read_page(std::uint64_t index, util::MutableByteSpan out) {
    EBV_EXPECTS(out.size() == kPageSize);
    const auto offset = static_cast<off_t>(index * kPageSize);
    std::size_t done = 0;
    while (done < kPageSize) {
        const ssize_t n = ::pread(fd_, out.data() + done, kPageSize - done,
                                  offset + static_cast<off_t>(done));
        EBV_ASSERT(n >= 0);
        if (n == 0) {  // beyond EOF: zero-fill the rest
            std::memset(out.data() + done, 0, kPageSize - done);
            return;
        }
        done += static_cast<std::size_t>(n);
    }
}

void PagedFile::write_page(std::uint64_t index, util::ByteSpan data) {
    EBV_EXPECTS(data.size() == kPageSize);
    const auto offset = static_cast<off_t>(index * kPageSize);
    std::size_t done = 0;
    while (done < kPageSize) {
        const ssize_t n = ::pwrite(fd_, data.data() + done, kPageSize - done,
                                   offset + static_cast<off_t>(done));
        EBV_ASSERT(n > 0);
        done += static_cast<std::size_t>(n);
    }
}

std::uint64_t PagedFile::page_count() const {
    struct stat st{};
    EBV_ASSERT(::fstat(fd_, &st) == 0);
    return (static_cast<std::uint64_t>(st.st_size) + kPageSize - 1) / kPageSize;
}

void PagedFile::sync() { ::fsync(fd_); }

}  // namespace ebv::storage
