// The intermediary node of the paper's evaluation (§VI-A): it consumes
// Bitcoin-format blocks in chain order and reconstructs them as EBV blocks
// — creating MBr, ELs, height, and position for every input, assigning
// stake positions, and maintaining the outpoint → (height, tx, output)
// index that proof construction requires. Original unlocking scripts are
// preserved, so all existing signatures remain valid.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "chain/block.hpp"
#include "core/chain_archive.hpp"
#include "core/ebv_transaction.hpp"
#include "util/result.hpp"

namespace ebv::intermediary {

enum class ConvertError {
    kUnknownPrevout,      ///< input references an output the index has never seen
    kIntraBlockSpend,     ///< spends an output created in the same block (EBV
                          ///< proofs require the source block to be packaged)
    kCoinbaseShape,       ///< coinbase doesn't have the expected single null input
};

[[nodiscard]] const char* to_string(ConvertError e);

struct ConvertStats {
    std::uint64_t blocks = 0;
    std::uint64_t inputs_reconstructed = 0;
    std::uint64_t bitcoin_bytes = 0;  ///< source serialized size
    std::uint64_t ebv_bytes = 0;      ///< reconstructed serialized size
};

class Converter {
public:
    /// Convert the next block (heights must be sequential from 0). On
    /// success the converter's index and archive advance; on failure they
    /// are unchanged.
    util::Result<core::EbvBlock, ConvertError> convert_block(const chain::Block& block);

    [[nodiscard]] const ConvertStats& stats() const { return stats_; }
    [[nodiscard]] const core::ChainArchive& archive() const { return archive_; }
    [[nodiscard]] std::uint32_t next_height() const {
        return archive_.height_count();
    }
    /// Size of the outpoint index (the paper's "relationship between
    /// inputs/outputs and blocks" database).
    [[nodiscard]] std::size_t index_size() const { return index_.size(); }

private:
    struct Location {
        std::uint32_t height;
        std::uint32_t tx_index;
        std::uint16_t out_index;
    };

    std::unordered_map<chain::OutPoint, Location, chain::OutPointHasher> index_;
    core::ChainArchive archive_;
    crypto::Hash256 prev_ebv_hash_;  ///< tip of the converted chain
    ConvertStats stats_;
};

}  // namespace ebv::intermediary
