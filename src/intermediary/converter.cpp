#include "intermediary/converter.hpp"

namespace ebv::intermediary {

const char* to_string(ConvertError e) {
    switch (e) {
        case ConvertError::kUnknownPrevout: return "unknown prevout";
        case ConvertError::kIntraBlockSpend: return "intra-block spend not representable";
        case ConvertError::kCoinbaseShape: return "unexpected coinbase shape";
    }
    return "unknown convert error";
}

util::Result<core::EbvBlock, ConvertError> Converter::convert_block(
    const chain::Block& block) {
    const std::uint32_t height = next_height();

    core::EbvBlock ebv_block;
    ebv_block.header = block.header;  // merkle root is reassigned below
    // Stake positions change the Merkle root, so EBV block hashes differ
    // from the source chain's: the converted chain links via its own tips.
    ebv_block.header.prev_hash = prev_ebv_hash_;
    ebv_block.txs.reserve(block.txs.size());

    for (std::size_t t = 0; t < block.txs.size(); ++t) {
        const chain::Transaction& tx = block.txs[t];
        core::EbvTransaction ebv_tx;
        ebv_tx.version = tx.version;
        ebv_tx.locktime = tx.locktime;
        ebv_tx.outputs = tx.vout;

        if (t == 0) {
            if (!tx.is_coinbase())
                return util::Unexpected{ConvertError::kCoinbaseShape};
            // The coinbase's height-tagged script becomes the coinbase data.
            ebv_tx.coinbase_data = tx.vin[0].unlock_script;
            if (ebv_tx.coinbase_data.empty()) ebv_tx.coinbase_data.push_back(0x00);
        } else {
            ebv_tx.inputs.reserve(tx.vin.size());
            for (const chain::TxIn& in : tx.vin) {
                const auto it = index_.find(in.prevout);
                if (it == index_.end()) {
                    // Either truly unknown or created earlier in this very
                    // block; EBV cannot prove membership of an unpackaged
                    // block, so both cases are conversion failures.
                    for (const auto& prior : block.txs) {
                        if (prior.txid() == in.prevout.txid)
                            return util::Unexpected{ConvertError::kIntraBlockSpend};
                    }
                    return util::Unexpected{ConvertError::kUnknownPrevout};
                }
                const Location& loc = it->second;
                core::EbvInput ebv_in =
                    archive_.make_input(loc.height, loc.tx_index, loc.out_index);
                ebv_in.prevout = in.prevout;
                ebv_in.sequence = in.sequence;
                ebv_in.unlock_script = in.unlock_script;  // signatures carry over
                ebv_tx.inputs.push_back(std::move(ebv_in));
            }
        }
        ebv_block.txs.push_back(std::move(ebv_tx));
    }

    ebv_block.assign_stake_positions();

    // Commit: index the new outputs, drop the spent ones, archive the block.
    for (std::size_t t = 0; t < block.txs.size(); ++t) {
        const chain::Transaction& tx = block.txs[t];
        if (!tx.is_coinbase()) {
            for (const chain::TxIn& in : tx.vin) index_.erase(in.prevout);
        }
        for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
            index_.emplace(chain::OutPoint{tx.txid(), o},
                           Location{height, static_cast<std::uint32_t>(t),
                                    static_cast<std::uint16_t>(o)});
        }
    }
    archive_.add_block(ebv_block);
    prev_ebv_hash_ = ebv_block.header.hash();

    ++stats_.blocks;
    stats_.inputs_reconstructed += ebv_block.input_count();
    stats_.bitcoin_bytes += block.serialized_size();
    stats_.ebv_bytes += ebv_block.serialized_size();

    return ebv_block;
}

}  // namespace ebv::intermediary
