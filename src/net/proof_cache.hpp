// Block-level proof material cache for the proof-serving tier.
//
// Serving a Merkle proof the naive way re-hashes the whole tree per query:
// O(n) compressions each time, quadratic for a popular block. BlockProofs
// prepares everything once — the serialized tidy transactions (ELs), the
// txid → leaf index, the per-transaction output counts and stake positions,
// and a crypto::MerkleTreeCache holding every interior level — so each
// query is a hash-table lookup plus an O(log n) sibling copy with zero
// SHA-256 work.
//
// ProofCache keeps prepared blocks in an LRU keyed by block hash under a
// byte budget (EBV_PROOF_CACHE_BYTES, default 64 MiB). Entries are handed
// out as shared_ptr so an eviction never invalidates a reply the server is
// still assembling.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ebv_transaction.hpp"
#include "crypto/hash_types.hpp"
#include "crypto/merkle_cache.hpp"
#include "util/lru.hpp"

namespace ebv::net {

/// Everything needed to answer getproof requests against one block.
struct BlockProofs {
    std::uint32_t height = 0;
    crypto::MerkleTreeCache tree;           ///< all interior levels, hashed once
    std::vector<util::Bytes> tidy_txs;      ///< serialized TidyTransaction per leaf
    std::vector<std::uint32_t> output_counts;    ///< per leaf, for kInput range checks
    std::vector<std::uint32_t> stake_positions;  ///< per leaf, first-output position
    std::unordered_map<crypto::Hash256, std::uint32_t, crypto::Hash256Hasher>
        txid_to_leaf;

    /// Prepare a block: serialize every tidy transaction, hash the leaves,
    /// and build the full interior-node tree. The only hashing the proof
    /// path ever performs.
    static std::shared_ptr<const BlockProofs> build(const core::EbvBlock& block,
                                                    std::uint32_t height);

    /// Approximate heap footprint — the cost charged against the LRU budget.
    [[nodiscard]] std::size_t memory_bytes() const;
};

class ProofCache {
public:
    /// Budget in bytes; defaults to EBV_PROOF_CACHE_BYTES (64 MiB unset).
    explicit ProofCache(std::size_t budget_bytes = budget_from_env());

    /// Cache hit (refreshes recency) or nullptr. Counts
    /// ebv.proofsrv.cache_hits / cache_misses.
    std::shared_ptr<const BlockProofs> lookup(const crypto::Hash256& block_hash);

    /// Insert a prepared block, evicting least-recently-served blocks past
    /// the budget (counted as ebv.proofsrv.cache_evictions).
    void insert(const crypto::Hash256& block_hash,
                std::shared_ptr<const BlockProofs> proofs);

    [[nodiscard]] std::size_t size() const { return lru_.size(); }
    [[nodiscard]] std::size_t total_bytes() const { return lru_.total_cost(); }
    [[nodiscard]] std::size_t budget() const { return lru_.budget(); }

    static std::size_t budget_from_env();

private:
    util::LruMap<crypto::Hash256, std::shared_ptr<const BlockProofs>,
                 crypto::Hash256Hasher>
        lru_;
};

}  // namespace ebv::net
