// ChainBackend implementations binding the protocol engine to the two node
// types, plus the intermediary bridge (paper §VI-A): a Bitcoin-format
// downloader whose accepted blocks are converted and served to EBV-format
// peers through a second endpoint.
#pragma once

#include <memory>
#include <unordered_map>

#include "chain/node.hpp"
#include "core/node.hpp"
#include "intermediary/converter.hpp"
#include "net/protocol_node.hpp"

namespace ebv::net {

/// Backend over a baseline (Bitcoin-format) validator node.
class BitcoinChainBackend final : public ChainBackend {
public:
    explicit BitcoinChainBackend(chain::BitcoinNode& node) : node_(node) {}

    [[nodiscard]] ChainFormat format() const override { return ChainFormat::kBitcoin; }
    [[nodiscard]] std::uint32_t block_count() const override { return node_.next_height(); }
    std::optional<crypto::Hash256> block_hash_at(std::uint32_t height) const override;
    std::optional<util::Bytes> header_at(std::uint32_t height) const override;
    std::optional<util::Bytes> block_by_hash(const crypto::Hash256& hash) const override;
    std::optional<crypto::Hash256> peek_prev_hash(const util::Bytes& payload) const override;
    std::optional<crypto::Hash256> peek_hash(const util::Bytes& payload) const override;
    std::optional<util::Nanoseconds> accept_block(const util::Bytes& payload) override;

    /// Pre-load a locally produced block (e.g. the origin node's chain).
    void seed_block(const chain::Block& block);

    /// Total validation cost accumulated by accept_block.
    [[nodiscard]] util::Nanoseconds validation_ns() const { return validation_ns_; }

private:
    chain::BitcoinNode& node_;
    std::unordered_map<crypto::Hash256, util::Bytes, crypto::Hash256Hasher> by_hash_;
    util::Nanoseconds validation_ns_ = 0;
};

/// Backend over an EBV validator node.
class EbvChainBackend final : public ChainBackend {
public:
    explicit EbvChainBackend(core::EbvNode& node) : node_(node) {}

    [[nodiscard]] ChainFormat format() const override { return ChainFormat::kEbv; }
    [[nodiscard]] std::uint32_t block_count() const override { return node_.next_height(); }
    std::optional<crypto::Hash256> block_hash_at(std::uint32_t height) const override;
    std::optional<util::Bytes> header_at(std::uint32_t height) const override;
    std::optional<util::Bytes> block_by_hash(const crypto::Hash256& hash) const override;
    std::optional<crypto::Hash256> peek_prev_hash(const util::Bytes& payload) const override;
    std::optional<crypto::Hash256> peek_hash(const util::Bytes& payload) const override;
    std::optional<util::Nanoseconds> accept_block(const util::Bytes& payload) override;

    void seed_block(const core::EbvBlock& block);
    [[nodiscard]] util::Nanoseconds validation_ns() const { return validation_ns_; }

private:
    core::EbvNode& node_;
    std::unordered_map<crypto::Hash256, util::Bytes, crypto::Hash256Hasher> by_hash_;
    util::Nanoseconds validation_ns_ = 0;
};

/// The intermediary: its upstream backend accepts Bitcoin-format blocks
/// (validating them like any baseline node); every accepted block is
/// converted and exposed through the downstream EBV backend, whose
/// protocol endpoint serves EBV peers.
class IntermediaryBridge {
public:
    IntermediaryBridge(SimNetwork& network, netsim::Region region,
                       const chain::ChainParams& params);

    /// Upstream (Bitcoin-format) protocol endpoint — connect it to sources.
    [[nodiscard]] ProtocolNode& upstream() { return *upstream_node_; }
    /// Downstream (EBV-format) protocol endpoint — EBV nodes connect here.
    [[nodiscard]] ProtocolNode& downstream() { return *downstream_node_; }

    [[nodiscard]] std::uint32_t converted_blocks() const {
        return downstream_backend_->block_count();
    }

private:
    /// Upstream backend that also converts + seeds downstream on accept.
    class ConvertingBackend final : public ChainBackend {
    public:
        ConvertingBackend(IntermediaryBridge& owner) : owner_(owner) {}
        [[nodiscard]] ChainFormat format() const override { return ChainFormat::kBitcoin; }
        [[nodiscard]] std::uint32_t block_count() const override {
            return owner_.btc_backend_->block_count();
        }
        std::optional<crypto::Hash256> block_hash_at(std::uint32_t h) const override {
            return owner_.btc_backend_->block_hash_at(h);
        }
        std::optional<util::Bytes> header_at(std::uint32_t h) const override {
            return owner_.btc_backend_->header_at(h);
        }
        std::optional<util::Bytes> block_by_hash(const crypto::Hash256& h) const override {
            return owner_.btc_backend_->block_by_hash(h);
        }
        std::optional<crypto::Hash256> peek_prev_hash(const util::Bytes& p) const override {
            return owner_.btc_backend_->peek_prev_hash(p);
        }
        std::optional<crypto::Hash256> peek_hash(const util::Bytes& p) const override {
            return owner_.btc_backend_->peek_hash(p);
        }
        std::optional<util::Nanoseconds> accept_block(const util::Bytes& payload) override;

    private:
        IntermediaryBridge& owner_;
    };

    chain::BitcoinNodeOptions btc_options_;
    std::unique_ptr<chain::BitcoinNode> btc_node_;
    std::unique_ptr<BitcoinChainBackend> btc_backend_;
    std::unique_ptr<ConvertingBackend> upstream_backend_;
    std::unique_ptr<ProtocolNode> upstream_node_;

    intermediary::Converter converter_;
    core::EbvNodeOptions ebv_options_;
    std::unique_ptr<core::EbvNode> ebv_node_;
    std::unique_ptr<EbvChainBackend> downstream_backend_;
    std::unique_ptr<ProtocolNode> downstream_node_;
};

}  // namespace ebv::net
