#include "net/message.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "util/endian.hpp"

namespace ebv::net {

namespace {

constexpr std::uint32_t kMagic = 0xEB5F00D5;
constexpr std::size_t kFrameHeader = 4 + 1 + 4 + 4;
constexpr std::size_t kMaxPayload = 8u << 20;

std::uint32_t checksum_of(util::ByteSpan payload) {
    const auto digest = crypto::double_sha256(payload);
    return util::load_le32(digest.data());
}

// ---- payload encoders ------------------------------------------------------

void encode_payload(util::Writer& w, const VersionMsg& m) {
    w.u32(m.protocol);
    w.u8(static_cast<std::uint8_t>(m.format));
    w.u32(m.best_height);
    w.u64(m.nonce);
}

void encode_payload(util::Writer&, const VerAckMsg&) {}

void encode_payload(util::Writer& w, const GetHeadersMsg& m) {
    w.u32(m.from_height);
    w.u32(m.max_count);
}

void encode_payload(util::Writer& w, const HeadersMsg& m) {
    w.u32(m.start_height);
    w.compact_size(m.headers.size());
    for (const auto& h : m.headers) w.var_bytes(h);
}

void encode_inv_items(util::Writer& w, const std::vector<InvItem>& items) {
    w.compact_size(items.size());
    for (const auto& item : items) {
        w.u8(static_cast<std::uint8_t>(item.type));
        w.bytes(item.hash.span());
    }
}

void encode_payload(util::Writer& w, const InvMsg& m) { encode_inv_items(w, m.items); }
void encode_payload(util::Writer& w, const GetDataMsg& m) { encode_inv_items(w, m.items); }

void encode_payload(util::Writer& w, const BlockMsg& m) {
    w.u8(static_cast<std::uint8_t>(m.format));
    w.u32(m.height);
    w.var_bytes(m.payload);
}

void encode_payload(util::Writer& w, const TxMsg& m) {
    w.u8(static_cast<std::uint8_t>(m.format));
    w.var_bytes(m.payload);
}

void encode_payload(util::Writer& w, const PingMsg& m) { w.u64(m.nonce); }
void encode_payload(util::Writer& w, const PongMsg& m) { w.u64(m.nonce); }

/// One getproof/proof frame carries at most this many requests/items; the
/// server coalesces per peer, it never needs more than a block's worth.
constexpr std::uint64_t kMaxProofBatch = 1024;
/// A tidy transaction is a stripped transaction; 1 MiB is generous.
constexpr std::size_t kMaxElsBytes = 1u << 20;

void encode_payload(util::Writer& w, const GetProofMsg& m) {
    w.bytes(m.block_hash.span());
    w.compact_size(m.requests.size());
    for (const auto& req : m.requests) {
        w.u8(static_cast<std::uint8_t>(req.kind));
        w.bytes(req.txid.span());
        w.u16(req.out_index);
    }
}

void encode_payload(util::Writer& w, const ProofMsg& m) {
    w.bytes(m.block_hash.span());
    w.compact_size(m.items.size());
    for (const auto& item : m.items) {
        w.u8(static_cast<std::uint8_t>(item.status));
        w.u8(static_cast<std::uint8_t>(item.kind));
        w.bytes(item.txid.span());
        w.u16(item.out_index);
        w.u32(item.height);
        w.u32(item.position);
        w.var_bytes(item.els);
        item.mbr.serialize(w);
    }
}

// ---- payload decoders ------------------------------------------------------

using DecodeResult = util::Result<Message, WireError>;

DecodeResult malformed() { return util::Unexpected{WireError::kMalformedPayload}; }

DecodeResult decode_version(util::Reader& r) {
    VersionMsg m;
    auto protocol = r.u32();
    if (!protocol) return malformed();
    m.protocol = *protocol;
    auto format = r.u8();
    if (!format || *format > 1) return malformed();
    m.format = static_cast<ChainFormat>(*format);
    auto height = r.u32();
    if (!height) return malformed();
    m.best_height = *height;
    auto nonce = r.u64();
    if (!nonce) return malformed();
    m.nonce = *nonce;
    return Message{m};
}

DecodeResult decode_get_headers(util::Reader& r) {
    GetHeadersMsg m;
    auto from = r.u32();
    if (!from) return malformed();
    m.from_height = *from;
    auto max = r.u32();
    if (!max) return malformed();
    m.max_count = *max;
    return Message{m};
}

DecodeResult decode_headers(util::Reader& r) {
    HeadersMsg m;
    auto start = r.u32();
    if (!start) return malformed();
    m.start_height = *start;
    auto count = r.compact_size();
    if (!count || *count > 100'000) return malformed();
    m.headers.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto bytes = r.var_bytes(1024);
        if (!bytes) return malformed();
        m.headers.push_back(std::move(*bytes));
    }
    return Message{std::move(m)};
}

util::Result<std::vector<InvItem>, WireError> decode_inv_items(util::Reader& r) {
    auto count = r.compact_size();
    if (!count || *count > 50'000) return util::Unexpected{WireError::kMalformedPayload};
    std::vector<InvItem> items;
    items.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto type = r.u8();
        if (!type || *type > 1) return util::Unexpected{WireError::kMalformedPayload};
        auto hash = r.bytes(32);
        if (!hash) return util::Unexpected{WireError::kMalformedPayload};
        items.push_back(InvItem{static_cast<InvType>(*type),
                                crypto::Hash256::from_span(*hash)});
    }
    return items;
}

DecodeResult decode_block(util::Reader& r) {
    BlockMsg m;
    auto format = r.u8();
    if (!format || *format > 1) return malformed();
    m.format = static_cast<ChainFormat>(*format);
    auto height = r.u32();
    if (!height) return malformed();
    m.height = *height;
    auto payload = r.var_bytes(kMaxPayload);
    if (!payload) return malformed();
    m.payload = std::move(*payload);
    return Message{std::move(m)};
}

DecodeResult decode_tx(util::Reader& r) {
    TxMsg m;
    auto format = r.u8();
    if (!format || *format > 1) return malformed();
    m.format = static_cast<ChainFormat>(*format);
    auto payload = r.var_bytes(kMaxPayload);
    if (!payload) return malformed();
    m.payload = std::move(*payload);
    return Message{std::move(m)};
}

template <typename M>
DecodeResult decode_nonce_msg(util::Reader& r) {
    M m;
    auto nonce = r.u64();
    if (!nonce) return malformed();
    m.nonce = *nonce;
    return Message{m};
}

DecodeResult decode_get_proof(util::Reader& r) {
    GetProofMsg m;
    auto hash = r.bytes(32);
    if (!hash) return malformed();
    m.block_hash = crypto::Hash256::from_span(*hash);
    auto count = r.compact_size();
    if (!count || *count > kMaxProofBatch) return malformed();
    m.requests.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        ProofRequest req;
        auto kind = r.u8();
        if (!kind || *kind > 1) return malformed();
        req.kind = static_cast<ProofKind>(*kind);
        auto txid = r.bytes(32);
        if (!txid) return malformed();
        req.txid = crypto::Hash256::from_span(*txid);
        auto out_index = r.u16();
        if (!out_index) return malformed();
        req.out_index = *out_index;
        m.requests.push_back(req);
    }
    return Message{std::move(m)};
}

DecodeResult decode_proof(util::Reader& r) {
    ProofMsg m;
    auto hash = r.bytes(32);
    if (!hash) return malformed();
    m.block_hash = crypto::Hash256::from_span(*hash);
    auto count = r.compact_size();
    if (!count || *count > kMaxProofBatch) return malformed();
    m.items.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        ProofItem item;
        auto status = r.u8();
        if (!status || *status > 3) return malformed();
        item.status = static_cast<ProofStatus>(*status);
        auto kind = r.u8();
        if (!kind || *kind > 1) return malformed();
        item.kind = static_cast<ProofKind>(*kind);
        auto txid = r.bytes(32);
        if (!txid) return malformed();
        item.txid = crypto::Hash256::from_span(*txid);
        auto out_index = r.u16();
        if (!out_index) return malformed();
        item.out_index = *out_index;
        auto height = r.u32();
        if (!height) return malformed();
        item.height = *height;
        auto position = r.u32();
        if (!position) return malformed();
        item.position = *position;
        auto els = r.var_bytes(kMaxElsBytes);
        if (!els) return malformed();
        item.els = std::move(*els);
        auto mbr = crypto::MerkleBranch::deserialize(r);
        if (!mbr) return malformed();
        item.mbr = std::move(*mbr);
        m.items.push_back(std::move(item));
    }
    return Message{std::move(m)};
}

}  // namespace

const char* to_string(Command c) {
    switch (c) {
        case Command::kVersion: return "version";
        case Command::kVerAck: return "verack";
        case Command::kGetHeaders: return "getheaders";
        case Command::kHeaders: return "headers";
        case Command::kInv: return "inv";
        case Command::kGetData: return "getdata";
        case Command::kBlock: return "block";
        case Command::kTx: return "tx";
        case Command::kPing: return "ping";
        case Command::kPong: return "pong";
        case Command::kGetProof: return "getproof";
        case Command::kProof: return "proof";
    }
    return "unknown";
}

const char* to_string(ProofStatus s) {
    switch (s) {
        case ProofStatus::kOk: return "ok";
        case ProofStatus::kUnknownBlock: return "unknown block";
        case ProofStatus::kUnknownTx: return "unknown tx";
        case ProofStatus::kBadIndex: return "bad output index";
    }
    return "unknown proof status";
}

const char* to_string(WireError e) {
    switch (e) {
        case WireError::kBadMagic: return "bad magic";
        case WireError::kTruncated: return "truncated frame";
        case WireError::kBadChecksum: return "bad checksum";
        case WireError::kUnknownCommand: return "unknown command";
        case WireError::kMalformedPayload: return "malformed payload";
        case WireError::kOversized: return "oversized payload";
    }
    return "unknown wire error";
}

Command command_of(const Message& m) {
    struct Visitor {
        Command operator()(const VersionMsg&) const { return Command::kVersion; }
        Command operator()(const VerAckMsg&) const { return Command::kVerAck; }
        Command operator()(const GetHeadersMsg&) const { return Command::kGetHeaders; }
        Command operator()(const HeadersMsg&) const { return Command::kHeaders; }
        Command operator()(const InvMsg&) const { return Command::kInv; }
        Command operator()(const GetDataMsg&) const { return Command::kGetData; }
        Command operator()(const BlockMsg&) const { return Command::kBlock; }
        Command operator()(const TxMsg&) const { return Command::kTx; }
        Command operator()(const PingMsg&) const { return Command::kPing; }
        Command operator()(const PongMsg&) const { return Command::kPong; }
        Command operator()(const GetProofMsg&) const { return Command::kGetProof; }
        Command operator()(const ProofMsg&) const { return Command::kProof; }
    };
    return std::visit(Visitor{}, m);
}

util::Bytes encode_message(const Message& m) {
    util::Writer payload_writer;
    std::visit([&](const auto& msg) { encode_payload(payload_writer, msg); }, m);
    const util::Bytes& payload = payload_writer.data();

    util::Writer w(kFrameHeader + payload.size());
    w.u32(kMagic);
    w.u8(static_cast<std::uint8_t>(command_of(m)));
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u32(checksum_of(payload));
    w.bytes(payload);
    return w.take();
}

util::Result<std::pair<Message, std::size_t>, WireError> decode_message(
    util::ByteSpan wire) {
    if (wire.size() < kFrameHeader) return util::Unexpected{WireError::kTruncated};

    util::Reader r(wire);
    if (*r.u32() != kMagic) return util::Unexpected{WireError::kBadMagic};
    const std::uint8_t command = *r.u8();
    const std::uint32_t length = *r.u32();
    const std::uint32_t checksum = *r.u32();

    if (length > kMaxPayload) return util::Unexpected{WireError::kOversized};
    if (wire.size() < kFrameHeader + length) return util::Unexpected{WireError::kTruncated};

    const util::ByteSpan payload = wire.subspan(kFrameHeader, length);
    if (checksum_of(payload) != checksum) return util::Unexpected{WireError::kBadChecksum};

    util::Reader pr(payload);
    DecodeResult decoded = [&]() -> DecodeResult {
        switch (static_cast<Command>(command)) {
            case Command::kVersion: return decode_version(pr);
            case Command::kVerAck: return Message{VerAckMsg{}};
            case Command::kGetHeaders: return decode_get_headers(pr);
            case Command::kHeaders: return decode_headers(pr);
            case Command::kInv: {
                auto items = decode_inv_items(pr);
                if (!items) return util::Unexpected{items.error()};
                return Message{InvMsg{std::move(*items)}};
            }
            case Command::kGetData: {
                auto items = decode_inv_items(pr);
                if (!items) return util::Unexpected{items.error()};
                return Message{GetDataMsg{std::move(*items)}};
            }
            case Command::kBlock: return decode_block(pr);
            case Command::kTx: return decode_tx(pr);
            case Command::kPing: return decode_nonce_msg<PingMsg>(pr);
            case Command::kPong: return decode_nonce_msg<PongMsg>(pr);
            case Command::kGetProof: return decode_get_proof(pr);
            case Command::kProof: return decode_proof(pr);
            default: return util::Unexpected{WireError::kUnknownCommand};
        }
    }();
    if (!decoded) return util::Unexpected{decoded.error()};
    // Trailing bytes inside the declared payload are a protocol violation.
    if (!pr.empty()) return util::Unexpected{WireError::kMalformedPayload};

    return std::make_pair(std::move(*decoded), kFrameHeader + length);
}

}  // namespace ebv::net
