#include "net/proof_server.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace ebv::net {

namespace {

struct ProofSrvMetrics {
    obs::Counter& queries;
    obs::Counter& batches;
    obs::Counter& rebuilds;
    obs::Counter& reply_bytes;
    obs::Counter& errors;
    obs::Histogram& batch_size;
    obs::Histogram& extract_ns;  ///< per-flush proof assembly time
    obs::Histogram& build_ns;    ///< per-block tree preparation time
    obs::Histogram& serve_ns;    ///< per-batch queue wait + assembly (sim)

    static ProofSrvMetrics& get() {
        static ProofSrvMetrics m{
            obs::Registry::global().counter("ebv.proofsrv.queries"),
            obs::Registry::global().counter("ebv.proofsrv.batches"),
            obs::Registry::global().counter("ebv.proofsrv.rebuilds"),
            obs::Registry::global().counter("ebv.proofsrv.reply_bytes"),
            obs::Registry::global().counter("ebv.proofsrv.errors"),
            obs::Registry::global().histogram(
                "ebv.proofsrv.batch_size",
                obs::Histogram::exponential_bounds(1, 2.0, 12)),
            obs::Registry::global().histogram("ebv.proofsrv.extract_ns"),
            obs::Registry::global().histogram("ebv.proofsrv.build_ns"),
            obs::Registry::global().histogram("ebv.proofsrv.serve_ns"),
        };
        return m;
    }
};

}  // namespace

ProofServer::ProofServer(SimNetwork& network, netsim::Region region, ProofSource& source,
                         ProofCache& cache, ProofServerConfig config, std::string name)
    : network_(network),
      source_(source),
      cache_(cache),
      config_(config),
      name_(std::move(name)) {
    id_ = network_.add_endpoint(
        region, [this](EndpointId from, const util::Bytes& wire) { on_wire(from, wire); });
}

void ProofServer::on_wire(EndpointId from, const util::Bytes& wire) {
    std::size_t offset = 0;
    while (offset < wire.size()) {
        auto decoded = decode_message(util::ByteSpan(wire).subspan(offset));
        if (!decoded) {
            EBV_LOG_WARN("%s: dropping frame from %u: %s", name_.c_str(), from,
                         to_string(decoded.error()));
            return;
        }
        if (const auto* get = std::get_if<GetProofMsg>(&decoded->first))
            enqueue(from, *get);
        // Anything else (handshakes, pings) is not this tier's job; ignore.
        offset += decoded->second;
    }
}

void ProofServer::enqueue(EndpointId from, const GetProofMsg& m) {
    ProofSrvMetrics::get().queries.inc(m.requests.size());
    stats_.queries += m.requests.size();

    const PendingKey key{from, m.block_hash};
    auto [it, fresh] = pending_.try_emplace(key);
    it->second.insert(it->second.end(), m.requests.begin(), m.requests.end());
    // First request for this (peer, block) opens the coalescing window; the
    // flush at its close answers everything that accumulated.
    if (fresh)
        network_.defer(config_.coalesce_window_ns, [this, key] { flush(key); });
}

void ProofServer::flush(const PendingKey& key) {
    auto node = pending_.extract(key);
    if (node.empty()) return;
    std::vector<ProofRequest>& requests = node.mapped();

    obs::ScopedSpan span("proofsrv.flush", "proofsrv");
    span.set_value(static_cast<std::int64_t>(requests.size()));

    util::Stopwatch sw;
    const std::uint64_t rebuilds_before = stats_.rebuilds;
    const std::shared_ptr<const BlockProofs> proofs = resolve(key.block_hash);

    ProofMsg reply;
    reply.block_hash = key.block_hash;
    reply.items.reserve(requests.size());
    for (const ProofRequest& req : requests)
        reply.items.push_back(serve_one(proofs.get(), req));
    const util::Nanoseconds measured = sw.elapsed_ns();
    const bool rebuilt = stats_.rebuilds != rebuilds_before;
    const ProofCostModel& model = config_.cost_model;
    // The charge to the simulated clock: measured wall time, or the
    // deterministic model when the caller asked for reproducible runs.
    const netsim::SimTime elapsed =
        model.enabled
            ? model.per_batch_ns +
                  model.per_item_ns * static_cast<netsim::SimTime>(requests.size()) +
                  (rebuilt && proofs ? model.per_leaf_build_ns *
                                           static_cast<netsim::SimTime>(
                                               proofs->tree.leaf_count())
                                     : 0)
            : measured;

    auto& metrics = ProofSrvMetrics::get();
    metrics.batches.inc();
    metrics.batch_size.observe(requests.size());
    metrics.extract_ns.observe(static_cast<std::uint64_t>(measured));
    for (const ProofItem& item : reply.items)
        if (item.status != ProofStatus::kOk) metrics.errors.inc();
    ++stats_.batches;

    util::Bytes wire = encode_message(Message{std::move(reply)});
    metrics.reply_bytes.inc(wire.size());
    // Charge the measured assembly time to the simulated clock on a
    // single-threaded serving core: a flush due while an earlier one is
    // still being assembled queues behind it. This is how per-query rebuild
    // cost compounds into queueing delay under load, exactly like slow
    // validation in ProtocolNode turns into slow propagation.
    const netsim::SimTime finish =
        std::max(network_.now(), busy_until_) + elapsed;
    busy_until_ = finish;
    const netsim::SimTime serve = finish - network_.now();
    stats_.serve_ns.push_back(serve);
    metrics.serve_ns.observe(static_cast<std::uint64_t>(serve));
    const EndpointId peer = key.peer;
    network_.defer(serve, [this, peer, wire = std::move(wire)]() mutable {
        network_.send(id_, peer, std::move(wire));
    });
}

std::shared_ptr<const BlockProofs> ProofServer::resolve(
    const crypto::Hash256& block_hash) {
    if (config_.cache_enabled) {
        if (auto cached = cache_.lookup(block_hash)) return cached;
    }
    const std::optional<std::uint32_t> height = source_.height_of(block_hash);
    if (!height) return nullptr;
    const core::EbvBlock* block = source_.block_at(*height);
    if (block == nullptr) return nullptr;

    obs::ScopedSpan span("proofsrv.build", "proofsrv");
    span.set_value(static_cast<std::int64_t>(*height));
    util::Stopwatch sw;
    auto proofs = BlockProofs::build(*block, *height);
    ProofSrvMetrics::get().build_ns.observe(static_cast<std::uint64_t>(sw.elapsed_ns()));
    ProofSrvMetrics::get().rebuilds.inc();
    ++stats_.rebuilds;
    if (config_.cache_enabled) cache_.insert(block_hash, proofs);
    return proofs;
}

ProofItem ProofServer::serve_one(const BlockProofs* proofs,
                                 const ProofRequest& req) const {
    ProofItem item;
    item.kind = req.kind;
    item.txid = req.txid;
    item.out_index = req.out_index;
    if (proofs == nullptr) {
        item.status = ProofStatus::kUnknownBlock;
        return item;
    }
    item.height = proofs->height;
    const auto leaf_it = proofs->txid_to_leaf.find(req.txid);
    if (leaf_it == proofs->txid_to_leaf.end()) {
        item.status = ProofStatus::kUnknownTx;
        return item;
    }
    const std::uint32_t leaf = leaf_it->second;
    if (req.kind == ProofKind::kInput && req.out_index >= proofs->output_counts[leaf]) {
        item.status = ProofStatus::kBadIndex;
        return item;
    }
    item.status = ProofStatus::kOk;
    item.position = proofs->stake_positions[leaf] +
                    (req.kind == ProofKind::kInput ? req.out_index : 0);
    item.els = proofs->tidy_txs[leaf];
    item.mbr = proofs->tree.branch(leaf);
    return item;
}

// ---- ProofClient -----------------------------------------------------------

ProofClient::ProofClient(
    SimNetwork& network, netsim::Region region, EndpointId server,
    std::function<std::optional<crypto::Hash256>(const crypto::Hash256&)> root_of)
    : network_(network), server_(server), root_of_(std::move(root_of)) {
    id_ = network_.add_endpoint(
        region, [this](EndpointId from, const util::Bytes& wire) { on_wire(from, wire); });
}

void ProofClient::query(const crypto::Hash256& block_hash,
                        std::vector<ProofRequest> requests) {
    for (const ProofRequest& req : requests) sent_at_[req.txid] = network_.now();
    stats_.requests_sent += requests.size();
    GetProofMsg m;
    m.block_hash = block_hash;
    m.requests = std::move(requests);
    network_.send(id_, server_, encode_message(Message{std::move(m)}));
}

void ProofClient::on_wire(EndpointId, const util::Bytes& wire) {
    std::size_t offset = 0;
    while (offset < wire.size()) {
        auto decoded = decode_message(util::ByteSpan(wire).subspan(offset));
        if (!decoded) return;
        if (const auto* proof = std::get_if<ProofMsg>(&decoded->first)) on_proof(*proof);
        offset += decoded->second;
    }
}

void ProofClient::on_proof(const ProofMsg& m) {
    const std::optional<crypto::Hash256> expected_root = root_of_(m.block_hash);
    for (const ProofItem& item : m.items) {
        const auto sent = sent_at_.find(item.txid);
        if (sent != sent_at_.end()) {
            stats_.latencies_ns.push_back(network_.now() - sent->second);
            sent_at_.erase(sent);
        }
        if (item.status != ProofStatus::kOk) {
            ++stats_.items_error;
            continue;
        }
        // The client-side EV check: the served ELs must hash to a leaf that
        // folds through the served MBr to the root the header committed to.
        const crypto::Hash256 leaf =
            crypto::Hash256::from_span(crypto::double_sha256(item.els));
        const bool ok = expected_root.has_value() &&
                        item.txid == leaf &&
                        crypto::fold_branch(leaf, item.mbr) == *expected_root;
        if (ok)
            ++stats_.items_ok;
        else
            ++stats_.verify_failures;
    }
}

}  // namespace ebv::net
