// net::ProofServer — the proof-serving tier for light clients.
//
// A Dietcoin-style light client validates a shard of the chain without
// storing it: for each input it needs the paper's self-proving package —
// the previous tidy transaction (ELs), its Merkle branch (MBr), and the
// stake position — which a full node can derive from any block it stores.
// ProofServer is that full-node role, factored out of the sync protocol:
// it answers getproof batches over the simulated transport, backed by a
// ProofCache so a hot block's tree is hashed once and every branch after
// that is extracted hash-free.
//
// Request handling is *coalesced*: requests for the same block arriving
// from one peer within a short window are answered with a single proof
// frame, amortizing the frame overhead and (on a cold block) the tree
// build across the batch — the server-side mirror of the paper's
// observation that proof cost should be paid per block, not per input.
//
// Metrics (ebv.proofsrv.*) and tracer spans cover queries, batch sizes,
// cache behavior, extraction time, and reply bytes; see
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "net/proof_cache.hpp"
#include "net/transport.hpp"

namespace ebv::net {

/// What the proof server needs from a chain: hash → height resolution and
/// access to stored EBV blocks.
class ProofSource {
public:
    virtual ~ProofSource() = default;

    /// Height of the block with this header hash, if the chain has it.
    [[nodiscard]] virtual std::optional<std::uint32_t> height_of(
        const crypto::Hash256& block_hash) const = 0;
    /// The block at `height`; nullptr if out of range.
    [[nodiscard]] virtual const core::EbvBlock* block_at(std::uint32_t height) const = 0;
};

/// Deterministic serving-cost model. By default the simulated clock is
/// charged the *measured* wall time of each flush — honest, but µs-scale
/// assembly times carry timer noise that makes gated bench ratios flaky.
/// With `enabled` the clock is charged a modeled cost derived from the
/// deterministic work counts instead (constants calibrated against the
/// measured ebv.proofsrv.build_ns / extract_ns histograms), so a sim run
/// is bit-reproducible. The wall-time histograms keep recording real time
/// either way.
struct ProofCostModel {
    bool enabled = false;
    netsim::SimTime per_batch_ns = 500;        ///< flush fixed overhead
    netsim::SimTime per_item_ns = 250;         ///< lookup + branch copy + encode
    netsim::SimTime per_leaf_build_ns = 150;   ///< serialize + double-SHA256
};

struct ProofServerConfig {
    /// false = rebuild-per-query baseline: every flush rebuilds the block's
    /// tree and the cache is bypassed entirely (fig19's comparison mode).
    bool cache_enabled = true;
    /// Requests for the same block arriving within this window are answered
    /// by one proof frame.
    netsim::SimTime coalesce_window_ns = 200'000;  // 200 us
    ProofCostModel cost_model;
};

struct ProofServerStats {
    std::uint64_t queries = 0;   ///< individual proof requests
    std::uint64_t batches = 0;   ///< proof frames sent
    std::uint64_t rebuilds = 0;  ///< BlockProofs::build invocations
    /// Per-batch serving latency (queue wait + assembly, simulated ns): the
    /// time from a batch's flush becoming due to its reply leaving the
    /// server. The server is modelled single-threaded, so under load this
    /// is where rebuild-per-query cost compounds into queueing delay.
    std::vector<netsim::SimTime> serve_ns;
};

class ProofServer {
public:
    ProofServer(SimNetwork& network, netsim::Region region, ProofSource& source,
                ProofCache& cache, ProofServerConfig config = {},
                std::string name = "proofsrv");

    [[nodiscard]] EndpointId id() const { return id_; }
    [[nodiscard]] const ProofServerStats& stats() const { return stats_; }

private:
    /// Coalescing key: one pending reply per (peer, block).
    struct PendingKey {
        EndpointId peer;
        crypto::Hash256 block_hash;

        friend bool operator<(const PendingKey& a, const PendingKey& b) {
            if (a.peer != b.peer) return a.peer < b.peer;
            return std::memcmp(a.block_hash.bytes().data(), b.block_hash.bytes().data(),
                               32) < 0;
        }
    };

    void on_wire(EndpointId from, const util::Bytes& wire);
    void enqueue(EndpointId from, const GetProofMsg& m);
    void flush(const PendingKey& key);
    /// Resolve (and on miss prepare) the proof material for a block; nullptr
    /// for an unknown hash.
    std::shared_ptr<const BlockProofs> resolve(const crypto::Hash256& block_hash);
    ProofItem serve_one(const BlockProofs* proofs, const ProofRequest& req) const;

    SimNetwork& network_;
    ProofSource& source_;
    ProofCache& cache_;
    ProofServerConfig config_;
    std::string name_;
    EndpointId id_ = 0;
    /// std::map keeps flush order deterministic across runs.
    std::map<PendingKey, std::vector<ProofRequest>> pending_;
    /// Simulated time until which the (single-threaded) serving core is
    /// occupied; flushes due earlier queue behind it.
    netsim::SimTime busy_until_ = 0;
    ProofServerStats stats_;
};

// ---- simulated light client ------------------------------------------------

struct ProofClientStats {
    std::uint64_t requests_sent = 0;
    std::uint64_t items_ok = 0;
    std::uint64_t items_error = 0;      ///< non-kOk status replies
    std::uint64_t verify_failures = 0;  ///< kOk items whose branch fold failed
    /// Simulated request → verified-reply latency, one sample per request.
    std::vector<netsim::SimTime> latencies_ns;
};

/// Dietcoin-style light client: fires getproof batches at a server and
/// *verifies* every reply — double-SHA256 of the received ELs folded
/// through the received MBr must equal the expected Merkle root the client
/// already holds from the block header.
class ProofClient {
public:
    /// `root_of` maps a block hash to the Merkle root the client trusts
    /// (from its header chain); queries against unknown hashes verify as
    /// errors.
    ProofClient(SimNetwork& network, netsim::Region region, EndpointId server,
                std::function<std::optional<crypto::Hash256>(const crypto::Hash256&)>
                    root_of);

    /// Send one getproof for `requests` against `block_hash` (now, in sim
    /// time). Latency is recorded per request when its proof item arrives.
    void query(const crypto::Hash256& block_hash, std::vector<ProofRequest> requests);

    [[nodiscard]] EndpointId id() const { return id_; }
    [[nodiscard]] const ProofClientStats& stats() const { return stats_; }

private:
    void on_wire(EndpointId from, const util::Bytes& wire);
    void on_proof(const ProofMsg& m);

    SimNetwork& network_;
    EndpointId server_;
    std::function<std::optional<crypto::Hash256>(const crypto::Hash256&)> root_of_;
    EndpointId id_ = 0;
    /// Outstanding request send-times keyed by txid (clients here never have
    /// two in-flight requests for one transaction).
    std::unordered_map<crypto::Hash256, netsim::SimTime, crypto::Hash256Hasher>
        sent_at_;
    ProofClientStats stats_;
};

}  // namespace ebv::net
