// The sync/relay protocol engine: handshake, header-first IBD, inventory
// gossip, block download, and orphan handling — shared by every node type
// via the ChainBackend interface (Bitcoin-format node, EBV-format node,
// and both halves of the intermediary).
//
// Protocol flow:
//   connect:  A --version--> B, B --version+verack--> A, A --verack--> B
//   IBD:      behind peer? --getheaders--> ... <--headers-- then batched
//             --getdata--> / <--block--; blocks validate (charging the
//             validator's measured time to the simulated clock) and connect
//             in order; early arrivals wait in an orphan buffer.
//   relay:    a newly connected block is announced with --inv--> to every
//             other handshaked peer; unknown inv triggers --getdata-->.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "net/message.hpp"
#include "net/transport.hpp"
#include "util/stopwatch.hpp"

namespace ebv::net {

/// What the protocol engine needs from a chain implementation.
class ChainBackend {
public:
    virtual ~ChainBackend() = default;

    [[nodiscard]] virtual ChainFormat format() const = 0;
    /// Number of connected blocks (next height).
    [[nodiscard]] virtual std::uint32_t block_count() const = 0;
    /// Hash of the block at `height` (its header hash), if connected.
    virtual std::optional<crypto::Hash256> block_hash_at(std::uint32_t height) const = 0;
    /// 80-byte header serialization at `height`.
    virtual std::optional<util::Bytes> header_at(std::uint32_t height) const = 0;
    /// Serialized block body by hash (only blocks this node stores).
    virtual std::optional<util::Bytes> block_by_hash(const crypto::Hash256& hash) const = 0;
    /// The prev-hash linkage of a serialized block, without validating.
    virtual std::optional<crypto::Hash256> peek_prev_hash(
        const util::Bytes& payload) const = 0;
    virtual std::optional<crypto::Hash256> peek_hash(const util::Bytes& payload) const = 0;
    /// Validate + connect the next block. On success reports the validation
    /// cost to charge to the simulated clock; on failure returns nullopt.
    virtual std::optional<util::Nanoseconds> accept_block(const util::Bytes& payload) = 0;
};

struct ProtocolStats {
    std::uint64_t messages_in = 0;
    std::uint64_t messages_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t blocks_connected = 0;
    std::uint64_t blocks_rejected = 0;
    /// Simulated time at which each height connected (propagation metric).
    std::vector<netsim::SimTime> connect_times;
};

class ProtocolNode {
public:
    /// Registers an endpoint on the network; `name` is for diagnostics.
    ProtocolNode(SimNetwork& network, netsim::Region region, ChainBackend& backend,
                 std::string name);

    /// Initiate a connection (handshake) to a peer endpoint.
    void connect_to(EndpointId peer);

    /// A block was produced/acquired locally (mined, or bridged from
    /// another chain format): mark it known and announce it to all peers.
    void notify_local_block(const crypto::Hash256& hash);

    [[nodiscard]] EndpointId id() const { return id_; }
    [[nodiscard]] const ProtocolStats& stats() const { return stats_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    struct PeerState {
        bool version_received = false;
        bool handshaken = false;
        std::uint32_t best_height = 0;
        // Header-sync bookkeeping (we are the downloader).
        std::deque<crypto::Hash256> pending_blocks;  ///< hashes to request
        std::uint32_t inflight = 0;
    };

    static constexpr std::uint32_t kMaxInflight = 16;
    static constexpr std::uint32_t kHeaderBatch = 500;

    void on_wire(EndpointId from, const util::Bytes& wire);
    void dispatch(EndpointId from, const Message& m);

    void handle(EndpointId from, const VersionMsg& m);
    void handle(EndpointId from, const VerAckMsg& m);
    void handle(EndpointId from, const GetHeadersMsg& m);
    void handle(EndpointId from, const HeadersMsg& m);
    void handle(EndpointId from, const InvMsg& m);
    void handle(EndpointId from, const GetDataMsg& m);
    void handle(EndpointId from, const BlockMsg& m);
    void handle(EndpointId from, const TxMsg& m);
    void handle(EndpointId from, const PingMsg& m);
    void handle(EndpointId from, const PongMsg& m);
    void handle(EndpointId from, const GetProofMsg& m);
    void handle(EndpointId from, const ProofMsg& m);

    void send(EndpointId to, const Message& m);
    void maybe_start_sync(EndpointId peer);
    void request_more_blocks(EndpointId peer);
    void try_connect_pending();
    void announce_block(const crypto::Hash256& hash, EndpointId except);

    SimNetwork& network_;
    EndpointId id_;
    ChainBackend& backend_;
    std::string name_;
    std::uint64_t nonce_;

    std::unordered_map<EndpointId, PeerState> peers_;
    /// Blocks received but not yet connectable, keyed by their prev hash.
    std::unordered_map<crypto::Hash256, util::Bytes, crypto::Hash256Hasher> orphans_;
    /// Hashes we have seen (connected or inflight) — dedupes inv storms.
    std::unordered_set<crypto::Hash256, crypto::Hash256Hasher> known_;
    ProtocolStats stats_;
};

}  // namespace ebv::net
