// Wire protocol for node-to-node sync: framed, checksummed messages in the
// style of the Bitcoin P2P protocol, carrying handshakes, header sync,
// inventory announcements, and block/transaction payloads. Block payloads
// are format-tagged opaque bytes so the same protocol carries both
// Bitcoin-format and EBV-format chains (the paper's intermediary speaks
// both sides).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "crypto/hash_types.hpp"
#include "util/result.hpp"
#include "util/serialize.hpp"

namespace ebv::net {

enum class Command : std::uint8_t {
    kVersion = 1,
    kVerAck = 2,
    kGetHeaders = 3,
    kHeaders = 4,
    kInv = 5,
    kGetData = 6,
    kBlock = 7,
    kTx = 8,
    kPing = 9,
    kPong = 10,
};

[[nodiscard]] const char* to_string(Command c);

/// Which chain encoding a block/tx payload uses.
enum class ChainFormat : std::uint8_t {
    kBitcoin = 0,
    kEbv = 1,
};

struct VersionMsg {
    std::uint32_t protocol = 1;
    ChainFormat format = ChainFormat::kBitcoin;
    std::uint32_t best_height = 0;
    std::uint64_t nonce = 0;  ///< self-connection detection
};

struct VerAckMsg {};

/// Request headers after the given locator (we use a plain height, chains
/// here never reorg).
struct GetHeadersMsg {
    std::uint32_t from_height = 0;
    std::uint32_t max_count = 2000;
};

struct HeadersMsg {
    std::uint32_t start_height = 0;
    std::vector<util::Bytes> headers;  ///< 80-byte serializations
};

enum class InvType : std::uint8_t { kBlock = 0, kTx = 1 };

struct InvItem {
    InvType type = InvType::kBlock;
    crypto::Hash256 hash;

    friend bool operator==(const InvItem&, const InvItem&) = default;
};

struct InvMsg {
    std::vector<InvItem> items;
};

struct GetDataMsg {
    std::vector<InvItem> items;
};

struct BlockMsg {
    ChainFormat format = ChainFormat::kBitcoin;
    std::uint32_t height = 0;  ///< hint; receivers re-derive from linkage
    util::Bytes payload;       ///< serialized chain::Block or core::EbvBlock
};

struct TxMsg {
    ChainFormat format = ChainFormat::kBitcoin;
    util::Bytes payload;
};

struct PingMsg {
    std::uint64_t nonce = 0;
};

struct PongMsg {
    std::uint64_t nonce = 0;
};

using Message = std::variant<VersionMsg, VerAckMsg, GetHeadersMsg, HeadersMsg, InvMsg,
                             GetDataMsg, BlockMsg, TxMsg, PingMsg, PongMsg>;

[[nodiscard]] Command command_of(const Message& m);

/// Frame: [magic u32][command u8][length u32][checksum u32][payload].
/// Checksum is the first 4 bytes of double-SHA256(payload).
util::Bytes encode_message(const Message& m);

enum class WireError {
    kBadMagic,
    kTruncated,
    kBadChecksum,
    kUnknownCommand,
    kMalformedPayload,
    kOversized,
};

[[nodiscard]] const char* to_string(WireError e);

/// Decode exactly one framed message from the front of `wire`; on success
/// also reports how many bytes were consumed (so streams can be chunked).
util::Result<std::pair<Message, std::size_t>, WireError> decode_message(
    util::ByteSpan wire);

}  // namespace ebv::net
