// Wire protocol for node-to-node sync: framed, checksummed messages in the
// style of the Bitcoin P2P protocol, carrying handshakes, header sync,
// inventory announcements, and block/transaction payloads. Block payloads
// are format-tagged opaque bytes so the same protocol carries both
// Bitcoin-format and EBV-format chains (the paper's intermediary speaks
// both sides).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "crypto/hash_types.hpp"
#include "crypto/merkle.hpp"
#include "util/result.hpp"
#include "util/serialize.hpp"

namespace ebv::net {

enum class Command : std::uint8_t {
    kVersion = 1,
    kVerAck = 2,
    kGetHeaders = 3,
    kHeaders = 4,
    kInv = 5,
    kGetData = 6,
    kBlock = 7,
    kTx = 8,
    kPing = 9,
    kPong = 10,
    kGetProof = 11,
    kProof = 12,
};

[[nodiscard]] const char* to_string(Command c);

/// Which chain encoding a block/tx payload uses.
enum class ChainFormat : std::uint8_t {
    kBitcoin = 0,
    kEbv = 1,
};

struct VersionMsg {
    std::uint32_t protocol = 1;
    ChainFormat format = ChainFormat::kBitcoin;
    std::uint32_t best_height = 0;
    std::uint64_t nonce = 0;  ///< self-connection detection
};

struct VerAckMsg {};

/// Request headers after the given locator (we use a plain height, chains
/// here never reorg).
struct GetHeadersMsg {
    std::uint32_t from_height = 0;
    std::uint32_t max_count = 2000;
};

struct HeadersMsg {
    std::uint32_t start_height = 0;
    std::vector<util::Bytes> headers;  ///< 80-byte serializations
};

enum class InvType : std::uint8_t { kBlock = 0, kTx = 1 };

struct InvItem {
    InvType type = InvType::kBlock;
    crypto::Hash256 hash;

    friend bool operator==(const InvItem&, const InvItem&) = default;
};

struct InvMsg {
    std::vector<InvItem> items;
};

struct GetDataMsg {
    std::vector<InvItem> items;
};

struct BlockMsg {
    ChainFormat format = ChainFormat::kBitcoin;
    std::uint32_t height = 0;  ///< hint; receivers re-derive from linkage
    util::Bytes payload;       ///< serialized chain::Block or core::EbvBlock
};

struct TxMsg {
    ChainFormat format = ChainFormat::kBitcoin;
    util::Bytes payload;
};

struct PingMsg {
    std::uint64_t nonce = 0;
};

struct PongMsg {
    std::uint64_t nonce = 0;
};

// ---- proof serving (docs/PROOF_SERVING.md) ---------------------------------
//
// Light clients (Dietcoin-style shard/partial verifiers) ask a full node for
// the self-proving input package EBV blocks are built from: the tidy
// transaction (ELs), its Merkle branch (MBr), and the stake position. A
// getproof carries a batch of requests against one block; the server answers
// with one proof frame per block, coalescing requests that arrive close
// together (net::ProofServer).

/// Granularity of a single proof request.
enum class ProofKind : std::uint8_t {
    kTx = 0,     ///< prove txid ∈ block: ELs + MBr + stake position
    kInput = 1,  ///< additionally pin an output: out_index range-checked and
                 ///< the reply's position is the absolute (block-wide) stake
                 ///< position of that output — the UV lookup key
};

struct ProofRequest {
    ProofKind kind = ProofKind::kTx;
    crypto::Hash256 txid;         ///< tidy-transaction hash (the Merkle leaf)
    std::uint16_t out_index = 0;  ///< only meaningful for kInput

    friend bool operator==(const ProofRequest&, const ProofRequest&) = default;
};

struct GetProofMsg {
    crypto::Hash256 block_hash;
    std::vector<ProofRequest> requests;
};

/// Per-request outcome. Error replies echo the request with empty proof
/// fields so clients can correlate without a request id.
enum class ProofStatus : std::uint8_t {
    kOk = 0,
    kUnknownBlock = 1,  ///< block_hash not in the server's chain
    kUnknownTx = 2,     ///< txid not a leaf of that block
    kBadIndex = 3,      ///< kInput out_index >= the transaction's output count
};

[[nodiscard]] const char* to_string(ProofStatus s);

struct ProofItem {
    ProofStatus status = ProofStatus::kOk;
    ProofKind kind = ProofKind::kTx;
    crypto::Hash256 txid;         ///< echoed from the request
    std::uint16_t out_index = 0;  ///< echoed from the request
    std::uint32_t height = 0;     ///< height of the proven block
    /// kTx: the transaction's stake position (its first output's block-wide
    /// index); kInput: the absolute position of the requested output.
    std::uint32_t position = 0;
    util::Bytes els;           ///< serialized TidyTransaction; empty on error
    crypto::MerkleBranch mbr;  ///< proves double-SHA256(els) ∈ block; empty on error

    friend bool operator==(const ProofItem&, const ProofItem&) = default;
};

struct ProofMsg {
    crypto::Hash256 block_hash;
    std::vector<ProofItem> items;
};

using Message = std::variant<VersionMsg, VerAckMsg, GetHeadersMsg, HeadersMsg, InvMsg,
                             GetDataMsg, BlockMsg, TxMsg, PingMsg, PongMsg, GetProofMsg,
                             ProofMsg>;

[[nodiscard]] Command command_of(const Message& m);

/// Frame: [magic u32][command u8][length u32][checksum u32][payload].
/// Checksum is the first 4 bytes of double-SHA256(payload).
util::Bytes encode_message(const Message& m);

enum class WireError {
    kBadMagic,
    kTruncated,
    kBadChecksum,
    kUnknownCommand,
    kMalformedPayload,
    kOversized,
};

[[nodiscard]] const char* to_string(WireError e);

/// Decode exactly one framed message from the front of `wire`; on success
/// also reports how many bytes were consumed (so streams can be chunked).
util::Result<std::pair<Message, std::size_t>, WireError> decode_message(
    util::ByteSpan wire);

}  // namespace ebv::net
