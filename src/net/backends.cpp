#include "net/backends.hpp"

namespace ebv::net {

namespace {

template <typename BlockT>
util::Bytes serialize_block(const BlockT& block) {
    util::Writer w;
    block.serialize(w);
    return w.take();
}

std::optional<chain::BlockHeader> peek_header(const util::Bytes& payload) {
    util::Reader r(payload);
    auto header = chain::BlockHeader::deserialize(r);
    if (!header) return std::nullopt;
    return *header;
}

}  // namespace

// ------------------------------------------------------------- Bitcoin ----

std::optional<crypto::Hash256> BitcoinChainBackend::block_hash_at(
    std::uint32_t height) const {
    const auto* header = node_.headers().at(height);
    if (header == nullptr) return std::nullopt;
    return header->hash();
}

std::optional<util::Bytes> BitcoinChainBackend::header_at(std::uint32_t height) const {
    const auto* header = node_.headers().at(height);
    if (header == nullptr) return std::nullopt;
    util::Writer w(chain::BlockHeader::kSerializedSize);
    header->serialize(w);
    return w.take();
}

std::optional<util::Bytes> BitcoinChainBackend::block_by_hash(
    const crypto::Hash256& hash) const {
    const auto it = by_hash_.find(hash);
    if (it == by_hash_.end()) return std::nullopt;
    return it->second;
}

std::optional<crypto::Hash256> BitcoinChainBackend::peek_prev_hash(
    const util::Bytes& payload) const {
    const auto header = peek_header(payload);
    if (!header) return std::nullopt;
    return header->prev_hash;
}

std::optional<crypto::Hash256> BitcoinChainBackend::peek_hash(
    const util::Bytes& payload) const {
    const auto header = peek_header(payload);
    if (!header) return std::nullopt;
    return header->hash();
}

std::optional<util::Nanoseconds> BitcoinChainBackend::accept_block(
    const util::Bytes& payload) {
    util::Reader r(payload);
    auto block = chain::Block::deserialize(r);
    if (!block) return std::nullopt;

    auto result = node_.submit_block(*block);
    if (!result) return std::nullopt;

    by_hash_.emplace(block->header.hash(), payload);
    const util::Nanoseconds cost = result->total().total_ns();
    validation_ns_ += cost;
    return cost;
}

void BitcoinChainBackend::seed_block(const chain::Block& block) {
    auto result = node_.submit_block(block);
    EBV_EXPECTS(result.has_value());
    by_hash_.emplace(block.header.hash(), serialize_block(block));
}

// ----------------------------------------------------------------- EBV ----

std::optional<crypto::Hash256> EbvChainBackend::block_hash_at(
    std::uint32_t height) const {
    const auto* header = node_.headers().at(height);
    if (header == nullptr) return std::nullopt;
    return header->hash();
}

std::optional<util::Bytes> EbvChainBackend::header_at(std::uint32_t height) const {
    const auto* header = node_.headers().at(height);
    if (header == nullptr) return std::nullopt;
    util::Writer w(chain::BlockHeader::kSerializedSize);
    header->serialize(w);
    return w.take();
}

std::optional<util::Bytes> EbvChainBackend::block_by_hash(
    const crypto::Hash256& hash) const {
    const auto it = by_hash_.find(hash);
    if (it == by_hash_.end()) return std::nullopt;
    return it->second;
}

std::optional<crypto::Hash256> EbvChainBackend::peek_prev_hash(
    const util::Bytes& payload) const {
    const auto header = peek_header(payload);
    if (!header) return std::nullopt;
    return header->prev_hash;
}

std::optional<crypto::Hash256> EbvChainBackend::peek_hash(
    const util::Bytes& payload) const {
    const auto header = peek_header(payload);
    if (!header) return std::nullopt;
    return header->hash();
}

std::optional<util::Nanoseconds> EbvChainBackend::accept_block(
    const util::Bytes& payload) {
    util::Reader r(payload);
    auto block = core::EbvBlock::deserialize(r);
    if (!block) return std::nullopt;

    auto result = node_.submit_block(*block);
    if (!result) return std::nullopt;

    by_hash_.emplace(block->header.hash(), payload);
    const util::Nanoseconds cost = result->total().total_ns();
    validation_ns_ += cost;
    return cost;
}

void EbvChainBackend::seed_block(const core::EbvBlock& block) {
    auto result = node_.submit_block(block);
    EBV_EXPECTS(result.has_value());
    by_hash_.emplace(block.header.hash(), serialize_block(block));
}

// -------------------------------------------------------- Intermediary ----

IntermediaryBridge::IntermediaryBridge(SimNetwork& network, netsim::Region region,
                                       const chain::ChainParams& params) {
    btc_options_.params = params;
    btc_node_ = std::make_unique<chain::BitcoinNode>(btc_options_);
    btc_backend_ = std::make_unique<BitcoinChainBackend>(*btc_node_);
    upstream_backend_ = std::make_unique<ConvertingBackend>(*this);
    upstream_node_ = std::make_unique<ProtocolNode>(network, region, *upstream_backend_,
                                                    "intermediary-upstream");

    ebv_options_.params = params;
    ebv_node_ = std::make_unique<core::EbvNode>(ebv_options_);
    downstream_backend_ = std::make_unique<EbvChainBackend>(*ebv_node_);
    downstream_node_ = std::make_unique<ProtocolNode>(network, region,
                                                      *downstream_backend_,
                                                      "intermediary-downstream");
}

std::optional<util::Nanoseconds> IntermediaryBridge::ConvertingBackend::accept_block(
    const util::Bytes& payload) {
    // Validate + store like a baseline node first.
    const auto cost = owner_.btc_backend_->accept_block(payload);
    if (!cost) return std::nullopt;

    // Reconstruct the block (paper §VI-A) and feed the downstream chain.
    util::Reader r(payload);
    auto block = chain::Block::deserialize(r);
    EBV_ASSERT(block.has_value());
    auto converted = owner_.converter_.convert_block(*block);
    if (!converted) return std::nullopt;
    const crypto::Hash256 ebv_hash = converted->header.hash();
    owner_.downstream_backend_->seed_block(*converted);
    owner_.downstream_node_->notify_local_block(ebv_hash);
    return cost;
}

}  // namespace ebv::net
