#include "net/proof_cache.hpp"

#include <cstdlib>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace ebv::net {

namespace {

struct CacheMetrics {
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& evictions;
    obs::Gauge& resident_bytes;

    static CacheMetrics& get() {
        static CacheMetrics m{
            obs::Registry::global().counter("ebv.proofsrv.cache_hits"),
            obs::Registry::global().counter("ebv.proofsrv.cache_misses"),
            obs::Registry::global().counter("ebv.proofsrv.cache_evictions"),
            obs::Registry::global().gauge("ebv.proofsrv.cache_bytes"),
        };
        return m;
    }
};

}  // namespace

std::shared_ptr<const BlockProofs> BlockProofs::build(const core::EbvBlock& block,
                                                      std::uint32_t height) {
    auto proofs = std::make_shared<BlockProofs>();
    proofs->height = height;
    const std::size_t n = block.txs.size();
    proofs->tidy_txs.reserve(n);
    proofs->output_counts.reserve(n);
    proofs->stake_positions.reserve(n);
    proofs->txid_to_leaf.reserve(n);

    std::vector<crypto::Hash256> leaves;
    leaves.reserve(n);
    for (const auto& tx : block.txs) {
        const core::TidyTransaction tidy = tx.tidy();
        util::Writer w(tidy.serialized_size());
        tidy.serialize(w);
        // The leaf is double-SHA256 of the tidy serialization
        // (TidyTransaction::leaf_hash); hashing the bytes we just wrote
        // avoids a second serialization pass.
        leaves.push_back(crypto::Hash256::from_span(crypto::double_sha256(w.data())));
        proofs->tidy_txs.push_back(w.take());
        proofs->output_counts.push_back(static_cast<std::uint32_t>(tx.outputs.size()));
        proofs->stake_positions.push_back(tidy.stake_position);
    }
    for (std::uint32_t i = 0; i < leaves.size(); ++i)
        proofs->txid_to_leaf.emplace(leaves[i], i);
    proofs->tree = crypto::MerkleTreeCache(leaves);
    return proofs;
}

std::size_t BlockProofs::memory_bytes() const {
    std::size_t total = sizeof *this + tree.memory_bytes();
    for (const auto& bytes : tidy_txs) total += bytes.capacity() + sizeof(util::Bytes);
    total += output_counts.capacity() * sizeof(std::uint32_t);
    total += stake_positions.capacity() * sizeof(std::uint32_t);
    // Hash map entries: key + value + node/bucket overhead (~2 pointers).
    total += txid_to_leaf.size() *
             (sizeof(crypto::Hash256) + sizeof(std::uint32_t) + 2 * sizeof(void*));
    return total;
}

ProofCache::ProofCache(std::size_t budget_bytes) : lru_(budget_bytes) {
    lru_.set_eviction_handler([](const crypto::Hash256&,
                                 std::shared_ptr<const BlockProofs>&) {
        CacheMetrics::get().evictions.inc();
    });
}

std::shared_ptr<const BlockProofs> ProofCache::lookup(const crypto::Hash256& block_hash) {
    auto* entry = lru_.get(block_hash);
    if (entry == nullptr) {
        CacheMetrics::get().misses.inc();
        return nullptr;
    }
    CacheMetrics::get().hits.inc();
    return *entry;
}

void ProofCache::insert(const crypto::Hash256& block_hash,
                        std::shared_ptr<const BlockProofs> proofs) {
    const std::size_t cost = proofs->memory_bytes();
    lru_.put(block_hash, std::move(proofs), cost);
    CacheMetrics::get().resident_bytes.set(static_cast<std::int64_t>(lru_.total_cost()));
}

std::size_t ProofCache::budget_from_env() {
    if (const char* env = std::getenv("EBV_PROOF_CACHE_BYTES")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0') return static_cast<std::size_t>(v);
    }
    return 64u << 20;
}

}  // namespace ebv::net
