#include "net/protocol_node.hpp"

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace ebv::net {

namespace {

/// Wire/protocol metrics, aggregated across every ProtocolNode in the
/// process (the simulators run many nodes in one address space).
struct NetMetrics {
    obs::Counter& messages_in;
    obs::Counter& messages_out;
    obs::Counter& bytes_in;
    obs::Counter& bytes_out;
    obs::Counter& blocks_connected;
    obs::Counter& blocks_rejected;
    obs::Counter& frames_dropped;
    obs::Counter& orphans_stashed;
    obs::Histogram& pending_blocks;  ///< download-queue depth per request round

    static NetMetrics& get() {
        static NetMetrics m{
            obs::Registry::global().counter("net.messages_in"),
            obs::Registry::global().counter("net.messages_out"),
            obs::Registry::global().counter("net.bytes_in"),
            obs::Registry::global().counter("net.bytes_out"),
            obs::Registry::global().counter("net.blocks_connected"),
            obs::Registry::global().counter("net.blocks_rejected"),
            obs::Registry::global().counter("net.frames_dropped"),
            obs::Registry::global().counter("net.orphans_stashed"),
            obs::Registry::global().histogram(
                "net.sync.pending_blocks",
                obs::Histogram::exponential_bounds(1, 2.0, 16)),
        };
        return m;
    }
};

}  // namespace

ProtocolNode::ProtocolNode(SimNetwork& network, netsim::Region region,
                           ChainBackend& backend, std::string name)
    : network_(network), backend_(backend), name_(std::move(name)) {
    id_ = network_.add_endpoint(
        region, [this](EndpointId from, const util::Bytes& wire) { on_wire(from, wire); });
    nonce_ = 0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(id_) << 32);
    // Every already-connected block is known.
    for (std::uint32_t h = 0; h < backend_.block_count(); ++h) {
        if (auto hash = backend_.block_hash_at(h)) known_.insert(*hash);
    }
}

void ProtocolNode::connect_to(EndpointId peer) {
    peers_.try_emplace(peer);
    send(peer, VersionMsg{1, backend_.format(), backend_.block_count(), nonce_});
}

void ProtocolNode::notify_local_block(const crypto::Hash256& hash) {
    known_.insert(hash);
    announce_block(hash, id_);
}

void ProtocolNode::send(EndpointId to, const Message& m) {
    util::Bytes wire = encode_message(m);
    ++stats_.messages_out;
    stats_.bytes_out += wire.size();
    NetMetrics::get().messages_out.inc();
    NetMetrics::get().bytes_out.inc(wire.size());
    network_.send(id_, to, std::move(wire));
}

void ProtocolNode::on_wire(EndpointId from, const util::Bytes& wire) {
    ++stats_.messages_in;
    stats_.bytes_in += wire.size();
    NetMetrics::get().messages_in.inc();
    NetMetrics::get().bytes_in.inc(wire.size());

    std::size_t offset = 0;
    while (offset < wire.size()) {
        auto decoded = decode_message(util::ByteSpan(wire).subspan(offset));
        if (!decoded) {
            NetMetrics::get().frames_dropped.inc();
            EBV_LOG_WARN("%s: dropping frame from %u: %s", name_.c_str(), from,
                         to_string(decoded.error()));
            return;
        }
        dispatch(from, decoded->first);
        offset += decoded->second;
    }
}

void ProtocolNode::dispatch(EndpointId from, const Message& m) {
    std::visit([&](const auto& msg) { handle(from, msg); }, m);
}

// ---- handshake -------------------------------------------------------------

void ProtocolNode::handle(EndpointId from, const VersionMsg& m) {
    if (m.nonce == nonce_) return;  // self connection
    if (m.format != backend_.format()) {
        EBV_LOG_WARN("%s: peer %u speaks a different chain format", name_.c_str(), from);
        return;
    }

    auto [it, inserted] = peers_.try_emplace(from);
    PeerState& peer = it->second;
    peer.best_height = m.best_height;
    const bool knew_version = peer.version_received;
    peer.version_received = true;

    if (inserted || !knew_version) {
        // Respond with our version exactly once (responder path), then ack.
        if (inserted) {
            send(from, VersionMsg{1, backend_.format(), backend_.block_count(), nonce_});
        }
        send(from, VerAckMsg{});
    }
}

void ProtocolNode::handle(EndpointId from, const VerAckMsg&) {
    const auto it = peers_.find(from);
    if (it == peers_.end() || !it->second.version_received) return;
    if (it->second.handshaken) return;
    it->second.handshaken = true;
    EBV_LOG_DEBUG("%s: handshake complete with peer %u (best height %u)",
                  name_.c_str(), from, it->second.best_height);
    maybe_start_sync(from);

    // Tell the new peer about our tip: combined with the orphan-triggered
    // header re-sync this guarantees convergence even when block
    // announcements raced the handshake.
    const std::uint32_t count = backend_.block_count();
    if (count > 0) {
        if (const auto tip = backend_.block_hash_at(count - 1); tip) {
            send(from, InvMsg{{InvItem{InvType::kBlock, *tip}}});
        }
    }
}

void ProtocolNode::maybe_start_sync(EndpointId peer_id) {
    const PeerState& peer = peers_.at(peer_id);
    if (peer.best_height > backend_.block_count()) {
        EBV_LOG_DEBUG("%s: starting header sync from peer %u (%u -> %u)",
                      name_.c_str(), peer_id, backend_.block_count(),
                      peer.best_height);
        send(peer_id, GetHeadersMsg{backend_.block_count(), kHeaderBatch});
    }
}

// ---- header sync ------------------------------------------------------------

void ProtocolNode::handle(EndpointId from, const GetHeadersMsg& m) {
    HeadersMsg reply;
    reply.start_height = m.from_height;
    const std::uint32_t max = std::min(m.max_count, kHeaderBatch);
    for (std::uint32_t h = m.from_height;
         h < backend_.block_count() && reply.headers.size() < max; ++h) {
        if (auto header = backend_.header_at(h)) reply.headers.push_back(std::move(*header));
    }
    send(from, reply);
}

void ProtocolNode::handle(EndpointId from, const HeadersMsg& m) {
    const auto it = peers_.find(from);
    if (it == peers_.end() || !it->second.handshaken) return;
    PeerState& peer = it->second;

    std::uint32_t height = m.start_height;
    for (const auto& header_bytes : m.headers) {
        const crypto::Hash256 hash = crypto::hash256(header_bytes);
        if (height >= backend_.block_count() && !known_.count(hash)) {
            peer.pending_blocks.push_back(hash);
        }
        ++height;
    }
    request_more_blocks(from);

    // More headers may exist beyond this batch.
    if (m.headers.size() == kHeaderBatch && height < peer.best_height + 1) {
        send(from, GetHeadersMsg{height, kHeaderBatch});
    }
}

void ProtocolNode::request_more_blocks(EndpointId peer_id) {
    PeerState& peer = peers_.at(peer_id);
    if (!peer.pending_blocks.empty()) {
        NetMetrics::get().pending_blocks.observe(peer.pending_blocks.size());
    }
    GetDataMsg request;
    while (peer.inflight < kMaxInflight && !peer.pending_blocks.empty()) {
        const crypto::Hash256 hash = peer.pending_blocks.front();
        peer.pending_blocks.pop_front();
        if (known_.count(hash)) continue;
        known_.insert(hash);  // inflight
        request.items.push_back(InvItem{InvType::kBlock, hash});
        ++peer.inflight;
    }
    if (!request.items.empty()) send(peer_id, request);
}

// ---- inventory / data ------------------------------------------------------

void ProtocolNode::handle(EndpointId from, const InvMsg& m) {
    const auto it = peers_.find(from);
    if (it == peers_.end() || !it->second.handshaken) return;

    GetDataMsg request;
    for (const InvItem& item : m.items) {
        if (item.type != InvType::kBlock) continue;
        if (known_.count(item.hash)) continue;
        known_.insert(item.hash);
        request.items.push_back(item);
        ++it->second.inflight;
    }
    if (!request.items.empty()) send(from, request);
}

void ProtocolNode::handle(EndpointId from, const GetDataMsg& m) {
    for (const InvItem& item : m.items) {
        if (item.type != InvType::kBlock) continue;
        if (auto payload = backend_.block_by_hash(item.hash)) {
            send(from, BlockMsg{backend_.format(), 0, std::move(*payload)});
        }
    }
}

void ProtocolNode::handle(EndpointId from, const BlockMsg& m) {
    const auto it = peers_.find(from);
    if (it != peers_.end() && it->second.inflight > 0) --it->second.inflight;
    if (m.format != backend_.format()) return;

    const auto hash = backend_.peek_hash(m.payload);
    const auto prev = backend_.peek_prev_hash(m.payload);
    if (!hash || !prev) return;
    known_.insert(*hash);

    // Stash; try_connect_pending connects everything that now links up.
    orphans_[*prev] = m.payload;
    NetMetrics::get().orphans_stashed.inc();
    try_connect_pending();

    if (it != peers_.end()) {
        request_more_blocks(from);
        // Orphans left with nothing inflight mean we missed announcements
        // (e.g. they raced our handshake): re-sync headers to fill the gap.
        if (!orphans_.empty() && it->second.inflight == 0 &&
            it->second.pending_blocks.empty()) {
            send(from, GetHeadersMsg{backend_.block_count(), kHeaderBatch});
        }
    }
}

void ProtocolNode::try_connect_pending() {
    for (;;) {
        const std::uint32_t next = backend_.block_count();
        crypto::Hash256 tip;  // zero for genesis
        if (next > 0) {
            const auto tip_hash = backend_.block_hash_at(next - 1);
            if (!tip_hash) return;
            tip = *tip_hash;
        }
        const auto it = orphans_.find(tip);
        if (it == orphans_.end()) return;

        const util::Bytes payload = std::move(it->second);
        orphans_.erase(it);

        const auto cost = backend_.accept_block(payload);
        if (!cost) {
            ++stats_.blocks_rejected;
            NetMetrics::get().blocks_rejected.inc();
            EBV_LOG_DEBUG("%s: rejected block at height %u", name_.c_str(), next);
            continue;  // a later orphan may still fit
        }
        ++stats_.blocks_connected;
        NetMetrics::get().blocks_connected.inc();
        stats_.connect_times.push_back(network_.now());

        const auto hash = backend_.peek_hash(payload);
        // Validation costs simulated time: relay only after it elapses.
        network_.defer(*cost, [this, hash] {
            if (hash) announce_block(*hash, id_ /*no exception*/);
        });
    }
}

void ProtocolNode::announce_block(const crypto::Hash256& hash, EndpointId except) {
    for (const auto& [peer_id, peer] : peers_) {
        if (peer_id == except || !peer.handshaken) continue;
        send(peer_id, InvMsg{{InvItem{InvType::kBlock, hash}}});
    }
}

void ProtocolNode::handle(EndpointId, const TxMsg&) {
    // Transaction relay is not exercised by the reproduction's experiments.
}

void ProtocolNode::handle(EndpointId from, const PingMsg& m) {
    send(from, PongMsg{m.nonce});
}

void ProtocolNode::handle(EndpointId, const PongMsg&) {}

void ProtocolNode::handle(EndpointId, const GetProofMsg&) {
    // Proof serving runs on a dedicated tier (net::ProofServer); sync nodes
    // ignore stray proof traffic rather than treating it as a violation.
}

void ProtocolNode::handle(EndpointId, const ProofMsg&) {}

}  // namespace ebv::net
