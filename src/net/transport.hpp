// In-process simulated transport: endpoints exchange wire bytes over a
// discrete-event network with region-based latency and bandwidth. Nodes
// also charge their own processing (validation) time to the simulated
// clock, which is exactly how slow validation turns into slow propagation.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/latency.hpp"
#include "util/span.hpp"

namespace ebv::net {

using EndpointId = std::uint32_t;

class SimNetwork {
public:
    using Handler = std::function<void(EndpointId from, const util::Bytes& wire)>;

    explicit SimNetwork(std::uint64_t latency_seed = 11) : latency_(latency_seed) {}

    /// Register an endpoint in a region; its handler runs when bytes arrive.
    EndpointId add_endpoint(netsim::Region region, Handler handler) {
        const auto id = static_cast<EndpointId>(endpoints_.size());
        endpoints_.push_back(Endpoint{region, std::move(handler)});
        return id;
    }

    /// Queue bytes for delivery (latency = region RTT/2 + transfer time).
    /// Like TCP, each (from, to) link is an ordered stream: a message never
    /// overtakes an earlier one on the same link.
    void send(EndpointId from, EndpointId to, util::Bytes wire) {
        const netsim::SimTime delay =
            latency_.sample(endpoints_[from].region, endpoints_[to].region, wire.size());
        netsim::SimTime& last = last_delivery_[link_key(from, to)];
        const netsim::SimTime at = std::max(queue_.now() + delay, last);
        last = at;
        queue_.schedule(at, [this, from, to, wire = std::move(wire)]() mutable {
            endpoints_[to].handler(from, wire);
        });
    }

    /// Run fn after `delay` of simulated time (models processing cost).
    void defer(netsim::SimTime delay, std::function<void()> fn) {
        queue_.schedule(queue_.now() + delay, std::move(fn));
    }

    void run() { queue_.run(); }
    [[nodiscard]] netsim::SimTime now() const { return queue_.now(); }
    [[nodiscard]] netsim::Region region_of(EndpointId id) const {
        return endpoints_[id].region;
    }

private:
    struct Endpoint {
        netsim::Region region;
        Handler handler;
    };

    static std::uint64_t link_key(EndpointId from, EndpointId to) {
        return static_cast<std::uint64_t>(from) << 32 | to;
    }

    netsim::EventQueue queue_;
    netsim::LatencySampler latency_;
    std::vector<Endpoint> endpoints_;
    std::unordered_map<std::uint64_t, netsim::SimTime> last_delivery_;
};

}  // namespace ebv::net
