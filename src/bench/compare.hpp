// Perf-regression comparison for EBV_BENCH_JSON artifacts: diff a fresh
// bench run against a committed baseline (bench/artifacts/) and decide
// whether any gated metric moved in the bad direction beyond a tolerance.
// Library form of the tools/bench_compare CLI, so the decision logic is
// unit-testable without subprocesses; CI runs the CLI on the fig16/fig17
// smoke sweeps (see .github/workflows/ci.yml, job `bench-gate`).
//
// Model: a report is {"bench", "provenance", "rows":[...], "aborted",
// "metrics"}. Rows are matched by *identity* — every string/bool field
// plus the numeric fields that parameterize a row (threads, window,
// height, period, ...) — and the remaining numeric fields are metrics.
// A metric's gating direction comes from its name: duration/size suffixes
// (_ms/_ns/_us/_bytes) gate lower-is-better, speedup/reduction metrics
// gate higher-is-better, anything else is reported but never fails the
// comparison. The registry snapshot under "metrics" is informational only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ebv::bench {

enum class Direction {
    kLowerBetter,   ///< durations, byte counts — gated
    kHigherBetter,  ///< speedups, reduction percentages, hit rates — gated
    kInfo,          ///< workload descriptors — reported, never gated
};

/// Gating direction for a metric field name (see file comment).
[[nodiscard]] Direction metric_direction(std::string_view name);

struct MetricDelta {
    std::string row;     ///< identity of the row the metric belongs to
    std::string metric;  ///< field name
    double baseline = 0;
    double current = 0;
    Direction direction = Direction::kInfo;
    bool regression = false;  ///< beyond tolerance in the bad direction
};

struct CompareOptions {
    /// Allowed relative move in the bad direction before a gated metric
    /// counts as a regression (0.10 = 10 %).
    double tolerance = 0.10;
    /// Provenance mismatches (build type, SHA-256 backend, hardware
    /// threads) are warnings by default; strict mode makes them errors so
    /// CI cannot accidentally gate an apples-to-oranges diff.
    bool strict_provenance = false;
    /// Regex-free metric filter: when non-empty, only metric names
    /// containing this substring are *gated* (all are still reported).
    /// CI uses this to gate ratio metrics that are stable across machines.
    std::string gate_only;
};

struct CompareResult {
    bool ok = true;  ///< no errors and no regressions
    std::vector<std::string> errors;    ///< aborted runs, bench mismatch, parse failures
    std::vector<std::string> warnings;  ///< missing rows/metrics, provenance drift
    std::vector<MetricDelta> deltas;    ///< every metric present in both reports
    std::size_t regressions = 0;
};

/// Compare two parsed EBV_BENCH_JSON documents.
[[nodiscard]] CompareResult compare_reports(const util::json::Value& baseline,
                                            const util::json::Value& current,
                                            const CompareOptions& options = {});

/// Parse + compare two files; unreadable/invalid input lands in errors.
[[nodiscard]] CompareResult compare_files(const std::string& baseline_path,
                                          const std::string& current_path,
                                          const CompareOptions& options = {});

/// Human-readable multi-line summary (errors, warnings, per-metric table).
[[nodiscard]] std::string format_report(const CompareResult& result);

}  // namespace ebv::bench
