#include "bench/compare.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace ebv::bench {

namespace {

using util::json::Value;

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

/// Numeric fields that parameterize a row rather than measure it. String
/// and bool fields are always identity.
bool is_identity_key(std::string_view key) {
    static constexpr std::string_view kKeys[] = {
        "threads", "window", "height", "period", "blocks",
        "seed",    "reps",   "mode",   "batch",  "shards",
        "skew",    "clients", "queries_per_block", "arrival",
    };
    for (const std::string_view k : kKeys) {
        if (key == k) return true;
    }
    return false;
}

std::string to_compact(double v) {
    char buf[48];
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", v);
    } else {
        std::snprintf(buf, sizeof buf, "%g", v);
    }
    return buf;
}

/// Stable row identity: "k=v" pairs of identity fields in appearance order.
std::string row_identity(const Value& row) {
    std::string id;
    for (const auto& [key, value] : row.as_object()) {
        std::string rendered;
        if (value.is_string()) {
            rendered = value.as_string();
        } else if (value.is_bool()) {
            rendered = value.as_bool() ? "true" : "false";
        } else if (value.is_number() && is_identity_key(key)) {
            rendered = to_compact(value.as_number());
        } else {
            continue;
        }
        if (!id.empty()) id += ' ';
        id += key + "=" + rendered;
    }
    return id.empty() ? "(row)" : id;
}

const Value* report_rows(const Value& report) {
    const Value* rows = report.get("rows");
    return rows != nullptr && rows->is_array() ? rows : nullptr;
}

std::string provenance_field(const Value& report, std::string_view key) {
    const Value* prov = report.get("provenance");
    if (prov == nullptr) return {};
    const Value* field = prov->get(key);
    if (field == nullptr) return {};
    if (field->is_string()) return field->as_string();
    if (field->is_number()) return to_compact(field->as_number());
    return {};
}

}  // namespace

Direction metric_direction(std::string_view name) {
    if (name.find("speedup") != std::string_view::npos ||
        ends_with(name, "reduction_pct") || ends_with(name, "saved") ||
        ends_with(name, "hit_rate_pct"))
        return Direction::kHigherBetter;
    if (ends_with(name, "_ms") || ends_with(name, "_ns") || ends_with(name, "_us") ||
        ends_with(name, "_bytes"))
        return Direction::kLowerBetter;
    return Direction::kInfo;
}

CompareResult compare_reports(const Value& baseline, const Value& current,
                              const CompareOptions& options) {
    CompareResult result;
    const auto error = [&](std::string msg) {
        result.errors.push_back(std::move(msg));
        result.ok = false;
    };

    if (!baseline.is_object() || !current.is_object()) {
        error("reports must be JSON objects");
        return result;
    }

    const Value* base_bench = baseline.get("bench");
    const Value* cur_bench = current.get("bench");
    if (base_bench == nullptr || cur_bench == nullptr || !base_bench->is_string() ||
        !cur_bench->is_string()) {
        error("missing \"bench\" name");
        return result;
    }
    if (base_bench->as_string() != cur_bench->as_string()) {
        error("bench mismatch: baseline is \"" + base_bench->as_string() +
              "\", current is \"" + cur_bench->as_string() + "\"");
        return result;
    }

    // A partial run must never gate (in either role): the missing tail
    // would masquerade as a speedup.
    for (const auto& [report, who] :
         {std::pair{&baseline, "baseline"}, std::pair{&current, "current"}}) {
        const Value* aborted = report->get("aborted");
        if (aborted != nullptr && aborted->is_bool() && aborted->as_bool()) {
            std::string msg = std::string(who) + " run is marked aborted";
            const Value* reason = report->get("abort_reason");
            if (reason != nullptr && reason->is_string())
                msg += " (" + reason->as_string() + ")";
            error(std::move(msg));
        }
    }
    if (!result.ok) return result;

    // Provenance: refuse (or warn about) apples-to-oranges diffs. The git
    // SHA is *expected* to differ — that is the point of the comparison.
    for (const char* key : {"build_type", "sha256_impl", "hw_threads"}) {
        const std::string base_v = provenance_field(baseline, key);
        const std::string cur_v = provenance_field(current, key);
        if (base_v.empty() || cur_v.empty()) {
            result.warnings.push_back(std::string("provenance field \"") + key +
                                      "\" missing from " +
                                      (base_v.empty() ? "baseline" : "current"));
            continue;
        }
        if (base_v != cur_v) {
            std::string msg = std::string("provenance mismatch on ") + key + ": \"" +
                              base_v + "\" vs \"" + cur_v + "\"";
            if (options.strict_provenance) {
                error(std::move(msg));
            } else {
                result.warnings.push_back(std::move(msg));
            }
        }
    }
    if (!result.ok) return result;

    const Value* base_rows = report_rows(baseline);
    const Value* cur_rows = report_rows(current);
    if (base_rows == nullptr || cur_rows == nullptr) {
        error("missing \"rows\" array");
        return result;
    }

    // First row with a given identity wins on duplicates (mirrors the
    // first-wins rule the JSON parser applies to duplicate keys).
    std::map<std::string, const Value*> current_by_id;
    for (const Value& row : cur_rows->as_array()) {
        if (row.is_object()) current_by_id.emplace(row_identity(row), &row);
    }

    for (const Value& row : base_rows->as_array()) {
        if (!row.is_object()) continue;
        const std::string id = row_identity(row);
        const auto match = current_by_id.find(id);
        if (match == current_by_id.end()) {
            result.warnings.push_back("row [" + id + "] missing from current run");
            continue;
        }
        for (const auto& [key, value] : row.as_object()) {
            if (!value.is_number() || is_identity_key(key)) continue;
            const Value* cur_value = match->second->get(key);
            if (cur_value == nullptr || !cur_value->is_number()) {
                result.warnings.push_back("metric \"" + key + "\" in row [" + id +
                                          "] missing from current run");
                continue;
            }
            MetricDelta delta;
            delta.row = id;
            delta.metric = key;
            delta.baseline = value.as_number();
            delta.current = cur_value->as_number();
            delta.direction = metric_direction(key);
            const bool gated =
                delta.direction != Direction::kInfo && delta.baseline > 0 &&
                (options.gate_only.empty() ||
                 key.find(options.gate_only) != std::string::npos);
            if (gated) {
                const double ratio = delta.current / delta.baseline;
                delta.regression = delta.direction == Direction::kLowerBetter
                                       ? ratio > 1.0 + options.tolerance
                                       : ratio < 1.0 - options.tolerance;
            }
            if (delta.regression) ++result.regressions;
            result.deltas.push_back(std::move(delta));
        }
    }

    if (result.regressions > 0) result.ok = false;
    return result;
}

CompareResult compare_files(const std::string& baseline_path,
                            const std::string& current_path,
                            const CompareOptions& options) {
    const auto read = [](const std::string& path) -> std::optional<Value> {
        std::ifstream in(path);
        if (!in) return std::nullopt;
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return util::json::parse(buffer.str());
    };

    CompareResult result;
    const auto baseline = read(baseline_path);
    if (!baseline) {
        result.ok = false;
        result.errors.push_back("cannot read/parse baseline: " + baseline_path);
    }
    const auto current = read(current_path);
    if (!current) {
        result.ok = false;
        result.errors.push_back("cannot read/parse current: " + current_path);
    }
    if (!baseline || !current) return result;
    return compare_reports(*baseline, *current, options);
}

std::string format_report(const CompareResult& result) {
    std::string out;
    char line[512];
    for (const std::string& e : result.errors) out += "error: " + e + "\n";
    for (const std::string& w : result.warnings) out += "warning: " + w + "\n";
    for (const MetricDelta& d : result.deltas) {
        const double pct =
            d.baseline != 0 ? 100.0 * (d.current - d.baseline) / d.baseline : 0.0;
        const char* tag = d.regression
                              ? "REGRESSION"
                              : (d.direction == Direction::kInfo ? "info" : "ok");
        std::snprintf(line, sizeof line, "%-10s %-28s [%s]  %.4g -> %.4g (%+.1f%%)\n",
                      tag, d.metric.c_str(), d.row.c_str(), d.baseline, d.current,
                      pct);
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "%zu metrics compared, %zu regression(s), %zu warning(s): %s\n",
                  result.deltas.size(), result.regressions, result.warnings.size(),
                  result.ok ? "PASS" : "FAIL");
    out += line;
    return out;
}

}  // namespace ebv::bench
