// Deterministic synthetic chain generator. Produces Bitcoin-format blocks
// whose statistics follow an EraSchedule; the intermediary converter then
// yields the matching EBV chain. Two modes:
//   signed   — every input carries a real ECDSA signature over the correct
//              sighash (validators run full SV); costs real signing time.
//   unsigned — unlocking scripts are shape-realistic dummies (validators
//              run with SV disabled); used for memory/size experiments
//              where script execution is irrelevant.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.hpp"
#include "chain/params.hpp"
#include "crypto/ecdsa.hpp"
#include "util/rng.hpp"
#include "workload/era.hpp"

namespace ebv::workload {

struct GeneratorOptions {
    std::uint64_t seed = 1;
    chain::ChainParams params = chain::ChainParams::simnet();
    EraSchedule schedule = EraSchedule::bitcoin_mainnet();
    /// Generated block i maps to real height i * height_scale on the era
    /// axis (100 ⇒ a 6,500-block run traverses the 650k-block history).
    double height_scale = 100.0;
    /// Multiplier on the schedule's tx_per_block (laptop-sized default).
    double intensity = 0.2;
    bool signed_mode = true;
    /// Number of distinct keys cycled through output destinations.
    std::size_t key_pool_size = 64;
    /// Heavy-tail exponent for per-input script cost (0 = off, the
    /// default; benches read EBV_SKEW). When > 0 each output rolls a
    /// Zipf-style weight M = floor(u^-skew): M >= 2 locks the output to a
    /// 1-of-M bare multisig whose signer key is listed *last*, so spending
    /// it costs M real ECDSA verifies (the interpreter tries keys in
    /// order). skew = 1 makes ~half the outputs heavy with a power-law
    /// tail out to M = 15; script-cost variance is what separates the
    /// pool's stealing scheduler from the shared counter (fig16).
    double skew = 0.0;
};

class ChainGenerator {
public:
    explicit ChainGenerator(const GeneratorOptions& options);

    /// Generate, record, and return the next block.
    chain::Block next_block();

    /// Duplicate the generator's full state (key pool, spendable set, tip)
    /// and reseed the copy's RNG with `salt`, so the copy emits a *different
    /// but valid* continuation from the same fork point — the raw material
    /// for competing reorg branches (tests/scenario_matrix_test.cpp).
    [[nodiscard]] ChainGenerator fork(std::uint64_t salt) const;

    [[nodiscard]] std::uint32_t height() const { return next_height_; }
    [[nodiscard]] std::size_t utxo_pool_size() const { return pool_.size(); }
    [[nodiscard]] const GeneratorOptions& options() const { return options_; }

private:
    struct Spendable {
        chain::OutPoint outpoint;
        chain::Amount value;
        std::uint32_t height;
        bool coinbase;
        std::uint32_t key_id;       ///< signer for this output
        /// 0 = P2PKH, 1 = P2PK, 2 = multisig 1-of-2; 0x80 | M = skewed-cost
        /// 1-of-M multisig with the signer key last (see GeneratorOptions::skew).
        std::uint8_t script_kind;
    };

    script::Script lock_script_for(std::uint32_t key_id, std::uint8_t kind) const;
    script::Script unlock_script_for(const chain::Transaction& tx, std::size_t input_index,
                                     const Spendable& spent) const;
    std::uint8_t pick_script_kind(const EraPoint& era);

    /// Pick and remove a spendable output (age-biased per the era).
    bool pick_input(const EraPoint& era, Spendable& out);

    GeneratorOptions options_;
    util::Rng rng_;
    std::vector<crypto::PrivateKey> keys_;
    std::vector<crypto::PublicKey> pubkeys_;
    std::vector<crypto::Hash160> key_hashes_;

    std::vector<Spendable> pool_;
    std::uint32_t next_height_ = 0;
    crypto::Hash256 tip_hash_;
};

}  // namespace ebv::workload
