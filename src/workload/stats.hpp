// Reporting helpers: map generated heights back to real-chain quarters for
// Fig 1/14-style time axes, and accumulate per-period measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ebv::workload {

/// Approximate real mainnet height for the start of a calendar quarter
/// (Bitcoin averages ~52,560 blocks/year; early years ran faster, which
/// this linear model deliberately smooths over — only labels depend on it).
[[nodiscard]] std::uint32_t real_height_for_quarter(int year, int quarter);

/// "17-Q3"-style label for a real height.
[[nodiscard]] std::string quarter_label_for_height(std::uint32_t real_height);

/// One row of a per-period experiment report (Figs 5/17): the harness
/// fills the fields it measures and prints via the bench's formatter.
struct PeriodRow {
    std::uint32_t start_height = 0;
    std::uint32_t end_height = 0;
    double dbo_ms = 0;
    double ev_ms = 0;
    double uv_ms = 0;
    double sv_ms = 0;
    double other_ms = 0;
    double total_ms = 0;
};

}  // namespace ebv::workload
