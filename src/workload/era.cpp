#include "workload/era.hpp"

#include "util/assert.hpp"

namespace ebv::workload {

EraSchedule EraSchedule::bitcoin_mainnet() {
    // Anchors: {real height, tx/block, in/tx, out/tx, young prob, window,
    //           p2pk share, multisig share}. Values are fitted to public
    //           mainnet aggregates; the consolidation era at 500k-550k has
    //           inputs_per_tx > outputs_per_tx, shrinking the UTXO set.
    return EraSchedule({
        {0,       2.0,  1.10, 1.60, 0.90, 50, 0.70, 0.00},
        {100'000, 6.0,  1.30, 1.90, 0.85, 40, 0.40, 0.00},
        {200'000, 15.0, 1.60, 2.10, 0.80, 30, 0.15, 0.01},
        {300'000, 28.0, 1.80, 2.35, 0.75, 25, 0.05, 0.02},
        {400'000, 60.0, 1.85, 2.50, 0.72, 20, 0.02, 0.04},
        {500'000, 85.0, 2.60, 2.20, 0.60, 20, 0.01, 0.04},   // consolidation begins
        {550'000, 90.0, 2.80, 2.10, 0.55, 20, 0.01, 0.04},   // consolidation peak
        {560'000, 100.0, 1.85, 2.55, 0.70, 20, 0.01, 0.05},  // back to growth
        {650'000, 115.0, 1.90, 2.60, 0.70, 20, 0.01, 0.06},
    });
}

EraSchedule EraSchedule::flat(double tx_per_block, double inputs_per_tx,
                              double outputs_per_tx) {
    return EraSchedule({
        {0, tx_per_block, inputs_per_tx, outputs_per_tx, 0.8, 20, 0.0, 0.0},
    });
}

EraPoint EraSchedule::at(std::uint32_t real_height) const {
    EBV_EXPECTS(!points_.empty());
    if (real_height <= points_.front().real_height) return points_.front();
    if (real_height >= points_.back().real_height) return points_.back();

    std::size_t hi = 1;
    while (points_[hi].real_height < real_height) ++hi;
    const EraPoint& a = points_[hi - 1];
    const EraPoint& b = points_[hi];
    const double t = static_cast<double>(real_height - a.real_height) /
                     static_cast<double>(b.real_height - a.real_height);

    auto lerp = [t](double x, double y) { return x + (y - x) * t; };
    EraPoint out;
    out.real_height = real_height;
    out.tx_per_block = lerp(a.tx_per_block, b.tx_per_block);
    out.inputs_per_tx = lerp(a.inputs_per_tx, b.inputs_per_tx);
    out.outputs_per_tx = lerp(a.outputs_per_tx, b.outputs_per_tx);
    out.young_spend_prob = lerp(a.young_spend_prob, b.young_spend_prob);
    out.young_window = static_cast<std::uint32_t>(
        lerp(static_cast<double>(a.young_window), static_cast<double>(b.young_window)));
    out.p2pk_fraction = lerp(a.p2pk_fraction, b.p2pk_fraction);
    out.multisig_fraction = lerp(a.multisig_fraction, b.multisig_fraction);
    return out;
}

}  // namespace ebv::workload
