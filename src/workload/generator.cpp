#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "chain/miner.hpp"
#include "chain/sighash.hpp"
#include "obs/metrics.hpp"
#include "script/standard.hpp"
#include "util/assert.hpp"

namespace ebv::workload {

namespace {
constexpr chain::Amount kFeePerTx = 10'000;  // flat fee keeps accounting simple

/// Skewed-cost script kinds are encoded as 0x80 | M (1-of-M multisig).
constexpr std::uint8_t kHeavyKindFlag = 0x80;
/// Tail cap: well under the interpreter's 20-key multisig limit and deep
/// enough that one heavy input costs ~15x a P2PK verify.
constexpr std::uint32_t kMaxHeavyKeys = 15;
}

ChainGenerator::ChainGenerator(const GeneratorOptions& options)
    : options_(options), rng_(options.seed) {
    keys_.reserve(options.key_pool_size);
    pubkeys_.reserve(options.key_pool_size);
    key_hashes_.reserve(options.key_pool_size);
    for (std::size_t i = 0; i < options.key_pool_size; ++i) {
        keys_.push_back(crypto::PrivateKey::generate(rng_));
        pubkeys_.push_back(keys_.back().public_key());
        key_hashes_.push_back(pubkeys_.back().id());
    }
}

ChainGenerator ChainGenerator::fork(std::uint64_t salt) const {
    ChainGenerator branch(*this);
    // splitmix64-style mix keeps distinct salts from producing correlated
    // streams even when they differ in a single bit.
    branch.rng_ = util::Rng(options_.seed ^ (salt * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL));
    return branch;
}

script::Script ChainGenerator::lock_script_for(std::uint32_t key_id,
                                               std::uint8_t kind) const {
    if ((kind & kHeavyKindFlag) != 0) {
        // 1-of-M with the signer last: the interpreter matches signatures
        // against keys in order, so a valid spend performs M-1 failed
        // verifies before succeeding — a real M-fold cost multiplier.
        const std::uint32_t m = kind & ~kHeavyKindFlag;
        std::vector<crypto::PublicKey> members;
        members.reserve(m);
        for (std::uint32_t k = 1; k < m; ++k)
            members.push_back(pubkeys_[(key_id + k) % pubkeys_.size()]);
        members.push_back(pubkeys_[key_id]);
        return script::make_multisig(1, members);
    }
    switch (kind) {
        case 1:
            return script::make_p2pk(pubkeys_[key_id]);
        case 2: {
            const std::uint32_t other = (key_id + 1) % pubkeys_.size();
            return script::make_multisig(1, {pubkeys_[key_id], pubkeys_[other]});
        }
        default:
            return script::make_p2pkh(key_hashes_[key_id]);
    }
}

script::Script ChainGenerator::unlock_script_for(const chain::Transaction& tx,
                                                 std::size_t input_index,
                                                 const Spendable& spent) const {
    const script::Script lock = lock_script_for(spent.key_id, spent.script_kind);

    if (!options_.signed_mode) {
        // Shape-realistic dummy: same byte structure as a real unlocking
        // script (these chains are validated with SV disabled).
        util::Bytes fake_sig(71, 0x30);
        fake_sig.back() = 0x01;
        if ((spent.script_kind & kHeavyKindFlag) != 0)
            return script::make_multisig_unlock({fake_sig});
        switch (spent.script_kind) {
            case 1:
                return script::make_p2pk_unlock(fake_sig);
            case 2:
                return script::make_multisig_unlock({fake_sig});
            default:
                return script::make_p2pkh_unlock(fake_sig, pubkeys_[spent.key_id]);
        }
    }

    const util::Bytes sig =
        chain::sign_input(tx, input_index, lock, keys_[spent.key_id]);
    if ((spent.script_kind & kHeavyKindFlag) != 0)
        return script::make_multisig_unlock({sig});
    switch (spent.script_kind) {
        case 1:
            return script::make_p2pk_unlock(sig);
        case 2:
            return script::make_multisig_unlock({sig});
        default:
            return script::make_p2pkh_unlock(sig, pubkeys_[spent.key_id]);
    }
}

std::uint8_t ChainGenerator::pick_script_kind(const EraPoint& era) {
    if (options_.skew > 0.0) {
        // Zipf-style weight: P(M >= k) = k^(-1/skew). M == 1 falls through
        // to the era's normal script mix, so skew -> 0 recovers it exactly.
        const double u = std::max(rng_.uniform01(), 1e-9);
        const double weight = std::pow(u, -options_.skew);
        const auto m = static_cast<std::uint32_t>(
            std::min<double>(weight, kMaxHeavyKeys));
        if (m >= 2) return static_cast<std::uint8_t>(kHeavyKindFlag | m);
    }
    const double roll = rng_.uniform01();
    if (roll < era.p2pk_fraction) return 1;
    if (roll < era.p2pk_fraction + era.multisig_fraction) return 2;
    return 0;
}

bool ChainGenerator::pick_input(const EraPoint& era, Spendable& out) {
    if (pool_.empty()) return false;

    // The pool is approximately age-ordered (appends at the tail, swap-
    // removes perturb it only locally), so "young" sampling reads from the
    // tail region and "old" sampling from the whole vector. A few
    // rejection retries skip unspendable candidates.
    for (int attempt = 0; attempt < 8; ++attempt) {
        std::size_t index;
        if (rng_.chance(era.young_spend_prob)) {
            const std::size_t window =
                std::min<std::size_t>(pool_.size(), era.young_window * 32ULL);
            index = pool_.size() - 1 - rng_.below(window);
        } else {
            // Old spends skew toward the oldest outputs (min of two draws):
            // mature blocks drain toward fully-spent, which is what makes
            // their bit-vectors sparse (the paper's §IV-E2 optimization
            // target) and eventually deletable.
            index = std::min(rng_.below(pool_.size()), rng_.below(pool_.size()));
        }

        const Spendable& candidate = pool_[index];
        if (candidate.height >= next_height_) continue;  // same-block output
        if (candidate.coinbase &&
            next_height_ < candidate.height + options_.params.coinbase_maturity) {
            continue;  // immature
        }
        out = candidate;
        pool_[index] = pool_.back();
        pool_.pop_back();
        return true;
    }
    return false;
}

chain::Block ChainGenerator::next_block() {
    const auto real_height =
        static_cast<std::uint32_t>(next_height_ * options_.height_scale);
    const EraPoint era = options_.schedule.at(real_height);

    const double tx_target = era.tx_per_block * options_.intensity;
    std::size_t tx_count = static_cast<std::size_t>(tx_target);
    if (rng_.chance(tx_target - static_cast<double>(tx_count))) ++tx_count;

    std::vector<chain::Transaction> txs;
    txs.reserve(tx_count);
    chain::Amount total_fees = 0;

    for (std::size_t t = 0; t < tx_count; ++t) {
        const std::uint64_t want_inputs = rng_.geometric_at_least_one(era.inputs_per_tx);
        std::vector<Spendable> spends;
        spends.reserve(want_inputs);
        chain::Amount value_in = 0;
        for (std::uint64_t i = 0; i < want_inputs; ++i) {
            Spendable s;
            if (!pick_input(era, s)) break;
            value_in += s.value;
            spends.push_back(s);
        }
        if (spends.empty()) continue;

        // Keep at least one unit per planned output; fee takes the rest up
        // to the flat rate.
        const chain::Amount value_out = std::max<chain::Amount>(
            1, std::min(value_in, value_in - std::min(kFeePerTx, value_in - 1)));
        const chain::Amount fee = value_in - value_out;

        std::uint64_t want_outputs = rng_.geometric_at_least_one(era.outputs_per_tx);
        want_outputs =
            std::min<std::uint64_t>(want_outputs, static_cast<std::uint64_t>(value_out));
        if (want_outputs == 0) want_outputs = 1;

        chain::Transaction tx;
        tx.vin.reserve(spends.size());
        for (const Spendable& s : spends) {
            tx.vin.push_back(chain::TxIn{s.outpoint, {}, 0xffffffff});
        }

        const chain::Amount per_output =
            std::max<chain::Amount>(1, value_out / static_cast<chain::Amount>(want_outputs));
        std::vector<std::uint8_t> kinds;
        std::vector<std::uint32_t> key_ids;
        for (std::uint64_t o = 0; o < want_outputs; ++o) {
            const chain::Amount value =
                (o + 1 == want_outputs)
                    ? value_out - per_output * static_cast<chain::Amount>(want_outputs - 1)
                    : per_output;
            const auto key_id = static_cast<std::uint32_t>(rng_.below(keys_.size()));
            const std::uint8_t kind = pick_script_kind(era);
            kinds.push_back(kind);
            key_ids.push_back(key_id);
            tx.vout.push_back(chain::TxOut{value, lock_script_for(key_id, kind)});
        }

        // Sign (or fake) every input now that the transaction body is final.
        for (std::size_t i = 0; i < spends.size(); ++i) {
            tx.vin[i].unlock_script = unlock_script_for(tx, i, spends[i]);
        }
        tx.invalidate_cache();

        total_fees += fee;

        // Register the outputs as spendable.
        const crypto::Hash256 txid = tx.txid();
        for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
            pool_.push_back(Spendable{chain::OutPoint{txid, o}, tx.vout[o].value,
                                      next_height_, false, key_ids[o], kinds[o]});
        }
        txs.push_back(std::move(tx));
    }

    // Coinbase pays subsidy + fees to a rotating key.
    const auto cb_key = static_cast<std::uint32_t>(rng_.below(keys_.size()));
    const chain::Amount reward =
        options_.params.subsidy_at(next_height_) + total_fees;
    chain::Transaction coinbase = chain::make_coinbase(
        next_height_, reward, script::make_p2pkh(key_hashes_[cb_key]),
        static_cast<std::uint32_t>(rng_.next()));

    chain::Block block = chain::assemble_block(
        tip_hash_, std::move(coinbase), std::move(txs),
        /*time=*/1231006505 + next_height_ * 600);

    pool_.push_back(Spendable{chain::OutPoint{block.txs[0].txid(), 0},
                              block.txs[0].vout[0].value, next_height_, true, cb_key, 0});

    tip_hash_ = block.header.hash();
    ++next_height_;

    static obs::Counter& blocks_generated =
        obs::Registry::global().counter("workload.blocks_generated");
    static obs::Counter& txs_generated =
        obs::Registry::global().counter("workload.txs_generated");
    static obs::Gauge& pool_size =
        obs::Registry::global().gauge("workload.utxo_pool_size");
    blocks_generated.inc();
    txs_generated.inc(block.txs.size());
    pool_size.set(static_cast<std::int64_t>(pool_.size()));
    return block;
}

}  // namespace ebv::workload
