// Era model: per-height workload parameters fitted to Bitcoin mainnet
// aggregates (transactions per block, input/output fan, spend-age behavior,
// script mix). Eras are anchored at *real* mainnet heights; a generated
// chain of N blocks maps block i to real height i * scale, so a 6,500-block
// laptop run traverses the same 2009→2021 regime sequence as the paper's
// 650,000-block IBD. The 500k-550k consolidation era reproduces the Fig 5
// dip (inputs temporarily exceed outputs, shrinking the UTXO set).
#pragma once

#include <cstdint>
#include <vector>

namespace ebv::workload {

struct EraPoint {
    std::uint32_t real_height;  ///< anchor on the real-chain height axis
    double tx_per_block;        ///< mean non-coinbase transactions per block
    double inputs_per_tx;       ///< mean inputs per transaction
    double outputs_per_tx;      ///< mean outputs per transaction
    double young_spend_prob;    ///< P(input spends a recent output)
    std::uint32_t young_window; ///< "recent" = created in the last W blocks
    double p2pk_fraction;       ///< early chain used pay-to-pubkey heavily
    double multisig_fraction;   ///< bare multisig share (rest is P2PKH)
};

/// Piecewise-linear parameter curve over real height.
class EraSchedule {
public:
    /// The default mainnet-fitted table.
    static EraSchedule bitcoin_mainnet();

    /// A flat schedule (uniform blocks) for unit tests.
    static EraSchedule flat(double tx_per_block, double inputs_per_tx,
                            double outputs_per_tx);

    explicit EraSchedule(std::vector<EraPoint> points) : points_(std::move(points)) {}

    [[nodiscard]] EraPoint at(std::uint32_t real_height) const;

private:
    std::vector<EraPoint> points_;  // ascending real_height
};

}  // namespace ebv::workload
