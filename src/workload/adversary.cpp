#include "workload/adversary.hpp"

#include <cstddef>

#include "chain/miner.hpp"

namespace ebv::workload {

const char* to_string(Mutation m) {
    switch (m) {
        case Mutation::kMbrSibling: return "mbr-sibling";
        case Mutation::kMbrIndex: return "mbr-index";
        case Mutation::kElsValue: return "els-value";
        case Mutation::kElsLockScript: return "els-lock-script";
        case Mutation::kElsLocktime: return "els-locktime";
        case Mutation::kElsVersion: return "els-version";
        case Mutation::kElsStakePosition: return "els-stake-position";
        case Mutation::kInputHeight: return "input-height";
        case Mutation::kInputOutIndex: return "input-out-index";
        case Mutation::kUnlockScript: return "unlock-script";
        case Mutation::kShiftedStakePosition: return "shifted-stake-position";
        case Mutation::kStaleMerkleRoot: return "stale-merkle-root";
        case Mutation::kDropCoinbase: return "drop-coinbase";
        case Mutation::kInjectCoinbase: return "inject-coinbase";
        case Mutation::kEmptyTxList: return "empty-tx-list";
        case Mutation::kDoubleSpendInBlock: return "double-spend-in-block";
        case Mutation::kCrossBlockDoubleSpendNear: return "cross-block-double-spend-near";
        case Mutation::kCrossBlockDoubleSpendFar: return "cross-block-double-spend-far";
        case Mutation::kImmatureCoinbaseSpend: return "immature-coinbase-spend";
        case Mutation::kNegativeFee: return "negative-fee";
        case Mutation::kCoinbaseOverpay: return "coinbase-overpay";
    }
    return "unknown-mutation";
}

namespace {

/// First non-coinbase transaction with at least one input, or nullptr.
core::EbvTransaction* first_spender(core::EbvBlock& block, std::size_t* tx_index) {
    for (std::size_t t = 1; t < block.txs.size(); ++t) {
        if (!block.txs[t].inputs.empty()) {
            *tx_index = t;
            return &block.txs[t];
        }
    }
    return nullptr;
}

/// Miner-adversary reseal: the tampered bodies get an honestly recomputed
/// Merkle root, so structural checks pass and the targeted rule (EV, SV,
/// UV, maturity, value) is what rejects the block. Stake positions are
/// left as-is — no mutation below changes output counts of earlier txs.
void reseal(core::EbvBlock& block) {
    block.header.merkle_root = block.compute_merkle_root();
}

/// The input an earlier block spent, for double-spend construction.
const core::EbvInput* spent_input_in(const core::EbvBlock& block) {
    for (const core::EbvTransaction& tx : block.txs) {
        if (!tx.inputs.empty()) return &tx.inputs.front();
    }
    return nullptr;
}

}  // namespace

std::optional<AppliedMutation> Adversary::apply(Mutation m,
                                                std::vector<core::EbvBlock>& blocks,
                                                std::size_t target,
                                                const core::ChainArchive* archive) {
    if (target >= blocks.size()) return std::nullopt;
    core::EbvBlock& block = blocks[target];
    AppliedMutation applied{m, target};

    std::size_t t = 0;
    core::EbvTransaction* tx = first_spender(block, &t);

    switch (m) {
        case Mutation::kMbrSibling: {
            if (tx == nullptr || tx->inputs[0].mbr.siblings.empty()) return std::nullopt;
            tx->inputs[0].mbr.siblings[0].bytes()[0] ^= 0x01;
            reseal(block);
            return applied;
        }
        case Mutation::kMbrIndex: {
            if (tx == nullptr || tx->inputs[0].mbr.siblings.empty()) return std::nullopt;
            tx->inputs[0].mbr.index ^= 1;
            reseal(block);
            return applied;
        }
        case Mutation::kElsValue: {
            if (tx == nullptr) return std::nullopt;
            core::EbvInput& in = tx->inputs[0];
            in.els.outputs[in.out_index].value += 1;
            reseal(block);
            return applied;
        }
        case Mutation::kElsLockScript: {
            if (tx == nullptr) return std::nullopt;
            core::EbvInput& in = tx->inputs[0];
            script::Script& lock = in.els.outputs[in.out_index].lock_script;
            if (lock.size() == 0) return std::nullopt;
            lock[lock.size() / 2] ^= 0x04;
            reseal(block);
            return applied;
        }
        case Mutation::kElsLocktime: {
            if (tx == nullptr) return std::nullopt;
            tx->inputs[0].els.locktime ^= 1;
            reseal(block);
            return applied;
        }
        case Mutation::kElsVersion: {
            if (tx == nullptr) return std::nullopt;
            tx->inputs[0].els.version ^= 1;
            reseal(block);
            return applied;
        }
        case Mutation::kElsStakePosition: {
            if (tx == nullptr) return std::nullopt;
            tx->inputs[0].els.stake_position += 1;
            reseal(block);
            return applied;
        }
        case Mutation::kInputHeight: {
            if (tx == nullptr) return std::nullopt;
            tx->inputs[0].height = 0x7fff0000u;  // far beyond any chain
            reseal(block);
            return applied;
        }
        case Mutation::kInputOutIndex: {
            if (tx == nullptr) return std::nullopt;
            core::EbvInput& in = tx->inputs[0];
            in.out_index = static_cast<std::uint16_t>(in.els.outputs.size());
            reseal(block);
            return applied;
        }
        case Mutation::kUnlockScript: {
            if (tx == nullptr || tx->inputs[0].unlock_script.size() <= 6)
                return std::nullopt;
            tx->inputs[0].unlock_script[5] ^= 0x11;
            reseal(block);
            return applied;
        }
        case Mutation::kShiftedStakePosition: {
            if (block.txs.empty()) return std::nullopt;
            block.txs.back().stake_position += 7;
            reseal(block);  // honest root over the forged positions
            return applied;
        }
        case Mutation::kStaleMerkleRoot: {
            if (block.txs.empty() || block.txs[0].outputs.empty()) return std::nullopt;
            block.txs[0].outputs[0].value += 1;  // body changed, root left stale
            return applied;
        }
        case Mutation::kDropCoinbase: {
            if (tx == nullptr) return std::nullopt;  // need a real tx left over
            block.txs.erase(block.txs.begin());
            return applied;
        }
        case Mutation::kInjectCoinbase: {
            if (block.txs.size() < 2) return std::nullopt;
            block.txs.insert(block.txs.begin() + 1, block.txs[0]);
            return applied;
        }
        case Mutation::kEmptyTxList: {
            block.txs.clear();
            return applied;
        }
        case Mutation::kDoubleSpendInBlock: {
            if (tx == nullptr) return std::nullopt;
            tx->inputs.push_back(tx->inputs[0]);
            reseal(block);
            return applied;
        }
        case Mutation::kCrossBlockDoubleSpendNear:
        case Mutation::kCrossBlockDoubleSpendFar: {
            if (tx == nullptr) return std::nullopt;
            const core::EbvInput* stolen = nullptr;
            if (m == Mutation::kCrossBlockDoubleSpendNear) {
                for (std::size_t b = target; b-- > 0 && stolen == nullptr;)
                    stolen = spent_input_in(blocks[b]);
            } else {
                for (std::size_t b = 0; b < target && stolen == nullptr; ++b)
                    stolen = spent_input_in(blocks[b]);
            }
            if (stolen == nullptr) return std::nullopt;
            tx->inputs[0] = *stolen;
            reseal(block);
            return applied;
        }
        case Mutation::kImmatureCoinbaseSpend: {
            if (tx == nullptr || archive == nullptr || target == 0) return std::nullopt;
            const auto source = static_cast<std::uint32_t>(target - 1);
            if (source >= archive->height_count()) return std::nullopt;
            tx->inputs[0] = archive->make_input(source, 0, 0);
            reseal(block);
            return applied;
        }
        case Mutation::kNegativeFee: {
            if (tx == nullptr || tx->outputs.empty()) return std::nullopt;
            tx->outputs[0].value += 1'000'000'000;  // far above any fee income
            reseal(block);
            return applied;
        }
        case Mutation::kCoinbaseOverpay: {
            if (block.txs.empty() || block.txs[0].outputs.empty()) return std::nullopt;
            block.txs[0].outputs[0].value += 1;
            reseal(block);
            return applied;
        }
    }
    return std::nullopt;
}

std::optional<AppliedMutation> Adversary::apply_random(std::vector<core::EbvBlock>& blocks,
                                                       std::size_t first,
                                                       const core::ChainArchive* archive) {
    if (first >= blocks.size()) return std::nullopt;
    constexpr std::size_t kMutationCount =
        sizeof(kAllMutations) / sizeof(kAllMutations[0]);
    for (int attempt = 0; attempt < 64; ++attempt) {
        const Mutation m = kAllMutations[rng_.below(kMutationCount)];
        if (m == Mutation::kImmatureCoinbaseSpend && archive == nullptr) continue;
        const std::size_t target =
            first + static_cast<std::size_t>(rng_.below(blocks.size() - first));
        if (auto applied = apply(m, blocks, target, archive)) return applied;
    }
    return std::nullopt;
}

chain::Block duplicate_txid_block(const chain::Block& victim, const crypto::Hash256& parent,
                                  std::uint32_t time) {
    chain::Transaction coinbase = victim.txs[0];
    return chain::assemble_block(parent, std::move(coinbase), {}, time);
}

core::EbvBlock duplicate_txid_ebv_block(const core::EbvBlock& victim,
                                        const crypto::Hash256& parent) {
    core::EbvBlock block;
    block.header = victim.header;
    block.header.prev_hash = parent;
    block.txs.push_back(victim.txs[0]);
    block.assign_stake_positions();
    return block;
}

}  // namespace ebv::workload
