// Hostile-chain mutation layer over converted EBV chains, plus a few
// Bitcoin-format builders (docs/SCENARIOS.md). Every mutation models one of
// two attackers:
//
//   relay adversary — block bytes tampered in flight: a proof field (MBr,
//   ELs, height, position) or an unlocking script no longer matches what
//   the miner committed to, so EV or SV must fail;
//
//   miner adversary — a well-formed block (stake positions reassigned,
//   Merkle root honestly recomputed) that violates a consensus rule:
//   double spends, immature coinbase spends, value inflation, coinbase
//   overpayment, broken block structure.
//
// The scenario-matrix harness applies each mutation and asserts that all
// validator configurations (serial / parallel / batched-SV / pipelined-IBD)
// reject with bit-identical failure tuples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chain/block.hpp"
#include "core/chain_archive.hpp"
#include "core/ebv_transaction.hpp"
#include "util/rng.hpp"

namespace ebv::workload {

enum class Mutation {
    // Relay adversary: tampered proof fields → EV failure.
    kMbrSibling,        ///< flip a bit in a Merkle-branch sibling hash
    kMbrIndex,          ///< shift the Merkle-branch leaf index
    kElsValue,          ///< raise the referenced output's claimed value
    kElsLockScript,     ///< tamper the referenced output's lock script
    kElsLocktime,       ///< tamper the ELs locktime field
    kElsVersion,        ///< tamper the ELs version field
    kElsStakePosition,  ///< fake the ELs stake position (forged UV position)
    kInputHeight,       ///< point the input at a non-existent height
    kInputOutIndex,     ///< point out_index past the ELs output list
    // Relay adversary: tampered unlocking script → SV failure.
    kUnlockScript,
    // Miner adversary: structural violations.
    kShiftedStakePosition,  ///< stake positions off the running count
    kStaleMerkleRoot,       ///< body changed, root left stale
    kDropCoinbase,          ///< first transaction is not a coinbase
    kInjectCoinbase,        ///< a second coinbase mid-block
    kEmptyTxList,           ///< no transactions at all
    // Miner adversary: state/value violations (root recomputed).
    kDoubleSpendInBlock,         ///< the same input twice in one transaction
    kCrossBlockDoubleSpendNear,  ///< re-spend an input a nearby block spent
    kCrossBlockDoubleSpendFar,   ///< re-spend across many blocks (and, under
                                 ///< pipelined IBD, across window boundaries)
    kImmatureCoinbaseSpend,      ///< spend the previous block's coinbase
    kNegativeFee,                ///< output sum above input sum
    kCoinbaseOverpay,            ///< coinbase above subsidy + fees
};

inline constexpr Mutation kAllMutations[] = {
    Mutation::kMbrSibling,         Mutation::kMbrIndex,
    Mutation::kElsValue,           Mutation::kElsLockScript,
    Mutation::kElsLocktime,        Mutation::kElsVersion,
    Mutation::kElsStakePosition,   Mutation::kInputHeight,
    Mutation::kInputOutIndex,      Mutation::kUnlockScript,
    Mutation::kShiftedStakePosition, Mutation::kStaleMerkleRoot,
    Mutation::kDropCoinbase,       Mutation::kInjectCoinbase,
    Mutation::kEmptyTxList,        Mutation::kDoubleSpendInBlock,
    Mutation::kCrossBlockDoubleSpendNear, Mutation::kCrossBlockDoubleSpendFar,
    Mutation::kImmatureCoinbaseSpend, Mutation::kNegativeFee,
    Mutation::kCoinbaseOverpay,
};

[[nodiscard]] const char* to_string(Mutation m);

/// Record of one applied mutation, for seed-logged soak replay.
struct AppliedMutation {
    Mutation mutation;
    std::size_t block = 0;  ///< index into the mutated vector
};

class Adversary {
public:
    explicit Adversary(std::uint64_t seed) : rng_(seed) {}

    /// Apply `m` to blocks[target] in place. `blocks` must be a chain
    /// starting at height 0 (block index == height); `archive` is the
    /// converter's proof archive over the same chain and is required only
    /// by kImmatureCoinbaseSpend (pass nullptr otherwise). Returns nullopt
    /// when the mutation does not apply to that block (e.g. no inputs) —
    /// the block is left untouched in that case.
    std::optional<AppliedMutation> apply(Mutation m, std::vector<core::EbvBlock>& blocks,
                                         std::size_t target,
                                         const core::ChainArchive* archive = nullptr);

    /// Apply a uniformly random applicable mutation to a random block with
    /// index in [first, blocks.size()). Draws until one applies (bounded).
    std::optional<AppliedMutation> apply_random(std::vector<core::EbvBlock>& blocks,
                                               std::size_t first,
                                               const core::ChainArchive* archive = nullptr);

    [[nodiscard]] util::Rng& rng() { return rng_; }

private:
    util::Rng rng_;
};

/// A Bitcoin-format block whose single transaction is a byte-identical copy
/// of `victim`'s coinbase — the BIP30 fixture: without a connect-time
/// duplicate-txid rule the re-created txid silently overwrites the earlier
/// (still unspent) coins in the UTXO set.
[[nodiscard]] chain::Block duplicate_txid_block(const chain::Block& victim,
                                                const crypto::Hash256& parent,
                                                std::uint32_t time);

/// The EBV counterpart: a block whose coinbase is a byte-identical copy of
/// `victim`'s. EBV state is keyed by (height, position), not txid, so this
/// block is *accepted* and clobbers nothing — the pin test documents that.
[[nodiscard]] core::EbvBlock duplicate_txid_ebv_block(const core::EbvBlock& victim,
                                                      const crypto::Hash256& parent);

}  // namespace ebv::workload
