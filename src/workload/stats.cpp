#include "workload/stats.hpp"

namespace ebv::workload {

namespace {
constexpr double kBlocksPerYear = 52'560.0;  // 144/day * 365
constexpr int kGenesisYear = 2009;
}  // namespace

std::uint32_t real_height_for_quarter(int year, int quarter) {
    const double years = (year - kGenesisYear) + (quarter - 1) * 0.25;
    if (years <= 0) return 0;
    return static_cast<std::uint32_t>(years * kBlocksPerYear);
}

std::string quarter_label_for_height(std::uint32_t real_height) {
    const double years = static_cast<double>(real_height) / kBlocksPerYear;
    const int year = kGenesisYear + static_cast<int>(years);
    const int quarter = static_cast<int>((years - static_cast<int>(years)) * 4) + 1;
    std::string label = std::to_string(year % 100);
    if (label.size() == 1) label.insert(label.begin(), '0');
    return label + "-Q" + std::to_string(quarter);
}

}  // namespace ebv::workload
