// Strongly-typed hash values. Hash256 identifies transactions, blocks, and
// Merkle nodes; Hash160 identifies pay-to-pubkey-hash destinations.
#pragma once

#include <array>
#include <compare>
#include <cstring>
#include <functional>
#include <optional>
#include <string>

#include "util/span.hpp"

namespace ebv::crypto {

template <std::size_t N>
class HashValue {
public:
    static constexpr std::size_t kSize = N;

    constexpr HashValue() : bytes_{} {}
    explicit HashValue(const std::array<std::uint8_t, N>& bytes) : bytes_(bytes) {}

    static HashValue from_span(util::ByteSpan data) {
        HashValue h;
        if (data.size() == N) std::memcpy(h.bytes_.data(), data.data(), N);
        return h;
    }

    [[nodiscard]] const std::array<std::uint8_t, N>& bytes() const { return bytes_; }
    [[nodiscard]] std::array<std::uint8_t, N>& bytes() { return bytes_; }
    [[nodiscard]] util::ByteSpan span() const { return {bytes_.data(), bytes_.size()}; }
    [[nodiscard]] bool is_zero() const {
        for (auto b : bytes_)
            if (b != 0) return false;
        return true;
    }

    friend auto operator<=>(const HashValue&, const HashValue&) = default;

    /// Display convention (like Bitcoin txids): byte-reversed hex.
    [[nodiscard]] std::string to_hex() const;
    static std::optional<HashValue> from_hex(std::string_view hex);

private:
    std::array<std::uint8_t, N> bytes_;
};

using Hash256 = HashValue<32>;
using Hash160 = HashValue<20>;

/// double-SHA256 as a Hash256.
Hash256 hash256(util::ByteSpan data);

/// RIPEMD160(SHA256(x)).
Hash160 hash160(util::ByteSpan data);

/// Cheap non-cryptographic mix of a Hash256 for hash-table use.
struct Hash256Hasher {
    std::size_t operator()(const Hash256& h) const {
        std::size_t v;
        std::memcpy(&v, h.bytes().data(), sizeof(v));
        return v;
    }
};

}  // namespace ebv::crypto
