// Merkle tree construction and branch (inclusion proof) handling, Bitcoin
// style: interior nodes are double-SHA256(left || right) and an odd level is
// padded by duplicating its last node. Merkle branches (MBr in the paper)
// are the proof EBV inputs carry for Existence Validation.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash_types.hpp"
#include "util/serialize.hpp"

namespace ebv::crypto {

/// Root of the tree over the given leaves. An empty leaf set yields the
/// zero hash (such blocks never occur: every block has a coinbase).
Hash256 merkle_root(const std::vector<Hash256>& leaves);

/// The sibling hashes along the path from leaf `index` to the root — the
/// paper's MBr. The leaf itself is not included.
struct MerkleBranch {
    std::vector<Hash256> siblings;
    std::uint32_t index = 0;  ///< position of the proven leaf

    void serialize(util::Writer& w) const;
    static util::Result<MerkleBranch, util::DecodeError> deserialize(util::Reader& r);

    [[nodiscard]] std::size_t byte_size() const { return 1 + 4 + siblings.size() * 32; }

    friend bool operator==(const MerkleBranch&, const MerkleBranch&) = default;
};

/// Build the branch for the leaf at `index`; index must be < leaves.size().
MerkleBranch merkle_branch(const std::vector<Hash256>& leaves, std::uint32_t index);

/// Fold a leaf up through the branch; equals the root iff the leaf is a
/// member at the branch's index. This is the EV check.
Hash256 fold_branch(const Hash256& leaf, const MerkleBranch& branch);

}  // namespace ebv::crypto
