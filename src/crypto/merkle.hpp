// Merkle tree construction and branch (inclusion proof) handling, Bitcoin
// style: interior nodes are double-SHA256(left || right) and an odd level is
// padded by duplicating its last node. Merkle branches (MBr in the paper)
// are the proof EBV inputs carry for Existence Validation.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash_types.hpp"
#include "util/serialize.hpp"

namespace ebv::crypto {

/// Root of the tree over the given leaves. An empty leaf set yields the
/// zero hash (such blocks never occur: every block has a coinbase).
Hash256 merkle_root(const std::vector<Hash256>& leaves);

/// Hard ceiling on branch depth: 32 sibling levels describe a tree of 2^32
/// leaves, the most a 32-bit leaf index can address and orders of magnitude
/// beyond any real block. Deeper branches are hostile by construction —
/// deserialize rejects them before allocating, fold_branch refuses to fold
/// them.
inline constexpr std::size_t kMaxMerkleBranchDepth = 32;

/// The sibling hashes along the path from leaf `index` to the root — the
/// paper's MBr. The leaf itself is not included.
struct MerkleBranch {
    std::vector<Hash256> siblings;
    std::uint32_t index = 0;  ///< position of the proven leaf

    void serialize(util::Writer& w) const;
    static util::Result<MerkleBranch, util::DecodeError> deserialize(util::Reader& r);

    [[nodiscard]] std::size_t byte_size() const { return 1 + 4 + siblings.size() * 32; }

    friend bool operator==(const MerkleBranch&, const MerkleBranch&) = default;
};

/// Build the branch for the leaf at `index`; index must be < leaves.size().
/// A thin wrapper over MerkleTreeCache extraction (crypto/merkle_cache.hpp);
/// callers extracting more than one branch per leaf set should hold the
/// cache themselves and amortize the tree build.
MerkleBranch merkle_branch(const std::vector<Hash256>& leaves, std::uint32_t index);

/// Fold a leaf up through the branch; equals the root iff the leaf is a
/// member at the branch's index. This is the EV check. A branch deeper than
/// kMaxMerkleBranchDepth folds to the zero hash, which never equals a real
/// root — absurd-depth proofs fail closed without hashing.
Hash256 fold_branch(const Hash256& leaf, const MerkleBranch& branch);

namespace detail {

/// Reduce one tree level in place: pairs hashed together (batched through
/// sha256d64_many), odd tail duplicated. Shared by merkle_root and
/// MerkleTreeCache so both derive bit-identical trees.
void merkle_reduce_level(std::vector<Hash256>& level);

}  // namespace detail

}  // namespace ebv::crypto
