#include "crypto/merkle_cache.hpp"

#include "util/assert.hpp"

namespace ebv::crypto {

MerkleTreeCache::MerkleTreeCache(const std::vector<Hash256>& leaves) {
    if (leaves.empty()) return;
    levels_.push_back(leaves);
    while (levels_.back().size() > 1) {
        // Copy the level, then reduce the copy in place: the parent level is
        // preserved unpadded, the copy becomes the next level up.
        std::vector<Hash256> next;
        next.reserve(levels_.back().size() + 1);  // +1 for a duplicated odd tail
        next = levels_.back();
        detail::merkle_reduce_level(next);
        levels_.push_back(std::move(next));
    }
}

Hash256 MerkleTreeCache::root() const {
    return levels_.empty() ? Hash256{} : levels_.back().front();
}

MerkleBranch MerkleTreeCache::branch(std::uint32_t index) const {
    EBV_EXPECTS(index < leaf_count());
    MerkleBranch out;
    out.index = index;
    out.siblings.reserve(depth());
    std::uint32_t pos = index;
    for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
        const std::vector<Hash256>& nodes = levels_[level];
        const std::uint32_t sibling = pos ^ 1;
        // A duplicated odd tail is its own sibling (same rule merkle_branch
        // applies while hashing its way up).
        out.siblings.push_back(sibling < nodes.size() ? nodes[sibling] : nodes[pos]);
        pos >>= 1;
    }
    return out;
}

std::size_t MerkleTreeCache::memory_bytes() const {
    std::size_t total = sizeof *this + levels_.capacity() * sizeof(levels_.front());
    for (const auto& level : levels_) total += level.capacity() * sizeof(Hash256);
    return total;
}

}  // namespace ebv::crypto
