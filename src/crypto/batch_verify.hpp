// Batched ECDSA verification: amortizes the two per-signature modular
// inversions (s⁻¹ over the group order, the Jacobian z⁻¹ over the field)
// across N signatures via Montgomery batch inversion, and replaces the two
// independent scalar multiplications of a one-at-a-time verify with one
// Strauss/Shamir double-scalar pass per signature.
//
// Verdicts are bit-identical to PublicKey::verify per job — every early
// reject (invalid key, r or s out of [1, n-1]) is replicated in the same
// order, and the batched field/scalar operations compute the same canonical
// values (modular inverses and affine coordinates are unique). That
// equivalence is what lets the script layer's deferred-check mode fall back
// to inline verification without changing any accept/reject outcome; see
// docs/CRYPTO.md for the contract.
#pragma once

#include <cstddef>
#include <span>

#include "crypto/ecdsa.hpp"
#include "crypto/hash_types.hpp"

namespace ebv::crypto {

/// One deferred signature check: the (pubkey, signature, sighash) triple an
/// OP_CHECKSIG-family opcode would verify inline.
struct VerifyJob {
    PublicKey key;
    Signature sig;
    Hash256 digest;
};

struct BatchVerifyStats {
    std::size_t checked = 0;           ///< jobs examined
    std::size_t accepted = 0;          ///< jobs whose verdict is true
    std::size_t inversions_saved = 0;  ///< modular inversions amortized away
};

/// Verify every job, writing verdicts[i] == jobs[i].key.verify(
/// jobs[i].digest, jobs[i].sig) for all i — accept AND reject cases.
BatchVerifyStats verify_batch(std::span<const VerifyJob> jobs, bool* verdicts);

}  // namespace ebv::crypto
