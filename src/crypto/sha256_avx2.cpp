// 8-way AVX2 batch double-SHA256. Compiled with -mavx2 (see
// crypto/CMakeLists.txt); the dispatcher in sha256_batch.cpp only calls in
// here after have_avx2() confirms CPU support at runtime.
#include "crypto/sha256.hpp"

#if defined(EBV_CRYPTO_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "crypto/sha256_multiway.hpp"
#include "util/endian.hpp"

namespace ebv::crypto::detail {

namespace {

struct Avx2Ops {
    static constexpr std::size_t kLanes = 8;
    using Reg = __m256i;

    static Reg set1(std::uint32_t x) { return _mm256_set1_epi32(static_cast<int>(x)); }
    static Reg add(Reg a, Reg b) { return _mm256_add_epi32(a, b); }
    static Reg xor_(Reg a, Reg b) { return _mm256_xor_si256(a, b); }
    static Reg and_(Reg a, Reg b) { return _mm256_and_si256(a, b); }
    static Reg or_(Reg a, Reg b) { return _mm256_or_si256(a, b); }
    static Reg shr(Reg a, int n) { return _mm256_srli_epi32(a, n); }
    static Reg rotr(Reg a, int n) {
        return _mm256_or_si256(_mm256_srli_epi32(a, n), _mm256_slli_epi32(a, 32 - n));
    }
    /// Gather big-endian word `i` of the current block from each lane.
    static Reg load_word(const std::uint8_t* const* lane_blocks, int i) {
        return _mm256_set_epi32(static_cast<int>(util::load_be32(lane_blocks[7] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[6] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[5] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[4] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[3] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[2] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[1] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[0] + 4 * i)));
    }
    static void store(std::uint32_t out[kLanes], Reg r) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), r);
    }
};

}  // namespace

bool have_avx2() { return __builtin_cpu_supports("avx2"); }

void sha256d_batch_avx2(std::uint8_t* out, const std::uint8_t* const* blocks,
                        std::size_t nblocks) {
    multiway::sha256d_batch<Avx2Ops>(out, blocks, nblocks);
}

}  // namespace ebv::crypto::detail

#else  // !EBV_CRYPTO_AVX2

namespace ebv::crypto::detail {

bool have_avx2() { return false; }

void sha256d_batch_avx2(std::uint8_t*, const std::uint8_t* const*, std::size_t) {}

}  // namespace ebv::crypto::detail

#endif
