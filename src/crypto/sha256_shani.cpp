// SHA-NI single-stream SHA-256 compression (sha256msg1/2, sha256rnds2).
// Compiled with -msha -msse4.1 (see crypto/CMakeLists.txt); the dispatcher
// in sha256_batch.cpp only routes the streaming hasher through here after
// have_shani() confirms CPU support at runtime. One hardware-assisted
// stream typically outruns even the AVX2 8-way software schedule per lane,
// which is why the sha-ni row replaces the scalar transform rather than
// adding another multi-lane batch core.
#include "crypto/sha256.hpp"

#if defined(EBV_CRYPTO_SHANI) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif

namespace ebv::crypto::detail {

bool have_shani() {
#if defined(__GNUC__) || defined(__clang__)
    // Leaf 7 EBX bit 29 is the SHA extension flag. SHA-NI operates on xmm
    // state only, so no XSAVE component beyond SSE needs OS support; the
    // SSSE3/SSE4.1 shuffles the prologue uses are checked via the builtin.
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
    return (ebx & (1u << 29)) != 0 && __builtin_cpu_supports("sse4.1");
#else
    return false;
#endif
}

void sha256_transform_shani(std::uint32_t state[8], const std::uint8_t* block) {
    // Byte shuffle turning the big-endian message words into host dwords.
    const __m128i kBswap =
        _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

    // state[] is {a,b,c,d,e,f,g,h}; sha256rnds2 wants the ABEF/CDGH split.
    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
    __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
    state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0)), kBswap);
    __m128i m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), kBswap);
    __m128i m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), kBswap);
    __m128i m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), kBswap);

    // Four rounds per group; groups 0..11 also extend the message schedule:
    // W[g+4] = msg2(msg1(W[g], W[g+1]) + alignr(W[g+3], W[g+2], 4), W[g+3]).
    for (int g = 0; g < 16; ++g) {
        __m128i msg = _mm_add_epi32(
            m0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kSha256K + 4 * g)));
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
        msg = _mm_shuffle_epi32(msg, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

        if (g < 12) {
            __m128i next = _mm_sha256msg1_epu32(m0, m1);
            next = _mm_add_epi32(next, _mm_alignr_epi8(m3, m2, 4));
            next = _mm_sha256msg2_epu32(next, m3);
            m0 = next;
        }
        // Rotate the 4-vector window: the slot just consumed (and, in the
        // scheduling groups, refilled with W[g+4]) moves to the back.
        const __m128i rotated = m0;
        m0 = m1;
        m1 = m2;
        m2 = m3;
        m3 = rotated;
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    // Back to the {a..d}/{e..h} layout.
    tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);          // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8);             // HGFE

    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

}  // namespace ebv::crypto::detail

#else  // !EBV_CRYPTO_SHANI

namespace ebv::crypto::detail {

bool have_shani() { return false; }

void sha256_transform_shani(std::uint32_t*, const std::uint8_t*) {}

}  // namespace ebv::crypto::detail

#endif
