// Base58 and Base58Check codecs (Bitcoin address encoding): base-58 big-
// integer digits with a 4-byte double-SHA256 checksum and a version byte.
#pragma once

#include <optional>
#include <string>

#include "util/span.hpp"

namespace ebv::crypto {

/// Raw base-58 encoding (leading zero bytes become leading '1's).
std::string base58_encode(util::ByteSpan data);
std::optional<util::Bytes> base58_decode(std::string_view text);

/// Base58Check: version byte + payload + first 4 bytes of dSHA256.
std::string base58check_encode(std::uint8_t version, util::ByteSpan payload);
/// Returns (version, payload) or nullopt on bad checksum / malformed text.
std::optional<std::pair<std::uint8_t, util::Bytes>> base58check_decode(
    std::string_view text);

/// Address version bytes (Bitcoin mainnet values, reused by the simnet).
inline constexpr std::uint8_t kP2pkhVersion = 0x00;
inline constexpr std::uint8_t kP2shVersion = 0x05;

}  // namespace ebv::crypto
