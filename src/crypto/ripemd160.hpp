// RIPEMD-160, used (as in Bitcoin) to derive 20-byte script addresses:
// hash160(x) = RIPEMD160(SHA256(x)).
#pragma once

#include <array>
#include <cstdint>

#include "util/span.hpp"

namespace ebv::crypto {

class Ripemd160 {
public:
    static constexpr std::size_t kDigestSize = 20;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Ripemd160() { reset(); }

    void reset();
    Ripemd160& update(util::ByteSpan data);
    Digest finalize();

    static Digest hash(util::ByteSpan data);

private:
    void compress(const std::uint8_t* block);

    std::uint32_t state_[5];
    std::uint64_t total_len_ = 0;
    std::uint8_t buffer_[64];
    std::size_t buffer_len_ = 0;
};

}  // namespace ebv::crypto
