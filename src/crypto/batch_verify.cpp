#include "crypto/batch_verify.hpp"

#include <vector>

namespace ebv::crypto {

BatchVerifyStats verify_batch(std::span<const VerifyJob> jobs, bool* verdicts) {
    BatchVerifyStats stats;
    stats.checked = jobs.size();
    const ModArith& n = secp256k1::order();

    // Stage 1: the same early rejects as PublicKey::verify, collecting the
    // s values of surviving jobs for one shared inversion.
    std::vector<std::size_t> live;
    std::vector<U256> s_inv;
    live.reserve(jobs.size());
    s_inv.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        verdicts[i] = false;
        const VerifyJob& job = jobs[i];
        if (!job.key.valid()) continue;
        if (job.sig.r.is_zero() || job.sig.s.is_zero()) continue;
        if (!u256_less(job.sig.r, n.modulus()) || !u256_less(job.sig.s, n.modulus()))
            continue;
        live.push_back(i);
        s_inv.push_back(job.sig.s);
    }
    if (s_inv.size() > 1) stats.inversions_saved += s_inv.size() - 1;
    n.inverse_batch(s_inv.data(), s_inv.size());

    // Stage 2: u1 = z·s⁻¹, u2 = r·s⁻¹, then R = u1·G + u2·P per job, with
    // all Jacobian→affine conversions sharing one batched field inversion.
    std::vector<secp256k1::DoubleScalar> muls(live.size());
    for (std::size_t k = 0; k < live.size(); ++k) {
        const VerifyJob& job = jobs[live[k]];
        const U256 z = n.reduce(U256::from_be_bytes(job.digest.span()));
        muls[k] = secp256k1::DoubleScalar{job.key.point(), n.mul(z, s_inv[k]),
                                          n.mul(job.sig.r, s_inv[k])};
    }
    std::vector<secp256k1::Point> points(live.size());
    stats.inversions_saved +=
        secp256k1::multiply_double_generator_batch(muls, points.data());

    for (std::size_t k = 0; k < live.size(); ++k) {
        const secp256k1::Point& R = points[k];
        if (R.infinity) continue;
        if (n.reduce(R.x) == jobs[live[k]].sig.r) {
            verdicts[live[k]] = true;
            ++stats.accepted;
        }
    }
    return stats;
}

}  // namespace ebv::crypto
