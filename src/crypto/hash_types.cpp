#include "crypto/hash_types.hpp"

#include <algorithm>

#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"
#include "util/hex.hpp"

namespace ebv::crypto {

template <std::size_t N>
std::string HashValue<N>::to_hex() const {
    std::array<std::uint8_t, N> reversed = bytes_;
    std::reverse(reversed.begin(), reversed.end());
    return util::hex_encode({reversed.data(), reversed.size()});
}

template <std::size_t N>
std::optional<HashValue<N>> HashValue<N>::from_hex(std::string_view hex) {
    auto decoded = util::hex_decode(hex);
    if (!decoded || decoded->size() != N) return std::nullopt;
    std::reverse(decoded->begin(), decoded->end());
    return HashValue<N>::from_span(*decoded);
}

template class HashValue<32>;
template class HashValue<20>;

Hash256 hash256(util::ByteSpan data) {
    const auto d = double_sha256(data);
    return Hash256::from_span({d.data(), d.size()});
}

Hash160 hash160(util::ByteSpan data) {
    const auto sha = Sha256::hash(data);
    const auto rip = Ripemd160::hash({sha.data(), sha.size()});
    return Hash160::from_span({rip.data(), rip.size()});
}

}  // namespace ebv::crypto
