#include "crypto/u256.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/endian.hpp"

namespace ebv::crypto {

using u128 = unsigned __int128;

U256 U256::from_be_bytes(util::ByteSpan bytes32) {
    EBV_EXPECTS(bytes32.size() == 32);
    U256 v;
    for (int i = 0; i < 4; ++i) v.limbs[3 - i] = util::load_be64(bytes32.data() + 8 * i);
    return v;
}

void U256::to_be_bytes(util::MutableByteSpan out32) const {
    EBV_EXPECTS(out32.size() == 32);
    for (int i = 0; i < 4; ++i) util::store_be64(out32.data() + 8 * i, limbs[3 - i]);
}

U256 U256::from_hex(std::string_view hex64) {
    EBV_EXPECTS(hex64.size() == 64);
    auto nibble = [](char c) -> std::uint64_t {
        if (c >= '0' && c <= '9') return static_cast<std::uint64_t>(c - '0');
        if (c >= 'a' && c <= 'f') return static_cast<std::uint64_t>(c - 'a' + 10);
        if (c >= 'A' && c <= 'F') return static_cast<std::uint64_t>(c - 'A' + 10);
        EBV_EXPECTS(false && "invalid hex digit");
        return 0;
    };
    U256 v;
    for (int limb = 0; limb < 4; ++limb) {
        std::uint64_t acc = 0;
        for (int i = 0; i < 16; ++i) acc = acc << 4 | nibble(hex64[16 * limb + i]);
        v.limbs[3 - limb] = acc;
    }
    return v;
}

bool u256_less(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
        if (a.limbs[i] != b.limbs[i]) return a.limbs[i] < b.limbs[i];
    }
    return false;
}

std::uint64_t u256_add(const U256& a, const U256& b, U256& out) {
    u128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        const u128 sum = static_cast<u128>(a.limbs[i]) + b.limbs[i] + carry;
        out.limbs[i] = static_cast<std::uint64_t>(sum);
        carry = sum >> 64;
    }
    return static_cast<std::uint64_t>(carry);
}

std::uint64_t u256_sub(const U256& a, const U256& b, U256& out) {
    std::uint64_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
        const u128 diff = static_cast<u128>(a.limbs[i]) - b.limbs[i] - borrow;
        out.limbs[i] = static_cast<std::uint64_t>(diff);
        borrow = static_cast<std::uint64_t>((diff >> 64) & 1);
    }
    return borrow;
}

void u256_mul_wide(const U256& a, const U256& b, std::uint64_t out[8]) {
    for (int i = 0; i < 8; ++i) out[i] = 0;
    for (int i = 0; i < 4; ++i) {
        u128 carry = 0;
        for (int j = 0; j < 4; ++j) {
            const u128 cur =
                static_cast<u128>(a.limbs[i]) * b.limbs[j] + out[i + j] + carry;
            out[i + j] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
        }
        out[i + 4] = static_cast<std::uint64_t>(carry);
    }
}

ModArith::ModArith(const U256& modulus) : m_(modulus) {
    // complement = 2^256 - m, computed as (~m) + 1 over 4 limbs.
    U256 not_m;
    for (int i = 0; i < 4; ++i) not_m.limbs[i] = ~m_.limbs[i];
    u256_add(not_m, U256::one(), complement_);
    // The folding reduction below converges only when the complement is
    // small; both secp256k1 moduli have complements under 2^130. Anything
    // below 2^192 converges geometrically.
    EBV_EXPECTS(complement_.limbs[3] == 0);
    EBV_EXPECTS(m_.limbs[3] >= (1ULL << 63));  // m > 2^255
}

U256 ModArith::reduce(const U256& a) const {
    U256 out = a;
    while (!u256_less(out, m_)) u256_sub(out, m_, out);
    return out;
}

U256 ModArith::add(const U256& a, const U256& b) const {
    U256 sum;
    const std::uint64_t carry = u256_add(a, b, sum);
    if (carry) {
        // sum overflowed 2^256: true value is sum + 2^256 ≡ sum + complement.
        // complement < 2^130 so this addition cannot overflow again after
        // one further fold.
        std::uint64_t carry2 = u256_add(sum, complement_, sum);
        if (carry2) u256_add(sum, complement_, sum);
    }
    return reduce(sum);
}

U256 ModArith::sub(const U256& a, const U256& b) const {
    U256 diff;
    const std::uint64_t borrow = u256_sub(a, b, diff);
    if (borrow) u256_add(diff, m_, diff);
    return reduce(diff);
}

U256 ModArith::neg(const U256& a) const {
    if (a.is_zero()) return a;
    U256 out;
    u256_sub(m_, reduce(a), out);
    return out;
}

U256 ModArith::reduce_wide(const std::uint64_t limbs[8]) const {
    std::uint64_t acc[8];
    for (int i = 0; i < 8; ++i) acc[i] = limbs[i];

    auto high_is_zero = [&] { return (acc[4] | acc[5] | acc[6] | acc[7]) == 0; };

    while (!high_is_zero()) {
        const U256 hi{{acc[4], acc[5], acc[6], acc[7]}};
        const U256 lo{{acc[0], acc[1], acc[2], acc[3]}};

        // acc = hi * complement + lo. With complement < 2^130 the product is
        // at most ~2^386, so the loop shrinks the high half geometrically.
        std::uint64_t prod[8];
        u256_mul_wide(hi, complement_, prod);

        u128 carry = 0;
        for (int i = 0; i < 4; ++i) {
            const u128 sum = static_cast<u128>(prod[i]) + lo.limbs[i] + carry;
            acc[i] = static_cast<std::uint64_t>(sum);
            carry = sum >> 64;
        }
        for (int i = 4; i < 8; ++i) {
            const u128 sum = static_cast<u128>(prod[i]) + carry;
            acc[i] = static_cast<std::uint64_t>(sum);
            carry = sum >> 64;
        }
        EBV_ASSERT(carry == 0);
    }

    return reduce(U256{{acc[0], acc[1], acc[2], acc[3]}});
}

U256 ModArith::mul(const U256& a, const U256& b) const {
    std::uint64_t wide[8];
    u256_mul_wide(a, b, wide);
    return reduce_wide(wide);
}

U256 ModArith::pow(const U256& base, const U256& exponent) const {
    U256 result = U256::one();
    const U256 b = reduce(base);
    bool started = false;
    for (int i = 255; i >= 0; --i) {
        if (started) result = sqr(result);
        if (exponent.bit(static_cast<unsigned>(i))) {
            if (started) {
                result = mul(result, b);
            } else {
                result = b;
                started = true;
            }
        }
    }
    return started ? result : U256::one();
}

U256 ModArith::inverse(const U256& a) const {
    EBV_EXPECTS(!reduce(a).is_zero());
    U256 exp;
    u256_sub(m_, U256::from_u64(2), exp);
    return pow(a, exp);
}

void ModArith::inverse_batch(U256* values, std::size_t n) const {
    if (n == 0) return;
    if (n == 1) {
        values[0] = inverse(values[0]);
        return;
    }

    // prefix[i] = values[0] * ... * values[i]. The product is nonzero iff
    // every factor is (m is prime), so inverse() below doubles as the
    // all-nonzero precondition check.
    std::vector<U256> prefix(n);
    prefix[0] = reduce(values[0]);
    for (std::size_t i = 1; i < n; ++i) prefix[i] = mul(prefix[i - 1], values[i]);

    U256 inv = inverse(prefix[n - 1]);
    for (std::size_t i = n - 1; i > 0; --i) {
        const U256 value = values[i];
        values[i] = mul(inv, prefix[i - 1]);
        inv = mul(inv, value);
    }
    values[0] = inv;
}

}  // namespace ebv::crypto
