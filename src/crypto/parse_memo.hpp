// Memoized pubkey/DER-signature parsing for the script checkers.
//
// Multi-input transactions spending outputs of the same key re-parse the
// identical 33-byte compressed pubkey (a field sqrt to decompress) and,
// under batched SV re-runs, the identical DER signature for every input.
// These helpers keep a small thread-local direct-mapped cache keyed on the
// byte content, so repeat parses are a hash + memcmp. Thread-local state
// means no locks on the validation hot path and no false sharing between
// pool workers; values are returned by value (both types are small PODs).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/ecdsa.hpp"
#include "util/span.hpp"

namespace ebv::crypto {

/// PublicKey::parse with a thread-local memo. Negative results (invalid
/// encodings) are cached too, so malformed scripts cannot thrash the table.
std::optional<PublicKey> parse_public_key_memo(util::ByteSpan bytes);

/// Signature::from_der with a thread-local memo (same contract).
std::optional<Signature> parse_signature_der_memo(util::ByteSpan der);

/// Hit/miss counters for the *calling thread's* tables (tests and metrics).
struct ParseMemoStats {
    std::uint64_t pubkey_hits = 0;
    std::uint64_t pubkey_misses = 0;
    std::uint64_t sig_hits = 0;
    std::uint64_t sig_misses = 0;
};
[[nodiscard]] ParseMemoStats parse_memo_stats();

/// Clears the calling thread's tables and counters (tests).
void parse_memo_reset();

}  // namespace ebv::crypto
