// 16-way AVX-512F batch double-SHA256. Compiled with -mavx512f (see
// crypto/CMakeLists.txt); the dispatcher in sha256_batch.cpp only calls in
// here after have_avx512() confirms CPU *and* OS (zmm XSAVE) support at
// runtime.
#include "crypto/sha256.hpp"

#if defined(EBV_CRYPTO_AVX512) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "crypto/sha256_multiway.hpp"
#include "util/endian.hpp"

namespace ebv::crypto::detail {

namespace {

struct Avx512Ops {
    static constexpr std::size_t kLanes = 16;
    using Reg = __m512i;

    static Reg set1(std::uint32_t x) { return _mm512_set1_epi32(static_cast<int>(x)); }
    static Reg add(Reg a, Reg b) { return _mm512_add_epi32(a, b); }
    static Reg xor_(Reg a, Reg b) { return _mm512_xor_si512(a, b); }
    static Reg and_(Reg a, Reg b) { return _mm512_and_si512(a, b); }
    static Reg or_(Reg a, Reg b) { return _mm512_or_si512(a, b); }
    static Reg shr(Reg a, int n) { return _mm512_srli_epi32(a, static_cast<unsigned>(n)); }
    static Reg rotr(Reg a, int n) {
        return _mm512_or_si512(_mm512_srli_epi32(a, static_cast<unsigned>(n)),
                               _mm512_slli_epi32(a, static_cast<unsigned>(32 - n)));
    }
    /// Gather big-endian word `i` of the current block from each lane.
    static Reg load_word(const std::uint8_t* const* lane_blocks, int i) {
        return _mm512_set_epi32(static_cast<int>(util::load_be32(lane_blocks[15] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[14] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[13] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[12] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[11] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[10] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[9] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[8] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[7] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[6] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[5] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[4] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[3] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[2] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[1] + 4 * i)),
                                static_cast<int>(util::load_be32(lane_blocks[0] + 4 * i)));
    }
    static void store(std::uint32_t out[kLanes], Reg r) {
        _mm512_storeu_si512(reinterpret_cast<void*>(out), r);
    }
};

}  // namespace

bool have_avx512() { return __builtin_cpu_supports("avx512f"); }

void sha256d_batch_avx512(std::uint8_t* out, const std::uint8_t* const* blocks,
                          std::size_t nblocks) {
    multiway::sha256d_batch<Avx512Ops>(out, blocks, nblocks);
}

}  // namespace ebv::crypto::detail

#else  // !EBV_CRYPTO_AVX512

namespace ebv::crypto::detail {

bool have_avx512() { return false; }

void sha256d_batch_avx512(std::uint8_t*, const std::uint8_t* const*, std::size_t) {}

}  // namespace ebv::crypto::detail

#endif
