#include "crypto/parse_memo.hpp"

#include <cstring>

namespace ebv::crypto {

namespace {

constexpr std::size_t kSlots = 64;  // power of two; direct-mapped
constexpr std::uint8_t kEmpty = 0xFF;

std::uint64_t fnv1a(util::ByteSpan bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// One direct-mapped slot: the full key bytes (compared on hit — the hash
/// only picks the slot), the parse outcome, and the parsed value.
template <typename T, std::size_t MaxKey>
struct Entry {
    std::uint8_t key[MaxKey];
    std::uint8_t len = kEmpty;  // kEmpty = unoccupied; valid keys are shorter
    bool ok = false;
    T value{};
};

template <typename T, std::size_t MaxKey, typename ParseFn>
std::optional<T> memoized(Entry<T, MaxKey>* table, util::ByteSpan bytes, ParseFn parse,
                          std::uint64_t& hits, std::uint64_t& misses) {
    if (bytes.size() >= kEmpty || bytes.size() > MaxKey) return parse(bytes);

    Entry<T, MaxKey>& e = table[fnv1a(bytes) & (kSlots - 1)];
    if (e.len == bytes.size() &&
        (bytes.empty() || std::memcmp(e.key, bytes.data(), bytes.size()) == 0)) {
        ++hits;
        if (!e.ok) return std::nullopt;
        return e.value;
    }

    ++misses;
    std::optional<T> parsed = parse(bytes);
    if (!bytes.empty()) std::memcpy(e.key, bytes.data(), bytes.size());
    e.len = static_cast<std::uint8_t>(bytes.size());
    e.ok = parsed.has_value();
    if (parsed) e.value = *parsed;
    return parsed;
}

struct ThreadTables {
    // 33-byte compressed pubkeys; 72 bytes covers every strict-DER signature.
    Entry<PublicKey, 33> pubkeys[kSlots];
    Entry<Signature, 80> sigs[kSlots];
    ParseMemoStats stats;
};

ThreadTables& tables() {
    thread_local ThreadTables t;
    return t;
}

}  // namespace

std::optional<PublicKey> parse_public_key_memo(util::ByteSpan bytes) {
    ThreadTables& t = tables();
    return memoized(t.pubkeys, bytes, [](util::ByteSpan b) { return PublicKey::parse(b); },
                    t.stats.pubkey_hits, t.stats.pubkey_misses);
}

std::optional<Signature> parse_signature_der_memo(util::ByteSpan der) {
    ThreadTables& t = tables();
    return memoized(t.sigs, der, [](util::ByteSpan b) { return Signature::from_der(b); },
                    t.stats.sig_hits, t.stats.sig_misses);
}

ParseMemoStats parse_memo_stats() { return tables().stats; }

void parse_memo_reset() { tables() = ThreadTables{}; }

}  // namespace ebv::crypto
