#include "crypto/base58.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.hpp"

namespace ebv::crypto {

namespace {

constexpr char kAlphabet[] = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

int digit_value(char c) {
    const char* pos = std::strchr(kAlphabet, c);
    if (pos == nullptr || c == '\0') return -1;
    return static_cast<int>(pos - kAlphabet);
}

}  // namespace

std::string base58_encode(util::ByteSpan data) {
    // Count leading zeros (each encodes as '1').
    std::size_t zeros = 0;
    while (zeros < data.size() && data[zeros] == 0) ++zeros;

    // Big-integer base conversion, digits little-endian in `digits`.
    std::vector<std::uint8_t> digits;
    for (std::size_t i = zeros; i < data.size(); ++i) {
        int carry = data[i];
        for (auto& d : digits) {
            const int value = d * 256 + carry;
            d = static_cast<std::uint8_t>(value % 58);
            carry = value / 58;
        }
        while (carry > 0) {
            digits.push_back(static_cast<std::uint8_t>(carry % 58));
            carry /= 58;
        }
    }

    std::string out(zeros, '1');
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) out.push_back(kAlphabet[*it]);
    return out;
}

std::optional<util::Bytes> base58_decode(std::string_view text) {
    std::size_t ones = 0;
    while (ones < text.size() && text[ones] == '1') ++ones;

    std::vector<std::uint8_t> bytes;  // little-endian
    for (std::size_t i = ones; i < text.size(); ++i) {
        const int value = digit_value(text[i]);
        if (value < 0) return std::nullopt;
        int carry = value;
        for (auto& b : bytes) {
            const int v = b * 58 + carry;
            b = static_cast<std::uint8_t>(v & 0xff);
            carry = v >> 8;
        }
        while (carry > 0) {
            bytes.push_back(static_cast<std::uint8_t>(carry & 0xff));
            carry >>= 8;
        }
    }

    util::Bytes out(ones, 0);
    out.insert(out.end(), bytes.rbegin(), bytes.rend());
    return out;
}

std::string base58check_encode(std::uint8_t version, util::ByteSpan payload) {
    util::Bytes data;
    data.reserve(1 + payload.size() + 4);
    data.push_back(version);
    data.insert(data.end(), payload.begin(), payload.end());
    const auto digest = double_sha256(data);
    data.insert(data.end(), digest.begin(), digest.begin() + 4);
    return base58_encode(data);
}

std::optional<std::pair<std::uint8_t, util::Bytes>> base58check_decode(
    std::string_view text) {
    const auto decoded = base58_decode(text);
    if (!decoded || decoded->size() < 5) return std::nullopt;

    const util::ByteSpan body(decoded->data(), decoded->size() - 4);
    const auto digest = double_sha256(body);
    if (std::memcmp(digest.data(), decoded->data() + decoded->size() - 4, 4) != 0)
        return std::nullopt;

    return std::make_pair((*decoded)[0],
                          util::Bytes(decoded->begin() + 1, decoded->end() - 4));
}

}  // namespace ebv::crypto
