// Batched double-SHA256: scalar core, runtime ISA dispatch, and the public
// sha256d64_many / sha256d_many entry points used by the Merkle layer.
#include "crypto/sha256.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "util/endian.hpp"

namespace ebv::crypto {

namespace detail {

void sha256d_batch_scalar(std::uint8_t* out, const std::uint8_t* const* blocks,
                          std::size_t nblocks, std::size_t lanes) {
    for (std::size_t l = 0; l < lanes; ++l) {
        std::uint32_t state[8];
        for (int k = 0; k < 8; ++k) state[k] = kSha256Init[k];
        for (std::size_t b = 0; b < nblocks; ++b) sha256_transform(state, blocks[b * lanes + l]);

        // Second hash: the 32-byte digest padded into one fixed block.
        std::uint8_t second[64];
        for (int k = 0; k < 8; ++k) util::store_be32(second + 4 * k, state[k]);
        second[32] = 0x80;
        std::memset(second + 33, 0, 29);
        second[62] = 0x01;  // 256 bits, big-endian
        second[63] = 0x00;

        for (int k = 0; k < 8; ++k) state[k] = kSha256Init[k];
        sha256_transform(state, second);
        for (int k = 0; k < 8; ++k) util::store_be32(out + 32 * l + 4 * k, state[k]);
    }
}

}  // namespace detail

namespace {

struct BatchImpl {
    const char* name;
    std::size_t lanes;
    // Fixed-lane SIMD core, or nullptr for the scalar fallback.
    void (*batch)(std::uint8_t* out, const std::uint8_t* const* blocks, std::size_t nblocks);
};

constexpr BatchImpl kScalarImpl{"scalar", 1, nullptr};
constexpr BatchImpl kSse2Impl{"sse2", detail::kSse2Lanes, &detail::sha256d_batch_sse2};
constexpr BatchImpl kAvx2Impl{"avx2", detail::kAvx2Lanes, &detail::sha256d_batch_avx2};

const BatchImpl* detect_impl() {
    if (detail::have_avx2()) return &kAvx2Impl;
    if (detail::have_sse2()) return &kSse2Impl;
    return &kScalarImpl;
}

const BatchImpl* initial_impl() {
    if (const char* env = std::getenv("EBV_SHA256_IMPL")) {
        const std::string_view want{env};
        if (want == "scalar") return &kScalarImpl;
        if (want == "sse2" && detail::have_sse2()) return &kSse2Impl;
        if (want == "avx2" && detail::have_avx2()) return &kAvx2Impl;
    }
    return detect_impl();
}

const BatchImpl*& active_impl() {
    static const BatchImpl* impl = initial_impl();
    return impl;
}

}  // namespace

const char* sha256_batch_impl() { return active_impl()->name; }

bool sha256_force_batch_impl(std::string_view name) {
    if (name == "auto") {
        active_impl() = detect_impl();
        return true;
    }
    if (name == "scalar") {
        active_impl() = &kScalarImpl;
        return true;
    }
    if (name == "sse2" && detail::have_sse2()) {
        active_impl() = &kSse2Impl;
        return true;
    }
    if (name == "avx2" && detail::have_avx2()) {
        active_impl() = &kAvx2Impl;
        return true;
    }
    return false;
}

void sha256d64_many(std::uint8_t* out, const std::uint8_t* in, std::size_t n) {
    // A 64-byte message pads to two blocks; the pad block is constant
    // (0x80, zeros, bit length 512) and shared across every lane.
    static constexpr std::uint8_t kPad64[64] = {
        0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x02, 0x00};

    const BatchImpl& impl = *active_impl();
    const std::size_t w = impl.lanes;
    std::size_t i = 0;
    if (impl.batch != nullptr) {
        // 8 lanes * 2 blocks max; blocks[b*W + l] = block b of lane l.
        const std::uint8_t* blocks[2 * 8];
        for (; i + w <= n; i += w) {
            for (std::size_t l = 0; l < w; ++l) {
                blocks[l] = in + 64 * (i + l);
                blocks[w + l] = kPad64;
            }
            // Safe in-place: the group's 32-byte outputs land inside its own
            // 64-byte inputs, which were fully consumed before any store.
            impl.batch(out + 32 * i, blocks, 2);
        }
    }
    for (; i < n; ++i) {
        const std::uint8_t* blocks[2] = {in + 64 * i, kPad64};
        detail::sha256d_batch_scalar(out + 32 * i, blocks, 2, 1);
    }
}

void sha256d_many(const util::ByteSpan* inputs, Sha256::Digest* outputs, std::size_t n) {
    const BatchImpl& impl = *active_impl();
    const std::size_t w = impl.lanes;

    if (impl.batch == nullptr || n < w) {
        for (std::size_t i = 0; i < n; ++i) outputs[i] = double_sha256(inputs[i]);
        return;
    }

    // Group messages with equal padded block counts so each SIMD batch runs
    // the same number of transforms in every lane. stable_sort keeps the
    // grouping deterministic.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    const auto nblocks_of = [&](std::size_t i) { return (inputs[i].size() + 9 + 63) / 64; };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return nblocks_of(a) < nblocks_of(b); });

    std::vector<std::uint8_t> scratch;
    std::vector<const std::uint8_t*> blocks;
    std::uint8_t digests[8 * 32];

    std::size_t run = 0;
    while (run < n) {
        const std::size_t nblocks = nblocks_of(order[run]);
        std::size_t run_end = run;
        while (run_end < n && nblocks_of(order[run_end]) == nblocks) ++run_end;

        std::size_t i = run;
        for (; i + w <= run_end; i += w) {
            scratch.assign(w * nblocks * 64, 0);
            blocks.resize(w * nblocks);
            for (std::size_t l = 0; l < w; ++l) {
                const util::ByteSpan msg = inputs[order[i + l]];
                std::uint8_t* lane = scratch.data() + l * nblocks * 64;
                if (!msg.empty()) std::memcpy(lane, msg.data(), msg.size());
                lane[msg.size()] = 0x80;
                util::store_be64(lane + nblocks * 64 - 8,
                                 static_cast<std::uint64_t>(msg.size()) * 8);
                for (std::size_t b = 0; b < nblocks; ++b) blocks[b * w + l] = lane + b * 64;
            }
            impl.batch(digests, blocks.data(), nblocks);
            for (std::size_t l = 0; l < w; ++l)
                std::memcpy(outputs[order[i + l]].data(), digests + 32 * l, 32);
        }
        for (; i < run_end; ++i) outputs[order[i]] = double_sha256(inputs[order[i]]);
        run = run_end;
    }
}

}  // namespace ebv::crypto
