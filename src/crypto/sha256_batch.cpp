// Batched double-SHA256: scalar core, runtime ISA dispatch, and the public
// sha256d64_many / sha256d_many entry points used by the Merkle layer.
//
// A dispatch selection has two orthogonal dimensions: a multi-lane *batch*
// row (scalar / 4-way SSE2 / 8-way AVX2 / 16-way AVX-512) feeding the
// sha256d*_many entry points, and a single-stream *transform* (portable
// scalar or SHA-NI) feeding the streaming Sha256 hasher. Auto-detection
// composes the best of each ("avx512+sha-ni" on a machine with both);
// forcing a pure name pins both dimensions so tests and benches measure
// exactly one code path.
#include "crypto/sha256.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "util/endian.hpp"

namespace ebv::crypto {

namespace {

/// Double-SHA256 of `lanes` pre-padded messages, one stream at a time
/// through `tf` (the scalar core, or SHA-NI when that row is active).
void sha256d_stream_lanes(std::uint8_t* out, const std::uint8_t* const* blocks,
                          std::size_t nblocks, std::size_t lanes, detail::TransformFn tf) {
    for (std::size_t l = 0; l < lanes; ++l) {
        std::uint32_t state[8];
        for (int k = 0; k < 8; ++k) state[k] = detail::kSha256Init[k];
        for (std::size_t b = 0; b < nblocks; ++b) tf(state, blocks[b * lanes + l]);

        // Second hash: the 32-byte digest padded into one fixed block.
        std::uint8_t second[64];
        for (int k = 0; k < 8; ++k) util::store_be32(second + 4 * k, state[k]);
        second[32] = 0x80;
        std::memset(second + 33, 0, 29);
        second[62] = 0x01;  // 256 bits, big-endian
        second[63] = 0x00;

        for (int k = 0; k < 8; ++k) state[k] = detail::kSha256Init[k];
        tf(state, second);
        for (int k = 0; k < 8; ++k) util::store_be32(out + 32 * l + 4 * k, state[k]);
    }
}

}  // namespace

namespace detail {

void sha256d_batch_scalar(std::uint8_t* out, const std::uint8_t* const* blocks,
                          std::size_t nblocks, std::size_t lanes) {
    sha256d_stream_lanes(out, blocks, nblocks, lanes, &sha256_transform);
}

}  // namespace detail

namespace {

using BatchFn = void (*)(std::uint8_t* out, const std::uint8_t* const* blocks,
                         std::size_t nblocks);

struct Selection {
    const char* name;        // full selection name, e.g. "avx512+sha-ni"
    int index;               // stable gauge id (see sha256_impl_index())
    const char* batch_name;  // batch dimension only, e.g. "avx512"
    std::size_t lanes;
    BatchFn batch;  // fixed-lane SIMD core, or nullptr for the scalar fallback
    detail::TransformFn transform;  // single-stream compression
};

constexpr Selection kSelections[] = {
    {"scalar", 0, "scalar", 1, nullptr, &detail::sha256_transform},
    {"sse2", 1, "sse2", detail::kSse2Lanes, &detail::sha256d_batch_sse2,
     &detail::sha256_transform},
    {"avx2", 2, "avx2", detail::kAvx2Lanes, &detail::sha256d_batch_avx2,
     &detail::sha256_transform},
    {"avx512", 3, "avx512", detail::kAvx512Lanes, &detail::sha256d_batch_avx512,
     &detail::sha256_transform},
    {"sha-ni", 4, "scalar", 1, nullptr, &detail::sha256_transform_shani},
    {"sse2+sha-ni", 5, "sse2", detail::kSse2Lanes, &detail::sha256d_batch_sse2,
     &detail::sha256_transform_shani},
    {"avx2+sha-ni", 6, "avx2", detail::kAvx2Lanes, &detail::sha256d_batch_avx2,
     &detail::sha256_transform_shani},
    {"avx512+sha-ni", 7, "avx512", detail::kAvx512Lanes, &detail::sha256d_batch_avx512,
     &detail::sha256_transform_shani},
};

bool selection_supported(const Selection& s) {
    if (s.batch == &detail::sha256d_batch_sse2 && !detail::have_sse2()) return false;
    if (s.batch == &detail::sha256d_batch_avx2 && !detail::have_avx2()) return false;
    if (s.batch == &detail::sha256d_batch_avx512 && !detail::have_avx512()) return false;
    if (s.transform == &detail::sha256_transform_shani && !detail::have_shani()) return false;
    return true;
}

const Selection* find_selection(std::string_view name) {
    for (const Selection& s : kSelections)
        if (name == s.name) return &s;
    return nullptr;
}

/// Best available: widest batch row paired with SHA-NI when present.
const Selection* detect_selection() {
    int batch = 0;
    if (detail::have_avx512()) {
        batch = 3;
    } else if (detail::have_avx2()) {
        batch = 2;
    } else if (detail::have_sse2()) {
        batch = 1;
    }
    return &kSelections[batch + (detail::have_shani() ? 4 : 0)];
}

const Selection* initial_selection() {
    if (const char* env = std::getenv("EBV_SHA256_IMPL")) {
        // Env semantics = graceful fallback: honor when supported, else
        // silently take the best available (matches sha256_request_impl).
        const Selection* s = find_selection(env);
        if (s != nullptr && selection_supported(*s)) return s;
    }
    return detect_selection();
}

const Selection*& active_selection() {
    static const Selection* sel = initial_selection();
    return sel;
}

}  // namespace

namespace detail {

TransformFn sha256_transform_active() { return active_selection()->transform; }

}  // namespace detail

const char* sha256_batch_impl() { return active_selection()->batch_name; }

const char* sha256_impl() { return active_selection()->name; }

int sha256_impl_index() { return active_selection()->index; }

bool sha256_force_batch_impl(std::string_view name) {
    if (name == "auto") {
        active_selection() = detect_selection();
        return true;
    }
    const Selection* s = find_selection(name);
    if (s == nullptr || !selection_supported(*s)) return false;
    active_selection() = s;
    return true;
}

const char* sha256_request_impl(std::string_view name) {
    const Selection* s = (name == "auto") ? nullptr : find_selection(name);
    active_selection() = (s != nullptr && selection_supported(*s)) ? s : detect_selection();
    return active_selection()->name;
}

void sha256d64_many(std::uint8_t* out, const std::uint8_t* in, std::size_t n) {
    // Message count per call (not per lane): one relaxed add regardless of
    // batch width, so instrumentation cost is amortized over the batch.
    static obs::Counter& msgs =
        obs::Registry::global().counter("ebv.crypto.sha256d64_msgs");
    msgs.inc(n);
    // A 64-byte message pads to two blocks; the pad block is constant
    // (0x80, zeros, bit length 512) and shared across every lane.
    static constexpr std::uint8_t kPad64[64] = {
        0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x02, 0x00};

    const Selection& impl = *active_selection();
    const std::size_t w = impl.lanes;
    std::size_t i = 0;
    if (impl.batch != nullptr) {
        // 16 lanes * 2 blocks max; blocks[b*W + l] = block b of lane l.
        const std::uint8_t* blocks[2 * detail::kAvx512Lanes];
        for (; i + w <= n; i += w) {
            for (std::size_t l = 0; l < w; ++l) {
                blocks[l] = in + 64 * (i + l);
                blocks[w + l] = kPad64;
            }
            // Safe in-place: the group's 32-byte outputs land inside its own
            // 64-byte inputs, which were fully consumed before any store.
            impl.batch(out + 32 * i, blocks, 2);
        }
    }
    for (; i < n; ++i) {
        const std::uint8_t* blocks[2] = {in + 64 * i, kPad64};
        sha256d_stream_lanes(out + 32 * i, blocks, 2, 1, impl.transform);
    }
}

void sha256d_many(const util::ByteSpan* inputs, Sha256::Digest* outputs, std::size_t n) {
    static obs::Counter& msgs =
        obs::Registry::global().counter("ebv.crypto.sha256d_msgs");
    msgs.inc(n);
    const Selection& impl = *active_selection();
    const std::size_t w = impl.lanes;

    if (impl.batch == nullptr || n < w) {
        for (std::size_t i = 0; i < n; ++i) outputs[i] = double_sha256(inputs[i]);
        return;
    }

    // Group messages with equal padded block counts so each SIMD batch runs
    // the same number of transforms in every lane. stable_sort keeps the
    // grouping deterministic.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    const auto nblocks_of = [&](std::size_t i) { return (inputs[i].size() + 9 + 63) / 64; };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return nblocks_of(a) < nblocks_of(b); });

    std::vector<std::uint8_t> scratch;
    std::vector<const std::uint8_t*> blocks;
    std::uint8_t digests[detail::kAvx512Lanes * 32];

    std::size_t run = 0;
    while (run < n) {
        const std::size_t nblocks = nblocks_of(order[run]);
        std::size_t run_end = run;
        while (run_end < n && nblocks_of(order[run_end]) == nblocks) ++run_end;

        std::size_t i = run;
        for (; i + w <= run_end; i += w) {
            scratch.assign(w * nblocks * 64, 0);
            blocks.resize(w * nblocks);
            for (std::size_t l = 0; l < w; ++l) {
                const util::ByteSpan msg = inputs[order[i + l]];
                std::uint8_t* lane = scratch.data() + l * nblocks * 64;
                if (!msg.empty()) std::memcpy(lane, msg.data(), msg.size());
                lane[msg.size()] = 0x80;
                util::store_be64(lane + nblocks * 64 - 8,
                                 static_cast<std::uint64_t>(msg.size()) * 8);
                for (std::size_t b = 0; b < nblocks; ++b) blocks[b * w + l] = lane + b * 64;
            }
            impl.batch(digests, blocks.data(), nblocks);
            for (std::size_t l = 0; l < w; ++l)
                std::memcpy(outputs[order[i + l]].data(), digests + 32 * l, 32);
        }
        for (; i < run_end; ++i) outputs[order[i]] = double_sha256(inputs[order[i]]);
        run = run_end;
    }
}

}  // namespace ebv::crypto
