#include "crypto/merkle.hpp"

#include "crypto/sha256.hpp"
#include "util/assert.hpp"

namespace ebv::crypto {

namespace {

Hash256 hash_pair(const Hash256& left, const Hash256& right) {
    Sha256 h;
    h.update(left.span());
    h.update(right.span());
    const auto first = h.finalize();
    return Hash256::from_span(
        util::ByteSpan{Sha256::hash({first.data(), first.size()}).data(), 32});
}

/// One level up: pairs hashed together, odd tail duplicated.
std::vector<Hash256> next_level(const std::vector<Hash256>& level) {
    std::vector<Hash256> up;
    up.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
        const Hash256& left = level[i];
        const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
        up.push_back(hash_pair(left, right));
    }
    return up;
}

}  // namespace

Hash256 merkle_root(const std::vector<Hash256>& leaves) {
    if (leaves.empty()) return Hash256{};
    std::vector<Hash256> level = leaves;
    while (level.size() > 1) level = next_level(level);
    return level[0];
}

MerkleBranch merkle_branch(const std::vector<Hash256>& leaves, std::uint32_t index) {
    EBV_EXPECTS(index < leaves.size());
    MerkleBranch branch;
    branch.index = index;

    std::vector<Hash256> level = leaves;
    std::uint32_t pos = index;
    while (level.size() > 1) {
        const std::uint32_t sibling = pos ^ 1;
        // A duplicated odd tail is its own sibling.
        branch.siblings.push_back(sibling < level.size() ? level[sibling] : level[pos]);
        level = next_level(level);
        pos >>= 1;
    }
    return branch;
}

Hash256 fold_branch(const Hash256& leaf, const MerkleBranch& branch) {
    Hash256 node = leaf;
    std::uint32_t pos = branch.index;
    for (const Hash256& sibling : branch.siblings) {
        node = (pos & 1) ? hash_pair(sibling, node) : hash_pair(node, sibling);
        pos >>= 1;
    }
    return node;
}

void MerkleBranch::serialize(util::Writer& w) const {
    w.compact_size(siblings.size());
    for (const auto& s : siblings) w.bytes(s.span());
    w.u32(index);
}

util::Result<MerkleBranch, util::DecodeError> MerkleBranch::deserialize(util::Reader& r) {
    auto count = r.compact_size();
    if (!count) return util::Unexpected{count.error()};
    // A branch deeper than 48 levels would describe a tree with more leaves
    // than any block can hold.
    if (*count > 48) return util::Unexpected{util::DecodeError::kOversizedField};
    MerkleBranch branch;
    branch.siblings.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto bytes = r.bytes(32);
        if (!bytes) return util::Unexpected{bytes.error()};
        branch.siblings.push_back(Hash256::from_span(*bytes));
    }
    auto idx = r.u32();
    if (!idx) return util::Unexpected{idx.error()};
    branch.index = *idx;
    return branch;
}

}  // namespace ebv::crypto
