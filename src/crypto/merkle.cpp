#include "crypto/merkle.hpp"

#include <cstring>

#include "crypto/merkle_cache.hpp"
#include "crypto/sha256.hpp"
#include "util/assert.hpp"

namespace ebv::crypto {

namespace {

// The in-place level reduction below reinterprets vector<Hash256> storage as
// a flat byte run of concatenated 32-byte nodes.
static_assert(sizeof(Hash256) == 32, "Hash256 must be exactly its 32 bytes");

Hash256 hash_pair(const Hash256& left, const Hash256& right) {
    std::uint8_t pair[64];
    std::memcpy(pair, left.bytes().data(), 32);
    std::memcpy(pair + 32, right.bytes().data(), 32);
    Hash256 out;
    sha256d64_many(out.bytes().data(), pair, 1);
    return out;
}

}  // namespace

namespace detail {

/// Reduce `level` one step in place: pairs hashed together (batched through
/// sha256d64_many), odd tail duplicated. Writing digest i at offset 32*i
/// never overtakes the pair read at offset 64*i, and each SIMD lane group
/// consumes all its input before storing, so in-place is safe.
void merkle_reduce_level(std::vector<Hash256>& level) {
    if (level.size() & 1) level.push_back(level.back());
    const std::size_t pairs = level.size() / 2;
    auto* bytes = reinterpret_cast<std::uint8_t*>(level.data());
    sha256d64_many(bytes, bytes, pairs);
    level.resize(pairs);
}

}  // namespace detail

Hash256 merkle_root(const std::vector<Hash256>& leaves) {
    if (leaves.empty()) return Hash256{};
    std::vector<Hash256> level;
    level.reserve(leaves.size() + 1);  // +1 for a duplicated odd tail
    level.assign(leaves.begin(), leaves.end());
    while (level.size() > 1) detail::merkle_reduce_level(level);
    return level[0];
}

MerkleBranch merkle_branch(const std::vector<Hash256>& leaves, std::uint32_t index) {
    EBV_EXPECTS(index < leaves.size());
    return MerkleTreeCache(leaves).branch(index);
}

Hash256 fold_branch(const Hash256& leaf, const MerkleBranch& branch) {
    if (branch.siblings.size() > kMaxMerkleBranchDepth) return Hash256{};
    Hash256 node = leaf;
    std::uint32_t pos = branch.index;
    for (const Hash256& sibling : branch.siblings) {
        node = (pos & 1) ? hash_pair(sibling, node) : hash_pair(node, sibling);
        pos >>= 1;
    }
    return node;
}

void MerkleBranch::serialize(util::Writer& w) const {
    w.compact_size(siblings.size());
    for (const auto& s : siblings) w.bytes(s.span());
    w.u32(index);
}

util::Result<MerkleBranch, util::DecodeError> MerkleBranch::deserialize(util::Reader& r) {
    auto count = r.compact_size();
    if (!count) return util::Unexpected{count.error()};
    // Reject absurd depths before the sibling allocation below: 32 levels
    // already describe more leaves than a 32-bit index can address.
    if (*count > kMaxMerkleBranchDepth)
        return util::Unexpected{util::DecodeError::kOversizedField};
    MerkleBranch branch;
    branch.siblings.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto bytes = r.bytes(32);
        if (!bytes) return util::Unexpected{bytes.error()};
        branch.siblings.push_back(Hash256::from_span(*bytes));
    }
    auto idx = r.u32();
    if (!idx) return util::Unexpected{idx.error()};
    branch.index = *idx;
    return branch;
}

}  // namespace ebv::crypto
