// HMAC-SHA256 (RFC 2104), needed for RFC 6979 deterministic ECDSA nonces.
#pragma once

#include "crypto/sha256.hpp"
#include "util/span.hpp"

namespace ebv::crypto {

class HmacSha256 {
public:
    explicit HmacSha256(util::ByteSpan key);

    HmacSha256& update(util::ByteSpan data);
    Sha256::Digest finalize();

    static Sha256::Digest mac(util::ByteSpan key, util::ByteSpan data);

private:
    Sha256 inner_;
    std::uint8_t opad_key_[64];
};

}  // namespace ebv::crypto
