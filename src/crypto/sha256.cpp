#include "crypto/sha256.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/endian.hpp"

namespace ebv::crypto {

namespace {

constexpr std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

namespace detail {

void sha256_transform(std::uint32_t state[8], const std::uint8_t* block) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = util::load_be32(block + 4 * i);
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
        const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

}  // namespace detail

void Sha256::reset() {
    for (int i = 0; i < 8; ++i) state_[i] = detail::kSha256Init[i];
    total_len_ = 0;
    buffer_len_ = 0;
}

void Sha256::compress(const std::uint8_t* block) {
    detail::sha256_transform_active()(state_, block);
}

Sha256::Midstate Sha256::midstate() const {
    EBV_EXPECTS(buffer_len_ == 0);  // only whole blocks may be captured
    Midstate m;
    std::memcpy(m.state, state_, sizeof(m.state));
    m.bytes = total_len_;
    return m;
}

Sha256 Sha256::resume(const Midstate& m) {
    Sha256 h;
    std::memcpy(h.state_, m.state, sizeof(h.state_));
    h.total_len_ = m.bytes;
    h.buffer_len_ = 0;
    return h;
}

Sha256& Sha256::update(util::ByteSpan data) {
    total_len_ += data.size();
    std::size_t offset = 0;

    if (buffer_len_ > 0) {
        const std::size_t take = std::min(data.size(), 64 - buffer_len_);
        std::memcpy(buffer_ + buffer_len_, data.data(), take);
        buffer_len_ += take;
        offset += take;
        if (buffer_len_ == 64) {
            compress(buffer_);
            buffer_len_ = 0;
        }
    }

    while (offset + 64 <= data.size()) {
        compress(data.data() + offset);
        offset += 64;
    }

    if (offset < data.size()) {
        buffer_len_ = data.size() - offset;
        std::memcpy(buffer_, data.data() + offset, buffer_len_);
    }
    return *this;
}

void Sha256::finalize(util::MutableByteSpan out) {
    // One digest per finalize: together with the batch-path message counters
    // (sha256_batch.cpp) this makes "did anything hash?" observable — the
    // Merkle proof cache's zero-rehash contract is asserted against these.
    static obs::Counter& finalizes =
        obs::Registry::global().counter("ebv.crypto.sha256_finalizes");
    finalizes.inc();
    EBV_EXPECTS(out.size() >= kDigestSize);
    const std::uint64_t bit_len = total_len_ * 8;

    // Padding: 0x80 then zeros to 56 mod 64, then 64-bit big-endian length.
    const std::uint8_t pad_byte = 0x80;
    update({&pad_byte, 1});
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) update({&zero, 1});

    std::uint8_t len_bytes[8];
    util::store_be64(len_bytes, bit_len);
    // Bypass update()'s length accounting for the length field itself.
    std::memcpy(buffer_ + 56, len_bytes, 8);
    compress(buffer_);
    buffer_len_ = 0;

    for (int i = 0; i < 8; ++i) util::store_be32(out.data() + 4 * i, state_[i]);
}

Sha256::Digest Sha256::finalize() {
    Digest d;
    finalize(d);
    return d;
}

Sha256::Digest Sha256::hash(util::ByteSpan data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
}

Sha256::Digest double_sha256(util::ByteSpan data) {
    const Sha256::Digest first = Sha256::hash(data);
    return Sha256::hash(util::ByteSpan{first.data(), first.size()});
}

}  // namespace ebv::crypto
