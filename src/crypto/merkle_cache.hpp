// Cached Merkle interior-node store. crypto::merkle_branch rebuilds and
// re-hashes the whole tree for every request — O(n) compressions per branch,
// quadratic for a proof server answering many queries against one block.
// MerkleTreeCache pays that O(n) hashing exactly once (through the batched
// sha256d64_many path) and keeps every level resident; each later branch
// extraction is O(log n) sibling *copies* with zero SHA-256 work, which the
// ebv.crypto.sha256* counters make assertable (see sha256.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/merkle.hpp"

namespace ebv::crypto {

class MerkleTreeCache {
public:
    MerkleTreeCache() = default;

    /// Builds every level bottom-up; the only hashing this class ever does.
    explicit MerkleTreeCache(const std::vector<Hash256>& leaves);

    [[nodiscard]] std::size_t leaf_count() const {
        return levels_.empty() ? 0 : levels_.front().size();
    }
    [[nodiscard]] bool empty() const { return levels_.empty(); }

    /// Root of the tree; the zero hash for an empty leaf set (matching
    /// merkle_root).
    [[nodiscard]] Hash256 root() const;

    /// Number of sibling levels a branch traverses (0 for <= 1 leaf).
    [[nodiscard]] std::size_t depth() const {
        return levels_.size() <= 1 ? 0 : levels_.size() - 1;
    }

    /// The branch for the leaf at `index` (must be < leaf_count()),
    /// byte-identical to crypto::merkle_branch on the same leaves — including
    /// the duplicated-odd-tail case — but hash-free: every sibling is copied
    /// out of the stored levels.
    [[nodiscard]] MerkleBranch branch(std::uint32_t index) const;

    /// Heap footprint of the stored levels (~2x the leaf bytes) — the cost
    /// unit net::ProofCache charges against its byte budget.
    [[nodiscard]] std::size_t memory_bytes() const;

private:
    /// levels_[0] = leaves, levels_.back() = {root}. Levels store their
    /// *unpadded* width; branch() re-derives the odd-tail duplicate, so an
    /// odd level costs no extra node here.
    std::vector<std::vector<Hash256>> levels_;
};

}  // namespace ebv::crypto
