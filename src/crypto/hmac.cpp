#include "crypto/hmac.hpp"

#include <cstring>

namespace ebv::crypto {

HmacSha256::HmacSha256(util::ByteSpan key) {
    std::uint8_t key_block[64] = {};
    if (key.size() > 64) {
        const auto digest = Sha256::hash(key);
        std::memcpy(key_block, digest.data(), digest.size());
    } else {
        std::memcpy(key_block, key.data(), key.size());
    }

    std::uint8_t ipad_key[64];
    for (int i = 0; i < 64; ++i) {
        ipad_key[i] = key_block[i] ^ 0x36;
        opad_key_[i] = key_block[i] ^ 0x5c;
    }
    inner_.update({ipad_key, 64});
}

HmacSha256& HmacSha256::update(util::ByteSpan data) {
    inner_.update(data);
    return *this;
}

Sha256::Digest HmacSha256::finalize() {
    const auto inner_digest = inner_.finalize();
    Sha256 outer;
    outer.update({opad_key_, 64});
    outer.update({inner_digest.data(), inner_digest.size()});
    return outer.finalize();
}

Sha256::Digest HmacSha256::mac(util::ByteSpan key, util::ByteSpan data) {
    HmacSha256 h(key);
    h.update(data);
    return h.finalize();
}

}  // namespace ebv::crypto
