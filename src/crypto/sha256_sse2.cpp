// 4-way SSE2 batch double-SHA256. Compiled with -msse2 (see
// crypto/CMakeLists.txt); the dispatcher in sha256_batch.cpp only calls in
// here after have_sse2() confirms CPU support at runtime.
#include "crypto/sha256.hpp"

#if defined(EBV_CRYPTO_SSE2) && (defined(__x86_64__) || defined(__i386__))

#include <emmintrin.h>

#include "crypto/sha256_multiway.hpp"
#include "util/endian.hpp"

namespace ebv::crypto::detail {

namespace {

struct Sse2Ops {
    static constexpr std::size_t kLanes = 4;
    using Reg = __m128i;

    static Reg set1(std::uint32_t x) { return _mm_set1_epi32(static_cast<int>(x)); }
    static Reg add(Reg a, Reg b) { return _mm_add_epi32(a, b); }
    static Reg xor_(Reg a, Reg b) { return _mm_xor_si128(a, b); }
    static Reg and_(Reg a, Reg b) { return _mm_and_si128(a, b); }
    static Reg or_(Reg a, Reg b) { return _mm_or_si128(a, b); }
    static Reg shr(Reg a, int n) { return _mm_srli_epi32(a, n); }
    static Reg rotr(Reg a, int n) {
        return _mm_or_si128(_mm_srli_epi32(a, n), _mm_slli_epi32(a, 32 - n));
    }
    /// Gather big-endian word `i` of the current block from each lane.
    static Reg load_word(const std::uint8_t* const* lane_blocks, int i) {
        return _mm_set_epi32(static_cast<int>(util::load_be32(lane_blocks[3] + 4 * i)),
                             static_cast<int>(util::load_be32(lane_blocks[2] + 4 * i)),
                             static_cast<int>(util::load_be32(lane_blocks[1] + 4 * i)),
                             static_cast<int>(util::load_be32(lane_blocks[0] + 4 * i)));
    }
    static void store(std::uint32_t out[kLanes], Reg r) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out), r);
    }
};

}  // namespace

bool have_sse2() { return __builtin_cpu_supports("sse2"); }

void sha256d_batch_sse2(std::uint8_t* out, const std::uint8_t* const* blocks,
                        std::size_t nblocks) {
    multiway::sha256d_batch<Sse2Ops>(out, blocks, nblocks);
}

}  // namespace ebv::crypto::detail

#else  // !EBV_CRYPTO_SSE2

namespace ebv::crypto::detail {

bool have_sse2() { return false; }

void sha256d_batch_sse2(std::uint8_t*, const std::uint8_t* const*, std::size_t) {}

}  // namespace ebv::crypto::detail

#endif
