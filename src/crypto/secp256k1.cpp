#include "crypto/secp256k1.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <vector>

#include "util/assert.hpp"

namespace ebv::crypto::secp256k1 {

namespace {

const U256 kP =
    U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kN =
    U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");

const U256 kGx =
    U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const U256 kGy =
    U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

/// Jacobian coordinates: (X, Y, Z) represents (X/Z², Y/Z³); Z == 0 is the
/// point at infinity.
struct Jacobian {
    U256 x{};
    U256 y{};
    U256 z{};  // zero => infinity

    [[nodiscard]] bool infinity() const { return z.is_zero(); }
    static Jacobian at_infinity() { return {}; }
};

Jacobian to_jacobian(const Point& p) {
    if (p.infinity) return Jacobian::at_infinity();
    return Jacobian{p.x, p.y, U256::one()};
}

Point to_affine(const Jacobian& j) {
    if (j.infinity()) return Point::at_infinity();
    const ModArith& f = field();
    const U256 zinv = f.inverse(j.z);
    const U256 zinv2 = f.sqr(zinv);
    const U256 zinv3 = f.mul(zinv2, zinv);
    return Point{f.mul(j.x, zinv2), f.mul(j.y, zinv3), false};
}

Jacobian jdouble(const Jacobian& a) {
    if (a.infinity()) return a;
    const ModArith& f = field();
    if (a.y.is_zero()) return Jacobian::at_infinity();

    const U256 y2 = f.sqr(a.y);
    const U256 s = f.mul(f.mul(U256::from_u64(4), a.x), y2);       // 4·X·Y²
    const U256 m = f.mul(U256::from_u64(3), f.sqr(a.x));           // 3·X² (a = 0)
    const U256 x3 = f.sub(f.sqr(m), f.mul(U256::from_u64(2), s));  // M² − 2S
    const U256 y4 = f.sqr(y2);
    const U256 y3 = f.sub(f.mul(m, f.sub(s, x3)), f.mul(U256::from_u64(8), y4));
    const U256 z3 = f.mul(f.mul(U256::from_u64(2), a.y), a.z);
    return Jacobian{x3, y3, z3};
}

Jacobian jadd(const Jacobian& a, const Jacobian& b) {
    if (a.infinity()) return b;
    if (b.infinity()) return a;
    const ModArith& f = field();

    const U256 z1z1 = f.sqr(a.z);
    const U256 z2z2 = f.sqr(b.z);
    const U256 u1 = f.mul(a.x, z2z2);
    const U256 u2 = f.mul(b.x, z1z1);
    const U256 s1 = f.mul(a.y, f.mul(z2z2, b.z));
    const U256 s2 = f.mul(b.y, f.mul(z1z1, a.z));

    if (u1 == u2) {
        if (s1 == s2) return jdouble(a);
        return Jacobian::at_infinity();  // P + (−P)
    }

    const U256 h = f.sub(u2, u1);
    const U256 r = f.sub(s2, s1);
    const U256 h2 = f.sqr(h);
    const U256 h3 = f.mul(h2, h);
    const U256 u1h2 = f.mul(u1, h2);

    const U256 x3 = f.sub(f.sub(f.sqr(r), h3), f.mul(U256::from_u64(2), u1h2));
    const U256 y3 = f.sub(f.mul(r, f.sub(u1h2, x3)), f.mul(s1, h3));
    const U256 z3 = f.mul(h, f.mul(a.z, b.z));
    return Jacobian{x3, y3, z3};
}

/// 4-bit windowed multiply for an arbitrary base point.
Jacobian jmultiply(const Jacobian& p, const U256& k) {
    // table[i] = i·P for i in [1, 15].
    std::array<Jacobian, 16> table;
    table[0] = Jacobian::at_infinity();
    table[1] = p;
    for (int i = 2; i < 16; ++i) table[i] = jadd(table[i - 1], p);

    Jacobian acc = Jacobian::at_infinity();
    for (int nibble = 63; nibble >= 0; --nibble) {
        if (!acc.infinity()) {
            acc = jdouble(acc);
            acc = jdouble(acc);
            acc = jdouble(acc);
            acc = jdouble(acc);
        }
        const unsigned limb = static_cast<unsigned>(nibble / 16);
        const unsigned shift = static_cast<unsigned>(nibble % 16) * 4;
        const unsigned digit = static_cast<unsigned>(k.limbs[limb] >> shift) & 0xf;
        if (digit != 0) acc = jadd(acc, table[digit]);
    }
    return acc;
}

/// Fixed-base table for G: kGenTable[j][i-1] = i · 16^j · G, so k·G is a
/// sum of one table entry per nibble of k — no doublings at all.
class GeneratorTable {
public:
    GeneratorTable() {
        Jacobian base{kGx, kGy, U256::one()};  // 16^j · G
        for (int j = 0; j < 64; ++j) {
            Jacobian cur = base;
            for (int i = 0; i < 15; ++i) {
                entries_[j][i] = cur;
                cur = jadd(cur, base);
            }
            base = cur;  // after 15 additions cur == 16 · base
        }
    }

    [[nodiscard]] Jacobian multiply(const U256& k) const {
        Jacobian acc = Jacobian::at_infinity();
        for (int nibble = 0; nibble < 64; ++nibble) {
            const unsigned limb = static_cast<unsigned>(nibble / 16);
            const unsigned shift = static_cast<unsigned>(nibble % 16) * 4;
            const unsigned digit = static_cast<unsigned>(k.limbs[limb] >> shift) & 0xf;
            if (digit != 0) acc = jadd(acc, entries_[nibble][digit - 1]);
        }
        return acc;
    }

private:
    Jacobian entries_[64][15];
};

const GeneratorTable& generator_table() {
    static const GeneratorTable table;
    return table;
}

// ---- Strauss/Shamir interleaved double-scalar multiplication ---------------
// u1·G + u2·P shares one doubling chain across both scalars; each scalar is
// recoded in width-5 NAF (odd digits in ±{1,3,...,15}), so on average one
// table addition every w+1 = 6 doublings per scalar.

constexpr int kWnafWidth = 5;
constexpr int kWnafTableSize = 1 << (kWnafWidth - 2);  // 8 odd multiples
constexpr int kWnafMaxDigits = 260;                    // 257 needed; slack for safety

Jacobian jnegate(const Jacobian& a) {
    if (a.infinity()) return a;
    return Jacobian{a.x, field().neg(a.y), a.z};
}

/// table[i] = (2i+1)·P — the odd multiples P, 3P, ..., 15P.
void odd_multiples(const Jacobian& p, Jacobian table[kWnafTableSize]) {
    table[0] = p;
    const Jacobian p2 = jdouble(p);
    for (int i = 1; i < kWnafTableSize; ++i) table[i] = jadd(table[i - 1], p2);
}

/// Width-w NAF recoding: sum(digits[i] * 2^i) == k, every nonzero digit odd
/// with |digit| < 2^(w-1), at most one nonzero digit per w consecutive
/// positions. Returns the digit count (<= 257 for k < n).
int wnaf_recode(U256 k, std::int8_t digits[kWnafMaxDigits]) {
    int len = 0;
    while (!k.is_zero()) {
        std::int8_t digit = 0;
        if (k.is_odd()) {
            const unsigned window =
                static_cast<unsigned>(k.limbs[0]) & ((1u << kWnafWidth) - 1);
            int d = static_cast<int>(window);
            if (d >= (1 << (kWnafWidth - 1))) d -= 1 << kWnafWidth;
            // k -= d. After the subtraction k is divisible by 2^w, so the
            // next w-1 digits are zero. A negative digit adds |d| <= 15;
            // k < n < 2^256 - 2^128 keeps the sum below 2^256.
            if (d > 0) {
                u256_sub(k, U256::from_u64(static_cast<std::uint64_t>(d)), k);
            } else {
                const std::uint64_t carry =
                    u256_add(k, U256::from_u64(static_cast<std::uint64_t>(-d)), k);
                EBV_ASSERT(carry == 0);
            }
            digit = static_cast<std::int8_t>(d);
        }
        EBV_ASSERT(len < kWnafMaxDigits);
        digits[len++] = digit;
        // k >>= 1.
        for (int i = 0; i < 4; ++i) {
            k.limbs[i] >>= 1;
            if (i + 1 < 4) k.limbs[i] |= k.limbs[i + 1] << 63;
        }
    }
    return len;
}

/// Odd multiples of G, computed once.
struct GeneratorWnafTable {
    Jacobian entries[kWnafTableSize];
    GeneratorWnafTable() { odd_multiples(Jacobian{kGx, kGy, U256::one()}, entries); }
};

const GeneratorWnafTable& generator_wnaf_table() {
    static const GeneratorWnafTable table;
    return table;
}

/// The shared core: u1·G + u2·P in Jacobian coordinates (so batch callers
/// can amortize the affine conversion).
Jacobian strauss_double_multiply(const Point& p, const U256& u1, const U256& u2) {
    std::int8_t dg[kWnafMaxDigits];
    std::int8_t dp[kWnafMaxDigits];
    const int lg = wnaf_recode(order().reduce(u1), dg);
    const int lp = p.infinity ? 0 : wnaf_recode(order().reduce(u2), dp);

    Jacobian table_p[kWnafTableSize];
    if (lp > 0) odd_multiples(to_jacobian(p), table_p);
    const Jacobian* table_g = generator_wnaf_table().entries;

    Jacobian acc = Jacobian::at_infinity();
    for (int i = std::max(lg, lp) - 1; i >= 0; --i) {
        acc = jdouble(acc);
        if (i < lg && dg[i] != 0) {
            const Jacobian& entry = table_g[(std::abs(dg[i]) - 1) / 2];
            acc = jadd(acc, dg[i] > 0 ? entry : jnegate(entry));
        }
        if (i < lp && dp[i] != 0) {
            const Jacobian& entry = table_p[(std::abs(dp[i]) - 1) / 2];
            acc = jadd(acc, dp[i] > 0 ? entry : jnegate(entry));
        }
    }
    return acc;
}

}  // namespace

const ModArith& field() {
    static const ModArith f(kP);
    return f;
}

const ModArith& order() {
    static const ModArith n(kN);
    return n;
}

const Point& generator() {
    static const Point g{kGx, kGy, false};
    return g;
}

bool Point::on_curve() const {
    if (infinity) return false;
    const ModArith& f = field();
    const U256 lhs = f.sqr(y);
    const U256 rhs = f.add(f.mul(f.sqr(x), x), U256::from_u64(7));
    return lhs == rhs;
}

Point add(const Point& a, const Point& b) {
    return to_affine(jadd(to_jacobian(a), to_jacobian(b)));
}

Point negate(const Point& a) {
    if (a.infinity) return a;
    return Point{a.x, field().neg(a.y), false};
}

Point multiply(const Point& p, const U256& k) {
    const U256 k_reduced = order().reduce(k);
    if (p.infinity || k_reduced.is_zero()) return Point::at_infinity();
    return to_affine(jmultiply(to_jacobian(p), k_reduced));
}

Point multiply_generator(const U256& k) {
    const U256 k_reduced = order().reduce(k);
    if (k_reduced.is_zero()) return Point::at_infinity();
    return to_affine(generator_table().multiply(k_reduced));
}

Point multiply_double_generator(const Point& p, const U256& u1, const U256& u2) {
    return to_affine(strauss_double_multiply(p, u1, u2));
}

std::size_t multiply_double_generator_batch(std::span<const DoubleScalar> jobs,
                                            Point* out) {
    std::vector<Jacobian> raw(jobs.size());
    std::vector<U256> zs;
    zs.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        raw[i] = strauss_double_multiply(jobs[i].p, jobs[i].u1, jobs[i].u2);
        if (!raw[i].infinity()) zs.push_back(raw[i].z);
    }

    field().inverse_batch(zs.data(), zs.size());

    const ModArith& f = field();
    std::size_t next = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (raw[i].infinity()) {
            out[i] = Point::at_infinity();
            continue;
        }
        const U256& zinv = zs[next++];
        const U256 zinv2 = f.sqr(zinv);
        const U256 zinv3 = f.mul(zinv2, zinv);
        out[i] = Point{f.mul(raw[i].x, zinv2), f.mul(raw[i].y, zinv3), false};
    }
    return zs.size() > 1 ? zs.size() - 1 : 0;
}

void serialize_compressed(const Point& p, util::MutableByteSpan out33) {
    EBV_EXPECTS(out33.size() == 33);
    EBV_EXPECTS(!p.infinity);
    out33[0] = p.y.is_odd() ? 0x03 : 0x02;
    p.x.to_be_bytes(out33.subspan(1));
}

std::optional<Point> parse_compressed(util::ByteSpan in33) {
    if (in33.size() != 33) return std::nullopt;
    if (in33[0] != 0x02 && in33[0] != 0x03) return std::nullopt;

    const U256 x = U256::from_be_bytes(in33.subspan(1));
    if (!u256_less(x, kP)) return std::nullopt;

    const ModArith& f = field();
    const U256 rhs = f.add(f.mul(f.sqr(x), x), U256::from_u64(7));

    // p ≡ 3 (mod 4), so sqrt(a) = a^((p+1)/4) when a is a square.
    U256 exp = kP;
    U256 carry_dummy;
    u256_add(exp, U256::one(), carry_dummy);
    exp = carry_dummy;
    // Shift right by 2 bits.
    for (int i = 0; i < 4; ++i) {
        exp.limbs[i] >>= 2;
        if (i + 1 < 4) exp.limbs[i] |= exp.limbs[i + 1] << 62;
    }

    U256 y = f.pow(rhs, exp);
    if (f.sqr(y) != rhs) return std::nullopt;  // not a quadratic residue

    const bool want_odd = in33[0] == 0x03;
    if (y.is_odd() != want_odd) y = f.neg(y);

    Point p{x, y, false};
    EBV_ENSURES(p.on_curve());
    return p;
}

}  // namespace ebv::crypto::secp256k1
