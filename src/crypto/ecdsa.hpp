// ECDSA over secp256k1: key types, deterministic (RFC 6979) signing,
// verification, and DER signature encoding as used inside script.
#pragma once

#include <optional>

#include "crypto/hash_types.hpp"
#include "crypto/secp256k1.hpp"
#include "util/rng.hpp"
#include "util/span.hpp"

namespace ebv::crypto {

struct Signature {
    U256 r{};
    U256 s{};

    /// Canonical low-s form (s <= n/2), mirroring Bitcoin's policy rule.
    [[nodiscard]] bool is_low_s() const;

    /// DER-encoded SEQUENCE of two INTEGERs (strict parsing on decode).
    util::Bytes to_der() const;
    static std::optional<Signature> from_der(util::ByteSpan der);
};

class PublicKey {
public:
    PublicKey() = default;
    explicit PublicKey(const secp256k1::Point& point) : point_(point) {}

    [[nodiscard]] bool valid() const { return !point_.infinity; }
    [[nodiscard]] const secp256k1::Point& point() const { return point_; }

    /// 33-byte compressed encoding.
    [[nodiscard]] util::Bytes serialize() const;
    static std::optional<PublicKey> parse(util::ByteSpan bytes);

    /// hash160 of the compressed encoding — the P2PKH destination.
    [[nodiscard]] Hash160 id() const;

    /// Verify a signature over a 32-byte message hash.
    [[nodiscard]] bool verify(const Hash256& msg_hash, const Signature& sig) const;

private:
    secp256k1::Point point_;
};

class PrivateKey {
public:
    PrivateKey() = default;

    /// From a 32-byte big-endian secret; must be in [1, n-1].
    static std::optional<PrivateKey> from_bytes(util::ByteSpan bytes32);
    /// Fresh key from a deterministic RNG (workload generation).
    static PrivateKey generate(util::Rng& rng);

    [[nodiscard]] bool valid() const { return !secret_.is_zero(); }
    [[nodiscard]] PublicKey public_key() const;

    /// Deterministic RFC 6979 signature over a 32-byte message hash,
    /// normalized to low-s.
    [[nodiscard]] Signature sign(const Hash256& msg_hash) const;

    [[nodiscard]] const U256& secret() const { return secret_; }

private:
    explicit PrivateKey(const U256& secret) : secret_(secret) {}
    U256 secret_{};
};

}  // namespace ebv::crypto
