// SHA-256 (FIPS 180-4), implemented from scratch. Streaming interface plus
// one-shot helpers; the chain layer builds double-SHA256 on top.
#pragma once

#include <array>
#include <cstdint>

#include "util/span.hpp"

namespace ebv::crypto {

class Sha256 {
public:
    static constexpr std::size_t kDigestSize = 32;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Sha256() { reset(); }

    void reset();
    Sha256& update(util::ByteSpan data);
    /// Finalizes into out; the object must be reset() before reuse.
    void finalize(util::MutableByteSpan out);
    Digest finalize();

    /// One-shot convenience.
    static Digest hash(util::ByteSpan data);

private:
    void compress(const std::uint8_t* block);

    std::uint32_t state_[8];
    std::uint64_t total_len_ = 0;
    std::uint8_t buffer_[64];
    std::size_t buffer_len_ = 0;
};

/// SHA-256(SHA-256(data)) — the chain's canonical hash.
Sha256::Digest double_sha256(util::ByteSpan data);

}  // namespace ebv::crypto
