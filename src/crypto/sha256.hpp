// SHA-256 (FIPS 180-4), implemented from scratch. Streaming interface plus
// one-shot helpers; the chain layer builds double-SHA256 on top. Batched
// double-SHA256 entry points (4-way SSE2 / 8-way AVX2 / 16-way AVX-512,
// runtime-dispatched with a scalar fallback) feed the Merkle layer's hot
// paths, and a SHA-NI single-stream transform accelerates the streaming
// hasher (and thereby sha256/hash256) on CPUs with the SHA extensions.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/span.hpp"

namespace ebv::crypto {

class Sha256 {
public:
    static constexpr std::size_t kDigestSize = 32;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Sha256() { reset(); }

    void reset();
    Sha256& update(util::ByteSpan data);
    /// Finalizes into out; the object must be reset() before reuse.
    void finalize(util::MutableByteSpan out);
    Digest finalize();

    /// One-shot convenience.
    static Digest hash(util::ByteSpan data);

    /// Captured compression state after a whole number of 64-byte blocks.
    /// Cloning a hasher from a midstate skips re-hashing the shared prefix —
    /// the sighash template cache (chain/sighash_template.hpp) stores one
    /// per input.
    struct Midstate {
        std::uint32_t state[8];
        std::uint64_t bytes = 0;  ///< prefix length; always a multiple of 64
    };

    /// Snapshot the current state. Only valid when no partial block is
    /// buffered (total bytes fed so far is a multiple of 64).
    [[nodiscard]] Midstate midstate() const;
    /// A hasher that behaves as if `m.bytes` prefix bytes were already fed.
    static Sha256 resume(const Midstate& m);

private:
    void compress(const std::uint8_t* block);

    std::uint32_t state_[8];
    std::uint64_t total_len_ = 0;
    std::uint8_t buffer_[64];
    std::size_t buffer_len_ = 0;
};

/// SHA-256(SHA-256(data)) — the chain's canonical hash.
Sha256::Digest double_sha256(util::ByteSpan data);

// Every digest this library produces is counted in the obs registry:
//   ebv.crypto.sha256_finalizes   streaming digests (Sha256::finalize; a
//                                 double_sha256 call counts two)
//   ebv.crypto.sha256d64_msgs     messages through sha256d64_many
//   ebv.crypto.sha256d_msgs       messages through sha256d_many (its scalar
//                                 stragglers additionally count finalizes)
// The categories overlap by design — they answer "did this code path hash
// at all?", which is how MerkleTreeCache's zero-rehash branch extraction
// is asserted (tests/crypto_merkle_cache_test.cpp).

// ---- Batched double-SHA256 ---------------------------------------------

/// Double-SHA256 of `n` independent 64-byte messages (the Merkle
/// interior-node case): reads n*64 bytes at `in`, writes n*32 bytes at
/// `out`. In-place operation (out == in) is supported: each lane group
/// reads all of its input before storing any output, and an output never
/// overtakes a later group's input.
void sha256d64_many(std::uint8_t* out, const std::uint8_t* in, std::size_t n);

/// Double-SHA256 of `n` variable-length messages (the Merkle leaf case).
/// Messages with equal padded block counts are batched through the SIMD
/// transform; stragglers take the scalar path. Output i is byte-identical
/// to double_sha256(inputs[i]).
void sha256d_many(const util::ByteSpan* inputs, Sha256::Digest* outputs,
                  std::size_t n);

/// Name of the active batch (multi-lane) row: "scalar", "sse2", "avx2", or
/// "avx512". Selection honors the EBV_SHA256_IMPL environment knob (read
/// once). Orthogonal to the single-stream transform — see sha256_impl().
[[nodiscard]] const char* sha256_batch_impl();

/// Full name of the active selection, combining the batch row and the
/// single-stream transform: e.g. "avx2", "sha-ni", or "avx512+sha-ni" when
/// auto-detection pairs the 16-way batch row with the SHA-NI stream.
[[nodiscard]] const char* sha256_impl();

/// Stable numeric id of the active selection for the ebv.crypto.sha256_impl
/// gauge: 0 scalar, 1 sse2, 2 avx2, 3 avx512, 4 sha-ni, 5 sse2+sha-ni,
/// 6 avx2+sha-ni, 7 avx512+sha-ni.
[[nodiscard]] int sha256_impl_index();

/// Force a specific implementation ("scalar", "sse2", "avx2", "avx512",
/// "sha-ni", or "auto" to re-detect). Returns false — leaving the selection
/// unchanged — when the CPU or build lacks support. Not thread-safe against
/// in-flight hashing; intended for tests and startup configuration.
bool sha256_force_batch_impl(std::string_view name);

/// Env-style request with graceful fallback: pins `name` when the CPU and
/// build support it, otherwise re-detects the best available selection
/// (never leaves a stale forced row behind). Returns the name actually
/// selected — equal to `name` iff the request was honored. This is the
/// semantics the EBV_SHA256_IMPL knob gets at startup.
const char* sha256_request_impl(std::string_view name);

namespace detail {

inline constexpr std::uint32_t kSha256Init[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

/// One compression round over a single 64-byte block — the portable scalar
/// core (shared by the streaming hasher and the scalar batch path).
void sha256_transform(std::uint32_t state[8], const std::uint8_t* block);

/// Single-stream transform selected by the dispatch table: the SHA-NI core
/// when the active row carries it, the scalar core otherwise. The streaming
/// hasher compresses through this pointer.
using TransformFn = void (*)(std::uint32_t state[8], const std::uint8_t* block);
[[nodiscard]] TransformFn sha256_transform_active();

// Per-ISA batch cores over *pre-padded* messages. `blocks[b * lanes + l]`
// points at 64-byte block b of lane l; every lane has exactly `nblocks`
// blocks (padding included). Writes `lanes` 32-byte double-SHA256 digests
// to `out`. Exposed individually so tests can cross-check each dispatch
// path against the streaming implementation.
void sha256d_batch_scalar(std::uint8_t* out, const std::uint8_t* const* blocks,
                          std::size_t nblocks, std::size_t lanes);
inline constexpr std::size_t kSse2Lanes = 4;
inline constexpr std::size_t kAvx2Lanes = 8;
inline constexpr std::size_t kAvx512Lanes = 16;
[[nodiscard]] bool have_sse2();
[[nodiscard]] bool have_avx2();
[[nodiscard]] bool have_avx512();  ///< AVX-512F (incl. OS zmm state support)
[[nodiscard]] bool have_shani();   ///< SHA-NI (sha256msg1/2, sha256rnds2)
void sha256d_batch_sse2(std::uint8_t* out, const std::uint8_t* const* blocks,
                        std::size_t nblocks);  ///< 4 lanes; only if have_sse2()
void sha256d_batch_avx2(std::uint8_t* out, const std::uint8_t* const* blocks,
                        std::size_t nblocks);  ///< 8 lanes; only if have_avx2()
void sha256d_batch_avx512(std::uint8_t* out, const std::uint8_t* const* blocks,
                          std::size_t nblocks);  ///< 16 lanes; only if have_avx512()
/// SHA-NI single-stream compression; only if have_shani().
void sha256_transform_shani(std::uint32_t state[8], const std::uint8_t* block);

}  // namespace detail

}  // namespace ebv::crypto
