#include "crypto/ecdsa.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "util/assert.hpp"

namespace ebv::crypto {

namespace {

using secp256k1::order;

/// n/2, for low-s normalization.
U256 half_order() {
    U256 half = order().modulus();
    for (int i = 0; i < 4; ++i) {
        half.limbs[i] >>= 1;
        if (i + 1 < 4) half.limbs[i] |= half.limbs[i + 1] << 63;
    }
    return half;
}

/// RFC 6979 deterministic nonce for (secret, msg_hash); retries handled by
/// the caller via the counter-free k-update step.
class Rfc6979 {
public:
    Rfc6979(const U256& secret, const Hash256& msg_hash) {
        std::uint8_t x[32];
        secret.to_be_bytes(x);

        std::memset(v_, 0x01, 32);
        std::memset(k_, 0x00, 32);

        update(0x00, {x, 32}, msg_hash.span());
        update(0x01, {x, 32}, msg_hash.span());
    }

    /// Next candidate nonce in [1, n-1].
    U256 next() {
        for (;;) {
            HmacSha256 h({k_, 32});
            h.update({v_, 32});
            const auto t = h.finalize();
            std::memcpy(v_, t.data(), 32);

            const U256 k = U256::from_be_bytes({v_, 32});
            if (!k.is_zero() && u256_less(k, order().modulus())) return k;

            // k = HMAC(k, V || 0x00); V = HMAC(k, V) — the retry step.
            HmacSha256 h2({k_, 32});
            h2.update({v_, 32});
            const std::uint8_t zero = 0x00;
            h2.update({&zero, 1});
            const auto nk = h2.finalize();
            std::memcpy(k_, nk.data(), 32);

            HmacSha256 h3({k_, 32});
            h3.update({v_, 32});
            const auto nv = h3.finalize();
            std::memcpy(v_, nv.data(), 32);
        }
    }

private:
    void update(std::uint8_t tag, util::ByteSpan x, util::ByteSpan h1) {
        HmacSha256 mac({k_, 32});
        mac.update({v_, 32});
        mac.update({&tag, 1});
        mac.update(x);
        mac.update(h1);
        const auto nk = mac.finalize();
        std::memcpy(k_, nk.data(), 32);

        HmacSha256 vmac({k_, 32});
        vmac.update({v_, 32});
        const auto nv = vmac.finalize();
        std::memcpy(v_, nv.data(), 32);
    }

    std::uint8_t v_[32];
    std::uint8_t k_[32];
};

/// Minimal-length unsigned big-endian encoding of a U256 for DER, with a
/// leading 0x00 if the top bit is set.
void der_put_integer(util::Bytes& out, const U256& v) {
    std::uint8_t be[32];
    v.to_be_bytes(be);
    std::size_t start = 0;
    while (start < 31 && be[start] == 0) ++start;

    const bool pad = be[start] & 0x80;
    const std::size_t len = 32 - start + (pad ? 1 : 0);
    out.push_back(0x02);
    out.push_back(static_cast<std::uint8_t>(len));
    if (pad) out.push_back(0x00);
    out.insert(out.end(), be + start, be + 32);
}

std::optional<U256> der_get_integer(util::ByteSpan der, std::size_t& pos) {
    if (pos + 2 > der.size() || der[pos] != 0x02) return std::nullopt;
    const std::size_t len = der[pos + 1];
    pos += 2;
    if (len == 0 || len > 33 || pos + len > der.size()) return std::nullopt;

    // Strictness: no negative values, no non-minimal padding.
    if (der[pos] & 0x80) return std::nullopt;
    if (len > 1 && der[pos] == 0x00 && !(der[pos + 1] & 0x80)) return std::nullopt;

    std::uint8_t be[32] = {};
    std::size_t data_len = len;
    std::size_t data_pos = pos;
    if (der[pos] == 0x00) {
        ++data_pos;
        --data_len;
    }
    if (data_len > 32) return std::nullopt;
    std::memcpy(be + (32 - data_len), der.data() + data_pos, data_len);
    pos += len;
    return U256::from_be_bytes({be, 32});
}

}  // namespace

bool Signature::is_low_s() const {
    static const U256 kHalf = half_order();
    return u256_less_equal(s, kHalf);
}

util::Bytes Signature::to_der() const {
    util::Bytes body;
    body.reserve(72);
    der_put_integer(body, r);
    der_put_integer(body, s);

    util::Bytes out;
    out.reserve(body.size() + 2);
    out.push_back(0x30);
    out.push_back(static_cast<std::uint8_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

std::optional<Signature> Signature::from_der(util::ByteSpan der) {
    if (der.size() < 8 || der.size() > 72) return std::nullopt;
    if (der[0] != 0x30 || der[1] != der.size() - 2) return std::nullopt;

    std::size_t pos = 2;
    const auto r = der_get_integer(der, pos);
    if (!r) return std::nullopt;
    const auto s = der_get_integer(der, pos);
    if (!s) return std::nullopt;
    if (pos != der.size()) return std::nullopt;

    // Strict range check at parse time: r, s must be in [1, n-1]. verify()
    // rejects out-of-range values anyway, so this cannot change any
    // accept/reject verdict — it only moves the rejection earlier, before a
    // 33-byte zero-padded integer body could smuggle in a value >= n.
    if (r->is_zero() || s->is_zero()) return std::nullopt;
    if (!u256_less(*r, order().modulus()) || !u256_less(*s, order().modulus()))
        return std::nullopt;

    return Signature{*r, *s};
}

util::Bytes PublicKey::serialize() const {
    EBV_EXPECTS(valid());
    util::Bytes out(33);
    secp256k1::serialize_compressed(point_, out);
    return out;
}

std::optional<PublicKey> PublicKey::parse(util::ByteSpan bytes) {
    const auto point = secp256k1::parse_compressed(bytes);
    if (!point) return std::nullopt;
    return PublicKey(*point);
}

Hash160 PublicKey::id() const { return hash160(serialize()); }

bool PublicKey::verify(const Hash256& msg_hash, const Signature& sig) const {
    if (!valid()) return false;
    const ModArith& n = order();

    // r, s in [1, n-1].
    if (sig.r.is_zero() || sig.s.is_zero()) return false;
    if (!u256_less(sig.r, n.modulus()) || !u256_less(sig.s, n.modulus())) return false;

    const U256 z = n.reduce(U256::from_be_bytes(msg_hash.span()));
    const U256 s_inv = n.inverse(sig.s);
    const U256 u1 = n.mul(z, s_inv);
    const U256 u2 = n.mul(sig.r, s_inv);

    const secp256k1::Point R = secp256k1::multiply_double_generator(point_, u1, u2);
    if (R.infinity) return false;

    return n.reduce(R.x) == sig.r;
}

std::optional<PrivateKey> PrivateKey::from_bytes(util::ByteSpan bytes32) {
    if (bytes32.size() != 32) return std::nullopt;
    const U256 secret = U256::from_be_bytes(bytes32);
    if (secret.is_zero() || !u256_less(secret, order().modulus())) return std::nullopt;
    return PrivateKey(secret);
}

PrivateKey PrivateKey::generate(util::Rng& rng) {
    for (;;) {
        std::uint8_t buf[32];
        rng.fill({buf, 32});
        if (auto key = from_bytes({buf, 32})) return *key;
    }
}

PublicKey PrivateKey::public_key() const {
    EBV_EXPECTS(valid());
    return PublicKey(secp256k1::multiply_generator(secret_));
}

Signature PrivateKey::sign(const Hash256& msg_hash) const {
    EBV_EXPECTS(valid());
    const ModArith& n = order();
    const U256 z = n.reduce(U256::from_be_bytes(msg_hash.span()));

    Rfc6979 nonce_gen(secret_, msg_hash);
    for (;;) {
        const U256 k = nonce_gen.next();
        const secp256k1::Point R = secp256k1::multiply_generator(k);
        if (R.infinity) continue;

        const U256 r = n.reduce(R.x);
        if (r.is_zero()) continue;

        const U256 k_inv = n.inverse(k);
        U256 s = n.mul(k_inv, n.add(z, n.mul(r, secret_)));
        if (s.is_zero()) continue;

        Signature sig{r, s};
        if (!sig.is_low_s()) sig.s = n.neg(sig.s);
        return sig;
    }
}

}  // namespace ebv::crypto
