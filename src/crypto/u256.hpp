// 256-bit unsigned integers (4×64-bit little-endian limbs) and modular
// arithmetic over an arbitrary 256-bit modulus whose complement
// C = 2^256 - m is small (true for both the secp256k1 field prime p and the
// group order n). Reduction uses repeated folding: hi*2^256 + lo ≡ hi*C + lo.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/span.hpp"

namespace ebv::crypto {

struct U256 {
    // limbs[0] is the least significant 64 bits.
    std::array<std::uint64_t, 4> limbs{};

    static constexpr U256 zero() { return {}; }
    static constexpr U256 one() { return U256{{1, 0, 0, 0}}; }
    static U256 from_u64(std::uint64_t v) { return U256{{v, 0, 0, 0}}; }

    /// Big-endian 32-byte decoding (the natural byte order of hashes/keys).
    static U256 from_be_bytes(util::ByteSpan bytes32);
    void to_be_bytes(util::MutableByteSpan out32) const;

    /// Parse exactly 64 hex characters (big-endian). Aborts on bad input;
    /// intended for compile-time-known constants.
    static U256 from_hex(std::string_view hex64);

    [[nodiscard]] bool is_zero() const {
        return (limbs[0] | limbs[1] | limbs[2] | limbs[3]) == 0;
    }
    [[nodiscard]] bool is_odd() const { return limbs[0] & 1; }
    [[nodiscard]] bool bit(unsigned i) const { return (limbs[i / 64] >> (i % 64)) & 1; }

    friend bool operator==(const U256&, const U256&) = default;
};

/// a < b, a <= b as unsigned 256-bit integers.
bool u256_less(const U256& a, const U256& b);
inline bool u256_less_equal(const U256& a, const U256& b) { return !u256_less(b, a); }

/// a + b, returning the carry-out bit.
std::uint64_t u256_add(const U256& a, const U256& b, U256& out);
/// a - b, returning the borrow-out bit.
std::uint64_t u256_sub(const U256& a, const U256& b, U256& out);
/// Full 512-bit product as 8 limbs (little-endian).
void u256_mul_wide(const U256& a, const U256& b, std::uint64_t out[8]);

/// Fixed-modulus arithmetic. The modulus must satisfy 2^255 < m < 2^256 so
/// that its complement C = 2^256 - m is < 2^255 (both secp256k1 moduli do).
class ModArith {
public:
    explicit ModArith(const U256& modulus);

    [[nodiscard]] const U256& modulus() const { return m_; }

    [[nodiscard]] U256 add(const U256& a, const U256& b) const;
    [[nodiscard]] U256 sub(const U256& a, const U256& b) const;
    [[nodiscard]] U256 neg(const U256& a) const;
    [[nodiscard]] U256 mul(const U256& a, const U256& b) const;
    [[nodiscard]] U256 sqr(const U256& a) const { return mul(a, a); }
    [[nodiscard]] U256 pow(const U256& base, const U256& exponent) const;
    /// Inverse via Fermat's little theorem (modulus must be prime);
    /// input must be nonzero.
    [[nodiscard]] U256 inverse(const U256& a) const;
    /// Montgomery batch inversion: replace each of the n values with its
    /// inverse using ONE Fermat inversion plus 3(n-1) multiplications.
    /// Every value must be nonzero mod m; results are bit-identical to n
    /// independent inverse() calls (the inverse in [0, m) is unique).
    void inverse_batch(U256* values, std::size_t n) const;
    /// Reduce an arbitrary 256-bit value into [0, m).
    [[nodiscard]] U256 reduce(const U256& a) const;
    /// Reduce a 512-bit value (8 limbs) into [0, m).
    [[nodiscard]] U256 reduce_wide(const std::uint64_t limbs[8]) const;

private:
    U256 m_;
    U256 complement_;  // 2^256 - m, fits well below 2^255
};

}  // namespace ebv::crypto
