// The secp256k1 curve: y² = x³ + 7 over F_p, the curve Bitcoin signs with.
// Points use Jacobian coordinates internally; scalar multiplication uses a
// 4-bit window, with a precomputed table for the generator.
//
// This implementation is *not* constant-time. It exists so Script
// Validation in the reproduction costs real, representative CPU work; it is
// not hardened for production key handling.
#pragma once

#include <optional>
#include <span>

#include "crypto/u256.hpp"
#include "util/span.hpp"

namespace ebv::crypto::secp256k1 {

/// Field arithmetic mod p = 2^256 - 2^32 - 977.
const ModArith& field();
/// Scalar arithmetic mod the group order n.
const ModArith& order();

/// Affine point; infinity is modelled explicitly.
struct Point {
    U256 x{};
    U256 y{};
    bool infinity = true;

    static Point at_infinity() { return {}; }

    [[nodiscard]] bool on_curve() const;

    friend bool operator==(const Point&, const Point&) = default;
};

/// The generator G.
const Point& generator();

Point add(const Point& a, const Point& b);
Point negate(const Point& a);

/// k * P for arbitrary P.
Point multiply(const Point& p, const U256& k);
/// k * G using the fixed-base table (much faster; used by signing).
Point multiply_generator(const U256& k);

/// u1·G + u2·P in one interleaved Strauss/Shamir wNAF pass (shared double
/// chain, precomputed odd-multiple tables for G and P) — the ECDSA
/// verification workhorse. Scalars are reduced mod n; equals
/// add(multiply_generator(u1), multiply(p, u2)) for every input.
Point multiply_double_generator(const Point& p, const U256& u1, const U256& u2);

/// One u1·G + u2·P job for the batch form below.
struct DoubleScalar {
    Point p;
    U256 u1;
    U256 u2;
};

/// Batch multiply_double_generator: out[i] = jobs[i].u1·G + jobs[i].u2·P,
/// with every Jacobian→affine conversion sharing one Montgomery-batched
/// field inversion. Returns the number of modular inversions saved relative
/// to per-job calls (0 when fewer than two results are finite points).
std::size_t multiply_double_generator_batch(std::span<const DoubleScalar> jobs,
                                            Point* out);

/// 33-byte compressed SEC1 encoding (02/03 prefix + big-endian x).
void serialize_compressed(const Point& p, util::MutableByteSpan out33);
/// Decompress; rejects off-curve and malformed encodings.
std::optional<Point> parse_compressed(util::ByteSpan in33);

}  // namespace ebv::crypto::secp256k1
