// The secp256k1 curve: y² = x³ + 7 over F_p, the curve Bitcoin signs with.
// Points use Jacobian coordinates internally; scalar multiplication uses a
// 4-bit window, with a precomputed table for the generator.
//
// This implementation is *not* constant-time. It exists so Script
// Validation in the reproduction costs real, representative CPU work; it is
// not hardened for production key handling.
#pragma once

#include <optional>

#include "crypto/u256.hpp"
#include "util/span.hpp"

namespace ebv::crypto::secp256k1 {

/// Field arithmetic mod p = 2^256 - 2^32 - 977.
const ModArith& field();
/// Scalar arithmetic mod the group order n.
const ModArith& order();

/// Affine point; infinity is modelled explicitly.
struct Point {
    U256 x{};
    U256 y{};
    bool infinity = true;

    static Point at_infinity() { return {}; }

    [[nodiscard]] bool on_curve() const;

    friend bool operator==(const Point&, const Point&) = default;
};

/// The generator G.
const Point& generator();

Point add(const Point& a, const Point& b);
Point negate(const Point& a);

/// k * P for arbitrary P.
Point multiply(const Point& p, const U256& k);
/// k * G using the fixed-base table (much faster; used by signing).
Point multiply_generator(const U256& k);

/// 33-byte compressed SEC1 encoding (02/03 prefix + big-endian x).
void serialize_compressed(const Point& p, util::MutableByteSpan out33);
/// Decompress; rejects off-curve and malformed encodings.
std::optional<Point> parse_compressed(util::ByteSpan in33);

}  // namespace ebv::crypto::secp256k1
