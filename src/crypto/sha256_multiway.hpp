// W-lane SHA-256 core shared by the SSE2 and AVX2 batch paths. Included
// ONLY by ISA-specific translation units compiled with the matching -m
// flags; the template instantiates against an `Ops` policy providing the
// vector primitives, so the 64-round schedule is written once.
//
// Layout contract (same as the public detail::sha256d_batch_* entry
// points): `blocks[b * W + l]` points at 64-byte block b of lane l; all
// lanes carry `nblocks` pre-padded blocks. All input is consumed before any
// output byte is stored, which is what makes in-place Merkle level
// reduction safe (see sha256d64_many).
#pragma once

#include <cstdint>
#include <cstring>

#include "crypto/sha256.hpp"
#include "util/endian.hpp"

namespace ebv::crypto::multiway {

/// One compression over a 64-byte block per lane. `state` is transposed:
/// state[k] holds word k of every lane.
template <typename Ops>
inline void transform(typename Ops::Reg state[8],
                      const std::uint8_t* const* lane_blocks) {
    using Reg = typename Ops::Reg;
    Reg w[64];
    for (int i = 0; i < 16; ++i) w[i] = Ops::load_word(lane_blocks, i);
    for (int i = 16; i < 64; ++i) {
        const Reg s0 = Ops::xor_(Ops::xor_(Ops::rotr(w[i - 15], 7), Ops::rotr(w[i - 15], 18)),
                                 Ops::shr(w[i - 15], 3));
        const Reg s1 = Ops::xor_(Ops::xor_(Ops::rotr(w[i - 2], 17), Ops::rotr(w[i - 2], 19)),
                                 Ops::shr(w[i - 2], 10));
        w[i] = Ops::add(Ops::add(w[i - 16], s0), Ops::add(w[i - 7], s1));
    }

    Reg a = state[0], b = state[1], c = state[2], d = state[3];
    Reg e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
        const Reg s1 = Ops::xor_(Ops::xor_(Ops::rotr(e, 6), Ops::rotr(e, 11)), Ops::rotr(e, 25));
        // ch(e,f,g) = (e & f) ^ (~e & g) = g ^ (e & (f ^ g))
        const Reg ch = Ops::xor_(g, Ops::and_(e, Ops::xor_(f, g)));
        const Reg t1 = Ops::add(Ops::add(Ops::add(h, s1), Ops::add(ch, Ops::set1(detail::kSha256K[i]))),
                                w[i]);
        const Reg s0 = Ops::xor_(Ops::xor_(Ops::rotr(a, 2), Ops::rotr(a, 13)), Ops::rotr(a, 22));
        // maj(a,b,c) = (a & b) | (c & (a | b))
        const Reg maj = Ops::or_(Ops::and_(a, b), Ops::and_(c, Ops::or_(a, b)));
        const Reg t2 = Ops::add(s0, maj);
        h = g;
        g = f;
        f = e;
        e = Ops::add(d, t1);
        d = c;
        c = b;
        b = a;
        a = Ops::add(t1, t2);
    }

    state[0] = Ops::add(state[0], a);
    state[1] = Ops::add(state[1], b);
    state[2] = Ops::add(state[2], c);
    state[3] = Ops::add(state[3], d);
    state[4] = Ops::add(state[4], e);
    state[5] = Ops::add(state[5], f);
    state[6] = Ops::add(state[6], g);
    state[7] = Ops::add(state[7], h);
}

/// Double-SHA256 of W pre-padded messages; see the layout contract above.
template <typename Ops>
inline void sha256d_batch(std::uint8_t* out, const std::uint8_t* const* blocks,
                          std::size_t nblocks) {
    using Reg = typename Ops::Reg;
    constexpr std::size_t W = Ops::kLanes;

    Reg state[8];
    for (int k = 0; k < 8; ++k) state[k] = Ops::set1(detail::kSha256Init[k]);
    for (std::size_t b = 0; b < nblocks; ++b) transform<Ops>(state, blocks + b * W);

    // First-hash digests become the (single, fixed-padding) second-hash
    // block per lane: 32 digest bytes, 0x80, zeros, bit length 256.
    std::uint8_t second[W][64];
    std::uint32_t lane_words[W];
    for (int k = 0; k < 8; ++k) {
        Ops::store(lane_words, state[k]);
        for (std::size_t l = 0; l < W; ++l)
            util::store_be32(second[l] + 4 * k, lane_words[l]);
    }
    for (std::size_t l = 0; l < W; ++l) {
        second[l][32] = 0x80;
        std::memset(second[l] + 33, 0, 29);
        second[l][62] = 0x01;  // 256 bits, big-endian
        second[l][63] = 0x00;
    }

    const std::uint8_t* second_ptrs[W];
    for (std::size_t l = 0; l < W; ++l) second_ptrs[l] = second[l];
    for (int k = 0; k < 8; ++k) state[k] = Ops::set1(detail::kSha256Init[k]);
    transform<Ops>(state, second_ptrs);

    for (int k = 0; k < 8; ++k) {
        Ops::store(lane_words, state[k]);
        for (std::size_t l = 0; l < W; ++l)
            util::store_be32(out + 32 * l + 4 * k, lane_words[l]);
    }
}

}  // namespace ebv::crypto::multiway
