#include "crypto/ripemd160.hpp"

#include <cstring>

#include "util/endian.hpp"

namespace ebv::crypto {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

constexpr std::uint32_t f1(std::uint32_t x, std::uint32_t y, std::uint32_t z) { return x ^ y ^ z; }
constexpr std::uint32_t f2(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (x & y) | (~x & z);
}
constexpr std::uint32_t f3(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (x | ~y) ^ z;
}
constexpr std::uint32_t f4(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (x & z) | (y & ~z);
}
constexpr std::uint32_t f5(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return x ^ (y | ~z);
}

// Message word selection and rotation amounts (left and right lines).
constexpr int kRL[80] = {0,  1, 2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
                         7,  4, 13, 1,  10, 6,  15, 3,  12, 0,  9,  5,  2,  14, 11, 8,
                         3,  10, 14, 4,  9,  15, 8,  1,  2,  7,  0,  6,  13, 11, 5,  12,
                         1,  9, 11, 10, 0,  8,  12, 4,  13, 3,  7,  15, 14, 5,  6,  2,
                         4,  0, 5,  9,  7,  12, 2,  10, 14, 1,  3,  8,  11, 6,  15, 13};
constexpr int kRR[80] = {5,  14, 7,  0,  9,  2,  11, 4,  13, 6,  15, 8,  1,  10, 3,  12,
                         6,  11, 3,  7,  0,  13, 5,  10, 14, 15, 8,  12, 4,  9,  1,  2,
                         15, 5,  1,  3,  7,  14, 6,  9,  11, 8,  12, 2,  10, 0,  4,  13,
                         8,  6,  4,  1,  3,  11, 15, 0,  5,  12, 2,  13, 9,  7,  10, 14,
                         12, 15, 10, 4,  1,  5,  8,  7,  6,  2,  13, 14, 0,  3,  9,  11};
constexpr int kSL[80] = {11, 14, 15, 12, 5,  8,  7,  9,  11, 13, 14, 15, 6,  7,  9,  8,
                         7,  6,  8,  13, 11, 9,  7,  15, 7,  12, 15, 9,  11, 7,  13, 12,
                         11, 13, 6,  7,  14, 9,  13, 15, 14, 8,  13, 6,  5,  12, 7,  5,
                         11, 12, 14, 15, 14, 15, 9,  8,  9,  14, 5,  6,  8,  6,  5,  12,
                         9,  15, 5,  11, 6,  8,  13, 12, 5,  12, 13, 14, 11, 8,  5,  6};
constexpr int kSR[80] = {8,  9,  9,  11, 13, 15, 15, 5,  7,  7,  8,  11, 14, 14, 12, 6,
                         9,  13, 15, 7,  12, 8,  9,  11, 7,  7,  12, 7,  6,  15, 13, 11,
                         9,  7,  15, 11, 8,  6,  6,  14, 12, 13, 5,  14, 13, 13, 7,  5,
                         15, 5,  8,  11, 14, 14, 6,  14, 6,  9,  12, 9,  12, 5,  15, 8,
                         8,  5,  12, 9,  12, 5,  14, 6,  8,  13, 6,  5,  15, 13, 11, 11};

}  // namespace

void Ripemd160::reset() {
    state_[0] = 0x67452301;
    state_[1] = 0xefcdab89;
    state_[2] = 0x98badcfe;
    state_[3] = 0x10325476;
    state_[4] = 0xc3d2e1f0;
    total_len_ = 0;
    buffer_len_ = 0;
}

void Ripemd160::compress(const std::uint8_t* block) {
    std::uint32_t x[16];
    for (int i = 0; i < 16; ++i) x[i] = util::load_le32(block + 4 * i);

    std::uint32_t al = state_[0], bl = state_[1], cl = state_[2], dl = state_[3], el = state_[4];
    std::uint32_t ar = al, br = bl, cr = cl, dr = dl, er = el;

    for (int j = 0; j < 80; ++j) {
        std::uint32_t fl, kl, fr, kr;
        switch (j / 16) {
            case 0: fl = f1(bl, cl, dl); kl = 0x00000000; fr = f5(br, cr, dr); kr = 0x50a28be6; break;
            case 1: fl = f2(bl, cl, dl); kl = 0x5a827999; fr = f4(br, cr, dr); kr = 0x5c4dd124; break;
            case 2: fl = f3(bl, cl, dl); kl = 0x6ed9eba1; fr = f3(br, cr, dr); kr = 0x6d703ef3; break;
            case 3: fl = f4(bl, cl, dl); kl = 0x8f1bbcdc; fr = f2(br, cr, dr); kr = 0x7a6d76e9; break;
            default: fl = f5(bl, cl, dl); kl = 0xa953fd4e; fr = f1(br, cr, dr); kr = 0x00000000; break;
        }
        std::uint32_t t = rotl(al + fl + x[kRL[j]] + kl, kSL[j]) + el;
        al = el;
        el = dl;
        dl = rotl(cl, 10);
        cl = bl;
        bl = t;

        t = rotl(ar + fr + x[kRR[j]] + kr, kSR[j]) + er;
        ar = er;
        er = dr;
        dr = rotl(cr, 10);
        cr = br;
        br = t;
    }

    const std::uint32_t t = state_[1] + cl + dr;
    state_[1] = state_[2] + dl + er;
    state_[2] = state_[3] + el + ar;
    state_[3] = state_[4] + al + br;
    state_[4] = state_[0] + bl + cr;
    state_[0] = t;
}

Ripemd160& Ripemd160::update(util::ByteSpan data) {
    total_len_ += data.size();
    std::size_t offset = 0;

    if (buffer_len_ > 0) {
        const std::size_t take = std::min(data.size(), 64 - buffer_len_);
        std::memcpy(buffer_ + buffer_len_, data.data(), take);
        buffer_len_ += take;
        offset += take;
        if (buffer_len_ == 64) {
            compress(buffer_);
            buffer_len_ = 0;
        }
    }

    while (offset + 64 <= data.size()) {
        compress(data.data() + offset);
        offset += 64;
    }

    if (offset < data.size()) {
        buffer_len_ = data.size() - offset;
        std::memcpy(buffer_, data.data() + offset, buffer_len_);
    }
    return *this;
}

Ripemd160::Digest Ripemd160::finalize() {
    const std::uint64_t bit_len = total_len_ * 8;

    const std::uint8_t pad_byte = 0x80;
    update({&pad_byte, 1});
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) update({&zero, 1});

    // Little-endian 64-bit message length.
    util::store_le64(buffer_ + 56, bit_len);
    compress(buffer_);
    buffer_len_ = 0;

    Digest out;
    for (int i = 0; i < 5; ++i) util::store_le32(out.data() + 4 * i, state_[i]);
    return out;
}

Ripemd160::Digest Ripemd160::hash(util::ByteSpan data) {
    Ripemd160 h;
    h.update(data);
    return h.finalize();
}

}  // namespace ebv::crypto
